package exago_test

import (
	"math"
	"testing"

	exago "repro"
)

// TestPublicAPIRoundTrip drives the facade end to end: generate → fit →
// evaluate → predict → score, in TLR mode.
func TestPublicAPIRoundTrip(t *testing.T) {
	truth := exago.Theta{Variance: 1, Range: 0.15, Smoothness: 0.5}
	syn, err := exago.GenerateSynthetic(324, 24, truth, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := exago.Config{Mode: exago.TLR, TileSize: 64, Accuracy: 1e-8, Workers: 2}

	fit, err := exago.Fit(syn.Train, cfg, exago.FitOptions{MaxEvals: 80, FixSmoothness: true, Start: truth})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Theta.Variance <= 0 || fit.Theta.Range <= 0 {
		t.Fatalf("nonsensical estimate %+v", fit.Theta)
	}

	lik, err := exago.LogLikelihood(syn.Train, fit.Theta, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if lik.Value > 0 || math.IsNaN(lik.Value) {
		t.Fatalf("log-likelihood %g implausible", lik.Value)
	}
	if lik.Bytes <= 0 || lik.MaxRank <= 0 {
		t.Fatal("missing TLR diagnostics")
	}

	pred, err := exago.Predict(syn.Train, syn.TestPoints, fit.Theta, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mse := exago.MSE(pred, syn.TestZ)
	if mse <= 0 || mse > truth.Variance {
		t.Fatalf("prediction MSE %g outside sane band", mse)
	}
}

// TestPublicAPISession covers the validated-config surface: DefaultConfig,
// Validate at the entry points, and the Session handle in both the
// shared-memory and distributed backends.
func TestPublicAPISession(t *testing.T) {
	if err := exago.DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	syn, err := exago.GenerateSynthetic(256, 16, exago.Theta{Variance: 1, Range: 0.1, Smoothness: 0.5}, 6)
	if err != nil {
		t.Fatal(err)
	}
	th := exago.Theta{Variance: 1, Range: 0.1, Smoothness: 0.5}

	if _, err := exago.LogLikelihood(syn.Train, th, exago.Config{CompressorName: "bogus"}); err == nil {
		t.Fatal("unknown compressor must be rejected, not coerced")
	}
	if _, err := exago.NewSession(syn.Train, exago.Config{Mode: exago.FullBlock, Ranks: 4}); err == nil {
		t.Fatal("distributed ranks require TLR mode")
	}

	cfg := exago.Config{Mode: exago.TLR, TileSize: 64, Accuracy: 1e-7}
	want, err := exago.LogLikelihood(syn.Train, th, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Distributed session: same value, reusable across calls.
	dcfg := cfg
	dcfg.Ranks = 4
	s, err := exago.NewSession(syn.Train, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().Grid != [2]int{2, 2} {
		t.Fatalf("Ranks=4 normalized to grid %v", s.Config().Grid)
	}
	for rep := 0; rep < 2; rep++ {
		got, err := s.LogLikelihood(th)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got.Value-want.Value) / math.Abs(want.Value); rel > 1e-8 {
			t.Fatalf("rep %d: distributed %.10f vs shared %.10f", rep, got.Value, want.Value)
		}
	}
	pred, err := s.Predict(syn.TestPoints, th)
	if err != nil {
		t.Fatal(err)
	}
	if mse := exago.MSE(pred, syn.TestZ); mse <= 0 || mse > 1 {
		t.Fatalf("distributed prediction MSE %g outside sane band", mse)
	}
	if stats := s.CommStats(); len(stats) != 4 || stats[0].BytesSent == 0 {
		t.Fatalf("expected live per-rank traffic counters, got %+v", stats)
	}
}

// TestPublicAPIDatasets exercises the dataset helpers and the spherical
// metric through the facade.
func TestPublicAPIDatasets(t *testing.T) {
	soil, err := exago.SoilMoisture(36, 1)
	if err != nil {
		t.Fatal(err)
	}
	wind, err := exago.WindSpeed(36, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(soil.Regions) != 8 || len(wind.Regions) != 4 {
		t.Fatalf("region counts: soil %d wind %d", len(soil.Regions), len(wind.Regions))
	}
	reg := wind.Regions[0]
	prob, err := exago.NewProblem(reg.Points, reg.Z, wind.Metric)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exago.LogLikelihood(prob, reg.Truth, exago.Config{Mode: exago.FullBlock}); err != nil {
		t.Fatal(err)
	}
}

// TestPublicAPISimulator exercises the performance-model surface.
func TestPublicAPISimulator(t *testing.T) {
	ranks := exago.CalibrateRankModel(1e-7, exago.Theta{Variance: 1, Range: 0.1, Smoothness: 0.5}, 512, 128)
	m := exago.NewMachine(exago.ShaheenNode, 16)
	dense := exago.AnalyticCholesky(m, exago.Workload{N: 200_000, NB: 560, Variant: exago.DenseVariant})
	tlr := exago.AnalyticCholesky(m, exago.Workload{N: 200_000, NB: 1900, Variant: exago.TLRWorkload, Ranks: ranks})
	if dense.OOM || tlr.OOM {
		t.Fatal("unexpected OOM at 200K/16 nodes")
	}
	if dense.Seconds <= 0 || tlr.Seconds <= 0 {
		t.Fatal("non-positive simulated times")
	}
	pred := exago.AnalyticPrediction(m, exago.Workload{N: 200_000, NB: 1900, Variant: exago.TLRWorkload, Ranks: ranks}, 100)
	if pred.Seconds <= tlr.Seconds {
		t.Fatal("prediction should cost at least the factorization")
	}
	des := exago.SimulateCholesky(m, exago.Workload{N: 50_000, NB: 1000, Variant: exago.DenseVariant})
	if des.Tasks <= 0 || des.TotalFlops <= 0 {
		t.Fatal("DES result empty")
	}
}
