// Package exago is the public API of the TLR ExaGeoStat reproduction: a Go
// framework for Gaussian maximum likelihood estimation and prediction on
// large spatial datasets, with exact dense computation (full-block and
// full-tile modes) and Tile Low-Rank (TLR) approximation at a user-selected
// accuracy.
//
// The minimal workflow is:
//
//	syn, _ := exago.GenerateSynthetic(1600, 100, exago.Theta{Variance: 1, Range: 0.1, Smoothness: 0.5}, 1)
//	fit, _ := exago.Fit(syn.Train, exago.Config{Mode: exago.TLR, Accuracy: 1e-7}, exago.FitOptions{})
//	pred, _ := exago.Predict(syn.Train, syn.TestPoints, fit.Theta, exago.Config{Mode: exago.TLR})
//	fmt.Println(exago.MSE(pred, syn.TestZ))
//
// The implementation packages live under internal/: dense linear algebra
// (la), Matérn covariance with general-order Bessel functions (cov, bessel),
// the task runtime (runtime), tile and TLR algorithms (tile, tlr), the
// derivative-free optimizer (optimize), spatial geometry (geom), the machine
// simulator for the paper's performance studies (cluster), simulated climate
// datasets (datasets), and the experiment harness (exprt).
package exago

import (
	"repro/internal/chaos"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/dataio"
	"repro/internal/datasets"
	"repro/internal/geom"
	"repro/internal/tlr"
)

// Theta is the Matérn parameter vector (variance θ₁, spatial range θ₂,
// smoothness θ₃).
type Theta = cov.Params

// Point is a spatial location (planar X/Y, or lon/lat degrees on a sphere).
type Point = geom.Point

// Metric selects the distance function.
type Metric = geom.Metric

// Distance metrics.
const (
	// Euclidean is the planar distance used by the synthetic studies.
	Euclidean = geom.Euclidean
	// GreatCircle is the haversine distance on a unit sphere (degrees).
	GreatCircle = geom.GreatCircle
	// GreatCircleEarth100km is the haversine distance on Earth in 100-km
	// units, the working unit of the wind-speed dataset.
	GreatCircleEarth100km = geom.GreatCircleEarth100km
)

// Mode selects the computation technique for likelihoods and predictions.
type Mode = core.Mode

// Computation modes.
const (
	// FullBlock evaluates on one dense matrix with a blocked Cholesky (the
	// LAPACK-style baseline).
	FullBlock = core.FullBlock
	// FullTile uses tile algorithms over the task runtime (the Chameleon
	// path) at machine precision.
	FullTile = core.FullTile
	// TLR compresses off-diagonal tiles to Config.Accuracy (the HiCMA path).
	TLR = core.TLR
	// HODLR factors a hierarchically off-diagonal low-rank matrix with a
	// recursive Cholesky — the tree-structured alternative to TLR's flat
	// tiling (Config.TileSize is the leaf size, Config.Accuracy the per-block
	// tolerance).
	HODLR = core.HODLR
)

// ModeByName resolves a mode from its registered name or alias ("full-block",
// "dense", "tlr", "hodlr", ...), case-insensitively. ModeNames lists the
// canonical names of every registered backend.
func ModeByName(name string) (Mode, error) { return core.ModeByName(name) }
func ModeNames() []string                  { return core.ModeNames() }

// Config tunes a computation mode; see core.Config for field semantics.
// Setting Config.Ranks > 1 (Mode must be TLR) selects the distributed-memory
// backend: the covariance matrix is sharded 2D block-cyclically over a
// process grid and factored with the distributed TLR Cholesky. All entry
// points validate the Config and return an error for invalid settings.
type Config = core.Config

// DefaultConfig returns the library defaults spelled out in one place; the
// zero Config behaves identically.
func DefaultConfig() Config { return core.DefaultConfig() }

// Problem is a spatial dataset prepared for estimation.
type Problem = core.Problem

// Session owns the cached evaluator state (assembly buffers, task graphs,
// TLR shells, and — for distributed configs — the rank World and matrix
// shards) for repeated operations on one Problem. The free functions
// (LogLikelihood, Fit, Predict, ...) are convenience wrappers that build a
// throwaway Session per call; hold a Session when making many calls so the
// reuse is part of the API contract.
type Session = core.Session

// NewSession validates cfg and builds a reusable Session for p.
func NewSession(p *Problem, cfg Config) (*Session, error) { return core.NewSession(p, cfg) }

// ErrSessionBusy reports concurrent entry into a Session, which is not safe
// for concurrent use: overlapping calls are detected by an atomic guard and
// fail with this error (wrapped; test with errors.Is) instead of corrupting
// the shared evaluator state. Serialize calls — or run the serving layer
// (cmd/exaserve), whose per-model workers do it for you.
var ErrSessionBusy = core.ErrSessionBusy

// FitOptions, FitResult and LikResult re-export the estimation types.
type (
	FitOptions = core.FitOptions
	FitResult  = core.FitResult
	LikResult  = core.LikResult
)

// FaultPlan describes a deterministic, seeded set of faults to inject into a
// Session via Config.Chaos: task panics and stragglers (healed by the
// runtime's snapshot/replay), dropped and delayed messages (healed by
// retransmission), forced compression-tolerance misses (degraded to exact
// dense tiles), and a rank kill (surfaced as a bounded-time error). Paired
// with Config.MaxRetries; see Session.ChaosStats for what actually fired.
type FaultPlan = chaos.FaultPlan

// ChaosStats counts the faults an injector delivered.
type ChaosStats = chaos.Stats

// Synthetic is a generated dataset with held-out validation points.
type Synthetic = core.Synthetic

// NewProblem bundles locations and measurements into a Problem, reordering
// along the Morton curve (the default spatial ordering; effective TLR
// compression needs some locality-preserving order). The applied permutation
// is kept on Problem.Perm so results map back to caller order.
func NewProblem(pts []Point, z []float64, metric Metric) (*Problem, error) {
	return core.NewProblem(pts, z, metric)
}

// Ordering is a spatial ordering scheme: a deterministic permutation of the
// locations that controls off-diagonal covariance tile ranks — and with them
// TLR compression flops, memory, and distributed wire bytes. Select one per
// dataset with NewProblemOrdered or per session with Config.Ordering
// ("none", "morton", "hilbert", "kdblock").
type Ordering = geom.Ordering

// The built-in orderings.
var (
	// OrderingNone keeps caller order (the control arm of ordering sweeps).
	OrderingNone = geom.None
	// OrderingMorton sorts along the Z-order curve (32 bits/axis) — the
	// library default.
	OrderingMorton = geom.Morton
	// OrderingHilbert sorts along the Hilbert curve: consecutive cells are
	// always edge-adjacent, typically the lowest tile ranks on clustered
	// data.
	OrderingHilbert = geom.Hilbert
)

// KDBlockOrdering returns the KD-tree recursive-bisection ordering with
// tile-aligned blocks of tileSize points (<= 0 means the default 128).
func KDBlockOrdering(tileSize int) Ordering { return geom.KDBlocks(tileSize) }

// OrderingByName resolves an ordering scheme by its Config.Ordering name.
func OrderingByName(name string, tileSize int) (Ordering, error) {
	return geom.NewOrdering(name, tileSize)
}

// NewProblemOrdered bundles a dataset under an explicit spatial ordering.
func NewProblemOrdered(pts []Point, z []float64, metric Metric, ord Ordering) (*Problem, error) {
	return core.NewProblemOrdered(pts, z, metric, ord)
}

// LogLikelihood evaluates the Gaussian log-likelihood ℓ(θ) (paper eq. 1).
// Convenience wrapper over Session.LogLikelihood; evaluating many θ on one
// problem is cheaper through a shared Session.
func LogLikelihood(p *Problem, theta Theta, cfg Config) (LikResult, error) {
	return core.LogLikelihood(p, theta, cfg)
}

// Fit estimates θ̂ by maximizing the log-likelihood with a derivative-free
// bound-constrained search. Convenience wrapper over Session.Fit.
func Fit(p *Problem, cfg Config, opts FitOptions) (FitResult, error) {
	return core.Fit(p, cfg, opts)
}

// Predict imputes measurements at new locations (paper eq. 4). Convenience
// wrapper over Session.Predict.
func Predict(p *Problem, newPts []Point, theta Theta, cfg Config) ([]float64, error) {
	return core.Predict(p, newPts, theta, cfg)
}

// MSE is the mean squared prediction error (paper eq. 7).
func MSE(pred, truth []float64) float64 { return core.MSE(pred, truth) }

// Prediction carries kriging means with conditional variances (paper eq. 3).
type Prediction = core.Prediction

// PredictWithVariance computes conditional means and variances at new
// locations, enabling 95% prediction intervals (Prediction.CI95).
func PredictWithVariance(p *Problem, newPts []Point, theta Theta, cfg Config) (Prediction, error) {
	return core.PredictWithVariance(p, newPts, theta, cfg)
}

// CoverageCheck returns the empirical coverage of the 95% prediction
// intervals against held-out truths.
func CoverageCheck(pr Prediction, truth []float64) (float64, error) {
	return core.CoverageCheck(pr, truth)
}

// ProfiledFit estimates θ̂ via the concentrated likelihood: the variance is
// profiled out analytically, shrinking the search to (range, smoothness).
//
// Deprecated: set FitOptions.Profiled and call Fit instead — the profiled
// search is an option of the one Fit entry point, not a separate estimator.
func ProfiledFit(p *Problem, cfg Config, opts FitOptions) (FitResult, error) {
	return core.ProfiledFit(p, cfg, opts)
}

// RefineOptions and RefineResult re-export the iterative-refinement types.
type (
	RefineOptions = core.RefineOptions
	RefineResult  = tlr.RefineResult
)

// SolveRefined solves Σ(θ)·x = b to near machine precision using a loose TLR
// factorization as a PCG preconditioner with matrix-free exact operator
// applications — recovering full accuracy from cheap compression.
func SolveRefined(p *Problem, theta Theta, cfg Config, b []float64, opts RefineOptions) ([]float64, RefineResult, error) {
	return core.SolveRefined(p, theta, cfg, b, opts)
}

// Records and Model re-export the persistence layer.
type (
	Records = dataio.Records
	Model   = dataio.Model
)

// ReadCSVFile loads an x,y,z dataset; WriteCSVFile stores one.
func ReadCSVFile(path string) (Records, error)  { return dataio.ReadCSVFile(path) }
func WriteCSVFile(path string, r Records) error { return dataio.WriteCSVFile(path, r) }

// SaveModelFile and LoadModelFile persist fitted models as JSON.
func SaveModelFile(path string, m Model) error { return dataio.SaveModelFile(path, m) }
func LoadModelFile(path string) (Model, error) { return dataio.LoadModelFile(path) }
func MetricName(m Metric) string               { return dataio.MetricName(m) }
func MetricByName(name string) (Metric, error) { return dataio.MetricByName(name) }

// GenerateSynthetic samples a Gaussian random field at n perturbed-grid
// locations, holding out nTest for validation (paper §VII).
func GenerateSynthetic(n, nTest int, theta Theta, seed uint64) (*Synthetic, error) {
	return core.GenerateSynthetic(n, nTest, theta, seed)
}

// GenerateSyntheticReplicates draws several measurement vectors over one
// location set (the Monte-Carlo design of §VIII-D1).
func GenerateSyntheticReplicates(n, nrep int, theta Theta, seed uint64) ([]*Problem, error) {
	return core.GenerateSyntheticReplicates(n, nrep, theta, seed)
}

// Dataset and Region re-export the simulated climate datasets.
type (
	Dataset = datasets.Dataset
	Region  = datasets.Region
)

// SoilMoisture simulates the Mississippi-basin soil-moisture dataset
// (8 regions, Table I truths).
func SoilMoisture(pointsPerRegion int, seed uint64) (*Dataset, error) {
	return datasets.SoilMoisture(pointsPerRegion, seed)
}

// WindSpeed simulates the Middle-East wind-speed dataset (4 regions,
// Table II truths, great-circle distances).
func WindSpeed(pointsPerRegion int, seed uint64) (*Dataset, error) {
	return datasets.WindSpeed(pointsPerRegion, seed)
}

// Machine, Profile, Workload and SimResult re-export the performance
// simulator used for the paper-scale studies.
type (
	Machine   = cluster.Machine
	Profile   = cluster.Profile
	Workload  = cluster.Workload
	SimResult = cluster.Result
	RankModel = cluster.RankModel
)

// Machine profiles of the paper's testbeds.
var (
	Haswell     = cluster.Haswell
	Broadwell   = cluster.Broadwell
	KNL         = cluster.KNL
	Skylake     = cluster.Skylake
	ShaheenNode = cluster.ShaheenNode
)

// Simulated workload variants.
const (
	DenseVariant = cluster.Dense
	TLRWorkload  = cluster.TLRVariant
)

// NewMachine builds a simulated machine with a near-square process grid.
func NewMachine(p Profile, nodes int) Machine { return cluster.NewMachine(p, nodes) }

// CalibrateRankModel measures TLR tile ranks on real compressed Matérn tiles
// for use in simulated workloads.
func CalibrateRankModel(acc float64, theta Theta, calN, nbCal int) *RankModel {
	return cluster.CalibrateRankModel(acc, theta, calN, nbCal)
}

// SimulateCholesky replays the factorization DAG on a simulated machine
// (discrete events, coarsened tiling).
func SimulateCholesky(m Machine, w Workload) SimResult { return cluster.SimulateCholesky(m, w) }

// AnalyticCholesky models the factorization at true tile granularity with
// roofline bounds (used for paper-scale figures).
func AnalyticCholesky(m Machine, w Workload) SimResult { return cluster.AnalyticCholesky(m, w) }

// AnalyticPrediction models the prediction operation of Fig. 5.
func AnalyticPrediction(m Machine, w Workload, nRHS int) SimResult {
	return cluster.AnalyticPrediction(m, w, nRHS)
}
