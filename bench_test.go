// Benchmarks: one testing.B benchmark per paper table/figure plus the
// ablations called out in DESIGN.md. Each benchmark exercises the unit of
// work its figure measures, at benchmark-friendly sizes; `paperbench`
// produces the full rows/series.
package exago_test

import (
	"sync"
	"testing"

	exago "repro"
	"repro/internal/exprt"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/rng"
	"repro/internal/runtime"
	"repro/internal/tile"
	"repro/internal/tlr"

	"repro/internal/cov"
)

func benchTheta() exago.Theta { return exago.Theta{Variance: 1, Range: 0.1, Smoothness: 0.5} }

var (
	rankOnce  sync.Once
	rankModel *exago.RankModel
)

func benchRanks() *exago.RankModel {
	rankOnce.Do(func() {
		rankModel = exago.CalibrateRankModel(1e-7, benchTheta(), 1024, 128)
	})
	return rankModel
}

var benchProblemCache = map[int]*exago.Problem{}

func benchProblem(b *testing.B, n int) *exago.Problem {
	b.Helper()
	if p, ok := benchProblemCache[n]; ok {
		return p
	}
	syn, err := exago.GenerateSynthetic(n, 0, benchTheta(), 11)
	if err != nil {
		b.Fatal(err)
	}
	benchProblemCache[n] = syn.Train
	return syn.Train
}

// --- Fig. 2: workload generation ---------------------------------------

func BenchmarkFig2Workload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exago.GenerateSynthetic(400, 38, benchTheta(), uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 3: one MLE iteration per computation technique ----------------

func benchIteration(b *testing.B, cfg exago.Config) {
	p := benchProblem(b, 900)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exago.LogLikelihood(p, benchTheta(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3IterationFullBlock(b *testing.B) {
	benchIteration(b, exago.Config{Mode: exago.FullBlock})
}

func BenchmarkFig3IterationFullTile(b *testing.B) {
	benchIteration(b, exago.Config{Mode: exago.FullTile, TileSize: 128, Workers: 4})
}

func BenchmarkFig3IterationTLR1e5(b *testing.B) {
	benchIteration(b, exago.Config{Mode: exago.TLR, TileSize: 128, Accuracy: 1e-5, Workers: 4})
}

func BenchmarkFig3IterationTLR1e9(b *testing.B) {
	benchIteration(b, exago.Config{Mode: exago.TLR, TileSize: 128, Accuracy: 1e-9, Workers: 4})
}

func BenchmarkFig3SimulatedHaswellSweep(b *testing.B) {
	ranks := benchRanks()
	m := exago.NewMachine(exago.Haswell, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{55225, 79524, 112225} {
			exago.AnalyticCholesky(m, exago.Workload{N: n, NB: 560, Variant: exago.DenseVariant})
			exago.AnalyticCholesky(m, exago.Workload{N: n, NB: 1900, Variant: exago.TLRWorkload, Ranks: ranks})
		}
	}
}

// --- Fig. 4: distributed-memory simulation ------------------------------

func BenchmarkFig4Simulated256Nodes(b *testing.B) {
	ranks := benchRanks()
	m := exago.NewMachine(exago.ShaheenNode, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exago.AnalyticCholesky(m, exago.Workload{N: 1_000_000, NB: 560, Variant: exago.DenseVariant})
		exago.AnalyticCholesky(m, exago.Workload{N: 1_000_000, NB: 1900, Variant: exago.TLRWorkload, Ranks: ranks})
	}
}

func BenchmarkFig4Simulated1024Nodes(b *testing.B) {
	ranks := benchRanks()
	m := exago.NewMachine(exago.ShaheenNode, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exago.AnalyticCholesky(m, exago.Workload{N: 2_000_000, NB: 1900, Variant: exago.TLRWorkload, Ranks: ranks})
	}
}

// --- Fig. 5: prediction --------------------------------------------------

func BenchmarkFig5PredictReal(b *testing.B) {
	p := benchProblem(b, 400)
	newPts := geom.GeneratePerturbedGrid(25, rng.New(5))
	cfg := exago.Config{Mode: exago.TLR, TileSize: 64, Accuracy: 1e-7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exago.Predict(p, newPts, benchTheta(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5PredictSimulated(b *testing.B) {
	ranks := benchRanks()
	m := exago.NewMachine(exago.ShaheenNode, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exago.AnalyticPrediction(m, exago.Workload{N: 500_000, NB: 1900, Variant: exago.TLRWorkload, Ranks: ranks}, 100)
	}
}

// --- Fig. 6/7: Monte-Carlo fit and prediction MSE -----------------------

func BenchmarkFig6MonteCarloFitTLR(b *testing.B) {
	p := benchProblem(b, 225)
	cfg := exago.Config{Mode: exago.TLR, TileSize: 64, Accuracy: 1e-9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exago.Fit(p, cfg, exago.FitOptions{Start: benchTheta(), MaxEvals: 40}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7PredictionMSE(b *testing.B) {
	syn, err := exago.GenerateSynthetic(250, 25, benchTheta(), 13)
	if err != nil {
		b.Fatal(err)
	}
	cfg := exago.Config{Mode: exago.TLR, TileSize: 64, Accuracy: 1e-7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred, err := exago.Predict(syn.Train, syn.TestPoints, benchTheta(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = exago.MSE(pred, syn.TestZ)
	}
}

// --- Tables I/II and Fig. 9: real-dataset regional fits ------------------

func BenchmarkTable1SoilRegionFit(b *testing.B) {
	ds, err := exago.SoilMoisture(144, 2)
	if err != nil {
		b.Fatal(err)
	}
	reg := ds.Regions[0]
	prob, err := exago.NewProblem(reg.Points, reg.Z, ds.Metric)
	if err != nil {
		b.Fatal(err)
	}
	cfg := exago.Config{Mode: exago.TLR, TileSize: 48, Accuracy: 1e-7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := exago.Fit(prob, cfg, exago.FitOptions{
			Start:    exago.Theta{Variance: reg.Truth.Variance, Range: reg.Truth.Range, Smoothness: 0.8},
			MaxEvals: 40,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2WindRegionFit(b *testing.B) {
	ds, err := exago.WindSpeed(144, 3)
	if err != nil {
		b.Fatal(err)
	}
	reg := ds.Regions[0]
	prob, err := exago.NewProblem(reg.Points, reg.Z, ds.Metric)
	if err != nil {
		b.Fatal(err)
	}
	cfg := exago.Config{Mode: exago.TLR, TileSize: 48, Accuracy: 1e-7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := exago.Fit(prob, cfg, exago.FitOptions{
			Start:    exago.Theta{Variance: reg.Truth.Variance, Range: reg.Truth.Range, Smoothness: 1.0},
			MaxEvals: 40,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9RealDataPrediction(b *testing.B) {
	ds, err := exago.SoilMoisture(169, 4)
	if err != nil {
		b.Fatal(err)
	}
	reg := ds.Regions[0]
	prob, err := exago.NewProblem(reg.Points[:144], reg.Z[:144], ds.Metric)
	if err != nil {
		b.Fatal(err)
	}
	cfg := exago.Config{Mode: exago.TLR, TileSize: 48, Accuracy: 1e-9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred, err := exago.Predict(prob, reg.Points[144:], reg.Truth, cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = exago.MSE(pred, reg.Z[144:])
	}
}

// --- Ablations ------------------------------------------------------------

func BenchmarkAblationOrdering(b *testing.B) {
	k := cov.NewKernel(benchTheta())
	pts := geom.GeneratePerturbedGrid(512, rng.New(6))
	morton := geom.ApplyPerm(pts, geom.MortonOrder(pts))
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := tlr.FromKernel(k, pts, geom.Euclidean, 512, 64, 1e-7, tlr.SVDCompressor{}, 1e-9, 1)
			_, _ = m.RankStats()
		}
	})
	b.Run("morton", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := tlr.FromKernel(k, morton, geom.Euclidean, 512, 64, 1e-7, tlr.SVDCompressor{}, 1e-9, 1)
			_, _ = m.RankStats()
		}
	})
}

func BenchmarkAblationCompressor(b *testing.B) {
	k := cov.NewKernel(benchTheta())
	pts := geom.GeneratePerturbedGrid(4096, rng.New(7))
	pts = geom.ApplyPerm(pts, geom.MortonOrder(pts))
	for _, name := range []string{"svd", "rsvd", "aca"} {
		comp, err := tlr.CompressorByName(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			buf := la.NewMat(128, 128)
			for i := 0; i < b.N; i++ {
				k.Block(buf, pts[:128], pts[128*2:128*3], geom.Euclidean)
				_ = comp.Compress(buf, 1e-7)
			}
		})
	}
}

func BenchmarkAblationTileSize(b *testing.B) {
	ranks := benchRanks()
	m := exago.NewMachine(exago.ShaheenNode, 256)
	for _, nb := range []int{560, 1900, 3800} {
		nb := nb
		b.Run(benchName("nb", nb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exago.AnalyticCholesky(m, exago.Workload{N: 500_000, NB: nb, Variant: exago.TLRWorkload, Ranks: ranks})
			}
		})
	}
}

func BenchmarkAblationScheduling(b *testing.B) {
	sym := tile.NewSym(4096, 256)
	g, _ := tile.BuildCholeskyGraph(sym, false)
	b.Run("async", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.Simulate(runtime.SimOptions{Workers: 16}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("barrier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := g.Simulate(runtime.SimOptions{Workers: 16, Barrier: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Compute kernels (packed BLAS3, parallel assembly) --------------------

// BenchmarkGemm compares the packed register-tiled GEMM against the retained
// naive reference (`paperbench -kernels` writes the same comparison as JSON).
func BenchmarkGemm(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		a, bm, c := la.NewMat(n, n), la.NewMat(n, n), la.NewMat(n, n)
		r := rng.New(uint64(n))
		r.NormSlice(a.Data)
		r.NormSlice(bm.Data)
		flops := 2 * int64(n) * int64(n) * int64(n)
		b.Run(benchName("naive/n", n), func(b *testing.B) {
			b.SetBytes(flops) // flops reported as MB/s ≙ MFLOP/s
			for i := 0; i < b.N; i++ {
				la.RefGemm(1, a, la.NoTrans, bm, la.NoTrans, 0, c)
			}
		})
		b.Run(benchName("packed/n", n), func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				la.Gemm(1, a, la.NoTrans, bm, la.NoTrans, 0, c)
			}
		})
	}
}

// BenchmarkCovAssembly times covariance-matrix generation, sequential vs the
// row-band parallel path.
func BenchmarkCovAssembly(b *testing.B) {
	k := cov.NewKernel(benchTheta())
	const n = 1024
	pts := geom.GeneratePerturbedGrid(n, rng.New(21))
	sigma := la.NewMat(len(pts), len(pts))
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.Matrix(sigma, pts, geom.Euclidean)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k.MatrixParallel(sigma, pts, geom.Euclidean, 4)
		}
	})
}

// BenchmarkCholeskyModes times one generation+factorization per computation
// mode at a fixed size, including the combined dcmg+POTRF task graph.
func BenchmarkCholeskyModes(b *testing.B) {
	k := cov.NewKernel(benchTheta())
	const n, nb = 1024, 128
	pts := geom.GeneratePerturbedGrid(n, rng.New(23))
	b.Run("full-block", func(b *testing.B) {
		sigma := la.NewMat(len(pts), len(pts))
		for i := 0; i < b.N; i++ {
			k.MatrixParallel(sigma, pts, geom.Euclidean, 4)
			cov.AddNugget(sigma, 1e-9)
			if err := la.Potrf(sigma); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, w := range []int{1, 4} {
		w := w
		b.Run(benchName("full-tile/workers", w), func(b *testing.B) {
			m := tile.NewSym(len(pts), nb)
			spec := &tile.GenSpec{K: k, Pts: pts, Metric: geom.Euclidean, Nugget: 1e-9}
			g, _ := tile.BuildGenCholeskyGraph(m, spec, true)
			for i := 0; i < b.N; i++ {
				if err := g.Execute(runtime.ExecOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Harness smoke benchmark ----------------------------------------------

func BenchmarkHarnessFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := runHarness("fig2"); err != nil {
			b.Fatal(err)
		}
	}
}

func runHarness(name string) error {
	e, err := exprt.ByName(name)
	if err != nil {
		return err
	}
	return e.Run(exprt.Options{})
}

func benchName(prefix string, v int) string {
	return prefix + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func BenchmarkAblationProfiledFit(b *testing.B) {
	p := benchProblem(b, 225)
	cfg := exago.Config{Mode: exago.FullBlock}
	b.Run("full-3d", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exago.Fit(p, cfg, exago.FitOptions{Start: benchTheta(), MaxEvals: 60}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("profiled-2d", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exago.ProfiledFit(p, cfg, exago.FitOptions{Start: benchTheta(), MaxEvals: 60}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkExtensionPredictWithVariance(b *testing.B) {
	syn, err := exago.GenerateSynthetic(275, 25, benchTheta(), 17)
	if err != nil {
		b.Fatal(err)
	}
	cfg := exago.Config{Mode: exago.TLR, TileSize: 64, Accuracy: 1e-8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exago.PredictWithVariance(syn.Train, syn.TestPoints, benchTheta(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionRefinedSolve(b *testing.B) {
	p := benchProblem(b, 225)
	rhs := make([]float64, p.N())
	rng.New(19).NormSlice(rhs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exago.SolveRefined(p, benchTheta(), exago.Config{TileSize: 64, Accuracy: 1e-3}, rhs, exago.RefineOptions{Tol: 1e-10}); err != nil {
			b.Fatal(err)
		}
	}
}
