// Wind-speed analysis on the sphere: the Table-II workflow. The simulated
// Arabian-Peninsula wind field uses great-circle (haversine) distances and a
// smoother Matérn process (θ₃ > 1), which stresses the general-order Bessel
// path. The example fits one region across a sweep of TLR accuracies and
// reports how the estimate and the compression ranks respond.
package main

import (
	"fmt"
	"log"

	exago "repro"
)

func main() {
	const perRegion = 256
	ds, err := exago.WindSpeed(perRegion, 3)
	if err != nil {
		log.Fatal(err)
	}
	reg := ds.Regions[0]
	fmt.Printf("%s %s: %d locations, great-circle metric, truth θ = (%.3f, %.3f, %.3f)\n\n",
		ds.Name, reg.Name, perRegion, reg.Truth.Variance, reg.Truth.Range, reg.Truth.Smoothness)

	prob, err := exago.NewProblem(reg.Points, reg.Z, ds.Metric)
	if err != nil {
		log.Fatal(err)
	}
	opts := exago.FitOptions{
		Start:    exago.Theta{Variance: reg.Truth.Variance, Range: reg.Truth.Range, Smoothness: 1.0},
		Upper:    exago.Theta{Variance: 100 * reg.Truth.Variance, Range: 50 * reg.Truth.Range, Smoothness: 3},
		MaxEvals: 80,
	}

	fmt.Printf("%-12s %-26s %-10s %-10s\n", "accuracy", "θ̂ (variance, range, ν)", "max rank", "storage")
	for _, acc := range []float64{1e-5, 1e-7, 1e-9} {
		cfg := exago.Config{Mode: exago.TLR, TileSize: 64, Accuracy: acc, Workers: 4}
		fit, err := exago.Fit(prob, cfg, opts)
		if err != nil {
			log.Fatal(err)
		}
		lik, err := exago.LogLikelihood(prob, fit.Theta, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.0e (%7.3f, %6.3f, %5.3f)   %-10d %.1f KB\n",
			acc, fit.Theta.Variance, fit.Theta.Range, fit.Theta.Smoothness,
			lik.MaxRank, float64(lik.Bytes)/1e3)
	}

	exact, err := exago.Fit(prob, exago.Config{Mode: exago.FullTile, TileSize: 64, Workers: 4}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s (%7.3f, %6.3f, %5.3f)\n", "full-tile", exact.Theta.Variance, exact.Theta.Range, exact.Theta.Smoothness)
	fmt.Println("\nas in Table II, smoother strongly-correlated fields need tighter TLR accuracy;")
	fmt.Println("ranks (and storage) grow as the threshold tightens")
}
