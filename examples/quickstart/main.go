// Quickstart: the paper's Figure-2 workflow on 400 irregular unit-square
// locations — generate a Gaussian random field, estimate the Matérn
// parameters by maximum likelihood in exact and TLR modes, and validate
// prediction on the held-out points.
package main

import (
	"fmt"
	"log"
	"time"

	exago "repro"
)

func main() {
	truth := exago.Theta{Variance: 1, Range: 0.1, Smoothness: 0.5}

	// 400 locations, 38 held out for validation (paper Fig. 2).
	syn, err := exago.GenerateSynthetic(400, 38, truth, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quickstart: %d fit locations, %d validation, truth θ = (%g, %g, %g)\n",
		syn.Train.N(), len(syn.TestPoints), truth.Variance, truth.Range, truth.Smoothness)

	for _, cfg := range []struct {
		name string
		conf exago.Config
	}{
		{"full-block (exact)", exago.Config{Mode: exago.FullBlock}},
		{"full-tile  (exact)", exago.Config{Mode: exago.FullTile, TileSize: 64, Workers: 4}},
		{"tlr 1e-7", exago.Config{Mode: exago.TLR, TileSize: 64, Accuracy: 1e-7, Workers: 4}},
	} {
		t0 := time.Now()
		fit, err := exago.Fit(syn.Train, cfg.conf, exago.FitOptions{MaxEvals: 120})
		if err != nil {
			log.Fatal(err)
		}
		pred, err := exago.Predict(syn.Train, syn.TestPoints, fit.Theta, cfg.conf)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s θ̂ = (%.3f, %.3f, %.3f)  prediction MSE %.4f  [%s]\n",
			cfg.name, fit.Theta.Variance, fit.Theta.Range, fit.Theta.Smoothness,
			exago.MSE(pred, syn.TestZ), time.Since(t0).Round(time.Millisecond))
	}
	fmt.Println("all three modes should agree on θ̂ and MSE — TLR trades accuracy for scalability")
}
