// Distributed-memory walkthrough: run the TLR and dense MLE iterations on
// the simulated 256-node Cray XC40 (the Fig. 4(a) machine) and print the
// schedule summary — time, flops, communication volume, per-node memory, and
// the out-of-memory boundary the paper's missing points come from.
package main

import (
	"fmt"

	exago "repro"
)

func main() {
	machine := exago.NewMachine(exago.ShaheenNode, 256)
	fmt.Printf("machine: %d x %s nodes (%d cores), %dx%d process grid\n\n",
		machine.Nodes, machine.Profile.Name, machine.Nodes*machine.Profile.Cores,
		machine.GridP, machine.GridQ)

	truth := exago.Theta{Variance: 1, Range: 0.1, Smoothness: 0.5}
	ranks := exago.CalibrateRankModel(1e-7, truth, 1024, 128)
	fmt.Println("rank model calibrated from real SVD compressions of Matérn tiles")
	fmt.Printf("predicted rank at nb=1900: adjacent tiles %d, distant tiles %d\n\n",
		ranks.Rank(1900, 1), ranks.Rank(1900, 20))

	fmt.Printf("%-10s %-12s %-12s %-14s %-14s\n", "n", "full-tile", "tlr(1e-7)", "dense mem/node", "tlr mem/node")
	for _, n := range []int{250_000, 500_000, 1_000_000, 2_000_000} {
		dense := exago.AnalyticCholesky(machine, exago.Workload{N: n, NB: 560, Variant: exago.DenseVariant})
		tlr := exago.AnalyticCholesky(machine, exago.Workload{N: n, NB: 1900, Variant: exago.TLRWorkload, Accuracy: 1e-7, Ranks: ranks})
		fmt.Printf("%-10d %-12s %-12s %-14s %-14s\n", n,
			fmtres(dense), fmtres(tlr),
			fmt.Sprintf("%.1f GB", float64(dense.MaxNodeBytes)/1e9),
			fmt.Sprintf("%.1f GB", float64(tlr.MaxNodeBytes)/1e9))
	}
	fmt.Println("\nthe dense variant exceeds the 128 GB node memory at 2M locations (the paper's")
	fmt.Println("missing points); TLR compresses the factor ~20x and keeps fitting")

	// A small DAG replayed through the discrete-event scheduler shows the
	// task-level view the analytic model aggregates.
	small := exago.SimulateCholesky(machine, exago.Workload{N: 100_000, NB: 2000, Variant: exago.DenseVariant})
	fmt.Printf("\nDES view at n=100K (nb=%d): %d tasks, %.2e flops, %.1f GB communicated, %s simulated\n",
		small.EffectiveNB, small.Tasks, small.TotalFlops, small.CommBytes/1e9, fmtres(small))
}

func fmtres(r exago.SimResult) string {
	if r.OOM {
		return "OOM"
	}
	return fmt.Sprintf("%.1fs", r.Seconds)
}
