// Soil-moisture regional analysis: the Table-I workflow on the simulated
// Mississippi-basin dataset. Each of the eight regions is fitted
// independently with TLR at two accuracies and with the exact full-tile
// mode, and the estimates are compared against the generating truth (the
// paper's full-tile estimates).
package main

import (
	"fmt"
	"log"

	exago "repro"
)

func main() {
	const perRegion = 256
	ds, err := exago.SoilMoisture(perRegion, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d regions, %d locations each (paper: ~250K each)\n\n", ds.Name, len(ds.Regions), perRegion)
	fmt.Printf("%-4s %-28s %-28s %-28s\n", "", "tlr(1e-7)", "full-tile", "truth")

	for _, reg := range ds.Regions {
		prob, err := exago.NewProblem(reg.Points, reg.Z, ds.Metric)
		if err != nil {
			log.Fatal(err)
		}
		opts := exago.FitOptions{
			Start:    exago.Theta{Variance: reg.Truth.Variance, Range: reg.Truth.Range, Smoothness: 0.8},
			Upper:    exago.Theta{Variance: 100 * reg.Truth.Variance, Range: 50 * reg.Truth.Range, Smoothness: 3},
			MaxEvals: 80,
		}
		tlrFit, err := exago.Fit(prob, exago.Config{Mode: exago.TLR, TileSize: 64, Accuracy: 1e-7, Workers: 4}, opts)
		if err != nil {
			log.Fatal(err)
		}
		exactFit, err := exago.Fit(prob, exago.Config{Mode: exago.FullTile, TileSize: 64, Workers: 4}, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4s (%6.3f, %6.3f, %5.3f)      (%6.3f, %6.3f, %5.3f)      (%6.3f, %6.3f, %5.3f)\n",
			reg.Name,
			tlrFit.Theta.Variance, tlrFit.Theta.Range, tlrFit.Theta.Smoothness,
			exactFit.Theta.Variance, exactFit.Theta.Range, exactFit.Theta.Smoothness,
			reg.Truth.Variance, reg.Truth.Range, reg.Truth.Smoothness)
	}
	fmt.Println("\nTLR estimates should track full-tile closely; both approximate the truth")
	fmt.Println("(single realizations at this size carry real statistical spread, as in the paper)")
}
