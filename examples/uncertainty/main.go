// Uncertainty quantification and accuracy refinement: the extensions beyond
// the paper's headline pipeline.
//
//  1. PredictWithVariance computes the full conditional distribution (paper
//     eq. 3), giving 95% prediction intervals whose empirical coverage is
//     checked against held-out truth.
//  2. ProfiledFit concentrates the variance out of the likelihood, fitting
//     with a 2-D instead of 3-D search.
//  3. SolveRefined recovers machine-precision solves from a deliberately
//     loose (1e-2) TLR factorization via preconditioned conjugate gradients
//     with matrix-free exact operator applications.
package main

import (
	"fmt"
	"log"
	"math"

	exago "repro"
	"repro/internal/rng"
)

func main() {
	truth := exago.Theta{Variance: 1, Range: 0.2, Smoothness: 0.5}
	syn, err := exago.GenerateSynthetic(400, 40, truth, 11)
	if err != nil {
		log.Fatal(err)
	}
	cfg := exago.Config{Mode: exago.TLR, TileSize: 64, Accuracy: 1e-8, Workers: 4}

	// 1. prediction intervals
	pr, err := exago.PredictWithVariance(syn.Train, syn.TestPoints, truth, cfg)
	if err != nil {
		log.Fatal(err)
	}
	coverage, err := exago.CoverageCheck(pr, syn.TestZ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prediction with uncertainty at %d held-out points:\n", len(syn.TestPoints))
	for i := 0; i < 5; i++ {
		fmt.Printf("  point %d: %.3f ± %.3f (truth %.3f)\n", i, pr.Mean[i], pr.CI95(i), syn.TestZ[i])
	}
	fmt.Printf("empirical 95%% interval coverage: %.0f%% (want ≈95%%)\n\n", 100*coverage)

	// 2. profiled vs full fit
	full, err := exago.Fit(syn.Train, cfg, exago.FitOptions{MaxEvals: 150})
	if err != nil {
		log.Fatal(err)
	}
	prof, err := exago.ProfiledFit(syn.Train, cfg, exago.FitOptions{MaxEvals: 150})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full 3-D fit:     θ̂ = (%.3f, %.3f, %.3f), %d evaluations\n",
		full.Theta.Variance, full.Theta.Range, full.Theta.Smoothness, full.Evals)
	fmt.Printf("profiled 2-D fit: θ̂ = (%.3f, %.3f, %.3f), %d evaluations\n\n",
		prof.Theta.Variance, prof.Theta.Range, prof.Theta.Smoothness, prof.Evals)

	// 3. iterative refinement from a loose factorization
	b := make([]float64, syn.Train.N())
	rng.New(5).NormSlice(b)
	x, res, err := exago.SolveRefined(syn.Train, truth, exago.Config{TileSize: 64, Accuracy: 1e-2}, b,
		exago.RefineOptions{Tol: 1e-11})
	if err != nil {
		log.Fatal(err)
	}
	var norm float64
	for _, v := range x {
		norm += v * v
	}
	fmt.Printf("refined solve from a 1e-2 TLR preconditioner: %d PCG iterations to rel. residual %.1e (‖x‖=%.3f)\n",
		res.Iterations, res.RelResidual, math.Sqrt(norm))
	fmt.Println("loose compression + a few Krylov iterations ≈ machine-precision solve")
}
