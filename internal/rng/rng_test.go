package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s1 := r.Split(1)
	r2 := New(7)
	s2 := r2.Split(2)
	collisions := 0
	for i := 0; i < 1000; i++ {
		if s1.Uint64() == s2.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("substreams collide: %d", collisions)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(2)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-0.4, 0.4)
		if v < -0.4 || v >= 0.4 {
			t.Fatalf("Uniform out of range: %g", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for k, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("Intn(7) bucket %d grossly non-uniform: %d", k, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(4)
	n := 200000
	var sum, sum2, sum3, sum4 float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sum2 += v * v
		sum3 += v * v * v
		sum4 += v * v * v * v
	}
	mean := sum / float64(n)
	variance := sum2/float64(n) - mean*mean
	skew := sum3 / float64(n)
	kurt := sum4 / float64(n)
	if math.Abs(mean) > 0.01 {
		t.Errorf("mean = %g", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("variance = %g", variance)
	}
	if math.Abs(skew) > 0.03 {
		t.Errorf("skewness = %g", skew)
	}
	if math.Abs(kurt-3) > 0.1 {
		t.Errorf("kurtosis = %g", kurt)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestNormSliceFills(t *testing.T) {
	r := New(6)
	buf := make([]float64, 64)
	r.NormSlice(buf)
	zero := 0
	for _, v := range buf {
		if v == 0 {
			zero++
		}
	}
	if zero > 1 {
		t.Fatalf("NormSlice left %d zeros", zero)
	}
}
