// Package rng provides the deterministic pseudo-random number generation used
// by every stochastic component in the repository: data generation, Monte
// Carlo replication, randomized SVD sampling, and missing-value selection.
//
// The generator is xoshiro256++, seeded through SplitMix64 so that any 64-bit
// seed yields a well-mixed state. Substreams derived with Split are
// statistically independent for reproduction purposes, letting experiments
// fan out deterministic parallel streams (one per Monte-Carlo replicate)
// regardless of scheduling order.
package rng

import "math"

// Rand is a deterministic xoshiro256++ generator. The zero value is invalid;
// use New.
type Rand struct {
	s [4]uint64
	// cached second normal from the Box–Muller pair
	hasGauss bool
	gauss    float64
}

// New returns a generator seeded from seed via SplitMix64.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro requires a nonzero state; SplitMix64 guarantees it except for
	// pathological collisions, which we guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives an independent substream labeled by id. The derivation hashes
// (current seed state, id), so substreams with different ids never overlap in
// practice.
func (r *Rand) Split(id uint64) *Rand {
	return New(r.Uint64() ^ (id*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[0]+r.s[3], 23) + r.s[0]
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform variate in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire-style rejection-free enough for our purposes: modulo bias is
	// below 2^-53 for the n used here (≤ a few million), but use rejection
	// sampling anyway for exactness.
	mask := uint64(n)
	bound := (math.MaxUint64 / mask) * mask
	for {
		v := r.Uint64()
		if v < bound {
			return int(v % mask)
		}
	}
}

// Norm returns a standard normal variate (Box–Muller with caching).
func (r *Rand) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// NormSlice fills out with independent standard normal variates.
func (r *Rand) NormSlice(out []float64) {
	for i := range out {
		out[i] = r.Norm()
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
