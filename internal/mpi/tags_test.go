package mpi

import "testing"

// The old scheme (kind*mt*mt + i*mt + k) produced small, mt-relative tags
// that collided with user tags and with each other across kinds. The
// namespaced scheme must give every (kind, i, k) triple a unique tag above
// UserTagLimit regardless of the tile count — exercised here at a
// non-divisible n/nb (n=90, nb=16 → mt=6 with a ragged last tile).
func TestTagNamespaceUnique(t *testing.T) {
	const mt = 6 // (90 + 16 - 1) / 16
	seen := map[int]string{}
	for kind := kindLkk; kind < kindLast; kind++ {
		for i := 0; i < mt; i++ {
			for k := 0; k < mt; k++ {
				tag := tagOf(kind, i, k)
				if tag < UserTagLimit {
					t.Fatalf("tagOf(%d,%d,%d) = %d is inside the user tag range", kind, i, k, tag)
				}
				if prev, ok := seen[tag]; ok {
					t.Fatalf("tag collision: tagOf(%d,%d,%d) repeats %s", kind, i, k, prev)
				}
				seen[tag] = "earlier triple"
				// the allreduce reply convention uses tag+1; the increment
				// must stay within the same (kind, i) namespace (the k field
				// is capped one short of full, so it can never carry)
				reply := tag + 1
				if reply>>(2*tagIndexBits) != kind || (reply>>tagIndexBits)&(1<<tagIndexBits-1) != i {
					t.Fatalf("reply tag of (%d,%d,%d) carries out of its namespace", kind, i, k)
				}
			}
		}
	}
}

func TestTagOverflowPanics(t *testing.T) {
	for _, bad := range [][3]int{
		{kindLkk, 1 << tagIndexBits, 0},     // i overflow
		{kindLkk, 0, 1<<tagIndexBits - 1},   // k overflow (reply headroom)
		{kindLkk, -1, 0},                    // negative index
		{0, 0, 0},                           // invalid kind
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("tagOf(%v) should panic", bad)
				}
			}()
			tagOf(bad[0], bad[1], bad[2])
		}()
	}
}
