package mpi

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Rank-failure observability: ranks declared dead by MarkDead, and the bytes
// of shard state survivors regenerated to take over a dead rank's tiles.
var (
	cntRankLost     = obs.GetCounter("mpi.rank.lost")
	cntShardRebuilt = obs.GetCounter("tlr.shard.rebuilt.bytes")
)

// RankDeath identifies which rank a distributed run lost and at which
// membership epoch. Every poison error caused by a rank failure — a panic
// inside Run, or a receive timeout diagnosing a silent peer — wraps one, so
// callers can recover it with errors.As and decide to shrink the world to
// the survivors instead of giving up.
type RankDeath struct {
	// Rank is the rank diagnosed dead.
	Rank int
	// Epoch is the membership epoch the failure happened in. Stale
	// diagnoses from before an already-completed shrink carry an old epoch
	// and must be ignored.
	Epoch int64
}

func (d *RankDeath) Error() string {
	return fmt.Sprintf("mpi: rank %d died (membership epoch %d)", d.Rank, d.Epoch)
}

// RankHealth is one rank's liveness entry in World.Health.
type RankHealth struct {
	Rank  int
	Alive bool
	// LastHeard is the last time the rank was observed doing anything — a
	// send, or entering a Run. The zero time means it has never been heard
	// from (a World that never Ran).
	LastHeard time.Time
}

// Health reports per-rank liveness and last-heard-from times — the
// diagnostic view behind every shrink decision. Dead ranks keep their last
// LastHeard value, so the report shows when the failed rank went silent.
func (w *World) Health() []RankHealth {
	out := make([]RankHealth, w.size)
	for r := range out {
		out[r] = RankHealth{Rank: r, Alive: w.alive[r].Load()}
		if ns := w.lastHeard[r].Load(); ns != 0 {
			out[r].LastHeard = time.Unix(0, ns)
		}
	}
	return out
}

// Alive reports whether rank is a live member of the current epoch.
func (w *World) Alive(rank int) bool { return w.alive[rank].Load() }

// AliveCount returns the number of live ranks.
func (w *World) AliveCount() int {
	n := 0
	for r := 0; r < w.size; r++ {
		if w.alive[r].Load() {
			n++
		}
	}
	return n
}

// AliveRanks returns the live ranks in ascending order.
func (w *World) AliveRanks() []int {
	out := make([]int, 0, w.size)
	for r := 0; r < w.size; r++ {
		if w.alive[r].Load() {
			out = append(out, r)
		}
	}
	return out
}

// LowestAlive returns the lowest live rank — the root every collective
// gathers at (rank 0 until rank 0 dies).
func (w *World) LowestAlive() int {
	for r := 0; r < w.size; r++ {
		if w.alive[r].Load() {
			return r
		}
	}
	panic("mpi: no live ranks")
}

// Epoch returns the current membership epoch (0 until the first failure).
func (w *World) Epoch() int64 { return w.epoch.Load() }

// MarkDead removes rank from the membership: the epoch advances, every
// mailbox is drained (in-flight messages from the aborted protocol are
// stale by definition — their epoch stamp no longer matches), and the
// poison clears so the survivors' next Run starts clean. Subsequent Runs
// spawn no goroutine for the dead rank, sends to it vanish, and receives
// from it fail immediately with a RankDeath diagnosis. Returns the new
// epoch. Marking an already-dead rank is a no-op.
func (w *World) MarkDead(rank int) int64 {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: MarkDead rank %d out of range [0,%d)", rank, w.size))
	}
	if !w.alive[rank].Swap(false) {
		return w.epoch.Load()
	}
	cntRankLost.Inc()
	epoch := w.epoch.Add(1)
	for _, mb := range w.boxes {
		mb.mu.Lock()
		mb.pending = nil
		mb.mu.Unlock()
	}
	w.failMu.Lock()
	w.failErr = nil
	w.failMu.Unlock()
	w.poisoned.Store(false)
	return epoch
}

// heard stamps rank's last-heard-from time.
func (w *World) heard(rank int) { w.lastHeard[rank].Store(time.Now().UnixNano()) }

// AliveRanks returns the live ranks of this endpoint's world, ascending.
func (c *Comm) AliveRanks() []int { return c.world.AliveRanks() }

// LowestAlive returns the lowest live rank — the replica every
// rank-replicated result is read back from.
func (c *Comm) LowestAlive() int { return c.world.LowestAlive() }

// Epoch returns the current membership epoch.
func (c *Comm) Epoch() int64 { return c.world.Epoch() }

// AgreeAlive is the epoch-tagged membership allreduce: every surviving rank
// contributes its local liveness view (one 0/1 entry per rank) and receives
// the agreed intersection — a rank is agreed alive only when every
// participant sees it alive — plus the epoch the agreement was reached at.
// The reduction tag carries the epoch, so a straggler re-entering with a
// stale view cannot satisfy a current-epoch agreement. Call it as the first
// collective of a post-shrink recovery run: it doubles as the barrier that
// ensures every survivor has entered the new epoch before any shard state
// is rebuilt.
func (c *Comm) AgreeAlive() ([]bool, int64, error) {
	epoch := c.world.Epoch()
	voters := c.world.AliveCount()
	vec := make([]float64, c.Size())
	for r := range vec {
		if c.world.Alive(r) {
			vec[r] = 1
		}
	}
	sum, err := c.AllreduceSumVec(tagOf(kindMember, int(epoch&0x7fffff), 0), vec)
	if err != nil {
		return nil, 0, err
	}
	alive := make([]bool, c.Size())
	for r := range alive {
		alive[r] = sum[r] == float64(voters)
	}
	return alive, epoch, nil
}

// OwnerMap overlays membership onto a Grid: the grid's block-cyclic layout
// is kept as a *logical* tile-to-slot mapping, and the map assigns each
// slot a physical rank. While every rank is alive the assignment is the
// identity (slot s belongs to rank s, exactly the plain Grid semantics);
// when ranks die their slots are reassigned deterministically to the
// survivors, so the survivors keep every tile they already own and only the
// dead ranks' tiles change hands.
type OwnerMap struct {
	Grid Grid
	phys []int // slot -> physical rank
}

// NewOwnerMap builds the identity assignment for grid.
func NewOwnerMap(grid Grid) *OwnerMap {
	m := &OwnerMap{Grid: grid, phys: make([]int, grid.P*grid.Q)}
	for s := range m.phys {
		m.phys[s] = s
	}
	return m
}

// Owner returns the physical rank owning tile (i, j).
func (m *OwnerMap) Owner(i, j int) int { return m.phys[m.Grid.Owner(i, j)] }

// Reassign recomputes the slot assignment for a membership view: slots
// whose physical rank is alive keep it; slots of dead ranks are dealt
// round-robin over the ascending survivors, keyed by slot index. The
// result is a pure function of (grid, alive), so every rank computes the
// identical assignment from the agreed membership with no extra
// communication. Returns the slots that changed hands.
func (m *OwnerMap) Reassign(alive []bool) (moved []int) {
	var survivors []int
	for r, a := range alive {
		if a {
			survivors = append(survivors, r)
		}
	}
	if len(survivors) == 0 {
		panic("mpi: OwnerMap.Reassign with no survivors")
	}
	for s := range m.phys {
		want := s
		if !alive[want] {
			want = survivors[s%len(survivors)]
		}
		if m.phys[s] != want {
			moved = append(moved, s)
		}
		m.phys[s] = want
	}
	return moved
}

// diagRecipients is DiagRecipients generalized over an ownership function
// (the OwnerMap of a shrunken world, or a plain Grid).
func diagRecipients(owner func(i, j int) int, k, mt int) []int {
	o := owner(k, k)
	var out []int
	for i := k + 1; i < mt; i++ {
		if r := owner(i, k); r != o && !contains(out, r) {
			out = append(out, r)
		}
	}
	return out
}

// panelRecipients is PanelRecipients generalized over an ownership function.
func panelRecipients(owner func(i, j int) int, i, k, mt int) []int {
	o := owner(i, k)
	var out []int
	add := func(r int) {
		if r != o && !contains(out, r) {
			out = append(out, r)
		}
	}
	for j := k + 1; j <= i; j++ {
		add(owner(i, j))
	}
	for a := i + 1; a < mt; a++ {
		add(owner(a, i))
	}
	return out
}
