package mpi

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/rng"
)

func TestSendRecvTagMatching(t *testing.T) {
	w := NewWorld(2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c := w.At(1)
		// receive out of order: tag 2 first even though tag 1 arrived first
		b, err := c.Recv(0, 2)
		if err != nil {
			t.Error(err)
			return
		}
		a, err := c.Recv(0, 1)
		if err != nil {
			t.Error(err)
			return
		}
		if a[0] != 1 || b[0] != 2 {
			t.Errorf("tag matching broken: %v %v", a, b)
		}
	}()
	c0 := w.At(0)
	c0.Send(1, 1, []float64{1})
	c0.Send(1, 2, []float64{2})
	<-done
}

func TestSendCopiesData(t *testing.T) {
	w := NewWorld(2)
	buf := []float64{42}
	w.At(0).Send(1, 7, buf)
	buf[0] = -1
	got, err := w.At(1).Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatal("send must copy the payload")
	}
}

func TestBcastAndAllreduce(t *testing.T) {
	const size = 6
	var wg sync.WaitGroup
	w := NewWorld(size)
	sums := make([]float64, size)
	bcasts := make([][]float64, size)
	all := []int{0, 1, 2, 3, 4, 5}
	for r := 0; r < size; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := w.At(r)
			var data []float64
			if r == 2 {
				data = []float64{3.5}
			}
			var err error
			if bcasts[r], err = c.Bcast(2, 9, data, all); err != nil {
				t.Error(err)
				return
			}
			if sums[r], err = c.AllreduceSum(50, float64(r)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	for r := 0; r < size; r++ {
		if bcasts[r][0] != 3.5 {
			t.Fatalf("rank %d bcast got %v", r, bcasts[r])
		}
		if sums[r] != 15 {
			t.Fatalf("rank %d allreduce got %g", r, sums[r])
		}
	}
}

func TestGridOwnership(t *testing.T) {
	g := Grid{P: 2, Q: 3}
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			o := g.Owner(i, j)
			if o < 0 || o >= 6 {
				t.Fatalf("owner %d out of range", o)
			}
			seen[o] = true
		}
	}
	if len(seen) != 6 {
		t.Fatalf("not all ranks own tiles: %v", seen)
	}
	// DiagRecipients(0): owners of column-0 panel tiles (i%2)*3, i=1..5,
	// minus the diagonal owner 0 → just rank 3.
	if got := g.DiagRecipients(0, 6); len(got) != 1 || got[0] != 3 {
		t.Fatalf("DiagRecipients(0,6) = %v, want [3]", got)
	}
	for i := 0; i < 6; i++ {
		for k := 0; k <= i; k++ {
			for _, r := range g.PanelRecipients(i, k, 6) {
				if r == g.Owner(i, k) {
					t.Fatalf("panel (%d,%d) recipient set includes its own owner", i, k)
				}
			}
		}
	}
}

// distProblem builds the shared test inputs.
func distProblem(n int) (*cov.Kernel, []geom.Point) {
	r := rng.New(77)
	pts := geom.GeneratePerturbedGrid(n, r)
	pts = geom.ApplyPerm(pts, geom.MortonOrder(pts))
	return cov.NewKernel(cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5}), pts
}

func TestDistributedCholeskyMatchesDense(t *testing.T) {
	for _, cfg := range []struct {
		n, nb, p, q int
	}{
		{60, 15, 2, 2},
		{90, 16, 2, 3}, // ragged tiles, rectangular grid
		{48, 12, 1, 4},
		{48, 12, 4, 1},
		{40, 40, 2, 2}, // single tile: only rank owning it works
	} {
		k, pts := distProblem(cfg.n)
		grid := Grid{P: cfg.p, Q: cfg.q}

		// dense reference
		ref := la.NewMat(cfg.n, cfg.n)
		k.Matrix(ref, pts, geom.Euclidean)
		cov.AddNugget(ref, 1e-10)
		if err := la.Potrf(ref); err != nil {
			t.Fatal(err)
		}
		wantLogDet := la.LogDetFromChol(ref)

		var gathered *la.Mat
		var logDets [16]float64
		errs := RunWorld(cfg.p*cfg.q, func(c *Comm) error {
			m := NewDistFromKernel(c.Rank(), grid, k, pts, geom.Euclidean, cfg.nb, 1e-10)
			if err := m.Cholesky(c); err != nil {
				return err
			}
			ld, err := m.LogDet(c)
			if err != nil {
				return err
			}
			logDets[c.Rank()] = ld
			g, err := m.Gather(c)
			if err != nil {
				return err
			}
			if g != nil {
				gathered = g
			}
			return nil
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("grid %dx%d rank %d: %v", cfg.p, cfg.q, r, err)
			}
		}
		for r := 0; r < cfg.p*cfg.q; r++ {
			if math.Abs(logDets[r]-wantLogDet) > 1e-8*math.Abs(wantLogDet) {
				t.Fatalf("grid %dx%d: rank %d logdet %g want %g", cfg.p, cfg.q, r, logDets[r], wantLogDet)
			}
		}
		var worst float64
		for i := 0; i < cfg.n; i++ {
			for j := 0; j <= i; j++ {
				if d := math.Abs(gathered.At(i, j) - ref.At(i, j)); d > worst {
					worst = d
				}
			}
		}
		if worst > 1e-9 {
			t.Fatalf("grid %dx%d: factor deviates from dense by %g", cfg.p, cfg.q, worst)
		}
	}
}

func TestDistributedCholeskyShardsAreDisjoint(t *testing.T) {
	k, pts := distProblem(64)
	grid := Grid{P: 2, Q: 2}
	counts := make([]int, 4)
	RunWorld(4, func(c *Comm) error {
		m := NewDistFromKernel(c.Rank(), grid, k, pts, geom.Euclidean, 16, 0)
		counts[c.Rank()] = len(m.local)
		// a rank never materializes tiles it does not own
		for key := range m.local {
			if grid.Owner(key.i, key.j) != c.Rank() {
				t.Errorf("rank %d holds foreign tile %v", c.Rank(), key)
			}
		}
		return nil
	})
	total := 0
	for _, ct := range counts {
		total += ct
	}
	if total != 10 { // MT=4 lower tiles = 4*5/2
		t.Fatalf("shards cover %d tiles, want 10", total)
	}
}

func TestDistributedCholeskyNotSPDFailsEverywhere(t *testing.T) {
	// A zero matrix fails at the first pivot on every rank, in agreement.
	grid := Grid{P: 2, Q: 2}
	errs := RunWorld(4, func(c *Comm) error {
		m := &DistMatrix{N: 32, NB: 8, MT: 4, Grid: grid, Rank: c.Rank(), local: map[tileKey]*la.Mat{}}
		for i := 0; i < 4; i++ {
			for j := 0; j <= i; j++ {
				if grid.Owner(i, j) == c.Rank() {
					m.local[tileKey{i, j}] = la.NewMat(8, 8)
				}
			}
		}
		return m.Cholesky(c)
	})
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d should report the failure", r)
		}
	}
}
