// Package mpi provides a rank-based message-passing layer over Go channels —
// a miniature MPI used to run genuinely distributed-memory algorithms inside
// one process. Ranks share no data structures: every tile that crosses a
// rank boundary is copied through a mailbox, exactly as an MPI program would
// send it over the wire.
//
// The distributed tiled Cholesky factorizations in this package (dense in
// dist_chol.go, TLR in dist_tlr.go) are the real-execution counterparts of
// the cluster package's simulator: the same 2D block-cyclic ownership and
// panel broadcasts, executed rather than modeled. Per-rank traffic counters
// (CommStats) record the bytes each rank actually sends and receives so the
// analytic communication model can be validated against real message
// volumes (paperbench -dist).
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// message is one tagged payload in flight. epoch stamps the membership
// epoch it was sent under: after a shrink, messages from the previous epoch
// are stale by definition and receivers discard them on sight.
type message struct {
	src, tag int
	epoch    int64
	data     []float64
}

// MsgVerdict is a fault-injection decision for one message transmission.
type MsgVerdict int

// Verdicts a MsgHook can return.
const (
	MsgDeliver MsgVerdict = iota // deliver untouched
	MsgDrop                      // lose this transmission (the sender retransmits)
	MsgDelay                     // deliver after Delay
)

// MsgFault is the outcome a MsgHook assigns to one transmission.
type MsgFault struct {
	Verdict MsgVerdict
	Delay   time.Duration
}

// MsgHook intercepts every cross-rank transmission (attempt counts the
// retransmissions of one logical message). Nil-by-default: the happy path
// pays one nil check per Send.
type MsgHook func(src, dst, tag int, bytes int64, attempt int) MsgFault

// maxTransmits bounds Send's retransmit loop under an injected-drop hook: a
// message dropped on every transmission is genuinely lost and surfaces as a
// receiver-side timeout instead of an unbounded spin.
const maxTransmits = 4

// World is a communicator group of size ranks with reliable, ordered,
// tag-matched delivery.
type World struct {
	size  int
	boxes []*mailbox
	stats []commCounters
	trace *commTrace // nil until EnableTrace

	// hook and recvTimeout are configured before Run (never concurrently
	// with it); see SetMsgHook / SetRecvTimeout.
	hook        MsgHook
	recvTimeout time.Duration

	// Rank-failure poisoning: the first rank to fail (error return or panic
	// inside Run) records its error and wakes every blocked Recv, which then
	// returns the failure instead of waiting forever for a message its dead
	// peer will never send.
	failMu   sync.Mutex
	failErr  error
	poisoned atomic.Bool

	// Membership: alive flags, the epoch that advances at every MarkDead,
	// and per-rank last-heard-from stamps (see Health). Run spawns
	// goroutines only for live ranks, so a shrunken World keeps the
	// original rank numbering while executing on the survivors.
	alive     []atomic.Bool
	epoch     atomic.Int64
	lastHeard []atomic.Int64
}

// SetMsgHook installs the fault-injection hook for cross-rank messages.
// Call before Run; a nil hook (the default) costs nothing.
func (w *World) SetMsgHook(h MsgHook) { w.hook = h }

// SetRecvTimeout bounds every Recv: a rank blocked longer than d returns a
// timeout error instead of deadlocking. Zero (the default) waits forever.
// Call before Run.
func (w *World) SetRecvTimeout(d time.Duration) { w.recvTimeout = d }

// Err returns the error that poisoned the world (nil while healthy).
func (w *World) Err() error {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return w.failErr
}

// poison records the first failure and wakes every blocked receiver. Both
// clean error returns and panics poison: either way the rank stops sending,
// and any peer blocked on it must unblock with a diagnosis.
func (w *World) poison(err error) {
	w.failMu.Lock()
	if w.failErr == nil {
		w.failErr = err
	}
	w.failMu.Unlock()
	w.poisoned.Store(true)
	for _, mb := range w.boxes {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// mailbox buffers incoming messages for one rank.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
}

// commCounters accumulates one rank's cross-rank traffic.
type commCounters struct {
	bytesSent, bytesRecv atomic.Int64
	msgsSent, msgsRecv   atomic.Int64
}

// CommStats is a snapshot of one rank's cross-rank traffic. Self-deliveries
// (src == dst) never touch the wire in a real MPI and are not counted.
type CommStats struct {
	BytesSent, BytesRecv int64
	MsgsSent, MsgsRecv   int64
}

// Sub returns the traffic accumulated between snapshot prev and s — the
// idiom for measuring one phase (e.g. factorization only).
func (s CommStats) Sub(prev CommStats) CommStats {
	return CommStats{
		BytesSent: s.BytesSent - prev.BytesSent,
		BytesRecv: s.BytesRecv - prev.BytesRecv,
		MsgsSent:  s.MsgsSent - prev.MsgsSent,
		MsgsRecv:  s.MsgsRecv - prev.MsgsRecv,
	}
}

// NewWorld creates a communicator group with the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{
		size: size, boxes: make([]*mailbox, size), stats: make([]commCounters, size),
		alive: make([]atomic.Bool, size), lastHeard: make([]atomic.Int64, size),
	}
	for i := range w.boxes {
		mb := &mailbox{}
		mb.cond = sync.NewCond(&mb.mu)
		w.boxes[i] = mb
		w.alive[i].Store(true)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats returns a snapshot of rank's cumulative cross-rank traffic.
func (w *World) Stats(rank int) CommStats {
	c := &w.stats[rank]
	return CommStats{
		BytesSent: c.bytesSent.Load(), BytesRecv: c.bytesRecv.Load(),
		MsgsSent: c.msgsSent.Load(), MsgsRecv: c.msgsRecv.Load(),
	}
}

// Comm is one rank's endpoint.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Stats returns a snapshot of this rank's cumulative cross-rank traffic.
func (c *Comm) Stats() CommStats { return c.world.Stats(c.rank) }

// At returns the endpoint for a rank (each rank goroutine should use only
// its own endpoint; At exists for test setup).
func (w *World) At(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Send delivers a copy of data to dst under tag. Sends never block (the
// mailbox is unbounded), which makes naturally deadlock-free programs out of
// panel-broadcast algorithms. Under an injected-drop MsgHook the transmission
// is retried up to maxTransmits times; a message dropped every time is lost
// and surfaces at the receiver as a deadline error.
func (c *Comm) Send(dst, tag int, data []float64) {
	c.world.heard(c.rank)
	epoch := c.world.epoch.Load()
	if dst == c.rank {
		// self-sends are legal and common in broadcast loops
		c.deliver(message{src: c.rank, tag: tag, epoch: epoch, data: append([]float64(nil), data...)})
		return
	}
	if !c.world.Alive(dst) {
		// A send to a dead rank vanishes, as it would on a real
		// interconnect; leaving it enqueued would break the drained-mailbox
		// reuse contract for a peer that will never Recv again.
		return
	}
	if hook := c.world.hook; hook != nil {
		delivered := false
		for attempt := 0; attempt < maxTransmits; attempt++ {
			f := hook(c.rank, dst, tag, int64(8*len(data)), attempt)
			if f.Verdict == MsgDrop {
				continue // retransmit
			}
			if f.Verdict == MsgDelay && f.Delay > 0 {
				time.Sleep(f.Delay)
			}
			delivered = true
			break
		}
		if !delivered {
			return
		}
	}
	st := &c.world.stats[c.rank]
	st.bytesSent.Add(int64(8 * len(data)))
	st.msgsSent.Add(1)
	cntMsgsSent.Inc()
	cntBytesSent.Add(int64(8 * len(data)))
	c.world.logComm(c.rank, dst, true, tag, int64(8*len(data)))
	c.world.boxes[dst].put(message{src: c.rank, tag: tag, epoch: epoch, data: append([]float64(nil), data...)})
}

func (c *Comm) deliver(m message) { c.world.boxes[c.rank].put(m) }

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.pending = append(mb.pending, m)
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. It fails instead of blocking forever when the world
// is poisoned by a rank failure, when src is already marked dead, or when
// the world's receive deadline passes — a timeout is diagnosed as the
// death of the silent source and wraps a RankDeath, so recovery layers can
// shrink the world instead of merely reporting a hang. Pending messages
// are always drained first, even on a poisoned world, so a coordinated
// protocol whose messages are already in flight (the SPD agreement
// allreduce) completes before the poison error surfaces; messages stamped
// with a previous membership epoch are discarded on sight.
func (c *Comm) Recv(src, tag int) ([]float64, error) {
	mb := c.world.boxes[c.rank]
	var deadline time.Time
	if d := c.world.recvTimeout; d > 0 {
		deadline = time.Now().Add(d)
		t := time.AfterFunc(d, func() {
			mb.mu.Lock()
			mb.cond.Broadcast()
			mb.mu.Unlock()
		})
		defer t.Stop()
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		epoch := c.world.epoch.Load()
		for i := 0; i < len(mb.pending); i++ {
			m := mb.pending[i]
			if m.epoch != epoch {
				// stale transmission from before a shrink: drop and rescan
				mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
				i--
				continue
			}
			if m.src == src && m.tag == tag {
				mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
				if src != c.rank {
					st := &c.world.stats[c.rank]
					st.bytesRecv.Add(int64(8 * len(m.data)))
					st.msgsRecv.Add(1)
					c.world.logComm(c.rank, src, false, tag, int64(8*len(m.data)))
				}
				return m.data, nil
			}
		}
		if !c.world.Alive(src) {
			return nil, fmt.Errorf("mpi: rank %d: recv(src %d, tag %d): %w",
				c.rank, src, tag, &RankDeath{Rank: src, Epoch: epoch})
		}
		if c.world.poisoned.Load() {
			return nil, fmt.Errorf("mpi: rank %d: recv(src %d, tag %d) aborted: %w", c.rank, src, tag, c.world.Err())
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil, fmt.Errorf("mpi: rank %d: recv(src %d, tag %d) timed out after %v: %w",
				c.rank, src, tag, c.world.recvTimeout, &RankDeath{Rank: src, Epoch: epoch})
		}
		mb.cond.Wait()
	}
}

// Bcast distributes data from root to every rank in ranks (which must
// include root) and returns the received copy. Non-root callers pass nil.
func (c *Comm) Bcast(root, tag int, data []float64, ranks []int) ([]float64, error) {
	if c.rank == root {
		for _, r := range ranks {
			if r != root {
				c.Send(r, tag, data)
			}
		}
		return data, nil
	}
	return c.Recv(root, tag)
}

// AllreduceSum sums one value across the live ranks (gather to the lowest
// live rank, then broadcast). It uses tag and tag+1; callers must leave
// both free. On a full world the root is rank 0, exactly the historical
// behavior; after a shrink the root moves to the lowest survivor.
func (c *Comm) AllreduceSum(tag int, v float64) (float64, error) {
	out, err := c.allreduce(tag, []float64{v}, func(acc, got []float64) {
		acc[0] += got[0]
	})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// AllreduceSumVec sums one vector elementwise across the live ranks, with
// the same tag discipline as AllreduceSum. When each element has exactly
// one non-zero contributor (per-tile partial results) the elementwise sum
// is exact, so reducing a vector and summing it in a fixed element order
// afterwards yields a result independent of how the tiles are distributed
// — the property that keeps log-determinants and quadratic forms bitwise
// stable across membership changes.
func (c *Comm) AllreduceSumVec(tag int, v []float64) ([]float64, error) {
	return c.allreduce(tag, append([]float64(nil), v...), func(acc, got []float64) {
		for i := range acc {
			acc[i] += got[i]
		}
	})
}

// AllreduceMax computes the maximum of one value across the live ranks,
// with the same tag discipline as AllreduceSum (tag and tag+1 consumed).
func (c *Comm) AllreduceMax(tag int, v float64) (float64, error) {
	out, err := c.allreduce(tag, []float64{v}, func(acc, got []float64) {
		if got[0] > acc[0] {
			acc[0] = got[0]
		}
	})
	if err != nil {
		return 0, err
	}
	return out[0], nil
}

// allreduce gathers every live rank's contribution at the lowest live rank,
// combines in ascending rank order, and broadcasts the result back. acc is
// combined in place.
func (c *Comm) allreduce(tag int, acc []float64, combine func(acc, got []float64)) ([]float64, error) {
	ranks := c.AliveRanks()
	root := ranks[0]
	if c.rank == root {
		for _, r := range ranks {
			if r == root {
				continue
			}
			got, err := c.Recv(r, tag)
			if err != nil {
				return nil, err
			}
			combine(acc, got)
		}
		for _, r := range ranks {
			if r != root {
				c.Send(r, tag+1, acc)
			}
		}
		return acc, nil
	}
	c.Send(root, tag, acc)
	return c.Recv(root, tag+1)
}

// Barrier synchronizes all ranks (counter on rank 0).
func (c *Comm) Barrier(tag int) error {
	_, err := c.AllreduceSum(tag, 0)
	return err
}

// Run runs fn once per rank concurrently and waits for completion; per-rank
// errors are collected by rank index. The World persists across Run calls,
// so algorithms that drain their mailboxes completely (the Cholesky and
// solve routines in this package do) can run repeatedly on one World — the
// reuse pattern core's distributed likelihood evaluator depends on.
//
// A rank that panics is recovered here and reported as its error ("rank N
// panicked: ..."); any rank failure — panic or clean error — poisons the
// world so peers blocked in Recv unblock with a diagnosis instead of
// deadlocking. A previously poisoned world heals at the next Run: the poison
// clears and stale in-flight messages from the aborted protocol are dropped,
// restoring the drained-mailbox reuse contract.
func (w *World) Run(fn func(c *Comm) error) []error {
	if w.poisoned.Load() {
		for _, mb := range w.boxes {
			mb.mu.Lock()
			mb.pending = nil
			mb.mu.Unlock()
		}
		w.failMu.Lock()
		w.failErr = nil
		w.failMu.Unlock()
		w.poisoned.Store(false)
	}
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		if !w.alive[r].Load() {
			continue // shrunken world: no goroutine for a dead rank
		}
		r := r
		w.heard(r)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					// A panic is the death of this rank: the poison error
					// carries the rank's identity and the failure epoch so
					// survivors (whose Recvs all fail with it) can tell
					// exactly which peer to shrink away.
					death := &RankDeath{Rank: r, Epoch: w.epoch.Load()}
					var err error
					if e, ok := rec.(error); ok {
						err = fmt.Errorf("mpi: rank %d panicked: %w (%w)", r, e, death)
					} else {
						err = fmt.Errorf("mpi: rank %d panicked: %v (%w)", r, rec, death)
					}
					errs[r] = err
					w.poison(err)
				}
			}()
			if err := fn(w.At(r)); err != nil {
				errs[r] = err
				w.poison(fmt.Errorf("mpi: rank %d failed: %w", r, err))
			}
		}()
	}
	wg.Wait()
	return errs
}

// RunWorld runs fn once per rank of a fresh World and waits for completion.
func RunWorld(size int, fn func(c *Comm) error) []error {
	return NewWorld(size).Run(fn)
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
