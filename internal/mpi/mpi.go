// Package mpi provides a rank-based message-passing layer over Go channels —
// a miniature MPI used to run genuinely distributed-memory algorithms inside
// one process. Ranks share no data structures: every tile that crosses a
// rank boundary is copied through a mailbox, exactly as an MPI program would
// send it over the wire.
//
// The distributed tiled Cholesky factorizations in this package (dense in
// dist_chol.go, TLR in dist_tlr.go) are the real-execution counterparts of
// the cluster package's simulator: the same 2D block-cyclic ownership and
// panel broadcasts, executed rather than modeled. Per-rank traffic counters
// (CommStats) record the bytes each rank actually sends and receives so the
// analytic communication model can be validated against real message
// volumes (paperbench -dist).
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// message is one tagged payload in flight.
type message struct {
	src, tag int
	data     []float64
}

// World is a communicator group of size ranks with reliable, ordered,
// tag-matched delivery.
type World struct {
	size  int
	boxes []*mailbox
	stats []commCounters
	trace *commTrace // nil until EnableTrace
}

// mailbox buffers incoming messages for one rank.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
}

// commCounters accumulates one rank's cross-rank traffic.
type commCounters struct {
	bytesSent, bytesRecv atomic.Int64
	msgsSent, msgsRecv   atomic.Int64
}

// CommStats is a snapshot of one rank's cross-rank traffic. Self-deliveries
// (src == dst) never touch the wire in a real MPI and are not counted.
type CommStats struct {
	BytesSent, BytesRecv int64
	MsgsSent, MsgsRecv   int64
}

// Sub returns the traffic accumulated between snapshot prev and s — the
// idiom for measuring one phase (e.g. factorization only).
func (s CommStats) Sub(prev CommStats) CommStats {
	return CommStats{
		BytesSent: s.BytesSent - prev.BytesSent,
		BytesRecv: s.BytesRecv - prev.BytesRecv,
		MsgsSent:  s.MsgsSent - prev.MsgsSent,
		MsgsRecv:  s.MsgsRecv - prev.MsgsRecv,
	}
}

// NewWorld creates a communicator group with the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{size: size, boxes: make([]*mailbox, size), stats: make([]commCounters, size)}
	for i := range w.boxes {
		mb := &mailbox{}
		mb.cond = sync.NewCond(&mb.mu)
		w.boxes[i] = mb
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats returns a snapshot of rank's cumulative cross-rank traffic.
func (w *World) Stats(rank int) CommStats {
	c := &w.stats[rank]
	return CommStats{
		BytesSent: c.bytesSent.Load(), BytesRecv: c.bytesRecv.Load(),
		MsgsSent: c.msgsSent.Load(), MsgsRecv: c.msgsRecv.Load(),
	}
}

// Comm is one rank's endpoint.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Stats returns a snapshot of this rank's cumulative cross-rank traffic.
func (c *Comm) Stats() CommStats { return c.world.Stats(c.rank) }

// At returns the endpoint for a rank (each rank goroutine should use only
// its own endpoint; At exists for test setup).
func (w *World) At(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Send delivers a copy of data to dst under tag. Sends never block (the
// mailbox is unbounded), which makes naturally deadlock-free programs out of
// panel-broadcast algorithms.
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst == c.rank {
		// self-sends are legal and common in broadcast loops
		c.deliver(message{src: c.rank, tag: tag, data: append([]float64(nil), data...)})
		return
	}
	st := &c.world.stats[c.rank]
	st.bytesSent.Add(int64(8 * len(data)))
	st.msgsSent.Add(1)
	cntMsgsSent.Inc()
	cntBytesSent.Add(int64(8 * len(data)))
	c.world.logComm(c.rank, dst, true, tag, int64(8*len(data)))
	c.world.boxes[dst].put(message{src: c.rank, tag: tag, data: append([]float64(nil), data...)})
}

func (c *Comm) deliver(m message) { c.world.boxes[c.rank].put(m) }

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.pending = append(mb.pending, m)
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload.
func (c *Comm) Recv(src, tag int) []float64 {
	mb := c.world.boxes[c.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.pending {
			if m.src == src && m.tag == tag {
				mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
				if src != c.rank {
					st := &c.world.stats[c.rank]
					st.bytesRecv.Add(int64(8 * len(m.data)))
					st.msgsRecv.Add(1)
					c.world.logComm(c.rank, src, false, tag, int64(8*len(m.data)))
				}
				return m.data
			}
		}
		mb.cond.Wait()
	}
}

// Bcast distributes data from root to every rank in ranks (which must
// include root) and returns the received copy. Non-root callers pass nil.
func (c *Comm) Bcast(root, tag int, data []float64, ranks []int) []float64 {
	if c.rank == root {
		for _, r := range ranks {
			if r != root {
				c.Send(r, tag, data)
			}
		}
		return data
	}
	return c.Recv(root, tag)
}

// AllreduceSum sums one value across all ranks (gather to rank 0, then
// broadcast). It uses tag and tag+1; callers must leave both free.
func (c *Comm) AllreduceSum(tag int, v float64) float64 {
	if c.rank == 0 {
		total := v
		for r := 1; r < c.Size(); r++ {
			total += c.Recv(r, tag)[0]
		}
		for r := 1; r < c.Size(); r++ {
			c.Send(r, tag+1, []float64{total})
		}
		return total
	}
	c.Send(0, tag, []float64{v})
	return c.Recv(0, tag+1)[0]
}

// AllreduceMax computes the maximum of one value across all ranks, with the
// same tag discipline as AllreduceSum (tag and tag+1 are consumed).
func (c *Comm) AllreduceMax(tag int, v float64) float64 {
	if c.rank == 0 {
		best := v
		for r := 1; r < c.Size(); r++ {
			if got := c.Recv(r, tag)[0]; got > best {
				best = got
			}
		}
		for r := 1; r < c.Size(); r++ {
			c.Send(r, tag+1, []float64{best})
		}
		return best
	}
	c.Send(0, tag, []float64{v})
	return c.Recv(0, tag+1)[0]
}

// Barrier synchronizes all ranks (counter on rank 0).
func (c *Comm) Barrier(tag int) {
	c.AllreduceSum(tag, 0)
}

// Run runs fn once per rank concurrently and waits for completion; per-rank
// errors are collected by rank index. The World persists across Run calls,
// so algorithms that drain their mailboxes completely (the Cholesky and
// solve routines in this package do) can run repeatedly on one World — the
// reuse pattern core's distributed likelihood evaluator depends on.
func (w *World) Run(fn func(c *Comm) error) []error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = fn(w.At(r))
		}()
	}
	wg.Wait()
	return errs
}

// RunWorld runs fn once per rank of a fresh World and waits for completion.
func RunWorld(size int, fn func(c *Comm) error) []error {
	return NewWorld(size).Run(fn)
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
