// Package mpi provides a rank-based message-passing layer over Go channels —
// a miniature MPI used to run genuinely distributed-memory algorithms inside
// one process. Ranks share no data structures: every tile that crosses a
// rank boundary is copied through a mailbox, exactly as an MPI program would
// send it over the wire.
//
// The distributed tiled Cholesky factorizations in this package (dense in
// dist_chol.go, TLR in dist_tlr.go) are the real-execution counterparts of
// the cluster package's simulator: the same 2D block-cyclic ownership and
// panel broadcasts, executed rather than modeled. Per-rank traffic counters
// (CommStats) record the bytes each rank actually sends and receives so the
// analytic communication model can be validated against real message
// volumes (paperbench -dist).
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// message is one tagged payload in flight.
type message struct {
	src, tag int
	data     []float64
}

// MsgVerdict is a fault-injection decision for one message transmission.
type MsgVerdict int

// Verdicts a MsgHook can return.
const (
	MsgDeliver MsgVerdict = iota // deliver untouched
	MsgDrop                      // lose this transmission (the sender retransmits)
	MsgDelay                     // deliver after Delay
)

// MsgFault is the outcome a MsgHook assigns to one transmission.
type MsgFault struct {
	Verdict MsgVerdict
	Delay   time.Duration
}

// MsgHook intercepts every cross-rank transmission (attempt counts the
// retransmissions of one logical message). Nil-by-default: the happy path
// pays one nil check per Send.
type MsgHook func(src, dst, tag int, bytes int64, attempt int) MsgFault

// maxTransmits bounds Send's retransmit loop under an injected-drop hook: a
// message dropped on every transmission is genuinely lost and surfaces as a
// receiver-side timeout instead of an unbounded spin.
const maxTransmits = 4

// World is a communicator group of size ranks with reliable, ordered,
// tag-matched delivery.
type World struct {
	size  int
	boxes []*mailbox
	stats []commCounters
	trace *commTrace // nil until EnableTrace

	// hook and recvTimeout are configured before Run (never concurrently
	// with it); see SetMsgHook / SetRecvTimeout.
	hook        MsgHook
	recvTimeout time.Duration

	// Rank-failure poisoning: the first rank to fail (error return or panic
	// inside Run) records its error and wakes every blocked Recv, which then
	// returns the failure instead of waiting forever for a message its dead
	// peer will never send.
	failMu   sync.Mutex
	failErr  error
	poisoned atomic.Bool
}

// SetMsgHook installs the fault-injection hook for cross-rank messages.
// Call before Run; a nil hook (the default) costs nothing.
func (w *World) SetMsgHook(h MsgHook) { w.hook = h }

// SetRecvTimeout bounds every Recv: a rank blocked longer than d returns a
// timeout error instead of deadlocking. Zero (the default) waits forever.
// Call before Run.
func (w *World) SetRecvTimeout(d time.Duration) { w.recvTimeout = d }

// Err returns the error that poisoned the world (nil while healthy).
func (w *World) Err() error {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return w.failErr
}

// poison records the first failure and wakes every blocked receiver. Both
// clean error returns and panics poison: either way the rank stops sending,
// and any peer blocked on it must unblock with a diagnosis.
func (w *World) poison(err error) {
	w.failMu.Lock()
	if w.failErr == nil {
		w.failErr = err
	}
	w.failMu.Unlock()
	w.poisoned.Store(true)
	for _, mb := range w.boxes {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// mailbox buffers incoming messages for one rank.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
}

// commCounters accumulates one rank's cross-rank traffic.
type commCounters struct {
	bytesSent, bytesRecv atomic.Int64
	msgsSent, msgsRecv   atomic.Int64
}

// CommStats is a snapshot of one rank's cross-rank traffic. Self-deliveries
// (src == dst) never touch the wire in a real MPI and are not counted.
type CommStats struct {
	BytesSent, BytesRecv int64
	MsgsSent, MsgsRecv   int64
}

// Sub returns the traffic accumulated between snapshot prev and s — the
// idiom for measuring one phase (e.g. factorization only).
func (s CommStats) Sub(prev CommStats) CommStats {
	return CommStats{
		BytesSent: s.BytesSent - prev.BytesSent,
		BytesRecv: s.BytesRecv - prev.BytesRecv,
		MsgsSent:  s.MsgsSent - prev.MsgsSent,
		MsgsRecv:  s.MsgsRecv - prev.MsgsRecv,
	}
}

// NewWorld creates a communicator group with the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{size: size, boxes: make([]*mailbox, size), stats: make([]commCounters, size)}
	for i := range w.boxes {
		mb := &mailbox{}
		mb.cond = sync.NewCond(&mb.mu)
		w.boxes[i] = mb
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats returns a snapshot of rank's cumulative cross-rank traffic.
func (w *World) Stats(rank int) CommStats {
	c := &w.stats[rank]
	return CommStats{
		BytesSent: c.bytesSent.Load(), BytesRecv: c.bytesRecv.Load(),
		MsgsSent: c.msgsSent.Load(), MsgsRecv: c.msgsRecv.Load(),
	}
}

// Comm is one rank's endpoint.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Stats returns a snapshot of this rank's cumulative cross-rank traffic.
func (c *Comm) Stats() CommStats { return c.world.Stats(c.rank) }

// At returns the endpoint for a rank (each rank goroutine should use only
// its own endpoint; At exists for test setup).
func (w *World) At(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Send delivers a copy of data to dst under tag. Sends never block (the
// mailbox is unbounded), which makes naturally deadlock-free programs out of
// panel-broadcast algorithms. Under an injected-drop MsgHook the transmission
// is retried up to maxTransmits times; a message dropped every time is lost
// and surfaces at the receiver as a deadline error.
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst == c.rank {
		// self-sends are legal and common in broadcast loops
		c.deliver(message{src: c.rank, tag: tag, data: append([]float64(nil), data...)})
		return
	}
	if hook := c.world.hook; hook != nil {
		delivered := false
		for attempt := 0; attempt < maxTransmits; attempt++ {
			f := hook(c.rank, dst, tag, int64(8*len(data)), attempt)
			if f.Verdict == MsgDrop {
				continue // retransmit
			}
			if f.Verdict == MsgDelay && f.Delay > 0 {
				time.Sleep(f.Delay)
			}
			delivered = true
			break
		}
		if !delivered {
			return
		}
	}
	st := &c.world.stats[c.rank]
	st.bytesSent.Add(int64(8 * len(data)))
	st.msgsSent.Add(1)
	cntMsgsSent.Inc()
	cntBytesSent.Add(int64(8 * len(data)))
	c.world.logComm(c.rank, dst, true, tag, int64(8*len(data)))
	c.world.boxes[dst].put(message{src: c.rank, tag: tag, data: append([]float64(nil), data...)})
}

func (c *Comm) deliver(m message) { c.world.boxes[c.rank].put(m) }

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.pending = append(mb.pending, m)
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload. It fails instead of blocking forever when the world
// is poisoned by a rank failure or when the world's receive deadline passes.
// Pending messages are always drained first, even on a poisoned world, so a
// coordinated protocol whose messages are already in flight (the SPD
// agreement allreduce) completes before the poison error surfaces.
func (c *Comm) Recv(src, tag int) ([]float64, error) {
	mb := c.world.boxes[c.rank]
	var deadline time.Time
	if d := c.world.recvTimeout; d > 0 {
		deadline = time.Now().Add(d)
		t := time.AfterFunc(d, func() {
			mb.mu.Lock()
			mb.cond.Broadcast()
			mb.mu.Unlock()
		})
		defer t.Stop()
	}
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.pending {
			if m.src == src && m.tag == tag {
				mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
				if src != c.rank {
					st := &c.world.stats[c.rank]
					st.bytesRecv.Add(int64(8 * len(m.data)))
					st.msgsRecv.Add(1)
					c.world.logComm(c.rank, src, false, tag, int64(8*len(m.data)))
				}
				return m.data, nil
			}
		}
		if c.world.poisoned.Load() {
			return nil, fmt.Errorf("mpi: rank %d: recv(src %d, tag %d) aborted: %w", c.rank, src, tag, c.world.Err())
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil, fmt.Errorf("mpi: rank %d: recv(src %d, tag %d) timed out after %v", c.rank, src, tag, c.world.recvTimeout)
		}
		mb.cond.Wait()
	}
}

// Bcast distributes data from root to every rank in ranks (which must
// include root) and returns the received copy. Non-root callers pass nil.
func (c *Comm) Bcast(root, tag int, data []float64, ranks []int) ([]float64, error) {
	if c.rank == root {
		for _, r := range ranks {
			if r != root {
				c.Send(r, tag, data)
			}
		}
		return data, nil
	}
	return c.Recv(root, tag)
}

// AllreduceSum sums one value across all ranks (gather to rank 0, then
// broadcast). It uses tag and tag+1; callers must leave both free.
func (c *Comm) AllreduceSum(tag int, v float64) (float64, error) {
	if c.rank == 0 {
		total := v
		for r := 1; r < c.Size(); r++ {
			got, err := c.Recv(r, tag)
			if err != nil {
				return 0, err
			}
			total += got[0]
		}
		for r := 1; r < c.Size(); r++ {
			c.Send(r, tag+1, []float64{total})
		}
		return total, nil
	}
	c.Send(0, tag, []float64{v})
	got, err := c.Recv(0, tag+1)
	if err != nil {
		return 0, err
	}
	return got[0], nil
}

// AllreduceMax computes the maximum of one value across all ranks, with the
// same tag discipline as AllreduceSum (tag and tag+1 are consumed).
func (c *Comm) AllreduceMax(tag int, v float64) (float64, error) {
	if c.rank == 0 {
		best := v
		for r := 1; r < c.Size(); r++ {
			got, err := c.Recv(r, tag)
			if err != nil {
				return 0, err
			}
			if got[0] > best {
				best = got[0]
			}
		}
		for r := 1; r < c.Size(); r++ {
			c.Send(r, tag+1, []float64{best})
		}
		return best, nil
	}
	c.Send(0, tag, []float64{v})
	got, err := c.Recv(0, tag+1)
	if err != nil {
		return 0, err
	}
	return got[0], nil
}

// Barrier synchronizes all ranks (counter on rank 0).
func (c *Comm) Barrier(tag int) error {
	_, err := c.AllreduceSum(tag, 0)
	return err
}

// Run runs fn once per rank concurrently and waits for completion; per-rank
// errors are collected by rank index. The World persists across Run calls,
// so algorithms that drain their mailboxes completely (the Cholesky and
// solve routines in this package do) can run repeatedly on one World — the
// reuse pattern core's distributed likelihood evaluator depends on.
//
// A rank that panics is recovered here and reported as its error ("rank N
// panicked: ..."); any rank failure — panic or clean error — poisons the
// world so peers blocked in Recv unblock with a diagnosis instead of
// deadlocking. A previously poisoned world heals at the next Run: the poison
// clears and stale in-flight messages from the aborted protocol are dropped,
// restoring the drained-mailbox reuse contract.
func (w *World) Run(fn func(c *Comm) error) []error {
	if w.poisoned.Load() {
		for _, mb := range w.boxes {
			mb.mu.Lock()
			mb.pending = nil
			mb.mu.Unlock()
		}
		w.failMu.Lock()
		w.failErr = nil
		w.failMu.Unlock()
		w.poisoned.Store(false)
	}
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					var err error
					if e, ok := rec.(error); ok {
						err = fmt.Errorf("mpi: rank %d panicked: %w", r, e)
					} else {
						err = fmt.Errorf("mpi: rank %d panicked: %v", r, rec)
					}
					errs[r] = err
					w.poison(err)
				}
			}()
			if err := fn(w.At(r)); err != nil {
				errs[r] = err
				w.poison(fmt.Errorf("mpi: rank %d failed: %w", r, err))
			}
		}()
	}
	wg.Wait()
	return errs
}

// RunWorld runs fn once per rank of a fresh World and waits for completion.
func RunWorld(size int, fn func(c *Comm) error) []error {
	return NewWorld(size).Run(fn)
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
