// Package mpi provides a rank-based message-passing layer over Go channels —
// a miniature MPI used to run genuinely distributed-memory algorithms inside
// one process. Ranks share no data structures: every tile that crosses a
// rank boundary is copied through a mailbox, exactly as an MPI program would
// send it over the wire.
//
// The distributed tiled Cholesky in this package (dist_chol.go) is the
// real-execution counterpart of the cluster package's simulator: the same
// 2D block-cyclic ownership and panel broadcasts, executed rather than
// modeled.
package mpi

import (
	"fmt"
	"sync"
)

// message is one tagged payload in flight.
type message struct {
	src, tag int
	data     []float64
}

// World is a communicator group of size ranks with reliable, ordered,
// tag-matched delivery.
type World struct {
	size  int
	boxes []*mailbox
}

// mailbox buffers incoming messages for one rank.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
}

// NewWorld creates a communicator group with the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic("mpi: world size must be positive")
	}
	w := &World{size: size, boxes: make([]*mailbox, size)}
	for i := range w.boxes {
		mb := &mailbox{}
		mb.cond = sync.NewCond(&mb.mu)
		w.boxes[i] = mb
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm is one rank's endpoint.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// At returns the endpoint for a rank (each rank goroutine should use only
// its own endpoint; At exists for test setup).
func (w *World) At(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Send delivers a copy of data to dst under tag. Sends never block (the
// mailbox is unbounded), which makes naturally deadlock-free programs out of
// panel-broadcast algorithms.
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst == c.rank {
		// self-sends are legal and common in broadcast loops
		c.deliver(message{src: c.rank, tag: tag, data: append([]float64(nil), data...)})
		return
	}
	c.world.boxes[dst].put(message{src: c.rank, tag: tag, data: append([]float64(nil), data...)})
}

func (c *Comm) deliver(m message) { c.world.boxes[c.rank].put(m) }

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.pending = append(mb.pending, m)
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload.
func (c *Comm) Recv(src, tag int) []float64 {
	mb := c.world.boxes[c.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.pending {
			if m.src == src && m.tag == tag {
				mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
				return m.data
			}
		}
		mb.cond.Wait()
	}
}

// Bcast distributes data from root to every rank in ranks (which must
// include root) and returns the received copy. Non-root callers pass nil.
func (c *Comm) Bcast(root, tag int, data []float64, ranks []int) []float64 {
	if c.rank == root {
		for _, r := range ranks {
			if r != root {
				c.Send(r, tag, data)
			}
		}
		return data
	}
	return c.Recv(root, tag)
}

// AllreduceSum sums one value across all ranks (gather to rank 0, then
// broadcast).
func (c *Comm) AllreduceSum(tag int, v float64) float64 {
	if c.rank == 0 {
		total := v
		for r := 1; r < c.Size(); r++ {
			total += c.Recv(r, tag)[0]
		}
		for r := 1; r < c.Size(); r++ {
			c.Send(r, tag+1, []float64{total})
		}
		return total
	}
	c.Send(0, tag, []float64{v})
	return c.Recv(0, tag+1)[0]
}

// Barrier synchronizes all ranks (counter on rank 0).
func (c *Comm) Barrier(tag int) {
	c.AllreduceSum(tag, 0)
}
