package mpi

import (
	"testing"
	"time"
)

func TestCommTraceRecordsSendRecv(t *testing.T) {
	w := NewWorld(2)
	w.EnableTrace(time.Now())
	errs := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
			c.Recv(1, 8)
		} else {
			c.Recv(0, 7)
			c.Send(0, 8, []float64{4})
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	ev0, ev1 := w.CommEvents(0), w.CommEvents(1)
	if len(ev0) != 2 || len(ev1) != 2 {
		t.Fatalf("events per rank: %d/%d, want 2/2", len(ev0), len(ev1))
	}
	if !ev0[0].Send || ev0[0].Bytes != 24 || ev0[0].Peer != 1 {
		t.Fatalf("rank 0 first event: %+v", ev0[0])
	}
	if ev1[0].Send || ev1[0].Bytes != 24 || ev1[0].Peer != 0 {
		t.Fatalf("rank 1 first event: %+v", ev1[0])
	}
	for _, e := range append(ev0, ev1...) {
		if e.At < 0 {
			t.Fatalf("event before the epoch: %+v", e)
		}
	}

	evs := w.TraceEvents(4)
	if len(evs) != 4 {
		t.Fatalf("trace events: %d, want 4", len(evs))
	}
	for _, e := range evs {
		if e.Worker < 4 || e.Worker > 5 {
			t.Fatalf("comm lane %d, want 4 or 5", e.Worker)
		}
		if e.Start != e.End {
			t.Fatalf("comm event must be instantaneous: %+v", e)
		}
		if e.ID != -1 {
			t.Fatalf("comm event must not weigh on the critical path: %+v", e)
		}
	}
}

func TestCommTraceDisabledIsFree(t *testing.T) {
	w := NewWorld(2)
	if w.TraceEnabled() {
		t.Fatal("tracing enabled by default")
	}
	w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
		} else {
			c.Recv(0, 1)
		}
		return nil
	})
	if w.CommEvents(0) != nil || w.TraceEvents(0) != nil {
		t.Fatal("disabled trace must return nil")
	}
}

func TestCommTraceSelfSendNotRecorded(t *testing.T) {
	w := NewWorld(1)
	w.EnableTrace(time.Now())
	w.Run(func(c *Comm) error {
		c.Send(0, 1, []float64{1})
		c.Recv(0, 1)
		return nil
	})
	if evs := w.CommEvents(0); len(evs) != 0 {
		t.Fatalf("self-sends must not be traced: %+v", evs)
	}
}
