package mpi

import (
	"math"
	"testing"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/tlr"
)

// sharedTLRFactor builds the shared-memory reference: generate + compress +
// factor with the task runtime, the exact pipeline core's evaluator uses.
func sharedTLRFactor(t *testing.T, k *cov.Kernel, pts []geom.Point, nb int, tol float64, comp tlr.Compressor, nugget float64) *tlr.Matrix {
	t.Helper()
	m := tlr.NewMatrix(len(pts), nb, tol)
	spec := &tlr.GenSpec{K: k, Pts: pts, Metric: geom.Euclidean, Nugget: nugget, Comp: comp}
	if err := tlr.GenCholesky(m, spec, 2); err != nil {
		t.Fatal(err)
	}
	return m
}

func maxAbsDiff(a, b *la.Mat) float64 {
	var worst float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if d := math.Abs(a.At(i, j) - b.At(i, j)); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestDistTLRCholeskyMatchesShared factors the same Σ(θ) with the
// shared-memory TLR pipeline and the distributed one and compares every
// owned tile. Because generation uses per-tile compressor seeding and the
// distributed update order matches the shared DAG's serialization, the
// factors agree to rounding noise on every grid shape, including ragged
// tiles (n=90, nb=16) and rectangular grids.
func TestDistTLRCholeskyMatchesShared(t *testing.T) {
	const (
		n      = 90
		nb     = 16
		tol    = 1e-7
		nugget = 1e-9
	)
	k, pts := distProblem(n)
	comp := tlr.RSVDCompressor{Seed: 42, Oversample: 8}
	ref := sharedTLRFactor(t, k, pts, nb, tol, comp, nugget)

	for _, shape := range [][2]int{{1, 1}, {2, 2}, {2, 3}} {
		grid := Grid{P: shape[0], Q: shape[1]}
		errs := RunWorld(grid.P*grid.Q, func(c *Comm) error {
			d := NewDistTLR(c.Rank(), grid, pts, geom.Euclidean, nb, tol, comp)
			d.Generate(k, nugget)
			if err := d.Cholesky(c); err != nil {
				return err
			}
			for i := 0; i < d.MT; i++ {
				for j := 0; j <= i; j++ {
					if grid.Owner(i, j) != c.Rank() {
						continue
					}
					if i == j {
						// compare lower triangles (Potrf leaves the upper
						// triangle unspecified)
						di := d.TileDim(i)
						for a := 0; a < di; a++ {
							for b := 0; b <= a; b++ {
								got, want := d.Diag(i).At(a, b), ref.Diag(i).At(a, b)
								if math.Abs(got-want) > 1e-12 {
									t.Errorf("grid %dx%d: diag tile %d (%d,%d): got %g want %g",
										grid.P, grid.Q, i, a, b, got, want)
									return nil
								}
							}
						}
					} else {
						got, want := d.Off(i, j), ref.Off(i, j)
						if got.Rank() != want.Rank() {
							t.Errorf("grid %dx%d: tile (%d,%d) rank %d want %d",
								grid.P, grid.Q, i, j, got.Rank(), want.Rank())
							return nil
						}
						if diff := maxAbsDiff(got.Dense(), want.Dense()); diff > 1e-12 {
							t.Errorf("grid %dx%d: tile (%d,%d) deviates by %g",
								grid.P, grid.Q, i, j, diff)
							return nil
						}
					}
				}
			}
			return nil
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("grid %dx%d rank %d: %v", grid.P, grid.Q, r, err)
			}
		}
	}
}

// TestDistTLRLogDetAndSolveMatchShared compares the distributed LogDet and
// forward/backward solves against the shared-memory path on a replicated
// right-hand side.
func TestDistTLRLogDetAndSolveMatchShared(t *testing.T) {
	const (
		n      = 90
		nb     = 16
		tol    = 1e-7
		nugget = 1e-9
	)
	k, pts := distProblem(n)
	comp := tlr.RSVDCompressor{Seed: 42, Oversample: 8}
	ref := sharedTLRFactor(t, k, pts, nb, tol, comp, nugget)
	wantLogDet := ref.LogDet()
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i) * 0.7)
	}
	want := append([]float64(nil), rhs...)
	ref.Solve(want)

	for _, shape := range [][2]int{{1, 1}, {2, 2}, {2, 3}} {
		grid := Grid{P: shape[0], Q: shape[1]}
		size := grid.P * grid.Q
		logDets := make([]float64, size)
		sols := make([][]float64, size)
		errs := RunWorld(size, func(c *Comm) error {
			d := NewDistTLR(c.Rank(), grid, pts, geom.Euclidean, nb, tol, comp)
			d.Generate(k, nugget)
			if err := d.Cholesky(c); err != nil {
				return err
			}
			ld, err := d.LogDet(c)
			if err != nil {
				return err
			}
			logDets[c.Rank()] = ld
			b := append([]float64(nil), rhs...)
			if err := d.Solve(c, b); err != nil {
				return err
			}
			sols[c.Rank()] = b
			return nil
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("grid %dx%d rank %d: %v", grid.P, grid.Q, r, err)
			}
		}
		for r := 0; r < size; r++ {
			if math.Abs(logDets[r]-wantLogDet) > 1e-10*math.Abs(wantLogDet) {
				t.Fatalf("grid %dx%d rank %d: logdet %g want %g", grid.P, grid.Q, r, logDets[r], wantLogDet)
			}
			for i := range want {
				if math.Abs(sols[r][i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
					t.Fatalf("grid %dx%d rank %d: solution[%d] = %g want %g",
						grid.P, grid.Q, r, i, sols[r][i], want[i])
				}
			}
		}
	}
}

// TestDistTLRForwardSolveMatMatchesShared checks the BLAS3 forward solve
// used by prediction variances.
func TestDistTLRForwardSolveMatMatchesShared(t *testing.T) {
	const (
		n   = 64
		nb  = 16
		tol = 1e-7
	)
	k, pts := distProblem(n)
	comp := tlr.SVDCompressor{}
	ref := sharedTLRFactor(t, k, pts, nb, tol, comp, 1e-9)
	rhs := la.NewMat(n, 3)
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			rhs.Set(i, j, math.Cos(float64(i*3+j)*0.3))
		}
	}
	want := rhs.Clone()
	ref.ForwardSolveMat(want)

	grid := Grid{P: 2, Q: 2}
	got := make([]*la.Mat, 4)
	errs := RunWorld(4, func(c *Comm) error {
		d := NewDistTLR(c.Rank(), grid, pts, geom.Euclidean, nb, tol, comp)
		d.Generate(k, 1e-9)
		if err := d.Cholesky(c); err != nil {
			return err
		}
		b := rhs.Clone()
		if err := d.ForwardSolveMat(c, b); err != nil {
			return err
		}
		got[c.Rank()] = b
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 0; r < 4; r++ {
		if diff := maxAbsDiff(got[r], want); diff > 1e-9 {
			t.Fatalf("rank %d: ForwardSolveMat deviates by %g", r, diff)
		}
	}
}

// TestDistTLRWorldReuse factors twice on one World with different θ — the
// evaluator's reuse pattern. A leftover message from evaluation 1 would
// corrupt evaluation 2; exact recipient sets guarantee drained mailboxes.
func TestDistTLRWorldReuse(t *testing.T) {
	const (
		n   = 90
		nb  = 16
		tol = 1e-7
	)
	_, pts := distProblem(n)
	comp := tlr.RSVDCompressor{Seed: 42, Oversample: 8}
	thetas := []cov.Params{
		{Variance: 1, Range: 0.1, Smoothness: 0.5},
		{Variance: 1.7, Range: 0.23, Smoothness: 1.1},
	}
	grid := Grid{P: 2, Q: 3}
	w := NewWorld(6)
	shards := make([]*DistTLR, 6)
	for _, th := range thetas {
		kern := cov.NewKernel(th)
		ref := sharedTLRFactor(t, kern, pts, nb, tol, comp, 1e-9)
		wantLogDet := ref.LogDet()
		logDets := make([]float64, 6)
		errs := w.Run(func(c *Comm) error {
			d := shards[c.Rank()]
			if d == nil {
				d = NewDistTLR(c.Rank(), grid, pts, geom.Euclidean, nb, tol, comp)
				shards[c.Rank()] = d
			}
			d.Generate(kern, 1e-9)
			if err := d.Cholesky(c); err != nil {
				return err
			}
			ld, err := d.LogDet(c)
			if err != nil {
				return err
			}
			logDets[c.Rank()] = ld
			return nil
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("theta %+v rank %d: %v", th, r, err)
			}
		}
		for r := 0; r < 6; r++ {
			if math.Abs(logDets[r]-wantLogDet) > 1e-10*math.Abs(wantLogDet) {
				t.Fatalf("theta %+v rank %d: logdet %g want %g", th, r, logDets[r], wantLogDet)
			}
		}
	}
}

// TestDistTLRNotSPDFailsEverywhere: a matrix with a negative diagonal fails
// on every rank in agreement, and the World stays reusable afterwards.
func TestDistTLRNotSPDFailsEverywhere(t *testing.T) {
	const n, nb = 64, 16
	k, pts := distProblem(n)
	grid := Grid{P: 2, Q: 2}
	w := NewWorld(4)
	errs := w.Run(func(c *Comm) error {
		d := NewDistTLR(c.Rank(), grid, pts, geom.Euclidean, nb, 1e-7, tlr.SVDCompressor{})
		d.Generate(k, 1e-9)
		// wreck every owned diagonal tile
		for i := 0; i < d.MT; i++ {
			if t := d.Diag(i); t != nil {
				for a := 0; a < t.Rows; a++ {
					t.Set(a, a, -1)
				}
			}
		}
		return d.Cholesky(c)
	})
	for r, err := range errs {
		if err == nil {
			t.Fatalf("rank %d should report the SPD failure", r)
		}
	}
	// the same World must still work for a healthy factorization
	errs = w.Run(func(c *Comm) error {
		d := NewDistTLR(c.Rank(), grid, pts, geom.Euclidean, nb, 1e-7, tlr.SVDCompressor{})
		d.Generate(k, 1e-9)
		return d.Cholesky(c)
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: world not reusable after failure: %v", r, err)
		}
	}
}

// TestRunWorldRankCounts runs the distributed pipeline at 1, 2 and 6 ranks
// (under -race in CI) to flush data races in the mailbox and counter paths.
func TestRunWorldRankCounts(t *testing.T) {
	const n, nb = 64, 16
	k, pts := distProblem(n)
	for _, size := range []int{1, 2, 6} {
		grid := squarishGrid(size)
		errs := RunWorld(size, func(c *Comm) error {
			d := NewDistTLR(c.Rank(), grid, pts, geom.Euclidean, nb, 1e-7, tlr.SVDCompressor{})
			d.Generate(k, 1e-9)
			if err := d.Cholesky(c); err != nil {
				return err
			}
			_, err := d.LogDet(c)
			return err
		})
		for r, err := range errs {
			if err != nil {
				t.Fatalf("size %d rank %d: %v", size, r, err)
			}
		}
	}
}

// squarishGrid factors size into the most square P×Q grid (P ≤ Q).
func squarishGrid(size int) Grid {
	p := 1
	for f := 1; f*f <= size; f++ {
		if size%f == 0 {
			p = f
		}
	}
	return Grid{P: p, Q: size / p}
}

// TestCommStatsCountTraffic: a 2×2 distributed factorization moves bytes and
// the per-rank counters see them; a 1×1 grid moves none.
func TestCommStatsCountTraffic(t *testing.T) {
	const n, nb = 64, 16
	k, pts := distProblem(n)
	w := NewWorld(4)
	grid := Grid{P: 2, Q: 2}
	w.Run(func(c *Comm) error {
		d := NewDistTLR(c.Rank(), grid, pts, geom.Euclidean, nb, 1e-7, tlr.SVDCompressor{})
		d.Generate(k, 1e-9)
		return d.Cholesky(c)
	})
	var totalSent, totalRecv int64
	for r := 0; r < 4; r++ {
		st := w.Stats(r)
		totalSent += st.BytesSent
		totalRecv += st.BytesRecv
	}
	if totalSent == 0 || totalSent != totalRecv {
		t.Fatalf("stats: sent %d recv %d (want equal, nonzero)", totalSent, totalRecv)
	}

	w1 := NewWorld(1)
	w1.Run(func(c *Comm) error {
		d := NewDistTLR(c.Rank(), Grid{P: 1, Q: 1}, pts, geom.Euclidean, nb, 1e-7, tlr.SVDCompressor{})
		d.Generate(k, 1e-9)
		if err := d.Cholesky(c); err != nil {
			return err
		}
		_, err := d.LogDet(c)
		return err
	})
	if st := w1.Stats(0); st.BytesSent != 0 || st.BytesRecv != 0 {
		t.Fatalf("single rank should move no bytes, got %+v", st)
	}
}
