package mpi

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/tlr"
)

// TestRankDeathFromPanic checks that a rank panic poisons the world with an
// error every rank can unwrap to a RankDeath naming the victim and the
// membership epoch the failure happened in.
func TestRankDeathFromPanic(t *testing.T) {
	w := NewWorld(4)
	errs := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			panic(fmt.Errorf("injected failure"))
		}
		_, err := c.Recv(2, 7)
		return err
	})
	for r, err := range errs {
		if r == 2 {
			continue
		}
		if err == nil {
			t.Fatalf("rank %d: expected an error from the poisoned world", r)
		}
		var rd *RankDeath
		if !errors.As(err, &rd) {
			t.Fatalf("rank %d: error %v does not wrap RankDeath", r, err)
		}
		if rd.Rank != 2 || rd.Epoch != 0 {
			t.Fatalf("rank %d: RankDeath = %+v, want rank 2 epoch 0", r, rd)
		}
	}
	var rd *RankDeath
	if !errors.As(errs[2], &rd) || rd.Rank != 2 {
		t.Fatalf("victim error %v does not wrap its own RankDeath", errs[2])
	}
}

// TestRankDeathFromTimeout checks that a receive timeout diagnoses the silent
// source as dead: the error wraps a RankDeath naming the peer that went
// quiet, which is what elastic recovery acts on when a rank dies without
// panicking.
func TestRankDeathFromTimeout(t *testing.T) {
	w := NewWorld(2)
	w.SetRecvTimeout(20 * time.Millisecond)
	errs := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil // rank 1 exits without ever sending
		}
		_, err := c.Recv(1, 3)
		return err
	})
	if errs[0] == nil {
		t.Fatal("rank 0: expected a timeout error")
	}
	var rd *RankDeath
	if !errors.As(errs[0], &rd) {
		t.Fatalf("timeout error %v does not wrap RankDeath", errs[0])
	}
	if rd.Rank != 1 {
		t.Fatalf("RankDeath names rank %d, want the silent source 1", rd.Rank)
	}
}

// TestMarkDeadAndHealth exercises the membership bookkeeping: liveness
// views, epoch bumps, idempotent MarkDead, and the Health report.
func TestMarkDeadAndHealth(t *testing.T) {
	w := NewWorld(3)
	w.Run(func(c *Comm) error { return nil }) // stamps last-heard-from
	if got := w.AliveCount(); got != 3 {
		t.Fatalf("AliveCount = %d, want 3", got)
	}
	epoch := w.MarkDead(1)
	if epoch != 1 {
		t.Fatalf("MarkDead epoch = %d, want 1", epoch)
	}
	if w.MarkDead(1) != 1 {
		t.Fatal("re-marking a dead rank must not advance the epoch")
	}
	if w.Alive(1) || !w.Alive(0) || !w.Alive(2) {
		t.Fatalf("liveness after MarkDead(1): %v %v %v", w.Alive(0), w.Alive(1), w.Alive(2))
	}
	if got := w.AliveRanks(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("AliveRanks = %v, want [0 2]", got)
	}
	if got := w.LowestAlive(); got != 0 {
		t.Fatalf("LowestAlive = %d, want 0", got)
	}
	health := w.Health()
	if len(health) != 3 {
		t.Fatalf("Health has %d entries, want 3", len(health))
	}
	for r, h := range health {
		if h.Rank != r {
			t.Fatalf("Health[%d].Rank = %d", r, h.Rank)
		}
		if wantAlive := r != 1; h.Alive != wantAlive {
			t.Fatalf("Health[%d].Alive = %v, want %v", r, h.Alive, wantAlive)
		}
		if h.LastHeard.IsZero() {
			t.Fatalf("Health[%d].LastHeard is zero after a Run", r)
		}
	}
}

// TestShrinkCollectivesAfterRootDeath kills rank 0 and checks that the
// surviving ranks' collectives re-root at the lowest live rank and that the
// membership agreement reaches the correct view — the root-migration half of
// elastic recovery.
func TestShrinkCollectivesAfterRootDeath(t *testing.T) {
	w := NewWorld(4)
	w.MarkDead(0)
	errs := w.Run(func(c *Comm) error {
		alive, epoch, err := c.AgreeAlive()
		if err != nil {
			return err
		}
		if epoch != 1 {
			return fmt.Errorf("AgreeAlive epoch = %d, want 1", epoch)
		}
		want := []bool{false, true, true, true}
		for r := range want {
			if alive[r] != want[r] {
				return fmt.Errorf("agreed alive[%d] = %v, want %v", r, alive[r], want[r])
			}
		}
		sum, err := c.AllreduceSum(tagOf(kindSum, 0, 0), float64(c.Rank()))
		if err != nil {
			return err
		}
		if sum != 6 { // 1 + 2 + 3
			return fmt.Errorf("allreduce over survivors = %g, want 6", sum)
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if errs[0] != nil {
		t.Fatal("dead rank must not run")
	}
}

// TestStaleEpochMessageDiscarded plants a previous-epoch message directly in
// a mailbox and checks the receiver skips it in favor of the current-epoch
// payload — the tag-versioning guard against stragglers from the aborted
// protocol.
func TestStaleEpochMessageDiscarded(t *testing.T) {
	w := NewWorld(3)
	w.MarkDead(2) // epoch 0 -> 1
	mb := w.boxes[1]
	mb.mu.Lock()
	mb.pending = append(mb.pending, message{src: 0, tag: 7, epoch: 0, data: []float64{99}})
	mb.mu.Unlock()
	errs := w.Run(func(c *Comm) error {
		switch c.Rank() {
		case 0:
			c.Send(1, 7, []float64{42})
		case 1:
			data, err := c.Recv(0, 7)
			if err != nil {
				return err
			}
			if len(data) != 1 || data[0] != 42 {
				return fmt.Errorf("received %v, want the epoch-1 payload [42]", data)
			}
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestRecvFromDeadRankFailsFast checks that receiving from a dead rank fails
// immediately with a RankDeath instead of blocking until timeout.
func TestRecvFromDeadRankFailsFast(t *testing.T) {
	w := NewWorld(3)
	w.MarkDead(1)
	start := time.Now()
	errs := w.Run(func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		_, err := c.Recv(1, 5)
		return err
	})
	if errs[0] == nil {
		t.Fatal("recv from a dead rank must fail")
	}
	var rd *RankDeath
	if !errors.As(errs[0], &rd) || rd.Rank != 1 || rd.Epoch != 1 {
		t.Fatalf("error %v does not wrap RankDeath{1, 1}", errs[0])
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dead-rank recv took %v, want a fast failure", elapsed)
	}
}

// TestKillDuringAllreduce kills a rank that never joins a reduction and
// checks the survivors observe the death, shrink, and complete the same
// reduction on the next run — the collective-resumption half of recovery.
func TestKillDuringAllreduce(t *testing.T) {
	w := NewWorld(4)
	errs := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			panic(fmt.Errorf("killed before joining the allreduce"))
		}
		_, err := c.AllreduceSum(tagOf(kindSum, 2, 0), 1)
		return err
	})
	dead := -1
	for _, err := range errs {
		var rd *RankDeath
		if errors.As(err, &rd) {
			dead = rd.Rank
			break
		}
	}
	if dead != 1 {
		t.Fatalf("diagnosed dead rank %d, want 1", dead)
	}
	w.MarkDead(dead)
	errs = w.Run(func(c *Comm) error {
		sum, err := c.AllreduceSum(tagOf(kindSum, 2, 0), 1)
		if err != nil {
			return err
		}
		if sum != 3 {
			return fmt.Errorf("post-shrink allreduce = %g, want 3", sum)
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// TestOwnerMapReassign checks the deterministic slot remap: survivors keep
// their slots, dead slots deal round-robin over ascending survivors, and the
// result is a pure function of the membership view.
func TestOwnerMapReassign(t *testing.T) {
	grid := Grid{P: 2, Q: 3}
	m := NewOwnerMap(grid)
	for i := 0; i < 4; i++ {
		for j := 0; j <= i; j++ {
			if m.Owner(i, j) != grid.Owner(i, j) {
				t.Fatalf("identity OwnerMap disagrees with Grid at (%d,%d)", i, j)
			}
		}
	}
	alive := []bool{true, true, true, false, true, true}
	moved := m.Reassign(alive)
	if len(moved) != 1 || moved[0] != 3 {
		t.Fatalf("moved = %v, want [3]", moved)
	}
	// slot 3 deals to survivors[3 % 5]: survivors = [0 1 2 4 5] -> rank 4
	m2 := NewOwnerMap(grid)
	m2.Reassign(alive)
	for i := 0; i < 6; i++ {
		for j := 0; j <= i; j++ {
			if m.Owner(i, j) != m2.Owner(i, j) {
				t.Fatalf("Reassign is not deterministic at (%d,%d)", i, j)
			}
			if got := m.Owner(i, j); got == 3 {
				t.Fatalf("tile (%d,%d) still owned by the dead rank", i, j)
			}
			if slot := grid.Owner(i, j); slot != 3 && m.Owner(i, j) != slot {
				t.Fatalf("survivor slot %d moved to %d", slot, m.Owner(i, j))
			}
			if slot := grid.Owner(i, j); slot == 3 && m.Owner(i, j) != 4 {
				t.Fatalf("dead slot dealt to %d, want 4", m.Owner(i, j))
			}
		}
	}
	if len(m.Reassign(alive)) != 0 {
		t.Fatal("re-applying the same membership must move nothing")
	}
}

// TestElasticShrinkResumeTLRCholesky is the end-to-end mpi-layer drill: a
// 6-rank distributed TLR Cholesky loses one rank at the start of panel 2,
// the survivors agree on the death, remap ownership, re-materialize the dead
// rank's tiles from the deterministic generators, and resume. The resumed
// factor, log-determinant, and solve must be bitwise-identical to an
// unfaulted 6-rank run — including when the dead rank is 0 (root
// migration). A follow-up fresh factorization on the shrunken world checks
// post-recovery reuse (the enclosing fit's next optimizer iteration).
func TestElasticShrinkResumeTLRCholesky(t *testing.T) {
	const (
		n      = 90
		nb     = 16
		tol    = 1e-7
		nugget = 1e-9
		ranks  = 6
	)
	k, pts := distProblem(n)
	comp := tlr.RSVDCompressor{Seed: 42, Oversample: 8}
	grid := Grid{P: 2, Q: 3}
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i))
	}

	// Unfaulted reference: factor, logdet, and solve on a healthy world.
	refShards := make([]*DistTLR, ranks)
	var refLD float64
	refSol := make([]float64, n)
	errs := RunWorld(ranks, func(c *Comm) error {
		d := NewDistTLR(c.Rank(), grid, pts, geom.Euclidean, nb, tol, comp)
		refShards[c.Rank()] = d
		d.Generate(k, nugget)
		if err := d.Cholesky(c); err != nil {
			return err
		}
		ld, err := d.LogDet(c)
		if err != nil {
			return err
		}
		y := append([]float64(nil), rhs...)
		if err := d.Solve(c, y); err != nil {
			return err
		}
		if c.Rank() == 0 {
			refLD = ld
			copy(refSol, y)
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("reference rank %d: %v", r, err)
		}
	}

	for _, victim := range []int{3, 0} {
		t.Run(fmt.Sprintf("victim=%d", victim), func(t *testing.T) {
			w := NewWorld(ranks)
			shards := make([]*DistTLR, ranks)
			var fired atomic.Bool

			// Run 1: the victim dies at the start of panel 2.
			errs := w.Run(func(c *Comm) error {
				d := NewDistTLR(c.Rank(), grid, pts, geom.Euclidean, nb, tol, comp)
				d.PanelHook = func(rank, panel int) {
					if rank == victim && panel == 2 && !fired.Swap(true) {
						panic(fmt.Errorf("chaos kill at panel %d", panel))
					}
				}
				shards[c.Rank()] = d
				d.Generate(k, nugget)
				return d.Cholesky(c)
			})
			dead := -1
			for _, err := range errs {
				var rd *RankDeath
				if errors.As(err, &rd) {
					dead = rd.Rank
					break
				}
			}
			if dead != victim {
				t.Fatalf("diagnosed dead rank %d, want %d", dead, victim)
			}
			w.MarkDead(dead)

			// Run 2: shrink, rebuild, resume, and verify bitwise equality.
			var rebuilt atomic.Int64
			errs = w.Run(func(c *Comm) error {
				d := shards[c.Rank()]
				alive, _, err := c.AgreeAlive()
				if err != nil {
					return err
				}
				if alive[victim] {
					return fmt.Errorf("membership agreement still lists rank %d alive", victim)
				}
				d.ApplyMembership(alive)
				rebuilt.Add(d.Rebuild(k, nugget))
				if err := d.Cholesky(c); err != nil {
					return err
				}
				ld, err := d.LogDet(c)
				if err != nil {
					return err
				}
				if ld != refLD {
					return fmt.Errorf("recovered logdet %v != unfaulted %v", ld, refLD)
				}
				y := append([]float64(nil), rhs...)
				if err := d.Solve(c, y); err != nil {
					return err
				}
				for i := range y {
					if y[i] != refSol[i] {
						return fmt.Errorf("recovered solve differs at %d: %v != %v", i, y[i], refSol[i])
					}
				}
				// every owned tile must match the unfaulted factor bitwise
				for i := 0; i < d.MT; i++ {
					for j := 0; j <= i; j++ {
						if d.Owner(i, j) != c.Rank() {
							continue
						}
						ref := refShards[grid.Owner(i, j)]
						if i == j {
							got, want := d.Diag(i), ref.Diag(i)
							for a := 0; a < got.Rows; a++ {
								for b := 0; b <= a; b++ {
									if got.At(a, b) != want.At(a, b) {
										return fmt.Errorf("diag tile %d (%d,%d): %v != %v", i, a, b, got.At(a, b), want.At(a, b))
									}
								}
							}
						} else if diff := maxAbsDiff(d.Off(i, j).Dense(), ref.Off(i, j).Dense()); diff != 0 {
							return fmt.Errorf("off tile (%d,%d) deviates by %g after recovery", i, j, diff)
						}
					}
				}
				return nil
			})
			for r, err := range errs {
				if err != nil {
					t.Fatalf("recovery rank %d: %v", r, err)
				}
			}
			if rebuilt.Load() == 0 {
				t.Fatal("no shard bytes were rebuilt during recovery")
			}

			// Run 3: a fresh factorization on the shrunken world (the next
			// optimizer iteration) must still match the unfaulted run.
			errs = w.Run(func(c *Comm) error {
				d := shards[c.Rank()]
				d.Generate(k, nugget)
				if err := d.Cholesky(c); err != nil {
					return err
				}
				ld, err := d.LogDet(c)
				if err != nil {
					return err
				}
				if ld != refLD {
					return fmt.Errorf("post-recovery refactor logdet %v != unfaulted %v", ld, refLD)
				}
				return nil
			})
			for r, err := range errs {
				if err != nil {
					t.Fatalf("post-recovery rank %d: %v", r, err)
				}
			}
		})
	}
}
