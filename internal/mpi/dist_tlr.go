package mpi

import (
	"fmt"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/tlr"
)

// DistTLR is one rank's shard of a 2D block-cyclically distributed TLR
// matrix: dense diagonal tiles, compressed (U·Vᵀ) strictly-lower tiles, the
// same storage scheme as tlr.Matrix but with each tile owned by exactly one
// rank of the Grid. Messages carry the compressed factors, so a rank-r tile
// costs (di+dk)·r doubles on the wire instead of the di·dk a dense tile
// would — the communication saving the paper's distributed TLR runs exploit.
//
// The shard is a reusable shell: Generate rebuilds the owned tiles for a new
// θ in place (reusing diagonal buffers and the dense scratch), so core's
// distributed likelihood evaluator regenerates and refactors once per
// optimizer iteration without reallocating the shard.
type DistTLR struct {
	N, NB, MT int
	Tol       float64
	Grid      Grid
	Rank      int

	Pts    []geom.Point
	Metric geom.Metric
	Comp   tlr.Compressor

	// MaxRank, when positive, caps compressed ranks: a tile exceeding it
	// (at generation or during trailing updates) falls back to dense (DE)
	// storage instead of erroring — mirroring tlr.Matrix.MaxRank.
	MaxRank int
	// ForceMiss, when non-nil, forces tile (i, j) of the mt×mt tiling to
	// miss the compression tolerance and store densely (chaos injection).
	ForceMiss func(mt, i, j int) bool
	// PanelHook, when non-nil, is called by every rank at the start of each
	// Cholesky panel — the deterministic kill point chaos injection targets
	// to exercise elastic recovery at a reproducible panel epoch.
	PanelHook func(rank, k int)

	// Owners maps tiles to physical ranks through the membership overlay:
	// identical to Grid while every rank lives, remapped deterministically
	// to the survivors after a shrink (see OwnerMap).
	Owners *OwnerMap

	diag    map[int]*la.Mat
	off     map[tileKey]*tlr.CompTile
	scratch *la.Mat

	// Per-tile factorization progress, the state that makes the Cholesky
	// resumable: every in-place mutation of right-looking Cholesky moves a
	// tile monotonically toward its final value, so recording how far each
	// tile has advanced (trailing updates applied in ascending panel order,
	// then the one-shot TRSM or POTRF) lets a recovery run replay the full
	// communication schedule while skipping exactly the arithmetic that
	// already happened. Generate resets all of it.
	diagUpd  map[int]int      // diag tile i: SYRK panel updates applied (next panel to apply)
	diagFact map[int]bool     // diag tile i: POTRF applied (tile holds L_ii)
	offUpd   map[tileKey]int  // off tile (i,j): GEMM panel updates applied
	offSolve map[tileKey]bool // off tile (i,k): TRSM applied (tile holds L_ik)
}

// NewDistTLR allocates rank's empty shard of an n×n TLR matrix distributed
// over grid. Call Generate to fill it for a given covariance kernel.
func NewDistTLR(rank int, grid Grid, pts []geom.Point, metric geom.Metric, nb int, tol float64, comp tlr.Compressor) *DistTLR {
	n := len(pts)
	if n == 0 || nb <= 0 {
		panic(fmt.Sprintf("mpi: invalid DistTLR dims n=%d nb=%d", n, nb))
	}
	d := &DistTLR{
		N: n, NB: nb, MT: (n + nb - 1) / nb, Tol: tol,
		Grid: grid, Rank: rank,
		Pts: pts, Metric: metric, Comp: comp,
		Owners: NewOwnerMap(grid),
		diag:   map[int]*la.Mat{}, off: map[tileKey]*tlr.CompTile{},
	}
	d.resetProgress()
	return d
}

// Owner returns the physical rank owning tile (i, j) under the current
// membership (identical to Grid.Owner until a rank dies).
func (d *DistTLR) Owner(i, j int) int { return d.Owners.Owner(i, j) }

// resetProgress forgets all per-tile factorization progress: the shard again
// holds (or will hold, after Generate) raw Σ tiles.
func (d *DistTLR) resetProgress() {
	d.diagUpd = map[int]int{}
	d.diagFact = map[int]bool{}
	d.offUpd = map[tileKey]int{}
	d.offSolve = map[tileKey]bool{}
}

// TileDim returns the edge of tile row i.
func (d *DistTLR) TileDim(i int) int {
	dim := d.N - i*d.NB
	if dim > d.NB {
		dim = d.NB
	}
	return dim
}

// Diag returns locally owned dense diagonal tile i (nil if not owned).
func (d *DistTLR) Diag(i int) *la.Mat { return d.diag[i] }

// Off returns locally owned compressed tile (i, j), j < i (nil if not owned).
func (d *DistTLR) Off(i, j int) *tlr.CompTile { return d.off[tileKey{i, j}] }

// Generate (re)builds the owned tiles of Σ(θ): diagonal tiles are generated
// densely (plus nugget), off-diagonal tiles are generated densely into a
// scratch buffer and immediately compressed. Stochastic compressors
// implementing tlr.TileCompressor are re-seeded per tile, so the tile
// contents are bitwise-identical to the shared-memory tlr.FromKernel /
// GenCholesky pipeline at any grid shape — the property the distributed
// likelihood's 1e-8 agreement with the shared path rests on.
func (d *DistTLR) Generate(k *cov.Kernel, nugget float64) {
	if d.scratch == nil {
		d.scratch = la.NewMat(d.NB, d.NB)
	}
	d.resetProgress()
	for i := 0; i < d.MT; i++ {
		for j := 0; j <= i; j++ {
			if d.Owner(i, j) != d.Rank {
				continue
			}
			d.genTile(k, nugget, i, j)
		}
	}
}

// genTile (re)generates owned tile (i, j) of Σ(θ) into the local store and
// returns its storage footprint in bytes. Deterministic per tile: stochastic
// compressors implementing tlr.TileCompressor are re-seeded from (i, j), so
// any rank generating the tile — original owner or a survivor inheriting it
// after a failure — produces bitwise-identical contents.
func (d *DistTLR) genTile(k *cov.Kernel, nugget float64, i, j int) int64 {
	di := d.TileDim(i)
	ri := d.Pts[i*d.NB : i*d.NB+di]
	if i == j {
		t := d.diag[i]
		if t == nil {
			t = la.NewMat(di, di)
			d.diag[i] = t
		}
		k.Block(t, ri, ri, d.Metric)
		if nugget != 0 {
			for a := 0; a < di; a++ {
				t.Set(a, a, t.At(a, a)+nugget)
			}
		}
		return int64(di) * int64(di) * 8
	}
	dj := d.TileDim(j)
	dense := d.scratch.View(0, 0, di, dj)
	k.Block(dense, ri, d.Pts[j*d.NB:j*d.NB+dj], d.Metric)
	comp := d.Comp
	if tc, ok := comp.(tlr.TileCompressor); ok {
		comp = tc.ForTile(i, j)
	}
	t := comp.Compress(dense, d.Tol)
	if (d.MaxRank > 0 && t.Rank() > d.MaxRank) ||
		(d.ForceMiss != nil && d.ForceMiss(d.MT, i, j)) {
		t = tlr.NewDenseTile(dense.Clone())
	}
	d.off[tileKey{i, j}] = t
	return t.Bytes()
}

// ApplyMembership remaps tile ownership to an agreed membership view (the
// []bool from Comm.AgreeAlive). Survivors keep every tile they hold; dead
// ranks' slots are dealt deterministically to the survivors. Returns the
// slots that changed hands. Follow with Rebuild to materialize the tiles
// this rank inherited.
func (d *DistTLR) ApplyMembership(alive []bool) []int {
	return d.Owners.Reassign(alive)
}

// Rebuild regenerates the owned tiles the local store does not yet hold —
// the dead ranks' tiles the membership remap dealt to this rank. Generation
// is deterministic per tile, so the rebuilt tiles are bitwise-identical to
// the Σ tiles the dead rank generated; their progress entries stay zero, so
// the resumed Cholesky replays every panel update they missed. Returns the
// regenerated bytes (also accumulated on the tlr.shard.rebuilt.bytes
// counter).
func (d *DistTLR) Rebuild(k *cov.Kernel, nugget float64) int64 {
	if d.scratch == nil {
		d.scratch = la.NewMat(d.NB, d.NB)
	}
	var bytes int64
	for i := 0; i < d.MT; i++ {
		for j := 0; j <= i; j++ {
			if d.Owner(i, j) != d.Rank {
				continue
			}
			if i == j {
				if d.diag[i] != nil {
					continue
				}
			} else if d.off[tileKey{i, j}] != nil {
				continue
			}
			bytes += d.genTile(k, nugget, i, j)
		}
	}
	cntShardRebuilt.Add(bytes)
	return bytes
}

// encodeCompTile packs a compressed tile as [rows, cols, rank, U row-major,
// V row-major] — the rank-dependent wire format of panel messages. A dense
// (DE) tile is marked with the sentinel rank -1 and carries its full
// row-major payload.
func encodeCompTile(t *tlr.CompTile) []float64 {
	rows, cols := t.Rows(), t.Cols()
	if t.IsDense() {
		out := make([]float64, 3+rows*cols)
		out[0], out[1], out[2] = float64(rows), float64(cols), -1
		p := 3
		for a := 0; a < rows; a++ {
			p += copy(out[p:], t.D.Row(a))
		}
		return out
	}
	k := t.Rank()
	out := make([]float64, 3+(rows+cols)*k)
	out[0], out[1], out[2] = float64(rows), float64(cols), float64(k)
	p := 3
	for a := 0; a < rows; a++ {
		p += copy(out[p:], t.U.Row(a))
	}
	for a := 0; a < cols; a++ {
		p += copy(out[p:], t.V.Row(a))
	}
	return out
}

// decodeCompTile unpacks an encodeCompTile payload.
func decodeCompTile(data []float64) *tlr.CompTile {
	rows, cols, k := int(data[0]), int(data[1]), int(data[2])
	if k < 0 {
		d := la.NewMat(rows, cols)
		copy(d.Data, data[3:3+rows*cols])
		return tlr.NewDenseTile(d)
	}
	u := la.NewMat(rows, k)
	v := la.NewMat(cols, k)
	copy(u.Data, data[3:3+rows*k])
	copy(v.Data, data[3+rows*k:])
	return &tlr.CompTile{U: u, V: v}
}

// Cholesky factors the distributed TLR matrix in place, cooperating with the
// other ranks of comm. Right-looking, panel by panel:
//
//  1. the owner of (k, k) runs a dense POTRF and ships L_kk to the owners of
//     the column-k panel tiles (Grid.DiagRecipients);
//  2. each panel owner applies the compressed TRSM (V ← L_kk⁻¹·V) and ships
//     the compressed tile to exactly the ranks that consume it in the
//     trailing update (Grid.PanelRecipients), so mailboxes drain completely
//     and the World can be reused for the next θ;
//  3. owned trailing tiles are updated with the same SyrkLD/GemmLL kernels as
//     the shared-memory path, in the same k-ascending per-tile order the
//     shared DAG serializes to.
//
// A non-SPD pivot is agreed via one small allreduce per panel and returned
// as an error on every rank, with all broadcasts still consumed.
//
// The factorization is resumable: every arithmetic step is gated on the
// per-tile progress maps, while the communication schedule is replayed
// unconditionally. A recovery run after a rank failure therefore exchanges
// exactly the messages a fresh run would (so recipient sets stay consistent
// and mailboxes drain), but survivors skip work their tiles already absorbed
// and only the rebuilt tiles — regenerated raw and holding zero progress —
// actually compute. Because each tile's mutations are monotonic toward its
// final value and applied in fixed k-ascending order, the resumed result is
// bitwise-identical to an unfaulted factorization.
func (d *DistTLR) Cholesky(c *Comm) error {
	own := d.Owner
	mt := d.MT
	for k := 0; k < mt; k++ {
		if d.PanelHook != nil {
			d.PanelHook(c.Rank(), k)
		}
		var lkk *la.Mat
		diagOwner := own(k, k)
		diagTo := diagRecipients(own, k, mt)
		failed := 0.0
		if c.Rank() == diagOwner {
			t := d.diag[k]
			if !d.diagFact[k] {
				if err := la.Potrf(t); err != nil {
					failed = 1
				} else {
					d.diagFact[k] = true
				}
			}
			lkk = t
			for _, r := range diagTo {
				c.Send(r, tagOf(kindLkk, k, k), t.Data[:t.Rows*t.Stride])
			}
		} else if contains(diagTo, c.Rank()) {
			dk := d.TileDim(k)
			data, err := c.Recv(diagOwner, tagOf(kindLkk, k, k))
			if err != nil {
				return err
			}
			lkk = la.NewMatFrom(dk, dk, data)
		}
		bad, err := c.AllreduceSum(tagOf(kindFail, k, 0), failed)
		if err != nil {
			return err
		}
		if bad > 0 {
			return fmt.Errorf("mpi: TLR matrix not positive definite at panel %d: %w", k, la.ErrNotPositiveDefinite)
		}

		for i := k + 1; i < mt; i++ {
			if c.Rank() == own(i, k) {
				key := tileKey{i, k}
				t := d.off[key]
				if !d.offSolve[key] {
					tlr.TrsmLD(lkk, t)
					d.offSolve[key] = true
				}
				payload := encodeCompTile(t)
				for _, r := range panelRecipients(own, i, k, mt) {
					c.Send(r, tagOf(kindPanel, i, k), payload)
				}
			}
		}

		panel := map[int]*tlr.CompTile{}
		needPanel := func(i int) (*tlr.CompTile, error) {
			if t, ok := panel[i]; ok {
				return t, nil
			}
			var t *tlr.CompTile
			if owner := own(i, k); c.Rank() == owner {
				t = d.off[tileKey{i, k}]
			} else {
				data, err := c.Recv(owner, tagOf(kindPanel, i, k))
				if err != nil {
					return nil, err
				}
				t = decodeCompTile(data)
			}
			panel[i] = t
			return t, nil
		}
		for i := k + 1; i < mt; i++ {
			for j := k + 1; j <= i; j++ {
				if own(i, j) != c.Rank() {
					continue
				}
				pi, err := needPanel(i)
				if err != nil {
					return err
				}
				if i == j {
					if d.diagUpd[i] == k {
						tlr.SyrkLD(d.diag[i], pi)
						d.diagUpd[i] = k + 1
					}
				} else {
					pj, err := needPanel(j)
					if err != nil {
						return err
					}
					key := tileKey{i, j}
					if d.offUpd[key] == k {
						d.off[key] = tlr.GemmLL(d.off[key], pi, pj, d.Tol, d.MaxRank)
						d.offUpd[key] = k + 1
					}
				}
			}
		}
	}
	return nil
}

// LogDet computes log|A| after Cholesky (the paper's first likelihood term).
// The reduction is a per-tile vector allreduce — each slot has exactly one
// nonzero contributor, so the combine is exact — followed by a k-ascending
// sum on every rank. Unlike a scalar sum of per-rank partials, the result
// does not depend on how tiles are grouped over ranks, so it is
// bitwise-identical at any grid shape and across membership changes — the
// property the elastic-recovery "identical to the unfaulted run" guarantee
// rests on.
func (d *DistTLR) LogDet(c *Comm) (float64, error) {
	vec := make([]float64, d.MT)
	for k := 0; k < d.MT; k++ {
		if d.Owner(k, k) == c.Rank() {
			vec[k] = la.LogDetFromChol(d.diag[k])
		}
	}
	sum, err := c.AllreduceSumVec(tagOf(kindSum, 0, 0), vec)
	if err != nil {
		return 0, err
	}
	var out float64
	for _, v := range sum {
		out += v
	}
	return out, nil
}

// ForwardSolve solves L·x = b in place against the factored shard. b is
// replicated: every rank passes the full right-hand side and every rank
// returns with the full solution, so the quadratic form can be reduced from
// per-rank partial sums without a gather.
//
// Row by row, the owners of the row's off-diagonal tiles compute their
// contributions L_ij·b_j and ship them to the diagonal owner, which
// subtracts them in ascending j order — the same order the shared-memory
// ForwardSolve subtracts them — solves the diagonal block, and broadcasts
// the solved block to every rank to restore replication.
func (d *DistTLR) ForwardSolve(c *Comm, b []float64) error {
	if len(b) != d.N {
		panic("mpi: ForwardSolve length mismatch")
	}
	for i := 0; i < d.MT; i++ {
		di := d.TileDim(i)
		bi := b[i*d.NB : i*d.NB+di]
		diagOwner := d.Owner(i, i)
		// contribution senders
		if c.Rank() != diagOwner {
			for j := 0; j < i; j++ {
				if c.Rank() != d.Owner(i, j) {
					continue
				}
				bj := b[j*d.NB : j*d.NB+d.TileDim(j)]
				contrib := make([]float64, di)
				tlr.MatVec(d.off[tileKey{i, j}], -1, bj, contrib)
				c.Send(diagOwner, tagOf(kindFwd, i, j), contrib)
			}
		}
		if c.Rank() == diagOwner {
			for j := 0; j < i; j++ {
				owner := d.Owner(i, j)
				if owner == c.Rank() {
					bj := b[j*d.NB : j*d.NB+d.TileDim(j)]
					tlr.MatVec(d.off[tileKey{i, j}], -1, bj, bi)
					continue
				}
				contrib, err := c.Recv(owner, tagOf(kindFwd, i, j))
				if err != nil {
					return err
				}
				for a := range bi {
					bi[a] += contrib[a]
				}
			}
			la.ForwardSolveVec(d.diag[i], bi)
			for _, r := range c.AliveRanks() {
				if r != c.Rank() {
					c.Send(r, tagOf(kindFwdB, i, 0), bi)
				}
			}
		} else {
			data, err := c.Recv(diagOwner, tagOf(kindFwdB, i, 0))
			if err != nil {
				return err
			}
			copy(bi, data)
		}
	}
	return nil
}

// BackwardSolve solves Lᵀ·x = b in place against the factored shard, with
// the same replicated-vector protocol as ForwardSolve. Contributions
// (L_ji)ᵀ·b_j are subtracted in descending j order, matching the
// shared-memory BackwardSolve arithmetic.
func (d *DistTLR) BackwardSolve(c *Comm, b []float64) error {
	if len(b) != d.N {
		panic("mpi: BackwardSolve length mismatch")
	}
	for i := d.MT - 1; i >= 0; i-- {
		di := d.TileDim(i)
		bi := b[i*d.NB : i*d.NB+di]
		diagOwner := d.Owner(i, i)
		if c.Rank() != diagOwner {
			for j := d.MT - 1; j > i; j-- {
				if c.Rank() != d.Owner(j, i) {
					continue
				}
				bj := b[j*d.NB : j*d.NB+d.TileDim(j)]
				contrib := make([]float64, di)
				tlr.MatVecT(d.off[tileKey{j, i}], -1, bj, contrib)
				c.Send(diagOwner, tagOf(kindBwd, j, i), contrib)
			}
		}
		if c.Rank() == diagOwner {
			for j := d.MT - 1; j > i; j-- {
				owner := d.Owner(j, i)
				if owner == c.Rank() {
					bj := b[j*d.NB : j*d.NB+d.TileDim(j)]
					tlr.MatVecT(d.off[tileKey{j, i}], -1, bj, bi)
					continue
				}
				contrib, err := c.Recv(owner, tagOf(kindBwd, j, i))
				if err != nil {
					return err
				}
				for a := range bi {
					bi[a] += contrib[a]
				}
			}
			bm := la.NewMatFrom(di, 1, bi)
			la.Trsm(la.Left, la.Lower, la.Transpose, 1, d.diag[i], bm)
			for _, r := range c.AliveRanks() {
				if r != c.Rank() {
					c.Send(r, tagOf(kindBwdB, i, 0), bi)
				}
			}
		} else {
			data, err := c.Recv(diagOwner, tagOf(kindBwdB, i, 0))
			if err != nil {
				return err
			}
			copy(bi, data)
		}
	}
	return nil
}

// Solve computes A⁻¹·b in place given the distributed TLR Cholesky factors.
func (d *DistTLR) Solve(c *Comm, b []float64) error {
	if err := d.ForwardSolve(c, b); err != nil {
		return err
	}
	return d.BackwardSolve(c, b)
}

// ForwardSolveMat solves L·X = B in place for a replicated dense right-hand
// side (prediction's cross-covariance panels), with the same row-by-row
// protocol as ForwardSolve.
func (d *DistTLR) ForwardSolveMat(c *Comm, b *la.Mat) error {
	if b.Rows != d.N {
		panic("mpi: ForwardSolveMat dimension mismatch")
	}
	nc := b.Cols
	for i := 0; i < d.MT; i++ {
		di := d.TileDim(i)
		bi := b.View(i*d.NB, 0, di, nc)
		diagOwner := d.Owner(i, i)
		if c.Rank() != diagOwner {
			for j := 0; j < i; j++ {
				if c.Rank() != d.Owner(i, j) {
					continue
				}
				bj := b.View(j*d.NB, 0, d.TileDim(j), nc)
				contrib := la.NewMat(di, nc)
				tlr.MatMul(d.off[tileKey{i, j}], -1, bj, contrib)
				c.Send(diagOwner, tagOf(kindFwd, i, j), contrib.Data)
			}
		}
		if c.Rank() == diagOwner {
			for j := 0; j < i; j++ {
				owner := d.Owner(i, j)
				if owner == c.Rank() {
					bj := b.View(j*d.NB, 0, d.TileDim(j), nc)
					tlr.MatMul(d.off[tileKey{i, j}], -1, bj, bi)
					continue
				}
				contrib, err := c.Recv(owner, tagOf(kindFwd, i, j))
				if err != nil {
					return err
				}
				for a := 0; a < di; a++ {
					row := bi.Row(a)
					crow := contrib[a*nc : a*nc+nc]
					for q := range row {
						row[q] += crow[q]
					}
				}
			}
			la.Trsm(la.Left, la.Lower, la.NoTrans, 1, d.diag[i], bi)
			payload := make([]float64, 0, di*nc)
			for a := 0; a < di; a++ {
				payload = append(payload, bi.Row(a)...)
			}
			for _, r := range c.AliveRanks() {
				if r != c.Rank() {
					c.Send(r, tagOf(kindFwdB, i, 0), payload)
				}
			}
		} else {
			data, err := c.Recv(diagOwner, tagOf(kindFwdB, i, 0))
			if err != nil {
				return err
			}
			for a := 0; a < di; a++ {
				copy(bi.Row(a), data[a*nc:a*nc+nc])
			}
		}
	}
	return nil
}

// Bytes returns the local shard's storage footprint.
func (d *DistTLR) Bytes() int64 {
	var b int64
	for _, t := range d.diag {
		b += int64(t.Rows) * int64(t.Cols) * 8
	}
	for _, t := range d.off {
		b += t.Bytes()
	}
	return b
}

// LocalRankStats returns the max rank, rank sum and tile count over the
// locally owned compressed tiles (reduce across ranks for global stats).
func (d *DistTLR) LocalRankStats() (maxRank, sumRank, count int) {
	for _, t := range d.off {
		k := t.Rank()
		if k > maxRank {
			maxRank = k
		}
		sumRank += k
		count++
	}
	return
}
