package mpi

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendDropIsRetransmitted(t *testing.T) {
	w := NewWorld(2)
	var attempts atomic.Int64
	w.SetMsgHook(func(src, dst, tag int, bytes int64, attempt int) MsgFault {
		attempts.Add(1)
		if attempt == 0 {
			return MsgFault{Verdict: MsgDrop}
		}
		return MsgFault{Verdict: MsgDeliver}
	})
	errs := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 5, []float64{3.25})
			return nil
		}
		got, err := c.Recv(0, 5)
		if err != nil {
			return err
		}
		if got[0] != 3.25 {
			return fmt.Errorf("payload corrupted: %v", got)
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if attempts.Load() < 2 {
		t.Fatalf("hook saw %d transmissions, want the drop plus a retransmit", attempts.Load())
	}
}

func TestSendDelayStillDelivers(t *testing.T) {
	w := NewWorld(2)
	w.SetMsgHook(func(src, dst, tag int, bytes int64, attempt int) MsgFault {
		return MsgFault{Verdict: MsgDelay, Delay: time.Millisecond}
	})
	errs := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []float64{1})
			c.Send(1, 1, []float64{2})
			return nil
		}
		// Same-tag messages must keep their send order through the delay.
		a, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		b, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if a[0] != 1 || b[0] != 2 {
			return fmt.Errorf("delayed messages reordered: %v %v", a, b)
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestRecvTimeoutDiagnosesLostMessage(t *testing.T) {
	w := NewWorld(2)
	w.SetRecvTimeout(50 * time.Millisecond)
	start := time.Now()
	errs := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			_, err := c.Recv(0, 9) // rank 0 never sends
			return err
		}
		return nil
	})
	if errs[1] == nil {
		t.Fatal("recv from a silent peer must time out")
	}
	if !strings.Contains(errs[1].Error(), "timed out") {
		t.Fatalf("timeout error should say so: %v", errs[1])
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestRankPanicPoisonsAndWorldHeals(t *testing.T) {
	w := NewWorld(4)
	start := time.Now()
	errs := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			panic("injected rank failure")
		}
		// Every other rank blocks on the dead rank; poisoning must unblock
		// them with an error instead of deadlocking.
		_, err := c.Recv(2, 1)
		return err
	})
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("rank failure took %v to resolve", elapsed)
	}
	if errs[2] == nil || !strings.Contains(errs[2].Error(), "rank 2 panicked") {
		t.Fatalf("dead rank error should name it: %v", errs[2])
	}
	for _, r := range []int{0, 1, 3} {
		if errs[r] == nil {
			t.Fatalf("rank %d survived a poisoned world without an error", r)
		}
	}
	if w.Err() == nil {
		t.Fatal("world should remember the failure until the next Run")
	}

	// The next Run heals the world: mailboxes drained, poison cleared.
	errs = w.Run(func(c *Comm) error {
		got, err := c.Bcast(0, 3, []float64{float64(c.Rank() + 1)}, []int{0, 1, 2, 3})
		if err != nil {
			return err
		}
		if got[0] != 1 {
			return fmt.Errorf("bcast after heal got %v", got)
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("healed world rank %d: %v", r, err)
		}
	}
}

func TestCleanErrorAlsoPoisons(t *testing.T) {
	w := NewWorld(2)
	errs := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return fmt.Errorf("rank 0 gives up")
		}
		_, err := c.Recv(0, 1)
		return err
	})
	if errs[0] == nil || errs[1] == nil {
		t.Fatalf("both ranks must report: %v", errs)
	}
	if !strings.Contains(errs[1].Error(), "aborted") {
		t.Fatalf("blocked rank should see the abort: %v", errs[1])
	}
}
