package mpi

import "fmt"

// Message-tag namespace.
//
// Internal library tags are packed as
//
//	tag = kind<<48 | i<<24 | k
//
// so every (kind, i, k) triple maps to a unique tag independent of the tile
// count. The previous mt-relative packing (kind*mt*mt + i*mt + k) produced
// small integers that collided with user-chosen tags at small tile counts
// and, worse, mapped DIFFERENT (kind, i, k) triples to the SAME tag once a
// second algorithm reused the scheme with its own kind constants — leaving
// no headroom for the compressed-tile message kinds the TLR layer adds.
//
// All internal tags are ≥ UserTagLimit. Application code passing tags to
// Send/Recv/Bcast/AllreduceSum must stay below it.

// UserTagLimit is the first tag value reserved for the library's internal
// message kinds. Application tags must lie in [0, UserTagLimit).
const UserTagLimit = 1 << 48

// tagIndexBits is the width of each of the two index fields (i, k).
const tagIndexBits = 24

// Internal message kinds; each is a disjoint tag namespace.
const (
	kindLkk    = iota + 1 // factored diagonal tile broadcast
	kindPanel             // solved panel tile (dense payload or compressed U/V payload)
	kindFail              // per-panel SPD agreement (reduction: uses k = 0 and k = 1)
	kindSum               // scalar reductions (LogDet and friends)
	kindGather            // factor gather onto rank 0
	kindFwd               // forward-solve partial contributions
	kindFwdB              // forward-solve solved-block broadcast
	kindBwd               // backward-solve partial contributions
	kindBwdB              // backward-solve solved-block broadcast
	kindMember            // membership allreduce (epoch-tagged; uses k = 0 and k = 1)
	kindLast              // sentinel: first unused kind
)

// tagOf builds the internal tag for (kind, i, k). It panics when an index
// overflows its field: with 24-bit fields that means more than 16.7M tile
// rows — far beyond any realizable problem — but the check turns what would
// be a silent tag collision into a loud failure. The k field is kept one
// short of full so the tag+1 convention of AllreduceSum (reply tag) can
// never carry into the i field.
func tagOf(kind, i, k int) int {
	if i < 0 || k < 0 || i >= 1<<tagIndexBits || k >= 1<<tagIndexBits-1 {
		panic(fmt.Sprintf("mpi: tag indices (%d,%d) overflow the %d-bit tag fields", i, k, tagIndexBits))
	}
	if kind <= 0 || kind >= 1<<15 {
		panic(fmt.Sprintf("mpi: tag kind %d out of range", kind))
	}
	return kind<<(2*tagIndexBits) | i<<tagIndexBits | k
}
