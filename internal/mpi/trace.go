package mpi

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runtime"
)

// Process-wide communication counters (all worlds). Self-deliveries are not
// counted, matching CommStats.
var (
	cntMsgsSent  = obs.GetCounter("mpi.msgs.sent")
	cntBytesSent = obs.GetCounter("mpi.bytes.sent")
)

// CommEvent is one timestamped cross-rank message endpoint (a send or a
// receive completion) on a traced World.
type CommEvent struct {
	Rank  int // the rank the event happened on
	Peer  int // the other endpoint
	Send  bool
	Tag   int
	Bytes int64
	At    time.Duration // offset from the trace epoch
}

// commTrace collects per-rank communication events once enabled.
type commTrace struct {
	epoch time.Time
	mu    []sync.Mutex // one per rank — ranks only ever log their own events
	evs   [][]CommEvent
}

// EnableTrace starts recording a timestamped communication timeline against
// the given epoch. Pass the epoch of a runtime trace (the instant its
// ExecuteTraced started) to merge both into one timeline; pass time.Now()
// when the communication timeline stands alone. Enabling while ranks are
// mid-Run is a data race — call it between Run calls.
func (w *World) EnableTrace(epoch time.Time) {
	w.trace = &commTrace{
		epoch: epoch,
		mu:    make([]sync.Mutex, w.size),
		evs:   make([][]CommEvent, w.size),
	}
}

// TraceEnabled reports whether the world records a communication timeline.
func (w *World) TraceEnabled() bool { return w.trace != nil }

func (w *World) logComm(rank, peer int, send bool, tag int, bytes int64) {
	t := w.trace
	if t == nil {
		return
	}
	at := time.Since(t.epoch)
	t.mu[rank].Lock()
	t.evs[rank] = append(t.evs[rank], CommEvent{Rank: rank, Peer: peer, Send: send, Tag: tag, Bytes: bytes, At: at})
	t.mu[rank].Unlock()
}

// CommEvents returns a copy of one rank's recorded communication timeline
// (nil when tracing is disabled).
func (w *World) CommEvents(rank int) []CommEvent {
	t := w.trace
	if t == nil {
		return nil
	}
	t.mu[rank].Lock()
	defer t.mu[rank].Unlock()
	return append([]CommEvent(nil), t.evs[rank]...)
}

// TraceEvents converts the recorded communication timeline of every rank
// into zero-duration runtime trace events — one worker lane per rank,
// offset by lane so rank r lands on worker lane+r. Merge them into a
// compute trace with Trace.MergeEvents; the Chrome export renders them as
// instant events.
func (w *World) TraceEvents(lane int) []runtime.TraceEvent {
	if w.trace == nil {
		return nil
	}
	var out []runtime.TraceEvent
	for r := 0; r < w.size; r++ {
		for _, e := range w.CommEvents(r) {
			dir := "recv"
			if e.Send {
				dir = "send"
			}
			out = append(out, runtime.TraceEvent{
				Task:   fmt.Sprintf("%s r%d<->r%d tag%d", dir, e.Rank, e.Peer, e.Tag),
				ID:     -1, // not a DAG task; excluded from critical-path weights
				Worker: lane + r,
				Start:  e.At,
				End:    e.At,
				Bytes:  e.Bytes,
			})
		}
	}
	return out
}
