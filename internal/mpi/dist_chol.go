package mpi

import (
	"fmt"
	"sync"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
)

// Grid is a 2D process grid mapping tiles to ranks block-cyclically, the
// distribution the paper's distributed runs use.
type Grid struct {
	P, Q int
}

// Owner returns the rank owning tile (i, j).
func (g Grid) Owner(i, j int) int { return (i%g.P)*g.Q + j%g.Q }

// row returns the ranks of process row r (owners of tile rows ≡ r mod P).
func (g Grid) row(r int) []int {
	out := make([]int, g.Q)
	for q := 0; q < g.Q; q++ {
		out[q] = r*g.Q + q
	}
	return out
}

// col returns the ranks of process column q.
func (g Grid) col(q int) []int {
	out := make([]int, g.P)
	for p := 0; p < g.P; p++ {
		out[p] = p*g.Q + q
	}
	return out
}

// tileKey identifies a tile in a rank's local store.
type tileKey struct{ i, j int }

// DistMatrix is one rank's shard of a block-cyclically distributed
// symmetric matrix (lower tiles only).
type DistMatrix struct {
	N, NB, MT int
	Grid      Grid
	Rank      int
	local     map[tileKey]*la.Mat
}

// tileDim returns the edge of tile row i.
func (m *DistMatrix) tileDim(i int) int {
	d := m.N - i*m.NB
	if d > m.NB {
		d = m.NB
	}
	return d
}

// NewDistFromKernel assembles rank's shard of Σ(θ): only locally owned
// tiles are generated — no rank ever holds the full matrix.
func NewDistFromKernel(rank int, grid Grid, k *cov.Kernel, pts []geom.Point, metric geom.Metric, nb int, nugget float64) *DistMatrix {
	n := len(pts)
	m := &DistMatrix{N: n, NB: nb, MT: (n + nb - 1) / nb, Grid: grid, Rank: rank, local: map[tileKey]*la.Mat{}}
	for i := 0; i < m.MT; i++ {
		for j := 0; j <= i; j++ {
			if grid.Owner(i, j) != rank {
				continue
			}
			t := la.NewMat(m.tileDim(i), m.tileDim(j))
			k.Block(t, pts[i*nb:i*nb+m.tileDim(i)], pts[j*nb:j*nb+m.tileDim(j)], metric)
			if i == j {
				for a := 0; a < t.Rows; a++ {
					t.Set(a, a, t.At(a, a)+nugget)
				}
			}
			m.local[tileKey{i, j}] = t
		}
	}
	return m
}

// Tile returns a locally owned tile (nil if not owned).
func (m *DistMatrix) Tile(i, j int) *la.Mat { return m.local[tileKey{i, j}] }

// message tags: type | panel | row, packed to stay unique per (kind, i, k).
func tagOf(kind, i, k, mt int) int { return kind*mt*mt + i*mt + k }

// tag kinds
const (
	tagLkk = iota + 1 // factored diagonal tile broadcast
	tagRow            // panel tile broadcast along its process row
	tagCol            // panel tile broadcast to its process column
	tagSum            // reductions
)

// Cholesky factors the distributed matrix in place on this rank,
// cooperating with the other ranks of comm. The algorithm is the
// right-looking variant with the standard 2D broadcasts:
//
//   - L_kk goes down process column k mod Q (to the panel owners);
//   - each solved panel tile A_ik goes along process row i mod P (it is the
//     left operand of every GEMM in tile row i) and down process column
//     i mod Q (it is the right operand of every GEMM in tile column i).
//
// Every rank calls Cholesky; the call returns when the rank's shard holds
// its tiles of L. A non-SPD pivot is returned as an error on every rank.
func (m *DistMatrix) Cholesky(c *Comm) error {
	g := m.Grid
	mt := m.MT
	failTag := tagOf(tagSum, mt-1, mt-1, mt) + 1
	for k := 0; k < mt; k++ {
		// 1. factor the diagonal tile and share it with the panel column.
		var lkk *la.Mat
		colRanks := g.col(k % g.Q)
		diagOwner := g.Owner(k, k)
		failed := 0.0
		if c.Rank() == diagOwner {
			t := m.Tile(k, k)
			if err := la.PotrfUnblocked(t); err != nil {
				failed = 1
			}
			lkk = t
			c.Bcast(diagOwner, tagOf(tagLkk, k, k, mt), t.Data[:t.Rows*t.Stride], colRanks)
		} else if contains(colRanks, c.Rank()) {
			d := m.tileDim(k)
			data := c.Recv(diagOwner, tagOf(tagLkk, k, k, mt))
			lkk = la.NewMatFrom(d, d, data)
		}
		// agree on failure (the factorization cannot proceed past a bad
		// pivot; everyone must exit together)
		if c.AllreduceSum(failTag+2*k, failed) > 0 {
			return fmt.Errorf("mpi: matrix not positive definite at panel %d", k)
		}

		// 2. panel solve + broadcasts.
		for i := k + 1; i < mt; i++ {
			owner := g.Owner(i, k)
			if c.Rank() == owner {
				t := m.Tile(i, k)
				la.Trsm(la.Right, la.Lower, la.Transpose, 1, lkk, t)
				payload := t.Data[:t.Rows*t.Stride]
				for _, r := range dedup(g.row(i%g.P), g.col(i%g.Q)) {
					if r != owner {
						c.Send(r, tagOf(tagRow, i, k, mt), payload)
					}
				}
			}
		}

		// 3. trailing update: gather the panel tiles this rank needs, then
		// apply SYRK/GEMM on locally owned tiles.
		panel := map[int]*la.Mat{}
		needPanel := func(i int) *la.Mat {
			if t, ok := panel[i]; ok {
				return t
			}
			owner := g.Owner(i, k)
			var t *la.Mat
			if c.Rank() == owner {
				t = m.Tile(i, k)
			} else {
				data := c.Recv(owner, tagOf(tagRow, i, k, mt))
				t = la.NewMatFrom(m.tileDim(i), m.tileDim(k), data)
			}
			panel[i] = t
			return t
		}
		for i := k + 1; i < mt; i++ {
			for j := k + 1; j <= i; j++ {
				if g.Owner(i, j) != c.Rank() {
					continue
				}
				if i == j {
					la.Syrk(la.Lower, -1, needPanel(i), la.NoTrans, 1, m.Tile(i, i))
				} else {
					la.Gemm(-1, needPanel(i), la.NoTrans, needPanel(j), la.Transpose, 1, m.Tile(i, j))
				}
			}
		}
	}
	return nil
}

// LogDet computes log|A| cooperatively after Cholesky (sum of local diagonal
// contributions, allreduced).
func (m *DistMatrix) LogDet(c *Comm) float64 {
	var local float64
	for k := 0; k < m.MT; k++ {
		if m.Grid.Owner(k, k) == c.Rank() {
			local += la.LogDetFromChol(m.Tile(k, k))
		}
	}
	return c.AllreduceSum(tagOf(tagSum, 0, 0, m.MT)+100000, local)
}

// Gather assembles the full lower-triangular factor on rank 0 (testing and
// small-problem interop); other ranks return nil.
func (m *DistMatrix) Gather(c *Comm) *la.Mat {
	base := tagOf(tagSum, 0, 0, m.MT) + 200000
	if c.Rank() != 0 {
		for key, t := range m.local {
			c.Send(0, base+key.i*m.MT+key.j, t.Data[:t.Rows*t.Stride])
		}
		return nil
	}
	out := la.NewMat(m.N, m.N)
	for i := 0; i < m.MT; i++ {
		for j := 0; j <= i; j++ {
			var t *la.Mat
			if owner := m.Grid.Owner(i, j); owner == 0 {
				t = m.Tile(i, j)
			} else {
				data := c.Recv(owner, base+i*m.MT+j)
				t = la.NewMatFrom(m.tileDim(i), m.tileDim(j), data)
			}
			for a := 0; a < t.Rows; a++ {
				for b := 0; b < t.Cols; b++ {
					out.Set(i*m.NB+a, j*m.NB+b, t.At(a, b))
				}
			}
		}
	}
	return out
}

// RunWorld runs fn once per rank concurrently and waits for completion; any
// per-rank error is collected.
func RunWorld(size int, fn func(c *Comm) error) []error {
	w := NewWorld(size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[r] = fn(w.At(r))
		}()
	}
	wg.Wait()
	return errs
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// dedup merges two rank lists without duplicates.
func dedup(a, b []int) []int {
	out := append([]int(nil), a...)
	for _, v := range b {
		if !contains(out, v) {
			out = append(out, v)
		}
	}
	return out
}
