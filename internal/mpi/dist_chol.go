package mpi

import (
	"fmt"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
)

// Grid is a 2D process grid mapping tiles to ranks block-cyclically, the
// distribution the paper's distributed runs use.
type Grid struct {
	P, Q int
}

// Owner returns the rank owning tile (i, j).
func (g Grid) Owner(i, j int) int { return (i%g.P)*g.Q + j%g.Q }

// DiagRecipients returns the ranks (other than the owner of (k, k)) that
// need the factored diagonal tile L_kk: the owners of the panel tiles
// (i, k), i > k, which apply the triangular solve to their tiles.
func (g Grid) DiagRecipients(k, mt int) []int {
	return diagRecipients(g.Owner, k, mt)
}

// PanelRecipients returns the ranks (other than the owner) that consume the
// solved panel tile (i, k) during the trailing update of panel k: the owners
// of tiles (i, j), k < j ≤ i (where it is the left SYRK/GEMM operand) and of
// tiles (a, i), i < a < mt (where it is the right GEMM operand). Both the
// dense and the TLR distributed Cholesky send each panel tile to exactly
// this set, so every message is consumed and mailboxes drain completely —
// the property that lets one World be reused across many factorizations
// (core's distributed likelihood evaluator) without stale-message
// corruption, and it ships strictly fewer bytes than a blanket process
// row+column broadcast when the trailing submatrix is narrow.
func (g Grid) PanelRecipients(i, k, mt int) []int {
	return panelRecipients(g.Owner, i, k, mt)
}

// tileKey identifies a tile in a rank's local store.
type tileKey struct{ i, j int }

// DistMatrix is one rank's shard of a block-cyclically distributed
// symmetric matrix (lower tiles only).
type DistMatrix struct {
	N, NB, MT int
	Grid      Grid
	Rank      int
	local     map[tileKey]*la.Mat
}

// tileDim returns the edge of tile row i.
func (m *DistMatrix) tileDim(i int) int {
	d := m.N - i*m.NB
	if d > m.NB {
		d = m.NB
	}
	return d
}

// NewDistFromKernel assembles rank's shard of Σ(θ): only locally owned
// tiles are generated — no rank ever holds the full matrix.
func NewDistFromKernel(rank int, grid Grid, k *cov.Kernel, pts []geom.Point, metric geom.Metric, nb int, nugget float64) *DistMatrix {
	n := len(pts)
	m := &DistMatrix{N: n, NB: nb, MT: (n + nb - 1) / nb, Grid: grid, Rank: rank, local: map[tileKey]*la.Mat{}}
	for i := 0; i < m.MT; i++ {
		for j := 0; j <= i; j++ {
			if grid.Owner(i, j) != rank {
				continue
			}
			t := la.NewMat(m.tileDim(i), m.tileDim(j))
			k.Block(t, pts[i*nb:i*nb+m.tileDim(i)], pts[j*nb:j*nb+m.tileDim(j)], metric)
			if i == j {
				for a := 0; a < t.Rows; a++ {
					t.Set(a, a, t.At(a, a)+nugget)
				}
			}
			m.local[tileKey{i, j}] = t
		}
	}
	return m
}

// Tile returns a locally owned tile (nil if not owned).
func (m *DistMatrix) Tile(i, j int) *la.Mat { return m.local[tileKey{i, j}] }

// Cholesky factors the distributed matrix in place on this rank,
// cooperating with the other ranks of comm. The algorithm is the
// right-looking variant with 2D point-to-point panel distribution:
//
//   - L_kk goes to the owners of the panel tiles (i, k);
//   - each solved panel tile A_ik goes to the exact set of ranks that use
//     it in the trailing update (Grid.PanelRecipients).
//
// Every rank calls Cholesky; the call returns when the rank's shard holds
// its tiles of L. A non-SPD pivot is returned as an error on every rank.
func (m *DistMatrix) Cholesky(c *Comm) error {
	g := m.Grid
	mt := m.MT
	for k := 0; k < mt; k++ {
		// 1. factor the diagonal tile and ship it to the panel owners.
		var lkk *la.Mat
		diagOwner := g.Owner(k, k)
		diagTo := g.DiagRecipients(k, mt)
		failed := 0.0
		if c.Rank() == diagOwner {
			t := m.Tile(k, k)
			if err := la.PotrfUnblocked(t); err != nil {
				failed = 1
			}
			lkk = t
			for _, r := range diagTo {
				c.Send(r, tagOf(kindLkk, k, k), t.Data[:t.Rows*t.Stride])
			}
		} else if contains(diagTo, c.Rank()) {
			d := m.tileDim(k)
			data, err := c.Recv(diagOwner, tagOf(kindLkk, k, k))
			if err != nil {
				return err
			}
			lkk = la.NewMatFrom(d, d, data)
		}
		// agree on failure (the factorization cannot proceed past a bad
		// pivot; everyone must exit together)
		bad, err := c.AllreduceSum(tagOf(kindFail, k, 0), failed)
		if err != nil {
			return err
		}
		if bad > 0 {
			return fmt.Errorf("mpi: matrix not positive definite at panel %d", k)
		}

		// 2. panel solve + sends to the consumer set.
		for i := k + 1; i < mt; i++ {
			if owner := g.Owner(i, k); c.Rank() == owner {
				t := m.Tile(i, k)
				la.Trsm(la.Right, la.Lower, la.Transpose, 1, lkk, t)
				payload := t.Data[:t.Rows*t.Stride]
				for _, r := range g.PanelRecipients(i, k, mt) {
					c.Send(r, tagOf(kindPanel, i, k), payload)
				}
			}
		}

		// 3. trailing update: gather the panel tiles this rank needs, then
		// apply SYRK/GEMM on locally owned tiles.
		panel := map[int]*la.Mat{}
		needPanel := func(i int) (*la.Mat, error) {
			if t, ok := panel[i]; ok {
				return t, nil
			}
			owner := g.Owner(i, k)
			var t *la.Mat
			if c.Rank() == owner {
				t = m.Tile(i, k)
			} else {
				data, err := c.Recv(owner, tagOf(kindPanel, i, k))
				if err != nil {
					return nil, err
				}
				t = la.NewMatFrom(m.tileDim(i), m.tileDim(k), data)
			}
			panel[i] = t
			return t, nil
		}
		for i := k + 1; i < mt; i++ {
			for j := k + 1; j <= i; j++ {
				if g.Owner(i, j) != c.Rank() {
					continue
				}
				pi, err := needPanel(i)
				if err != nil {
					return err
				}
				if i == j {
					la.Syrk(la.Lower, -1, pi, la.NoTrans, 1, m.Tile(i, i))
				} else {
					pj, err := needPanel(j)
					if err != nil {
						return err
					}
					la.Gemm(-1, pi, la.NoTrans, pj, la.Transpose, 1, m.Tile(i, j))
				}
			}
		}
	}
	return nil
}

// LogDet computes log|A| cooperatively after Cholesky (sum of local diagonal
// contributions, allreduced).
func (m *DistMatrix) LogDet(c *Comm) (float64, error) {
	var local float64
	for k := 0; k < m.MT; k++ {
		if m.Grid.Owner(k, k) == c.Rank() {
			local += la.LogDetFromChol(m.Tile(k, k))
		}
	}
	return c.AllreduceSum(tagOf(kindSum, 0, 0), local)
}

// Gather assembles the full lower-triangular factor on rank 0 (testing and
// small-problem interop); other ranks return nil.
func (m *DistMatrix) Gather(c *Comm) (*la.Mat, error) {
	if c.Rank() != 0 {
		for key, t := range m.local {
			c.Send(0, tagOf(kindGather, key.i, key.j), t.Data[:t.Rows*t.Stride])
		}
		return nil, nil
	}
	out := la.NewMat(m.N, m.N)
	for i := 0; i < m.MT; i++ {
		for j := 0; j <= i; j++ {
			var t *la.Mat
			if owner := m.Grid.Owner(i, j); owner == 0 {
				t = m.Tile(i, j)
			} else {
				data, err := c.Recv(owner, tagOf(kindGather, i, j))
				if err != nil {
					return nil, err
				}
				t = la.NewMatFrom(m.tileDim(i), m.tileDim(j), data)
			}
			for a := 0; a < t.Rows; a++ {
				for b := 0; b < t.Cols; b++ {
					out.Set(i*m.NB+a, j*m.NB+b, t.At(a, b))
				}
			}
		}
	}
	return out, nil
}
