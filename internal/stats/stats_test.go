package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Q1 != 2 || s.Q3 != 4 || s.Mean != 3 || s.N != 5 {
		t.Fatalf("summary wrong: %+v", s)
	}
}

func TestSummarizeInterpolates(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if math.Abs(s.Median-2.5) > 1e-15 {
		t.Fatalf("median %g want 2.5", s.Median)
	}
	if math.Abs(s.Q1-1.75) > 1e-15 || math.Abs(s.Q3-3.25) > 1e-15 {
		t.Fatalf("quartiles %g %g", s.Q1, s.Q3)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 {
		t.Fatalf("singleton summary wrong: %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestSummarizePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || math.Abs(s-2) > 1e-12 {
		t.Fatalf("mean=%g std=%g", m, s)
	}
	m0, s0 := MeanStd(nil)
	if m0 != 0 || s0 != 0 {
		t.Fatal("empty MeanStd should be 0,0")
	}
}

func TestBoxplotRow(t *testing.T) {
	s := Summarize([]float64{0, 0.25, 0.5, 0.75, 1})
	row := s.BoxplotRow(0, 1, 41)
	if len(row) != 41 {
		t.Fatalf("row length %d", len(row))
	}
	if row[0] != '-' || row[40] != '-' {
		t.Fatalf("whiskers missing: %q", row)
	}
	if !strings.Contains(row, "|") || !strings.Contains(row, "=") {
		t.Fatalf("box or median missing: %q", row)
	}
	mid := strings.IndexByte(row, '|')
	if mid < 15 || mid > 25 {
		t.Fatalf("median badly placed at %d: %q", mid, row)
	}
}

func TestBoxplotRowDegenerateRange(t *testing.T) {
	s := Summarize([]float64{1, 1, 1})
	row := s.BoxplotRow(1, 1, 20)
	if len(row) != 20 {
		t.Fatal("degenerate range mishandled")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("region", "θ1", "θ2")
	tb.AddRow("R1", "0.85", "6.04")
	tb.AddRow("R2", "0.38")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "region") || !strings.Contains(lines[2], "R1") {
		t.Fatalf("table malformed:\n%s", out)
	}
	// aligned columns: θ1 column starts at same offset in all rows
	c0 := strings.Index(lines[0], "θ1")
	c2 := strings.Index(lines[2], "0.85")
	if c0 < 0 || c2 < 0 {
		t.Fatalf("columns missing:\n%s", out)
	}
}
