// Package stats provides the summary statistics and plain-text rendering the
// experiment harness uses to report the paper's boxplot figures and tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary is a five-number boxplot summary plus mean.
type Summary struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
}

// Summarize computes the five-number summary of xs (which it does not
// modify). It panics on empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var mean float64
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	return Summary{
		N:      len(s),
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   mean,
	}
}

// quantileSorted returns the linear-interpolation quantile of sorted data.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MeanStd returns the sample mean and (population) standard deviation.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		d := v - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)))
	return
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// BoxplotRow renders an ASCII boxplot of the summary across [lo, hi] in
// width characters: whiskers as '-', box as '=', median as '|'.
func (s Summary) BoxplotRow(lo, hi float64, width int) string {
	if width < 10 {
		width = 10
	}
	pos := func(v float64) int {
		if hi <= lo {
			return 0
		}
		p := int(float64(width-1) * (v - lo) / (hi - lo))
		if p < 0 {
			p = 0
		}
		if p > width-1 {
			p = width - 1
		}
		return p
	}
	row := make([]byte, width)
	for i := range row {
		row[i] = ' '
	}
	for i := pos(s.Min); i <= pos(s.Max); i++ {
		row[i] = '-'
	}
	for i := pos(s.Q1); i <= pos(s.Q3); i++ {
		row[i] = '='
	}
	row[pos(s.Median)] = '|'
	return string(row)
}

// Table is a simple fixed-width text table builder for experiment reports.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells beyond the header width are dropped, missing
// cells rendered empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		b.WriteString(strings.Repeat("-", w))
		if i < len(widths)-1 {
			b.WriteString("  ")
		}
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
