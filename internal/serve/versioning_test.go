package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestV1AndLegacyRoutesServeSameAPI pins the wire-versioning contract: every
// endpoint answers under /v1/ and under its original unversioned path, from
// the same handler.
func TestV1AndLegacyRoutesServeSameAPI(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	pts, z := testDataset(t, 120, 31)
	req := CreateModelRequest{Name: "m", Points: pts, Z: z, Theta: &testTheta}
	if code := do(t, s, "POST", "/v1/models", req, nil); code != http.StatusCreated {
		t.Fatalf("create via /v1: status %d", code)
	}
	for _, path := range []string{"/v1/healthz", "/healthz"} {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, rec.Code)
		}
	}
	query := PredictRequest{Points: []Point{{X: 0.5, Y: 0.5}}}
	var v1, legacy PredictResponse
	if code := do(t, s, "POST", "/v1/models/m/predict", query, &v1); code != http.StatusOK {
		t.Fatalf("predict via /v1: status %d", code)
	}
	if code := do(t, s, "POST", "/models/m/predict", query, &legacy); code != http.StatusOK {
		t.Fatalf("predict via legacy path: status %d", code)
	}
	if v1.Mean[0] != legacy.Mean[0] {
		t.Fatalf("v1 and legacy predictions disagree: %g vs %g", v1.Mean[0], legacy.Mean[0])
	}
	var list ListModelsResponse
	if code := do(t, s, "GET", "/v1/models", nil, &list); code != http.StatusOK || len(list.Models) != 1 {
		t.Fatalf("list via /v1: %d models, status %d", len(list.Models), code)
	}
	var m MetricsResponse
	if code := do(t, s, "GET", "/v1/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics via /v1: status %d", code)
	}
	// Both mounts share one instrumented handler: the predict histogram must
	// have counted both requests above under a single endpoint entry.
	if m.Endpoints["predict"].Count < 2 {
		t.Fatalf("predict endpoint counted %d requests, want both mounts pooled", m.Endpoints["predict"].Count)
	}
	if code := do(t, s, "DELETE", "/v1/models/m", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete via /v1: status %d", code)
	}
}

// TestServeRegistryModes: the wire API accepts every registered backend name
// (via core's registry), including the HODLR mode end to end.
func TestServeRegistryModes(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	pts, z := testDataset(t, 120, 32)
	for _, mode := range []string{"hodlr", "full-tile"} {
		req := CreateModelRequest{
			Name: "m-" + mode, Points: pts, Z: z, Theta: &testTheta,
			Config: ModelConfig{Mode: mode, TileSize: 32, Accuracy: 1e-9},
		}
		var info ModelInfo
		if code := do(t, s, "POST", "/v1/models", req, &info); code != http.StatusCreated {
			t.Fatalf("create mode %q: status %d", mode, code)
		}
		var resp PredictResponse
		if code := do(t, s, "POST", "/v1/models/m-"+mode+"/predict",
			PredictRequest{Points: []Point{{X: 0.5, Y: 0.5}}}, &resp); code != http.StatusOK {
			t.Fatalf("predict mode %q: status %d", mode, code)
		}
	}
}

// TestCancelledQueuedPredictIsShed: a predict whose client disconnects while
// the job is still queued must be dropped by the worker without touching the
// session, counted by serve.predict.shed.
func TestCancelledQueuedPredictIsShed(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	pts, z := testDataset(t, 120, 33)
	if code := do(t, s, "POST", "/v1/models",
		CreateModelRequest{Name: "m", Points: pts, Z: z, Theta: &testTheta}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	m, ok := s.lookup("m")
	if !ok {
		t.Fatal("model missing")
	}
	before := obs.Default().Snapshot().Counters["serve.predict.shed"]

	// Enqueue directly with an already-cancelled context, as the HTTP layer
	// does when the client goes away while the job waits its turn.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	job := &predictJob{
		ctx:    ctx,
		points: toGeomPoints([]Point{{X: 0.5, Y: 0.5}}),
		reply:  make(chan predictResult, 1),
	}
	if err := m.enqueue(job); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-job.reply:
		if res.err == nil {
			t.Fatal("cancelled job ran to completion instead of being shed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker never answered the cancelled job")
	}
	after := obs.Default().Snapshot().Counters["serve.predict.shed"]
	if after != before+1 {
		t.Fatalf("serve.predict.shed went %d → %d, want one shed job", before, after)
	}

	// A live request through the full HTTP path still works afterwards.
	var resp PredictResponse
	if code := do(t, s, "POST", "/v1/models/m/predict",
		PredictRequest{Points: []Point{{X: 0.5, Y: 0.5}}}, &resp); code != http.StatusOK {
		t.Fatalf("post-shed predict: status %d", code)
	}
}

// TestPredictCarriesRequestContext: the HTTP handler threads r.Context()
// into the queued job.
func TestPredictCarriesRequestContext(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	pts, z := testDataset(t, 120, 34)
	if code := do(t, s, "POST", "/v1/models",
		CreateModelRequest{Name: "m", Points: pts, Z: z, Theta: &testTheta}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	body, _ := json.Marshal(PredictRequest{Points: []Point{{X: 0.5, Y: 0.5}}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/models/m/predict", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled request: status %d, want 503", rec.Code)
	}
}
