package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/dataio"
	"repro/internal/geom"
	"repro/internal/obs"
)

// Config bounds the server's resource use. Zero fields take the defaults
// documented on each field.
type Config struct {
	// MaxBatch is the largest point count one predict request may carry
	// (default 16384; larger batches are rejected with 413).
	MaxBatch int
	// MaxQueue caps queued predict requests per model (default 256; beyond
	// it the server sheds load with 503 instead of buffering unboundedly).
	MaxQueue int
	// MaxModels caps registered models (default 64; 429 beyond).
	MaxModels int
	// MaxPoints caps observations per ingested model (default 1_000_000;
	// 413 beyond).
	MaxPoints int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 16384
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 256
	}
	if c.MaxModels == 0 {
		c.MaxModels = 64
	}
	if c.MaxPoints == 0 {
		c.MaxPoints = 1_000_000
	}
	return c
}

var (
	errQueueFull    = errors.New("serve: prediction queue full")
	errModelClosed  = errors.New("serve: model deleted")
	errShuttingDown = errors.New("serve: server shutting down")
)

// nameRE bounds model names to filesystem- and URL-safe tokens.
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9._-]{1,64}$`)

// cntPredictShed counts queued predictions dropped unrun — because the
// requesting client disconnected before the worker reached them, or because
// the server began shutting down while they sat in the queue.
var cntPredictShed = obs.GetCounter("serve.predict.shed")

// predictJob is one prediction request handed to a model's worker.
type predictJob struct {
	ctx          context.Context // request context; a cancelled job is shed unrun
	points       []geom.Point
	withVariance bool
	reply        chan predictResult // buffered(1): the worker never blocks
}

type predictResult struct {
	mean     []float64
	variance []float64
	elapsed  time.Duration
	err      error
}

// model is one registered session plus the serializing worker in front of it.
// All Session calls happen on the worker goroutine; HTTP handlers only
// enqueue. The queue is closed under qmu so enqueue-after-delete fails with
// errModelClosed instead of panicking.
type model struct {
	info  ModelInfo
	sess  *core.Session
	theta cov.Params

	queue   chan *predictJob
	qmu     sync.Mutex
	qclosed bool
	done    chan struct{} // closed when the worker has drained and exited

	// shedding flips on at server shutdown: the worker answers every
	// remaining queued job with errShuttingDown instead of executing it, so
	// Close returns in O(queue) replies rather than O(queue) solves.
	shedding atomic.Bool

	predicts atomic.Int64
}

func (m *model) run() {
	defer close(m.done)
	for job := range m.queue {
		if m.shedding.Load() {
			cntPredictShed.Inc()
			job.reply <- predictResult{err: errShuttingDown}
			continue
		}
		job.reply <- m.do(job)
	}
}

func (m *model) do(job *predictJob) predictResult {
	// A request whose client already went away only wastes the session's
	// serialized solve time — shed it before touching the Session.
	if job.ctx != nil {
		if err := job.ctx.Err(); err != nil {
			cntPredictShed.Inc()
			return predictResult{err: err}
		}
	}
	start := time.Now()
	if job.withVariance {
		pr, err := m.sess.PredictWithVariance(job.points, m.theta)
		if err != nil {
			return predictResult{err: err}
		}
		m.predicts.Add(1)
		return predictResult{mean: pr.Mean, variance: pr.Variance, elapsed: time.Since(start)}
	}
	mean, err := m.sess.Predict(job.points, m.theta)
	if err != nil {
		return predictResult{err: err}
	}
	m.predicts.Add(1)
	return predictResult{mean: mean, elapsed: time.Since(start)}
}

// enqueue hands a job to the worker without blocking: a full queue is load
// shed (errQueueFull → 503), a model closed by deletion reports
// errModelClosed (404), one closed by server shutdown errShuttingDown (503).
func (m *model) enqueue(job *predictJob) error {
	m.qmu.Lock()
	defer m.qmu.Unlock()
	if m.qclosed {
		if m.shedding.Load() {
			return errShuttingDown
		}
		return errModelClosed
	}
	select {
	case m.queue <- job:
		return nil
	default:
		return errQueueFull
	}
}

// close shuts the queue and waits for the worker to exit. With shed=false
// (model deletion) pending jobs drain with real replies; with shed=true
// (server shutdown) every still-queued job is answered errShuttingDown
// unrun — only the job already executing finishes. The shedding flag flips
// under qmu, before the queue closes, so a job either lands in the queue and
// gets a shed reply or is rejected at enqueue; none are dropped replyless.
func (m *model) close(shed bool) {
	m.qmu.Lock()
	if !m.qclosed {
		m.qclosed = true
		if shed {
			m.shedding.Store(true)
		}
		close(m.queue)
	}
	m.qmu.Unlock()
	<-m.done
}

func (m *model) snapshot() ModelInfo {
	info := m.info
	info.Predicts = m.predicts.Load()
	return info
}

// Server is the kriging service: registry, handlers, and limits. Create one
// with New and mount it (it implements http.Handler).
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu     sync.RWMutex
	models map[string]*model
	closed bool

	// draining flips when graceful shutdown begins (BeginShutdown), before
	// the listener stops accepting: readyz turns 503 so load balancers pull
	// the instance out of rotation while in-flight requests finish.
	draining atomic.Bool

	endpoints []string // instrumented endpoint names, for /metrics
}

// New builds a server with its routes mounted. Every route lives under the
// versioned /v1/ prefix; the original unversioned paths stay mounted as
// aliases of the same handlers, so existing clients keep working while new
// ones pin /v1. Each endpoint is instrumented once — both mounts share one
// histogram and counter set.
func New(cfg Config) *Server {
	s := &Server{
		cfg:    cfg.withDefaults(),
		mux:    http.NewServeMux(),
		models: map[string]*model{},
	}
	mount := func(method, path, name string, h func(http.ResponseWriter, *http.Request) int) {
		wrapped := s.instrument(name, h)
		s.mux.HandleFunc(method+" /v1"+path, wrapped)
		s.mux.HandleFunc(method+" "+path, wrapped)
	}
	mount("POST", "/models", "create", s.handleCreate)
	mount("GET", "/models", "list", s.handleList)
	mount("GET", "/models/{name}", "get", s.handleGet)
	mount("DELETE", "/models/{name}", "delete", s.handleDelete)
	mount("POST", "/models/{name}/predict", "predict", s.handlePredict)
	mount("GET", "/metrics", "metrics", s.handleMetrics)
	healthz := func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ok\n"))
	}
	s.mux.HandleFunc("GET /v1/healthz", healthz)
	s.mux.HandleFunc("GET /healthz", healthz)
	readyz := func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("ready\n"))
	}
	s.mux.HandleFunc("GET /v1/readyz", readyz)
	s.mux.HandleFunc("GET /readyz", readyz)
	return s
}

// Ready reports whether the registry is accepting work: true from New until
// BeginShutdown or Close. Distinct from liveness — a draining server is
// still alive (healthz 200) but not ready (readyz 503), the split
// orchestrators need to stop routing to an instance without restarting it.
func (s *Server) Ready() bool {
	if s.draining.Load() {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return !s.closed
}

// BeginShutdown marks the server draining: readyz flips to 503 immediately
// while every other endpoint keeps serving. Call it before stopping the
// listener (http.Server.Shutdown) so load balancers see the instance
// not-ready and drain traffic ahead of the close. Idempotent; Close implies
// it.
func (s *Server) BeginShutdown() { s.draining.Store(true) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close deletes every model and stops their workers. Subsequent creates and
// predicts are rejected with 503; queued predicts are shed with 503 instead
// of executed — shutdown waits only for the solves already running, never
// for the backlog.
func (s *Server) Close() {
	s.BeginShutdown()
	s.mu.Lock()
	s.closed = true
	models := make([]*model, 0, len(s.models))
	for _, m := range s.models {
		models = append(models, m)
	}
	s.models = map[string]*model{}
	s.mu.Unlock()
	for _, m := range models {
		m.close(true)
	}
}

// instrument wraps a handler with a per-endpoint latency histogram
// ("serve.http.<name>.ns") and request/error counters. Handlers return the
// HTTP status they wrote so errors are counted exactly.
func (s *Server) instrument(name string, h func(http.ResponseWriter, *http.Request) int) http.HandlerFunc {
	hist := obs.GetHistogram("serve.http." + name + ".ns")
	reqs := obs.GetCounter("serve.http." + name + ".requests")
	errs := obs.GetCounter("serve.http." + name + ".errors")
	s.endpoints = append(s.endpoints, name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status := h(w, r)
		hist.ObserveDuration(time.Since(start))
		reqs.Inc()
		if status >= 400 {
			errs.Inc()
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
	return status
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) int {
	return writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// parseMode resolves a wire-format mode name through core's backend
// registry, so new backend registrations become servable without touching
// this package. An empty name keeps the historical full-block default.
func parseMode(s string) (core.Mode, error) {
	if s == "" {
		return core.FullBlock, nil
	}
	return core.ModeByName(s)
}

func toCoreConfig(mc ModelConfig) (core.Config, error) {
	mode, err := parseMode(mc.Mode)
	if err != nil {
		return core.Config{}, err
	}
	cfg := core.Config{
		Mode:           mode,
		TileSize:       mc.TileSize,
		Accuracy:       mc.Accuracy,
		CompressorName: mc.Compressor,
		Workers:        mc.Workers,
		Nugget:         mc.Nugget,
		Ordering:       mc.Ordering,
		Ranks:          mc.Ranks,
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

func toGeomPoints(pts []Point) []geom.Point {
	out := make([]geom.Point, len(pts))
	for i, p := range pts {
		out[i] = geom.Point{X: p.X, Y: p.Y}
	}
	return out
}

func toCovParams(t Theta) cov.Params {
	return cov.Params{Variance: t.Variance, Range: t.Range, Smoothness: t.Smoothness}
}

func fromCovParams(p cov.Params) Theta {
	return Theta{Variance: p.Variance, Range: p.Range, Smoothness: p.Smoothness}
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) int {
	var req CreateModelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
	}
	if !nameRE.MatchString(req.Name) {
		return writeError(w, http.StatusBadRequest, "invalid model name %q (want %s)", req.Name, nameRE)
	}
	if len(req.Points) == 0 {
		return writeError(w, http.StatusBadRequest, "empty point list")
	}
	if len(req.Points) != len(req.Z) {
		return writeError(w, http.StatusBadRequest, "%d points but %d observations", len(req.Points), len(req.Z))
	}
	if len(req.Points) > s.cfg.MaxPoints {
		return writeError(w, http.StatusRequestEntityTooLarge, "%d observations exceeds the %d limit", len(req.Points), s.cfg.MaxPoints)
	}
	metricName := req.Metric
	if metricName == "" {
		metricName = "euclidean"
	}
	metric, err := dataio.MetricByName(metricName)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}
	cfg, err := toCoreConfig(req.Config)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "invalid config: %v", err)
	}
	if req.Theta != nil {
		if err := toCovParams(*req.Theta).Validate(); err != nil {
			return writeError(w, http.StatusBadRequest, "invalid theta: %v", err)
		}
	}

	// Reject duplicates and over-capacity before paying for the fit; the
	// insert below re-checks under the lock, so a racing create of the same
	// name still gets exactly one winner.
	s.mu.RLock()
	_, dup := s.models[req.Name]
	full := len(s.models) >= s.cfg.MaxModels
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return writeError(w, http.StatusServiceUnavailable, "server shutting down")
	}
	if dup {
		return writeError(w, http.StatusConflict, "model %q already exists", req.Name)
	}
	if full {
		return writeError(w, http.StatusTooManyRequests, "model capacity %d reached", s.cfg.MaxModels)
	}

	problem, err := core.NewProblem(toGeomPoints(req.Points), req.Z, metric)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}
	sess, err := core.NewSession(problem, cfg)
	if err != nil {
		return writeError(w, http.StatusBadRequest, "%v", err)
	}

	info := ModelInfo{
		Name:   req.Name,
		N:      problem.N(),
		Mode:   sess.Config().Mode.String(),
		Metric: metricName,
	}
	var theta cov.Params
	if req.Theta != nil {
		theta = toCovParams(*req.Theta)
	} else {
		spec := req.Fit
		if spec == nil {
			spec = &FitSpec{}
		}
		opts := core.FitOptions{MaxEvals: spec.MaxEvals, FixSmoothness: spec.FixSmoothness, Profiled: spec.Profiled}
		if spec.Start != nil {
			opts.Start = toCovParams(*spec.Start)
		}
		fitStart := time.Now()
		fit, err := sess.Fit(opts)
		if err != nil {
			return writeError(w, http.StatusUnprocessableEntity, "fit failed: %v", err)
		}
		theta = fit.Theta
		info.Fitted = true
		info.LogLik = fit.LogL
		info.FitEvals = fit.Evals
		info.FitMS = float64(time.Since(fitStart).Microseconds()) / 1e3
	}
	info.Theta = fromCovParams(theta)

	// Warm the session's solve cache so the factorization is paid at ingest,
	// not by the first (unlucky) prediction request.
	if _, err := sess.Predict(problem.Points[:1], theta); err != nil {
		return writeError(w, http.StatusUnprocessableEntity, "model unusable: %v", err)
	}

	m := &model{
		info:  info,
		sess:  sess,
		theta: theta,
		queue: make(chan *predictJob, s.cfg.MaxQueue),
		done:  make(chan struct{}),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return writeError(w, http.StatusServiceUnavailable, "server shutting down")
	}
	if _, ok := s.models[req.Name]; ok {
		s.mu.Unlock()
		return writeError(w, http.StatusConflict, "model %q already exists", req.Name)
	}
	if len(s.models) >= s.cfg.MaxModels {
		s.mu.Unlock()
		return writeError(w, http.StatusTooManyRequests, "model capacity %d reached", s.cfg.MaxModels)
	}
	s.models[req.Name] = m
	s.mu.Unlock()
	go m.run()

	return writeJSON(w, http.StatusCreated, info)
}

func (s *Server) lookup(name string) (*model, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.models[name]
	return m, ok
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) int {
	s.mu.RLock()
	infos := make([]ModelInfo, 0, len(s.models))
	for _, m := range s.models {
		infos = append(infos, m.snapshot())
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return writeJSON(w, http.StatusOK, ListModelsResponse{Models: infos})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) int {
	m, ok := s.lookup(r.PathValue("name"))
	if !ok {
		return writeError(w, http.StatusNotFound, "no model %q", r.PathValue("name"))
	}
	return writeJSON(w, http.StatusOK, m.snapshot())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) int {
	name := r.PathValue("name")
	s.mu.Lock()
	m, ok := s.models[name]
	if ok {
		delete(s.models, name)
	}
	s.mu.Unlock()
	if !ok {
		return writeError(w, http.StatusNotFound, "no model %q", name)
	}
	// Stop the worker outside the registry lock; pending jobs drain with
	// replies before close returns.
	m.close(false)
	w.WriteHeader(http.StatusNoContent)
	return http.StatusNoContent
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) int {
	name := r.PathValue("name")
	m, ok := s.lookup(name)
	if !ok {
		return writeError(w, http.StatusNotFound, "no model %q", name)
	}
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return writeError(w, http.StatusBadRequest, "malformed JSON: %v", err)
	}
	if len(req.Points) == 0 {
		return writeError(w, http.StatusBadRequest, "empty point list")
	}
	if len(req.Points) > s.cfg.MaxBatch {
		return writeError(w, http.StatusRequestEntityTooLarge, "batch of %d exceeds the %d limit", len(req.Points), s.cfg.MaxBatch)
	}

	job := &predictJob{
		ctx:          r.Context(),
		points:       toGeomPoints(req.Points),
		withVariance: req.WithVariance,
		reply:        make(chan predictResult, 1),
	}
	if err := m.enqueue(job); err != nil {
		if errors.Is(err, errModelClosed) {
			return writeError(w, http.StatusNotFound, "model %q deleted", name)
		}
		if errors.Is(err, errShuttingDown) {
			return writeError(w, http.StatusServiceUnavailable, "server shutting down")
		}
		return writeError(w, http.StatusServiceUnavailable, "model %q overloaded: %v", name, err)
	}
	var res predictResult
	select {
	case res = <-job.reply:
	case <-r.Context().Done():
		// Client gone. The job carries the request context, so the worker
		// sheds it unrun if it is still queued when its turn comes; the reply
		// is buffered, so the worker never blocks on the absent reader. The
		// 503 write is usually lost on the dead connection but keeps the
		// endpoint's error accounting exact.
		return writeError(w, http.StatusServiceUnavailable, "client disconnected")
	}
	if res.err != nil && errors.Is(res.err, context.Canceled) {
		return writeError(w, http.StatusServiceUnavailable, "request cancelled before execution")
	}
	if res.err != nil && errors.Is(res.err, errShuttingDown) {
		return writeError(w, http.StatusServiceUnavailable, "server shutting down")
	}
	if res.err != nil {
		// Server-side solve failure. ErrSessionBusy here would mean the
		// serialization contract broke — surface it loudly either way.
		return writeError(w, http.StatusInternalServerError, "predict failed: %v", res.err)
	}
	resp := PredictResponse{
		Model:     name,
		N:         len(res.mean),
		Mean:      res.mean,
		ElapsedMS: float64(res.elapsed.Microseconds()) / 1e3,
	}
	if req.WithVariance {
		resp.Variance = res.variance
		resp.CI95 = make([]float64, len(res.variance))
		pr := core.Prediction{Mean: res.mean, Variance: res.variance}
		for i := range res.variance {
			resp.CI95[i] = pr.CI95(i)
		}
	}
	return writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) int {
	// Read only the process-wide obs registry — never Session internals,
	// which belong to the worker goroutines.
	snap := obs.Default().Snapshot()
	eps := make(map[string]EndpointStats, len(s.endpoints))
	for _, name := range s.endpoints {
		h := snap.Histograms["serve.http."+name+".ns"]
		eps[name] = EndpointStats{
			Count:  h.Count,
			Errors: snap.Counters["serve.http."+name+".errors"],
			MeanMS: h.Mean() / 1e6,
			P50MS:  float64(h.Quantile(0.50)) / 1e6,
			P99MS:  float64(h.Quantile(0.99)) / 1e6,
			MaxMS:  float64(h.Max) / 1e6,
		}
	}
	s.mu.RLock()
	infos := make([]ModelInfo, 0, len(s.models))
	for _, m := range s.models {
		infos = append(infos, m.snapshot())
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return writeJSON(w, http.StatusOK, MetricsResponse{Obs: snap, Endpoints: eps, Models: infos})
}
