// Package serve is the kriging-as-a-service layer: a model registry plus
// HTTP/JSON handlers that front non-thread-safe core.Sessions with one
// serializing worker goroutine per model. Ingest (POST /models) builds a
// Session and either fits θ̂ by maximum likelihood or accepts a fixed θ;
// prediction (POST /models/{name}/predict) batches points into tile-sized
// kriging solves on the owning worker, so however many requests arrive
// concurrently, each Session sees strictly sequential calls — a property the
// session's ErrSessionBusy guard verifies rather than assumes. In-flight work
// per model is capped by a bounded queue (503 when full), batch and dataset
// sizes by explicit limits (413 beyond). GET /metrics exposes the process-wide
// internal/obs snapshot plus per-endpoint latency histograms.
package serve

import "repro/internal/obs"

// Point is the wire form of a 2-D location.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Theta is the wire form of the Matérn parameter vector (paper θ = (θ₁, θ₂,
// θ₃) = variance, range, smoothness).
type Theta struct {
	Variance   float64 `json:"variance"`
	Range      float64 `json:"range"`
	Smoothness float64 `json:"smoothness"`
}

// ModelConfig tunes the computation backend for one model. The zero value
// means dense full-block with library defaults; names mirror core.Config.
type ModelConfig struct {
	// Mode is "full-block" (default), "full-tile", or "tlr".
	Mode string `json:"mode,omitempty"`
	// TileSize is the tile edge nb (0 = default 128). It is also the column
	// chunk width of the prediction-variance path, so it bounds per-request
	// scratch memory at n×TileSize.
	TileSize int `json:"tile_size,omitempty"`
	// Accuracy is the TLR compression threshold (0 = default 1e-9).
	Accuracy float64 `json:"accuracy,omitempty"`
	// Compressor selects the TLR compression backend ("svd", "rsvd", "aca").
	Compressor string `json:"compressor,omitempty"`
	// Workers is the shared-memory runtime worker count (0 = default 1).
	Workers int `json:"workers,omitempty"`
	// Nugget is the diagonal regularization (0 = default 1e-9·θ₁).
	Nugget float64 `json:"nugget,omitempty"`
	// Ordering overrides the spatial ordering ("morton", "hilbert",
	// "kdblock", "none"; "" keeps the problem default).
	Ordering string `json:"ordering,omitempty"`
	// Ranks selects the simulated distributed backend when > 1 (TLR only).
	Ranks int `json:"ranks,omitempty"`
}

// FitSpec controls the maximum-likelihood fit run at ingest when no fixed
// theta is supplied.
type FitSpec struct {
	// MaxEvals caps likelihood evaluations (0 = library default 300).
	MaxEvals int `json:"max_evals,omitempty"`
	// FixSmoothness pins θ₃ to the start value instead of estimating it.
	FixSmoothness bool `json:"fix_smoothness,omitempty"`
	// Start optionally seeds the search; zero fields get data-driven defaults.
	Start *Theta `json:"start,omitempty"`
	// Profiled selects the concentrated-likelihood fit (θ̂₁ in closed form).
	Profiled bool `json:"profiled,omitempty"`
}

// CreateModelRequest ingests a dataset as a named model. Exactly one of two
// paths runs: a fixed Theta is validated and used as-is, or (Theta == nil) a
// maximum-likelihood fit estimates θ̂ under Fit's options.
type CreateModelRequest struct {
	Name   string      `json:"name"`
	Points []Point     `json:"points"`
	Z      []float64   `json:"z"`
	Metric string      `json:"metric,omitempty"` // default "euclidean"
	Config ModelConfig `json:"config,omitempty"`
	Theta  *Theta      `json:"theta,omitempty"`
	Fit    *FitSpec    `json:"fit,omitempty"`
}

// ModelInfo describes one registered model.
type ModelInfo struct {
	Name   string `json:"name"`
	N      int    `json:"n"`
	Theta  Theta  `json:"theta"`
	Fitted bool   `json:"fitted"` // true when θ came from an MLE fit
	// LogLik and FitEvals report the fit outcome (zero for fixed-θ models).
	LogLik   float64 `json:"loglik,omitempty"`
	FitEvals int     `json:"fit_evals,omitempty"`
	FitMS    float64 `json:"fit_ms,omitempty"`
	Mode     string  `json:"mode"`
	Metric   string  `json:"metric"`
	// Predicts counts prediction requests served by this model so far.
	Predicts int64 `json:"predicts"`
}

// ListModelsResponse is the GET /models payload.
type ListModelsResponse struct {
	Models []ModelInfo `json:"models"`
}

// PredictRequest asks for kriging predictions at Points.
type PredictRequest struct {
	Points []Point `json:"points"`
	// WithVariance additionally returns the conditional variance and the
	// 95% confidence half-width per point (paper eq. 3).
	WithVariance bool `json:"with_variance,omitempty"`
}

// PredictResponse carries the predictions for one batch.
type PredictResponse struct {
	Model string    `json:"model"`
	N     int       `json:"n"`
	Mean  []float64 `json:"mean"`
	// Variance and CI95 are present only when the request set WithVariance.
	Variance []float64 `json:"variance,omitempty"`
	CI95     []float64 `json:"ci95,omitempty"`
	// ElapsedMS is the server-side solve time (queue wait excluded).
	ElapsedMS float64 `json:"elapsed_ms"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// EndpointStats summarizes one endpoint's latency histogram.
type EndpointStats struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// MetricsResponse is the GET /metrics payload: the full process-wide obs
// snapshot (every counter/gauge/histogram the compute layers maintain,
// including the core.predict.cache.* and core.factor.runs evidence counters),
// per-endpoint latency summaries, and the registered models.
type MetricsResponse struct {
	Obs       obs.Snapshot             `json:"obs"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
	Models    []ModelInfo              `json:"models"`
}
