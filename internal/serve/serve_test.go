package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/obs"
)

var testTheta = Theta{Variance: 1, Range: 0.1, Smoothness: 0.5}

// testDataset samples a synthetic field and returns it in wire form.
func testDataset(t *testing.T, n int, seed uint64) ([]Point, []float64) {
	t.Helper()
	syn, err := core.GenerateSynthetic(n, 0, cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5}, seed)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]Point, syn.Train.N())
	for i, p := range syn.Train.Points {
		pts[i] = Point{X: p.X, Y: p.Y}
	}
	return pts, syn.Train.Z
}

// do runs one request through the server and decodes the JSON reply into out
// (when out is non-nil and the body is non-empty).
func do(t *testing.T, s *Server, method, path string, body, out any) int {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if out != nil && rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: bad JSON reply %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec.Code
}

func createTestModel(t *testing.T, s *Server, name string, n int, seed uint64) ([]Point, []float64) {
	t.Helper()
	pts, z := testDataset(t, n, seed)
	req := CreateModelRequest{Name: name, Points: pts, Z: z, Theta: &testTheta}
	var info ModelInfo
	if code := do(t, s, "POST", "/models", req, &info); code != http.StatusCreated {
		t.Fatalf("create %q: status %d", name, code)
	}
	if info.N != n || info.Fitted {
		t.Fatalf("create %q: unexpected info %+v", name, info)
	}
	return pts, z
}

func TestCreateValidation(t *testing.T) {
	s := New(Config{MaxPoints: 100, MaxModels: 2})
	defer s.Close()
	pts, z := testDataset(t, 36, 1)

	cases := []struct {
		name string
		body any
		want int
	}{
		{"malformed JSON", `{"name": "x", `, http.StatusBadRequest},
		{"bad name", CreateModelRequest{Name: "no spaces allowed", Points: pts, Z: z, Theta: &testTheta}, http.StatusBadRequest},
		{"empty points", CreateModelRequest{Name: "m", Theta: &testTheta}, http.StatusBadRequest},
		{"length mismatch", CreateModelRequest{Name: "m", Points: pts, Z: z[:10], Theta: &testTheta}, http.StatusBadRequest},
		{"unknown metric", CreateModelRequest{Name: "m", Points: pts, Z: z, Metric: "manhattan", Theta: &testTheta}, http.StatusBadRequest},
		{"unknown mode", CreateModelRequest{Name: "m", Points: pts, Z: z, Config: ModelConfig{Mode: "sparse"}, Theta: &testTheta}, http.StatusBadRequest},
		{"bad config", CreateModelRequest{Name: "m", Points: pts, Z: z, Config: ModelConfig{Workers: -1}, Theta: &testTheta}, http.StatusBadRequest},
		{"bad theta", CreateModelRequest{Name: "m", Points: pts, Z: z, Theta: &Theta{Variance: -1}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		var e ErrorResponse
		if code := do(t, s, "POST", "/models", tc.body, &e); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		} else if e.Error == "" {
			t.Errorf("%s: error reply missing message", tc.name)
		}
	}

	// Oversized dataset → 413.
	bigPts, bigZ := testDataset(t, 121, 2)
	if code := do(t, s, "POST", "/models", CreateModelRequest{Name: "big", Points: bigPts, Z: bigZ, Theta: &testTheta}, nil); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized dataset: status %d, want 413", code)
	}

	// Duplicate name → 409; capacity → 429.
	createTestModel(t, s, "a", 36, 3)
	if code := do(t, s, "POST", "/models", CreateModelRequest{Name: "a", Points: pts, Z: z, Theta: &testTheta}, nil); code != http.StatusConflict {
		t.Errorf("duplicate: status %d, want 409", code)
	}
	createTestModel(t, s, "b", 36, 4)
	if code := do(t, s, "POST", "/models", CreateModelRequest{Name: "c", Points: pts, Z: z, Theta: &testTheta}, nil); code != http.StatusTooManyRequests {
		t.Errorf("over capacity: status %d, want 429", code)
	}
}

func TestPredictValidation(t *testing.T) {
	s := New(Config{MaxBatch: 8})
	defer s.Close()
	createTestModel(t, s, "m", 64, 5)

	if code := do(t, s, "POST", "/models/ghost/predict", PredictRequest{Points: []Point{{X: 0.5, Y: 0.5}}}, nil); code != http.StatusNotFound {
		t.Errorf("unknown model: status %d, want 404", code)
	}
	if code := do(t, s, "POST", "/models/m/predict", `{"points": [{`, nil); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", code)
	}
	if code := do(t, s, "POST", "/models/m/predict", PredictRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty point list: status %d, want 400", code)
	}
	big := make([]Point, 9)
	if code := do(t, s, "POST", "/models/m/predict", PredictRequest{Points: big}, nil); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413", code)
	}
}

// TestPredictMatchesDirect is the serving-correctness anchor: the HTTP path
// (ingest → worker → JSON round-trip) must reproduce direct Session.Predict
// bit for bit. encoding/json emits shortest-round-trip float64, so exact
// comparison is legitimate.
func TestPredictMatchesDirect(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	pts, z := createTestModel(t, s, "m", 144, 6)

	query := []Point{{X: 0.21, Y: 0.43}, {X: 0.87, Y: 0.12}, {X: 0.5, Y: 0.5}}
	var resp PredictResponse
	if code := do(t, s, "POST", "/models/m/predict", PredictRequest{Points: query}, &resp); code != http.StatusOK {
		t.Fatalf("predict: status %d", code)
	}

	problem, err := core.NewProblem(toGeomPoints(pts), z, geom.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(problem, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.Predict(toGeomPoints(query), toCovParams(testTheta))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Mean) != len(want) {
		t.Fatalf("predict returned %d means, want %d", len(resp.Mean), len(want))
	}
	for i := range want {
		if resp.Mean[i] != want[i] {
			t.Errorf("mean[%d] = %v over HTTP, %v direct", i, resp.Mean[i], want[i])
		}
	}
}

func TestPredictWithVariance(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	pts, z := createTestModel(t, s, "m", 100, 7)

	query := []Point{pts[0], {X: 50, Y: 50}} // on an observation, and far away
	var resp PredictResponse
	code := do(t, s, "POST", "/models/m/predict", PredictRequest{Points: query, WithVariance: true}, &resp)
	if code != http.StatusOK {
		t.Fatalf("predict: status %d", code)
	}
	if len(resp.Variance) != 2 || len(resp.CI95) != 2 {
		t.Fatalf("variance/ci95 missing: %+v", resp)
	}
	if resp.Variance[0] > 0.01 {
		t.Errorf("variance on an observation should be ~0: %g", resp.Variance[0])
	}
	if resp.Variance[1] < 0.9 {
		t.Errorf("variance far from data should approach θ₁: %g", resp.Variance[1])
	}
	for i, v := range resp.Variance {
		if want := 1.96 * math.Sqrt(v); resp.CI95[i] != want {
			t.Errorf("ci95[%d] = %g, want %g", i, resp.CI95[i], want)
		}
	}
	if resp.Mean[0] == 0 || math.Abs(resp.Mean[0]-z[0]) > 0.05 {
		t.Errorf("mean on an observation should reproduce it: %g vs %g", resp.Mean[0], z[0])
	}

	// Variance request against the direct session, exact match.
	problem, err := core.NewProblem(toGeomPoints(pts), z, geom.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(problem, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.PredictWithVariance(toGeomPoints(query), toCovParams(testTheta))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Mean {
		if resp.Mean[i] != want.Mean[i] || resp.Variance[i] != want.Variance[i] {
			t.Errorf("point %d: HTTP (%v, %v) vs direct (%v, %v)",
				i, resp.Mean[i], resp.Variance[i], want.Mean[i], want.Variance[i])
		}
	}
}

// TestOneFactorizationAcrossPredicts asserts the serving hot path's core
// property: a fixed-θ model factors Σ exactly once (at ingest warmup), and
// every subsequent predict is a cache hit.
func TestOneFactorizationAcrossPredicts(t *testing.T) {
	factorRuns := obs.GetCounter("core.factor.runs")
	cacheHits := obs.GetCounter("core.predict.cache.hit")
	runs0 := factorRuns.Value()

	s := New(Config{})
	defer s.Close()
	createTestModel(t, s, "m", 144, 8)
	afterCreate := factorRuns.Value()
	if afterCreate-runs0 != 1 {
		t.Fatalf("ingest should factor exactly once, got %d", afterCreate-runs0)
	}

	hits0 := cacheHits.Value()
	for i := 0; i < 5; i++ {
		q := PredictRequest{Points: []Point{{X: 0.1 * float64(i+1), Y: 0.3}}, WithVariance: i%2 == 1}
		if code := do(t, s, "POST", "/models/m/predict", q, nil); code != http.StatusOK {
			t.Fatalf("predict %d: status %d", i, code)
		}
	}
	if d := factorRuns.Value() - afterCreate; d != 0 {
		t.Errorf("predicts after ingest ran %d extra factorizations, want 0", d)
	}
	if d := cacheHits.Value() - hits0; d != 5 {
		t.Errorf("cache hits = %d, want 5", d)
	}
}

// TestConcurrentPredicts hammers one model from many goroutines; with the
// serialized worker every request must succeed (the default queue is deep
// enough) and return the same answer. Run under -race this also proves the
// handlers never touch the Session concurrently.
func TestConcurrentPredicts(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	createTestModel(t, s, "m", 100, 9)

	query := PredictRequest{Points: []Point{{X: 0.37, Y: 0.61}}}
	var ref PredictResponse
	if code := do(t, s, "POST", "/models/m/predict", query, &ref); code != http.StatusOK {
		t.Fatalf("reference predict: status %d", code)
	}

	const workers, iters = 16, 6
	var wg sync.WaitGroup
	var ok, shed atomic.Int64
	errc := make(chan error, workers*iters)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				body, _ := json.Marshal(query)
				req := httptest.NewRequest("POST", "/models/m/predict", bytes.NewReader(body))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				switch rec.Code {
				case http.StatusOK:
					var resp PredictResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						errc <- err
						continue
					}
					if len(resp.Mean) != 1 || resp.Mean[0] != ref.Mean[0] {
						errc <- fmt.Errorf("mean %v, want %v", resp.Mean, ref.Mean)
					}
					ok.Add(1)
				case http.StatusServiceUnavailable:
					shed.Add(1) // legal under load, must not corrupt anything
				default:
					errc <- fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded")
	}
	t.Logf("%d ok, %d shed", ok.Load(), shed.Load())
}

func TestQueueShedsWhenFull(t *testing.T) {
	// White-box: a model whose worker never runs fills its queue immediately.
	m := &model{queue: make(chan *predictJob, 1), done: make(chan struct{})}
	if err := m.enqueue(&predictJob{}); err != nil {
		t.Fatal(err)
	}
	if err := m.enqueue(&predictJob{}); err != errQueueFull {
		t.Fatalf("second enqueue: %v, want errQueueFull", err)
	}
	go func() { // drain the pending job (no real session) so close() terminates
		defer close(m.done)
		for range m.queue {
		}
	}()
	m.close(false)
	if err := m.enqueue(&predictJob{}); err != errModelClosed {
		t.Fatalf("enqueue after close: %v, want errModelClosed", err)
	}
}

func TestDeleteModel(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	createTestModel(t, s, "m", 36, 10)

	if code := do(t, s, "DELETE", "/models/m", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if code := do(t, s, "DELETE", "/models/m", nil, nil); code != http.StatusNotFound {
		t.Errorf("double delete: status %d, want 404", code)
	}
	if code := do(t, s, "POST", "/models/m/predict", PredictRequest{Points: []Point{{X: 0.5, Y: 0.5}}}, nil); code != http.StatusNotFound {
		t.Errorf("predict after delete: status %d, want 404", code)
	}
	// The name is reusable after deletion.
	createTestModel(t, s, "m", 36, 11)
}

func TestListGetAndMetrics(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	createTestModel(t, s, "alpha", 36, 12)
	createTestModel(t, s, "beta", 36, 13)
	if code := do(t, s, "POST", "/models/alpha/predict", PredictRequest{Points: []Point{{X: 0.5, Y: 0.5}}}, nil); code != http.StatusOK {
		t.Fatalf("predict: status %d", code)
	}

	var list ListModelsResponse
	if code := do(t, s, "GET", "/models", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if len(list.Models) != 2 || list.Models[0].Name != "alpha" || list.Models[1].Name != "beta" {
		t.Fatalf("list = %+v", list.Models)
	}
	if list.Models[0].Predicts != 1 {
		t.Errorf("alpha served %d predicts, want 1", list.Models[0].Predicts)
	}

	var info ModelInfo
	if code := do(t, s, "GET", "/models/alpha", nil, &info); code != http.StatusOK || info.Name != "alpha" {
		t.Fatalf("get: status %d info %+v", code, info)
	}
	if code := do(t, s, "GET", "/models/ghost", nil, nil); code != http.StatusNotFound {
		t.Errorf("get unknown: status %d, want 404", code)
	}

	var metrics MetricsResponse
	if code := do(t, s, "GET", "/metrics", nil, &metrics); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if metrics.Endpoints["predict"].Count == 0 {
		t.Error("metrics missing predict endpoint latencies")
	}
	if metrics.Obs.Counters["core.predict.cache.hit"] == 0 {
		t.Error("metrics missing core cache-hit evidence counter")
	}
	if len(metrics.Models) != 2 {
		t.Errorf("metrics lists %d models, want 2", len(metrics.Models))
	}
}

func TestFitAtIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("fit is slow")
	}
	s := New(Config{})
	defer s.Close()
	pts, z := testDataset(t, 100, 14)
	req := CreateModelRequest{
		Name: "fitted", Points: pts, Z: z,
		Fit: &FitSpec{MaxEvals: 40, FixSmoothness: true, Start: &testTheta, Profiled: true},
	}
	var info ModelInfo
	if code := do(t, s, "POST", "/models", req, &info); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if !info.Fitted || info.FitEvals == 0 {
		t.Fatalf("fit info missing: %+v", info)
	}
	if info.Theta.Smoothness != testTheta.Smoothness {
		t.Errorf("smoothness should stay fixed: %g", info.Theta.Smoothness)
	}
	if info.Theta.Range < 0.005 || info.Theta.Range > 2 {
		t.Errorf("fitted range %g implausible", info.Theta.Range)
	}
	if code := do(t, s, "POST", "/models/fitted/predict", PredictRequest{Points: []Point{{X: 0.5, Y: 0.5}}}, nil); code != http.StatusOK {
		t.Errorf("predict on fitted model: status %d", code)
	}
}

func TestHealthz(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}
}

// TestReadyzDrainsBeforeClose: readiness is distinct from liveness. A fresh
// server is ready on both path forms; BeginShutdown flips readyz to 503
// while healthz keeps reporting the process alive (so orchestrators stop
// routing without restarting the instance); Close keeps it not-ready.
func TestReadyzDrainsBeforeClose(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	get := func(path string) (int, string) {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec.Code, rec.Body.String()
	}
	for _, path := range []string{"/readyz", "/v1/readyz"} {
		if code, body := get(path); code != http.StatusOK || !strings.Contains(body, "ready") {
			t.Fatalf("fresh server %s: %d %q", path, code, body)
		}
	}
	s.BeginShutdown()
	if s.Ready() {
		t.Fatal("Ready() must be false after BeginShutdown")
	}
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining readyz: %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("draining healthz must stay 200, got %d", code)
	}
	s.BeginShutdown() // idempotent
	s.Close()
	if code, _ := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("closed readyz: %d", code)
	}
}
