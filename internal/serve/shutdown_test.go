package serve

import (
	"errors"
	"net/http"
	"sync"
	"testing"

	"repro/internal/geom"
)

// Queued predict jobs at shutdown are shed with errShuttingDown, not
// executed: the worker answers each with a reply (no hang, no drop), and the
// enqueue path rejects late arrivals with the same error. The worker is
// started only after the queue is filled and the shed flag set, so the test
// is deterministic — no job can sneak through before shedding begins.
func TestShutdownShedsQueuedJobs(t *testing.T) {
	m := &model{
		queue: make(chan *predictJob, 8),
		done:  make(chan struct{}),
	}
	jobs := make([]*predictJob, 5)
	for i := range jobs {
		jobs[i] = &predictJob{
			points: []geom.Point{{X: 0.5, Y: 0.5}},
			reply:  make(chan predictResult, 1),
		}
		if err := m.enqueue(jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	go m.run()
	m.close(true) // blocks until the worker drains and exits

	for i, job := range jobs {
		res := <-job.reply
		if !errors.Is(res.err, errShuttingDown) {
			t.Fatalf("job %d: got %v, want errShuttingDown", i, res.err)
		}
	}
	if err := m.enqueue(&predictJob{reply: make(chan predictResult, 1)}); !errors.Is(err, errShuttingDown) {
		t.Fatalf("enqueue after shutdown: got %v, want errShuttingDown", err)
	}
}

// A model deleted by the API (not shutdown) still drains its queue with real
// replies, and enqueue-after-delete stays a 404-mapped errModelClosed.
func TestDeleteStillDrainsQueue(t *testing.T) {
	m := &model{
		queue: make(chan *predictJob, 2),
		done:  make(chan struct{}),
	}
	close(m.queue)
	m.qclosed = true
	go func() { close(m.done) }()
	<-m.done
	if err := m.enqueue(&predictJob{}); !errors.Is(err, errModelClosed) {
		t.Fatalf("enqueue after delete: got %v, want errModelClosed", err)
	}
}

// Full-stack shutdown under concurrency: predicts race Server.Close, and
// every request gets exactly one of 200 (ran before shutdown), 503 (shed or
// rejected), or 404 (model already removed). Ingests during shutdown are
// rejected with 503. Run with -race; the interesting property is the absence
// of hangs, panics, and replyless jobs.
func TestShutdownUnderConcurrentLoad(t *testing.T) {
	s := New(Config{MaxPoints: 200, MaxQueue: 4})
	createTestModel(t, s, "m", 36, 1)

	var wg sync.WaitGroup
	start := make(chan struct{})
	codes := make([]int, 16)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			req := PredictRequest{Points: []Point{{X: 0.5, Y: 0.5}}}
			codes[i] = do(t, s, "POST", "/models/m/predict", req, nil)
		}(i)
	}
	close(start)
	s.Close()
	wg.Wait()
	for i, code := range codes {
		switch code {
		case http.StatusOK, http.StatusServiceUnavailable, http.StatusNotFound:
		default:
			t.Fatalf("request %d: unexpected status %d", i, code)
		}
	}

	// New ingests after shutdown: 503.
	pts, z := testDataset(t, 36, 2)
	req := CreateModelRequest{Name: "late", Points: pts, Z: z, Theta: &testTheta}
	if code := do(t, s, "POST", "/models", req, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("create during shutdown: status %d, want 503", code)
	}
}
