package store

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// fakePayload is an in-memory payload with full spill support.
type fakePayload struct {
	data []byte // nil = dropped
	size int    // logical size, survives drops
}

func (p *fakePayload) slotFuncs() SlotFuncs {
	return SlotFuncs{
		Bytes: func() int64 {
			if p.data == nil {
				return 0
			}
			return int64(len(p.data))
		},
		Encode: func() []byte { return append([]byte(nil), p.data...) },
		Decode: func(b []byte) { p.data = append([]byte(nil), b...); p.size = len(b) },
		Drop:   func() { p.data = nil },
		Materialize: func() {
			p.data = make([]byte, p.size)
		},
	}
}

func newPayload(size int, fill byte) *fakePayload {
	p := &fakePayload{data: make([]byte, size), size: size}
	for i := range p.data {
		p.data[i] = fill
	}
	return p
}

func mustStore(t *testing.T, budget int64) *Store {
	t.Helper()
	st, err := NewTemp(t.TempDir(), budget)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestEvictAndReload(t *testing.T) {
	st := mustStore(t, 256)
	var pays []*fakePayload
	var slots []*Slot
	for i := 0; i < 4; i++ {
		p := newPayload(128, byte(i+1))
		pays = append(pays, p)
		slots = append(slots, st.Register(fmt.Sprintf("p%d", i), p.slotFuncs()))
	}
	// 512 resident > 256 budget: pin/unpin one slot to trigger eviction.
	st.Pin(slots[3], PinRead)
	st.Unpin(slots[3])
	if got := st.Resident(); got > 256 {
		t.Fatalf("resident %d exceeds budget after eviction", got)
	}
	// The LRU tail (p0: registered first, never pinned) must be evicted,
	// the just-used p3 must survive.
	if pays[0].data != nil {
		t.Fatal("LRU tail not evicted")
	}
	if pays[3].data == nil {
		t.Fatal("most recently used slot evicted")
	}
	// Reloading an evicted slot restores its bytes exactly.
	st.Pin(slots[0], PinRead)
	if len(pays[0].data) != 128 || pays[0].data[0] != 1 {
		t.Fatalf("reload corrupted payload: %v", pays[0].data[:4])
	}
	st.Unpin(slots[0])
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestPinnedSlotsNeverEvicted(t *testing.T) {
	st := mustStore(t, 100)
	p1 := newPayload(80, 1)
	p2 := newPayload(80, 2)
	s1 := st.Register("p1", p1.slotFuncs())
	s2 := st.Register("p2", p2.slotFuncs())
	st.Pin(s1, PinUpdate)
	st.Pin(s2, PinUpdate)
	// Both pinned: budget exceeded but nothing evictable — soft budget.
	if p1.data == nil || p2.data == nil {
		t.Fatal("pinned payload evicted")
	}
	if st.Resident() != 160 {
		t.Fatalf("resident accounting: %d", st.Resident())
	}
	st.Unpin(s1)
	st.Unpin(s2)
	if st.Resident() > 100 {
		t.Fatalf("budget not enforced after unpin: %d", st.Resident())
	}
}

func TestOverwritePinSkipsLoad(t *testing.T) {
	st := mustStore(t, 64)
	p := newPayload(128, 7)
	s := st.Register("p", p.slotFuncs())
	q := newPayload(128, 9)
	sq := st.Register("q", q.slotFuncs())
	st.Pin(sq, PinRead)
	st.Unpin(sq) // evicts p (LRU tail)
	if p.data != nil {
		t.Fatal("p should be evicted")
	}
	spilled := st.SpillSize()
	// Overwrite pin materializes an empty payload without touching disk.
	st.Pin(s, PinOverwrite)
	if p.data == nil || len(p.data) != 128 {
		t.Fatal("overwrite pin did not materialize")
	}
	if p.data[0] != 0 {
		t.Fatal("overwrite pin loaded old contents")
	}
	for i := range p.data {
		p.data[i] = 42
	}
	st.Unpin(s)
	// The dirty overwrite must be re-spilled on its next eviction.
	st.Pin(sq, PinRead)
	st.Unpin(sq)
	if p.data != nil {
		// p evicted again
		st.Pin(s, PinRead)
		if p.data[0] != 42 {
			t.Fatal("dirty payload lost on re-eviction")
		}
		st.Unpin(s)
	}
	if st.SpillSize() < spilled {
		t.Fatal("spill file shrank")
	}
}

func TestCleanEvictionSkipsRewrite(t *testing.T) {
	// One slot larger than the whole budget: it evicts on every unpin, so
	// the spill-write behavior is isolated in the counter deltas.
	st := mustStore(t, 64)
	p := newPayload(128, 3)
	s := st.Register("p", p.slotFuncs())
	before := cntSpillBytes.Value()
	st.Pin(s, PinRead)
	st.Unpin(s) // first eviction: no spilled copy yet, writes 128 bytes
	if p.data != nil {
		t.Fatal("oversized slot must evict on unpin")
	}
	if delta := cntSpillBytes.Value() - before; delta != 128 {
		t.Fatalf("first eviction wrote %d bytes, want 128", delta)
	}
	// Read-only reload + evict: the spilled copy is current, no rewrite.
	st.Pin(s, PinRead)
	if p.data == nil || p.data[0] != 3 {
		t.Fatal("reload corrupted payload")
	}
	st.Unpin(s)
	if delta := cntSpillBytes.Value() - before; delta != 128 {
		t.Fatalf("clean eviction rewrote bytes: total %d, want 128", delta)
	}
	// An update pin marks dirty: the next eviction rewrites.
	st.Pin(s, PinUpdate)
	st.Unpin(s)
	if delta := cntSpillBytes.Value() - before; delta != 256 {
		t.Fatalf("dirty eviction wrote %d total bytes, want 256", delta)
	}
}

func TestFootprintRefreshOnUnpin(t *testing.T) {
	st := mustStore(t, 1<<20)
	p := newPayload(64, 1)
	s := st.Register("p", p.slotFuncs())
	st.Pin(s, PinUpdate)
	// Task grows the payload in place (a tile's rank grew).
	p.data = make([]byte, 256)
	p.size = 256
	st.Unpin(s)
	if st.Resident() != 256 {
		t.Fatalf("resident not refreshed: %d", st.Resident())
	}
	if st.HighWater() < 256 {
		t.Fatalf("high water not tracked: %d", st.HighWater())
	}
}

func TestConcurrentPinUnpin(t *testing.T) {
	st := mustStore(t, 512)
	const nSlots = 16
	pays := make([]*fakePayload, nSlots)
	slots := make([]*Slot, nSlots)
	for i := range slots {
		pays[i] = newPayload(64, byte(i+1))
		// stamp a recognizable pattern
		w := pays[i].data
		binary.LittleEndian.PutUint64(w, uint64(i)*0x0101010101010101)
		slots[i] = st.Register(fmt.Sprintf("s%d", i), pays[i].slotFuncs())
	}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 200; it++ {
				i := (g*31 + it*7) % nSlots
				st.Pin(slots[i], PinRead)
				if got := binary.LittleEndian.Uint64(pays[i].data); got != uint64(i)*0x0101010101010101 {
					errs <- fmt.Sprintf("slot %d corrupted: %x", i, got)
				}
				st.Unpin(slots[i])
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestUnbalancedUnpinPanics(t *testing.T) {
	st := mustStore(t, 0)
	p := newPayload(8, 1)
	s := st.Register("p", p.slotFuncs())
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced unpin must panic")
		}
	}()
	st.Unpin(s)
}
