// Package store implements the memory-bounded out-of-core tile store: a
// refcount-pinned LRU cache over opaque payload slots, spilling evicted
// payloads to a dataio.BlobFile and reloading them on demand.
//
// The store does not own payloads — callers register a Slot per logical
// payload (one per TLR tile) with closures that measure, serialize,
// deserialize, drop and materialize it in place. The executor pins every
// handle a task touches for the duration of the task (see
// runtime.Handle.PinFn), the solve paths pin tiles around each access, and
// the store keeps the sum of resident payload bytes at or under Budget by
// evicting unpinned slots in least-recently-used order.
//
// The budget is soft: a pin never blocks and never fails, so the true peak
// is Budget plus the working set of the tasks in flight (a handful of
// tiles per worker). Spill I/O errors never panic mid-task — the slot
// stays resident (exceeding the budget) or is materialized empty, and the
// first error is reported by Err for the caller to surface after the graph
// run.
package store

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/dataio"
	"repro/internal/obs"
)

// Eviction counters: hit = pin of a resident payload, miss = pin that had
// to load (or materialize) a non-resident one, evict = payloads dropped to
// honor the budget, spill.bytes = total bytes written to the spill file.
var (
	cntHit        = obs.GetCounter("tlr.store.hit")
	cntMiss       = obs.GetCounter("tlr.store.miss")
	cntEvict      = obs.GetCounter("tlr.store.evict")
	cntSpillBytes = obs.GetCounter("tlr.store.spill.bytes")
)

// PinMode tells the store what the pinner will do to the payload, which
// decides both whether spilled bytes must be loaded and whether the slot
// must be re-spilled on its next eviction.
type PinMode int

const (
	// PinRead: payload is only read. Loads on miss; a clean slot whose
	// spilled bytes are current can later evict without rewriting them.
	PinRead PinMode = iota
	// PinUpdate: payload is read and may be mutated. Loads on miss and
	// marks the slot dirty.
	PinUpdate
	// PinOverwrite: payload is fully rewritten without reading the old
	// contents. On miss the store materializes an empty payload instead of
	// reading spilled bytes back from disk; marks the slot dirty.
	PinOverwrite
)

// SlotFuncs are the payload callbacks a slot is registered with. All five
// are invoked with the store lock held, serialized against every other
// slot operation; they must touch only their own payload.
type SlotFuncs struct {
	// Bytes measures the current resident footprint of the payload.
	Bytes func() int64
	// Encode serializes the payload for spilling.
	Encode func() []byte
	// Decode rebuilds the payload in place from spilled bytes.
	Decode func([]byte)
	// Drop releases the payload's memory, leaving enough stub metadata
	// behind for size/rank accounting while non-resident.
	Drop func()
	// Materialize allocates an empty payload in place (an overwrite pin of
	// a non-resident slot; contents are about to be fully rewritten).
	Materialize func()
}

// Slot is one registered payload. The zero value is invalid; use
// Store.Register.
type Slot struct {
	name     string
	fns      SlotFuncs
	elem     *list.Element
	pins     int
	bytes    int64
	resident bool
	dirty    bool
	region   dataio.Region
}

// Store is the memory-bounded payload cache. All methods are safe for
// concurrent use.
type Store struct {
	mu        sync.Mutex
	budget    int64
	blob      *dataio.BlobFile
	ownBlob   bool
	lru       *list.List // front = most recently used
	slots     []*Slot
	resident  int64
	highWater int64
	err       error
}

// New builds a store with the given soft budget (bytes) over an existing
// blob file. The caller keeps ownership of blob.
func New(blob *dataio.BlobFile, budget int64) *Store {
	return &Store{budget: budget, blob: blob, lru: list.New()}
}

// NewTemp builds a store over a fresh anonymous spill file in dir (or the
// default temp dir when dir is ""). Close releases the file; because it is
// unlinked at creation, a crashed process cannot leak it either.
func NewTemp(dir string, budget int64) (*Store, error) {
	blob, err := dataio.NewBlobFile(dir)
	if err != nil {
		return nil, err
	}
	s := New(blob, budget)
	s.ownBlob = true
	return s, nil
}

// Register adds a slot for one payload, initially resident with its
// current footprint.
func (st *Store) Register(name string, fns SlotFuncs) *Slot {
	s := &Slot{name: name, fns: fns, resident: true, bytes: fns.Bytes()}
	st.mu.Lock()
	s.elem = st.lru.PushFront(s)
	st.slots = append(st.slots, s)
	st.resident += s.bytes
	if st.resident > st.highWater {
		st.highWater = st.resident
	}
	st.mu.Unlock()
	return s
}

// Pin makes the slot's payload resident and protects it from eviction
// until the matching Unpin. Pins nest: concurrent readers of one tile each
// pin it. Pin never fails; a spill-read error leaves an empty payload and
// is reported by Err.
func (st *Store) Pin(s *Slot, mode PinMode) {
	st.mu.Lock()
	defer st.mu.Unlock()
	s.pins++
	if mode != PinRead {
		s.dirty = true
	}
	if s.resident {
		cntHit.Inc()
	} else {
		cntMiss.Inc()
		if mode != PinOverwrite && s.region.Valid() {
			buf, err := st.blob.Get(s.region)
			if err != nil {
				st.fail(fmt.Errorf("store: load %s: %w", s.name, err))
				s.fns.Materialize()
			} else {
				s.fns.Decode(buf)
			}
		} else {
			// Overwrite pin, or a slot evicted before ever holding data.
			s.fns.Materialize()
		}
		s.resident = true
		st.addBytes(s, s.fns.Bytes())
	}
	st.lru.MoveToFront(s.elem)
	st.evictLocked()
}

// Unpin releases one pin, refreshes the slot's footprint (tasks change
// tile ranks in place) and enforces the budget.
func (st *Store) Unpin(s *Slot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if s.pins <= 0 {
		panic(fmt.Sprintf("store: unbalanced unpin of %s", s.name))
	}
	s.pins--
	st.addBytes(s, s.fns.Bytes())
	st.evictLocked()
}

// addBytes updates the slot's accounted footprint to nb.
func (st *Store) addBytes(s *Slot, nb int64) {
	st.resident += nb - s.bytes
	s.bytes = nb
	if st.resident > st.highWater {
		st.highWater = st.resident
	}
}

// evictLocked spills unpinned slots from the LRU tail until the resident
// set fits the budget (or nothing evictable remains — the budget is soft).
func (st *Store) evictLocked() {
	if st.budget <= 0 {
		return
	}
	for st.resident > st.budget {
		var victim *Slot
		for e := st.lru.Back(); e != nil; e = e.Prev() {
			s := e.Value.(*Slot)
			if s.pins == 0 && s.resident && s.bytes > 0 {
				victim = s
				break
			}
		}
		if victim == nil || !st.spillLocked(victim) {
			return
		}
	}
}

// spillLocked writes the slot's payload to the blob file (skipped when the
// spilled copy is already current) and drops it from memory. Returns false
// on a write error, leaving the slot resident.
func (st *Store) spillLocked(s *Slot) bool {
	if s.dirty || !s.region.Valid() {
		buf := s.fns.Encode()
		r, err := st.blob.Put(buf, s.region)
		if err != nil {
			st.fail(fmt.Errorf("store: spill %s: %w", s.name, err))
			return false
		}
		s.region = r
		s.dirty = false
		cntSpillBytes.Add(int64(len(buf)))
	}
	s.fns.Drop()
	s.resident = false
	st.resident -= s.bytes
	s.bytes = 0 // re-pin re-adds the full footprint via addBytes
	cntEvict.Inc()
	return true
}

// fail records the first spill I/O error.
func (st *Store) fail(err error) {
	if st.err == nil {
		st.err = err
	}
}

// Err returns the first spill I/O error, if any. Callers check it after a
// graph run: a load error means payload contents were replaced by zeros
// and the computation must be discarded.
func (st *Store) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// Resident returns the currently accounted resident bytes.
func (st *Store) Resident() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.resident
}

// HighWater returns the maximum resident bytes ever accounted — the
// store's contribution to peak RSS, compared against Budget in the
// out-of-core benchmark.
func (st *Store) HighWater() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.highWater
}

// Budget returns the configured soft budget in bytes.
func (st *Store) Budget() int64 { return st.budget }

// SpillSize returns the current size of the spill file in bytes.
func (st *Store) SpillSize() int64 { return st.blob.Size() }

// Close releases the spill file if the store owns it.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.ownBlob || st.blob == nil {
		return nil
	}
	err := st.blob.Close()
	st.blob = nil
	return err
}
