package tlr

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/geom"
	"repro/internal/runtime"
	"repro/internal/tlr/store"
)

// oocFactor builds and factors Σ(θ) under the given memory budget,
// returning the matrix and its store. Budget 0 means unbounded (but still
// routed through the store, exercising the hooks).
func oocFactor(t *testing.T, n, nb int, budget int64, workers int, inject func(int, int, int), retry runtime.RetryPolicy) (*Matrix, *store.Store) {
	t.Helper()
	k, pts := genTestSetup(t, n)
	m := NewMatrix(n, nb, 1e-7)
	spec := &GenSpec{K: k, Pts: pts, Metric: geom.Euclidean, Nugget: 1e-9, Comp: SVDCompressor{}}
	gg := NewGenCholeskyGraph(m, spec, true)
	st, err := store.NewTemp(t.TempDir(), budget)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	AttachOOC(gg, m, st)
	if err := gg.G.Execute(runtime.ExecOptions{Workers: workers, Inject: inject, Retry: retry}); err != nil {
		t.Fatal(err)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
	return m, st
}

// refFactor is the plain in-memory reference factorization.
func refFactor(t *testing.T, n, nb int) *Matrix {
	t.Helper()
	k, pts := genTestSetup(t, n)
	m := NewMatrix(n, nb, 1e-7)
	spec := &GenSpec{K: k, Pts: pts, Metric: geom.Euclidean, Nugget: 1e-9, Comp: SVDCompressor{}}
	if err := GenCholesky(m, spec, 1); err != nil {
		t.Fatal(err)
	}
	return m
}

// assertFactorsMatch compares logdet and a full solve bitwise. Comparing
// through the solve (rather than tile by tile) also exercises the pinned
// solve paths against spilled tiles.
func assertFactorsMatch(t *testing.T, label string, got, want *Matrix) {
	t.Helper()
	if ld, ldRef := got.LogDet(), want.LogDet(); ld != ldRef {
		t.Fatalf("%s: logdet %v != reference %v", label, ld, ldRef)
	}
	rhs := make([]float64, want.N)
	for i := range rhs {
		rhs[i] = float64(i%17) - 8
	}
	x := append([]float64(nil), rhs...)
	xRef := append([]float64(nil), rhs...)
	got.Solve(x)
	want.Solve(xRef)
	for i := range x {
		if x[i] != xRef[i] {
			t.Fatalf("%s: solve differs at %d: %v != %v", label, i, x[i], xRef[i])
		}
	}
}

// A budget a fraction of the matrix forces evictions mid-factorization;
// the result must match the in-memory factorization bitwise, and the
// resident high-water must stay near the budget (soft overshoot is bounded
// by the in-flight working set).
func TestOOCCholeskyBitwiseUnderBudget(t *testing.T) {
	const n, nb = 400, 50
	ref := refFactor(t, n, nb)
	full := ref.Bytes()
	budget := full / 4
	m, st := oocFactor(t, n, nb, budget, 1, nil, runtime.RetryPolicy{})
	if st.HighWater() > budget+MinMemBudget(nb, 1) {
		t.Fatalf("high water %d exceeds budget %d plus working set %d",
			st.HighWater(), budget, MinMemBudget(nb, 1))
	}
	if st.SpillSize() == 0 {
		t.Fatal("no bytes ever spilled: budget had no effect")
	}
	assertFactorsMatch(t, "budget=quarter", m, ref)
	// Rank statistics must be readable while tiles are spilled.
	maxR, meanR := m.RankStats()
	maxRef, meanRef := ref.RankStats()
	if maxR != maxRef || meanR != meanRef {
		t.Fatalf("rank stats differ: (%d,%v) vs (%d,%v)", maxR, meanR, maxRef, meanRef)
	}
	if m.Bytes() != ref.Bytes() {
		t.Fatalf("logical bytes differ: %d vs %d", m.Bytes(), ref.Bytes())
	}
}

func TestOOCWorkerInvariance(t *testing.T) {
	const n, nb = 300, 50
	ref := refFactor(t, n, nb)
	for _, workers := range []int{1, 2, 4} {
		m, _ := oocFactor(t, n, nb, ref.Bytes()/3, workers, nil, runtime.RetryPolicy{})
		assertFactorsMatch(t, "workers", m, ref)
	}
}

// Eviction under retry: chaos-injected task panics force replays while the
// budget forces evictions, so a replayed task's ReadWrite tiles may have
// been spilled and reloaded between attempts. The executor pins before
// snapshotting, so eviction restore and retry restore compose; the result
// must stay bitwise-identical to the clean in-memory run at every worker
// count.
func TestOOCEvictionUnderRetry(t *testing.T) {
	const n, nb = 300, 50
	ref := refFactor(t, n, nb)
	retry := runtime.RetryPolicy{Attempts: 4, Retryable: func(err error) bool {
		return strings.Contains(err.Error(), "chaos")
	}}
	for _, workers := range []int{1, 2, 4} {
		for _, seed := range []uint64{1, 99} {
			inj := chaos.NewInjector(&chaos.FaultPlan{Seed: seed, TaskPanics: 5})
			m, st := oocFactor(t, n, nb, ref.Bytes()/4, workers, inj.TaskHook, retry)
			if inj.Stats().TaskPanics == 0 {
				t.Fatalf("seed %d: no faults injected", seed)
			}
			if st.SpillSize() == 0 {
				t.Fatalf("seed %d: nothing spilled", seed)
			}
			assertFactorsMatch(t, "chaos", m, ref)
		}
	}
}

// A second execution of the same bound graph (the optimizer-iteration
// reuse path) must regenerate and refactor correctly with tiles still
// spilled from the first run.
func TestOOCGraphReuse(t *testing.T) {
	const n, nb = 300, 50
	k, pts := genTestSetup(t, n)
	ref := refFactor(t, n, nb)
	m := NewMatrix(n, nb, 1e-7)
	spec := &GenSpec{K: k, Pts: pts, Metric: geom.Euclidean, Nugget: 1e-9, Comp: SVDCompressor{}}
	gg := NewGenCholeskyGraph(m, spec, true)
	st, err := store.NewTemp(t.TempDir(), ref.Bytes()/4)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	AttachOOC(gg, m, st)
	for pass := 0; pass < 2; pass++ {
		if err := gg.G.Execute(runtime.ExecOptions{Workers: 2}); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if err := st.Err(); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		assertFactorsMatch(t, "reuse", m, ref)
	}
}
