// Covariance generation + compression as runtime tasks: the HiCMA analogue
// of the ExaGeoStat "dcmg" codelets. Each diagonal tile gets one generation
// task and each off-diagonal tile one fused generate+compress task, all
// writing the tile's data handle. Inserted ahead of the POTRF/TRSM/SYRK/GEMM
// sweep they form one DAG, so compression of tile (i, j) overlaps
// factorization of earlier panels exactly as HiCMA's StarPU tasks do.
package tlr

import (
	"sync"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/tile"
)

// Compression metrics: histCompRank is the distribution of accepted tile
// ranks — the quantity the paper's accuracy/memory trade-off figures plot.
// Read it as obs.Default().Snapshot().Histograms["tlr.compress.rank"]; its
// Max is the largest rank any tile needed at the session's tolerance.
var (
	cntDcmgTLR   = obs.GetCounter("tlr.dcmg.calls")
	cntCompress  = obs.GetCounter("tlr.compress.calls")
	histCompRank = obs.GetHistogram("tlr.compress.rank")
)

// GenSpec carries the inputs of TLR covariance generation. The task closures
// read the fields when they RUN, not when the graph is built: callers that
// cache the fused task graph across optimizer iterations (core's evaluator)
// swap in a new Kernel and Nugget between executions and re-run the same
// graph — only ranks and tile contents are rebuilt per θ. Pts, Metric and
// Comp must stay fixed for the graph's lifetime.
type GenSpec struct {
	K      *cov.Kernel
	Pts    []geom.Point
	Metric geom.Metric
	Nugget float64
	// Comp compresses the off-diagonal tiles. Stochastic backends
	// implementing TileCompressor are re-seeded per tile, making the result
	// bitwise-identical at any worker count.
	Comp Compressor

	// ForceMiss, when non-nil, forces tile (i, j) of the mt×mt tiling to
	// miss the compression tolerance and store densely (DE) — the chaos hook
	// exercising the fallback path. Must be a pure function of its arguments
	// so concurrent tasks reach identical verdicts.
	ForceMiss func(mt, i, j int) bool

	// scratch pools the NB×NB dense buffers the generate+compress tasks
	// materialize tiles into before compression, so repeated graph
	// executions allocate no per-tile scratch.
	scratch sync.Pool
}

// getScratch returns a pooled nb×nb dense buffer.
func (s *GenSpec) getScratch(nb int) *la.Mat {
	if v := s.scratch.Get(); v != nil {
		return v.(*la.Mat)
	}
	return la.NewMat(nb, nb)
}

// flopsCompress estimates the cost of compressing a di×dj tile — the
// dominant O(di·dj·min) orthogonalization shared by every backend — for task
// priorities and the simulated executors.
func flopsCompress(di, dj int) float64 {
	mn := di
	if dj < mn {
		mn = dj
	}
	return 2 * float64(di) * float64(dj) * float64(mn)
}

// AddGenTasks inserts the per-tile generation tasks of m, each writing its
// tile handle: plain dense generation for diagonal tiles, fused
// generate+compress for off-diagonal tiles. Tiles in low column blocks get
// higher priority (the factorization consumes left panels first). Tasks
// allocate diagonal tiles lazily and replace compressed tiles wholesale, so
// re-executing the graph on a reused shell rebuilds contents and ranks while
// keeping the shell and handle layout; each off-diagonal task refreshes its
// handle's byte count with the new rank's footprint.
func AddGenTasks(g *runtime.Graph, m *Matrix, spec *GenSpec, dh []*runtime.Handle, oh [][]*runtime.Handle, bind bool) {
	mt := m.MT
	for i := 0; i < mt; i++ {
		i := i
		var runD func()
		if bind {
			runD = func() {
				cntDcmgTLR.Inc()
				di := m.TileDim(i)
				d := m.diag[i]
				if d == nil {
					d = la.NewMat(di, di)
					m.diag[i] = d
				}
				ri := spec.Pts[i*m.NB : i*m.NB+di]
				spec.K.Block(d, ri, ri, spec.Metric)
				if spec.Nugget != 0 {
					for a := 0; a < di; a++ {
						d.Set(a, a, d.At(a, a)+spec.Nugget)
					}
				}
			}
		}
		g.AddTask(runtime.Task{
			Name:     "dcmg",
			Flops:    tile.FlopsDCMG(m.TileDim(i), m.TileDim(i)),
			Priority: 4 * (mt - i),
			Run:      runD,
			Accesses: []runtime.Access{{Handle: dh[i], Mode: runtime.Write}},
		})
		for j := 0; j < i; j++ {
			j := j
			var run func()
			if bind {
				run = func() {
					di, dj := m.TileDim(i), m.TileDim(j)
					buf := spec.getScratch(m.NB)
					dense := buf.View(0, 0, di, dj)
					ri := spec.Pts[i*m.NB : i*m.NB+di]
					rj := spec.Pts[j*m.NB : j*m.NB+dj]
					spec.K.Block(dense, ri, rj, spec.Metric)
					t := forTile(spec.Comp, i, j).Compress(dense, m.Tol)
					cntCompress.Inc()
					histCompRank.Observe(int64(t.Rank()))
					if (m.MaxRank > 0 && t.Rank() > m.MaxRank) ||
						(spec.ForceMiss != nil && spec.ForceMiss(m.MT, i, j)) {
						// dense is a view into buf — copy before the buffer
						// returns to the pool
						t = NewDenseTile(dense.Clone())
						cntDenseTile.Inc()
					}
					spec.scratch.Put(buf)
					m.off[i][j] = t
					oh[i][j].SetBytes(t.Bytes())
				}
			}
			g.AddTask(runtime.Task{
				Name:     "dcmg+comp",
				Flops:    tile.FlopsDCMG(m.TileDim(i), m.TileDim(j)) + flopsCompress(m.TileDim(i), m.TileDim(j)),
				Priority: 4 * (mt - j),
				Run:      run,
				Accesses: []runtime.Access{{Handle: oh[i][j], Mode: runtime.Write}},
			})
		}
	}
}

// BuildGenCholeskyGraph builds the combined generate+compress +
// factorization DAG: generation tasks write every tile, POTRF/TRSM/SYRK/GEMM
// tasks consume them. The graph is re-executable: running it again
// regenerates and recompresses the matrix from the (possibly updated) spec
// and refactors it, which is what core's likelihood evaluator does once per
// optimizer iteration.
func BuildGenCholeskyGraph(m *Matrix, spec *GenSpec, bind bool) *runtime.Graph {
	g := runtime.NewGraph()
	dh, oh := newTileHandles(g, m)
	AddGenTasks(g, m, spec, dh, oh, bind)
	addCholeskyTasks(g, m, dh, oh, bind)
	return g
}

// GenCholesky generates and compresses Σ(θ) into m and factors it in place
// in a single task-graph execution, overlapping compression with
// factorization. It returns la.ErrNotPositiveDefinite (wrapped) if a pivot
// fails.
func GenCholesky(m *Matrix, spec *GenSpec, workers int) error {
	g := BuildGenCholeskyGraph(m, spec, true)
	return g.Execute(runtime.ExecOptions{Workers: workers})
}
