package tlr

import (
	"errors"
	"math"

	"repro/internal/la"
)

// RefineResult reports a preconditioned iterative solve.
type RefineResult struct {
	Iterations int
	// RelResidual is ‖b − A·x‖/‖b‖ at exit.
	RelResidual float64
	Converged   bool
}

// ErrNoConvergence is returned when PCG exhausts its iteration budget.
var ErrNoConvergence = errors.New("tlr: iterative refinement did not converge")

// RefineSolve solves A·x = b to relative residual tol using preconditioned
// conjugate gradients, with a (possibly loose-accuracy) TLR Cholesky
// factorization of A as the preconditioner and matvec applying the exact
// operator (y ← A·x).
//
// This is the classical accuracy-recovery pattern for compressed
// factorizations: factor cheaply at 1e-2…1e-4, then recover machine-precision
// solves in a handful of Krylov iterations — each iteration costing one exact
// matvec plus one compressed triangular solve.
//
// The preconditioner must already be factored (Cholesky called on it). b is
// not modified; the solution is returned in a fresh slice.
func RefineSolve(precond *Matrix, matvec func(x, y []float64), b []float64, tol float64, maxIter int) ([]float64, RefineResult, error) {
	n := len(b)
	if precond.N != n {
		return nil, RefineResult{}, errors.New("tlr: preconditioner dimension mismatch")
	}
	if maxIter <= 0 {
		maxIter = 50
	}
	if tol <= 0 {
		tol = 1e-12
	}
	bNorm := la.Nrm2(b)
	if bNorm == 0 {
		return make([]float64, n), RefineResult{Converged: true}, nil
	}

	x := make([]float64, n)
	r := append([]float64(nil), b...) // r = b − A·0
	z := make([]float64, n)
	pv := make([]float64, n)
	ap := make([]float64, n)

	applyM := func(src, dst []float64) {
		copy(dst, src)
		precond.Solve(dst)
	}

	applyM(r, z)
	copy(pv, z)
	rz := la.Dot(r, z)

	res := RefineResult{}
	for it := 0; it < maxIter; it++ {
		for i := range ap {
			ap[i] = 0
		}
		matvec(pv, ap)
		pap := la.Dot(pv, ap)
		if pap <= 0 || math.IsNaN(pap) {
			// loss of positive definiteness in finite precision: bail out
			// with the current iterate
			res.Iterations = it
			res.RelResidual = la.Nrm2(r) / bNorm
			return x, res, ErrNoConvergence
		}
		alpha := rz / pap
		la.Axpy(alpha, pv, x)
		la.Axpy(-alpha, ap, r)
		res.Iterations = it + 1
		res.RelResidual = la.Nrm2(r) / bNorm
		if res.RelResidual <= tol {
			res.Converged = true
			return x, res, nil
		}
		applyM(r, z)
		rzNew := la.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range pv {
			pv[i] = z[i] + beta*pv[i]
		}
	}
	return x, res, ErrNoConvergence
}
