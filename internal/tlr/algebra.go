package tlr

import (
	"repro/internal/la"
)

// AddLowRank performs C ← recompress(C + alpha·X·Yᵀ, tol), the workhorse of
// TLR GEMM. X and Y must have the same number of columns (the update rank).
// The recompression is the QR+SVD scheme: stack the factors, orthogonalize,
// and truncate the small core back to the accuracy threshold.
func AddLowRank(c *CompTile, alpha float64, x, y *la.Mat, tol float64) *CompTile {
	if x.Cols != y.Cols {
		panic("tlr: AddLowRank rank mismatch between X and Y")
	}
	kc, kx := c.Rank(), x.Cols
	m, n := c.Rows(), c.Cols()
	if x.Rows != m || y.Rows != n {
		panic("tlr: AddLowRank dimension mismatch")
	}
	if kx == 0 {
		return c // rank-0 update: C is unchanged
	}
	u := la.NewMat(m, kc+kx)
	v := la.NewMat(n, kc+kx)
	for i := 0; i < m; i++ {
		copy(u.Row(i)[:kc], c.U.Row(i))
		xr := x.Row(i)
		for j := 0; j < kx; j++ {
			u.Row(i)[kc+j] = alpha * xr[j]
		}
	}
	for i := 0; i < n; i++ {
		copy(v.Row(i)[:kc], c.V.Row(i))
		copy(v.Row(i)[kc:], y.Row(i))
	}
	return Recompress(&CompTile{U: u, V: v}, tol)
}

// GemmLL computes C ← recompress(C − A·Bᵀ, tol) where A, B, C are all
// compressed tiles (the TLR Schur-complement update of the Cholesky
// trailing submatrix: C_ij −= A_ik·A_jkᵀ).
//
// The product of two low-rank tiles is itself low-rank:
// (Ua·Vaᵀ)(Ub·Vbᵀ)ᵀ = Ua·(Vaᵀ·Vb)·Ubᵀ, with rank min(ka, kb).
func GemmLL(c, a, b *CompTile, tol float64) *CompTile {
	ka, kb := a.Rank(), b.Rank()
	// W = Vaᵀ·Vb  (ka×kb) — both share the contraction dimension.
	if a.V.Rows != b.V.Rows {
		panic("tlr: GemmLL contraction dimension mismatch")
	}
	if ka == 0 || kb == 0 {
		return c // a zero operand contributes nothing
	}
	w := la.NewMat(ka, kb)
	la.Gemm(1, a.V, la.Transpose, b.V, la.NoTrans, 0, w)
	var x, y *la.Mat
	if ka <= kb {
		// X = Ua, Y = Ub·Wᵀ (rank ka)
		x = a.U
		y = la.NewMat(b.U.Rows, ka)
		la.Gemm(1, b.U, la.NoTrans, w, la.Transpose, 0, y)
	} else {
		// X = Ua·W (rank kb), Y = Ub
		x = la.NewMat(a.U.Rows, kb)
		la.Gemm(1, a.U, la.NoTrans, w, la.NoTrans, 0, x)
		y = b.U
	}
	return AddLowRank(c, -1, x, y, tol)
}

// SyrkLD updates a dense diagonal tile from a compressed panel tile:
// C ← C − A·Aᵀ = C − Ua·(Vaᵀ·Va)·Uaᵀ. Only the lower triangle of C is
// meaningful afterwards (matching la.Syrk semantics the dense path uses).
func SyrkLD(c *la.Mat, a *CompTile) {
	k := a.Rank()
	if k == 0 {
		return
	}
	w := la.NewMat(k, k)
	la.Gemm(1, a.V, la.Transpose, a.V, la.NoTrans, 0, w)
	t := la.NewMat(a.U.Rows, k)
	la.Gemm(1, a.U, la.NoTrans, w, la.NoTrans, 0, t)
	// C -= T·Uaᵀ; use full gemm then rely on lower-triangle readers.
	la.Gemm(-1, t, la.NoTrans, a.U, la.Transpose, 1, c)
}

// TrsmLD applies the panel triangular solve to a compressed tile:
// A_ik ← A_ik · L_kk^{-T}. Since A = U·Vᵀ, only V changes:
// U·Vᵀ·L^{-T} = U·(L^{-1}·V)ᵀ, i.e. V ← L^{-1}·V.
func TrsmLD(l *la.Mat, a *CompTile) {
	if a.Rank() == 0 {
		return
	}
	la.Trsm(la.Left, la.Lower, la.NoTrans, 1, l, a.V)
}

// MatVec computes y += alpha · (U·Vᵀ) · x for a compressed tile.
func MatVec(a *CompTile, alpha float64, x, y []float64) {
	k := a.Rank()
	if k == 0 {
		return
	}
	tmp := make([]float64, k)
	la.Gemv(1, a.V, la.Transpose, x, 0, tmp)
	la.Gemv(alpha, a.U, la.NoTrans, tmp, 1, y)
}

// MatVecT computes y += alpha · (U·Vᵀ)ᵀ · x = alpha · V·(Uᵀx).
func MatVecT(a *CompTile, alpha float64, x, y []float64) {
	k := a.Rank()
	if k == 0 {
		return
	}
	tmp := make([]float64, k)
	la.Gemv(1, a.U, la.Transpose, x, 0, tmp)
	la.Gemv(alpha, a.V, la.NoTrans, tmp, 1, y)
}
