package tlr

import (
	"repro/internal/la"
	"repro/internal/obs"
)

// cntDenseTile counts DE fallbacks: compressed tiles that exceeded their
// rank budget during an update and were converted to exact dense storage.
var cntDenseTile = obs.GetCounter("tlr.detile.fallback")

// AddLowRank performs C ← recompress(C + alpha·X·Yᵀ, tol), the workhorse of
// TLR GEMM. X and Y must have the same number of columns (the update rank).
// The recompression is the QR+SVD scheme: stack the factors, orthogonalize,
// and truncate the small core back to the accuracy threshold.
//
// A dense C absorbs the update exactly in place. A compressed result whose
// recompressed rank still exceeds maxRank (> 0) falls back to a dense (DE)
// tile built exactly from the stacked factors — graceful degradation instead
// of unbounded rank growth.
func AddLowRank(c *CompTile, alpha float64, x, y *la.Mat, tol float64, maxRank int) *CompTile {
	if x.Cols != y.Cols {
		panic("tlr: AddLowRank rank mismatch between X and Y")
	}
	m, n := c.Rows(), c.Cols()
	if x.Rows != m || y.Rows != n {
		panic("tlr: AddLowRank dimension mismatch")
	}
	kx := x.Cols
	if kx == 0 {
		return c // rank-0 update: C is unchanged
	}
	if c.IsDense() {
		la.Gemm(alpha, x, la.NoTrans, y, la.Transpose, 1, c.D)
		return c
	}
	kc := c.Rank()
	u := la.NewMat(m, kc+kx)
	v := la.NewMat(n, kc+kx)
	for i := 0; i < m; i++ {
		copy(u.Row(i)[:kc], c.U.Row(i))
		xr := x.Row(i)
		for j := 0; j < kx; j++ {
			u.Row(i)[kc+j] = alpha * xr[j]
		}
	}
	for i := 0; i < n; i++ {
		copy(v.Row(i)[:kc], c.V.Row(i))
		copy(v.Row(i)[kc:], y.Row(i))
	}
	out := Recompress(&CompTile{U: u, V: v}, tol)
	if maxRank > 0 && out.Rank() > maxRank {
		// Exact reconstruction from the untruncated stacked factors, not
		// from the recompressed tile — the fallback loses nothing.
		d := la.NewMat(m, n)
		la.Gemm(1, u, la.NoTrans, v, la.Transpose, 0, d)
		cntDenseTile.Inc()
		return NewDenseTile(d)
	}
	return out
}

// gemmIntoDense applies C.D ← C.D − A·Bᵀ for a dense accumulator and any mix
// of dense/compressed operands.
func gemmIntoDense(cd *la.Mat, a, b *CompTile) {
	switch {
	case a.IsDense() && b.IsDense():
		la.Gemm(-1, a.D, la.NoTrans, b.D, la.Transpose, 1, cd)
	case a.IsDense():
		// A·(Ub·Vbᵀ)ᵀ = (A·Vb)·Ubᵀ
		t := la.NewMat(a.D.Rows, b.Rank())
		la.Gemm(1, a.D, la.NoTrans, b.V, la.NoTrans, 0, t)
		la.Gemm(-1, t, la.NoTrans, b.U, la.Transpose, 1, cd)
	case b.IsDense():
		// (Ua·Vaᵀ)·Bᵀ = Ua·(B·Va)ᵀ
		t := la.NewMat(b.D.Rows, a.Rank())
		la.Gemm(1, b.D, la.NoTrans, a.V, la.NoTrans, 0, t)
		la.Gemm(-1, a.U, la.NoTrans, t, la.Transpose, 1, cd)
	default:
		// Ua·(Vaᵀ·Vb)·Ubᵀ
		w := la.NewMat(a.Rank(), b.Rank())
		la.Gemm(1, a.V, la.Transpose, b.V, la.NoTrans, 0, w)
		t := la.NewMat(a.U.Rows, b.Rank())
		la.Gemm(1, a.U, la.NoTrans, w, la.NoTrans, 0, t)
		la.Gemm(-1, t, la.NoTrans, b.U, la.Transpose, 1, cd)
	}
}

// GemmLL computes C ← recompress(C − A·Bᵀ, tol) where A, B, C are TLR tiles
// (the TLR Schur-complement update of the Cholesky trailing submatrix:
// C_ij −= A_ik·A_jkᵀ). Any operand may be a dense (DE) tile; a compressed C
// updated by two dense operands promotes to dense, since the product carries
// no low-rank structure to exploit. maxRank (> 0) bounds the rank growth of
// a compressed result via AddLowRank's DE fallback.
//
// The product of two low-rank tiles is itself low-rank:
// (Ua·Vaᵀ)(Ub·Vbᵀ)ᵀ = Ua·(Vaᵀ·Vb)·Ubᵀ, with rank min(ka, kb).
func GemmLL(c, a, b *CompTile, tol float64, maxRank int) *CompTile {
	if a.Cols() != b.Cols() {
		panic("tlr: GemmLL contraction dimension mismatch")
	}
	if !a.IsDense() && a.Rank() == 0 {
		return c // a zero operand contributes nothing
	}
	if !b.IsDense() && b.Rank() == 0 {
		return c
	}
	if c.IsDense() {
		gemmIntoDense(c.D, a, b)
		return c
	}
	if a.IsDense() && b.IsDense() {
		cd := c.Dense()
		la.Gemm(-1, a.D, la.NoTrans, b.D, la.Transpose, 1, cd)
		cntDenseTile.Inc()
		return NewDenseTile(cd)
	}
	var x, y *la.Mat
	switch {
	case a.IsDense():
		// A·(Ub·Vbᵀ)ᵀ = (A·Vb)·Ubᵀ — rank kb update.
		x = la.NewMat(a.D.Rows, b.Rank())
		la.Gemm(1, a.D, la.NoTrans, b.V, la.NoTrans, 0, x)
		y = b.U
	case b.IsDense():
		// (Ua·Vaᵀ)·Bᵀ = Ua·(B·Va)ᵀ — rank ka update.
		x = a.U
		y = la.NewMat(b.D.Rows, a.Rank())
		la.Gemm(1, b.D, la.NoTrans, a.V, la.NoTrans, 0, y)
	default:
		ka, kb := a.Rank(), b.Rank()
		// W = Vaᵀ·Vb  (ka×kb) — both share the contraction dimension.
		w := la.NewMat(ka, kb)
		la.Gemm(1, a.V, la.Transpose, b.V, la.NoTrans, 0, w)
		if ka <= kb {
			// X = Ua, Y = Ub·Wᵀ (rank ka)
			x = a.U
			y = la.NewMat(b.U.Rows, ka)
			la.Gemm(1, b.U, la.NoTrans, w, la.Transpose, 0, y)
		} else {
			// X = Ua·W (rank kb), Y = Ub
			x = la.NewMat(a.U.Rows, kb)
			la.Gemm(1, a.U, la.NoTrans, w, la.NoTrans, 0, x)
			y = b.U
		}
	}
	return AddLowRank(c, -1, x, y, tol, maxRank)
}

// SyrkLD updates a dense diagonal tile from a panel tile:
// C ← C − A·Aᵀ = C − Ua·(Vaᵀ·Va)·Uaᵀ. Only the lower triangle of C is
// meaningful afterwards (matching la.Syrk semantics the dense path uses).
func SyrkLD(c *la.Mat, a *CompTile) {
	if a.IsDense() {
		la.Syrk(la.Lower, -1, a.D, la.NoTrans, 1, c)
		return
	}
	k := a.Rank()
	if k == 0 {
		return
	}
	w := la.NewMat(k, k)
	la.Gemm(1, a.V, la.Transpose, a.V, la.NoTrans, 0, w)
	t := la.NewMat(a.U.Rows, k)
	la.Gemm(1, a.U, la.NoTrans, w, la.NoTrans, 0, t)
	// C -= T·Uaᵀ; use full gemm then rely on lower-triangle readers.
	la.Gemm(-1, t, la.NoTrans, a.U, la.Transpose, 1, c)
}

// TrsmLD applies the panel triangular solve to a TLR tile:
// A_ik ← A_ik · L_kk^{-T}. For a compressed A = U·Vᵀ, only V changes:
// U·Vᵀ·L^{-T} = U·(L^{-1}·V)ᵀ, i.e. V ← L^{-1}·V; a dense tile is solved
// directly.
func TrsmLD(l *la.Mat, a *CompTile) {
	if a.IsDense() {
		la.Trsm(la.Right, la.Lower, la.Transpose, 1, l, a.D)
		return
	}
	if a.Rank() == 0 {
		return
	}
	la.Trsm(la.Left, la.Lower, la.NoTrans, 1, l, a.V)
}

// MatVec computes y += alpha · A · x for a TLR tile.
func MatVec(a *CompTile, alpha float64, x, y []float64) {
	if a.IsDense() {
		la.Gemv(alpha, a.D, la.NoTrans, x, 1, y)
		return
	}
	k := a.Rank()
	if k == 0 {
		return
	}
	tmp := make([]float64, k)
	la.Gemv(1, a.V, la.Transpose, x, 0, tmp)
	la.Gemv(alpha, a.U, la.NoTrans, tmp, 1, y)
}

// MatVecT computes y += alpha · Aᵀ · x (= alpha · V·(Uᵀx) when compressed).
func MatVecT(a *CompTile, alpha float64, x, y []float64) {
	if a.IsDense() {
		la.Gemv(alpha, a.D, la.Transpose, x, 1, y)
		return
	}
	k := a.Rank()
	if k == 0 {
		return
	}
	tmp := make([]float64, k)
	la.Gemv(1, a.U, la.Transpose, x, 0, tmp)
	la.Gemv(alpha, a.V, la.NoTrans, tmp, 1, y)
}
