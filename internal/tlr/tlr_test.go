package tlr

import (
	"math"
	"testing"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/rng"
)

// covTile builds an off-diagonal covariance block between two well separated
// location clusters — the archetypal numerically low-rank tile.
func covTile(t *testing.T, rows, cols int, sep float64) *la.Mat {
	t.Helper()
	r := rng.New(42)
	a := make([]geom.Point, rows)
	b := make([]geom.Point, cols)
	for i := range a {
		a[i] = geom.Point{X: r.Float64() * 0.2, Y: r.Float64() * 0.2}
	}
	for i := range b {
		b[i] = geom.Point{X: sep + r.Float64()*0.2, Y: r.Float64() * 0.2}
	}
	k := cov.NewKernel(cov.Params{Variance: 1, Range: 0.3, Smoothness: 0.5})
	m := la.NewMat(rows, cols)
	k.Block(m, a, b, geom.Euclidean)
	return m
}

func frobDiff(a, b *la.Mat) float64 {
	d := a.Clone()
	d.Sub(b)
	return d.FrobNorm()
}

func TestCompressorsMeetAccuracy(t *testing.T) {
	a := covTile(t, 48, 40, 0.8)
	for _, name := range []string{"svd", "rsvd", "aca"} {
		comp, err := CompressorByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, tol := range []float64{1e-3, 1e-6, 1e-9} {
			c := comp.Compress(a, tol)
			got := frobDiff(c.Dense(), a) / a.FrobNorm()
			// allow a small safety factor over the nominal threshold
			if got > 5*tol {
				t.Errorf("%s tol=%g: rel error %g", name, tol, got)
			}
			if c.Rank() < 1 || c.Rank() > min(a.Rows, a.Cols) {
				t.Errorf("%s tol=%g: silly rank %d", name, tol, c.Rank())
			}
		}
	}
}

func TestCompressionRankGrowsWithAccuracy(t *testing.T) {
	a := covTile(t, 64, 64, 0.5)
	comp := SVDCompressor{}
	prev := 0
	for _, tol := range []float64{1e-2, 1e-5, 1e-8, 1e-12} {
		k := comp.Compress(a, tol).Rank()
		if k < prev {
			t.Fatalf("rank decreased with tighter accuracy: %d then %d", prev, k)
		}
		prev = k
	}
	if prev <= 2 {
		t.Fatalf("tightest accuracy rank suspiciously small: %d", prev)
	}
}

func TestCompressSeparatedClustersLowRank(t *testing.T) {
	// Far-apart clusters → strongly decaying covariance → tiny rank.
	a := covTile(t, 64, 64, 5.0)
	k := SVDCompressor{}.Compress(a, 1e-7).Rank()
	if k > 8 {
		t.Fatalf("well-separated tile rank %d, expected ≤ 8", k)
	}
}

func TestCompressZeroTile(t *testing.T) {
	z := la.NewMat(16, 12)
	for _, name := range []string{"svd", "aca"} {
		comp, _ := CompressorByName(name)
		c := comp.Compress(z, 1e-8)
		if frobDiff(c.Dense(), z) != 0 {
			t.Errorf("%s: zero tile not reproduced", name)
		}
	}
}

func TestCompressorByNameUnknown(t *testing.T) {
	if _, err := CompressorByName("qr-magic"); err == nil {
		t.Fatal("expected error for unknown compressor")
	}
}

func TestRecompressIdempotentAccuracy(t *testing.T) {
	a := covTile(t, 40, 40, 0.6)
	c := SVDCompressor{}.Compress(a, 1e-8)
	r := Recompress(c, 1e-8)
	if r.Rank() > c.Rank() {
		t.Fatalf("recompression increased rank: %d -> %d", c.Rank(), r.Rank())
	}
	if got := frobDiff(r.Dense(), a) / a.FrobNorm(); got > 1e-6 {
		t.Fatalf("recompression destroyed accuracy: %g", got)
	}
}

func TestAddLowRank(t *testing.T) {
	a := covTile(t, 32, 32, 0.7)
	c := SVDCompressor{}.Compress(a, 1e-10)
	r := rng.New(3)
	x := la.NewMat(32, 3)
	y := la.NewMat(32, 3)
	for i := range x.Data {
		x.Data[i] = r.Norm()
	}
	for i := range y.Data {
		y.Data[i] = r.Norm()
	}
	got := AddLowRank(c, -2, x, y, 1e-10, 0)
	want := a.Clone()
	la.Gemm(-2, x, la.NoTrans, y, la.Transpose, 1, want)
	if rel := frobDiff(got.Dense(), want) / want.FrobNorm(); rel > 1e-8 {
		t.Fatalf("AddLowRank error %g", rel)
	}
}

func TestGemmLL(t *testing.T) {
	a := covTile(t, 30, 30, 0.4)
	b := covTile(t, 30, 30, 0.9)
	cD := covTile(t, 30, 30, 0.6)
	tol := 1e-9
	ca := SVDCompressor{}.Compress(a, tol)
	cb := SVDCompressor{}.Compress(b, tol)
	cc := SVDCompressor{}.Compress(cD, tol)
	got := GemmLL(cc, ca, cb, tol, 0)
	want := cD.Clone()
	la.Gemm(-1, a, la.NoTrans, b, la.Transpose, 1, want)
	if rel := frobDiff(got.Dense(), want) / want.FrobNorm(); rel > 1e-6 {
		t.Fatalf("GemmLL error %g", rel)
	}
}

func TestSyrkLD(t *testing.T) {
	a := covTile(t, 24, 24, 0.5)
	ca := SVDCompressor{}.Compress(a, 1e-10)
	c := covTile(t, 24, 24, 0.1) // arbitrary dense diag stand-in
	want := c.Clone()
	la.Gemm(-1, a, la.NoTrans, a, la.Transpose, 1, want)
	SyrkLD(c, ca)
	if rel := frobDiff(c, want) / want.FrobNorm(); rel > 1e-7 {
		t.Fatalf("SyrkLD error %g", rel)
	}
}

func TestTrsmLD(t *testing.T) {
	// dense reference: A L^{-T}
	a := covTile(t, 20, 20, 0.5)
	ca := SVDCompressor{}.Compress(a, 1e-11)
	r := rng.New(4)
	l := la.NewMat(20, 20)
	for i := 0; i < 20; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, 0.3*r.Norm())
		}
		l.Set(i, i, 1+r.Float64())
	}
	want := a.Clone()
	la.Trsm(la.Right, la.Lower, la.Transpose, 1, l, want)
	TrsmLD(l, ca)
	if rel := frobDiff(ca.Dense(), want) / want.FrobNorm(); rel > 1e-8 {
		t.Fatalf("TrsmLD error %g", rel)
	}
}

func TestMatVecAndTranspose(t *testing.T) {
	a := covTile(t, 18, 14, 0.6)
	c := SVDCompressor{}.Compress(a, 1e-12)
	r := rng.New(5)
	x := make([]float64, 14)
	r.NormSlice(x)
	y := make([]float64, 18)
	MatVec(c, 2, x, y)
	want := make([]float64, 18)
	la.Gemv(2, a, la.NoTrans, x, 0, want)
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-9 {
			t.Fatalf("MatVec mismatch at %d", i)
		}
	}
	xt := make([]float64, 18)
	r.NormSlice(xt)
	yt := make([]float64, 14)
	MatVecT(c, -1, xt, yt)
	wantT := make([]float64, 14)
	la.Gemv(-1, a, la.Transpose, xt, 0, wantT)
	for i := range yt {
		if math.Abs(yt[i]-wantT[i]) > 1e-9 {
			t.Fatalf("MatVecT mismatch at %d", i)
		}
	}
}

// maternTLR builds a TLR covariance matrix and its dense counterpart.
func maternTLR(t *testing.T, n, nb int, rangeP, tol float64) (*Matrix, *la.Mat, []geom.Point) {
	t.Helper()
	r := rng.New(7)
	pts := geom.GeneratePerturbedGrid(n, r)
	pts = geom.ApplyPerm(pts, geom.MortonOrder(pts))
	k := cov.NewKernel(cov.Params{Variance: 1, Range: rangeP, Smoothness: 0.5})
	dense := la.NewMat(n, n)
	k.Matrix(dense, pts, geom.Euclidean)
	nugget := 1e-10
	cov.AddNugget(dense, nugget)
	m := FromKernel(k, pts, geom.Euclidean, n, nb, tol, SVDCompressor{}, nugget, 1)
	return m, dense, pts
}

func TestFromKernelMatchesDense(t *testing.T) {
	m, dense, _ := maternTLR(t, 120, 30, 0.1, 1e-9)
	rec := m.ToDense()
	if rel := frobDiff(rec, dense) / dense.FrobNorm(); rel > 1e-7 {
		t.Fatalf("TLR assembly error %g", rel)
	}
}

func TestTLRCompressionSavesMemory(t *testing.T) {
	m, _, _ := maternTLR(t, 256, 32, 0.03, 1e-5)
	if m.Bytes() >= m.DenseBytes() {
		t.Fatalf("no compression: %d vs %d bytes", m.Bytes(), m.DenseBytes())
	}
	maxK, meanK := m.RankStats()
	if maxK > 32 || meanK <= 0 {
		t.Fatalf("rank stats off: max=%d mean=%g", maxK, meanK)
	}
}

func TestTLRCholeskyMatchesDense(t *testing.T) {
	for _, cfg := range []struct {
		n, nb int
		tol   float64
	}{
		{96, 24, 1e-9},
		{128, 32, 1e-10},
		{100, 32, 1e-9}, // ragged tiles
	} {
		m, dense, _ := maternTLR(t, cfg.n, cfg.nb, 0.1, cfg.tol)
		ref := dense.Clone()
		if err := la.Potrf(ref); err != nil {
			t.Fatal(err)
		}
		if err := Cholesky(m, 4); err != nil {
			t.Fatalf("TLR cholesky failed (n=%d): %v", cfg.n, err)
		}
		// Compare reconstructed lower factors: L_tlr ≈ L_dense within a
		// factor of the compression threshold amplified by conditioning.
		got := m.ToDense()
		var worst float64
		for i := 0; i < cfg.n; i++ {
			for j := 0; j <= i; j++ {
				d := math.Abs(got.At(i, j) - ref.At(i, j))
				if d > worst {
					worst = d
				}
			}
		}
		if worst > 1e4*cfg.tol {
			t.Fatalf("n=%d nb=%d tol=%g: factor deviation %g", cfg.n, cfg.nb, cfg.tol, worst)
		}
	}
}

func TestTLRLogDetConvergesWithAccuracy(t *testing.T) {
	n := 144
	var want float64
	{
		_, dense, _ := maternTLR(t, n, 24, 0.1, 1e-9)
		ref := dense.Clone()
		if err := la.Potrf(ref); err != nil {
			t.Fatal(err)
		}
		want = la.LogDetFromChol(ref)
	}
	prevErr := math.Inf(1)
	for _, tol := range []float64{1e-4, 1e-7, 1e-10} {
		m, _, _ := maternTLR(t, n, 24, 0.1, tol)
		if err := Cholesky(m, 2); err != nil {
			t.Fatal(err)
		}
		e := math.Abs(m.LogDet() - want)
		if e > prevErr*1.5 { // must not get worse as tol tightens
			t.Fatalf("logdet error grew: tol=%g err=%g prev=%g", tol, e, prevErr)
		}
		prevErr = e
	}
	if prevErr > 1e-5*math.Abs(want)+1e-5 {
		t.Fatalf("tightest accuracy logdet error %g too large", prevErr)
	}
}

func TestTLRSolveMatchesDense(t *testing.T) {
	n := 128
	m, dense, _ := maternTLR(t, n, 32, 0.1, 1e-10)
	ref := dense.Clone()
	if err := la.Potrf(ref); err != nil {
		t.Fatal(err)
	}
	if err := Cholesky(m, 4); err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	b := make([]float64, n)
	r.NormSlice(b)
	want := append([]float64(nil), b...)
	la.CholSolveVec(ref, want)
	got := append([]float64(nil), b...)
	m.Solve(got)
	var worst float64
	for i := range got {
		if d := math.Abs(got[i] - want[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-4 {
		t.Fatalf("TLR solve deviation %g", worst)
	}
}

func TestTLRCholeskyWorkerInvariance(t *testing.T) {
	// The DAG must serialize all conflicting accesses: results with 1 and 8
	// workers agree exactly (identical operation order per tile chain).
	m1, _, _ := maternTLR(t, 96, 24, 0.1, 1e-8)
	m8, _, _ := maternTLR(t, 96, 24, 0.1, 1e-8)
	if err := Cholesky(m1, 1); err != nil {
		t.Fatal(err)
	}
	if err := Cholesky(m8, 8); err != nil {
		t.Fatal(err)
	}
	d1, d8 := m1.ToDense(), m8.ToDense()
	if !d1.Equalish(d8, 1e-13) {
		t.Fatal("worker count changed TLR factorization result")
	}
}

func TestRankFloorPreventsZeroRank(t *testing.T) {
	// frobRank must return at least 1 even for pure-noise tiny tiles.
	if k := frobRank([]float64{1e-30, 1e-31}, 1e-9); k < 1 {
		t.Fatal("frobRank returned 0")
	}
}
