package tlr

import (
	"fmt"
	"sync"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/runtime"
	"repro/internal/tile"
)

// snapPool recycles the diagonal-tile snapshot buffers the retry path
// captures before each POTRF/TRSM/SYRK attempt.
var snapPool sync.Pool

func snapBuf(n int) []float64 {
	if v := snapPool.Get(); v != nil {
		if b := v.([]float64); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

func putSnapBuf(b []float64) { snapPool.Put(b) } //nolint:staticcheck // slice header churn is negligible here

// Matrix is an n×n symmetric matrix in TLR format: dense diagonal tiles and
// compressed (U·Vᵀ) strictly-lower tiles, mirrored implicitly to the upper
// triangle. Tol is the accuracy threshold every compressed tile satisfies
// and that all TLR arithmetic maintains.
type Matrix struct {
	N   int
	NB  int
	MT  int
	Tol float64

	// MaxRank, when positive, caps compressed tile ranks: a tile that
	// cannot meet Tol within MaxRank columns (at generation or after a
	// trailing update) falls back to exact dense (DE) storage instead of
	// erroring or growing without bound. Zero means uncapped.
	MaxRank int

	diag []*la.Mat
	off  [][]*CompTile // off[i][j] valid for j < i

	// ooc, when non-nil, is the out-of-core binding installed by AttachOOC:
	// tile payloads may be spilled to disk, and every direct tile access of
	// the solve/logdet/reconstruction paths pins the tile resident around
	// the access. Nil means all tiles are memory-resident (the default).
	ooc *oocBinding
}

// NewMatrix allocates an empty TLR matrix shell.
func NewMatrix(n, nb int, tol float64) *Matrix {
	if n <= 0 || nb <= 0 {
		panic(fmt.Sprintf("tlr: invalid dims n=%d nb=%d", n, nb))
	}
	mt := (n + nb - 1) / nb
	m := &Matrix{N: n, NB: nb, MT: mt, Tol: tol}
	m.diag = make([]*la.Mat, mt)
	m.off = make([][]*CompTile, mt)
	for i := range m.off {
		m.off[i] = make([]*CompTile, i)
	}
	return m
}

// TileDim returns the edge of tile row i.
func (m *Matrix) TileDim(i int) int {
	d := m.N - i*m.NB
	if d > m.NB {
		d = m.NB
	}
	return d
}

// Diag returns dense diagonal tile i.
func (m *Matrix) Diag(i int) *la.Mat { return m.diag[i] }

// Off returns compressed tile (i, j), j < i.
func (m *Matrix) Off(i, j int) *CompTile { return m.off[i][j] }

// FromKernel assembles and compresses the covariance matrix Σ(θ) for pts:
// diagonal tiles stay dense; each off-diagonal tile is generated densely and
// immediately compressed with comp (the HiCMA "generate + compress"
// pipeline). A nugget is added to the diagonal. The per-tile
// generate+compress tasks run on the task runtime with the given worker
// count; the result is bitwise-independent of workers (stochastic
// compressors are re-seeded per tile, see TileCompressor).
func FromKernel(k *cov.Kernel, pts []geom.Point, metric geom.Metric, n, nb int, tol float64, comp Compressor, nugget float64, workers int) *Matrix {
	if len(pts) != n {
		panic(fmt.Sprintf("tlr: %d points for n=%d", len(pts), n))
	}
	m := NewMatrix(n, nb, tol)
	spec := &GenSpec{K: k, Pts: pts, Metric: metric, Nugget: nugget, Comp: comp}
	g := runtime.NewGraph()
	dh, oh := newTileHandles(g, m)
	AddGenTasks(g, m, spec, dh, oh, true)
	if err := g.Execute(runtime.ExecOptions{Workers: workers}); err != nil {
		// generation and compression cannot fail numerically; a panic here is
		// a programming error
		panic(err)
	}
	return m
}

// FromDense compresses an existing dense symmetric matrix into TLR format
// (testing and small-problem interop).
func FromDense(a *la.Mat, nb int, tol float64, comp Compressor) *Matrix {
	if a.Rows != a.Cols {
		panic("tlr: FromDense requires a square matrix")
	}
	m := NewMatrix(a.Rows, nb, tol)
	for i := 0; i < m.MT; i++ {
		di := m.TileDim(i)
		m.diag[i] = a.View(i*nb, i*nb, di, di).Clone()
		for j := 0; j < i; j++ {
			m.off[i][j] = comp.Compress(a.View(i*nb, j*nb, di, m.TileDim(j)), tol)
		}
	}
	return m
}

// ToDense reconstructs the full symmetric dense matrix.
func (m *Matrix) ToDense() *la.Mat {
	out := la.NewMat(m.N, m.N)
	for i := 0; i < m.MT; i++ {
		m.pinDiag(i)
		d := m.diag[i]
		for a := 0; a < d.Rows; a++ {
			for b := 0; b < d.Cols; b++ {
				out.Set(i*m.NB+a, i*m.NB+b, d.At(a, b))
			}
		}
		m.unpinDiag(i)
		for j := 0; j < i; j++ {
			m.pinOff(i, j)
			t := m.off[i][j].Dense()
			m.unpinOff(i, j)
			for a := 0; a < t.Rows; a++ {
				for b := 0; b < t.Cols; b++ {
					out.Set(i*m.NB+a, j*m.NB+b, t.At(a, b))
					out.Set(j*m.NB+b, i*m.NB+a, t.At(a, b))
				}
			}
		}
	}
	return out
}

// Bytes returns the TLR storage footprint: the bytes the matrix occupies
// fully resident (spilled tiles count at their logical size).
func (m *Matrix) Bytes() int64 {
	var b int64
	for i, d := range m.diag {
		if d == nil {
			// evicted (or not yet generated) diagonal tile: logical size
			di := int64(m.TileDim(i))
			b += di * di * 8
			continue
		}
		b += int64(d.Rows) * int64(d.Cols) * 8
	}
	for i := range m.off {
		for _, t := range m.off[i] {
			if t != nil {
				b += t.Bytes()
			}
		}
	}
	return b
}

// DenseBytes returns the footprint the same matrix would need uncompressed
// (lower triangle + diagonal, the tile storage the dense path uses).
func (m *Matrix) DenseBytes() int64 {
	var b int64
	for i := 0; i < m.MT; i++ {
		di := int64(m.TileDim(i))
		b += di * di * 8
		for j := 0; j < i; j++ {
			b += di * int64(m.TileDim(j)) * 8
		}
	}
	return b
}

// RankStats returns the max and mean rank over the compressed tiles.
func (m *Matrix) RankStats() (maxRank int, meanRank float64) {
	var sum, cnt int
	for i := range m.off {
		for _, t := range m.off[i] {
			if t == nil {
				continue
			}
			k := t.Rank()
			if k > maxRank {
				maxRank = k
			}
			sum += k
			cnt++
		}
	}
	if cnt > 0 {
		meanRank = float64(sum) / float64(cnt)
	}
	return maxRank, meanRank
}

// flopsTRSMComp estimates the flops of the TLR panel solve on a tile of
// rank k: a triangular solve applied to an nb×k V factor.
func flopsTRSMComp(nb, k int) float64 { return float64(nb) * float64(nb) * float64(k) }

// flopsSYRKComp estimates the compressed SYRK cost.
func flopsSYRKComp(nb, k int) float64 {
	return 2*float64(k)*float64(k)*float64(nb) + 2*float64(nb)*float64(nb)*float64(k)
}

// flopsGEMMComp estimates the compressed GEMM + recompression cost for
// operand ranks ka, kb and output rank kc.
func flopsGEMMComp(nb, ka, kb, kc int) float64 {
	ks := float64(ka + kb + kc)
	// contraction + two tall QRs + small SVD ~ O(nb·k²) + O(k³)
	return 2*float64(nb)*ks*ks + ks*ks*ks
}

// BuildCholeskyGraph inserts the TLR Cholesky DAG into a new graph. The DAG
// has the same shape as the dense tiled one; only the per-task kernels (and
// costs) differ. When bind is true the tasks mutate m in place.
func BuildCholeskyGraph(m *Matrix, bind bool) *runtime.Graph {
	g := runtime.NewGraph()
	dh, oh := newTileHandles(g, m)
	addCholeskyTasks(g, m, dh, oh, bind)
	return g
}

// newTileHandles registers one data handle per stored tile: dense diagonal
// tiles and compressed off-diagonal tiles. Compressed handles start with the
// current tile's footprint (zero for an empty shell) and are refreshed by the
// generate+compress tasks via SetBytes as ranks change. Every handle carries
// a SnapshotFn so the executor's retry path can restore tile state after a
// task panic: diagonal payloads are copied into pooled buffers, compressed
// tiles are deep-cloned (TrsmLD mutates V in place and GemmLL replaces the
// tile object, so a reference is not enough).
func newTileHandles(g *runtime.Graph, m *Matrix) ([]*runtime.Handle, [][]*runtime.Handle) {
	dh := make([]*runtime.Handle, m.MT)
	oh := make([][]*runtime.Handle, m.MT)
	for i := 0; i < m.MT; i++ {
		i := i
		di := int64(m.TileDim(i))
		dh[i] = g.NewHandle(fmt.Sprintf("D[%d]", i), di*di*8, int64(i)*int64(m.MT)+int64(i))
		dh[i].SnapshotFn = func() (restore, release func()) {
			d := m.diag[i]
			if d == nil {
				// lazily allocated shell tile: restoring means un-allocating
				return func() { m.diag[i] = nil }, func() {}
			}
			n := d.Rows * d.Stride
			buf := snapBuf(n)
			copy(buf, d.Data[:n])
			restore = func() {
				copy(d.Data[:n], buf)
				m.diag[i] = d
				putSnapBuf(buf)
			}
			release = func() { putSnapBuf(buf) }
			return restore, release
		}
		oh[i] = make([]*runtime.Handle, i)
		for j := 0; j < i; j++ {
			j := j
			var bytes int64
			if m.off[i][j] != nil {
				bytes = m.off[i][j].Bytes()
			}
			oh[i][j] = g.NewHandle(fmt.Sprintf("C[%d,%d]", i, j), bytes, int64(i)*int64(m.MT)+int64(j))
			oh[i][j].SnapshotFn = func() (restore, release func()) {
				var saved *CompTile
				if t := m.off[i][j]; t != nil {
					saved = t.Clone()
				}
				return func() { m.off[i][j] = saved }, func() {}
			}
		}
	}
	return dh, oh
}

// addCholeskyTasks inserts the TLR POTRF/TRSM/SYRK/GEMM sweep over the given
// tile handles (shared by BuildCholeskyGraph and the fused
// generation+factorization graph in gen.go). Task closures dereference m's
// tiles at run time, so the same graph re-executes correctly after the
// generation tasks (or GEMM recompressions) replace tile objects.
func addCholeskyTasks(g *runtime.Graph, m *Matrix, dh []*runtime.Handle, oh [][]*runtime.Handle, bind bool) {
	rank := func(i, j int) int {
		if m.off[i][j] != nil {
			return m.off[i][j].Rank()
		}
		// structural graphs assume a nominal rank for costing; clamp to ≥ 1
		// so no task degenerates to zero flops (NB < 8 would otherwise yield
		// zero-cost TRSM/SYRK/GEMM tasks and corrupt simulated makespans)
		if nominal := m.NB / 8; nominal >= 1 {
			return nominal
		}
		return 1
	}
	mt := m.MT
	for k := 0; k < mt; k++ {
		k := k
		var run func()
		if bind {
			run = func() {
				if err := la.Potrf(m.diag[k]); err != nil {
					panic(err)
				}
			}
		}
		g.AddTask(runtime.Task{
			Name:     "potrf",
			Flops:    tile.FlopsPOTRF(m.TileDim(k)),
			Priority: 3 * (mt - k),
			Run:      run,
			Accesses: []runtime.Access{{Handle: dh[k], Mode: runtime.ReadWrite}},
		})
		for i := k + 1; i < mt; i++ {
			i := i
			var runT func()
			if bind {
				// dereference at run time: earlier GEMM tasks replace the
				// CompTile object stored in m.off[i][k]
				runT = func() { TrsmLD(m.diag[k], m.off[i][k]) }
			}
			g.AddTask(runtime.Task{
				Name:     "trsm",
				Flops:    flopsTRSMComp(m.TileDim(k), rank(i, k)),
				Priority: 2 * (mt - i),
				Run:      runT,
				Accesses: []runtime.Access{
					{Handle: dh[k], Mode: runtime.Read},
					{Handle: oh[i][k], Mode: runtime.ReadWrite},
				},
			})
		}
		for i := k + 1; i < mt; i++ {
			i := i
			var runS func()
			if bind {
				runS = func() { SyrkLD(m.diag[i], m.off[i][k]) }
			}
			g.AddTask(runtime.Task{
				Name:  "syrk",
				Flops: flopsSYRKComp(m.TileDim(i), rank(i, k)),
				Run:   runS,
				Accesses: []runtime.Access{
					{Handle: oh[i][k], Mode: runtime.Read},
					{Handle: dh[i], Mode: runtime.ReadWrite},
				},
			})
			for j := k + 1; j < i; j++ {
				j := j
				var runG func()
				if bind {
					runG = func() {
						m.off[i][j] = GemmLL(m.off[i][j], m.off[i][k], m.off[j][k], m.Tol, m.MaxRank)
					}
				}
				g.AddTask(runtime.Task{
					Name:  "gemm",
					Flops: flopsGEMMComp(m.TileDim(i), rank(i, k), rank(j, k), rank(i, j)),
					Run:   runG,
					Accesses: []runtime.Access{
						{Handle: oh[i][k], Mode: runtime.Read},
						{Handle: oh[j][k], Mode: runtime.Read},
						{Handle: oh[i][j], Mode: runtime.ReadWrite},
					},
				})
			}
		}
	}
}

// Cholesky factors m in place: on return the diagonal tiles hold dense
// Cholesky factors and the off-diagonal tiles the compressed L factors.
func Cholesky(m *Matrix, workers int) error {
	g := BuildCholeskyGraph(m, true)
	return g.Execute(runtime.ExecOptions{Workers: workers})
}

// LogDet returns log|A| from a TLR-factored matrix.
func (m *Matrix) LogDet() float64 {
	var s float64
	for i := range m.diag {
		m.pinDiag(i)
		s += la.LogDetFromChol(m.diag[i])
		m.unpinDiag(i)
	}
	return s
}

// ForwardSolve solves L·x = b in place against a TLR-factored matrix.
func (m *Matrix) ForwardSolve(b []float64) {
	if len(b) != m.N {
		panic("tlr: ForwardSolve length mismatch")
	}
	for i := 0; i < m.MT; i++ {
		bi := b[i*m.NB : i*m.NB+m.TileDim(i)]
		for j := 0; j < i; j++ {
			bj := b[j*m.NB : j*m.NB+m.TileDim(j)]
			m.pinOff(i, j)
			MatVec(m.off[i][j], -1, bj, bi)
			m.unpinOff(i, j)
		}
		m.pinDiag(i)
		la.ForwardSolveVec(m.diag[i], bi)
		m.unpinDiag(i)
	}
}

// BackwardSolve solves Lᵀ·x = b in place against a TLR-factored matrix.
func (m *Matrix) BackwardSolve(b []float64) {
	if len(b) != m.N {
		panic("tlr: BackwardSolve length mismatch")
	}
	for i := m.MT - 1; i >= 0; i-- {
		bi := b[i*m.NB : i*m.NB+m.TileDim(i)]
		for j := m.MT - 1; j > i; j-- {
			bj := b[j*m.NB : j*m.NB+m.TileDim(j)]
			// b_i -= (L_ji)ᵀ b_j
			m.pinOff(j, i)
			MatVecT(m.off[j][i], -1, bj, bi)
			m.unpinOff(j, i)
		}
		bm := la.NewMatFrom(len(bi), 1, bi)
		m.pinDiag(i)
		la.Trsm(la.Left, la.Lower, la.Transpose, 1, m.diag[i], bm)
		m.unpinDiag(i)
	}
}

// Solve computes A⁻¹·b in place given the TLR Cholesky factors.
func (m *Matrix) Solve(b []float64) {
	m.ForwardSolve(b)
	m.BackwardSolve(b)
}
