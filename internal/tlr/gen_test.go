package tlr

import (
	"testing"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/rng"
	"repro/internal/runtime"
)

// exactEqual reports bitwise equality of two dense matrices.
func exactEqual(a, b *la.Mat) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := 0; i < a.Rows; i++ {
		ar, br := a.Row(i), b.Row(i)
		for j := range ar {
			if ar[j] != br[j] {
				return false
			}
		}
	}
	return true
}

func genTestSetup(t *testing.T, n int) (*cov.Kernel, []geom.Point) {
	t.Helper()
	r := rng.New(7)
	pts := geom.GeneratePerturbedGrid(n, r)
	pts = geom.ApplyPerm(pts, geom.MortonOrder(pts))
	k := cov.NewKernel(cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5})
	return k, pts
}

// The determinism contract of the parallel assemble+compress pipeline: the
// assembled TLR matrix is bitwise-identical at any worker count, for every
// compression backend (stochastic ones re-seed per tile via TileCompressor).
func TestFromKernelWorkerInvariance(t *testing.T) {
	const n, nb = 240, 32
	k, pts := genTestSetup(t, n)
	for _, name := range []string{"svd", "rsvd", "aca"} {
		comp, err := CompressorByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m1 := FromKernel(k, pts, geom.Euclidean, n, nb, 1e-7, comp, 1e-9, 1)
		m4 := FromKernel(k, pts, geom.Euclidean, n, nb, 1e-7, comp, 1e-9, 4)
		for i := 0; i < m1.MT; i++ {
			if !exactEqual(m1.Diag(i), m4.Diag(i)) {
				t.Fatalf("%s: diagonal tile %d differs across worker counts", name, i)
			}
			for j := 0; j < i; j++ {
				a, b := m1.Off(i, j), m4.Off(i, j)
				if a.Rank() != b.Rank() {
					t.Fatalf("%s: tile (%d,%d) rank %d vs %d across worker counts", name, i, j, a.Rank(), b.Rank())
				}
				if !exactEqual(a.U, b.U) || !exactEqual(a.V, b.V) {
					t.Fatalf("%s: tile (%d,%d) factors differ across worker counts", name, i, j)
				}
			}
		}
	}
}

// The fused generate+compress+factorize DAG must reproduce the separate
// assemble-then-factor pipeline bitwise: per tile, both execute the same
// kernel sequence in the same dependency order.
func TestGenCholeskyMatchesSeparatePipeline(t *testing.T) {
	const n, nb = 160, 32
	k, pts := genTestSetup(t, n)
	sep := FromKernel(k, pts, geom.Euclidean, n, nb, 1e-8, SVDCompressor{}, 1e-9, 4)
	if err := Cholesky(sep, 4); err != nil {
		t.Fatal(err)
	}
	fused := NewMatrix(n, nb, 1e-8)
	spec := &GenSpec{K: k, Pts: pts, Metric: geom.Euclidean, Nugget: 1e-9, Comp: SVDCompressor{}}
	if err := GenCholesky(fused, spec, 4); err != nil {
		t.Fatal(err)
	}
	if !exactEqual(sep.ToDense(), fused.ToDense()) {
		t.Fatal("fused generate+compress+factorize differs from separate pipeline")
	}
	if sep.LogDet() != fused.LogDet() {
		t.Fatalf("logdet differs: %g vs %g", sep.LogDet(), fused.LogDet())
	}
}

// The fused graph is re-executable on a reused shell: swapping the kernel in
// the spec and re-running regenerates ranks/contents and refactors, matching
// a fresh factorization bitwise — including returning to a θ seen before.
func TestGenCholeskyGraphReuseAcrossKernels(t *testing.T) {
	const n, nb = 160, 32
	_, pts := genTestSetup(t, n)
	thetas := []cov.Params{
		{Variance: 1, Range: 0.1, Smoothness: 0.5},
		{Variance: 2, Range: 0.05, Smoothness: 1.5},
		{Variance: 1, Range: 0.1, Smoothness: 0.5}, // revisit the first θ
	}
	shell := NewMatrix(n, nb, 1e-8)
	spec := &GenSpec{Pts: pts, Metric: geom.Euclidean, Nugget: 1e-9, Comp: SVDCompressor{}}
	g := BuildGenCholeskyGraph(shell, spec, true)
	for _, th := range thetas {
		spec.K = cov.NewKernel(th)
		if err := g.Execute(runtime.ExecOptions{Workers: 3}); err != nil {
			t.Fatalf("θ=%v: %v", th, err)
		}
		fresh := NewMatrix(n, nb, 1e-8)
		fspec := &GenSpec{K: spec.K, Pts: pts, Metric: geom.Euclidean, Nugget: 1e-9, Comp: SVDCompressor{}}
		if err := GenCholesky(fresh, fspec, 3); err != nil {
			t.Fatal(err)
		}
		if !exactEqual(shell.ToDense(), fresh.ToDense()) {
			t.Fatalf("θ=%v: reused graph result differs from fresh factorization", th)
		}
	}
}

// RSVD per-tile generators depend only on (Seed, i, j): compressing the same
// tile twice — or after compressing other tiles — is bitwise-reproducible.
func TestRSVDForTileDeterminism(t *testing.T) {
	a := covTile(t, 40, 36, 0.8)
	other := covTile(t, 40, 36, 1.4)
	r := RSVDCompressor{}
	c1 := forTile(r, 3, 1).Compress(a, 1e-7)
	forTile(r, 5, 2).Compress(other, 1e-7) // unrelated tile in between
	c2 := forTile(r, 3, 1).Compress(a, 1e-7)
	if c1.Rank() != c2.Rank() || !exactEqual(c1.U, c2.U) || !exactEqual(c1.V, c2.V) {
		t.Fatal("per-tile RSVD stream is not deterministic")
	}
	d := forTile(r, 1, 3).Compress(a, 1e-7)
	if exactEqual(c1.U, d.U) {
		t.Fatal("distinct tiles unexpectedly share a random stream")
	}
}

// The documented PowerIters default is 1; zero must not silently mean 2.
func TestRSVDPowerItersDefault(t *testing.T) {
	a := covTile(t, 40, 36, 0.8)
	def := RSVDCompressor{}.Compress(a, 1e-6)
	one := RSVDCompressor{PowerIters: 1}.Compress(a, 1e-6)
	if def.Rank() != one.Rank() || !exactEqual(def.U, one.U) || !exactEqual(def.V, one.V) {
		t.Fatal("PowerIters zero value does not behave as the documented default of 1")
	}
}

// A zero tile compresses to rank 0 with zero storage, and every TLR kernel
// treats the rank-0 tile as a structural no-op.
func TestACAZeroTileRankZero(t *testing.T) {
	z := la.NewMat(16, 12)
	c := ACACompressor{}.Compress(z, 1e-8)
	if c.Rank() != 0 {
		t.Fatalf("zero tile rank %d, want 0", c.Rank())
	}
	if c.Bytes() != 0 {
		t.Fatalf("zero tile claims %d bytes", c.Bytes())
	}
	if c.Dense().FrobNorm() != 0 {
		t.Fatal("rank-0 tile does not reconstruct to zero")
	}
	if rc := Recompress(c, 1e-8); rc.Rank() != 0 {
		t.Fatal("Recompress inflated a rank-0 tile")
	}

	// square rank-0 tile for the factorization kernels
	sq := ACACompressor{}.Compress(la.NewMat(12, 12), 1e-8)
	diag := covTile(t, 12, 12, 0.1)
	want := diag.Clone()
	SyrkLD(diag, sq) // C -= 0·0ᵀ
	if !exactEqual(diag, want) {
		t.Fatal("SyrkLD with rank-0 tile modified C")
	}
	l := la.Eye(12)
	TrsmLD(l, sq)
	if sq.Rank() != 0 {
		t.Fatal("TrsmLD changed a rank-0 tile")
	}
	full := SVDCompressor{}.Compress(covTile(t, 12, 12, 0.6), 1e-8)
	if got := GemmLL(full, sq, full, 1e-8, 0); got != full {
		t.Fatal("GemmLL with a rank-0 operand must return C unchanged")
	}
	if got := GemmLL(sq, full, full, 1e-8, 0); got.Rank() == 0 && full.Rank() > 0 {
		t.Fatal("GemmLL failed to update a rank-0 C from nonzero operands")
	}
	x := make([]float64, 12)
	y := make([]float64, 12)
	for i := range x {
		x[i] = float64(i + 1)
	}
	MatVec(sq, 1, x, y)
	MatVecT(sq, 1, x, y)
	for i, v := range y {
		if v != 0 {
			t.Fatalf("rank-0 MatVec wrote y[%d]=%g", i, v)
		}
	}
	b := la.NewMat(12, 3)
	cM := la.NewMat(12, 3)
	MatMul(sq, 1, b, cM)
	MatMulT(sq, 1, b, cM)
	if cM.FrobNorm() != 0 {
		t.Fatal("rank-0 MatMul wrote into C")
	}
}

// Structural graphs on an empty shell must never carry zero-flop tasks: the
// nominal rank is clamped to ≥ 1 even for NB < 8 (the cluster ablation's
// simulated makespans depend on it).
func TestStructuralGraphNoZeroFlopTasks(t *testing.T) {
	for _, nb := range []int{4, 7, 16} {
		m := NewMatrix(32, nb, 1e-6)
		g := BuildCholeskyGraph(m, false)
		for _, task := range g.Tasks() {
			if task.Flops <= 0 {
				t.Fatalf("nb=%d: task %q has %g flops", nb, task.Name, task.Flops)
			}
		}
	}
}
