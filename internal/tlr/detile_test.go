package tlr

import (
	"math"
	"testing"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/rng"
)

func TestDenseTileBasics(t *testing.T) {
	d := covTile(t, 12, 10, 0.3)
	c := NewDenseTile(d.Clone())
	if !c.IsDense() {
		t.Fatal("NewDenseTile must report dense")
	}
	if c.Rows() != 12 || c.Cols() != 10 {
		t.Fatalf("dims %dx%d", c.Rows(), c.Cols())
	}
	if c.Rank() != 10 {
		t.Fatalf("dense rank = min dim, got %d", c.Rank())
	}
	if c.Bytes() != 12*10*8 {
		t.Fatalf("bytes %d", c.Bytes())
	}
	if diff := frobDiff(c.Dense(), d); diff != 0 {
		t.Fatalf("Dense() deviates by %g", diff)
	}
	// Dense() must copy — mutating the result may not corrupt the tile.
	c.Dense().Set(0, 0, 999)
	if c.D.At(0, 0) == 999 {
		t.Fatal("Dense() aliases the stored payload")
	}
	cl := c.Clone()
	cl.D.Set(0, 0, -5)
	if c.D.At(0, 0) == -5 {
		t.Fatal("Clone aliases the original")
	}
	if got := Recompress(c, 1e-9); got != c {
		t.Fatal("Recompress of a dense tile must be the identity")
	}
}

func TestMaxRankForcesDenseFallback(t *testing.T) {
	// A near-full-rank tile compressed under a tight tolerance exceeds a tiny
	// MaxRank cap; AddLowRank must fall back to an exact dense tile.
	x := covTile(t, 24, 24, 0.05)
	y := covTile(t, 24, 24, 0.07)
	c := SVDCompressor{}.Compress(covTile(t, 24, 24, 0.4), 1e-10)

	before := obs.Default().Snapshot()
	got := AddLowRank(c, -1, x, y, 1e-12, 2)
	if !got.IsDense() {
		t.Fatalf("rank cap 2 should have forced a dense tile, got rank %d", got.Rank())
	}
	d := obs.Default().Snapshot().Sub(before)
	if d.Counters["tlr.detile.fallback"] < 1 {
		t.Fatalf("tlr.detile.fallback not incremented: %v", d.Counters)
	}

	// The fallback is exact: C - X·Yᵀ with no truncation at all.
	want := c.Dense()
	la.Gemm(-1, x, la.NoTrans, y, la.Transpose, 1, want)
	if diff := frobDiff(got.Dense(), want); diff > 1e-12 {
		t.Fatalf("dense fallback deviates from exact update by %g", diff)
	}
}

func TestGemmLLDenseOperandCombinations(t *testing.T) {
	// Every dense/compressed operand mix of the Schur update must agree with
	// the dense arithmetic.
	mk := func(dense bool, seed float64) *CompTile {
		m := covTile(t, 16, 16, 0.3+seed)
		if dense {
			return NewDenseTile(m.Clone())
		}
		return SVDCompressor{}.Compress(m, 1e-12)
	}
	for _, tc := range []struct{ cd, ad, bd bool }{
		{true, true, true},
		{true, true, false},
		{true, false, true},
		{true, false, false},
		{false, true, true},
		{false, true, false},
		{false, false, true},
	} {
		c, a, b := mk(tc.cd, 0), mk(tc.ad, 0.1), mk(tc.bd, 0.2)
		want := c.Dense()
		la.Gemm(-1, a.Dense(), la.NoTrans, b.Dense(), la.Transpose, 1, want)
		got := GemmLL(c, a, b, 1e-12, 0)
		if diff := frobDiff(got.Dense(), want); diff > 1e-9 {
			t.Errorf("GemmLL c=%v a=%v b=%v deviates by %g", tc.cd, tc.ad, tc.bd, diff)
		}
	}
}

func TestDenseTileKernelOps(t *testing.T) {
	a := NewDenseTile(covTile(t, 16, 16, 0.3))
	ref := a.Dense()

	// TrsmLD: A ← A·L⁻ᵀ
	l := covTile(t, 16, 16, 0.2)
	cov.AddNugget(l, 20) // diagonally dominant → safe Potrf
	if err := la.Potrf(l); err != nil {
		t.Fatal(err)
	}
	TrsmLD(l, a)
	la.Trsm(la.Right, la.Lower, la.Transpose, 1, l, ref)
	if diff := frobDiff(a.D, ref); diff > 1e-10 {
		t.Fatalf("dense TrsmLD deviates by %g", diff)
	}

	// SyrkLD: C ← C − A·Aᵀ (lower triangle)
	cd := covTile(t, 16, 16, 0.5)
	want := cd.Clone()
	SyrkLD(cd, a)
	la.Syrk(la.Lower, -1, a.D, la.NoTrans, 1, want)
	for i := 0; i < 16; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(cd.At(i, j)-want.At(i, j)) > 1e-10 {
				t.Fatalf("dense SyrkLD deviates at (%d,%d)", i, j)
			}
		}
	}

	// MatVec / MatVecT accumulate like the compressed path.
	x := make([]float64, 16)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	y1 := make([]float64, 16)
	y2 := make([]float64, 16)
	MatVec(a, 2, x, y1)
	la.Gemv(2, a.D, la.NoTrans, x, 1, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("dense MatVec deviates at %d", i)
		}
	}
	y1 = make([]float64, 16)
	y2 = make([]float64, 16)
	MatVecT(a, -1, x, y1)
	la.Gemv(-1, a.D, la.Transpose, x, 1, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("dense MatVecT deviates at %d", i)
		}
	}
}

// TestCappedCholeskyMatchesDense runs the full TLR Cholesky with a MaxRank
// cap low enough to force DE fallbacks mid-factorization and checks the
// factor still matches the dense reference — degradation must cost memory,
// never correctness.
func TestCappedCholeskyMatchesDense(t *testing.T) {
	const (
		n   = 96
		nb  = 24
		tol = 1e-9
	)
	m, dense, pts := maternTLR(t, n, nb, 0.1, tol)
	_ = pts
	ref := dense.Clone()
	if err := la.Potrf(ref); err != nil {
		t.Fatal(err)
	}

	// Cap below the ranks the tight tolerance needs.
	maxR, _ := m.RankStats()
	if maxR < 3 {
		t.Skipf("problem too easy: max rank %d", maxR)
	}
	m.MaxRank = maxR - 2

	before := obs.Default().Snapshot()
	if err := Cholesky(m, 4); err != nil {
		t.Fatal(err)
	}
	d := obs.Default().Snapshot().Sub(before)
	if d.Counters["tlr.detile.fallback"] < 1 {
		t.Fatalf("cap %d never triggered a DE fallback", m.MaxRank)
	}

	got := m.ToDense()
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if diff := math.Abs(got.At(i, j) - ref.At(i, j)); diff > worst {
				worst = diff
			}
		}
	}
	if worst > 1e4*tol {
		t.Fatalf("capped factor deviation %g", worst)
	}
}

// TestForceMissGeneratesDenseTiles drives the chaos hook end to end through
// generation: the forced tiles come out dense and the factorization still
// matches the reference solve.
func TestForceMissGeneratesDenseTiles(t *testing.T) {
	const (
		n   = 96
		nb  = 16
		tol = 1e-7
	)
	r := rng.New(7)
	pts := geom.GeneratePerturbedGrid(n, r)
	pts = geom.ApplyPerm(pts, geom.MortonOrder(pts))
	k := cov.NewKernel(cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5})

	m := NewMatrix(n, nb, tol)
	forced := map[[2]int]bool{{3, 1}: true, {5, 0}: true}
	spec := &GenSpec{
		K: k, Pts: pts, Metric: geom.Euclidean, Nugget: 1e-9,
		Comp:      SVDCompressor{},
		ForceMiss: func(mt, i, j int) bool { return forced[[2]int{i, j}] },
	}
	if err := GenCholesky(m, spec, 2); err != nil {
		t.Fatal(err)
	}
	for ij := range forced {
		tile := m.Off(ij[0], ij[1])
		if !tile.IsDense() {
			t.Fatalf("tile %v should be a DE tile", ij)
		}
	}

	// The factor must still solve the system as well as an uncapped one.
	dense := la.NewMat(n, n)
	k.Matrix(dense, pts, geom.Euclidean)
	cov.AddNugget(dense, 1e-9)
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = math.Cos(float64(i) * 0.31)
	}
	want := append([]float64(nil), rhs...)
	if err := la.Potrf(dense); err != nil {
		t.Fatal(err)
	}
	la.CholSolveVec(dense, want)
	got := append([]float64(nil), rhs...)
	m.Solve(got)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-4*(1+math.Abs(want[i])) {
			t.Fatalf("solution[%d] = %g want %g", i, got[i], want[i])
		}
	}
}
