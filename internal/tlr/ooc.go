// Out-of-core binding: wires a Matrix and its fused generation+Cholesky
// task graph to the memory-bounded tile store, so the factorization and
// the solves run under a fixed RAM budget with evicted tiles spilled to
// disk. Eviction restore (load from spill) and retry restore (SnapshotFn
// replay) compose: the executor pins every handle a task touches before
// snapshots are taken, so a replayed task always sees resident payloads.
package tlr

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/la"
	"repro/internal/runtime"
	"repro/internal/tlr/store"
)

// oocBinding links a Matrix to its store slots.
type oocBinding struct {
	st   *store.Store
	diag []*store.Slot
	off  [][]*store.Slot
}

// pinDiag/unpinDiag/pinOff/unpinOff bracket the direct tile accesses of
// the solve, logdet and reconstruction paths (read-only pins). They are
// no-ops for in-memory matrices.
func (m *Matrix) pinDiag(i int) {
	if m.ooc != nil {
		m.ooc.st.Pin(m.ooc.diag[i], store.PinRead)
	}
}

func (m *Matrix) unpinDiag(i int) {
	if m.ooc != nil {
		m.ooc.st.Unpin(m.ooc.diag[i])
	}
}

func (m *Matrix) pinOff(i, j int) {
	if m.ooc != nil {
		m.ooc.st.Pin(m.ooc.off[i][j], store.PinRead)
	}
}

func (m *Matrix) unpinOff(i, j int) {
	if m.ooc != nil {
		m.ooc.st.Unpin(m.ooc.off[i][j])
	}
}

// GenGraph bundles the fused generation+Cholesky graph with its tile
// handles, so callers can attach residency hooks after building it.
type GenGraph struct {
	G  *runtime.Graph
	DH []*runtime.Handle   // diagonal-tile handles, DH[i] ↔ m.Diag(i)
	OH [][]*runtime.Handle // off-diagonal handles, OH[i][j] ↔ m.Off(i, j)
}

// NewGenCholeskyGraph is BuildGenCholeskyGraph returning the handle arrays
// alongside the graph (AttachOOC needs them).
func NewGenCholeskyGraph(m *Matrix, spec *GenSpec, bind bool) *GenGraph {
	g := runtime.NewGraph()
	dh, oh := newTileHandles(g, m)
	AddGenTasks(g, m, spec, dh, oh, bind)
	addCholeskyTasks(g, m, dh, oh, bind)
	return &GenGraph{G: g, DH: dh, OH: oh}
}

// MinMemBudget returns the smallest sensible memory budget for a TLR run
// with tile size nb on the given worker count: each in-flight task pins up
// to three tiles plus compression scratch (all ≤ nb² doubles), and the
// budget is soft — pinned tiles are never evicted — so anything below one
// worker's working set cannot be honored even approximately.
func MinMemBudget(nb, workers int) int64 {
	if workers < 1 {
		workers = 1
	}
	return int64(workers) * 4 * int64(nb) * int64(nb) * 8
}

// AttachOOC binds m and its graph gg to the tile store st: every tile gets
// a store slot with spill/reload callbacks, every graph handle gets
// residency pin hooks, and m's solve paths pin tiles around each access.
// Call once, right after NewGenCholeskyGraph; the binding lives as long as
// the matrix. The store's budget then bounds the resident tile bytes for
// graph executions and solves alike (softly: pinned working sets are never
// evicted).
func AttachOOC(gg *GenGraph, m *Matrix, st *store.Store) {
	b := &oocBinding{st: st, diag: make([]*store.Slot, m.MT), off: make([][]*store.Slot, m.MT)}
	for i := 0; i < m.MT; i++ {
		i := i
		di := m.TileDim(i)
		b.diag[i] = st.Register(fmt.Sprintf("D[%d]", i), store.SlotFuncs{
			Bytes: func() int64 {
				if m.diag[i] == nil {
					return 0
				}
				return int64(di) * int64(di) * 8
			},
			Encode: func() []byte { return encodeMat(m.diag[i]) },
			Decode: func(buf []byte) { m.diag[i] = decodeMat(buf, di, di) },
			Drop:   func() { m.diag[i] = nil },
			Materialize: func() {
				if m.diag[i] == nil {
					m.diag[i] = la.NewMat(di, di)
				}
			},
		})
		installPin(gg.DH[i], st, b.diag[i])

		b.off[i] = make([]*store.Slot, i)
		for j := 0; j < i; j++ {
			j := j
			b.off[i][j] = st.Register(fmt.Sprintf("C[%d,%d]", i, j), store.SlotFuncs{
				Bytes: func() int64 {
					t := m.off[i][j]
					if t == nil || t.stub {
						return 0
					}
					return t.Bytes()
				},
				Encode: func() []byte { return encodeComp(m.off[i][j]) },
				Decode: func(buf []byte) { decodeCompInto(m.off[i][j], buf) },
				Drop:   func() { m.off[i][j].drop() },
				// The generation task replaces the tile object wholesale,
				// so an overwrite pin needs no allocation.
				Materialize: func() {},
			})
			installPin(gg.OH[i][j], st, b.off[i][j])
		}
	}
	m.ooc = b
}

// installPin maps the executor's residency hooks onto the store: a task
// that only writes the handle pins in overwrite mode (no disk read), any
// other access pins in update mode (load + mark dirty; the executor cannot
// distinguish read-only tasks, so updates are assumed).
func installPin(h *runtime.Handle, st *store.Store, s *store.Slot) {
	h.PinFn = func(overwrite bool) {
		if overwrite {
			st.Pin(s, store.PinOverwrite)
		} else {
			st.Pin(s, store.PinUpdate)
		}
	}
	h.UnpinFn = func() { st.Unpin(s) }
}

// drop turns the tile into a spill stub: logical shape retained, payload
// released. Decoding reverses it.
func (c *CompTile) drop() {
	if c == nil || c.stub {
		return
	}
	c.stRows, c.stCols, c.stRank, c.stDense = c.Rows(), c.Cols(), c.Rank(), c.IsDense()
	c.stub = true
	c.U, c.V, c.D = nil, nil, nil
}

// Tile serialization: a fixed header (kind, rows, cols, rank as uint32)
// followed by raw float64 payloads. Spill data never leaves the machine or
// survives the process, so no versioning or checksums.
const compHeader = 16

func encodeComp(c *CompTile) []byte {
	if c == nil || c.stub {
		panic("tlr: encode of non-resident tile")
	}
	var kind uint32
	var payload int
	if c.IsDense() {
		kind = 1
		payload = c.D.Rows * c.D.Cols
	} else {
		payload = (c.U.Rows + c.V.Rows) * c.U.Cols
	}
	buf := make([]byte, compHeader+8*payload)
	binary.LittleEndian.PutUint32(buf[0:], kind)
	binary.LittleEndian.PutUint32(buf[4:], uint32(c.Rows()))
	binary.LittleEndian.PutUint32(buf[8:], uint32(c.Cols()))
	binary.LittleEndian.PutUint32(buf[12:], uint32(c.Rank()))
	if c.IsDense() {
		encodeMatInto(buf[compHeader:], c.D)
	} else {
		n := encodeMatInto(buf[compHeader:], c.U)
		encodeMatInto(buf[compHeader+n:], c.V)
	}
	return buf
}

// decodeCompInto rebuilds the tile's payload in place from spilled bytes,
// clearing the stub state.
func decodeCompInto(c *CompTile, buf []byte) {
	kind := binary.LittleEndian.Uint32(buf[0:])
	rows := int(binary.LittleEndian.Uint32(buf[4:]))
	cols := int(binary.LittleEndian.Uint32(buf[8:]))
	rank := int(binary.LittleEndian.Uint32(buf[12:]))
	if kind == 1 {
		c.D = decodeMat(buf[compHeader:], rows, cols)
		c.U, c.V = nil, nil
	} else {
		c.U = decodeMat(buf[compHeader:], rows, rank)
		c.V = decodeMat(buf[compHeader+8*rows*rank:], cols, rank)
		c.D = nil
	}
	c.stub = false
}

// encodeMat serializes a compact (Stride == Cols) matrix's data.
func encodeMat(m *la.Mat) []byte {
	buf := make([]byte, 8*m.Rows*m.Cols)
	encodeMatInto(buf, m)
	return buf
}

// encodeMatInto writes m's elements into buf and returns the bytes used.
func encodeMatInto(buf []byte, m *la.Mat) int {
	n := 0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			binary.LittleEndian.PutUint64(buf[n:], math.Float64bits(v))
			n += 8
		}
	}
	return n
}

// decodeMat rebuilds an r×c matrix from encodeMat bytes.
func decodeMat(buf []byte, r, c int) *la.Mat {
	m := la.NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return m
}
