package tlr

import (
	"repro/internal/la"
)

// MatMul computes C += alpha·A·B for a TLR tile and a dense block B
// (cols(tile)×r), the BLAS3 generalization of MatVec.
func MatMul(a *CompTile, alpha float64, b, c *la.Mat) {
	if a.IsDense() {
		la.Gemm(alpha, a.D, la.NoTrans, b, la.NoTrans, 1, c)
		return
	}
	k := a.Rank()
	if k == 0 {
		return
	}
	tmp := la.NewMat(k, b.Cols)
	la.Gemm(1, a.V, la.Transpose, b, la.NoTrans, 0, tmp)
	la.Gemm(alpha, a.U, la.NoTrans, tmp, la.NoTrans, 1, c)
}

// MatMulT computes C += alpha·Aᵀ·B (= alpha·V·(Uᵀ·B) when compressed).
func MatMulT(a *CompTile, alpha float64, b, c *la.Mat) {
	if a.IsDense() {
		la.Gemm(alpha, a.D, la.Transpose, b, la.NoTrans, 1, c)
		return
	}
	k := a.Rank()
	if k == 0 {
		return
	}
	tmp := la.NewMat(k, b.Cols)
	la.Gemm(1, a.U, la.Transpose, b, la.NoTrans, 0, tmp)
	la.Gemm(alpha, a.V, la.NoTrans, tmp, la.NoTrans, 1, c)
}

func (m *Matrix) rowBlock(b *la.Mat, i int) *la.Mat {
	return b.View(i*m.NB, 0, m.TileDim(i), b.Cols)
}

// ForwardSolveMat solves L·X = B in place against a TLR-factored matrix for
// an n×r right-hand-side block.
//
// B is processed in NB-wide column blocks, making an n×r solve the exact
// concatenation of independent n×NB solves: the GEMM kernel dispatch never
// sees a width that depends on r, so callers that chunk their right-hand
// sides (the bounded-memory prediction-variance path) get bitwise-identical
// results to the one-shot call.
func (m *Matrix) ForwardSolveMat(b *la.Mat) {
	if b.Rows != m.N {
		panic("tlr: ForwardSolveMat row mismatch")
	}
	for c0 := 0; c0 < b.Cols; c0 += m.NB {
		bc := b.View(0, c0, b.Rows, min(m.NB, b.Cols-c0))
		for i := 0; i < m.MT; i++ {
			bi := m.rowBlock(bc, i)
			for j := 0; j < i; j++ {
				m.pinOff(i, j)
				MatMul(m.off[i][j], -1, m.rowBlock(bc, j), bi)
				m.unpinOff(i, j)
			}
			m.pinDiag(i)
			la.Trsm(la.Left, la.Lower, la.NoTrans, 1, m.diag[i], bi)
			m.unpinDiag(i)
		}
	}
}

// BackwardSolveMat solves Lᵀ·X = B in place against a TLR-factored matrix,
// with the same NB-wide column blocking as ForwardSolveMat.
func (m *Matrix) BackwardSolveMat(b *la.Mat) {
	if b.Rows != m.N {
		panic("tlr: BackwardSolveMat row mismatch")
	}
	for c0 := 0; c0 < b.Cols; c0 += m.NB {
		bc := b.View(0, c0, b.Rows, min(m.NB, b.Cols-c0))
		for i := m.MT - 1; i >= 0; i-- {
			bi := m.rowBlock(bc, i)
			for j := m.MT - 1; j > i; j-- {
				m.pinOff(j, i)
				MatMulT(m.off[j][i], -1, m.rowBlock(bc, j), bi)
				m.unpinOff(j, i)
			}
			m.pinDiag(i)
			la.Trsm(la.Left, la.Lower, la.Transpose, 1, m.diag[i], bi)
			m.unpinDiag(i)
		}
	}
}

// SolveMat computes A⁻¹·B in place given the TLR Cholesky factors.
func (m *Matrix) SolveMat(b *la.Mat) {
	m.ForwardSolveMat(b)
	m.BackwardSolveMat(b)
}
