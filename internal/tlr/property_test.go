package tlr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/la"
	"repro/internal/rng"
)

// Property: compressing an exactly rank-k matrix recovers it with rank ≤ k
// (plus slack for the rank-1 floor) and error at the threshold.
func TestQuickCompressExactLowRank(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed) + 1)
		m := 8 + r.Intn(40)
		n := 8 + r.Intn(40)
		k := 1 + r.Intn(min(m, n)/2+1)
		x := la.NewMat(m, k)
		y := la.NewMat(n, k)
		for i := range x.Data {
			x.Data[i] = r.Norm()
		}
		for i := range y.Data {
			y.Data[i] = r.Norm()
		}
		a := la.NewMat(m, n)
		la.Gemm(1, x, la.NoTrans, y, la.Transpose, 0, a)
		c := SVDCompressor{}.Compress(a, 1e-9)
		if c.Rank() > k {
			return false
		}
		d := c.Dense()
		d.Sub(a)
		return d.FrobNorm() <= 1e-7*a.FrobNorm()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: AddLowRank is linear — adding then subtracting the same update
// returns (to within the threshold) the original tile.
func TestQuickAddLowRankInverts(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed) + 2)
		n := 12 + r.Intn(24)
		base := la.NewMat(n, n)
		for i := range base.Data {
			base.Data[i] = r.Norm()
		}
		c0 := SVDCompressor{}.Compress(base, 1e-10)
		x := la.NewMat(n, 2)
		y := la.NewMat(n, 2)
		for i := range x.Data {
			x.Data[i] = r.Norm()
		}
		for i := range y.Data {
			y.Data[i] = r.Norm()
		}
		c1 := AddLowRank(c0, 1, x, y, 1e-10, 0)
		c2 := AddLowRank(c1, -1, x, y, 1e-10, 0)
		d := c2.Dense()
		d.Sub(c0.Dense())
		return d.FrobNorm() <= 1e-6*(c0.Dense().FrobNorm()+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: rank never exceeds matrix dimensions and Bytes matches the
// factor shapes.
func TestQuickCompTileInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed) + 3)
		m := 4 + r.Intn(30)
		n := 4 + r.Intn(30)
		a := la.NewMat(m, n)
		for i := range a.Data {
			a.Data[i] = r.Norm()
		}
		tol := math.Pow(10, -1-float64(r.Intn(9)))
		c := ACACompressor{}.Compress(a, tol)
		if c.Rank() < 1 || c.Rank() > min(m, n) {
			return false
		}
		if c.Rows() != m || c.Cols() != n {
			return false
		}
		return c.Bytes() == int64(m+n)*int64(c.Rank())*8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
