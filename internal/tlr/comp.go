// Package tlr implements the HiCMA substitute: Tile Low-Rank compressed
// tiles, compression backends (truncated SVD, randomized SVD, ACA), low-rank
// addition with recompression, and the TLR Cholesky factorization with its
// triangular solves and log-determinant (paper §V).
//
// A TLR matrix stores dense diagonal tiles and each off-diagonal tile (i, j)
// as a product U·Vᵀ with per-tile rank k chosen so the compression error is
// below a user-defined accuracy threshold. All TLR arithmetic preserves that
// threshold through QR+SVD recompression.
package tlr

import (
	"fmt"
	"math"

	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/rng"
)

// cntRecompress counts QR+SVD recompressions — the TLR update path's
// dominant overhead, proportional to the SYRK/GEMM traffic of the
// factorization rather than the tile count.
var cntRecompress = obs.GetCounter("tlr.recompress.calls")

// CompTile is a rank-k tile A ≈ U·Vᵀ with U (rows×k) and V (cols×k) — or,
// when the compressed representation cannot meet its accuracy/rank budget,
// an exact dense (DE) tile stored in D with U and V nil (HiCMA's mixed
// dense/low-rank tile structure). Every TLR kernel branches on IsDense, so
// the two representations mix freely within one matrix.
type CompTile struct {
	U, V *la.Mat
	D    *la.Mat

	// Spill stub: when the out-of-core store evicts this tile (ooc.go) the
	// factors above are nil and these fields keep the logical shape, so
	// Rank/Rows/Cols/Bytes — the rank-statistics and footprint accounting —
	// answer without a disk load. Kernels touching actual entries require
	// the tile to be pinned resident.
	stub    bool
	stRows  int
	stCols  int
	stRank  int
	stDense bool
}

// NewDenseTile wraps a dense matrix as an exact (DE) tile. The tile takes
// ownership of d.
func NewDenseTile(d *la.Mat) *CompTile { return &CompTile{D: d} }

// IsDense reports whether the tile stores its entries exactly (DE fallback)
// rather than as low-rank factors.
func (c *CompTile) IsDense() bool {
	if c.stub {
		return c.stDense
	}
	return c.D != nil
}

// Rank returns the stored rank (the full min dimension for a dense tile).
func (c *CompTile) Rank() int {
	if c.stub {
		return c.stRank
	}
	if c.IsDense() {
		return min(c.D.Rows, c.D.Cols)
	}
	return c.U.Cols
}

// Rows and Cols return the tile's logical dimensions.
func (c *CompTile) Rows() int {
	if c.stub {
		return c.stRows
	}
	if c.IsDense() {
		return c.D.Rows
	}
	return c.U.Rows
}

// Cols returns the number of columns of the represented tile.
func (c *CompTile) Cols() int {
	if c.stub {
		return c.stCols
	}
	if c.IsDense() {
		return c.D.Cols
	}
	return c.V.Rows
}

// Bytes returns the storage footprint of the representation (the logical
// footprint for a spilled stub — the bytes the tile occupies when resident).
func (c *CompTile) Bytes() int64 {
	if c.IsDense() {
		return int64(c.Rows()) * int64(c.Cols()) * 8
	}
	return int64(c.Rows()+c.Cols()) * int64(c.Rank()) * 8
}

// Dense reconstructs the tile as a dense matrix (a copy in every case).
func (c *CompTile) Dense() *la.Mat {
	if c.IsDense() {
		return c.D.Clone()
	}
	out := la.NewMat(c.Rows(), c.Cols())
	if c.Rank() == 0 {
		return out // exact zero tile
	}
	la.Gemm(1, c.U, la.NoTrans, c.V, la.Transpose, 0, out)
	return out
}

// Clone deep-copies the tile.
func (c *CompTile) Clone() *CompTile {
	if c.IsDense() {
		return &CompTile{D: c.D.Clone()}
	}
	return &CompTile{U: c.U.Clone(), V: c.V.Clone()}
}

// Compressor turns a dense tile into a CompTile with error below tol.
type Compressor interface {
	// Compress returns a low-rank approximation with Frobenius-relative
	// error ≈ tol: ‖A − UVᵀ‖_F ≤ tol·‖A‖_F.
	Compress(a *la.Mat, tol float64) *CompTile
	Name() string
}

// TileCompressor is implemented by stochastic backends that must be
// deterministic under concurrent per-tile compression: ForTile returns an
// instance whose random stream depends only on the tile coordinates (and the
// backend's seed), never on execution order. Deterministic backends simply
// don't implement it.
type TileCompressor interface {
	Compressor
	ForTile(i, j int) Compressor
}

// forTile resolves the compressor instance for tile (i, j): per-tile seeded
// for stochastic backends, comp itself otherwise.
func forTile(comp Compressor, i, j int) Compressor {
	if tc, ok := comp.(TileCompressor); ok {
		return tc.ForTile(i, j)
	}
	return comp
}

// frobRank returns the smallest k whose Frobenius tail is below tol·‖A‖_F,
// given the (descending) singular values.
func frobRank(s []float64, tol float64) int {
	var total float64
	for _, v := range s {
		total += v * v
	}
	if total == 0 {
		return 1
	}
	budget := tol * tol * total
	var tail float64
	k := len(s)
	for k > 1 {
		sv := s[k-1]
		if tail+sv*sv > budget {
			break
		}
		tail += sv * sv
		k--
	}
	return k
}

// fromSVD assembles U·Vᵀ = (U_k·Σ_k)·V_kᵀ from a thin SVD truncated at k.
func fromSVD(u *la.Mat, s []float64, v *la.Mat, k int) *CompTile {
	cu := la.NewMat(u.Rows, k)
	cv := la.NewMat(v.Rows, k)
	for i := 0; i < u.Rows; i++ {
		for j := 0; j < k; j++ {
			cu.Set(i, j, u.At(i, j)*s[j])
		}
	}
	for i := 0; i < v.Rows; i++ {
		for j := 0; j < k; j++ {
			cv.Set(i, j, v.At(i, j))
		}
	}
	return &CompTile{U: cu, V: cv}
}

// SVDCompressor compresses via a full thin (Jacobi) SVD — the accuracy
// reference among the backends.
type SVDCompressor struct{}

// Name implements Compressor.
func (SVDCompressor) Name() string { return "svd" }

// Compress implements Compressor.
func (SVDCompressor) Compress(a *la.Mat, tol float64) *CompTile {
	u, s, v := la.SVDThin(a)
	return fromSVD(u, s, v, frobRank(s, tol))
}

// RSVDCompressor compresses via randomized range finding (Halko/Martinsson/
// Tropp) with oversampling and optional power iterations, then an exact SVD
// of the small projected matrix. Much cheaper than full SVD when the
// numerical rank is far below the tile size.
type RSVDCompressor struct {
	// Oversample extends the sketch width beyond the rank guess (default 10).
	Oversample int
	// PowerIters stabilizes the range estimate for slowly decaying spectra
	// (default 1); set negative to disable power iterations entirely.
	PowerIters int
	// Seed parameterizes the deterministic per-tile generators handed out by
	// ForTile and the default generator used when Rng is nil (default
	// 0x5eed).
	Seed uint64
	// Rng provides the Gaussian sketch; a fixed default seed keeps runs
	// deterministic when nil. A non-nil Rng is mutated by Compress, so it
	// must not be shared across concurrent compressions — parallel callers
	// go through ForTile, which derives an independent per-tile stream
	// instead of touching this field.
	Rng *rng.Rand
}

// Name implements Compressor.
func (RSVDCompressor) Name() string { return "rsvd" }

// ForTile implements TileCompressor: the returned instance draws its sketch
// from a stream seeded by (Seed, i, j) only, so compressing tile (i, j) is
// bitwise-reproducible at any worker count and in any execution order.
func (r RSVDCompressor) ForTile(i, j int) Compressor {
	seed := r.Seed
	if seed == 0 {
		seed = 0x5eed
	}
	// SplitMix64-style mixing of the tile coordinates into the seed; rng.New
	// runs the result through SplitMix64 again, so nearby tiles land on
	// well-separated states.
	s := seed ^ (uint64(i)*0x9e3779b97f4a7c15 + uint64(j)*0xbf58476d1ce4e5b9 + 0x2545f4914f6cdd1d)
	r.Rng = rng.New(s)
	return r
}

// Compress implements Compressor.
func (r RSVDCompressor) Compress(a *la.Mat, tol float64) *CompTile {
	over := r.Oversample
	if over <= 0 {
		over = 10
	}
	iters := r.PowerIters
	if iters < 0 {
		iters = 0
	} else if r.PowerIters == 0 {
		iters = 1
	}
	gen := r.Rng
	if gen == nil {
		seed := r.Seed
		if seed == 0 {
			seed = 0x5eed
		}
		gen = rng.New(seed)
	}
	m, n := a.Rows, a.Cols
	maxK := min(m, n)
	// Work to a tighter internal target so sketch slack plus truncation
	// stays within the caller's tol.
	tol *= 0.25

	// Adaptive doubling of the sketch until the projected approximation
	// captures the Frobenius mass to tol, or we hit full rank.
	guess := 8
	for {
		w := guess + over
		if w > maxK {
			w = maxK
		}
		omega := la.NewMat(n, w)
		for i := range omega.Data {
			omega.Data[i] = gen.Norm()
		}
		y := la.NewMat(m, w)
		la.Gemm(1, a, la.NoTrans, omega, la.NoTrans, 0, y)
		for it := 0; it < iters; it++ {
			q, _ := la.QRThin(y)
			z := la.NewMat(n, w)
			la.Gemm(1, a, la.Transpose, q, la.NoTrans, 0, z)
			qz, _ := la.QRThin(z)
			y = la.NewMat(m, w)
			la.Gemm(1, a, la.NoTrans, qz, la.NoTrans, 0, y)
		}
		q, _ := la.QRThin(y)
		// B = Qᵀ A  (w×n)
		b := la.NewMat(q.Cols, n)
		la.Gemm(1, q, la.Transpose, a, la.NoTrans, 0, b)
		ub, s, v := la.SVDThin(b)
		var aF2 float64
		for i := 0; i < m; i++ {
			row := a.Row(i)
			for _, x := range row {
				aF2 += x * x
			}
		}
		// Randomized residual estimate: for ω ~ N(0, I),
		// E‖(A − QQᵀA)ω‖² = ‖A − QQᵀA‖_F². A direct difference in vector
		// space resolves residuals far below the ε_machine floor that a
		// Frobenius-mass comparison would hit.
		const probes = 6
		var resEst float64
		for p := 0; p < probes; p++ {
			omega := make([]float64, n)
			gen.NormSlice(omega)
			yv := make([]float64, m)
			la.Gemv(1, a, la.NoTrans, omega, 0, yv)
			zv := make([]float64, q.Cols)
			la.Gemv(1, q, la.Transpose, yv, 0, zv)
			qz := make([]float64, m)
			la.Gemv(1, q, la.NoTrans, zv, 0, qz)
			for i := range yv {
				d := yv[i] - qz[i]
				resEst += d * d
			}
		}
		resEst /= probes
		captured := resEst <= 0.25*tol*tol*aF2 || w >= maxK
		if captured {
			k := frobRankAbsolute(s, tol, aF2)
			u := la.NewMat(m, k)
			// U = Q · Ub_k
			ubk := la.NewMat(ub.Rows, k)
			for i := 0; i < ub.Rows; i++ {
				for j := 0; j < k; j++ {
					ubk.Set(i, j, ub.At(i, j))
				}
			}
			la.Gemm(1, q, la.NoTrans, ubk, la.NoTrans, 0, u)
			return fromSVD(u, s, v, k)
		}
		guess *= 2
	}
}

// frobRankAbsolute picks the truncation rank measuring the tail against the
// full Frobenius mass aF2 of the original matrix (the sketch may not carry
// all of it). The tail is accumulated from the smallest singular values
// upward — computing it as aF2 minus a prefix would drown tails near
// ε·aF2 in the rounding noise of the two large sums and truncate on noise.
func frobRankAbsolute(s []float64, tol, aF2 float64) int {
	if aF2 == 0 {
		return 1
	}
	budget := tol * tol * aF2
	var total float64
	for _, v := range s {
		total += v * v
	}
	// mass the sketch did not capture; clamp the rounding-negative case
	tail := aF2 - total
	if tail < 0 {
		tail = 0
	}
	k := len(s)
	for k > 1 {
		sv := s[k-1]
		if tail+sv*sv > budget {
			break
		}
		tail += sv * sv
		k--
	}
	return k
}

// ACACompressor implements Adaptive Cross Approximation with partial
// pivoting: it builds the approximation one rank-1 cross at a time without
// ever forming a full SVD, stopping when the estimated residual drops below
// tol. A final QR+SVD recompression trims overshoot.
type ACACompressor struct{}

// Name implements Compressor.
func (ACACompressor) Name() string { return "aca" }

// Compress implements Compressor.
func (ACACompressor) Compress(a *la.Mat, tol float64) *CompTile {
	m, n := a.Rows, a.Cols
	maxK := min(m, n)
	res := a.Clone() // residual; fine at tile sizes
	var us, vs []*la.Mat
	var aF float64
	for i := 0; i < m; i++ {
		for _, v := range res.Row(i) {
			aF += v * v
		}
	}
	aF = math.Sqrt(aF)
	if aF == 0 {
		// Exact zero tile: rank 0, zero storage. Rank-1 zero factors would
		// inflate Bytes()/RankStats(); all TLR arithmetic and Recompress
		// treat rank 0 as a structural no-op.
		return &CompTile{U: la.NewMat(m, 0), V: la.NewMat(n, 0)}
	}
	var approxF2 float64
	for k := 0; k < maxK; k++ {
		// partial pivoting: largest absolute entry of the residual
		bi, bj, best := 0, 0, 0.0
		for i := 0; i < m; i++ {
			row := res.Row(i)
			for j, v := range row {
				if av := math.Abs(v); av > best {
					best, bi, bj = av, i, j
				}
			}
		}
		if best == 0 {
			break
		}
		piv := res.At(bi, bj)
		u := la.NewMat(m, 1)
		v := la.NewMat(n, 1)
		for j := 0; j < n; j++ {
			v.Set(j, 0, res.At(bi, j))
		}
		inv := 1 / piv
		for i := 0; i < m; i++ {
			u.Set(i, 0, res.At(i, bj)*inv)
		}
		// residual update R -= u vᵀ
		la.Gemm(-1, u, la.NoTrans, v, la.Transpose, 1, res)
		us = append(us, u)
		vs = append(vs, v)
		un := u.FrobNorm()
		vn := v.FrobNorm()
		approxF2 += un * un * vn * vn
		if un*vn <= tol*math.Sqrt(approxF2) {
			break
		}
	}
	k := len(us)
	cu := la.NewMat(m, k)
	cv := la.NewMat(n, k)
	for c := 0; c < k; c++ {
		for i := 0; i < m; i++ {
			cu.Set(i, c, us[c].At(i, 0))
		}
		for j := 0; j < n; j++ {
			cv.Set(j, c, vs[c].At(j, 0))
		}
	}
	t := &CompTile{U: cu, V: cv}
	// ACA overshoots rank; recompress to the target accuracy.
	return Recompress(t, tol)
}

// Recompress re-orthogonalizes a CompTile and truncates it back to tol using
// QR factors of U and V and an SVD of the small core. Dense tiles are exact
// and pass through untouched.
func Recompress(c *CompTile, tol float64) *CompTile {
	if c.IsDense() || c.Rank() == 0 {
		return c
	}
	cntRecompress.Inc()
	qu, ru := la.QRThin(c.U)
	qv, rv := la.QRThin(c.V)
	core := la.NewMat(ru.Rows, rv.Rows)
	la.Gemm(1, ru, la.NoTrans, rv, la.Transpose, 0, core)
	u, s, v := la.SVDThin(core)
	k := frobRank(s, tol)
	// U' = Qu · (U_k Σ_k), V' = Qv · V_k
	usk := la.NewMat(u.Rows, k)
	for i := 0; i < u.Rows; i++ {
		for j := 0; j < k; j++ {
			usk.Set(i, j, u.At(i, j)*s[j])
		}
	}
	vk := la.NewMat(v.Rows, k)
	for i := 0; i < v.Rows; i++ {
		for j := 0; j < k; j++ {
			vk.Set(i, j, v.At(i, j))
		}
	}
	nu := la.NewMat(qu.Rows, k)
	nv := la.NewMat(qv.Rows, k)
	la.Gemm(1, qu, la.NoTrans, usk, la.NoTrans, 0, nu)
	la.Gemm(1, qv, la.NoTrans, vk, la.NoTrans, 0, nv)
	return &CompTile{U: nu, V: nv}
}

// CompressorByName returns the named backend ("svd", "rsvd", "aca").
func CompressorByName(name string) (Compressor, error) {
	switch name {
	case "svd", "":
		return SVDCompressor{}, nil
	case "rsvd":
		return RSVDCompressor{}, nil
	case "aca":
		return ACACompressor{}, nil
	}
	return nil, fmt.Errorf("tlr: unknown compressor %q", name)
}
