package tlr

import (
	"math"
	"testing"

	"repro/internal/la"
	"repro/internal/rng"
)

func TestMatMulMatchesDense(t *testing.T) {
	a := covTile(t, 20, 16, 0.6)
	c := SVDCompressor{}.Compress(a, 1e-12)
	r := rng.New(41)
	b := la.NewMat(16, 5)
	for i := range b.Data {
		b.Data[i] = r.Norm()
	}
	got := la.NewMat(20, 5)
	MatMul(c, 2, b, got)
	want := la.NewMat(20, 5)
	la.Gemm(2, a, la.NoTrans, b, la.NoTrans, 0, want)
	if !got.Equalish(want, 1e-9) {
		t.Fatal("MatMul mismatch")
	}

	bt := la.NewMat(20, 3)
	for i := range bt.Data {
		bt.Data[i] = r.Norm()
	}
	gotT := la.NewMat(16, 3)
	MatMulT(c, -1, bt, gotT)
	wantT := la.NewMat(16, 3)
	la.Gemm(-1, a, la.Transpose, bt, la.NoTrans, 0, wantT)
	if !gotT.Equalish(wantT, 1e-9) {
		t.Fatal("MatMulT mismatch")
	}
}

func TestSolveMatMatchesVectorSolve(t *testing.T) {
	n := 96
	m, _, _ := maternTLR(t, n, 24, 0.1, 1e-10)
	if err := Cholesky(m, 2); err != nil {
		t.Fatal(err)
	}
	r := rng.New(42)
	const nrhs = 4
	b := la.NewMat(n, nrhs)
	for i := range b.Data {
		b.Data[i] = r.Norm()
	}
	// column-by-column via the vector path
	want := la.NewMat(n, nrhs)
	for j := 0; j < nrhs; j++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		m.Solve(col)
		for i := 0; i < n; i++ {
			want.Set(i, j, col[i])
		}
	}
	got := b.Clone()
	m.SolveMat(got)
	if !got.Equalish(want, 1e-10) {
		t.Fatal("SolveMat disagrees with per-column Solve")
	}
}

func TestForwardSolveMatAgainstDense(t *testing.T) {
	n := 120
	m, dense, _ := maternTLR(t, n, 30, 0.1, 1e-11)
	ref := dense.Clone()
	if err := la.Potrf(ref); err != nil {
		t.Fatal(err)
	}
	if err := Cholesky(m, 2); err != nil {
		t.Fatal(err)
	}
	r := rng.New(43)
	b := la.NewMat(n, 3)
	for i := range b.Data {
		b.Data[i] = r.Norm()
	}
	want := b.Clone()
	la.Trsm(la.Left, la.Lower, la.NoTrans, 1, ref, want)
	got := b.Clone()
	m.ForwardSolveMat(got)
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			if d := math.Abs(got.At(i, j) - want.At(i, j)); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-5 {
		t.Fatalf("TLR forward multi-solve deviates by %g", worst)
	}
}
