package geom

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestGeneratePerturbedGridCount(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{0, 1, 4, 10, 100, 400, 401} {
		pts := GeneratePerturbedGrid(n, r)
		if len(pts) != n {
			t.Fatalf("n=%d: got %d points", n, len(pts))
		}
	}
}

func TestGeneratePerturbedGridInUnitSquare(t *testing.T) {
	r := rng.New(2)
	pts := GeneratePerturbedGrid(400, r)
	for _, p := range pts {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("point out of unit square: %+v", p)
		}
	}
}

func TestGeneratePerturbedGridSeparation(t *testing.T) {
	// Jitter is ±0.4 cells so two points in adjacent cells are at least 0.2
	// cell widths apart; with m=20 that is 0.01 in unit coordinates.
	r := rng.New(3)
	pts := GeneratePerturbedGrid(400, r)
	if d := MinPairDistance(Euclidean, pts); d < 0.2/20 {
		t.Fatalf("points too close: min distance %g", d)
	}
}

func TestGeneratePerturbedGridDeterministic(t *testing.T) {
	a := GeneratePerturbedGrid(100, rng.New(7))
	b := GeneratePerturbedGrid(100, rng.New(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different locations")
		}
	}
}

func TestGenerateGrid(t *testing.T) {
	pts := GenerateGrid(3)
	if len(pts) != 9 {
		t.Fatalf("want 9 points, got %d", len(pts))
	}
	if pts[0].X != pts[1].X || pts[0].Y == pts[1].Y {
		t.Fatalf("grid order unexpected: %+v %+v", pts[0], pts[1])
	}
}

func TestHaversineKnownValues(t *testing.T) {
	// Antipodal points on the equator: distance = pi * r.
	d := Haversine(Point{X: 0, Y: 0}, Point{X: 180, Y: 0}, 1)
	if math.Abs(d-math.Pi) > 1e-12 {
		t.Errorf("antipodal: got %g want pi", d)
	}
	// Pole to pole.
	d = Haversine(Point{X: 0, Y: 90}, Point{X: 0, Y: -90}, 1)
	if math.Abs(d-math.Pi) > 1e-12 {
		t.Errorf("pole-to-pole: got %g want pi", d)
	}
	// 1 degree of longitude on the equator = pi/180.
	d = Haversine(Point{X: 0, Y: 0}, Point{X: 1, Y: 0}, 1)
	if math.Abs(d-math.Pi/180) > 1e-12 {
		t.Errorf("1 degree: got %g", d)
	}
	// Symmetry and identity.
	a, b := Point{X: 30, Y: 20}, Point{X: -40, Y: 55}
	if Haversine(a, b, 2.5) != Haversine(b, a, 2.5) {
		t.Error("haversine not symmetric")
	}
	if Haversine(a, a, 1) != 0 {
		t.Error("haversine self-distance nonzero")
	}
}

func TestDistanceMetrics(t *testing.T) {
	a, b := Point{X: 0, Y: 0}, Point{X: 3, Y: 4}
	if Distance(Euclidean, a, b) != 5 {
		t.Error("euclidean 3-4-5 failed")
	}
	if Distance(GreatCircle, a, a) != 0 {
		t.Error("great-circle self-distance nonzero")
	}
}

func TestMortonOrderIsPermutation(t *testing.T) {
	r := rng.New(4)
	pts := GeneratePerturbedGrid(257, r)
	perm := MortonOrder(pts)
	seen := make([]bool, len(pts))
	for _, p := range perm {
		if seen[p] {
			t.Fatal("morton order repeated an index")
		}
		seen[p] = true
	}
}

func TestMortonOrderImprovesLocality(t *testing.T) {
	// Successive points along the Morton curve should be much closer on
	// average than under a random ordering.
	r := rng.New(5)
	pts := GeneratePerturbedGrid(1024, r)
	perm := MortonOrder(pts)
	ordered := ApplyPerm(pts, perm)
	var mortonHop, rawHop float64
	for i := 1; i < len(pts); i++ {
		mortonHop += Distance(Euclidean, ordered[i-1], ordered[i])
		rawHop += Distance(Euclidean, pts[i-1], pts[i])
	}
	// Raw grid order jumps a full row at each row boundary but is already
	// fairly local; shuffled order is the adversarial case.
	shuf := ApplyPerm(pts, r.Perm(len(pts)))
	var shufHop float64
	for i := 1; i < len(pts); i++ {
		shufHop += Distance(Euclidean, shuf[i-1], shuf[i])
	}
	if mortonHop >= shufHop/4 {
		t.Fatalf("morton ordering not local: morton=%g shuffled=%g", mortonHop, shufHop)
	}
}

func TestApplyPerm(t *testing.T) {
	pts := []Point{{1, 1}, {2, 2}, {3, 3}}
	v := []float64{10, 20, 30}
	perm := []int{2, 0, 1}
	gp := ApplyPerm(pts, perm)
	gv := ApplyPermFloat(v, perm)
	if gp[0] != (Point{3, 3}) || gv[0] != 30 || gp[2] != (Point{2, 2}) || gv[2] != 20 {
		t.Fatalf("permutation wrong: %+v %v", gp, gv)
	}
}

func TestPartitionGridCoversAllPoints(t *testing.T) {
	r := rng.New(6)
	pts := GeneratePerturbedGrid(500, r)
	parts := PartitionGrid(pts, 4, 2)
	if len(parts) != 8 {
		t.Fatalf("want 8 regions, got %d", len(parts))
	}
	total := 0
	seen := make([]bool, len(pts))
	for _, part := range parts {
		for _, idx := range part {
			if seen[idx] {
				t.Fatal("point assigned to two regions")
			}
			seen[idx] = true
			total++
		}
	}
	if total != len(pts) {
		t.Fatalf("regions cover %d of %d points", total, len(pts))
	}
}

func TestPartitionGridBalance(t *testing.T) {
	// A dense uniform grid should split nearly evenly.
	pts := GenerateGrid(40) // 1600 points
	parts := PartitionGrid(pts, 2, 2)
	for i, p := range parts {
		if len(p) != 400 {
			t.Fatalf("region %d has %d points, want 400", i, len(p))
		}
	}
}

func TestRegionContains(t *testing.T) {
	r := Region{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	if !r.Contains(Point{0.5, 0.5}) || r.Contains(Point{1.5, 0.5}) || r.Contains(Point{1, 0.5}) {
		t.Fatal("region containment wrong")
	}
}

func TestQuickHaversineTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		norm := func(lon, lat float64) Point {
			return Point{X: math.Mod(math.Abs(lon), 360) - 180, Y: math.Mod(math.Abs(lat), 180) - 90}
		}
		a, b, c := norm(ax, ay), norm(bx, by), norm(cx, cy)
		ab := Haversine(a, b, 1)
		bc := Haversine(b, c, 1)
		ac := Haversine(a, c, 1)
		return ac <= ab+bc+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
