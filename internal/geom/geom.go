// Package geom provides the spatial-geometry substrate: location generation
// (the paper's perturbed-grid scheme, §VII, plus clustered geometries),
// distance metrics (Euclidean and great-circle/haversine), the spatial
// ordering engine (Morton and Hilbert space-filling curves and KD-tree block
// clustering — see Ordering — which give the off-diagonal tiles of the
// covariance matrix the rank decay TLR compression exploits), and
// rectangular region partitioning used by the real-dataset experiments.
package geom

import (
	"math"

	"repro/internal/rng"
)

// Point is a spatial location. For planar data (X, Y) are unit-square
// coordinates; for spherical data X is longitude and Y latitude, in degrees.
type Point struct {
	X, Y float64
}

// Metric measures the distance between two points.
type Metric int

const (
	// Euclidean is the planar L2 distance (synthetic experiments).
	Euclidean Metric = iota
	// GreatCircle is the haversine distance on a unit sphere with
	// coordinates in degrees (real-dataset experiments, paper eq. 6).
	GreatCircle
	// GreatCircleEarth100km is the haversine distance on an Earth-radius
	// sphere measured in units of 100 km (the working unit of the simulated
	// wind-speed dataset; Earth radius 6371 km → r = 63.71).
	GreatCircleEarth100km
	// Chordal is the straight-line (through-the-sphere) distance on the
	// unit sphere: 2·sin(gcd/2). Unlike the great-circle metric, Matérn
	// covariances of any smoothness remain positive definite under the
	// chordal metric, so it is the safe choice for ν > 1/2 on spheres.
	Chordal
)

// Distance returns the distance between a and b under m.
func Distance(m Metric, a, b Point) float64 {
	switch m {
	case Euclidean:
		dx := a.X - b.X
		dy := a.Y - b.Y
		return math.Sqrt(dx*dx + dy*dy)
	case GreatCircle:
		return Haversine(a, b, 1)
	case GreatCircleEarth100km:
		return Haversine(a, b, 63.71)
	case Chordal:
		return 2 * math.Sin(Haversine(a, b, 1)/2)
	default:
		panic("geom: unknown metric")
	}
}

// Haversine returns the great-circle distance between two (lon, lat) points
// given in degrees, on a sphere of radius r (paper eq. 6).
func Haversine(a, b Point, r float64) float64 {
	const degToRad = math.Pi / 180
	phi1 := a.Y * degToRad
	phi2 := b.Y * degToRad
	dPhi := phi2 - phi1
	dLam := (b.X - a.X) * degToRad
	h := hav(dPhi) + math.Cos(phi1)*math.Cos(phi2)*hav(dLam)
	if h > 1 {
		h = 1
	}
	return 2 * r * math.Asin(math.Sqrt(h))
}

func hav(theta float64) float64 {
	s := math.Sin(theta / 2)
	return s * s
}

// GeneratePerturbedGrid produces n irregularly spaced locations in the unit
// square using the paper's scheme: a ⌈√n⌉×⌈√n⌉ regular grid with each point
// jittered by U(−0.4, 0.4) grid cells, guaranteeing no two locations are too
// close. When n is not a perfect square a uniform random subset of grid cells
// is used. The output order is the raw grid order; callers who want TLR-
// friendly ordering should apply MortonOrder.
func GeneratePerturbedGrid(n int, r *rng.Rand) []Point {
	if n <= 0 {
		return nil
	}
	m := int(math.Ceil(math.Sqrt(float64(n))))
	cells := m * m
	pts := make([]Point, 0, n)
	selected := make([]bool, cells)
	if cells == n {
		for i := range selected {
			selected[i] = true
		}
	} else {
		for _, idx := range r.Perm(cells)[:n] {
			selected[idx] = true
		}
	}
	inv := 1 / float64(m)
	for row := 0; row < m; row++ {
		for col := 0; col < m; col++ {
			if !selected[row*m+col] {
				continue
			}
			x := (float64(row) + 0.5 + r.Uniform(-0.4, 0.4)) * inv
			y := (float64(col) + 0.5 + r.Uniform(-0.4, 0.4)) * inv
			pts = append(pts, Point{X: x, Y: y})
		}
	}
	return pts
}

// GenerateGrid produces an exact m×m regular unit-square grid (used by the
// simulated raster datasets, which mimic gridded satellite/model output).
func GenerateGrid(m int) []Point {
	pts := make([]Point, 0, m*m)
	inv := 1 / float64(m)
	for row := 0; row < m; row++ {
		for col := 0; col < m; col++ {
			pts = append(pts, Point{X: (float64(row) + 0.5) * inv, Y: (float64(col) + 0.5) * inv})
		}
	}
	return pts
}

// MortonOrder returns a permutation that sorts pts along the Morton (Z-order)
// space-filling curve at 32 bits per axis. Applying it to both locations and
// measurements makes nearby-in-space points nearby-in-index, which is what
// gives off-diagonal covariance tiles their low numerical rank. (The earlier
// 16-bit quantization aliased clustered or ≥100k-point datasets onto
// identical codes, silently degrading locality to input order.)
func MortonOrder(pts []Point) []int {
	if len(pts) == 0 {
		return nil
	}
	xs, ys := quantize32(pts)
	codes := make([]uint64, len(pts))
	for i := range codes {
		codes[i] = interleave32(xs[i], ys[i])
	}
	return permByCode(codes)
}

// interleave32 interleaves the 32 bits of x and y into a 64-bit Morton code
// (x in even positions).
func interleave32(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

func spread(v uint32) uint64 {
	x := uint64(v)
	x = (x | x<<16) & 0x0000ffff0000ffff
	x = (x | x<<8) & 0x00ff00ff00ff00ff
	x = (x | x<<4) & 0x0f0f0f0f0f0f0f0f
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// ApplyPerm returns pts permuted by perm (pts[perm[0]], pts[perm[1]], …).
func ApplyPerm(pts []Point, perm []int) []Point {
	out := make([]Point, len(perm))
	for i, p := range perm {
		out[i] = pts[p]
	}
	return out
}

// ApplyPermFloat permutes a measurement vector with the same permutation.
func ApplyPermFloat(v []float64, perm []int) []float64 {
	out := make([]float64, len(perm))
	for i, p := range perm {
		out[i] = v[p]
	}
	return out
}

// Region is an axis-aligned rectangle used to carve a dataset into the
// geographic sub-regions the paper analyzes (R1…R8 soil moisture, R1…R4
// wind speed).
type Region struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether p lies in r (inclusive lower, exclusive upper,
// except at the global maximum where it is inclusive).
func (r Region) Contains(p Point) bool {
	return p.X >= r.MinX && p.X < r.MaxX && p.Y >= r.MinY && p.Y < r.MaxY
}

// PartitionGrid splits the bounding box of pts into px×py equal rectangles
// and returns, for each rectangle in row-major order, the indices of the
// points inside it. Boundary points on the global max edge fall in the last
// row/column.
func PartitionGrid(pts []Point, px, py int) [][]int {
	if len(pts) == 0 || px <= 0 || py <= 0 {
		return nil
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	out := make([][]int, px*py)
	dx := (maxX - minX) / float64(px)
	dy := (maxY - minY) / float64(py)
	for i, p := range pts {
		cx, cy := 0, 0
		if dx > 0 {
			cx = int((p.X - minX) / dx)
		}
		if dy > 0 {
			cy = int((p.Y - minY) / dy)
		}
		if cx >= px {
			cx = px - 1
		}
		if cy >= py {
			cy = py - 1
		}
		cell := cy*px + cx
		out[cell] = append(out[cell], i)
	}
	return out
}

// MinPairDistance returns the smallest pairwise distance among pts under m.
// It is O(n²) and intended for test-sized inputs.
func MinPairDistance(m Metric, pts []Point) float64 {
	best := math.Inf(1)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := Distance(m, pts[i], pts[j]); d < best {
				best = d
			}
		}
	}
	return best
}
