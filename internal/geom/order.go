package geom

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// Ordering names accepted by NewOrdering (and core.Config.Ordering).
const (
	OrderNone    = "none"
	OrderMorton  = "morton"
	OrderHilbert = "hilbert"
	OrderKDBlock = "kdblock"
)

// Ordering produces a spatial permutation of a location set. The ordering of
// locations decides which points end up in the same covariance tile and how
// far apart in space two tiles' point clusters are — i.e. it directly
// controls the numerical ranks of off-diagonal tiles, and with them TLR
// compression flops, tile memory, and the compressed bytes the distributed
// backend puts on the wire.
//
// Every implementation is a pure, sequential function of its input: the
// returned permutation is a bijection on [0, len(pts)), bitwise identical
// across calls, worker counts and processes. That determinism is what lets
// retried or replayed tiles (the chaos/retry path) regenerate exactly the
// tile they lost.
type Ordering interface {
	// Name returns the scheme's registry name ("none", "morton", ...).
	Name() string
	// Permutation returns perm such that pts[perm[0]], pts[perm[1]], ... is
	// the ordered point sequence. It does not modify pts.
	Permutation(pts []Point) []int
}

// The stateless orderings as ready-to-use values.
var (
	// None keeps the caller's order (the control arm of ordering sweeps).
	None Ordering = noOrdering{}
	// Morton sorts along the Z-order curve (32 bits per axis).
	Morton Ordering = mortonOrdering{}
	// Hilbert sorts along the Hilbert curve (32 bits per axis). Unlike
	// Z-order it has no long diagonal jumps: consecutive curve cells are
	// always edge-adjacent, which keeps index-neighbors space-neighbors even
	// across quadrant boundaries.
	Hilbert Ordering = hilbertOrdering{}
)

// KDBlocks returns the KD-tree recursive-bisection ordering: the point set is
// split on the wider bounding-box axis into tile-aligned halves until every
// block fits tileSize points, and the leaf blocks are concatenated
// left-to-right. Each tile of the resulting order holds one spatially compact
// block, and every block boundary (except the final partial block's end)
// lands on a multiple of tileSize. tileSize <= 0 means the library default
// tile size 128.
func KDBlocks(tileSize int) Ordering { return kdBlockOrdering{tileSize: tileSize} }

// NewOrdering resolves a scheme by name. tileSize parameterizes "kdblock"
// (<= 0 means the default 128) and is ignored by the other schemes.
func NewOrdering(name string, tileSize int) (Ordering, error) {
	switch name {
	case OrderNone:
		return None, nil
	case OrderMorton:
		return Morton, nil
	case OrderHilbert:
		return Hilbert, nil
	case OrderKDBlock:
		return KDBlocks(tileSize), nil
	}
	return nil, fmt.Errorf("geom: unknown ordering %q (have %v)", name, OrderingNames())
}

// OrderingNames lists the registered ordering schemes.
func OrderingNames() []string {
	return []string{OrderNone, OrderMorton, OrderHilbert, OrderKDBlock}
}

// Sorted returns a copy of pts permuted by ord — the one-line form of
// ApplyPerm(pts, ord.Permutation(pts)) used throughout the benches.
func Sorted(ord Ordering, pts []Point) []Point {
	return ApplyPerm(pts, ord.Permutation(pts))
}

// InversePerm returns inv with inv[perm[i]] = i: if perm maps stored order to
// caller order, inv maps caller order back to stored order.
func InversePerm(perm []int) []int {
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	return inv
}

// IdentityPerm returns the identity permutation of size n.
func IdentityPerm(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return perm
}

type noOrdering struct{}

func (noOrdering) Name() string                  { return OrderNone }
func (noOrdering) Permutation(pts []Point) []int { return IdentityPerm(len(pts)) }

type mortonOrdering struct{}

func (mortonOrdering) Name() string                  { return OrderMorton }
func (mortonOrdering) Permutation(pts []Point) []int { return MortonOrder(pts) }

type hilbertOrdering struct{}

func (hilbertOrdering) Name() string                  { return OrderHilbert }
func (hilbertOrdering) Permutation(pts []Point) []int { return HilbertOrder(pts) }

type kdBlockOrdering struct{ tileSize int }

func (kdBlockOrdering) Name() string { return OrderKDBlock }
func (o kdBlockOrdering) Permutation(pts []Point) []int {
	return KDBlockOrder(pts, o.tileSize)
}

// quantize32 maps every point into the 2³²×2³² integer grid spanned by the
// set's bounding box. 32 bits per axis resolve ~2.3e-10 of the box edge —
// below float64 noise for any realistic dataset — where the previous 16-bit
// grid aliased clustered or large-n (≥100k) datasets onto identical cells.
func quantize32(pts []Point) (xs, ys []uint32) {
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	const maxQ = float64(1<<32 - 1)
	sx, sy := 0.0, 0.0
	if maxX > minX {
		sx = maxQ / (maxX - minX)
	}
	if maxY > minY {
		sy = maxQ / (maxY - minY)
	}
	xs = make([]uint32, len(pts))
	ys = make([]uint32, len(pts))
	for i, p := range pts {
		vx := (p.X - minX) * sx
		vy := (p.Y - minY) * sy
		// Clamp before converting: rounding at the box edge may land one ulp
		// past maxQ, and float→uint32 overflow is not defined to saturate.
		if vx > maxQ {
			vx = maxQ
		}
		if vy > maxQ {
			vy = maxQ
		}
		xs[i] = uint32(vx)
		ys[i] = uint32(vy)
	}
	return xs, ys
}

// permByCode returns the stable sort of indices by codes — stable so that
// points sharing a curve cell keep their caller order, making every ordering
// a deterministic function of the input alone.
func permByCode(codes []uint64) []int {
	perm := IdentityPerm(len(codes))
	sort.SliceStable(perm, func(a, b int) bool { return codes[perm[a]] < codes[perm[b]] })
	return perm
}

// HilbertOrder returns a permutation that sorts pts along the Hilbert
// space-filling curve at 32 bits per axis. Hilbert codes have the prefix
// property (the leading 2k bits identify the level-k quadrant), so sorting by
// code recursively groups spatial neighborhoods; consecutive curve cells are
// edge-adjacent, avoiding Z-order's long diagonal jumps.
func HilbertOrder(pts []Point) []int {
	if len(pts) == 0 {
		return nil
	}
	xs, ys := quantize32(pts)
	codes := make([]uint64, len(pts))
	for i := range pts {
		codes[i] = hilbertCode(xs[i], ys[i])
	}
	return permByCode(codes)
}

// hilbertCode maps a cell of the 2³²×2³² grid to its distance along the
// order-32 Hilbert curve (the classic quadrant rotate/reflect recurrence,
// unrolled over bit planes). Runs in wrapping uint64 arithmetic: the
// reflection only needs the bits below s, and later iterations never look at
// the higher ones.
func hilbertCode(x, y uint32) uint64 {
	hx, hy := uint64(x), uint64(y)
	var d uint64
	for s := uint64(1) << 31; s > 0; s >>= 1 {
		var rx, ry uint64
		if hx&s != 0 {
			rx = 1
		}
		if hy&s != 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		if ry == 0 {
			if rx == 1 {
				hx = s - 1 - hx
				hy = s - 1 - hy
			}
			hx, hy = hy, hx
		}
	}
	return d
}

// KDBlockOrder returns the KD-tree recursive-bisection permutation: see
// KDBlocks. The concatenated leaf blocks of KDBlockPartition are the
// permutation.
func KDBlockOrder(pts []Point, tileSize int) []int {
	blocks := KDBlockPartition(pts, tileSize)
	perm := make([]int, 0, len(pts))
	for _, b := range blocks {
		perm = append(perm, b...)
	}
	return perm
}

// KDBlockPartition recursively bisects pts on the wider bounding-box axis
// into spatially compact index blocks of at most tileSize points (<= 0 means
// the default 128). Splits are rounded to multiples of tileSize, so in the
// concatenated order every block except the final partial one holds exactly
// tileSize points and starts on a tile boundary — each covariance tile then
// covers exactly one compact spatial block.
func KDBlockPartition(pts []Point, tileSize int) [][]int {
	if len(pts) == 0 {
		return nil
	}
	if tileSize <= 0 {
		tileSize = 128
	}
	var blocks [][]int
	kdSplit(pts, IdentityPerm(len(pts)), tileSize, &blocks)
	return blocks
}

func kdSplit(pts []Point, idx []int, nb int, blocks *[][]int) {
	if len(idx) <= nb {
		*blocks = append(*blocks, idx)
		return
	}
	minX, maxX := pts[idx[0]].X, pts[idx[0]].X
	minY, maxY := pts[idx[0]].Y, pts[idx[0]].Y
	for _, i := range idx[1:] {
		p := pts[i]
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		minY = math.Min(minY, p.Y)
		maxY = math.Max(maxY, p.Y)
	}
	byX := maxX-minX >= maxY-minY
	// Total order (split axis, other axis, original index) — the index
	// tiebreak makes the sort deterministic even with duplicate locations.
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		k1a, k1b, k2a, k2b := pa.X, pb.X, pa.Y, pb.Y
		if !byX {
			k1a, k1b, k2a, k2b = pa.Y, pb.Y, pa.X, pb.X
		}
		if k1a != k1b {
			return k1a < k1b
		}
		if k2a != k2b {
			return k2a < k2b
		}
		return idx[a] < idx[b]
	})
	// Split at a tile-aligned midpoint: the left child gets half the tiles
	// (rounded down, at least one), keeping every leaf boundary on a
	// multiple of nb and pushing the single partial block to the far right.
	nt := (len(idx) + nb - 1) / nb
	left := (nt / 2) * nb
	kdSplit(pts, idx[:left], nb, blocks)
	kdSplit(pts, idx[left:], nb, blocks)
}

// GenerateClustered produces n locations grouped into nClusters Gaussian
// blobs (σ = spread) around uniform centers in the unit square — the
// clustered geometry of the ordering benchmarks, where ordering choice
// matters most (arXiv:2402.09356). Points are drawn in random cluster order,
// so the raw ordering interleaves clusters (the adversarial case for tile
// ranks). Coordinates are clamped to [0, 1]. nClusters <= 0 defaults to 8,
// spread <= 0 to 0.02.
func GenerateClustered(n, nClusters int, spread float64, r *rng.Rand) []Point {
	if n <= 0 {
		return nil
	}
	if nClusters <= 0 {
		nClusters = 8
	}
	if spread <= 0 {
		spread = 0.02
	}
	centers := make([]Point, nClusters)
	for i := range centers {
		centers[i] = Point{X: r.Uniform(0.1, 0.9), Y: r.Uniform(0.1, 0.9)}
	}
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	pts := make([]Point, n)
	for i := range pts {
		c := centers[r.Intn(nClusters)]
		pts[i] = Point{
			X: clamp(c.X + spread*r.Norm()),
			Y: clamp(c.Y + spread*r.Norm()),
		}
	}
	return pts
}
