package geom

import (
	"math"
	"sync"
	"testing"

	"repro/internal/rng"
)

// testOrderings returns every registered ordering, parameterized the way the
// library defaults would build them.
func testOrderings(nb int) []Ordering {
	return []Ordering{None, Morton, Hilbert, KDBlocks(nb)}
}

func assertBijection(t *testing.T, name string, perm []int, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("%s: perm length %d, want %d", name, len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("%s: perm is not a bijection (index %d)", name, p)
		}
		seen[p] = true
	}
}

// TestOrderingsAreBijections: every ordering returns a valid permutation on
// uniform, clustered, duplicate-heavy and degenerate (collinear) geometries.
func TestOrderingsAreBijections(t *testing.T) {
	r := rng.New(11)
	dup := make([]Point, 300)
	for i := range dup {
		dup[i] = Point{X: 0.25, Y: 0.75} // all identical
	}
	line := make([]Point, 257)
	for i := range line {
		line[i] = Point{X: float64(i) / 256, Y: 0.5} // zero Y extent
	}
	cases := map[string][]Point{
		"uniform":   GeneratePerturbedGrid(1000, r),
		"clustered": GenerateClustered(1000, 8, 0.02, r),
		"duplicate": dup,
		"collinear": line,
		"single":    {{X: 0.5, Y: 0.5}},
	}
	for geomName, pts := range cases {
		for _, ord := range testOrderings(64) {
			assertBijection(t, geomName+"/"+ord.Name(), ord.Permutation(pts), len(pts))
		}
	}
	for _, ord := range testOrderings(64) {
		if got := ord.Permutation(nil); len(got) != 0 {
			t.Fatalf("%s: empty input returned %d indices", ord.Name(), len(got))
		}
	}
}

// TestOrderingsDeterministicConcurrent: permutations are bitwise identical no
// matter how many goroutines compute them concurrently (run under -race by
// make verify) — the property that lets a retried tile see the same ordering.
func TestOrderingsDeterministicConcurrent(t *testing.T) {
	r := rng.New(12)
	pts := GenerateClustered(2000, 10, 0.03, r)
	for _, ord := range testOrderings(128) {
		ref := ord.Permutation(pts)
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got := ord.Permutation(pts)
				for i := range ref {
					if got[i] != ref[i] {
						t.Errorf("%s: concurrent permutation diverged at %d", ord.Name(), i)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

// TestMortonResolutionBeyond16Bits is the regression test for the 16-bit
// quantization bug: two points 2⁻²⁰ of the bounding box apart must receive
// distinct Morton codes. The old 16-bit interleave aliased them onto one
// code, so the stable sort left them in input order.
func TestMortonResolutionBeyond16Bits(t *testing.T) {
	delta := math.Ldexp(1, -20) // resolvable at 32 bits/axis, aliased at 16
	pts := []Point{
		{X: delta, Y: 0}, // just after the origin on the curve
		{X: 0, Y: 0},     // the origin: must sort first
		{X: 1, Y: 1},     // pins the bounding box to the unit square
	}
	perm := MortonOrder(pts)
	if perm[0] != 1 || perm[1] != 0 {
		t.Fatalf("sub-16-bit displacement not resolved: perm=%v (16-bit aliasing regression)", perm)
	}
}

// TestMortonClusterLocality: a tight cluster inside a large bounding box —
// the geometry the 16-bit code collapsed to input order — must still be
// ordered locally within the cluster.
func TestMortonClusterLocality(t *testing.T) {
	r := rng.New(13)
	n := 2048
	pts := []Point{{X: 0, Y: 0}, {X: 1, Y: 1}} // box-pinning outliers
	for i := 0; i < n; i++ {
		// Cluster of width 1e-5: fully aliased by a 16-bit grid (resolution
		// 1.5e-5 over the unit box), resolved to ~44 bits of code by 32.
		pts = append(pts, Point{
			X: 0.5 + 1e-5*r.Float64(),
			Y: 0.5 + 1e-5*r.Float64(),
		})
	}
	ordered := Sorted(Morton, pts)
	// The corners sort to the curve's extremes; ordered[1:n+1] is the
	// cluster. Walk it and compare against the raw (random) cluster order —
	// the corner jumps are excluded from both sides so they can't mask the
	// cluster-internal behavior.
	walk := func(ps []Point) float64 {
		var s float64
		for i := 1; i < len(ps); i++ {
			s += Distance(Euclidean, ps[i-1], ps[i])
		}
		return s
	}
	hop := walk(ordered[1 : len(ordered)-1])
	rawHop := walk(pts[2:])
	// The random cluster order walks ~n·(mean pair distance); the Morton
	// order must be dramatically shorter. 16-bit quantization leaves the
	// cluster in input order and fails this bound.
	if hop >= rawHop/4 {
		t.Fatalf("morton ordering lost locality inside cluster: ordered hops %g, raw hops %g", hop, rawHop)
	}
}

// TestHilbertAdjacency: on an exact 2^k×2^k grid, consecutive points of the
// Hilbert order are edge-adjacent cells (distance exactly one cell) — the
// defining property of the curve, and the locality Z-order lacks.
func TestHilbertAdjacency(t *testing.T) {
	const m = 16
	pts := GenerateGrid(m)
	ordered := Sorted(Hilbert, pts)
	cell := 1.0 / m
	for i := 1; i < len(ordered); i++ {
		d := Distance(Euclidean, ordered[i-1], ordered[i])
		if math.Abs(d-cell) > 1e-9 {
			t.Fatalf("hilbert step %d jumps %.6f (want one cell %.6f): %+v -> %+v",
				i, d, cell, ordered[i-1], ordered[i])
		}
	}
}

// TestHilbertBeatsMortonOnDiagonalJumps: total curve length of the Hilbert
// order never exceeds Morton's on a grid (Z-order pays long diagonal jumps
// at quadrant boundaries).
func TestHilbertBeatsMortonOnDiagonalJumps(t *testing.T) {
	pts := GenerateGrid(32)
	walk := func(ord Ordering) float64 {
		o := Sorted(ord, pts)
		var s float64
		for i := 1; i < len(o); i++ {
			s += Distance(Euclidean, o[i-1], o[i])
		}
		return s
	}
	h, z := walk(Hilbert), walk(Morton)
	if h >= z {
		t.Fatalf("hilbert walk %g not shorter than morton %g", h, z)
	}
}

// TestKDBlockPartitionTileAligned: leaves are contiguous in the emitted
// order, every block except the last holds exactly tileSize points (so every
// boundary lands on a tile edge), and together they cover all indices.
func TestKDBlockPartitionTileAligned(t *testing.T) {
	r := rng.New(14)
	for _, tc := range []struct {
		name string
		pts  []Point
		nb   int
	}{
		{"uniform-exact", GeneratePerturbedGrid(1024, r), 128},
		{"uniform-ragged", GeneratePerturbedGrid(1000, r), 128},
		{"clustered", GenerateClustered(777, 6, 0.02, r), 64},
		{"tiny", GeneratePerturbedGrid(10, r), 4},
	} {
		blocks := KDBlockPartition(tc.pts, tc.nb)
		total := 0
		seen := make([]bool, len(tc.pts))
		for bi, b := range blocks {
			if len(b) == 0 || len(b) > tc.nb {
				t.Fatalf("%s: block %d has %d points (tile %d)", tc.name, bi, len(b), tc.nb)
			}
			if bi < len(blocks)-1 && len(b) != tc.nb {
				t.Fatalf("%s: non-final block %d has %d points, want exactly %d (tile alignment)",
					tc.name, bi, len(b), tc.nb)
			}
			for _, idx := range b {
				if seen[idx] {
					t.Fatalf("%s: index %d in two blocks", tc.name, idx)
				}
				seen[idx] = true
				total++
			}
		}
		if total != len(tc.pts) {
			t.Fatalf("%s: blocks cover %d of %d points", tc.name, total, len(tc.pts))
		}
		// The permutation is the concatenation of the blocks.
		perm := KDBlockOrder(tc.pts, tc.nb)
		assertBijection(t, tc.name, perm, len(tc.pts))
		k := 0
		for _, b := range blocks {
			for _, idx := range b {
				if perm[k] != idx {
					t.Fatalf("%s: perm[%d]=%d, blocks say %d — leaves not contiguous", tc.name, k, perm[k], idx)
				}
				k++
			}
		}
	}
}

// TestKDBlocksAreCompact: each KD block's bounding-box diameter is well below
// the global diameter — blocks are spatial neighborhoods, not arbitrary index
// ranges.
func TestKDBlocksAreCompact(t *testing.T) {
	r := rng.New(15)
	pts := GeneratePerturbedGrid(1024, r)
	blocks := KDBlockPartition(pts, 64) // 16 blocks over the unit square
	for bi, b := range blocks {
		minX, maxX := pts[b[0]].X, pts[b[0]].X
		minY, maxY := pts[b[0]].Y, pts[b[0]].Y
		for _, i := range b[1:] {
			minX = math.Min(minX, pts[i].X)
			maxX = math.Max(maxX, pts[i].X)
			minY = math.Min(minY, pts[i].Y)
			maxY = math.Max(maxY, pts[i].Y)
		}
		diam := math.Hypot(maxX-minX, maxY-minY)
		// 16 recursive-bisection blocks of a uniform unit square: each spans
		// about 1/4 x 1/4; anything approaching the full diagonal means the
		// split recursed on index ranges, not space.
		if diam > 0.75 {
			t.Fatalf("block %d spans %.3f of the unit square — not spatially compact", bi, diam)
		}
	}
}

// TestNewOrderingRegistry: every advertised name resolves, resolves to the
// advertised name, and unknown names error.
func TestNewOrderingRegistry(t *testing.T) {
	for _, name := range OrderingNames() {
		ord, err := NewOrdering(name, 32)
		if err != nil {
			t.Fatalf("NewOrdering(%q): %v", name, err)
		}
		if ord.Name() != name {
			t.Fatalf("NewOrdering(%q).Name() = %q", name, ord.Name())
		}
	}
	if _, err := NewOrdering("zcurve", 0); err == nil {
		t.Fatal("unknown ordering must error")
	}
}

// TestInversePermRoundTrip: InversePerm inverts, and applying perm then its
// inverse restores the original sequence.
func TestInversePermRoundTrip(t *testing.T) {
	r := rng.New(16)
	pts := GeneratePerturbedGrid(300, r)
	for _, ord := range testOrderings(32) {
		perm := ord.Permutation(pts)
		inv := InversePerm(perm)
		for i := range perm {
			if inv[perm[i]] != i {
				t.Fatalf("%s: inverse wrong at %d", ord.Name(), i)
			}
		}
		back := ApplyPerm(ApplyPerm(pts, perm), inv)
		for i := range pts {
			if back[i] != pts[i] {
				t.Fatalf("%s: perm∘inv not identity at %d", ord.Name(), i)
			}
		}
	}
}

// TestSortedMatchesApplyPerm: the helper is exactly the two-call idiom it
// replaces.
func TestSortedMatchesApplyPerm(t *testing.T) {
	r := rng.New(17)
	pts := GeneratePerturbedGrid(200, r)
	want := ApplyPerm(pts, MortonOrder(pts))
	got := Sorted(Morton, pts)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted diverges from ApplyPerm(MortonOrder) at %d", i)
		}
	}
}

// TestGenerateClustered: count, unit-square bounds, determinism.
func TestGenerateClustered(t *testing.T) {
	a := GenerateClustered(500, 8, 0.02, rng.New(9))
	b := GenerateClustered(500, 8, 0.02, rng.New(9))
	if len(a) != 500 {
		t.Fatalf("got %d points", len(a))
	}
	for i, p := range a {
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("point %d outside unit square: %+v", i, p)
		}
		if a[i] != b[i] {
			t.Fatal("same seed produced different clustered points")
		}
	}
}
