package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x.calls")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("x.calls") != c {
		t.Fatal("counter lookup must return the same instrument")
	}
	g := r.Gauge("x.size")
	g.Set(3.5)
	g.Set(7.25)
	if g.Value() != 7.25 {
		t.Fatalf("gauge = %g, want 7.25", g.Value())
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := &Histogram{}
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 1106 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
	if s.Min != 1 || s.Max != 1000 {
		t.Fatalf("min/max = %d/%d", s.Min, s.Max)
	}
	if m := s.Mean(); m != 1106.0/5 {
		t.Fatalf("mean = %g", m)
	}
	// the median observation is 3; the bucket upper bound is < 4
	if q := s.Quantile(0.5); q < 3 || q > 4 {
		t.Fatalf("p50 = %d, want ~3", q)
	}
	if q := s.Quantile(1); q != 1000 {
		t.Fatalf("p100 = %d, want 1000 (clamped to max)", q)
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %d", q)
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	h := &Histogram{}
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 0 || s.Min != 0 || s.Max != 0 {
		t.Fatalf("negative observation mishandled: %+v", s)
	}
}

func TestSnapshotMergeAndSub(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("a").Add(3)
	r2.Counter("a").Add(4)
	r2.Counter("b").Add(1)
	r1.Gauge("g").Set(1)
	r2.Gauge("g").Set(2)
	r1.Histogram("h").Observe(8)
	r2.Histogram("h").Observe(64)

	m := r1.Snapshot().Merge(r2.Snapshot())
	if m.Counters["a"] != 7 || m.Counters["b"] != 1 {
		t.Fatalf("merged counters: %v", m.Counters)
	}
	if m.Gauges["g"] != 2 {
		t.Fatalf("merged gauge: %v", m.Gauges)
	}
	h := m.Histograms["h"]
	if h.Count != 2 || h.Sum != 72 || h.Min != 8 || h.Max != 64 {
		t.Fatalf("merged histogram: %+v", h)
	}

	before := r1.Snapshot()
	r1.Counter("a").Add(10)
	r1.Histogram("h").Observe(16)
	d := r1.Snapshot().Sub(before)
	if d.Counters["a"] != 10 {
		t.Fatalf("delta counter: %v", d.Counters)
	}
	if dh := d.Histograms["h"]; dh.Count != 1 || dh.Sum != 16 {
		t.Fatalf("delta histogram: %+v", dh)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	r.Histogram("h").ObserveDuration(3 * time.Millisecond)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c"] != 1 || back.Histograms["h"].Count != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

// TestConcurrentInstruments hammers one registry from many goroutines; run
// under -race (make verify does) this is the data-race gate for the package.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter("calls").Inc()
				r.Gauge("last").Set(float64(w))
				r.Histogram("vals").Observe(int64(i % 128))
				if i%100 == 0 {
					_ = r.Snapshot() // snapshots race against writers by design
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["calls"] != workers*per {
		t.Fatalf("calls = %d, want %d", s.Counters["calls"], workers*per)
	}
	if h := s.Histograms["vals"]; h.Count != workers*per || h.Min != 0 || h.Max != 127 {
		t.Fatalf("histogram: %+v", h)
	}
}

func TestDefaultRegistryHelpers(t *testing.T) {
	c := GetCounter("obs_test.unique.counter")
	c.Inc()
	if Default().Counter("obs_test.unique.counter") != c {
		t.Fatal("GetCounter must resolve into the default registry")
	}
	_ = GetGauge("obs_test.unique.gauge")
	_ = GetHistogram("obs_test.unique.hist")
	s := Default().Snapshot()
	if _, ok := s.Counters["obs_test.unique.counter"]; !ok {
		t.Fatal("snapshot must include resolved instruments")
	}
}
