// Package obs is the lightweight metrics layer threaded through the compute
// stack: counters (kernel invocations, cache hits), gauges (last-seen sizes),
// and power-of-two histograms (compression ranks, task durations). All
// instruments are lock-free on the hot path — one atomic add per observation
// — and snapshot into plain mergeable values, so per-rank or per-phase
// snapshots can be combined or differenced without touching the live
// instruments.
//
// The package keeps one default registry; call sites resolve their
// instruments once at package init (obs.GetCounter("la.gemm.calls")) and hit
// only the atomic afterwards. Names are dotted paths, "layer.object.what":
// la.gemm.calls, tlr.compress.rank, core.cache.tilegraph.hit, mpi.bytes.sent.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d (d must be ≥ 0; counters only grow).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-write-wins value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the last stored value (zero if never set).
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the fixed bucket count: bucket i holds values v with
// bitlen(v) == i, i.e. v in [2^(i-1), 2^i). Bucket 0 holds v ≤ 0.
const histBuckets = 64

// Histogram accumulates non-negative int64 observations (durations in
// nanoseconds, ranks, byte counts) into power-of-two buckets. The exponential
// bucketing keeps the memory constant and the relative quantile error below
// 2× at any scale — the right trade for "is the rank 8 or 80" and "is the
// task 1µs or 1ms" questions.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // stores minimum+1 so zero means "unset"
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value (negative values clamp to 0).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))%histBuckets].Add(1)
	for {
		cur := h.min.Load()
		if cur != 0 && cur <= v+1 {
			break
		}
		if h.min.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur >= v {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if m := h.min.Load(); m > 0 {
		s.Min = m - 1
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			if s.Buckets == nil {
				s.Buckets = map[int]int64{}
			}
			s.Buckets[i] = n
		}
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram, mergeable with other
// snapshots (e.g. one per rank) by addition.
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// Buckets maps bucket index i (values in [2^(i-1), 2^i)) to counts;
	// empty buckets are omitted.
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

// Mean returns the mean observation, 0 when empty.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (q in [0, 1]) from the
// bucket boundaries — exact to within the 2× bucket width.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	idxs := make([]int, 0, len(s.Buckets))
	for i := range s.Buckets {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var seen int64
	for _, i := range idxs {
		seen += s.Buckets[i]
		if seen >= target {
			if i == 0 {
				return 0
			}
			hi := int64(1) << i // exclusive upper edge of bucket i
			if hi-1 > s.Max {
				return s.Max
			}
			return hi - 1
		}
	}
	return s.Max
}

// Merge returns the snapshot combining s and o (counts and sums add, bounds
// widen) — the per-rank merge operation.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	switch {
	case s.Count == 0:
		out.Min, out.Max = o.Min, o.Max
	case o.Count == 0:
		out.Min, out.Max = s.Min, s.Max
	default:
		out.Min = min(s.Min, o.Min)
		out.Max = max(s.Max, o.Max)
	}
	for i, n := range s.Buckets {
		if out.Buckets == nil {
			out.Buckets = map[int]int64{}
		}
		out.Buckets[i] += n
	}
	for i, n := range o.Buckets {
		if out.Buckets == nil {
			out.Buckets = map[int]int64{}
		}
		out.Buckets[i] += n
	}
	return out
}

// Registry owns named instruments. Lookup is mutex-guarded (cold path);
// returned instruments are lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the compute layers report into.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GetCounter resolves a counter in the default registry (call-once idiom:
// resolve at package init, Inc on the hot path).
func GetCounter(name string) *Counter { return defaultRegistry.Counter(name) }

// GetGauge resolves a gauge in the default registry.
func GetGauge(name string) *Gauge { return defaultRegistry.Gauge(name) }

// GetHistogram resolves a histogram in the default registry.
func GetHistogram(name string) *Histogram { return defaultRegistry.Histogram(name) }

// Snapshot is a point-in-time copy of a registry: plain values, safe to
// marshal, merge, or difference. Zero-valued instruments are included so a
// snapshot always names every instrument that has been resolved.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument in the registry.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Snapshot()
	}
	return s
}

// Merge combines two snapshots: counters and histograms add (per-rank
// semantics), gauges from o win where both define them.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	for n, v := range s.Counters {
		out.Counters[n] = v
	}
	for n, v := range o.Counters {
		out.Counters[n] += v
	}
	for n, v := range s.Gauges {
		out.Gauges[n] = v
	}
	for n, v := range o.Gauges {
		out.Gauges[n] = v
	}
	for n, h := range s.Histograms {
		out.Histograms[n] = h
	}
	for n, h := range o.Histograms {
		out.Histograms[n] = out.Histograms[n].Merge(h)
	}
	return out
}

// Sub returns the per-instrument delta s − prev for counters and histogram
// counts/sums (bucket-wise; Min/Max are copied from s since extrema don't
// difference), gauges from s — the idiom for measuring one phase.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	for n, v := range s.Counters {
		out.Counters[n] = v - prev.Counters[n]
	}
	for n, v := range s.Gauges {
		out.Gauges[n] = v
	}
	for n, h := range s.Histograms {
		p := prev.Histograms[n]
		d := HistSnapshot{Count: h.Count - p.Count, Sum: h.Sum - p.Sum, Min: h.Min, Max: h.Max}
		for i, c := range h.Buckets {
			if dc := c - p.Buckets[i]; dc != 0 {
				if d.Buckets == nil {
					d.Buckets = map[int]int64{}
				}
				d.Buckets[i] = dc
			}
		}
		out.Histograms[n] = d
	}
	return out
}
