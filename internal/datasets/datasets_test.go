package datasets

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestSoilMoistureShape(t *testing.T) {
	ds, err := SoilMoisture(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Regions) != 8 {
		t.Fatalf("want 8 regions, got %d", len(ds.Regions))
	}
	for i, r := range ds.Regions {
		if len(r.Points) != 64 || len(r.Z) != 64 {
			t.Fatalf("region %d sizes: %d points %d values", i, len(r.Points), len(r.Z))
		}
		if r.Truth != SoilTruth[i] {
			t.Fatalf("region %d truth mismatch", i)
		}
		if r.Name == "" {
			t.Fatal("unnamed region")
		}
	}
	if ds.Metric != geom.Euclidean {
		t.Fatal("soil should use planar distances")
	}
}

func TestSoilRegionsDisjointInSpace(t *testing.T) {
	ds, err := SoilMoisture(36, 2)
	if err != nil {
		t.Fatal(err)
	}
	// regions laid out on a 4×2 grid of 300 km squares: bounding boxes of
	// different regions must not overlap
	for i := range ds.Regions {
		for j := i + 1; j < len(ds.Regions); j++ {
			if overlap(ds.Regions[i].Points, ds.Regions[j].Points) {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

func overlap(a, b []geom.Point) bool {
	minA, maxA := bbox(a)
	minB, maxB := bbox(b)
	return minA.X < maxB.X && minB.X < maxA.X && minA.Y < maxB.Y && minB.Y < maxA.Y
}

func bbox(p []geom.Point) (lo, hi geom.Point) {
	lo, hi = p[0], p[0]
	for _, q := range p[1:] {
		lo.X = math.Min(lo.X, q.X)
		lo.Y = math.Min(lo.Y, q.Y)
		hi.X = math.Max(hi.X, q.X)
		hi.Y = math.Max(hi.Y, q.Y)
	}
	return
}

func TestWindSpeedShape(t *testing.T) {
	ds, err := WindSpeed(49, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Regions) != 4 {
		t.Fatalf("want 4 regions, got %d", len(ds.Regions))
	}
	if ds.Metric != geom.GreatCircleEarth100km {
		t.Fatal("wind should use great-circle distances")
	}
	for _, r := range ds.Regions {
		for _, p := range r.Points {
			if p.X < 35 || p.X > 55 || p.Y < 10 || p.Y > 30 {
				t.Fatalf("wind location outside Arabian Peninsula box: %+v", p)
			}
		}
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	a, err := SoilMoisture(25, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SoilMoisture(25, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Regions {
		for j := range a.Regions[i].Z {
			if a.Regions[i].Z[j] != b.Regions[i].Z[j] {
				t.Fatal("same seed produced different fields")
			}
		}
	}
	c, err := SoilMoisture(25, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Regions[0].Z[0] == c.Regions[0].Z[0] {
		t.Fatal("different seeds produced identical fields")
	}
}

func TestFieldVarianceMatchesTruth(t *testing.T) {
	// Empirical variance of each region should be in the ballpark of its
	// generating θ1 (loose: one realization of a correlated field).
	ds, err := SoilMoisture(400, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ds.Regions {
		var s2 float64
		for _, v := range r.Z {
			s2 += v * v
		}
		emp := s2 / float64(len(r.Z))
		if emp < r.Truth.Variance/4 || emp > r.Truth.Variance*4 {
			t.Errorf("region %s: empirical variance %.3g vs truth %.3g", r.Name, emp, r.Truth.Variance)
		}
	}
}

func TestWindFieldSPDUnderGCD(t *testing.T) {
	// Generation itself requires the GCD covariance to be SPD; success of
	// WindSpeed at a non-trivial size is the assertion.
	if _, err := WindSpeed(256, 10); err != nil {
		t.Fatal(err)
	}
}
