// Package datasets provides the simulated stand-ins for the paper's two real
// datasets (§VII): the Mississippi River Basin soil-moisture raster and the
// WRF-generated Middle-East wind-speed field.
//
// The originals are not redistributable, so each dataset is replaced by a
// synthetic Gaussian random field sampled on the same kind of geometry and
// regional layout, with each region's true Matérn parameters set to the
// paper's full-tile estimates (Tables I and II). The estimation experiments
// then exercise exactly the code paths the paper reports — regional MLE fits
// under TLR accuracies versus full accuracy — with a known ground truth to
// validate recovery against.
package datasets

import (
	"fmt"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/rng"
)

// Region is one geographic analysis region with its generating truth.
type Region struct {
	Name  string
	Truth cov.Params
	// Points and Z hold the region's locations and measurements.
	Points []geom.Point
	Z      []float64
}

// Dataset is a regional climate dataset.
type Dataset struct {
	Name    string
	Metric  geom.Metric
	Regions []Region
}

// SoilTruth are the paper's Table I full-tile estimates for the eight
// Mississippi-basin regions, used as generating parameters (variance,
// spatial range in km, smoothness).
var SoilTruth = []cov.Params{
	{Variance: 0.852, Range: 5.994, Smoothness: 0.559},
	{Variance: 0.380, Range: 10.434, Smoothness: 0.490},
	{Variance: 0.277, Range: 10.878, Smoothness: 0.507},
	{Variance: 0.410, Range: 7.77, Smoothness: 0.527},
	{Variance: 0.836, Range: 9.213, Smoothness: 0.496},
	{Variance: 0.619, Range: 10.323, Smoothness: 0.523},
	{Variance: 0.553, Range: 19.203, Smoothness: 0.508},
	{Variance: 0.906, Range: 27.861, Smoothness: 0.461},
}

// WindTruth are the paper's Table II full-tile estimates for the four
// Middle-East wind regions (variance in (m/s)², range in 100 km units under
// great-circle distance, smoothness).
var WindTruth = []cov.Params{
	{Variance: 8.715, Range: 32.083 / 10, Smoothness: 1.210},
	{Variance: 12.517, Range: 27.237 / 10, Smoothness: 1.274},
	{Variance: 10.819, Range: 18.634 / 10, Smoothness: 1.416},
	{Variance: 12.270, Range: 17.112 / 10, Smoothness: 1.170},
}

// soilRegionSide is the physical edge (km) of one simulated soil region; the
// paper's regions hold ~250 K points over a few hundred km.
const soilRegionSide = 300.0

// SoilMoisture simulates the soil-moisture dataset: 8 regions (R1…R8), each
// a jittered grid of pointsPerRegion locations over a 300 km square with the
// Table I parameters as generating truth. Distances are planar (the paper
// also models this dataset with Euclidean distances after projection).
func SoilMoisture(pointsPerRegion int, seed uint64) (*Dataset, error) {
	ds := &Dataset{Name: "soil-moisture", Metric: geom.Euclidean}
	r := rng.New(seed)
	for i, truth := range SoilTruth {
		reg, err := genRegion(fmt.Sprintf("R%d", i+1), truth, pointsPerRegion,
			geom.Euclidean, r.Split(uint64(i)+1), func(p geom.Point) geom.Point {
				// place region i on a 4×2 map layout (visual only; regions
				// are analyzed independently)
				col, row := i%4, i/4
				return geom.Point{
					X: (float64(col) + p.X) * soilRegionSide,
					Y: (float64(row) + p.Y) * soilRegionSide,
				}
			}, soilRegionSide)
		if err != nil {
			return nil, err
		}
		ds.Regions = append(ds.Regions, reg)
	}
	return ds, nil
}

// WindSpeed simulates the wind-speed dataset: 4 regions over the Arabian
// Peninsula (lon 35°E–55°E, lat 10°N–30°N, 2×2 layout), great-circle
// distances in 100 km units, Table II truths.
func WindSpeed(pointsPerRegion int, seed uint64) (*Dataset, error) {
	ds := &Dataset{Name: "wind-speed", Metric: geom.GreatCircleEarth100km}
	r := rng.New(seed)
	const lon0, lat0, span = 35.0, 10.0, 10.0 // each region spans 10°×10°
	for i, truth := range WindTruth {
		col, row := i%2, i/2
		reg, err := genRegion(fmt.Sprintf("R%d", i+1), truth, pointsPerRegion,
			geom.GreatCircleEarth100km, r.Split(uint64(i)+101), func(p geom.Point) geom.Point {
				return geom.Point{
					X: lon0 + (float64(col)+p.X)*span,
					Y: lat0 + (float64(row)+p.Y)*span,
				}
			}, 0)
		if err != nil {
			return nil, err
		}
		ds.Regions = append(ds.Regions, reg)
	}
	return ds, nil
}

// genRegion samples one region: unit-square jittered grid mapped into place,
// then a GRF draw with the region's truth under the dataset metric.
func genRegion(name string, truth cov.Params, n int, metric geom.Metric, r *rng.Rand, place func(geom.Point) geom.Point, _ float64) (Region, error) {
	unit := geom.GeneratePerturbedGrid(n, r)
	pts := make([]geom.Point, n)
	for i, p := range unit {
		pts[i] = place(p)
	}
	k := cov.NewKernel(truth)
	z, err := cov.SampleField(k, pts, metric, r.Split(7))
	if err != nil {
		return Region{}, fmt.Errorf("datasets: region %s: %w", name, err)
	}
	return Region{Name: name, Truth: truth, Points: pts, Z: z}, nil
}
