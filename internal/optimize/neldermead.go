// Package optimize provides the derivative-free bound-constrained optimizer
// that drives the maximum likelihood search — the substitute for the NLopt
// (BOBYQA) layer of ExaGeoStat. The main entry point is NelderMead, a
// downhill-simplex method with box-constraint projection, adaptive
// parameters, and optional restarts; MultiStart wraps it for the rough
// likelihood surfaces strong-correlation cases produce.
package optimize

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Problem is a minimization problem over a box.
type Problem struct {
	// Objective is the function to minimize. It must tolerate any point
	// inside the box; returning +Inf or NaN marks a failed evaluation,
	// treated as a very bad point.
	Objective func(x []float64) float64
	// Lower and Upper are the box bounds; both must have the dimension of
	// the start point.
	Lower, Upper []float64
}

// Options tunes the simplex search. Zero values select the defaults noted on
// each field.
type Options struct {
	// MaxEvals caps objective evaluations (default 2000).
	MaxEvals int
	// TolX stops when the simplex diameter falls below it (default 1e-6).
	TolX float64
	// TolF stops when the spread of simplex values falls below it
	// (default 1e-8).
	TolF float64
	// InitStep is the initial simplex edge as a fraction of each
	// coordinate's box width (default 0.1).
	InitStep float64
	// Restarts re-initializes the simplex around the incumbent when the
	// search stalls — i.e. only after an attempt that ends WITHOUT meeting
	// the TolX/TolF convergence criteria. An attempt that converges cleanly
	// never burns a restart (default 1 restart; negative disables).
	Restarts int
}

// Result reports the outcome of an optimization run.
type Result struct {
	X     []float64
	F     float64
	Evals int
	// Converged reports whether the attempt that PRODUCED the returned
	// minimum met the TolX/TolF criteria — not whether the last attempt
	// happened to (a restart that runs out of budget after a clean earlier
	// convergence does not un-converge the answer).
	Converged bool
}

// ErrBadProblem reports malformed inputs.
var ErrBadProblem = errors.New("optimize: malformed problem")

func (o Options) withDefaults() Options {
	if o.MaxEvals <= 0 {
		o.MaxEvals = 2000
	}
	if o.TolX <= 0 {
		o.TolX = 1e-6
	}
	if o.TolF <= 0 {
		o.TolF = 1e-8
	}
	if o.InitStep <= 0 {
		o.InitStep = 0.1
	}
	if o.Restarts < 0 {
		o.Restarts = 0
	} else if o.Restarts == 0 {
		o.Restarts = 1
	}
	return o
}

func validate(p Problem, x0 []float64) error {
	n := len(x0)
	if n == 0 || p.Objective == nil {
		return fmt.Errorf("%w: empty start point or nil objective", ErrBadProblem)
	}
	if len(p.Lower) != n || len(p.Upper) != n {
		return fmt.Errorf("%w: bounds dimension %d/%d vs %d", ErrBadProblem, len(p.Lower), len(p.Upper), n)
	}
	for i := range x0 {
		if p.Lower[i] > p.Upper[i] {
			return fmt.Errorf("%w: lower[%d] > upper[%d]", ErrBadProblem, i, i)
		}
	}
	return nil
}

func clip(x []float64, lo, hi []float64) {
	for i := range x {
		if x[i] < lo[i] {
			x[i] = lo[i]
		}
		if x[i] > hi[i] {
			x[i] = hi[i]
		}
	}
}

// NelderMead minimizes p.Objective starting from x0 (projected into the box).
func NelderMead(p Problem, x0 []float64, opt Options) (Result, error) {
	if err := validate(p, x0); err != nil {
		return Result{}, err
	}
	o := opt.withDefaults()

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		v := p.Objective(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}

	start := append([]float64(nil), x0...)
	clip(start, p.Lower, p.Upper)

	bestX := append([]float64(nil), start...)
	bestF := eval(bestX)
	converged := false

	for attempt := 0; attempt <= o.Restarts && evals < o.MaxEvals; attempt++ {
		x, f, conv := simplexRun(p, bestX, o, eval, &evals)
		// Converged tracks the attempt that produced the returned minimum:
		// an attempt that only ties the incumbent still stamps its
		// convergence (same answer, now within tolerance), but a worse
		// restart never overwrites the flag of the minimum it did not find.
		if f < bestF || (f == bestF && conv) {
			bestF = f
			copy(bestX, x)
			converged = conv
		}
		if conv {
			// Clean convergence: restarting from the incumbent would spend
			// the remaining budget re-descending to the answer we already
			// hold. Restarts exist for stalled attempts (see
			// Options.Restarts), so stop here.
			break
		}
	}
	return Result{X: bestX, F: bestF, Evals: evals, Converged: converged}, nil
}

// simplexRun is one simplex descent from around x0.
func simplexRun(p Problem, x0 []float64, o Options, eval func([]float64) float64, evals *int) ([]float64, float64, bool) {
	n := len(x0)
	// adaptive Nelder–Mead parameters (Gao & Han 2012)
	alpha := 1.0
	beta := 1.0 + 2.0/float64(n)
	gamma := 0.75 - 1.0/(2*float64(n))
	delta := 1.0 - 1.0/float64(n)

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{x: append([]float64(nil), x0...)}
	simplex[0].f = eval(simplex[0].x)
	for i := 1; i <= n; i++ {
		x := append([]float64(nil), x0...)
		width := p.Upper[i-1] - p.Lower[i-1]
		step := o.InitStep * width
		if width == 0 || math.IsInf(width, 0) {
			step = o.InitStep * math.Max(math.Abs(x[i-1]), 1)
		}
		// step away from a bound if needed
		if x[i-1]+step > p.Upper[i-1] {
			step = -step
		}
		x[i-1] += step
		clip(x, p.Lower, p.Upper)
		simplex[i] = vertex{x: x, f: eval(x)}
	}

	centroid := make([]float64, n)
	trial := make([]float64, n)
	trial2 := make([]float64, n)

	for *evals < o.MaxEvals {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
		// convergence checks
		diam := 0.0
		for i := 1; i <= n; i++ {
			for j := 0; j < n; j++ {
				d := math.Abs(simplex[i].x[j] - simplex[0].x[j])
				if d > diam {
					diam = d
				}
			}
		}
		spread := math.Abs(simplex[n].f - simplex[0].f)
		if diam < o.TolX || spread < o.TolF*(math.Abs(simplex[0].f)+1e-30) {
			return simplex[0].x, simplex[0].f, true
		}

		for j := 0; j < n; j++ {
			var s float64
			for i := 0; i < n; i++ { // all but the worst
				s += simplex[i].x[j]
			}
			centroid[j] = s / float64(n)
		}
		worst := simplex[n]
		// reflection
		for j := 0; j < n; j++ {
			trial[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		clip(trial, p.Lower, p.Upper)
		fr := eval(trial)
		switch {
		case fr < simplex[0].f:
			// expansion
			for j := 0; j < n; j++ {
				trial2[j] = centroid[j] + beta*(trial[j]-centroid[j])
			}
			clip(trial2, p.Lower, p.Upper)
			fe := eval(trial2)
			if fe < fr {
				copy(simplex[n].x, trial2)
				simplex[n].f = fe
			} else {
				copy(simplex[n].x, trial)
				simplex[n].f = fr
			}
		case fr < simplex[n-1].f:
			copy(simplex[n].x, trial)
			simplex[n].f = fr
		default:
			// contraction (outside if reflected point improved on worst)
			if fr < worst.f {
				for j := 0; j < n; j++ {
					trial2[j] = centroid[j] + gamma*(trial[j]-centroid[j])
				}
			} else {
				for j := 0; j < n; j++ {
					trial2[j] = centroid[j] - gamma*(centroid[j]-worst.x[j])
				}
			}
			clip(trial2, p.Lower, p.Upper)
			fc := eval(trial2)
			if fc < math.Min(fr, worst.f) {
				copy(simplex[n].x, trial2)
				simplex[n].f = fc
			} else {
				// shrink toward the best vertex
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						simplex[i].x[j] = simplex[0].x[j] + delta*(simplex[i].x[j]-simplex[0].x[j])
					}
					clip(simplex[i].x, p.Lower, p.Upper)
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	return simplex[0].x, simplex[0].f, false
}

// MultiStart runs NelderMead from each start point and returns the best
// result. Starts are projected into the box.
func MultiStart(p Problem, starts [][]float64, opt Options) (Result, error) {
	if len(starts) == 0 {
		return Result{}, fmt.Errorf("%w: no start points", ErrBadProblem)
	}
	var best Result
	bestSet := false
	totalEvals := 0
	for _, s := range starts {
		r, err := NelderMead(p, s, opt)
		if err != nil {
			return Result{}, err
		}
		totalEvals += r.Evals
		if !bestSet || r.F < best.F {
			best = r
			bestSet = true
		}
	}
	best.Evals = totalEvals
	return best, nil
}

// GridSearch evaluates the objective on a regular grid inside the box
// (points per dimension given by div) and returns the best point found. It
// is the brute-force companion to NelderMead: useful for seeding the simplex
// on multi-modal likelihood surfaces and for verifying that a local search
// did not stop in a spurious basin.
func GridSearch(p Problem, div int) (Result, error) {
	if err := validate(p, p.Lower); err != nil {
		return Result{}, err
	}
	if div < 2 {
		div = 2
	}
	n := len(p.Lower)
	idx := make([]int, n)
	x := make([]float64, n)
	best := Result{F: math.Inf(1)}
	for {
		for i := 0; i < n; i++ {
			frac := float64(idx[i]) / float64(div-1)
			x[i] = p.Lower[i] + frac*(p.Upper[i]-p.Lower[i])
		}
		v := p.Objective(x)
		best.Evals++
		if !math.IsNaN(v) && v < best.F {
			best.F = v
			best.X = append(best.X[:0], x...)
		}
		// odometer increment
		i := 0
		for ; i < n; i++ {
			idx[i]++
			if idx[i] < div {
				break
			}
			idx[i] = 0
		}
		if i == n {
			break
		}
	}
	best.Converged = best.X != nil
	return best, nil
}
