package optimize

import (
	"errors"
	"math"
	"testing"
)

func box(n int, lo, hi float64) ([]float64, []float64) {
	l := make([]float64, n)
	u := make([]float64, n)
	for i := range l {
		l[i] = lo
		u[i] = hi
	}
	return l, u
}

func TestQuadraticBowl(t *testing.T) {
	lo, hi := box(3, -10, 10)
	p := Problem{
		Objective: func(x []float64) float64 {
			var s float64
			for i, v := range x {
				d := v - float64(i+1)
				s += d * d
			}
			return s
		},
		Lower: lo, Upper: hi,
	}
	r, err := NelderMead(p, []float64{5, -5, 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range r.X {
		if math.Abs(v-float64(i+1)) > 1e-4 {
			t.Fatalf("x[%d] = %g, want %d", i, v, i+1)
		}
	}
	if !r.Converged {
		t.Fatal("should converge on a quadratic")
	}
}

func TestRosenbrock(t *testing.T) {
	lo, hi := box(2, -5, 5)
	p := Problem{
		Objective: func(x []float64) float64 {
			a := 1 - x[0]
			b := x[1] - x[0]*x[0]
			return a*a + 100*b*b
		},
		Lower: lo, Upper: hi,
	}
	r, err := NelderMead(p, []float64{-1.2, 1}, Options{MaxEvals: 5000, TolX: 1e-9, TolF: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1) > 1e-3 || math.Abs(r.X[1]-1) > 1e-3 {
		t.Fatalf("Rosenbrock minimum missed: %v (f=%g)", r.X, r.F)
	}
}

func TestBoundsRespected(t *testing.T) {
	// Unconstrained minimum at (-3, -3) but box is [0, 5]²: solution (0, 0).
	lo, hi := box(2, 0, 5)
	p := Problem{
		Objective: func(x []float64) float64 {
			return (x[0]+3)*(x[0]+3) + (x[1]+3)*(x[1]+3)
		},
		Lower: lo, Upper: hi,
	}
	r, err := NelderMead(p, []float64{4, 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range r.X {
		if v < 0 || v > 5 {
			t.Fatalf("bound violated: %v", r.X)
		}
	}
	if r.X[0] > 1e-3 || r.X[1] > 1e-3 {
		t.Fatalf("constrained minimum missed: %v", r.X)
	}
}

func TestStartOutsideBoxIsClipped(t *testing.T) {
	lo, hi := box(1, 0, 1)
	p := Problem{Objective: func(x []float64) float64 { return x[0] * x[0] }, Lower: lo, Upper: hi}
	r, err := NelderMead(p, []float64{50}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.X[0] < 0 || r.X[0] > 1 {
		t.Fatalf("start clipping failed: %v", r.X)
	}
}

func TestNaNObjectiveTreatedAsBad(t *testing.T) {
	lo, hi := box(2, -2, 2)
	p := Problem{
		Objective: func(x []float64) float64 {
			if x[0] < 0 {
				return math.NaN()
			}
			return (x[0] - 1) * (x[0] - 1) * (1 + x[1]*x[1])
		},
		Lower: lo, Upper: hi,
	}
	r, err := NelderMead(p, []float64{1.5, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1) > 1e-3 {
		t.Fatalf("NaN region derailed search: %v", r.X)
	}
}

func TestMaxEvalsHonored(t *testing.T) {
	lo, hi := box(2, -5, 5)
	calls := 0
	p := Problem{
		Objective: func(x []float64) float64 { calls++; return x[0]*x[0] + x[1]*x[1] },
		Lower:     lo, Upper: hi,
	}
	_, err := NelderMead(p, []float64{3, 3}, Options{MaxEvals: 37})
	if err != nil {
		t.Fatal(err)
	}
	if calls > 37+5 { // a shrink step may finish slightly over
		t.Fatalf("objective called %d times for MaxEvals=37", calls)
	}
}

func TestValidationErrors(t *testing.T) {
	lo, hi := box(2, 0, 1)
	cases := []struct {
		p  Problem
		x0 []float64
	}{
		{Problem{Objective: nil, Lower: lo, Upper: hi}, []float64{0.5, 0.5}},
		{Problem{Objective: func([]float64) float64 { return 0 }, Lower: lo[:1], Upper: hi}, []float64{0.5, 0.5}},
		{Problem{Objective: func([]float64) float64 { return 0 }, Lower: hi, Upper: lo}, []float64{0.5, 0.5}},
		{Problem{Objective: func([]float64) float64 { return 0 }, Lower: lo, Upper: hi}, nil},
	}
	for i, c := range cases {
		if _, err := NelderMead(c.p, c.x0, Options{}); !errors.Is(err, ErrBadProblem) {
			t.Errorf("case %d: want ErrBadProblem, got %v", i, err)
		}
	}
}

func TestMultiStartEscapesBasin(t *testing.T) {
	// Two-well function: local min near 2.5 (f≈1), global at -2.5 (f≈0).
	lo, hi := box(1, -4, 4)
	p := Problem{
		Objective: func(x []float64) float64 {
			v := x[0]
			return math.Min((v-2.5)*(v-2.5)+1, (v+2.5)*(v+2.5))
		},
		Lower: lo, Upper: hi,
	}
	r, err := MultiStart(p, [][]float64{{3}, {-3}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]+2.5) > 1e-3 {
		t.Fatalf("multistart missed global minimum: %v", r.X)
	}
}

func TestMultiStartEmpty(t *testing.T) {
	if _, err := MultiStart(Problem{}, nil, Options{}); !errors.Is(err, ErrBadProblem) {
		t.Fatal("expected ErrBadProblem for empty starts")
	}
}

// The three-parameter Matérn-like shape: anisotropic curved valley in a
// positive box, representative of the actual MLE surface.
func TestCurvedValley3D(t *testing.T) {
	lo, hi := box(3, 0.01, 5)
	p := Problem{
		Objective: func(x []float64) float64 {
			a := math.Log(x[0]) - math.Log(1.0)
			b := 10 * (math.Log(x[1]) - math.Log(0.1))
			c := 3 * (x[2] - 0.5)
			return a*a + b*b + c*c + 0.1*a*b
		},
		Lower: lo, Upper: hi,
	}
	r, err := NelderMead(p, []float64{0.5, 0.05, 1}, Options{MaxEvals: 4000, TolX: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-1) > 5e-3 || math.Abs(r.X[1]-0.1) > 5e-3 || math.Abs(r.X[2]-0.5) > 5e-3 {
		t.Fatalf("valley minimum missed: %v", r.X)
	}
}

func TestGridSearchFindsBasin(t *testing.T) {
	lo, hi := box(2, -4, 4)
	p := Problem{
		Objective: func(x []float64) float64 {
			// global minimum near (2, -2); a decoy basin near (-2, 2)
			g := (x[0]-2)*(x[0]-2) + (x[1]+2)*(x[1]+2)
			d := (x[0]+2)*(x[0]+2) + (x[1]-2)*(x[1]-2) + 3
			return math.Min(g, d)
		},
		Lower: lo, Upper: hi,
	}
	r, err := GridSearch(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.X[0]-2) > 1 || math.Abs(r.X[1]+2) > 1 {
		t.Fatalf("grid search missed the global basin: %v", r.X)
	}
	if r.Evals != 81 {
		t.Fatalf("evals = %d, want 81", r.Evals)
	}
	// refine with NelderMead from the grid point
	nm, err := NelderMead(p, r.X, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nm.X[0]-2) > 1e-3 || math.Abs(nm.X[1]+2) > 1e-3 {
		t.Fatalf("refinement failed: %v", nm.X)
	}
}

func TestGridSearchValidation(t *testing.T) {
	if _, err := GridSearch(Problem{}, 3); err == nil {
		t.Fatal("empty problem must error")
	}
}

// sphere2D is a deterministic smooth objective with its minimum at (1, 2).
func sphere2D() Problem {
	lo, hi := box(2, -10, 10)
	return Problem{
		Objective: func(x []float64) float64 {
			a, b := x[0]-1, x[1]-2
			return a*a + b*b + 0.5
		},
		Lower: lo, Upper: hi,
	}
}

// TestConvergedReflectsReturnedMinimum is the regression test for the
// convergence-reporting bug: a run that converged at attempt 0 and then
// exhausted MaxEvals inside a restart must still report Converged=true,
// because the returned minimum came from the converged attempt. The pre-fix
// code overwrote Converged with the last attempt's flag.
func TestConvergedReflectsReturnedMinimum(t *testing.T) {
	p := sphere2D()
	start := []float64{7, -4}

	// Restarts: -1 disables restarts, so base.Evals is the cost of exactly
	// one converging simplex descent on both pre- and post-fix code.
	base, err := NelderMead(p, start, Options{Restarts: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Converged {
		t.Fatal("single attempt must converge on a sphere")
	}

	// A budget that admits the converged attempt plus only a sliver of a
	// restart: pre-fix the restart exhausts it and flips Converged to false.
	r, err := NelderMead(p, start, Options{MaxEvals: base.Evals + 2})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Converged {
		t.Fatalf("converged answer reported Converged=false (evals %d)", r.Evals)
	}
	if math.Abs(r.X[0]-1) > 1e-4 || math.Abs(r.X[1]-2) > 1e-4 {
		t.Fatalf("minimum off: %v", r.X)
	}
}

// TestCleanConvergenceSkipsRestart is the regression test for the burned
// restart: a cleanly converged search must not spend additional evaluations
// re-descending from the incumbent. Pre-fix, the default single restart ran
// unconditionally after attempt 0 converged, roughly doubling Evals.
func TestCleanConvergenceSkipsRestart(t *testing.T) {
	p := sphere2D()
	start := []float64{7, -4}

	noRestart, err := NelderMead(p, start, Options{Restarts: -1})
	if err != nil {
		t.Fatal(err)
	}
	withRestart, err := NelderMead(p, start, Options{}) // default: 1 restart available
	if err != nil {
		t.Fatal(err)
	}
	if !noRestart.Converged || !withRestart.Converged {
		t.Fatal("both runs must converge")
	}
	if withRestart.Evals != noRestart.Evals {
		t.Fatalf("clean convergence burned a restart: %d evals with restarts available, %d without",
			withRestart.Evals, noRestart.Evals)
	}
}

// TestExhaustedBudgetStaysUnconverged pins the other side: when no attempt
// meets the tolerances, Converged must remain false.
func TestExhaustedBudgetStaysUnconverged(t *testing.T) {
	p := sphere2D()
	r, err := NelderMead(p, []float64{7, -4}, Options{MaxEvals: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Converged {
		t.Fatal("8 evaluations cannot satisfy the default tolerances")
	}
}
