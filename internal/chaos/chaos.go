// Package chaos provides deterministic, seeded fault injection for the
// execution layers: task panics and slowdowns for the shared-memory runtime,
// message drops and delays plus rank kills for the mpi layer, and forced
// compression-tolerance misses for the TLR generation pipeline.
//
// The package deliberately imports nothing from runtime/mpi/tlr/core — those
// layers expose nil-by-default hook points (runtime.ExecOptions.Inject,
// mpi.World.SetMsgHook, tlr.GenSpec.ForceMiss) and core adapts an Injector
// onto them, so the happy path pays a single nil check per hook site and the
// dependency graph stays acyclic.
//
// Every victim choice derives from FaultPlan.Seed through SplitMix64-style
// hashing of stable coordinates (task IDs, tile indices, message tuples),
// never from wall-clock time or execution order, so a given plan injects the
// same faults run after run.
package chaos

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks every fault the injector raises, so recovery layers and
// tests can tell injected faults from organic ones with errors.Is.
var ErrInjected = errors.New("chaos: injected fault")

// FaultPlan is a declarative, seeded set of faults to inject. The zero value
// injects nothing; counts are budgets (total injections per Injector, i.e.
// per session), not rates. Durations left zero default to 200µs.
type FaultPlan struct {
	// Seed parameterizes every victim choice. Two injectors with the same
	// plan pick the same victims; vary Seed to explore different placements.
	Seed uint64

	// TaskPanics is the number of task executions to kill with an injected
	// panic (first execution only — replays of a victim succeed, which is
	// what lets runtime retry prove recovery).
	TaskPanics int
	// TaskDelays is the number of task executions to slow down by TaskDelay
	// (straggler injection).
	TaskDelays int
	// TaskDelay is the injected straggler duration (0 = 200µs).
	TaskDelay time.Duration

	// DropMessages is the number of cross-rank message transmissions to drop
	// (first transmission only; mpi.World retransmits, so a dropped message
	// delays but never loses data).
	DropMessages int
	// DelayMessages is the number of cross-rank messages to delay by
	// MessageDelay before delivery.
	DelayMessages int
	// MessageDelay is the injected in-flight delay (0 = 200µs).
	MessageDelay time.Duration

	// CompressMisses is the number of off-diagonal TLR tiles forced to miss
	// the compression tolerance and fall back to dense (DE) storage. Unlike
	// the other faults this one changes the numerical representation (the
	// fallback is exact where the compression was approximate), so it is
	// excluded from bitwise-determinism comparisons.
	CompressMisses int

	// KillRank, when positive, kills rank KillRank-1 (one-based so the zero
	// value means "no kill") with a panic at its first hook call — the
	// rank-failure drill for world poisoning.
	KillRank int
	// KillAtPanel, when positive, moves the KillRank kill from the run entry
	// (the RankFault site) to the start of Cholesky panel KillAtPanel (via
	// the PanelKill hook) — a deterministic mid-factorization kill point for
	// exercising elastic recovery with partially factored shards. Panel
	// indices are 1-based here like KillRank, so KillAtPanel=k kills at the
	// start of the k-th panel; the zero value keeps the legacy run-entry
	// kill site. Ignored unless KillRank is set.
	KillAtPanel int
}

// Validate rejects negative budgets and durations with field-naming errors.
func (p *FaultPlan) Validate() error {
	if p.TaskPanics < 0 {
		return fmt.Errorf("chaos: negative TaskPanics %d", p.TaskPanics)
	}
	if p.TaskDelays < 0 {
		return fmt.Errorf("chaos: negative TaskDelays %d", p.TaskDelays)
	}
	if p.TaskDelay < 0 {
		return fmt.Errorf("chaos: negative TaskDelay %v", p.TaskDelay)
	}
	if p.DropMessages < 0 {
		return fmt.Errorf("chaos: negative DropMessages %d", p.DropMessages)
	}
	if p.DelayMessages < 0 {
		return fmt.Errorf("chaos: negative DelayMessages %d", p.DelayMessages)
	}
	if p.MessageDelay < 0 {
		return fmt.Errorf("chaos: negative MessageDelay %v", p.MessageDelay)
	}
	if p.CompressMisses < 0 {
		return fmt.Errorf("chaos: negative CompressMisses %d", p.CompressMisses)
	}
	if p.KillRank < 0 {
		return fmt.Errorf("chaos: negative KillRank %d", p.KillRank)
	}
	if p.KillAtPanel < 0 {
		return fmt.Errorf("chaos: negative KillAtPanel %d", p.KillAtPanel)
	}
	if p.KillAtPanel > 0 && p.KillRank == 0 {
		return fmt.Errorf("chaos: KillAtPanel=%d without KillRank", p.KillAtPanel)
	}
	return nil
}

// Stats counts the faults an Injector actually raised.
type Stats struct {
	TaskPanics      int64
	TaskDelays      int64
	MessagesDropped int64
	MessagesDelayed int64
	CompressMisses  int64
	RanksKilled     int64
}

// Injector is the stateful executor of one FaultPlan. It is safe for
// concurrent use from every worker and rank goroutine of a session.
type Injector struct {
	plan FaultPlan

	mu      sync.Mutex
	victims map[int]*victimSet   // graph length -> task victim choice
	misses  map[int]map[int]bool // tile count mt -> forced-miss linear indices
	msgSeq  map[msgKey]int       // per-(src,dst,tag) delivery counter

	panics  atomic.Int64
	delays  atomic.Int64
	drops   atomic.Int64
	msDelay atomic.Int64
	miss    atomic.Int64
	killed  atomic.Bool
	kills   atomic.Int64
}

type msgKey struct{ src, dst, tag int }

// victimSet fixes which task IDs of a graph of a given length get injected
// panics/delays, and which of those already fired (budgets are per-Injector:
// a victim fires once even though the optimizer re-executes its graph dozens
// of times).
type victimSet struct {
	panicAt map[int]int // task ID -> victim slot
	delayAt map[int]int
	fired   map[int]bool // slot (panics and delays share the space via offset)
}

// NewInjector builds the injector for a validated plan (invalid plans
// panic — Config.Validate rejects them long before this point).
func NewInjector(p *FaultPlan) *Injector {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	plan := *p
	if plan.TaskDelay == 0 {
		plan.TaskDelay = 200 * time.Microsecond
	}
	if plan.MessageDelay == 0 {
		plan.MessageDelay = 200 * time.Microsecond
	}
	return &Injector{
		plan:    plan,
		victims: map[int]*victimSet{},
		misses:  map[int]map[int]bool{},
		msgSeq:  map[msgKey]int{},
	}
}

// Plan returns the (defaults-resolved) plan the injector executes.
func (in *Injector) Plan() FaultPlan { return in.plan }

// Stats snapshots the injected-fault counts.
func (in *Injector) Stats() Stats {
	return Stats{
		TaskPanics:      in.panics.Load(),
		TaskDelays:      in.delays.Load(),
		MessagesDropped: in.drops.Load(),
		MessagesDelayed: in.msDelay.Load(),
		CompressMisses:  in.miss.Load(),
		RanksKilled:     in.kills.Load(),
	}
}

// mix is a SplitMix64-style avalanche of an arbitrary coordinate list into
// the plan seed.
func (in *Injector) mix(parts ...uint64) uint64 {
	z := in.plan.Seed ^ 0x9e3779b97f4a7c15
	for _, p := range parts {
		z ^= p
		z += 0x9e3779b97f4a7c15
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}

// pickDistinct selects count distinct values in [0, n) from hash stream kind,
// resolving collisions by linear probing so the full budget lands even on
// small domains.
func (in *Injector) pickDistinct(kind uint64, count, n int) map[int]int {
	out := make(map[int]int, count)
	if n <= 0 {
		return out
	}
	if count > n {
		count = n
	}
	taken := make(map[int]bool, count)
	for k := 0; k < count; k++ {
		id := int(in.mix(kind, uint64(k)) % uint64(n))
		for taken[id] {
			id = (id + 1) % n
		}
		taken[id] = true
		out[id] = k
	}
	return out
}

func (in *Injector) victimsFor(graphLen int) *victimSet {
	if v, ok := in.victims[graphLen]; ok {
		return v
	}
	v := &victimSet{
		panicAt: in.pickDistinct(1, in.plan.TaskPanics, graphLen),
		delayAt: in.pickDistinct(2, in.plan.TaskDelays, graphLen),
		fired:   map[int]bool{},
	}
	in.victims[graphLen] = v
	return v
}

// TaskHook is the runtime.ExecOptions.Inject adapter: called before every
// task execution attempt, it panics on a panic victim's first attempt and
// sleeps on a delay victim. Victims are a pure function of (seed, graph
// length, task ID); each fires once per Injector.
func (in *Injector) TaskHook(graphLen, taskID, attempt int) {
	if attempt != 0 {
		return // replays of a victim always succeed
	}
	var doPanic, doDelay bool
	in.mu.Lock()
	v := in.victimsFor(graphLen)
	if slot, ok := v.panicAt[taskID]; ok && !v.fired[slot] && in.panics.Load() < int64(in.plan.TaskPanics) {
		v.fired[slot] = true
		in.panics.Add(1)
		doPanic = true
	}
	if slot, ok := v.delayAt[taskID]; ok && !v.fired[graphLen+slot] && in.delays.Load() < int64(in.plan.TaskDelays) {
		v.fired[graphLen+slot] = true
		in.delays.Add(1)
		doDelay = true
	}
	in.mu.Unlock()
	if doDelay {
		time.Sleep(in.plan.TaskDelay)
	}
	if doPanic {
		panic(fmt.Errorf("%w: task %d killed", ErrInjected, taskID))
	}
}

// MessageFault decides the fate of one cross-rank message transmission:
// drop it (the sender retransmits), delay it, or deliver it untouched.
// Candidates hash from the stable (src, dst, tag, occurrence) tuple;
// retransmissions (attempt > 0) always deliver, so a dropped message costs
// latency but never data.
func (in *Injector) MessageFault(src, dst, tag, attempt int) (drop bool, delay time.Duration) {
	if attempt != 0 {
		return false, 0
	}
	in.mu.Lock()
	key := msgKey{src, dst, tag}
	occ := in.msgSeq[key]
	in.msgSeq[key] = occ + 1
	h := in.mix(3, uint64(src), uint64(dst), uint64(tag), uint64(occ))
	switch {
	case h%4 == 0 && in.drops.Load() < int64(in.plan.DropMessages):
		in.drops.Add(1)
		drop = true
	case h%4 == 1 && in.msDelay.Load() < int64(in.plan.DelayMessages):
		in.msDelay.Add(1)
		delay = in.plan.MessageDelay
	}
	in.mu.Unlock()
	return drop, delay
}

// CompressMiss is the tlr.GenSpec.ForceMiss adapter: it reports whether tile
// (i, j) of an mt×mt tiling is one of the CompressMisses strictly-lower tiles
// forced to miss tolerance. Membership is a pure function of (seed, mt, i, j)
// so concurrent generation tasks reach identical verdicts in any order.
func (in *Injector) CompressMiss(mt, i, j int) bool {
	if in.plan.CompressMisses == 0 || j >= i {
		return false
	}
	in.mu.Lock()
	set, ok := in.misses[mt]
	if !ok {
		total := mt * (mt - 1) / 2
		picked := in.pickDistinct(4, in.plan.CompressMisses, total)
		set = make(map[int]bool, len(picked))
		for idx := range picked {
			set[idx] = true
		}
		in.misses[mt] = set
	}
	hit := set[i*(i-1)/2+j]
	in.mu.Unlock()
	if hit {
		in.miss.Add(1)
	}
	return hit
}

// RankFault kills the plan's victim rank (once per Injector) with a panic;
// call it at the top of every rank's World.Run closure. Non-victim ranks
// return immediately. When the plan targets a specific panel (KillAtPanel),
// the kill is deferred to PanelKill and this site is a no-op.
func (in *Injector) RankFault(rank int) {
	if in.plan.KillRank != rank+1 || in.plan.KillAtPanel > 0 {
		return
	}
	if in.killed.Swap(true) {
		return
	}
	in.kills.Add(1)
	panic(fmt.Errorf("%w: rank %d killed", ErrInjected, rank))
}

// PanelKill is the mpi.DistTLR.PanelHook adapter: it kills the plan's victim
// rank (once per Injector) with a panic at the start of the plan's target
// panel — panel KillAtPanel-1, matching the hook's 0-based panel index. A
// no-op for non-victim ranks, other panels, and plans without KillAtPanel.
func (in *Injector) PanelKill(rank, panel int) {
	if in.plan.KillAtPanel == 0 || in.plan.KillRank != rank+1 || in.plan.KillAtPanel != panel+1 {
		return
	}
	if in.killed.Swap(true) {
		return
	}
	in.kills.Add(1)
	panic(fmt.Errorf("%w: rank %d killed at panel %d", ErrInjected, rank, panel))
}
