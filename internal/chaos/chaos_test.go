package chaos

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// panicVictims replays a graph of graphLen task executions against a fresh
// injector and returns the task IDs whose first attempt panicked.
func panicVictims(t *testing.T, plan FaultPlan, graphLen int) []int {
	t.Helper()
	in := NewInjector(&plan)
	var victims []int
	for id := 0; id < graphLen; id++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					err, ok := r.(error)
					if !ok || !errors.Is(err, ErrInjected) {
						t.Fatalf("panic value must wrap ErrInjected: %v", r)
					}
					victims = append(victims, id)
				}
			}()
			in.TaskHook(graphLen, id, 0)
		}()
	}
	return victims
}

func TestTaskPanicsDeterministicAndBudgeted(t *testing.T) {
	plan := FaultPlan{Seed: 42, TaskPanics: 3}
	a := panicVictims(t, plan, 100)
	b := panicVictims(t, plan, 100)
	if len(a) != 3 {
		t.Fatalf("budget of 3 produced %d panics", len(a))
	}
	if len(b) != len(a) {
		t.Fatalf("reruns disagree: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("victim choice not deterministic: %v vs %v", a, b)
		}
	}
	if c := panicVictims(t, FaultPlan{Seed: 7, TaskPanics: 3}, 100); len(c) == 3 {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
			}
		}
		if same {
			t.Fatal("different seeds picked identical victims (suspicious)")
		}
	}
}

func TestReplaysAlwaysSucceed(t *testing.T) {
	in := NewInjector(&FaultPlan{Seed: 1, TaskPanics: 100})
	for id := 0; id < 50; id++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("attempt 1 must never panic (task %d): %v", id, r)
				}
			}()
			in.TaskHook(50, id, 1)
		}()
	}
}

func TestMessageFaultDeterministicAndBudgeted(t *testing.T) {
	run := func() (drops, delays int, verdicts []bool) {
		in := NewInjector(&FaultPlan{Seed: 9, DropMessages: 2, DelayMessages: 2})
		for i := 0; i < 200; i++ {
			drop, delay := in.MessageFault(i%3, (i+1)%3, i%7, 0)
			verdicts = append(verdicts, drop)
			if drop {
				drops++
			}
			if delay > 0 {
				delays++
			}
		}
		return
	}
	d1, l1, v1 := run()
	d2, _, v2 := run()
	if d1 != 2 || l1 != 2 {
		t.Fatalf("budgets not honored: %d drops, %d delays", d1, l1)
	}
	if d1 != d2 {
		t.Fatalf("drop counts disagree across runs: %d vs %d", d1, d2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("verdict %d not deterministic", i)
		}
	}
	// Retransmissions are never dropped.
	in := NewInjector(&FaultPlan{Seed: 9, DropMessages: 100})
	for i := 0; i < 50; i++ {
		if drop, _ := in.MessageFault(0, 1, i, 1); drop {
			t.Fatal("attempt 1 must always deliver")
		}
	}
}

func TestCompressMissPureAndBudgeted(t *testing.T) {
	const mt = 8
	in := NewInjector(&FaultPlan{Seed: 3, CompressMisses: 4})
	hits := map[[2]int]bool{}
	for i := 0; i < mt; i++ {
		for j := 0; j < i; j++ {
			if in.CompressMiss(mt, i, j) {
				hits[[2]int{i, j}] = true
			}
		}
	}
	if len(hits) != 4 {
		t.Fatalf("%d tiles forced dense, want 4", len(hits))
	}
	// Re-querying (concurrent tasks, graph re-executions) gives the same set.
	for i := 0; i < mt; i++ {
		for j := 0; j < i; j++ {
			if in.CompressMiss(mt, i, j) != hits[[2]int{i, j}] {
				t.Fatalf("CompressMiss(%d,%d) not stable", i, j)
			}
		}
	}
	if in.CompressMiss(mt, 2, 2) || in.CompressMiss(mt, 2, 5) {
		t.Fatal("diagonal/upper tiles can never miss compression")
	}
}

func TestRankFaultFiresOnce(t *testing.T) {
	in := NewInjector(&FaultPlan{KillRank: 2}) // kills rank 1
	in.RankFault(0)                            // not the victim
	fired := 0
	for i := 0; i < 3; i++ {
		func() {
			defer func() {
				if recover() != nil {
					fired++
				}
			}()
			in.RankFault(1)
		}()
	}
	if fired != 1 {
		t.Fatalf("rank kill fired %d times, want exactly once", fired)
	}
	if s := in.Stats(); s.RanksKilled != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestPanelKillTargetsPanelOnce(t *testing.T) {
	in := NewInjector(&FaultPlan{KillRank: 3, KillAtPanel: 3}) // rank 2, panel 2
	in.RankFault(2)                                            // deferred to the panel site: must not fire
	in.PanelKill(2, 0)                                         // wrong panel
	in.PanelKill(1, 2)                                         // wrong rank
	fired := 0
	for i := 0; i < 3; i++ {
		func() {
			defer func() {
				if recover() != nil {
					fired++
				}
			}()
			in.PanelKill(2, 2)
		}()
	}
	if fired != 1 {
		t.Fatalf("panel kill fired %d times, want exactly once", fired)
	}
	if s := in.Stats(); s.RanksKilled != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestStatsCountInjections(t *testing.T) {
	in := NewInjector(&FaultPlan{Seed: 5, TaskPanics: 1, DelayMessages: 1, MessageDelay: time.Microsecond})
	for id := 0; id < 20; id++ {
		func() {
			defer func() { _ = recover() }()
			in.TaskHook(20, id, 0)
		}()
	}
	for i := 0; i < 100; i++ {
		in.MessageFault(0, 1, i, 0)
	}
	s := in.Stats()
	if s.TaskPanics != 1 || s.MessagesDelayed != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestValidateNamesFields(t *testing.T) {
	for _, tc := range []struct {
		plan FaultPlan
		want string
	}{
		{FaultPlan{TaskPanics: -1}, "TaskPanics"},
		{FaultPlan{TaskDelays: -1}, "TaskDelays"},
		{FaultPlan{TaskDelay: -time.Second}, "TaskDelay"},
		{FaultPlan{DropMessages: -1}, "DropMessages"},
		{FaultPlan{DelayMessages: -1}, "DelayMessages"},
		{FaultPlan{MessageDelay: -time.Second}, "MessageDelay"},
		{FaultPlan{CompressMisses: -1}, "CompressMisses"},
		{FaultPlan{KillRank: -1}, "KillRank"},
		{FaultPlan{KillRank: 1, KillAtPanel: -1}, "KillAtPanel"},
		{FaultPlan{KillAtPanel: 2}, "KillAtPanel"},
	} {
		err := tc.plan.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %v, want mention of %s", tc.plan, err, tc.want)
		}
	}
	ok := FaultPlan{Seed: 1, TaskPanics: 2, DropMessages: 1, KillRank: 3}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}
