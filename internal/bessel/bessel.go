// Package bessel implements the special functions needed by the Matérn
// covariance family: the modified Bessel function of the second kind K_ν for
// real order ν ≥ 0, plus small Γ-related helpers.
//
// The algorithm follows the classical Temme / continued-fraction split used
// by reference implementations (Abramowitz & Stegun §9.6, Temme 1975):
//
//   - for x < 2, K_μ and K_{μ+1} (|μ| ≤ ½) come from Temme's power series;
//   - for x ≥ 2 they come from the Steed-style continued fraction CF2;
//   - forward recurrence K_{ν+1}(x) = K_{ν-1}(x) + (2ν/x)·K_ν(x) lifts the
//     order from μ to the requested ν.
//
// Accuracy is ~1e-12 relative over the parameter ranges geostatistics uses
// (ν ∈ (0, 5], x ∈ (0, 700)); the tests pin reference values.
package bessel

import (
	"math"
)

const (
	eps   = 1e-16
	maxIt = 20000
	euler = 0.57721566490153286060651209008240243104215933593992
)

// K returns K_ν(x), the modified Bessel function of the second kind of real
// order ν ≥ 0 at x > 0. It returns +Inf for x ≤ 0 (K diverges at the origin)
// and NaN for negative ν (callers use K_|ν| = K_ν symmetry themselves if
// needed; Matérn smoothness is always positive).
func K(nu, x float64) float64 {
	k, _ := kPair(nu, x, false)
	return k
}

// KScaled returns e^x · K_ν(x), which stays representable for large x where
// K_ν itself underflows.
func KScaled(nu, x float64) float64 {
	k, _ := kPair(nu, x, true)
	return k
}

// kPair computes (K_ν, K_{ν+1}), optionally scaled by e^x.
func kPair(nu, x float64, scaled bool) (knu, knu1 float64) {
	if nu < 0 {
		return math.NaN(), math.NaN()
	}
	if x <= 0 {
		return math.Inf(1), math.Inf(1)
	}
	n := int(nu + 0.5)
	mu := nu - float64(n) // |mu| <= 1/2
	xi2 := 2 / x

	var rkmu, rk1 float64
	if x < 2 {
		rkmu, rk1 = temmeSeries(mu, x)
		if scaled {
			ex := math.Exp(x)
			rkmu *= ex
			rk1 *= ex
		}
	} else {
		rkmu, rk1 = cf2(mu, x, scaled)
	}
	// Forward recurrence to raise the order from mu to nu.
	for i := 1; i <= n; i++ {
		rktemp := (mu+float64(i))*xi2*rk1 + rkmu
		rkmu = rk1
		rk1 = rktemp
	}
	return rkmu, rk1
}

// temmeSeries evaluates K_mu(x) and K_{mu+1}(x) for x < 2, |mu| ≤ 1/2 using
// Temme's series.
func temmeSeries(mu, x float64) (kmu, kmu1 float64) {
	x2 := 0.5 * x
	pimu := math.Pi * mu
	fact := 1.0
	if math.Abs(pimu) > eps {
		fact = pimu / math.Sin(pimu)
	}
	d := -math.Log(x2)
	e := mu * d
	fact2 := 1.0
	if math.Abs(e) > eps {
		fact2 = math.Sinh(e) / e
	}
	gam1, gam2, gampl, gammi := gammaTemme(mu)
	ff := fact * (gam1*math.Cosh(e) + gam2*fact2*d)
	sum := ff
	e = math.Exp(e)
	p := 0.5 * e / gampl
	q := 0.5 / (e * gammi)
	c := 1.0
	dd := x2 * x2
	sum1 := p
	mu2 := mu * mu
	for i := 1; i <= maxIt; i++ {
		fi := float64(i)
		ff = (fi*ff + p + q) / (fi*fi - mu2)
		c *= dd / fi
		p /= fi - mu
		q /= fi + mu
		del := c * ff
		sum += del
		del1 := c * (p - fi*ff)
		sum1 += del1
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum, sum1 * (2 / x)
}

// cf2 evaluates K_mu(x) and K_{mu+1}(x) for x ≥ 2, |mu| ≤ 1/2 using the
// continued fraction CF2 (Thompson & Barnett steepest-descent form).
func cf2(mu, x float64, scaled bool) (kmu, kmu1 float64) {
	mu2 := mu * mu
	b := 2 * (1 + x)
	d := 1 / b
	h := d
	delh := d
	q1, q2 := 0.0, 1.0
	a1 := 0.25 - mu2
	q := a1
	c := a1
	a := -a1
	s := 1 + q*delh
	for i := 2; i <= maxIt; i++ {
		a -= 2 * float64(i-1)
		c = -a * c / float64(i)
		qnew := (q1 - b*q2) / a
		q1 = q2
		q2 = qnew
		q += c * qnew
		b += 2
		d = 1 / (b + a*d)
		delh = (b*d - 1) * delh
		h += delh
		dels := q * delh
		s += dels
		if math.Abs(dels/s) < eps {
			break
		}
	}
	h = a1 * h
	pref := math.Sqrt(math.Pi/(2*x)) / s
	if !scaled {
		pref *= math.Exp(-x)
	}
	kmu = pref
	kmu1 = kmu * (mu + x + 0.5 - h) / x
	return kmu, kmu1
}

// gammaTemme returns the four Γ-related quantities Temme's series needs:
//
//	gam1  = (1/Γ(1−μ) − 1/Γ(1+μ)) / (2μ)
//	gam2  = (1/Γ(1−μ) + 1/Γ(1+μ)) / 2
//	gampl = 1/Γ(1+μ),  gammi = 1/Γ(1−μ)
func gammaTemme(mu float64) (gam1, gam2, gampl, gammi float64) {
	gampl = 1 / math.Gamma(1+mu)
	gammi = 1 / math.Gamma(1-mu)
	if math.Abs(mu) < 1e-5 {
		// Taylor expansion: gam1(μ) = −γ − c₃μ² + O(μ⁴) with
		// c₃ = ζ(3)/3 − γπ²/12 + γ³/6; avoids the catastrophic cancellation
		// the direct quotient suffers for tiny μ.
		const c3 = -0.04200267288081598
		gam1 = -euler - c3*mu*mu
	} else {
		gam1 = (gammi - gampl) / (2 * mu)
	}
	gam2 = (gammi + gampl) / 2
	return
}

// LogGamma returns ln Γ(x) for x > 0 (thin wrapper to keep the call sites in
// this repository uniform and testable).
func LogGamma(x float64) float64 {
	lg, _ := math.Lgamma(x)
	return lg
}

// Gamma returns Γ(x).
func Gamma(x float64) float64 { return math.Gamma(x) }
