package bessel

import (
	"math"
	"testing"
)

// kQuad evaluates K_ν(x) by numerically integrating the representation
// K_ν(x) = ∫₀^∞ exp(−x·cosh t)·cosh(νt) dt with composite Simpson. It is an
// independent cross-check for fractional orders with no closed form.
func kQuad(nu, x float64) float64 {
	// The integrand decays like exp(−x·e^t/2); cut when it is negligible.
	tMax := 1.0
	for math.Exp(-x*math.Cosh(tMax))*math.Cosh(nu*tMax) > 1e-20 {
		tMax += 0.5
		if tMax > 60 {
			break
		}
	}
	n := 20000 // even
	h := tMax / float64(n)
	f := func(t float64) float64 { return math.Exp(-x*math.Cosh(t)) * math.Cosh(nu*t) }
	sum := f(0) + f(tMax)
	for i := 1; i < n; i++ {
		w := 4.0
		if i%2 == 0 {
			w = 2.0
		}
		sum += w * f(float64(i)*h)
	}
	return sum * h / 3
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func TestKReferenceValues(t *testing.T) {
	// High-precision reference values (Abramowitz & Stegun / mpmath).
	cases := []struct {
		nu, x, want float64
	}{
		{0, 1, 0.42102443824070833333562737921260903614},
		{1, 1, 0.60190723019723457473754000153561733926},
		{0, 2, 0.11389387274953343565271957493248183299},
		{1, 2, 0.13986588181652242728459880703541102785},
		{0, 0.1, 2.4270690247020166125137723582507797191},
		{1, 0.1, 9.8538447808706064},
	}
	for _, c := range cases {
		got := K(c.nu, c.x)
		if relErr(got, c.want) > 1e-11 {
			t.Errorf("K(%g, %g) = %.16g, want %.16g (rel err %g)", c.nu, c.x, got, c.want, relErr(got, c.want))
		}
	}
}

func TestKHalfIntegerClosedForms(t *testing.T) {
	// K_{1/2}(x) = sqrt(pi/(2x)) e^{-x}
	// K_{3/2}(x) = K_{1/2}(x) (1 + 1/x)
	// K_{5/2}(x) = K_{1/2}(x) (1 + 3/x + 3/x^2)
	for _, x := range []float64{0.05, 0.3, 1, 1.9, 2, 2.1, 5, 20, 100} {
		base := math.Sqrt(math.Pi/(2*x)) * math.Exp(-x)
		checks := []struct {
			nu, want float64
		}{
			{0.5, base},
			{1.5, base * (1 + 1/x)},
			{2.5, base * (1 + 3/x + 3/(x*x))},
		}
		for _, c := range checks {
			got := K(c.nu, x)
			if relErr(got, c.want) > 1e-10 {
				t.Errorf("K(%g, %g) = %g, want %g (rel %g)", c.nu, x, got, c.want, relErr(got, c.want))
			}
		}
	}
}

func TestKFractionalOrderAgainstQuadrature(t *testing.T) {
	for _, nu := range []float64{0.1, 0.3, 0.7, 1.2, 1.7, 2.3} {
		for _, x := range []float64{0.2, 0.9, 1.5, 2.5, 4, 8} {
			got := K(nu, x)
			want := kQuad(nu, x)
			if relErr(got, want) > 1e-8 {
				t.Errorf("K(%g, %g) = %g, quadrature %g (rel %g)", nu, x, got, want, relErr(got, want))
			}
		}
	}
}

func TestKRecurrence(t *testing.T) {
	// K_{nu+1}(x) = K_{nu-1}(x) + (2 nu / x) K_nu(x)
	for _, nu := range []float64{0.4, 0.5, 1.0, 1.3, 2.5} {
		for _, x := range []float64{0.5, 1.5, 1.999, 2.001, 3, 10, 50} {
			lhs := K(nu+1, x)
			rhs := K(nu-1, x) + (2*nu/x)*K(nu, x)
			if relErr(lhs, rhs) > 1e-9 {
				t.Errorf("recurrence fails at nu=%g x=%g: %g vs %g", nu, x, lhs, rhs)
			}
		}
	}
}

func TestKContinuityAcrossAlgorithmSwitch(t *testing.T) {
	// The Temme/CF2 switch at x = 2 must not introduce a jump.
	for _, nu := range []float64{0, 0.25, 0.5, 1, 1.75} {
		lo := K(nu, 2-1e-9)
		hi := K(nu, 2+1e-9)
		if relErr(lo, hi) > 1e-7 {
			t.Errorf("discontinuity at x=2 for nu=%g: %g vs %g", nu, lo, hi)
		}
	}
}

func TestKScaledConsistency(t *testing.T) {
	for _, nu := range []float64{0, 0.5, 1.2} {
		for _, x := range []float64{0.5, 1, 3, 30, 200} {
			got := KScaled(nu, x)
			want := K(nu, x) * math.Exp(x)
			if x <= 200 && relErr(got, want) > 1e-9 {
				t.Errorf("KScaled(%g,%g) = %g, want %g", nu, x, got, want)
			}
		}
	}
	// At very large x, K underflows but KScaled stays finite and near the
	// asymptotic sqrt(pi/2x).
	v := KScaled(0.5, 800)
	want := math.Sqrt(math.Pi / (2 * 800))
	if relErr(v, want) > 1e-10 {
		t.Errorf("KScaled asymptotic: %g want %g", v, want)
	}
}

func TestKMonotoneDecreasingInX(t *testing.T) {
	for _, nu := range []float64{0, 0.5, 1, 2} {
		prev := math.Inf(1)
		for x := 0.1; x < 20; x += 0.37 {
			v := K(nu, x)
			if v >= prev {
				t.Fatalf("K(%g, ·) not strictly decreasing at x=%g", nu, x)
			}
			if v <= 0 || math.IsNaN(v) {
				t.Fatalf("K(%g, %g) = %g not positive", nu, x, v)
			}
			prev = v
		}
	}
}

func TestKEdgeCases(t *testing.T) {
	if !math.IsInf(K(0.5, 0), 1) {
		t.Error("K at x=0 should be +Inf")
	}
	if !math.IsInf(K(1, -1), 1) {
		t.Error("K at negative x should be +Inf (divergent domain)")
	}
	if !math.IsNaN(K(-0.5, 1)) {
		t.Error("negative order should return NaN")
	}
}

func TestGammaHelpers(t *testing.T) {
	if relErr(Gamma(0.5), math.Sqrt(math.Pi)) > 1e-14 {
		t.Error("Gamma(1/2) wrong")
	}
	if relErr(LogGamma(10), math.Log(362880)) > 1e-12 {
		t.Error("LogGamma(10) wrong")
	}
	// Temme helpers: at mu=0, gam1 = Euler's constant and gam2 = 1.
	g1, g2, gp, gm := gammaTemme(0)
	if relErr(g1, -euler) > 1e-12 || relErr(g2, 1) > 1e-12 || gp != 1 || gm != 1 {
		t.Errorf("gammaTemme(0) = %g %g %g %g", g1, g2, gp, gm)
	}
	// Smoothness across the small-mu switch at 1e-5.
	a1, _, _, _ := gammaTemme(1e-5 * 0.99)
	b1, _, _, _ := gammaTemme(1e-5 * 1.01)
	if math.Abs(a1-b1) > 1e-10 {
		t.Errorf("gammaTemme discontinuous near switch: %g vs %g", a1, b1)
	}
}
