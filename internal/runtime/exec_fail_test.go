package runtime

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentFailuresAccounting pins the unified error path: when two
// tasks fail concurrently, BOTH must take the failure branch — the second
// must not fall through to the success bookkeeping (which would count a
// failed task as completed and ready the successors of a task whose output
// does not exist). The error message carries the audit: 0 completed, 2
// failed, 2 cancelled.
func TestConcurrentFailuresAccounting(t *testing.T) {
	g := NewGraph()
	ha := g.NewHandle("a", 8, 0)
	hb := g.NewHandle("b", 8, 0)
	// Both failing tasks rendezvous mid-run before either panics, so by the
	// time the second one reaches the error path `failed` is (or is about to
	// be) set by the first — the exact interleaving the pre-fix code lost.
	var barrier sync.WaitGroup
	barrier.Add(2)
	fail := func() {
		barrier.Done()
		barrier.Wait()
		panic("boom")
	}
	g.AddTask(Task{Name: "failA", Run: fail, Accesses: []Access{{ha, Write}}})
	g.AddTask(Task{Name: "failB", Run: fail, Accesses: []Access{{hb, Write}}})
	var succRan atomic.Bool
	succ := func() { succRan.Store(true) }
	g.AddTask(Task{Name: "succA", Run: succ, Accesses: []Access{{ha, Read}}})
	g.AddTask(Task{Name: "succB", Run: succ, Accesses: []Access{{hb, Read}}})

	err := g.Execute(ExecOptions{Workers: 2})
	if err == nil {
		t.Fatal("expected error from panicking tasks")
	}
	if succRan.Load() {
		t.Fatal("successor of a failed task ran")
	}
	if !strings.Contains(err.Error(), "0 of 4 tasks completed (2 failed, 2 cancelled)") {
		t.Fatalf("failure accounting wrong: %v", err)
	}
}

// TestFailureCancelsSuccessors checks the single-failure drain count: the
// failed task and its cancelled successor are accounted separately from
// completed work.
func TestFailureCancelsSuccessors(t *testing.T) {
	g := NewGraph()
	h := g.NewHandle("a", 8, 0)
	g.AddTask(Task{Name: "boom", Run: func() { panic("x") }, Accesses: []Access{{h, Write}}})
	var succRan atomic.Bool
	g.AddTask(Task{Name: "succ", Run: func() { succRan.Store(true) }, Accesses: []Access{{h, Read}}})

	err := g.Execute(ExecOptions{Workers: 2})
	if err == nil {
		t.Fatal("expected error")
	}
	if succRan.Load() {
		t.Fatal("successor of the failed task ran")
	}
	if !strings.Contains(err.Error(), "0 of 2 tasks completed (1 failed, 1 cancelled)") {
		t.Fatalf("failure accounting wrong: %v", err)
	}
}

// TestPanicErrorIsWrapped checks that a task panicking with an error value
// stays inspectable through the executor's wrapping.
func TestPanicErrorIsWrapped(t *testing.T) {
	sentinel := errors.New("tile is singular")
	g := NewGraph()
	h := g.NewHandle("a", 8, 0)
	g.AddTask(Task{Name: "potrf", Run: func() { panic(sentinel) }, Accesses: []Access{{h, Write}}})
	err := g.Execute(ExecOptions{Workers: 1})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is lost the panic value: %v", err)
	}
}
