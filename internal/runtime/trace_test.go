package runtime

import (
	"strings"
	"testing"
	"time"
)

func busyGraph(tasks int) *Graph {
	g := NewGraph()
	for i := 0; i < tasks; i++ {
		h := g.NewHandle("v", 8, 0)
		g.AddTask(Task{
			Name: "work",
			Run: func() {
				// a small but measurable task body
				s := 0.0
				for k := 0; k < 20000; k++ {
					s += float64(k)
				}
				_ = s
			},
			Accesses: []Access{{h, Write}},
		})
	}
	return g
}

func TestExecuteTracedRecordsAllTasks(t *testing.T) {
	g := busyGraph(24)
	tr, err := g.ExecuteTraced(ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 24 {
		t.Fatalf("recorded %d events, want 24", len(tr.Events))
	}
	seen := map[int]bool{}
	for _, e := range tr.Events {
		if e.End < e.Start {
			t.Fatalf("event ends before it starts: %+v", e)
		}
		if e.Worker < 0 || e.Worker >= 4 {
			t.Fatalf("bad worker id %d", e.Worker)
		}
		if seen[e.ID] {
			t.Fatalf("task %d recorded twice", e.ID)
		}
		seen[e.ID] = true
	}
	if tr.Wall <= 0 {
		t.Fatal("wall time missing")
	}
}

func TestTraceUtilizationBounds(t *testing.T) {
	g := busyGraph(40)
	tr, err := g.ExecuteTraced(ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	u := tr.Utilization()
	if u <= 0 || u > 1.3 { // >1 only via timer quantization noise
		t.Fatalf("utilization %g out of bounds", u)
	}
	if tr.BusyTime() <= 0 {
		t.Fatal("busy time missing")
	}
}

func TestTraceByKernel(t *testing.T) {
	g := NewGraph()
	h1 := g.NewHandle("a", 8, 0)
	h2 := g.NewHandle("b", 8, 0)
	g.AddTask(Task{Name: "alpha", Run: func() { time.Sleep(time.Millisecond) }, Accesses: []Access{{h1, Write}}})
	g.AddTask(Task{Name: "beta", Run: func() { time.Sleep(time.Millisecond) }, Accesses: []Access{{h2, Write}}})
	tr, err := g.ExecuteTraced(ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	byK := tr.ByKernel()
	if byK["alpha"] <= 0 || byK["beta"] <= 0 {
		t.Fatalf("kernel aggregation missing entries: %v", byK)
	}
}

func TestGanttRendering(t *testing.T) {
	g := busyGraph(10)
	tr, err := g.ExecuteTraced(ExecOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Gantt(60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 workers
		t.Fatalf("gantt rows: %d\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "utilization") {
		t.Fatalf("gantt header missing: %s", lines[0])
	}
	if !strings.Contains(out, "w") || !strings.Contains(out, "|") {
		t.Fatal("gantt body malformed")
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	tr := &Trace{Workers: 2}
	if !strings.Contains(tr.Gantt(40), "empty") {
		t.Fatal("empty trace should render a placeholder")
	}
}

func TestExecuteTracedPropagatesErrors(t *testing.T) {
	g := NewGraph()
	h := g.NewHandle("a", 8, 0)
	g.AddTask(Task{Name: "boom", Run: func() { panic("x") }, Accesses: []Access{{h, Write}}})
	if _, err := g.ExecuteTraced(ExecOptions{Workers: 1}); err == nil {
		t.Fatal("expected error from panicking task")
	}
}
