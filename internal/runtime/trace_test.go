package runtime

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

func busyGraph(tasks int) *Graph {
	g := NewGraph()
	for i := 0; i < tasks; i++ {
		h := g.NewHandle("v", 8, 0)
		g.AddTask(Task{
			Name: "work",
			Run: func() {
				// a small but measurable task body
				s := 0.0
				for k := 0; k < 20000; k++ {
					s += float64(k)
				}
				_ = s
			},
			Accesses: []Access{{h, Write}},
		})
	}
	return g
}

func TestExecuteTracedRecordsAllTasks(t *testing.T) {
	g := busyGraph(24)
	tr, err := g.ExecuteTraced(ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 24 {
		t.Fatalf("recorded %d events, want 24", len(tr.Events))
	}
	seen := map[int]bool{}
	for _, e := range tr.Events {
		if e.End < e.Start {
			t.Fatalf("event ends before it starts: %+v", e)
		}
		if e.Worker < 0 || e.Worker >= 4 {
			t.Fatalf("bad worker id %d", e.Worker)
		}
		if seen[e.ID] {
			t.Fatalf("task %d recorded twice", e.ID)
		}
		seen[e.ID] = true
	}
	if tr.Wall <= 0 {
		t.Fatal("wall time missing")
	}
}

func TestTraceUtilizationBounds(t *testing.T) {
	g := busyGraph(40)
	tr, err := g.ExecuteTraced(ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	u := tr.Utilization()
	// Events and Wall share one epoch and events are clamped into [0, Wall],
	// so utilization is in (0, 1] by construction — no quantization slack.
	if u <= 0 || u > 1 {
		t.Fatalf("utilization %g out of bounds", u)
	}
	if tr.BusyTime() <= 0 {
		t.Fatal("busy time missing")
	}
}

// TestTraceSharedEpoch pins the clock-skew fix: every event must fall inside
// [0, Wall], and the derived schedule quantities must be consistent
// (critical path ≤ makespan ≤ wall).
func TestTraceSharedEpoch(t *testing.T) {
	g := busyGraph(30)
	tr, err := g.ExecuteTraced(ExecOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		if e.Start < 0 || e.End > tr.Wall {
			t.Fatalf("event outside the trace window: %+v (wall %v)", e, tr.Wall)
		}
	}
	if tr.CritPath <= 0 {
		t.Fatal("critical path missing")
	}
	if tr.CritPath > tr.Makespan() {
		t.Fatalf("critical path %v exceeds makespan %v", tr.CritPath, tr.Makespan())
	}
	if tr.Makespan() > tr.Wall {
		t.Fatalf("makespan %v exceeds wall %v", tr.Makespan(), tr.Wall)
	}
}

// TestCriticalPathOfChain: a pure chain's critical path is (within timer
// noise) the whole busy time — every task is on the path.
func TestCriticalPathOfChain(t *testing.T) {
	g := NewGraph()
	h := g.NewHandle("v", 8, 0)
	for i := 0; i < 6; i++ {
		g.AddTask(Task{
			Name:     "step",
			Run:      func() { time.Sleep(time.Millisecond) },
			Accesses: []Access{{h, ReadWrite}},
		})
	}
	tr, err := g.ExecuteTraced(ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tr.CritPath != tr.BusyTime() {
		t.Fatalf("chain critical path %v != busy time %v", tr.CritPath, tr.BusyTime())
	}
}

func TestTraceByKernel(t *testing.T) {
	g := NewGraph()
	h1 := g.NewHandle("a", 8, 0)
	h2 := g.NewHandle("b", 8, 0)
	g.AddTask(Task{Name: "alpha", Run: func() { time.Sleep(time.Millisecond) }, Accesses: []Access{{h1, Write}}})
	g.AddTask(Task{Name: "beta", Run: func() { time.Sleep(time.Millisecond) }, Accesses: []Access{{h2, Write}}})
	tr, err := g.ExecuteTraced(ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	byK := tr.ByKernel()
	if byK["alpha"] <= 0 || byK["beta"] <= 0 {
		t.Fatalf("kernel aggregation missing entries: %v", byK)
	}
}

func TestGanttRendering(t *testing.T) {
	g := busyGraph(10)
	tr, err := g.ExecuteTraced(ExecOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := tr.Gantt(60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 workers
		t.Fatalf("gantt rows: %d\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "utilization") {
		t.Fatalf("gantt header missing: %s", lines[0])
	}
	if !strings.Contains(out, "w") || !strings.Contains(out, "|") {
		t.Fatal("gantt body malformed")
	}
}

func TestGanttEmptyTrace(t *testing.T) {
	tr := &Trace{Workers: 2}
	if !strings.Contains(tr.Gantt(40), "empty") {
		t.Fatal("empty trace should render a placeholder")
	}
}

func TestExecuteTracedPropagatesErrors(t *testing.T) {
	g := NewGraph()
	h := g.NewHandle("a", 8, 0)
	g.AddTask(Task{Name: "boom", Run: func() { panic("x") }, Accesses: []Access{{h, Write}}})
	if _, err := g.ExecuteTraced(ExecOptions{Workers: 1}); err == nil {
		t.Fatal("expected error from panicking task")
	}
}

// TestExecuteTracedConcurrent is the -race gate for the per-worker event
// buffers: several wide graphs traced simultaneously from separate
// goroutines, each with many workers hammering its own recorder.
func TestExecuteTracedConcurrent(t *testing.T) {
	const graphs = 4
	var wg sync.WaitGroup
	errs := make([]error, graphs)
	traces := make([]*Trace, graphs)
	for i := 0; i < graphs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := busyGraph(64)
			traces[i], errs[i] = g.ExecuteTraced(ExecOptions{Workers: 8})
		}()
	}
	wg.Wait()
	for i := 0; i < graphs; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if len(traces[i].Events) != 64 {
			t.Fatalf("trace %d recorded %d events, want 64", i, len(traces[i].Events))
		}
		if u := traces[i].Utilization(); u <= 0 || u > 1 {
			t.Fatalf("trace %d utilization %g out of bounds", i, u)
		}
	}
}

// randomDAG builds a random task graph with declared flop costs for the
// schedule-invariant property tests.
func randomDAG(r *rng.Rand) *Graph {
	g := NewGraph()
	nHandles := 2 + r.Intn(6)
	handles := make([]*Handle, nHandles)
	for i := range handles {
		handles[i] = g.NewHandle("h", 64, 0)
	}
	for id := 0; id < 4+r.Intn(40); id++ {
		nAcc := 1 + r.Intn(3)
		acc := make([]Access, 0, nAcc)
		used := map[int]bool{}
		for a := 0; a < nAcc; a++ {
			h := r.Intn(nHandles)
			if used[h] {
				continue
			}
			used[h] = true
			mode := Read
			if r.Intn(2) == 0 {
				mode = ReadWrite
			}
			acc = append(acc, Access{handles[h], mode})
		}
		g.AddTask(Task{Name: "t", Flops: 1 + float64(r.Intn(1000)), Accesses: acc})
	}
	return g
}

// TestQuickSimulateTraceInvariants: for random DAGs at several worker counts,
// the simulated schedule obeys the exact invariants
//
//	critical path ≤ makespan ≤ busy time
//
// (a list schedule never lets every worker idle while work remains, so the
// makespan cannot exceed the serial work; and no schedule beats the longest
// dependency chain). The slack term absorbs only float→Duration rounding.
func TestQuickSimulateTraceInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed) + 11)
		g := randomDAG(r)
		for _, w := range []int{1, 2, 4, 8} {
			tr, mk, err := g.SimulateTrace(SimOptions{Workers: w})
			if err != nil || mk <= 0 || tr.Wall <= 0 {
				return false
			}
			slack := time.Duration(2 * len(tr.Events)) // per-event rounding
			if tr.CritPath > tr.Makespan()+slack {
				t.Logf("seed %d w %d: crit %v > makespan %v", seed, w, tr.CritPath, tr.Makespan())
				return false
			}
			if tr.Makespan() > tr.BusyTime()+slack {
				t.Logf("seed %d w %d: makespan %v > busy %v", seed, w, tr.Makespan(), tr.BusyTime())
				return false
			}
			if u := tr.Utilization(); u <= 0 || u > 1 {
				return false
			}
			if len(tr.Events) != len(g.Tasks()) {
				return false
			}
			// 1 worker degenerates to serial execution: makespan == busy time
			if w == 1 {
				d := tr.Makespan() - tr.BusyTime()
				if d < -slack || d > slack {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExecuteTracedInvariants: for real traced runs the robust subset of
// the invariants must hold — critical path ≤ makespan ≤ wall, utilization in
// [0, 1]. (Makespan ≤ busy time is NOT asserted here: real scheduling
// overhead can idle all workers between tasks, which is exactly the gap the
// trace exists to expose.)
func TestQuickExecuteTracedInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(uint64(seed) + 12)
		g := randomDAG(r)
		tr, err := g.ExecuteTraced(ExecOptions{Workers: 1 + r.Intn(8)})
		if err != nil {
			return false
		}
		if tr.CritPath > tr.Makespan() {
			return false
		}
		if tr.Makespan() > tr.Wall {
			return false
		}
		if u := tr.Utilization(); u < 0 || u > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteChromeTraceSchema validates the Chrome trace-event JSON envelope:
// metadata events naming process and threads, one complete ("X") event per
// task with ts/dur in microseconds and flop/byte/gflops args, and the
// "displayTimeUnit" the viewers expect.
func TestWriteChromeTraceSchema(t *testing.T) {
	g := busyGraph(8)
	tr, err := g.ExecuteTraced(ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, "dense"); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TsUS  float64        `json:"ts"`
			DurUS float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	var nX, nMeta int
	processNamed := false
	for _, e := range file.TraceEvents {
		switch e.Phase {
		case "M":
			nMeta++
			if e.Name == "process_name" && e.Args["name"] == "dense" {
				processNamed = true
			}
		case "X":
			nX++
			if e.TsUS < 0 || e.DurUS < 0 {
				t.Fatalf("negative ts/dur: %+v", e)
			}
			if e.TID < 0 || e.TID >= 2 {
				t.Fatalf("bad tid: %+v", e)
			}
			for _, k := range []string{"id", "flops", "bytes", "gflops"} {
				if _, ok := e.Args[k]; !ok {
					t.Fatalf("X event missing arg %q: %+v", k, e)
				}
			}
		}
	}
	if nX != 8 {
		t.Fatalf("%d complete events, want 8", nX)
	}
	if nMeta != 3 { // process_name + 2 thread_name
		t.Fatalf("%d metadata events, want 3", nMeta)
	}
	if !processNamed {
		t.Fatal("process_name metadata missing")
	}
}

// TestWriteChromeTracesMultiProcess: two traces in one file get distinct pids.
func TestWriteChromeTracesMultiProcess(t *testing.T) {
	g1, g2 := busyGraph(3), busyGraph(3)
	tr1, err := g1.ExecuteTraced(ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := g2.ExecuteTraced(ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChromeTraces(&buf, NamedTrace{"dense", tr1}, NamedTrace{"tlr", tr2}); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			PID int `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatal(err)
	}
	pids := map[int]bool{}
	for _, e := range file.TraceEvents {
		pids[e.PID] = true
	}
	if !pids[0] || !pids[1] || len(pids) != 2 {
		t.Fatalf("pids = %v, want {0, 1}", pids)
	}
}

// TestMergeEventsCommLane: merged zero-duration comm events raise the worker
// count and become instant events in the Chrome export.
func TestMergeEventsCommLane(t *testing.T) {
	g := busyGraph(4)
	tr, err := g.ExecuteTraced(ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	at := tr.Wall / 2
	tr.MergeEvents([]TraceEvent{{Task: "send r0->r1", Worker: 2, Start: at, End: at, Bytes: 1024}})
	if tr.Workers != 3 {
		t.Fatalf("workers = %d after merge, want 3", tr.Workers)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, "dist"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"ph":"i"`) {
		t.Fatal("zero-duration merged event did not export as an instant event")
	}
}
