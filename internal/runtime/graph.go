// Package runtime is the StarPU substitute: a sequential-task-flow runtime
// with data-dependency inference, out-of-order parallel execution on a
// worker pool, and a discrete-event simulated executor used for paper-scale
// performance modeling.
//
// Algorithms (tiled Cholesky, TLR Cholesky, solves) insert tasks in the order
// the sequential algorithm would execute them, declaring how each task
// accesses each data handle (read / write / read-write). The runtime infers
// the dependency DAG exactly as StarPU does:
//
//   - a reader depends on the last writer of the handle;
//   - a writer depends on the last writer and on every reader since then.
//
// Tasks then execute as soon as their dependencies resolve, giving the
// asynchronous look-ahead execution the paper's performance rests on.
package runtime

import (
	"fmt"
)

// AccessMode declares how a task touches a data handle.
type AccessMode int

// Access modes, mirroring StarPU's STARPU_R / STARPU_W / STARPU_RW.
const (
	Read AccessMode = iota
	Write
	ReadWrite
)

// Handle identifies a logical piece of data (typically one tile). Bytes is
// the payload size used by the simulated executors for transfer costs; Tag
// is an opaque caller-owned value (the cluster simulator stores tile
// coordinates there to derive ownership).
type Handle struct {
	ID    int
	Name  string
	Bytes int64
	Tag   int64

	// SnapshotFn, when non-nil, captures the payload behind the handle and
	// returns a restore closure (put the captured state back) and a release
	// closure (discard the capture, returning any pooled buffers). The
	// executor's retry path calls exactly one of the two, exactly once per
	// snapshot. A ReadWrite handle without a SnapshotFn makes its tasks
	// non-retryable; Write handles need no snapshot because their tasks
	// fully overwrite the payload on every execution (the replay contract
	// of the generation tasks). The executor saves and restores
	// Handle.Bytes itself, so SetBytes-updating tasks replay cleanly.
	SnapshotFn func() (restore, release func())

	// PinFn/UnpinFn, when non-nil (set them together), bracket every task
	// execution touching the handle: the executor calls PinFn once before a
	// task's first attempt — before snapshots are taken, so an out-of-core
	// store can bring an evicted payload back into residency in time for
	// SnapshotFn and the task body — and UnpinFn once after the final
	// attempt. overwrite is true when the task's only accesses to the
	// handle are Write: the payload is about to be fully rewritten, so the
	// store may materialize an empty buffer instead of reading spilled
	// bytes back from disk. Pins nest (a handle may be pinned by several
	// concurrent readers); the store unpins by reference count.
	PinFn   func(overwrite bool)
	UnpinFn func()
}

// SetBytes updates the payload size of a variable-size handle (a compressed
// tile whose rank changes between graph executions). Only the task that owns
// the handle's write access may call it during execution: the runtime
// serializes that task against every other access of the handle, so the
// update is race-free by the same argument as the payload write itself.
func (h *Handle) SetBytes(b int64) { h.Bytes = b }

// Access pairs a handle with the mode a task uses it in.
type Access struct {
	Handle *Handle
	Mode   AccessMode
}

// Task is one node of the DAG. Run is the real-execution closure (may be nil
// for simulation-only graphs). Flops is the arithmetic cost used by the
// simulated executors and by the flop accounting the experiments report.
type Task struct {
	ID       int
	Name     string
	Flops    float64
	Priority int
	Run      func()
	Accesses []Access

	deps       []int // predecessor task IDs (deduplicated)
	successors []int
	indegree   int
}

// Deps returns the predecessor task IDs (read-only).
func (t *Task) Deps() []int { return t.deps }

// Successors returns the successor task IDs (read-only).
func (t *Task) Successors() []int { return t.successors }

// Graph accumulates handles and tasks via sequential task flow.
type Graph struct {
	tasks   []*Task
	handles []*Handle

	lastWriter map[int]int   // handle ID -> task ID
	readers    map[int][]int // handle ID -> reader task IDs since last write
}

// NewGraph returns an empty task graph.
func NewGraph() *Graph {
	return &Graph{
		lastWriter: make(map[int]int),
		readers:    make(map[int][]int),
	}
}

// NewHandle registers a data handle.
func (g *Graph) NewHandle(name string, bytes int64, tag int64) *Handle {
	h := &Handle{ID: len(g.handles), Name: name, Bytes: bytes, Tag: tag}
	g.handles = append(g.handles, h)
	return h
}

// Handles returns all registered handles.
func (g *Graph) Handles() []*Handle { return g.handles }

// AddTask inserts a task, inferring its dependencies from the access
// declarations and the insertion order. It returns the task's ID.
func (g *Graph) AddTask(t Task) int {
	id := len(g.tasks)
	t.ID = id
	depSet := make(map[int]struct{})
	for _, a := range t.Accesses {
		if a.Handle == nil {
			panic("runtime: task access with nil handle")
		}
		hid := a.Handle.ID
		switch a.Mode {
		case Read:
			if w, ok := g.lastWriter[hid]; ok {
				depSet[w] = struct{}{}
			}
			g.readers[hid] = append(g.readers[hid], id)
		case Write, ReadWrite:
			if w, ok := g.lastWriter[hid]; ok {
				depSet[w] = struct{}{}
			}
			for _, r := range g.readers[hid] {
				depSet[r] = struct{}{}
			}
			g.lastWriter[hid] = id
			g.readers[hid] = nil
		default:
			panic(fmt.Sprintf("runtime: unknown access mode %d", a.Mode))
		}
	}
	delete(depSet, id) // a task never depends on itself
	tt := t
	tt.deps = make([]int, 0, len(depSet))
	for d := range depSet {
		tt.deps = append(tt.deps, d)
	}
	tt.indegree = len(tt.deps)
	g.tasks = append(g.tasks, &tt)
	for _, d := range tt.deps {
		g.tasks[d].successors = append(g.tasks[d].successors, id)
	}
	return id
}

// Tasks returns the task list in insertion order.
func (g *Graph) Tasks() []*Task { return g.tasks }

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// TotalFlops sums the declared arithmetic cost over all tasks.
func (g *Graph) TotalFlops() float64 {
	var s float64
	for _, t := range g.tasks {
		s += t.Flops
	}
	return s
}

// CriticalPathFlops returns the flop count along the longest dependency
// chain — the lower bound on execution regardless of worker count.
func (g *Graph) CriticalPathFlops() float64 {
	finish := make([]float64, len(g.tasks))
	var best float64
	// tasks are topologically ordered by construction (deps have smaller IDs)
	for i, t := range g.tasks {
		var start float64
		for _, d := range t.deps {
			if finish[d] > start {
				start = finish[d]
			}
		}
		finish[i] = start + t.Flops
		if finish[i] > best {
			best = finish[i]
		}
	}
	return best
}

// CountByName returns how many tasks carry each name (kernel type).
func (g *Graph) CountByName() map[string]int {
	m := make(map[string]int)
	for _, t := range g.tasks {
		m[t.Name]++
	}
	return m
}
