package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
)

// pinRecorder instruments a handle's residency hooks.
type pinRecorder struct {
	mu         sync.Mutex
	pins       int
	unpins     int
	overwrites []bool
	resident   bool
}

func (p *pinRecorder) install(h *Handle) {
	h.PinFn = func(overwrite bool) {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.pins++
		p.overwrites = append(p.overwrites, overwrite)
		p.resident = true
	}
	h.UnpinFn = func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.unpins++
	}
}

func TestExecutePinsHandlesAroundTasks(t *testing.T) {
	g := NewGraph()
	rw := g.NewHandle("rw", 8, 0)
	wo := g.NewHandle("wo", 8, 0)
	var rwRec, woRec pinRecorder
	rwRec.install(rw)
	woRec.install(wo)
	rw.SnapshotFn = func() (func(), func()) { return func() {}, func() {} }

	ran := false
	g.AddTask(Task{
		Name: "t",
		Run: func() {
			// Both handles must be resident while the body runs.
			rwRec.mu.Lock()
			woRec.mu.Lock()
			if !rwRec.resident || !woRec.resident {
				t.Error("task body ran with unpinned handle")
			}
			woRec.mu.Unlock()
			rwRec.mu.Unlock()
			ran = true
		},
		Accesses: []Access{{rw, ReadWrite}, {wo, Write}},
	})
	if err := g.Execute(ExecOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("task did not run")
	}
	if rwRec.pins != 1 || rwRec.unpins != 1 || woRec.pins != 1 || woRec.unpins != 1 {
		t.Fatalf("want one pin/unpin per handle, got rw %d/%d wo %d/%d",
			rwRec.pins, rwRec.unpins, woRec.pins, woRec.unpins)
	}
	// ReadWrite access: payload must be loaded (overwrite=false). Write-only
	// access: the store may skip the disk read (overwrite=true).
	if rwRec.overwrites[0] {
		t.Fatal("ReadWrite handle pinned in overwrite mode")
	}
	if !woRec.overwrites[0] {
		t.Fatal("write-only handle should pin in overwrite mode")
	}
}

func TestPinSpansRetries(t *testing.T) {
	g := NewGraph()
	h := g.NewHandle("h", 8, 0)
	var rec pinRecorder
	rec.install(h)
	h.SnapshotFn = func() (func(), func()) { return func() {}, func() {} }

	var attempts atomic.Int32
	g.AddTask(Task{
		Name: "flaky",
		Run: func() {
			if attempts.Add(1) == 1 {
				panic("first attempt fails")
			}
		},
		Accesses: []Access{{h, ReadWrite}},
	})
	if err := g.Execute(ExecOptions{Workers: 1, Retry: RetryPolicy{Attempts: 2}}); err != nil {
		t.Fatal(err)
	}
	if attempts.Load() != 2 {
		t.Fatalf("want 2 attempts, got %d", attempts.Load())
	}
	// The pin brackets the whole retry loop: one pin, one unpin, regardless
	// of how many attempts ran.
	if rec.pins != 1 || rec.unpins != 1 {
		t.Fatalf("pin must span retries: pins=%d unpins=%d", rec.pins, rec.unpins)
	}
}

func TestPinDedupAcrossAccesses(t *testing.T) {
	g := NewGraph()
	h := g.NewHandle("h", 8, 0)
	var rec pinRecorder
	rec.install(h)
	g.AddTask(Task{
		Name:     "t",
		Run:      func() {},
		Accesses: []Access{{h, Read}, {h, Write}},
	})
	if err := g.Execute(ExecOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if rec.pins != 1 || rec.unpins != 1 {
		t.Fatalf("duplicate accesses must pin once: pins=%d unpins=%d", rec.pins, rec.unpins)
	}
	// Mixed Read+Write access is NOT overwrite-only.
	if rec.overwrites[0] {
		t.Fatal("mixed-mode access pinned in overwrite mode")
	}
}
