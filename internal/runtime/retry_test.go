package runtime

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/obs"
)

// sliceSnapshot is the test stand-in for the tile SnapshotFns: it copies the
// backing slice and restores it on demand.
func sliceSnapshot(data []float64) func() (restore, release func()) {
	return func() (restore, release func()) {
		saved := append([]float64(nil), data...)
		return func() { copy(data, saved) }, func() {}
	}
}

func TestRetryRestoresReadWriteData(t *testing.T) {
	data := []float64{1, 2, 3}
	g := NewGraph()
	h := g.NewHandle("d", 24, 0)
	h.SnapshotFn = sliceSnapshot(data)
	g.AddTask(Task{
		Name: "double",
		Run: func() {
			for i := range data {
				data[i] *= 2
			}
		},
		Accesses: []Access{{Handle: h, Mode: ReadWrite}},
	})

	before := obs.Default().Snapshot()
	err := g.Execute(ExecOptions{
		Workers: 2,
		Retry:   RetryPolicy{Attempts: 2},
		Inject: func(graphLen, taskID, attempt int) {
			if attempt == 0 {
				panic("injected")
			}
		},
	})
	if err != nil {
		t.Fatalf("retry should have recovered the panic: %v", err)
	}
	// Without the snapshot restore the doubling task would run twice over
	// dirty data and yield {4, 8, 12}.
	if data[0] != 2 || data[1] != 4 || data[2] != 6 {
		t.Fatalf("replay ran over unrestored data: %v", data)
	}
	d := obs.Default().Snapshot().Sub(before)
	if d.Counters["runtime.task.retried"] < 1 {
		t.Fatalf("runtime.task.retried not incremented: %v", d.Counters)
	}
	if d.Counters["runtime.task.restored"] < 1 {
		t.Fatalf("runtime.task.restored not incremented: %v", d.Counters)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	runs := 0
	g := NewGraph()
	h := g.NewHandle("d", 8, 0)
	h.SnapshotFn = sliceSnapshot([]float64{0})
	g.AddTask(Task{
		Name:     "always-fails",
		Run:      func() { runs++; panic("boom") },
		Accesses: []Access{{Handle: h, Mode: ReadWrite}},
	})
	err := g.Execute(ExecOptions{Workers: 1, Retry: RetryPolicy{Attempts: 2}})
	if err == nil {
		t.Fatal("persistent failure must surface")
	}
	if runs != 3 { // initial execution + 2 retries
		t.Fatalf("task ran %d times, want 3", runs)
	}
}

func TestRetryRWWithoutSnapshotIsTerminal(t *testing.T) {
	runs := 0
	g := NewGraph()
	h := g.NewHandle("no-snapshot", 8, 0)
	g.AddTask(Task{
		Name:     "fails",
		Run:      func() { runs++; panic("boom") },
		Accesses: []Access{{Handle: h, Mode: ReadWrite}},
	})
	if err := g.Execute(ExecOptions{Workers: 1, Retry: RetryPolicy{Attempts: 5}}); err == nil {
		t.Fatal("expected the panic to surface")
	}
	if runs != 1 {
		t.Fatalf("a ReadWrite task without SnapshotFn must not be replayed; ran %d times", runs)
	}
}

func TestRetryRespectsRetryableFilter(t *testing.T) {
	fatal := errors.New("deterministic failure")
	runs := 0
	g := NewGraph()
	h := g.NewHandle("d", 8, 0)
	h.SnapshotFn = sliceSnapshot([]float64{0})
	g.AddTask(Task{
		Name:     "fails",
		Run:      func() { runs++; panic(fatal) },
		Accesses: []Access{{Handle: h, Mode: ReadWrite}},
	})
	err := g.Execute(ExecOptions{
		Workers: 1,
		Retry: RetryPolicy{
			Attempts:  5,
			Retryable: func(err error) bool { return !errors.Is(err, fatal) },
		},
	})
	if err == nil || !errors.Is(err, fatal) {
		t.Fatalf("want the filtered error, got %v", err)
	}
	if runs != 1 {
		t.Fatalf("non-retryable failure replayed %d times", runs)
	}
}

func TestRetryWriteHandleReplays(t *testing.T) {
	// A Write-mode task fully overwrites its payload, so it replays without
	// any SnapshotFn.
	out := []float64{0}
	g := NewGraph()
	h := g.NewHandle("w", 8, 0)
	g.AddTask(Task{
		Name:     "write",
		Run:      func() { out[0] = 7 },
		Accesses: []Access{{Handle: h, Mode: Write}},
	})
	err := g.Execute(ExecOptions{
		Workers: 1,
		Retry:   RetryPolicy{Attempts: 1},
		Inject: func(graphLen, taskID, attempt int) {
			if attempt == 0 {
				panic("injected")
			}
		},
	})
	if err != nil {
		t.Fatalf("write task should replay: %v", err)
	}
	if out[0] != 7 {
		t.Fatalf("replay did not produce the write: %v", out)
	}
}

func TestTraceRecordsRetryAttempt(t *testing.T) {
	g := NewGraph()
	h := g.NewHandle("d", 8, 0)
	h.SnapshotFn = sliceSnapshot([]float64{0})
	g.AddTask(Task{
		Name:     "victim",
		Run:      func() {},
		Accesses: []Access{{Handle: h, Mode: ReadWrite}},
	})
	tr, err := g.ExecuteTraced(ExecOptions{
		Workers: 1,
		Retry:   RetryPolicy{Attempts: 1},
		Inject: func(graphLen, taskID, attempt int) {
			if attempt == 0 {
				panic("injected")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var sawRetry bool
	for _, e := range tr.Events {
		if e.Attempt > 0 {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Fatalf("no trace event carries Attempt > 0: %+v", tr.Events)
	}
}

func TestSimulateReportsCycle(t *testing.T) {
	g := NewGraph()
	h := g.NewHandle("d", 8, 0)
	a := g.AddTask(Task{Name: "alpha", Flops: 1, Accesses: []Access{{Handle: h, Mode: ReadWrite}}})
	b := g.AddTask(Task{Name: "beta", Flops: 1, Accesses: []Access{{Handle: h, Mode: ReadWrite}}})
	// Sequential task flow cannot build a cycle, so wire one directly:
	// alpha -> beta already exists; add beta -> alpha.
	g.tasks[a].deps = append(g.tasks[a].deps, b)
	g.tasks[b].successors = append(g.tasks[b].successors, a)
	g.tasks[a].indegree++

	_, err := g.Simulate(SimOptions{Workers: 1})
	if err == nil {
		t.Fatal("cyclic graph must error, not deadlock or panic")
	}
	msg := err.Error()
	if !strings.Contains(msg, "dependency cycle") ||
		!strings.Contains(msg, "alpha") || !strings.Contains(msg, "beta") {
		t.Fatalf("cycle error should name the tasks on the cycle: %q", msg)
	}
}
