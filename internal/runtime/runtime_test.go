package runtime

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestDependencyInferenceRAW(t *testing.T) {
	g := NewGraph()
	h := g.NewHandle("a", 8, 0)
	w := g.AddTask(Task{Name: "write", Accesses: []Access{{h, Write}}})
	r := g.AddTask(Task{Name: "read", Accesses: []Access{{h, Read}}})
	if got := g.Tasks()[r].Deps(); len(got) != 1 || got[0] != w {
		t.Fatalf("read-after-write dep missing: %v", got)
	}
}

func TestDependencyInferenceWARAndWAW(t *testing.T) {
	g := NewGraph()
	h := g.NewHandle("a", 8, 0)
	w1 := g.AddTask(Task{Name: "w1", Accesses: []Access{{h, Write}}})
	r1 := g.AddTask(Task{Name: "r1", Accesses: []Access{{h, Read}}})
	r2 := g.AddTask(Task{Name: "r2", Accesses: []Access{{h, Read}}})
	w2 := g.AddTask(Task{Name: "w2", Accesses: []Access{{h, ReadWrite}}})
	deps := map[int]bool{}
	for _, d := range g.Tasks()[w2].Deps() {
		deps[d] = true
	}
	if !deps[r1] || !deps[r2] {
		t.Fatalf("write-after-read deps missing: %v", g.Tasks()[w2].Deps())
	}
	// r1, r2 may run concurrently: they must not depend on each other.
	for _, d := range g.Tasks()[r2].Deps() {
		if d == r1 {
			t.Fatal("two readers should not be ordered")
		}
	}
	if len(g.Tasks()[r1].Deps()) != 1 || g.Tasks()[r1].Deps()[0] != w1 {
		t.Fatal("reader should depend only on last writer")
	}
	_ = w1
}

func TestDependencyIndependentHandles(t *testing.T) {
	g := NewGraph()
	h1 := g.NewHandle("a", 8, 0)
	h2 := g.NewHandle("b", 8, 0)
	g.AddTask(Task{Name: "t1", Accesses: []Access{{h1, ReadWrite}}})
	t2 := g.AddTask(Task{Name: "t2", Accesses: []Access{{h2, ReadWrite}}})
	if len(g.Tasks()[t2].Deps()) != 0 {
		t.Fatal("tasks on independent handles must not be ordered")
	}
}

func TestExecuteRespectsOrder(t *testing.T) {
	// A chain incrementing a counter: any reordering corrupts the value.
	g := NewGraph()
	h := g.NewHandle("x", 8, 0)
	var x int64
	const steps = 200
	for i := 0; i < steps; i++ {
		i := i
		g.AddTask(Task{
			Name: "inc",
			Run: func() {
				if atomic.LoadInt64(&x) != int64(i) {
					panic("out of order")
				}
				atomic.AddInt64(&x, 1)
			},
			Accesses: []Access{{h, ReadWrite}},
		})
	}
	if err := g.Execute(ExecOptions{Workers: 8}); err != nil {
		t.Fatal(err)
	}
	if x != steps {
		t.Fatalf("x = %d, want %d", x, steps)
	}
}

func TestExecuteParallelSum(t *testing.T) {
	// Independent tasks write distinct handles, then one task reduces.
	g := NewGraph()
	const n = 100
	vals := make([]int64, n)
	handles := make([]*Handle, n)
	for i := 0; i < n; i++ {
		i := i
		handles[i] = g.NewHandle("v", 8, 0)
		g.AddTask(Task{
			Name:     "fill",
			Run:      func() { vals[i] = int64(i) },
			Accesses: []Access{{handles[i], Write}},
		})
	}
	var total int64
	acc := make([]Access, n)
	for i := range acc {
		acc[i] = Access{handles[i], Read}
	}
	g.AddTask(Task{
		Name: "reduce",
		Run: func() {
			var s int64
			for _, v := range vals {
				s += v
			}
			total = s
		},
		Accesses: acc,
	})
	if err := g.Execute(ExecOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if total != n*(n-1)/2 {
		t.Fatalf("total = %d", total)
	}
}

func TestExecutePanicPropagates(t *testing.T) {
	g := NewGraph()
	h := g.NewHandle("a", 8, 0)
	g.AddTask(Task{Name: "boom", Run: func() { panic("kaboom") }, Accesses: []Access{{h, Write}}})
	g.AddTask(Task{Name: "after", Run: func() {}, Accesses: []Access{{h, Read}}})
	err := g.Execute(ExecOptions{Workers: 2})
	if err == nil {
		t.Fatal("expected error from panicking task")
	}
}

func TestExecuteEmptyGraph(t *testing.T) {
	if err := NewGraph().Execute(ExecOptions{Workers: 3}); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPathAndTotals(t *testing.T) {
	g := NewGraph()
	a := g.NewHandle("a", 8, 0)
	b := g.NewHandle("b", 8, 0)
	g.AddTask(Task{Name: "t", Flops: 5, Accesses: []Access{{a, Write}}})
	g.AddTask(Task{Name: "t", Flops: 7, Accesses: []Access{{b, Write}}})
	g.AddTask(Task{Name: "u", Flops: 3, Accesses: []Access{{a, Read}, {b, Read}}})
	if got := g.TotalFlops(); got != 15 {
		t.Fatalf("total flops %g", got)
	}
	if got := g.CriticalPathFlops(); got != 10 {
		t.Fatalf("critical path %g, want 10", got)
	}
	if g.CountByName()["t"] != 2 || g.CountByName()["u"] != 1 {
		t.Fatalf("counts: %v", g.CountByName())
	}
}

func TestSimulateScalesWithWorkers(t *testing.T) {
	// 100 independent unit tasks: 1 worker -> 100, 10 workers -> 10.
	g := NewGraph()
	for i := 0; i < 100; i++ {
		h := g.NewHandle("v", 8, 0)
		g.AddTask(Task{Name: "unit", Flops: 1, Accesses: []Access{{h, Write}}})
	}
	if got, err := g.Simulate(SimOptions{Workers: 1}); err != nil || got != 100 {
		t.Fatalf("1 worker: %g (%v)", got, err)
	}
	if got, err := g.Simulate(SimOptions{Workers: 10}); err != nil || got != 10 {
		t.Fatalf("10 workers: %g (%v)", got, err)
	}
}

func TestSimulateRespectsChain(t *testing.T) {
	g := NewGraph()
	h := g.NewHandle("x", 8, 0)
	for i := 0; i < 20; i++ {
		g.AddTask(Task{Name: "step", Flops: 2, Accesses: []Access{{h, ReadWrite}}})
	}
	if got, err := g.Simulate(SimOptions{Workers: 16}); err != nil || got != 40 {
		t.Fatalf("chain makespan %g, want 40 (%v)", got, err)
	}
}

func TestSimulateBarrierSlower(t *testing.T) {
	// Diamond-heavy DAG: barrier scheduling can only be slower or equal.
	g := NewGraph()
	hs := make([]*Handle, 8)
	for i := range hs {
		hs[i] = g.NewHandle("h", 8, 0)
		g.AddTask(Task{Name: "a", Flops: float64(1 + i), Accesses: []Access{{hs[i], Write}}})
	}
	for i := range hs {
		g.AddTask(Task{Name: "b", Flops: float64(8 - i), Accesses: []Access{{hs[i], ReadWrite}}})
	}
	async, err := g.Simulate(SimOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	bsp, err := g.Simulate(SimOptions{Workers: 3, Barrier: true})
	if err != nil {
		t.Fatal(err)
	}
	if bsp < async {
		t.Fatalf("barrier schedule faster than async: %g < %g", bsp, async)
	}
}

func TestSimulateCustomCost(t *testing.T) {
	g := NewGraph()
	h := g.NewHandle("x", 8, 0)
	g.AddTask(Task{Name: "k", Flops: 1e9, Accesses: []Access{{h, Write}}})
	got, err := g.Simulate(SimOptions{Workers: 1, Cost: func(t *Task) float64 { return t.Flops / 1e9 }})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("cost model ignored: %g", got)
	}
}

func TestPriorityOrdersReadyTasks(t *testing.T) {
	// With one worker, the higher-priority independent task runs first.
	g := NewGraph()
	order := make([]string, 0, 2)
	h1 := g.NewHandle("a", 8, 0)
	h2 := g.NewHandle("b", 8, 0)
	g.AddTask(Task{Name: "low", Priority: 0, Run: func() { order = append(order, "low") }, Accesses: []Access{{h1, Write}}})
	g.AddTask(Task{Name: "high", Priority: 5, Run: func() { order = append(order, "high") }, Accesses: []Access{{h2, Write}}})
	if err := g.Execute(ExecOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if order[0] != "high" {
		t.Fatalf("priority ignored: %v", order)
	}
}

// TestExecuteWakesWorkerPerReadyTask regresses the wake-up loss where a
// finished task freeing k > 1 successors issued a single cond.Signal, leaving
// k-2 ready tasks idle while workers slept. With the fix, a root fanning out
// to 4 sleepers on 4 workers must overlap at least 3 of them.
func TestExecuteWakesWorkerPerReadyTask(t *testing.T) {
	const fan = 4
	g := NewGraph()
	root := g.NewHandle("root", 8, 0)
	g.AddTask(Task{Name: "root", Run: func() {}, Accesses: []Access{{Handle: root, Mode: Write}}})
	var active, maxActive int32
	for i := 0; i < fan; i++ {
		h := g.NewHandle("leaf", 8, 0)
		g.AddTask(Task{
			Name: "leaf",
			Run: func() {
				a := atomic.AddInt32(&active, 1)
				for {
					m := atomic.LoadInt32(&maxActive)
					if a <= m || atomic.CompareAndSwapInt32(&maxActive, m, a) {
						break
					}
				}
				time.Sleep(30 * time.Millisecond)
				atomic.AddInt32(&active, -1)
			},
			Accesses: []Access{
				{Handle: root, Mode: Read},
				{Handle: h, Mode: Write},
			},
		})
	}
	if err := g.Execute(ExecOptions{Workers: fan}); err != nil {
		t.Fatal(err)
	}
	if m := atomic.LoadInt32(&maxActive); m < fan-1 {
		t.Fatalf("max overlapping leaf tasks = %d, want >= %d (lost wake-ups)", m, fan-1)
	}
}

// TestExecuteGraphReusable re-executes one graph several times: the executor
// must keep its per-run state (indegrees, ready heap) local so higher layers
// can build the task DAG once and run it every optimizer iteration.
func TestExecuteGraphReusable(t *testing.T) {
	g := NewGraph()
	h := g.NewHandle("x", 8, 0)
	var runs int64
	for i := 0; i < 10; i++ {
		g.AddTask(Task{
			Name:     "inc",
			Run:      func() { atomic.AddInt64(&runs, 1) },
			Accesses: []Access{{Handle: h, Mode: ReadWrite}},
		})
	}
	for rep := 0; rep < 3; rep++ {
		if err := g.Execute(ExecOptions{Workers: 4}); err != nil {
			t.Fatal(err)
		}
	}
	if runs != 30 {
		t.Fatalf("tasks ran %d times, want 30", runs)
	}
}
