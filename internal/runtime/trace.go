package runtime

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// TraceEvent records one task execution.
type TraceEvent struct {
	Task   string
	ID     int
	Worker int
	Start  time.Duration // offset from execution start
	End    time.Duration
}

// Trace is the execution record of a graph run, the observability layer
// StarPU provides via its FXT traces.
type Trace struct {
	Workers int
	Wall    time.Duration
	Events  []TraceEvent
}

// ExecuteTraced runs the graph like Execute while recording per-task timing.
func (g *Graph) ExecuteTraced(opt ExecOptions) (*Trace, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	tr := &Trace{Workers: workers}
	rec := &recorder{base: time.Now(), events: make([][]TraceEvent, workers)}
	start := time.Now()
	err := g.execute(opt, rec)
	tr.Wall = time.Since(start)
	for _, evs := range rec.events {
		tr.Events = append(tr.Events, evs...)
	}
	sort.Slice(tr.Events, func(i, j int) bool { return tr.Events[i].Start < tr.Events[j].Start })
	return tr, err
}

// recorder collects events per worker without cross-worker locking.
type recorder struct {
	base   time.Time
	events [][]TraceEvent
}

func (r *recorder) record(worker int, t *Task, start, end time.Time) {
	r.events[worker] = append(r.events[worker], TraceEvent{
		Task:   t.Name,
		ID:     t.ID,
		Worker: worker,
		Start:  start.Sub(r.base),
		End:    end.Sub(r.base),
	})
}

// BusyTime returns the summed task durations (all workers).
func (tr *Trace) BusyTime() time.Duration {
	var d time.Duration
	for _, e := range tr.Events {
		d += e.End - e.Start
	}
	return d
}

// Utilization returns busy time / (workers × wall), in [0, 1] modulo timer
// noise.
func (tr *Trace) Utilization() float64 {
	if tr.Wall <= 0 || tr.Workers == 0 {
		return 0
	}
	return float64(tr.BusyTime()) / (float64(tr.Wall) * float64(tr.Workers))
}

// ByKernel aggregates busy time per task name.
func (tr *Trace) ByKernel() map[string]time.Duration {
	m := make(map[string]time.Duration)
	for _, e := range tr.Events {
		m[e.Task] += e.End - e.Start
	}
	return m
}

// Gantt renders an ASCII timeline, one row per worker; each task paints the
// first letter of its name over its time span.
func (tr *Trace) Gantt(width int) string {
	if width < 20 {
		width = 20
	}
	if tr.Wall <= 0 || len(tr.Events) == 0 {
		return "(empty trace)\n"
	}
	rows := make([][]byte, tr.Workers)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	scale := float64(width) / float64(tr.Wall)
	for _, e := range tr.Events {
		if e.Worker < 0 || e.Worker >= tr.Workers {
			continue
		}
		s := int(float64(e.Start) * scale)
		t := int(float64(e.End) * scale)
		if t >= width {
			t = width - 1
		}
		mark := byte('?')
		if len(e.Task) > 0 {
			mark = e.Task[0]
		}
		for c := s; c <= t; c++ {
			rows[e.Worker][c] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "wall %v, %d tasks, utilization %.0f%%\n", tr.Wall.Round(time.Microsecond), len(tr.Events), 100*tr.Utilization())
	for i, row := range rows {
		fmt.Fprintf(&b, "w%-2d |%s|\n", i, row)
	}
	return b.String()
}
