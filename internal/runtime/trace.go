package runtime

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// TraceEvent records one task execution (or, for merged communication
// timelines, one instantaneous event with Start == End).
type TraceEvent struct {
	Task   string
	ID     int
	Worker int
	Start  time.Duration // offset from the trace epoch
	End    time.Duration
	// Flops is the task's declared arithmetic cost (0 when undeclared);
	// together with the measured duration it yields achieved GFLOP/s.
	Flops float64
	// Bytes is the payload size touched by the task (sum of its data
	// handles, read after execution so rank-dependent SetBytes updates are
	// reflected).
	Bytes int64
	// Attempt is the execution attempt this event records (0 for the first
	// try; > 0 marks a retry/replay under the executor's RetryPolicy).
	Attempt int
}

// Duration returns the event's elapsed time.
func (e TraceEvent) Duration() time.Duration { return e.End - e.Start }

// GFlops returns the achieved GFLOP/s of the event (0 when the duration or
// flop count is zero).
func (e TraceEvent) GFlops() float64 {
	d := e.Duration().Seconds()
	if d <= 0 || e.Flops <= 0 {
		return 0
	}
	return e.Flops / d / 1e9
}

// Trace is the execution record of a graph run — the observability layer
// StarPU provides via its FXT traces. All events and Wall share one epoch
// (the instant ExecuteTraced started), and events are clamped into
// [0, Wall], so Utilization() is in [0, 1] by construction and Gantt bars
// never leave the frame.
type Trace struct {
	Workers int
	Wall    time.Duration
	// CritPath is the longest dependency chain under the MEASURED task
	// durations — the executed DAG's lower bound on wall time at any worker
	// count. Comparing it with Makespan() quantifies the idle time the
	// paper's trace figures argue about, computed instead of eyeballed.
	CritPath time.Duration
	Events   []TraceEvent
}

// ExecuteTraced runs the graph like Execute while recording per-task timing.
// A partial trace (the tasks that ran before the failure) is returned
// alongside any execution error.
func (g *Graph) ExecuteTraced(opt ExecOptions) (*Trace, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	tr := &Trace{Workers: workers}
	// One epoch for events AND Wall. Taking two time.Now() readings (one
	// for the recorder base, one for the wall start) lets event offsets and
	// Wall disagree by the gap between them: Utilization() could exceed 1
	// and Gantt painted bars past the right edge.
	rec := &recorder{base: time.Now(), events: make([][]TraceEvent, workers)}
	err := g.execute(opt, rec)
	tr.Wall = time.Since(rec.base)
	for _, evs := range rec.events {
		tr.Events = append(tr.Events, evs...)
	}
	// Clamp into [0, Wall]: with the shared epoch every event already falls
	// inside the window, so clamping only absorbs timer quantization noise —
	// but the downstream invariants (utilization, Gantt) want hard bounds.
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Start < 0 {
			e.Start = 0
		}
		if e.End > tr.Wall {
			e.End = tr.Wall
		}
		if e.End < e.Start {
			e.End = e.Start
		}
	}
	sort.Slice(tr.Events, func(i, j int) bool { return tr.Events[i].Start < tr.Events[j].Start })
	tr.CritPath = g.criticalPathMeasured(tr.Events)
	return tr, err
}

// recorder collects events per worker without cross-worker locking.
type recorder struct {
	base   time.Time
	events [][]TraceEvent
}

func (r *recorder) record(worker int, t *Task, start, end time.Time, attempt int) {
	var bytes int64
	for _, a := range t.Accesses {
		bytes += a.Handle.Bytes
	}
	r.events[worker] = append(r.events[worker], TraceEvent{
		Task:    t.Name,
		ID:      t.ID,
		Worker:  worker,
		Start:   start.Sub(r.base),
		End:     end.Sub(r.base),
		Flops:   t.Flops,
		Bytes:   bytes,
		Attempt: attempt,
	})
}

// criticalPathMeasured returns the longest dependency chain weighted by the
// durations in events (tasks without an event weigh zero — partial traces
// from failed runs yield the critical path of what actually executed).
func (g *Graph) criticalPathMeasured(events []TraceEvent) time.Duration {
	n := len(g.tasks)
	if n == 0 {
		return 0
	}
	dur := make([]time.Duration, n)
	for _, e := range events {
		if e.ID >= 0 && e.ID < n {
			dur[e.ID] = e.End - e.Start
		}
	}
	finish := make([]time.Duration, n)
	var best time.Duration
	// tasks are topologically ordered by construction (deps have smaller IDs)
	for i, t := range g.tasks {
		var start time.Duration
		for _, d := range t.deps {
			if finish[d] > start {
				start = finish[d]
			}
		}
		finish[i] = start + dur[i]
		if finish[i] > best {
			best = finish[i]
		}
	}
	return best
}

// BusyTime returns the summed task durations (all workers).
func (tr *Trace) BusyTime() time.Duration {
	var d time.Duration
	for _, e := range tr.Events {
		d += e.End - e.Start
	}
	return d
}

// Makespan returns the finish time of the last event — the measured schedule
// length. It can be marginally below Wall (Wall includes the teardown between
// the last task and the executor's return).
func (tr *Trace) Makespan() time.Duration {
	var m time.Duration
	for _, e := range tr.Events {
		if e.End > m {
			m = e.End
		}
	}
	return m
}

// Utilization returns busy time / (workers × wall), clamped into [0, 1].
// With the shared epoch and clamped events each worker's busy intervals are
// disjoint subsets of [0, Wall], so the ratio cannot exceed 1; the clamp
// guards the floating-point division.
func (tr *Trace) Utilization() float64 {
	if tr.Wall <= 0 || tr.Workers == 0 {
		return 0
	}
	u := float64(tr.BusyTime()) / (float64(tr.Wall) * float64(tr.Workers))
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// ByKernel aggregates busy time per task name.
func (tr *Trace) ByKernel() map[string]time.Duration {
	m := make(map[string]time.Duration)
	for _, e := range tr.Events {
		m[e.Task] += e.End - e.Start
	}
	return m
}

// TotalFlops sums the flop annotations over all events.
func (tr *Trace) TotalFlops() float64 {
	var s float64
	for _, e := range tr.Events {
		s += e.Flops
	}
	return s
}

// MergeEvents appends foreign events (e.g. a per-rank communication timeline
// sharing the trace epoch) and restores the start-time ordering. Workers is
// raised if the merged events name higher worker lanes.
func (tr *Trace) MergeEvents(evs []TraceEvent) {
	tr.Events = append(tr.Events, evs...)
	for _, e := range evs {
		if e.Worker >= tr.Workers {
			tr.Workers = e.Worker + 1
		}
		if e.End > tr.Wall {
			tr.Wall = e.End
		}
	}
	sort.Slice(tr.Events, func(i, j int) bool { return tr.Events[i].Start < tr.Events[j].Start })
}

// Gantt renders an ASCII timeline, one row per worker; each task paints the
// first letter of its name over its time span. Bars are clamped to the frame
// on both ends.
func (tr *Trace) Gantt(width int) string {
	if width < 20 {
		width = 20
	}
	if tr.Wall <= 0 || len(tr.Events) == 0 {
		return "(empty trace)\n"
	}
	rows := make([][]byte, tr.Workers)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", width))
	}
	scale := float64(width) / float64(tr.Wall)
	for _, e := range tr.Events {
		if e.Worker < 0 || e.Worker >= tr.Workers {
			continue
		}
		s := int(float64(e.Start) * scale)
		t := int(float64(e.End) * scale)
		if s < 0 {
			s = 0
		}
		if s >= width {
			s = width - 1
		}
		if t >= width {
			t = width - 1
		}
		if t < s {
			t = s
		}
		mark := byte('?')
		if len(e.Task) > 0 {
			mark = e.Task[0]
		}
		for c := s; c <= t; c++ {
			rows[e.Worker][c] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "wall %v, %d tasks, utilization %.0f%%\n", tr.Wall.Round(time.Microsecond), len(tr.Events), 100*tr.Utilization())
	for i, row := range rows {
		fmt.Fprintf(&b, "w%-2d |%s|\n", i, row)
	}
	return b.String()
}

// SimulateTrace performs the same list scheduling as Simulate (Barrier is
// ignored) and additionally returns the schedule as a Trace, with the cost
// model's seconds rescaled so the makespan maps to ~1s of trace time. The
// returned trace obeys the exact schedule invariants (critical path ≤
// makespan ≤ busy time) because a list schedule never lets every worker idle
// while work remains — the property the measured executor can only approach
// to within scheduling overhead.
func (g *Graph) SimulateTrace(opt SimOptions) (*Trace, float64, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	cost := opt.Cost
	if cost == nil {
		cost = func(t *Task) float64 { return t.Flops }
	}
	type rec struct {
		t             *Task
		worker        int
		start, finish float64
	}
	var recs []rec
	makespan, err := g.simulateList(workers, cost, func(t *Task, w int, s, f float64) {
		recs = append(recs, rec{t, w, s, f})
	})
	if err != nil {
		return nil, 0, err
	}
	scale := 1.0
	if makespan > 0 {
		scale = 1e9 / makespan // makespan ↦ ~1s of trace time
	}
	tr := &Trace{Workers: workers, Wall: time.Duration(makespan * scale)}
	for _, r := range recs {
		var bytes int64
		for _, a := range r.t.Accesses {
			bytes += a.Handle.Bytes
		}
		tr.Events = append(tr.Events, TraceEvent{
			Task:   r.t.Name,
			ID:     r.t.ID,
			Worker: r.worker,
			Start:  time.Duration(r.start * scale),
			End:    time.Duration(r.finish * scale),
			Flops:  r.t.Flops,
			Bytes:  bytes,
		})
	}
	sort.Slice(tr.Events, func(i, j int) bool { return tr.Events[i].Start < tr.Events[j].Start })
	tr.CritPath = g.criticalPathMeasured(tr.Events)
	return tr, makespan, nil
}

// ---- Chrome trace-event export -------------------------------------------

// chromeEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TsUS  float64        `json:"ts"`
	DurUS float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTraceFile is the top-level JSON object.
type chromeTraceFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// NamedTrace labels one trace for multi-process Chrome export; each trace
// becomes one pid row group in Perfetto.
type NamedTrace struct {
	Name  string
	Trace *Trace
}

// WriteChromeTrace writes the trace as Chrome trace-event JSON under the
// given process name. Open the file in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Each task is a complete ("X") event on its worker's
// thread lane annotated with flops, bytes, and achieved GFLOP/s;
// zero-duration events (merged communication timestamps) become instant
// ("i") events.
func (tr *Trace) WriteChromeTrace(w io.Writer, process string) error {
	return WriteChromeTraces(w, NamedTrace{Name: process, Trace: tr})
}

// WriteChromeTraces writes several traces into one Chrome trace-event file,
// one pid per trace (dense vs TLR side by side in a single Perfetto view).
func WriteChromeTraces(w io.Writer, traces ...NamedTrace) error {
	out := chromeTraceFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for pid, nt := range traces {
		tr := nt.Trace
		if tr == nil {
			return fmt.Errorf("runtime: nil trace %q", nt.Name)
		}
		name := nt.Name
		if name == "" {
			name = fmt.Sprintf("trace %d", pid)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
		for wk := 0; wk < tr.Workers; wk++ {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", PID: pid, TID: wk,
				Args: map[string]any{"name": fmt.Sprintf("worker %d", wk)},
			})
		}
		for _, e := range tr.Events {
			ce := chromeEvent{
				Name: e.Task,
				Cat:  "task",
				TsUS: float64(e.Start) / float64(time.Microsecond),
				PID:  pid,
				TID:  e.Worker,
				Args: map[string]any{
					"id":    e.ID,
					"flops": e.Flops,
					"bytes": e.Bytes,
				},
			}
			if e.Attempt > 0 {
				// Replays get their own category so Perfetto can filter the
				// retry storm out of (or into) view.
				ce.Cat = "retry"
				ce.Args["attempt"] = e.Attempt
			}
			if d := e.Duration(); d > 0 {
				ce.Phase = "X"
				ce.DurUS = float64(d) / float64(time.Microsecond)
				ce.Args["gflops"] = e.GFlops()
			} else {
				ce.Phase = "i"
				ce.Scope = "t"
			}
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
