package runtime

import (
	"container/heap"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Graph-execution counters: completed counts only tasks whose body returned
// normally; failed tasks and the successors cancelled by a failure are
// accounted separately so the drain arithmetic is auditable from metrics.
var (
	cntExecRuns       = obs.GetCounter("runtime.exec.runs")
	cntTasksCompleted = obs.GetCounter("runtime.tasks.completed")
	cntTasksFailed    = obs.GetCounter("runtime.tasks.failed")
	cntTasksCancelled = obs.GetCounter("runtime.tasks.cancelled")
	cntTaskRetried    = obs.GetCounter("runtime.task.retried")
	cntTaskRestored   = obs.GetCounter("runtime.task.restored")
)

// RetryPolicy bounds task retry/replay: a task whose body panics is restored
// from the pre-execution snapshots of its ReadWrite handles and re-executed
// up to Attempts times. Retry requires every ReadWrite handle of the task to
// carry a SnapshotFn; tasks touching snapshot-less ReadWrite handles fail
// immediately as without a policy.
type RetryPolicy struct {
	// Attempts is the number of re-executions after the first failure
	// (0 disables retry and with it all snapshot overhead).
	Attempts int
	// Backoff is slept between a failure and its replay.
	Backoff time.Duration
	// Retryable, when non-nil, filters which errors are worth replaying —
	// deterministic numerical failures (a non-SPD pivot) recur identically
	// and should fail fast rather than burn the attempt budget.
	Retryable func(error) bool
}

// ExecOptions configures real (wall-clock) execution.
type ExecOptions struct {
	// Workers is the number of parallel workers; values < 1 mean 1.
	Workers int
	// Retry bounds task retry/replay after panics (zero value = no retry).
	Retry RetryPolicy
	// Inject, when non-nil, runs before every task execution attempt inside
	// the executor's panic-recovery scope — the chaos-injection hook. It
	// receives the graph length, the task ID and the attempt number; a hook
	// panic is handled exactly like a task panic (and retried under the
	// policy), a hook sleep models a straggler.
	Inject func(graphLen, taskID, attempt int)
}

// Execute runs every task of the graph on a pool of workers, honoring the
// inferred dependencies and preferring higher-priority ready tasks. It
// returns an error if any task panics (the remaining tasks are drained
// without running) or if the graph contains an unreachable task (which would
// indicate a dependency-inference bug).
func (g *Graph) Execute(opt ExecOptions) error {
	return g.execute(opt, nil)
}

// execute is the shared engine behind Execute and ExecuteTraced.
func (g *Graph) execute(opt ExecOptions, rec *recorder) error {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	n := len(g.tasks)
	if n == 0 {
		return nil
	}

	cntExecRuns.Inc()
	indeg := make([]int, n)
	ready := &taskHeap{}
	for i, t := range g.tasks {
		indeg[i] = t.indegree
		if t.indegree == 0 {
			heap.Push(ready, t)
		}
	}

	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		done    int // tasks whose body returned normally
		nFailed int // tasks whose body panicked
		failed  error
	)

	runOne := func(t *Task, attempt int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				if e, ok := r.(error); ok {
					err = fmt.Errorf("runtime: task %q (id %d) panicked: %w", t.Name, t.ID, e)
				} else {
					err = fmt.Errorf("runtime: task %q (id %d) panicked: %v", t.Name, t.ID, r)
				}
			}
		}()
		if opt.Inject != nil {
			opt.Inject(n, t.ID, attempt)
		}
		if t.Run != nil {
			t.Run()
		}
		return nil
	}

	// runTask executes one task under the retry policy: snapshot the data a
	// replay must restore, run, and on failure restore and re-execute up to
	// Retry.Attempts extra times. With Attempts == 0 no snapshot is ever
	// taken, so the chaos-off hot path pays nothing beyond the branch.
	runTask := func(w int, t *Task) error {
		// Residency pins wrap the whole retry loop: snapshot, body and
		// replay all see materialized payloads, and the out-of-core store
		// cannot evict a tile mid-execution.
		if unpin := pinTask(t); unpin != nil {
			defer unpin()
		}
		for attempt := 0; ; attempt++ {
			canRetry := attempt < opt.Retry.Attempts
			var restore, release func()
			var restored int
			if canRetry {
				restore, release, restored, canRetry = snapshotTask(t)
			}
			var t0 time.Time
			if rec != nil {
				t0 = time.Now()
			}
			err := runOne(t, attempt)
			if rec != nil {
				rec.record(w, t, t0, time.Now(), attempt)
			}
			if err == nil {
				if release != nil {
					release()
				}
				return nil
			}
			if !canRetry || (opt.Retry.Retryable != nil && !opt.Retry.Retryable(err)) {
				if release != nil {
					release()
				}
				return err
			}
			restore()
			cntTaskRetried.Inc()
			cntTaskRestored.Add(int64(restored))
			if opt.Retry.Backoff > 0 {
				time.Sleep(opt.Retry.Backoff)
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for ready.Len() == 0 && done < n && failed == nil {
					cond.Wait()
				}
				if done >= n || failed != nil {
					mu.Unlock()
					return
				}
				t := heap.Pop(ready).(*Task)
				mu.Unlock()

				err := runTask(w, t)

				mu.Lock()
				if err != nil {
					// Unified error path: EVERY failed task stops here, not
					// just the first one. A second failure racing in after
					// `failed` was set must not fall through to the success
					// bookkeeping below — that would count a failed task as
					// done and ready the successors of a task whose output
					// does not exist.
					if failed == nil {
						failed = err
						cond.Broadcast()
					}
					nFailed++
					mu.Unlock()
					return
				}
				done++
				newlyReady := 0
				for _, s := range t.successors {
					indeg[s]--
					if indeg[s] == 0 {
						heap.Push(ready, g.tasks[s])
						newlyReady++
					}
				}
				if done >= n {
					cond.Broadcast()
				} else {
					// Wake one sleeping worker per newly-ready task. A single
					// Signal here loses wake-ups when a finished task frees
					// k > 1 successors: only one worker resumes and the other
					// k-1 ready tasks sit idle until some later completion
					// happens to signal again. This worker loops around and
					// picks up work itself, so signal for the tasks beyond
					// the one it will take.
					for i := 1; i < newlyReady; i++ {
						cond.Signal()
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	cntTasksCompleted.Add(int64(done))
	cntTasksFailed.Add(int64(nFailed))
	if failed != nil {
		cancelled := n - done - nFailed
		cntTasksCancelled.Add(int64(cancelled))
		return fmt.Errorf("runtime: aborted after %d of %d tasks completed (%d failed, %d cancelled): %w",
			done, n, nFailed, cancelled, failed)
	}
	if done != n {
		return fmt.Errorf("runtime: executed %d of %d tasks; dependency cycle or inference bug", done, n)
	}
	return nil
}

// pinTask pins every distinct handle the task accesses (via Handle.PinFn)
// and returns the matching unpin closure, or nil when no accessed handle
// carries residency hooks. A handle is pinned in overwrite mode only when
// every access the task declares on it is Write — then the store need not
// load spilled bytes that are about to be clobbered.
func pinTask(t *Task) (unpin func()) {
	var pinned []*Handle
	for _, a := range t.Accesses {
		h := a.Handle
		if h.PinFn == nil || handleSeen(pinned, h) {
			continue
		}
		overwrite := true
		for _, b := range t.Accesses {
			if b.Handle == h && b.Mode != Write {
				overwrite = false
				break
			}
		}
		h.PinFn(overwrite)
		pinned = append(pinned, h)
	}
	if len(pinned) == 0 {
		return nil
	}
	return func() {
		for _, h := range pinned {
			h.UnpinFn()
		}
	}
}

// handleSeen reports whether h is already in the (tiny) pinned list.
func handleSeen(list []*Handle, h *Handle) bool {
	for _, x := range list {
		if x == h {
			return true
		}
	}
	return false
}

// snapshotTask captures the pre-execution state a replay must put back:
// each ReadWrite handle's payload (via its SnapshotFn) and the Bytes field
// of every written handle (tasks update it through SetBytes). It returns a
// restore closure, a release closure (exactly one of the two runs, once),
// the number of payload snapshots taken (for the restored counter), and
// whether the task is retryable at all — a ReadWrite handle without a
// SnapshotFn makes it not, since its pre-state cannot be recovered.
func snapshotTask(t *Task) (restore, release func(), restored int, ok bool) {
	var restores, releases []func()
	for _, a := range t.Accesses {
		switch a.Mode {
		case ReadWrite:
			if a.Handle.SnapshotFn == nil {
				for _, rel := range releases {
					rel()
				}
				return nil, nil, 0, false
			}
			r, rel := a.Handle.SnapshotFn()
			h, b := a.Handle, a.Handle.Bytes
			restores = append(restores, func() { r(); h.Bytes = b })
			releases = append(releases, rel)
			restored++
		case Write:
			h, b := a.Handle, a.Handle.Bytes
			restores = append(restores, func() { h.Bytes = b })
		}
	}
	restore = func() {
		for _, r := range restores {
			r()
		}
	}
	release = func() {
		for _, rel := range releases {
			rel()
		}
	}
	return restore, release, restored, true
}

// taskHeap is a max-heap on task priority (ties broken by insertion order,
// earlier first, to keep execution close to the sequential flow).
type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].ID < h[j].ID
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*Task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

// CostModel maps a task to its execution time in seconds on one worker of
// the simulated machine.
type CostModel func(*Task) float64

// SimOptions configures the discrete-event simulated executor.
type SimOptions struct {
	Workers int
	Cost    CostModel
	// Barrier, when true, executes the DAG level by level (a task at
	// topological depth d starts only after every task at depth < d has
	// finished), modeling a bulk-synchronous fork-join schedule instead of
	// out-of-order task flow. Used by the scheduling ablation.
	Barrier bool
}

// Simulate performs list scheduling of the DAG on Workers homogeneous
// workers under the given cost model and returns the makespan in seconds.
// No task bodies run; only the declared costs matter. A graph whose
// dependencies form a cycle (impossible via AddTask, but reachable through
// corrupted state) yields an error naming the tasks on the cycle.
func (g *Graph) Simulate(opt SimOptions) (float64, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	n := len(g.tasks)
	if n == 0 {
		return 0, nil
	}
	cost := opt.Cost
	if cost == nil {
		cost = func(t *Task) float64 { return t.Flops }
	}
	if opt.Barrier {
		if err := g.cycleError(); err != nil {
			return 0, err
		}
		return g.simulateBarrier(workers, cost), nil
	}
	return g.simulateList(workers, cost, nil)
}

// cycleError reports a diagnostic error naming the tasks on a dependency
// cycle, or nil for a well-formed DAG. Detection is Kahn's algorithm; the
// cycle itself is extracted by walking dependencies among the tasks the
// elimination could not reach.
func (g *Graph) cycleError() error {
	n := len(g.tasks)
	indeg := make([]int, n)
	for i, t := range g.tasks {
		indeg[i] = len(t.deps)
	}
	queue := make([]int, 0, n)
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	removed := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		removed++
		for _, s := range g.tasks[id].successors {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if removed == n {
		return nil
	}
	// Every unremoved task has an unremoved dependency, so walking deps
	// among them must revisit a task within n steps — that revisit closes
	// the cycle.
	start := -1
	for i := 0; i < n; i++ {
		if indeg[i] > 0 {
			start = i
			break
		}
	}
	seenAt := make(map[int]int)
	var path []int
	cur := start
	for {
		if at, ok := seenAt[cur]; ok {
			path = append(path[at:], cur)
			break
		}
		seenAt[cur] = len(path)
		path = append(path, cur)
		next := -1
		for _, d := range g.tasks[cur].deps {
			if indeg[d] > 0 {
				next = d
				break
			}
		}
		cur = next
	}
	names := make([]string, len(path))
	for i, id := range path {
		t := g.tasks[id]
		names[i] = fmt.Sprintf("%s(id %d)", t.Name, t.ID)
	}
	return fmt.Errorf("runtime: dependency cycle: %s", strings.Join(names, " → "))
}

// simulateList is the list-scheduling engine behind Simulate and
// SimulateTrace; rec, when non-nil, receives every (task, worker, start,
// finish) placement.
func (g *Graph) simulateList(workers int, cost CostModel, rec func(t *Task, worker int, start, finish float64)) (float64, error) {
	n := len(g.tasks)
	if n == 0 {
		return 0, nil
	}
	readyAt := make([]float64, n) // max finish time of predecessors
	indeg := make([]int, n)
	ready := &simHeap{}
	for i, t := range g.tasks {
		indeg[i] = t.indegree
		if t.indegree == 0 {
			heap.Push(ready, simEntry{task: t, ready: 0})
		}
	}
	workerFree := make([]float64, workers)
	var makespan float64
	scheduled := 0
	for scheduled < n {
		if ready.Len() == 0 {
			// unreachable for AddTask-built graphs; diagnose rather than hang
			return 0, g.cycleError()
		}
		e := heap.Pop(ready).(simEntry)
		// earliest-available worker
		wi := 0
		for i := 1; i < workers; i++ {
			if workerFree[i] < workerFree[wi] {
				wi = i
			}
		}
		start := workerFree[wi]
		if e.ready > start {
			start = e.ready
		}
		finish := start + cost(e.task)
		workerFree[wi] = finish
		if finish > makespan {
			makespan = finish
		}
		if rec != nil {
			rec(e.task, wi, start, finish)
		}
		scheduled++
		for _, s := range e.task.successors {
			if readyAt[s] < finish {
				readyAt[s] = finish
			}
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(ready, simEntry{task: g.tasks[s], ready: readyAt[s]})
			}
		}
	}
	return makespan, nil
}

// simulateBarrier schedules the DAG one topological level at a time with a
// full synchronization between levels.
func (g *Graph) simulateBarrier(workers int, cost CostModel) float64 {
	n := len(g.tasks)
	level := make([]int, n)
	maxLevel := 0
	for i, t := range g.tasks {
		for _, d := range t.deps {
			if level[d]+1 > level[i] {
				level[i] = level[d] + 1
			}
		}
		if level[i] > maxLevel {
			maxLevel = level[i]
		}
	}
	byLevel := make([][]*Task, maxLevel+1)
	for i, t := range g.tasks {
		byLevel[level[i]] = append(byLevel[level[i]], t)
	}
	var clock float64
	workerFree := make([]float64, workers)
	for _, tasks := range byLevel {
		for i := range workerFree {
			workerFree[i] = clock
		}
		levelEnd := clock
		for _, t := range tasks {
			wi := 0
			for i := 1; i < workers; i++ {
				if workerFree[i] < workerFree[wi] {
					wi = i
				}
			}
			workerFree[wi] += cost(t)
			if workerFree[wi] > levelEnd {
				levelEnd = workerFree[wi]
			}
		}
		clock = levelEnd
	}
	return clock
}

type simEntry struct {
	task  *Task
	ready float64
}

// simHeap orders by readiness time, then priority, then ID. Scheduling the
// earliest-ready task first approximates list scheduling well for the
// homogeneous-worker shared-memory model.
type simHeap []simEntry

func (h simHeap) Len() int { return len(h) }
func (h simHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	if h[i].task.Priority != h[j].task.Priority {
		return h[i].task.Priority > h[j].task.Priority
	}
	return h[i].task.ID < h[j].task.ID
}
func (h simHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *simHeap) Push(x any)   { *h = append(*h, x.(simEntry)) }
func (h *simHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
