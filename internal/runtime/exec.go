package runtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Graph-execution counters: completed counts only tasks whose body returned
// normally; failed tasks and the successors cancelled by a failure are
// accounted separately so the drain arithmetic is auditable from metrics.
var (
	cntExecRuns       = obs.GetCounter("runtime.exec.runs")
	cntTasksCompleted = obs.GetCounter("runtime.tasks.completed")
	cntTasksFailed    = obs.GetCounter("runtime.tasks.failed")
	cntTasksCancelled = obs.GetCounter("runtime.tasks.cancelled")
)

// ExecOptions configures real (wall-clock) execution.
type ExecOptions struct {
	// Workers is the number of parallel workers; values < 1 mean 1.
	Workers int
}

// Execute runs every task of the graph on a pool of workers, honoring the
// inferred dependencies and preferring higher-priority ready tasks. It
// returns an error if any task panics (the remaining tasks are drained
// without running) or if the graph contains an unreachable task (which would
// indicate a dependency-inference bug).
func (g *Graph) Execute(opt ExecOptions) error {
	return g.execute(opt, nil)
}

// execute is the shared engine behind Execute and ExecuteTraced.
func (g *Graph) execute(opt ExecOptions, rec *recorder) error {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	n := len(g.tasks)
	if n == 0 {
		return nil
	}

	cntExecRuns.Inc()
	indeg := make([]int, n)
	ready := &taskHeap{}
	for i, t := range g.tasks {
		indeg[i] = t.indegree
		if t.indegree == 0 {
			heap.Push(ready, t)
		}
	}

	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		done    int // tasks whose body returned normally
		nFailed int // tasks whose body panicked
		failed  error
	)

	runOne := func(t *Task) (err error) {
		defer func() {
			if r := recover(); r != nil {
				if e, ok := r.(error); ok {
					err = fmt.Errorf("runtime: task %q (id %d) panicked: %w", t.Name, t.ID, e)
				} else {
					err = fmt.Errorf("runtime: task %q (id %d) panicked: %v", t.Name, t.ID, r)
				}
			}
		}()
		if t.Run != nil {
			t.Run()
		}
		return nil
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				for ready.Len() == 0 && done < n && failed == nil {
					cond.Wait()
				}
				if done >= n || failed != nil {
					mu.Unlock()
					return
				}
				t := heap.Pop(ready).(*Task)
				mu.Unlock()

				var t0 time.Time
				if rec != nil {
					t0 = time.Now()
				}
				err := runOne(t)
				if rec != nil {
					rec.record(w, t, t0, time.Now())
				}

				mu.Lock()
				if err != nil {
					// Unified error path: EVERY failed task stops here, not
					// just the first one. A second failure racing in after
					// `failed` was set must not fall through to the success
					// bookkeeping below — that would count a failed task as
					// done and ready the successors of a task whose output
					// does not exist.
					if failed == nil {
						failed = err
						cond.Broadcast()
					}
					nFailed++
					mu.Unlock()
					return
				}
				done++
				newlyReady := 0
				for _, s := range t.successors {
					indeg[s]--
					if indeg[s] == 0 {
						heap.Push(ready, g.tasks[s])
						newlyReady++
					}
				}
				if done >= n {
					cond.Broadcast()
				} else {
					// Wake one sleeping worker per newly-ready task. A single
					// Signal here loses wake-ups when a finished task frees
					// k > 1 successors: only one worker resumes and the other
					// k-1 ready tasks sit idle until some later completion
					// happens to signal again. This worker loops around and
					// picks up work itself, so signal for the tasks beyond
					// the one it will take.
					for i := 1; i < newlyReady; i++ {
						cond.Signal()
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	cntTasksCompleted.Add(int64(done))
	cntTasksFailed.Add(int64(nFailed))
	if failed != nil {
		cancelled := n - done - nFailed
		cntTasksCancelled.Add(int64(cancelled))
		return fmt.Errorf("runtime: aborted after %d of %d tasks completed (%d failed, %d cancelled): %w",
			done, n, nFailed, cancelled, failed)
	}
	if done != n {
		return fmt.Errorf("runtime: executed %d of %d tasks; dependency cycle or inference bug", done, n)
	}
	return nil
}

// taskHeap is a max-heap on task priority (ties broken by insertion order,
// earlier first, to keep execution close to the sequential flow).
type taskHeap []*Task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].Priority != h[j].Priority {
		return h[i].Priority > h[j].Priority
	}
	return h[i].ID < h[j].ID
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(*Task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	*h = old[:n-1]
	return t
}

// CostModel maps a task to its execution time in seconds on one worker of
// the simulated machine.
type CostModel func(*Task) float64

// SimOptions configures the discrete-event simulated executor.
type SimOptions struct {
	Workers int
	Cost    CostModel
	// Barrier, when true, executes the DAG level by level (a task at
	// topological depth d starts only after every task at depth < d has
	// finished), modeling a bulk-synchronous fork-join schedule instead of
	// out-of-order task flow. Used by the scheduling ablation.
	Barrier bool
}

// Simulate performs list scheduling of the DAG on Workers homogeneous
// workers under the given cost model and returns the makespan in seconds.
// No task bodies run; only the declared costs matter.
func (g *Graph) Simulate(opt SimOptions) float64 {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	n := len(g.tasks)
	if n == 0 {
		return 0
	}
	cost := opt.Cost
	if cost == nil {
		cost = func(t *Task) float64 { return t.Flops }
	}
	if opt.Barrier {
		return g.simulateBarrier(workers, cost)
	}
	return g.simulateList(workers, cost, nil)
}

// simulateList is the list-scheduling engine behind Simulate and
// SimulateTrace; rec, when non-nil, receives every (task, worker, start,
// finish) placement.
func (g *Graph) simulateList(workers int, cost CostModel, rec func(t *Task, worker int, start, finish float64)) float64 {
	n := len(g.tasks)
	if n == 0 {
		return 0
	}
	readyAt := make([]float64, n) // max finish time of predecessors
	indeg := make([]int, n)
	ready := &simHeap{}
	for i, t := range g.tasks {
		indeg[i] = t.indegree
		if t.indegree == 0 {
			heap.Push(ready, simEntry{task: t, ready: 0})
		}
	}
	workerFree := make([]float64, workers)
	var makespan float64
	scheduled := 0
	for scheduled < n {
		if ready.Len() == 0 {
			// should not happen for a well-formed DAG
			panic("runtime: simulate deadlock — dependency cycle")
		}
		e := heap.Pop(ready).(simEntry)
		// earliest-available worker
		wi := 0
		for i := 1; i < workers; i++ {
			if workerFree[i] < workerFree[wi] {
				wi = i
			}
		}
		start := workerFree[wi]
		if e.ready > start {
			start = e.ready
		}
		finish := start + cost(e.task)
		workerFree[wi] = finish
		if finish > makespan {
			makespan = finish
		}
		if rec != nil {
			rec(e.task, wi, start, finish)
		}
		scheduled++
		for _, s := range e.task.successors {
			if readyAt[s] < finish {
				readyAt[s] = finish
			}
			indeg[s]--
			if indeg[s] == 0 {
				heap.Push(ready, simEntry{task: g.tasks[s], ready: readyAt[s]})
			}
		}
	}
	return makespan
}

// simulateBarrier schedules the DAG one topological level at a time with a
// full synchronization between levels.
func (g *Graph) simulateBarrier(workers int, cost CostModel) float64 {
	n := len(g.tasks)
	level := make([]int, n)
	maxLevel := 0
	for i, t := range g.tasks {
		for _, d := range t.deps {
			if level[d]+1 > level[i] {
				level[i] = level[d] + 1
			}
		}
		if level[i] > maxLevel {
			maxLevel = level[i]
		}
	}
	byLevel := make([][]*Task, maxLevel+1)
	for i, t := range g.tasks {
		byLevel[level[i]] = append(byLevel[level[i]], t)
	}
	var clock float64
	workerFree := make([]float64, workers)
	for _, tasks := range byLevel {
		for i := range workerFree {
			workerFree[i] = clock
		}
		levelEnd := clock
		for _, t := range tasks {
			wi := 0
			for i := 1; i < workers; i++ {
				if workerFree[i] < workerFree[wi] {
					wi = i
				}
			}
			workerFree[wi] += cost(t)
			if workerFree[wi] > levelEnd {
				levelEnd = workerFree[wi]
			}
		}
		clock = levelEnd
	}
	return clock
}

type simEntry struct {
	task  *Task
	ready float64
}

// simHeap orders by readiness time, then priority, then ID. Scheduling the
// earliest-ready task first approximates list scheduling well for the
// homogeneous-worker shared-memory model.
type simHeap []simEntry

func (h simHeap) Len() int { return len(h) }
func (h simHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	if h[i].task.Priority != h[j].task.Priority {
		return h[i].task.Priority > h[j].task.Priority
	}
	return h[i].task.ID < h[j].task.ID
}
func (h simHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *simHeap) Push(x any)   { *h = append(*h, x.(simEntry)) }
func (h *simHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
