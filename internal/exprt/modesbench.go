package exprt

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/rng"
)

// ModesBench races every registered evaluator backend (`paperbench -modes`,
// written as BENCH_modes.json) on one clustered-geometry dataset: the exact
// dense backends (full-block, full-tile), the TLR backend, and the HODLR
// backend all evaluate the same likelihood through the public Config knob.
// For each backend it records the first evaluation (which pays assembly and
// task-graph construction), the steady-state evaluation over fresh θ (warm
// graph, full refactorization — the optimizer's inner loop), covariance
// storage, compressed-rank structure, kriging-predict throughput on the
// cached factor, and likelihood agreement with the dense reference. This is
// the measured form of the paper's backend comparison: the approximate
// factorizations must shrink memory and time while staying within solver
// tolerance of the exact answer.

// ModeRow is one backend on the shared dataset.
type ModeRow struct {
	Mode    string `json:"mode"`
	Aliases string `json:"aliases,omitempty"`

	// First evaluation: assembly + graph build + factorization.
	FirstEvalMS float64 `json:"first_eval_ms"`
	// Steady-state evaluation: mean over fresh θ on the warm session.
	SteadyEvalMS float64 `json:"steady_eval_ms"`
	SteadyEvals  int     `json:"steady_evals"`

	// Storage and rank structure from the evaluation diagnostics.
	Bytes    int64   `json:"bytes"`
	MaxRank  int     `json:"max_rank,omitempty"`
	MeanRank float64 `json:"mean_rank,omitempty"`

	// Predict throughput on the cached factor (points per second).
	PredictPointsPerSec float64 `json:"predict_points_per_sec"`

	// Accuracy vs the full-block row: same dataset, same θ.
	LogLik          float64 `json:"loglik"`
	RelErrVsDense   float64 `json:"rel_err_vs_dense"`
	WithinSolverTol bool    `json:"within_solver_tol"`
}

// ModesAcceptance is the report's pass/fail summary: every backend must
// agree with the dense reference to solver tolerance, and the compressed
// backends must actually compress.
type ModesAcceptance struct {
	AllWithinSolverTol bool `json:"all_within_solver_tol"`
	TLRCompresses      bool `json:"tlr_compresses"`
	HODLRCompresses    bool `json:"hodlr_compresses"`
	Pass               bool `json:"pass"`
}

// ModesBenchReport is the JSON payload of BENCH_modes.json.
type ModesBenchReport struct {
	N          int             `json:"n"`
	NB         int             `json:"nb"`
	Tol        float64         `json:"tol"`
	Compressor string          `json:"compressor"`
	Ordering   string          `json:"ordering"`
	Geometry   string          `json:"geometry"`
	Rows       []ModeRow       `json:"rows"`
	Acceptance ModesAcceptance `json:"acceptance"`
}

// ModesBench races the four backends at n=1600, nb=128, acc=1e-9 on a
// clustered geometry under the Hilbert ordering.
func ModesBench(o Options) (*ModesBenchReport, error) {
	o = o.withDefaults()
	const (
		n           = 1600
		nb          = 128
		tol         = 1e-9
		solverTol   = 1e-6 // likelihood agreement vs dense, rel
		steadyEvals = 3
		predictPts  = 64
		predictReps = 4
	)
	th := maternRef()
	k := cov.NewKernel(th)

	pts := geom.GenerateClustered(n, 8, 0.02, rng.New(o.Seed+11))
	z, err := cov.SampleField(k, pts, geom.Euclidean, rng.New(o.Seed+13).Split(3))
	if err != nil {
		return nil, err
	}
	p, err := core.NewProblemOrdered(pts, z, geom.Euclidean, geom.None)
	if err != nil {
		return nil, err
	}
	r := rng.New(o.Seed + 17)
	query := make([]geom.Point, predictPts)
	for i := range query {
		query[i] = geom.Point{X: r.Float64(), Y: r.Float64()}
	}

	rep := &ModesBenchReport{N: n, NB: nb, Tol: tol, Compressor: "rsvd",
		Ordering: geom.OrderHilbert, Geometry: "clustered"}
	var denseLik float64
	for _, name := range core.ModeNames() {
		mode, err := core.ModeByName(name)
		if err != nil {
			return nil, err
		}
		cfg := core.Config{Mode: mode, TileSize: nb, Accuracy: tol,
			CompressorName: "rsvd", Workers: o.Workers, Ordering: geom.OrderHilbert}
		s, err := core.NewSession(p, cfg)
		if err != nil {
			return nil, err
		}

		t0 := time.Now()
		lik, err := s.LogLikelihood(th)
		if err != nil {
			return nil, err
		}
		row := ModeRow{
			Mode:        name,
			FirstEvalMS: ms(time.Since(t0).Seconds()),
			Bytes:       lik.Bytes,
			MaxRank:     lik.MaxRank, MeanRank: lik.MeanRank,
			LogLik:      lik.Value,
			SteadyEvals: steadyEvals,
		}

		// Steady state: fresh θ each time, so the warm session refactorizes
		// through its cached task graph — the optimizer's inner loop.
		t0 = time.Now()
		for i := 0; i < steadyEvals; i++ {
			thi := th
			thi.Range *= 1 + 0.02*float64(i+1)
			if _, err := s.LogLikelihood(thi); err != nil {
				return nil, err
			}
		}
		row.SteadyEvalMS = ms(time.Since(t0).Seconds() / steadyEvals)

		// Predict throughput: first call warms the θ-cached factor, the
		// timed loop measures pure solve + cross-covariance serving cost.
		if _, err := s.Predict(query, th); err != nil {
			return nil, err
		}
		t0 = time.Now()
		for i := 0; i < predictReps; i++ {
			if _, err := s.Predict(query, th); err != nil {
				return nil, err
			}
		}
		row.PredictPointsPerSec = float64(predictPts*predictReps) / time.Since(t0).Seconds()

		if mode == core.FullBlock {
			denseLik = lik.Value
		}
		row.RelErrVsDense = math.Abs(lik.Value-denseLik) / math.Abs(denseLik)
		row.WithinSolverTol = row.RelErrVsDense <= solverTol
		rep.Rows = append(rep.Rows, row)
	}

	// Acceptance: approximation must not change the answer, and must buy
	// something for it — less memory than the dense factor.
	acc := ModesAcceptance{AllWithinSolverTol: true}
	var denseBytes int64
	for _, r := range rep.Rows {
		if r.Mode == "full-block" {
			denseBytes = r.Bytes
		}
	}
	for _, r := range rep.Rows {
		if !r.WithinSolverTol {
			acc.AllWithinSolverTol = false
		}
		switch r.Mode {
		case "tlr":
			acc.TLRCompresses = r.Bytes < denseBytes
		case "hodlr":
			acc.HODLRCompresses = r.Bytes < denseBytes
		}
	}
	acc.Pass = acc.AllWithinSolverTol && acc.TLRCompresses && acc.HODLRCompresses
	rep.Acceptance = acc
	return rep, nil
}

// WriteModesBench runs ModesBench and writes the JSON report to path,
// echoing a summary table to o.Out.
func WriteModesBench(path string, o Options) error {
	o = o.withDefaults()
	rep, err := ModesBench(o)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "modes bench n=%d nb=%d tol=%g %s ordering=%s %s -> %s\n",
		rep.N, rep.NB, rep.Tol, rep.Compressor, rep.Ordering, rep.Geometry, path)
	for _, r := range rep.Rows {
		fmt.Fprintf(o.Out, "  %-10s first %8.1fms steady %8.1fms  %8.1fKB  rank max %3d mean %5.1f  predict %7.0f pts/s  rel err %.1e\n",
			r.Mode, r.FirstEvalMS, r.SteadyEvalMS, float64(r.Bytes)/1024,
			r.MaxRank, r.MeanRank, r.PredictPointsPerSec, r.RelErrVsDense)
	}
	fmt.Fprintf(o.Out, "  acceptance: within tol %v, tlr compresses %v, hodlr compresses %v -> pass=%v\n",
		rep.Acceptance.AllWithinSolverTol, rep.Acceptance.TLRCompresses,
		rep.Acceptance.HODLRCompresses, rep.Acceptance.Pass)
	return nil
}
