package exprt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/datasets"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/stats"
)

// regionPoints returns points per region per scale. The paper's regions hold
// ~250 K locations; the simulated stand-ins are smaller but exercise the
// same regional-estimation pipeline.
func regionPoints(s Scale) int {
	if s == ScalePaper {
		return 900
	}
	return 256
}

// fitRegion fits one dataset region under one technique. The smoothness
// search starts at the generating truth's neighborhood (the paper likewise
// seeds the optimizer from empirical values).
func fitRegion(reg datasets.Region, cfg core.Config, evals int) (cov.Params, error) {
	prob, err := core.NewProblem(reg.Points, reg.Z, regMetric(reg))
	if err != nil {
		return cov.Params{}, err
	}
	fit, err := core.Fit(prob, cfg, core.FitOptions{
		Start:    cov.Params{Variance: reg.Truth.Variance, Range: reg.Truth.Range, Smoothness: 0.8},
		Upper:    cov.Params{Variance: 100 * reg.Truth.Variance, Range: 50 * reg.Truth.Range, Smoothness: 3},
		MaxEvals: evals,
	})
	if err != nil {
		return cov.Params{}, err
	}
	return fit.Theta, nil
}

// regMetric recovers the metric for a region (wind regions live on the
// sphere: any longitude in the Arabian-Peninsula band marks them).
func regMetric(reg datasets.Region) geom.Metric {
	if reg.Points[0].X >= 30 && reg.Points[0].X <= 60 {
		return geom.GreatCircleEarth100km
	}
	return geom.Euclidean
}

// realTable runs the Table I / Table II estimation: for each region, fit
// with each TLR accuracy and full-tile, and print the three parameter
// sub-tables in the paper's layout.
func realTable(o Options, ds *datasets.Dataset, accs []float64, evals int) error {
	techniques := make([]technique, 0, len(accs)+1)
	for _, a := range accs {
		techniques = append(techniques, technique{
			name: fmt.Sprintf("tlr(%.0e)", a),
			cfg:  core.Config{Mode: core.TLR, TileSize: 64, Accuracy: a, Workers: o.Workers},
		})
	}
	techniques = append(techniques, technique{
		name: "full-tile",
		cfg:  core.Config{Mode: core.FullTile, TileSize: 64, Workers: o.Workers},
	})

	est := make(map[string]map[string]cov.Params) // region -> technique -> theta
	for _, reg := range ds.Regions {
		est[reg.Name] = make(map[string]cov.Params)
		for _, tq := range techniques {
			th, err := fitRegion(reg, tq.cfg, evals)
			if err != nil {
				return fmt.Errorf("region %s, %s: %w", reg.Name, tq.name, err)
			}
			est[reg.Name][tq.name] = th
		}
	}

	for compIdx, compName := range []string{"variance (θ1)", "spatial range (θ2)", "smoothness (θ3)"} {
		fmt.Fprintf(o.Out, "\n%s — %s\n", ds.Name, compName)
		header := []string{"region"}
		for _, tq := range techniques {
			header = append(header, tq.name)
		}
		header = append(header, "truth")
		tb := stats.NewTable(header...)
		for _, reg := range ds.Regions {
			row := []string{reg.Name}
			for _, tq := range techniques {
				th := est[reg.Name][tq.name]
				row = append(row, fmt.Sprintf("%.3f", [3]float64{th.Variance, th.Range, th.Smoothness}[compIdx]))
			}
			row = append(row, fmt.Sprintf("%.3f", [3]float64{reg.Truth.Variance, reg.Truth.Range, reg.Truth.Smoothness}[compIdx]))
			tb.AddRow(row...)
		}
		fmt.Fprint(o.Out, tb.String())
	}
	return nil
}

// Table1 reproduces Table I: Matérn estimates for the eight soil-moisture
// regions under TLR accuracies 1e-5…1e-12 and full-tile.
func Table1(o Options) error {
	o = o.withDefaults()
	ds, err := datasets.SoilMoisture(regionPoints(o.Scale), o.Seed)
	if err != nil {
		return err
	}
	evals := 80
	if o.Scale == ScalePaper {
		evals = 150
	}
	fmt.Fprintf(o.Out, "simulated Mississippi soil-moisture field, %d locations per region (paper: ~250K)\n", regionPoints(o.Scale))
	return realTable(o, ds, []float64{1e-5, 1e-7, 1e-9, 1e-12}, evals)
}

// Table2 reproduces Table II: Matérn estimates for the four wind-speed
// regions (great-circle distances) under TLR accuracies 1e-5…1e-9 and
// full-tile.
func Table2(o Options) error {
	o = o.withDefaults()
	ds, err := datasets.WindSpeed(regionPoints(o.Scale), o.Seed)
	if err != nil {
		return err
	}
	evals := 80
	if o.Scale == ScalePaper {
		evals = 150
	}
	fmt.Fprintf(o.Out, "simulated Middle-East wind-speed field, %d locations per region (paper: ~250K)\n", regionPoints(o.Scale))
	return realTable(o, ds, []float64{1e-5, 1e-7, 1e-9}, evals)
}

// Fig9 reproduces Figure 9: prediction MSE boxplots on real-data regions —
// soil-moisture R1 and R3, wind-speed R1 and R4 — predicting 100 random
// missing values repeatedly under each technique.
func Fig9(o Options) error {
	o = o.withDefaults()
	nPts := regionPoints(o.Scale)
	reps := 8
	nMiss := 25
	if o.Scale == ScalePaper {
		reps, nMiss = 25, 100
	}
	soil, err := datasets.SoilMoisture(nPts+nMiss, o.Seed)
	if err != nil {
		return err
	}
	wind, err := datasets.WindSpeed(nPts+nMiss, o.Seed)
	if err != nil {
		return err
	}
	cases := []struct {
		label string
		reg   datasets.Region
		accs  []float64
	}{
		{"soil moisture R1", soil.Regions[0], []float64{1e-7, 1e-9, 1e-12}},
		{"soil moisture R3", soil.Regions[2], []float64{1e-7, 1e-9, 1e-12}},
		{"wind speed R1", wind.Regions[0], []float64{1e-5, 1e-7, 1e-9}},
		{"wind speed R4", wind.Regions[3], []float64{1e-5, 1e-7, 1e-9}},
	}
	for _, c := range cases {
		fmt.Fprintf(o.Out, "\n%s: %d missing values, %d repetitions\n", c.label, nMiss, reps)
		techniques := make([]technique, 0, 4)
		for _, a := range c.accs {
			techniques = append(techniques, technique{
				name: fmt.Sprintf("tlr(%.0e)", a),
				cfg:  core.Config{Mode: core.TLR, TileSize: 64, Accuracy: a, Workers: o.Workers},
			})
		}
		techniques = append(techniques, technique{"full-tile", core.Config{Mode: core.FullTile, TileSize: 64, Workers: o.Workers}})

		mses := make(map[string][]float64)
		for rep := 0; rep < reps; rep++ {
			trainPts, trainZ, testPts, testZ := holdOut(c.reg, nMiss, o.Seed+uint64(rep)*131)
			prob, err := core.NewProblem(trainPts, trainZ, regMetric(c.reg))
			if err != nil {
				return err
			}
			for _, tq := range techniques {
				pred, err := core.Predict(prob, testPts, c.reg.Truth, tq.cfg)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", c.label, tq.name, err)
				}
				mses[tq.name] = append(mses[tq.name], core.MSE(pred, testZ))
			}
		}
		tb := stats.NewTable("technique", "mse median", "q1", "q3", "min", "max")
		for _, tq := range techniques {
			s := stats.Summarize(mses[tq.name])
			tb.AddRow(tq.name,
				fmt.Sprintf("%.4g", s.Median), fmt.Sprintf("%.4g", s.Q1), fmt.Sprintf("%.4g", s.Q3),
				fmt.Sprintf("%.4g", s.Min), fmt.Sprintf("%.4g", s.Max))
		}
		fmt.Fprint(o.Out, tb.String())
	}
	fmt.Fprintln(o.Out, "\npaper finding to compare: TLR prediction MSE stays close to full-tile on every region")
	return nil
}

// holdOut splits a region into train and a random nMiss-point test set.
func holdOut(reg datasets.Region, nMiss int, seed uint64) (trainPts []geom.Point, trainZ []float64, testPts []geom.Point, testZ []float64) {
	perm := rng.New(seed).Perm(len(reg.Points))
	isTest := make([]bool, len(reg.Points))
	for _, i := range perm[:nMiss] {
		isTest[i] = true
	}
	for i := range reg.Points {
		if isTest[i] {
			testPts = append(testPts, reg.Points[i])
			testZ = append(testZ, reg.Z[i])
		} else {
			trainPts = append(trainPts, reg.Points[i])
			trainZ = append(trainZ, reg.Z[i])
		}
	}
	return
}
