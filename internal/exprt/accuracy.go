package exprt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/stats"
)

// fig6Vectors are the three initial parameter vectors of §VIII-D1: weak,
// medium, and strong correlation at smoothness 0.5.
var fig6Vectors = []cov.Params{
	{Variance: 1, Range: 0.03, Smoothness: 0.5},
	{Variance: 1, Range: 0.1, Smoothness: 0.5},
	{Variance: 1, Range: 0.3, Smoothness: 0.5},
}

// technique pairs a display name with a computation config.
type technique struct {
	name string
	cfg  core.Config
}

func fig6Techniques(workers int) []technique {
	mk := func(acc float64) core.Config {
		return core.Config{Mode: core.TLR, TileSize: 64, Accuracy: acc, Workers: workers}
	}
	return []technique{
		{"tlr(1e-7)", mk(1e-7)},
		{"tlr(1e-9)", mk(1e-9)},
		{"tlr(1e-12)", mk(1e-12)},
		{"full-tile", core.Config{Mode: core.FullTile, TileSize: 64, Workers: workers}},
	}
}

// fig6Size returns (n, replicates, maxEvals) per scale. The paper uses 40 K
// locations and 100 replicates; that is reduced here to keep the Monte Carlo
// single-machine-feasible (documented in EXPERIMENTS.md).
func fig6Size(s Scale) (int, int, int) {
	if s == ScalePaper {
		return 1600, 25, 120
	}
	return 225, 5, 60
}

// Fig6 reproduces Figure 6: Monte-Carlo boxplots of the estimated Matérn
// parameters for each initial vector and each computation technique.
func Fig6(o Options) error {
	o = o.withDefaults()
	n, reps, evals := fig6Size(o.Scale)
	techniques := fig6Techniques(o.Workers)
	fmt.Fprintf(o.Out, "Monte Carlo: n=%d locations, %d measurement vectors per θ (paper: 40K x 100)\n", n, reps)

	for _, truth := range fig6Vectors {
		fmt.Fprintf(o.Out, "\ninitial θ = (%.2g, %.2g, %.2g)\n", truth.Variance, truth.Range, truth.Smoothness)
		probs, err := core.GenerateSyntheticReplicates(n, reps, truth, o.Seed)
		if err != nil {
			return err
		}
		est := make(map[string][]cov.Params)
		for _, tq := range techniques {
			for _, p := range probs {
				fit, err := core.Fit(p, tq.cfg, core.FitOptions{
					Start:    truth, // paper starts optimization near the truth's neighborhood
					MaxEvals: evals,
				})
				if err != nil {
					return fmt.Errorf("fit %s: %w", tq.name, err)
				}
				est[tq.name] = append(est[tq.name], fit.Theta)
			}
		}
		for compIdx, compName := range []string{"θ1 (variance)", "θ2 (range)", "θ3 (smoothness)"} {
			trueVal := [3]float64{truth.Variance, truth.Range, truth.Smoothness}[compIdx]
			fmt.Fprintf(o.Out, "  %s — true value %.3g\n", compName, trueVal)
			tb := stats.NewTable("technique", "median", "q1", "q3", "min", "max")
			for _, tq := range techniques {
				vals := make([]float64, 0, reps)
				for _, th := range est[tq.name] {
					vals = append(vals, [3]float64{th.Variance, th.Range, th.Smoothness}[compIdx])
				}
				s := stats.Summarize(vals)
				tb.AddRow(tq.name,
					fmt.Sprintf("%.4g", s.Median), fmt.Sprintf("%.4g", s.Q1), fmt.Sprintf("%.4g", s.Q3),
					fmt.Sprintf("%.4g", s.Min), fmt.Sprintf("%.4g", s.Max))
			}
			fmt.Fprint(o.Out, indent(tb.String(), "  "))
		}
	}
	fmt.Fprintln(o.Out, "\npaper finding to compare: weakly correlated data is recovered at every accuracy;")
	fmt.Fprintln(o.Out, "strong correlation (θ2=0.3) needs the tightest TLR accuracy to match full-tile")
	return nil
}

// Fig7 reproduces Figure 7: prediction MSE of 100 missing values under each
// technique for the three parameter vectors.
func Fig7(o Options) error {
	o = o.withDefaults()
	n, reps, _ := fig6Size(o.Scale)
	nMiss := 100
	if o.Scale == ScaleSmall {
		nMiss = 25
	}
	techniques := fig6Techniques(o.Workers)
	fmt.Fprintf(o.Out, "prediction of %d missing values, %d replicates per θ\n", nMiss, reps)
	for _, truth := range fig6Vectors {
		fmt.Fprintf(o.Out, "\ninitial θ = (%.2g, %.2g, %.2g)\n", truth.Variance, truth.Range, truth.Smoothness)
		tb := stats.NewTable("technique", "mse median", "q1", "q3", "min", "max")
		mseAll := make(map[string][]float64)
		for rep := 0; rep < reps; rep++ {
			syn, err := core.GenerateSynthetic(n+nMiss, nMiss, truth, o.Seed+uint64(rep)*977)
			if err != nil {
				return err
			}
			for _, tq := range techniques {
				pred, err := core.Predict(syn.Train, syn.TestPoints, truth, tq.cfg)
				if err != nil {
					return fmt.Errorf("predict %s: %w", tq.name, err)
				}
				mseAll[tq.name] = append(mseAll[tq.name], core.MSE(pred, syn.TestZ))
			}
		}
		for _, tq := range techniques {
			s := stats.Summarize(mseAll[tq.name])
			tb.AddRow(tq.name,
				fmt.Sprintf("%.4g", s.Median), fmt.Sprintf("%.4g", s.Q1), fmt.Sprintf("%.4g", s.Q3),
				fmt.Sprintf("%.4g", s.Min), fmt.Sprintf("%.4g", s.Max))
		}
		fmt.Fprint(o.Out, tb.String())
	}
	fmt.Fprintln(o.Out, "\npaper finding to compare: TLR matches full-tile prediction MSE at every accuracy,")
	fmt.Fprintln(o.Out, "and MSE decreases as the correlation strengthens (≈0.124 / 0.036 / 0.012 at paper scale)")
	return nil
}

func indent(s, pre string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += pre + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += pre + s[start:]
	}
	return out
}
