package exprt

import (
	"encoding/json"
	"fmt"
	"os"
	goruntime "runtime"
	"time"

	"repro/internal/chaos"
	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/runtime"
	"repro/internal/tlr"
)

// ChaosBenchReport is the machine-readable snapshot of the fault-tolerance
// layer (`paperbench -chaos`), written as BENCH_chaos.json. It answers two
// questions: what does arming the retry machinery cost when nothing fails
// (the chaos-off overhead, required < 5%), and does a chaos-injected run —
// task panics healed by snapshot/replay plus injected stragglers — still
// produce bitwise the factor of the fault-free execution.
type ChaosBenchReport struct {
	N          int     `json:"n"`
	NB         int     `json:"nb"`
	Tol        float64 `json:"tol"`
	Compressor string  `json:"compressor"`
	NumCPU     int     `json:"num_cpu"`
	Workers    int     `json:"workers"`
	Reps       int     `json:"reps"`

	// Best-of-reps factorization times.
	BaselineMS   float64 `json:"baseline_factor_ms"`    // retries disabled
	RetryArmedMS float64 `json:"retry_armed_factor_ms"` // retries armed, no faults

	// OverheadPct is the chaos-off cost of arming retries, in percent.
	OverheadPct    float64 `json:"retry_overhead_pct"`
	OverheadUnder5 bool    `json:"retry_overhead_under_5pct"`

	Chaos ChaosRunResult `json:"chaos_run"`
}

// ChaosRunResult is the outcome of the chaos-injected factorization.
type ChaosRunResult struct {
	FactorMS         float64 `json:"factor_ms"`
	TaskPanics       int64   `json:"task_panics_injected"`
	TaskDelays       int64   `json:"task_delays_injected"`
	Recovered        bool    `json:"recovered"`
	BitwiseIdentical bool    `json:"bitwise_identical_to_baseline"`
}

// chaosAssemble builds a fresh TLR matrix for one factorization rep. The
// assembly is excluded from the timings — only the Cholesky phase carries
// the retry machinery under test.
func chaosAssemble(o Options, n, nb int, tol float64) *tlr.Matrix {
	k := cov.NewKernel(maternRef())
	pts := geom.GeneratePerturbedGrid(n, rng.New(o.Seed))
	pts = geom.Sorted(geom.Morton, pts)
	return tlr.FromKernel(k, pts, geom.Euclidean, n, nb, tol, tlr.RSVDCompressor{}, 1e-9, o.Workers)
}

// ChaosBench measures the retry machinery on the paper's n=1600 TLR Cholesky.
func ChaosBench(o Options) (*ChaosBenchReport, error) {
	o = o.withDefaults()
	const (
		n, nb = 1600, 128
		tol   = 1e-7
		reps  = 3
	)
	rep := &ChaosBenchReport{
		N: n, NB: nb, Tol: tol,
		Compressor: "rsvd",
		NumCPU:     goruntime.NumCPU(),
		Workers:    o.Workers,
		Reps:       reps,
	}

	run := func(opt runtime.ExecOptions) (*tlr.Matrix, float64, error) {
		m := chaosAssemble(o, n, nb, tol)
		g := tlr.BuildCholeskyGraph(m, true)
		t0 := time.Now()
		if err := g.Execute(opt); err != nil {
			return nil, 0, err
		}
		return m, time.Since(t0).Seconds(), nil
	}

	// (a)+(b): baseline (retries disabled) vs retry-armed but fault-free —
	// the chaos-off overhead the ISSUE bounds. The reps interleave the two
	// configurations so machine drift (warmup, frequency scaling, noisy
	// neighbors) cancels instead of biasing the ratio; best-of-reps each.
	baseOpt := runtime.ExecOptions{Workers: o.Workers}
	armedOpt := runtime.ExecOptions{Workers: o.Workers, Retry: runtime.RetryPolicy{Attempts: 2}}
	var ref *tlr.Matrix
	var base, armed float64
	if _, _, err := run(baseOpt); err != nil { // warmup, untimed
		return nil, fmt.Errorf("warmup factorization: %w", err)
	}
	for r := 0; r < reps; r++ {
		m, tb, err := run(baseOpt)
		if err != nil {
			return nil, fmt.Errorf("baseline factorization: %w", err)
		}
		ref = m
		_, ta, err := run(armedOpt)
		if err != nil {
			return nil, fmt.Errorf("retry-armed factorization: %w", err)
		}
		if r == 0 || tb < base {
			base = tb
		}
		if r == 0 || ta < armed {
			armed = ta
		}
	}
	rep.BaselineMS = ms(base)
	rep.RetryArmedMS = ms(armed)
	rep.OverheadPct = 100 * (armed - base) / base
	rep.OverheadUnder5 = rep.OverheadPct < 5

	// (c) Chaos injected: panics healed by snapshot/replay, plus stragglers.
	inj := chaos.NewInjector(&chaos.FaultPlan{
		Seed:       o.Seed,
		TaskPanics: 5,
		TaskDelays: 5,
		TaskDelay:  200 * time.Microsecond,
	})
	cur := chaosAssemble(o, n, nb, tol)
	g := tlr.BuildCholeskyGraph(cur, true)
	t0 := time.Now()
	cerr := g.Execute(runtime.ExecOptions{
		Workers: o.Workers,
		Retry:   runtime.RetryPolicy{Attempts: 2},
		Inject:  inj.TaskHook,
	})
	st := inj.Stats()
	rep.Chaos = ChaosRunResult{
		FactorMS:   ms(time.Since(t0).Seconds()),
		TaskPanics: st.TaskPanics,
		TaskDelays: st.TaskDelays,
		Recovered:  cerr == nil,
	}
	if cerr != nil {
		return nil, fmt.Errorf("chaos-injected factorization did not recover: %w", cerr)
	}
	rep.Chaos.BitwiseIdentical = tlrIdentical(ref, cur)
	return rep, nil
}

// WriteChaosBench runs ChaosBench and writes the JSON report to path,
// echoing a short summary to o.Out.
func WriteChaosBench(path string, o Options) error {
	o = o.withDefaults()
	rep, err := ChaosBench(o)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "chaos bench n=%d nb=%d %s tol=%g (%d cpus, %d workers) -> %s\n",
		rep.N, rep.NB, rep.Compressor, rep.Tol, rep.NumCPU, rep.Workers, path)
	fmt.Fprintf(o.Out, "  baseline    %8.1fms\n", rep.BaselineMS)
	fmt.Fprintf(o.Out, "  retry armed %8.1fms  overhead %+.2f%% (under 5%%: %v)\n",
		rep.RetryArmedMS, rep.OverheadPct, rep.OverheadUnder5)
	fmt.Fprintf(o.Out, "  chaos run   %8.1fms  panics=%d delays=%d recovered=%v bitwise=%v\n",
		rep.Chaos.FactorMS, rep.Chaos.TaskPanics, rep.Chaos.TaskDelays,
		rep.Chaos.Recovered, rep.Chaos.BitwiseIdentical)
	return nil
}
