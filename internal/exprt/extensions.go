package exprt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Extensions reports the beyond-the-paper features: conditional prediction
// variance with interval coverage, the profiled likelihood, and iterative
// accuracy refinement. It is part of the default suite so a full
// `paperbench -exp all` documents them alongside the paper's figures.
func Extensions(o Options) error {
	o = o.withDefaults()
	truth := cov.Params{Variance: 1, Range: 0.2, Smoothness: 0.5}
	n, nMiss := 324, 36
	if o.Scale == ScalePaper {
		n, nMiss = 900, 100
	}
	cfg := core.Config{Mode: core.TLR, TileSize: 64, Accuracy: 1e-8, Workers: o.Workers}

	// --- 1. prediction intervals --------------------------------------
	fmt.Fprintf(o.Out, "[1] conditional prediction variance (paper eq. 3), n=%d, %d held out\n", n, nMiss)
	var pooledIn, pooledTot int
	var mses []float64
	reps := 5
	for rep := 0; rep < reps; rep++ {
		syn, err := core.GenerateSynthetic(n+nMiss, nMiss, truth, o.Seed+uint64(rep)*31)
		if err != nil {
			return err
		}
		pr, err := core.PredictWithVariance(syn.Train, syn.TestPoints, truth, cfg)
		if err != nil {
			return err
		}
		covg, err := core.CoverageCheck(pr, syn.TestZ)
		if err != nil {
			return err
		}
		pooledIn += int(covg*float64(nMiss) + 0.5)
		pooledTot += nMiss
		mses = append(mses, core.MSE(pr.Mean, syn.TestZ))
	}
	s := stats.Summarize(mses)
	fmt.Fprintf(o.Out, "MSE median %.4g (q1 %.4g, q3 %.4g); 95%% interval coverage %.0f%% over %d predictions (want ≈95%%)\n\n",
		s.Median, s.Q1, s.Q3, 100*float64(pooledIn)/float64(pooledTot), pooledTot)

	// --- 2. profiled likelihood ----------------------------------------
	fmt.Fprintf(o.Out, "[2] profiled (concentrated) likelihood vs full 3-parameter fit\n")
	syn, err := core.GenerateSynthetic(n, 0, truth, o.Seed)
	if err != nil {
		return err
	}
	full, err := core.Fit(syn.Train, cfg, core.FitOptions{MaxEvals: 150})
	if err != nil {
		return err
	}
	prof, err := core.ProfiledFit(syn.Train, cfg, core.FitOptions{MaxEvals: 150})
	if err != nil {
		return err
	}
	tb := stats.NewTable("fit", "θ̂1", "θ̂2", "θ̂3", "loglik", "evals")
	tb.AddRow("full 3-D", fmt.Sprintf("%.4f", full.Theta.Variance), fmt.Sprintf("%.4f", full.Theta.Range),
		fmt.Sprintf("%.4f", full.Theta.Smoothness), fmt.Sprintf("%.3f", full.LogL), fmt.Sprintf("%d", full.Evals))
	tb.AddRow("profiled 2-D", fmt.Sprintf("%.4f", prof.Theta.Variance), fmt.Sprintf("%.4f", prof.Theta.Range),
		fmt.Sprintf("%.4f", prof.Theta.Smoothness), fmt.Sprintf("%.3f", prof.LogL), fmt.Sprintf("%d", prof.Evals))
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out)

	// --- 3. iterative refinement ---------------------------------------
	fmt.Fprintf(o.Out, "[3] accuracy refinement: loose TLR preconditioner + PCG with exact matvec\n")
	b := make([]float64, syn.Train.N())
	rng.New(o.Seed + 7).NormSlice(b)
	rt := stats.NewTable("preconditioner acc", "pcg iterations", "final rel residual")
	for _, acc := range []float64{1e-1, 1e-2, 1e-4} {
		_, res, err := core.SolveRefined(syn.Train, truth, core.Config{TileSize: 64, Accuracy: acc, Workers: o.Workers},
			b, core.RefineOptions{Tol: 1e-11})
		if err != nil {
			return err
		}
		rt.AddRow(fmt.Sprintf("%.0e", acc), fmt.Sprintf("%d", res.Iterations), fmt.Sprintf("%.1e", res.RelResidual))
	}
	fmt.Fprint(o.Out, rt.String())
	fmt.Fprintln(o.Out, "looser factorizations cost more Krylov iterations — the accuracy/effort dial the paper's conclusion anticipates")
	return nil
}
