package exprt

import (
	"bytes"
	"strings"
	"testing"
)

func TestByName(t *testing.T) {
	for _, e := range Experiments {
		got, err := ByName(e.Name)
		if err != nil || got.Name != e.Name {
			t.Fatalf("ByName(%q) failed: %v", e.Name, err)
		}
	}
	if _, err := ByName("fig99"); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestExperimentsCoverEveryTableAndFigure(t *testing.T) {
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table1", "table2", "fig9", "ablation", "extensions"}
	if len(Experiments) != len(want) {
		t.Fatalf("experiment count %d, want %d", len(Experiments), len(want))
	}
	for i, name := range want {
		if Experiments[i].Name != name {
			t.Fatalf("experiment %d is %q, want %q", i, Experiments[i].Name, name)
		}
		if Experiments[i].Run == nil || Experiments[i].Title == "" {
			t.Fatalf("experiment %q incomplete", name)
		}
	}
}

func TestFig2Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig2(Options{Out: &buf, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"362 for MLE", "38 held out", "min pairwise distance"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig2 output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "x") || !strings.Contains(out, "o") {
		t.Fatal("fig2 scatter missing markers")
	}
}

func TestFig4OutputShape(t *testing.T) {
	// fig4 is pure simulation and fast; verify the two machine sections and
	// the series headers appear.
	var buf bytes.Buffer
	if err := Fig4(Options{Out: &buf, Workers: 1}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"256 nodes", "1024 nodes", "full-tile", "tlr(1e-9)", "max TLR speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig4 output missing %q", want)
		}
	}
}

func TestIndent(t *testing.T) {
	if got := indent("a\nb\n", "  "); got != "  a\n  b\n" {
		t.Fatalf("indent wrong: %q", got)
	}
	if got := indent("tail", "> "); got != "> tail" {
		t.Fatalf("indent without newline wrong: %q", got)
	}
}

func TestFmtSecs(t *testing.T) {
	cases := map[string]string{
		fmtSecs(0.0001, false): "0.1ms",
		fmtSecs(0.5, false):    "500ms",
		fmtSecs(12.34, false):  "12.3s",
		fmtSecs(1, true):       "OOM",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("fmtSecs: got %q want %q", got, want)
		}
	}
}

func TestRegionPointsScales(t *testing.T) {
	if regionPoints(ScaleSmall) >= regionPoints(ScalePaper) {
		t.Fatal("paper scale should use more points")
	}
}
