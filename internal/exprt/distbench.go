package exprt

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/la"
	"repro/internal/mpi"
	"repro/internal/tlr"
)

// DistBench validates the distributed-memory TLR backend against both the
// shared-memory computation (likelihood agreement) and the analytic
// communication model of internal/cluster (per-rank bytes sent during the
// Cholesky phase within a factor of two). It is the measured counterpart to
// the paper's distributed performance studies (§VIII-B), at laptop scale.

// DistRankRow compares one rank's measured Cholesky-phase traffic with the
// analytic prediction.
type DistRankRow struct {
	Rank          int     `json:"rank"`
	SentBytes     int64   `json:"sent_bytes"`
	RecvBytes     int64   `json:"recv_bytes"`
	MsgsSent      int64   `json:"msgs_sent"`
	AnalyticBytes float64 `json:"analytic_sent_bytes"`
	Ratio         float64 `json:"ratio"` // measured / analytic (1 when both silent)
}

// DistGridResult is the outcome of one process-grid configuration.
type DistGridResult struct {
	P          int           `json:"p"`
	Q          int           `json:"q"`
	Ranks      int           `json:"ranks"`
	LogLik     float64       `json:"loglik"`
	RelErr     float64       `json:"rel_err_vs_shared"`
	FactorMS   float64       `json:"factor_ms"`
	PerRank    []DistRankRow `json:"per_rank"`
	WithinTwoX bool          `json:"within_two_x"`
}

// DistBenchReport is the JSON payload of BENCH_dist.json.
type DistBenchReport struct {
	N            int              `json:"n"`
	NB           int              `json:"nb"`
	Tol          float64          `json:"tol"`
	Compressor   string           `json:"compressor"`
	SharedLogLik float64          `json:"shared_loglik"`
	Grids        []DistGridResult `json:"grids"`
}

// DistBench runs the distributed TLR likelihood at n=1600, nb=128, acc=1e-7
// on 1×1, 2×2 and 2×3 process grids.
func DistBench(o Options) (*DistBenchReport, error) {
	o = o.withDefaults()
	const (
		n   = 1600
		nb  = 128
		tol = 1e-7
	)
	truth := cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5}
	syn, err := core.GenerateSynthetic(n, 0, truth, o.Seed)
	if err != nil {
		return nil, err
	}
	p := syn.Train
	cfg := core.Config{Mode: core.TLR, TileSize: nb, Accuracy: tol, CompressorName: "rsvd", Workers: o.Workers}
	shared, err := core.LogLikelihood(p, truth, cfg)
	if err != nil {
		return nil, err
	}
	comp, err := tlr.CompressorByName(cfg.CompressorName)
	if err != nil {
		return nil, err
	}
	k := cov.NewKernel(truth)
	nugget := 1e-9 * truth.Variance
	rm := cluster.CalibrateRankModel(tol, truth, 1024, nb)

	rep := &DistBenchReport{N: n, NB: nb, Tol: tol, Compressor: cfg.CompressorName, SharedLogLik: shared.Value}
	for _, g := range []mpi.Grid{{P: 1, Q: 1}, {P: 2, Q: 2}, {P: 2, Q: 3}} {
		size := g.P * g.Q
		world := mpi.NewWorld(size)
		phase := make([]mpi.CommStats, size)
		var logLik float64
		start := time.Now()
		errs := world.Run(func(c *mpi.Comm) error {
			rank := c.Rank()
			d := mpi.NewDistTLR(rank, g, p.Points, p.Metric, nb, tol, comp)
			d.Generate(k, nugget)
			pre := c.Stats()
			if err := d.Cholesky(c); err != nil {
				return err
			}
			phase[rank] = c.Stats().Sub(pre)
			ld, err := d.LogDet(c)
			if err != nil {
				return err
			}
			y := append([]float64(nil), p.Z...)
			if err := d.ForwardSolve(c, y); err != nil {
				return err
			}
			part := 0.0
			for i := 0; i < d.MT; i++ {
				if g.Owner(i, i) == rank {
					yi := y[i*nb : i*nb+d.TileDim(i)]
					part += la.Dot(yi, yi)
				}
			}
			quad, err := c.AllreduceSum(1, part)
			if err != nil {
				return err
			}
			if rank == 0 {
				logLik = -0.5*float64(n)*math.Log(2*math.Pi) - 0.5*ld - 0.5*quad
			}
			return nil
		})
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("exprt: distributed factorization on %dx%d: %w", g.P, g.Q, err)
			}
		}
		res := DistGridResult{
			P: g.P, Q: g.Q, Ranks: size,
			LogLik:     logLik,
			RelErr:     math.Abs(logLik-shared.Value) / math.Abs(shared.Value),
			FactorMS:   float64(time.Since(start).Microseconds()) / 1000,
			WithinTwoX: true,
		}
		analytic := cluster.DistCholeskyComm(g, n, nb, rm, false)
		for r := 0; r < size; r++ {
			row := DistRankRow{
				Rank:          r,
				SentBytes:     phase[r].BytesSent,
				RecvBytes:     phase[r].BytesRecv,
				MsgsSent:      phase[r].MsgsSent,
				AnalyticBytes: analytic[r],
			}
			switch {
			case analytic[r] == 0 && row.SentBytes == 0:
				row.Ratio = 1
			case analytic[r] == 0:
				row.Ratio = math.Inf(1)
			default:
				row.Ratio = float64(row.SentBytes) / analytic[r]
			}
			if row.Ratio > 2 || row.Ratio < 0.5 {
				res.WithinTwoX = false
			}
			res.PerRank = append(res.PerRank, row)
		}
		rep.Grids = append(rep.Grids, res)
	}
	return rep, nil
}

// WriteDistBench runs DistBench and writes the JSON report to path, echoing
// a summary to o.Out.
func WriteDistBench(path string, o Options) error {
	o = o.withDefaults()
	rep, err := DistBench(o)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "dist bench n=%d nb=%d tol=%g %s  shared loglik %.6f -> %s\n",
		rep.N, rep.NB, rep.Tol, rep.Compressor, rep.SharedLogLik, path)
	for _, g := range rep.Grids {
		var sent int64
		for _, r := range g.PerRank {
			sent += r.SentBytes
		}
		fmt.Fprintf(o.Out, "  %dx%d (%d ranks)  loglik %.6f  rel err %.2e  factor %8.1fms  sent %8.1fKB  comm model within 2x: %v\n",
			g.P, g.Q, g.Ranks, g.LogLik, g.RelErr, g.FactorMS, float64(sent)/1024, g.WithinTwoX)
	}
	return nil
}
