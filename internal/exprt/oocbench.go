package exprt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	goruntime "runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/tlr"
)

// OOCBenchReport is the machine-readable proof of the out-of-core execution
// layer (`paperbench -ooc`), written as BENCH_ooc.json. It establishes three
// facts:
//
//  1. a real n≥100k TLR likelihood evaluation completes under a MemBudget
//     several times smaller than the matrix the unbounded run must hold
//     resident, with bitwise-identical results;
//  2. a fit interrupted mid-run (a truncated checkpoint log — exactly what a
//     killed process leaves behind, since flushes are atomic prefix
//     snapshots) resumes to bitwise-identical theta, likelihood, and
//     predictions;
//  3. the cluster simulator replays the paper's 2.4M-point Mississippi
//     geometry on Shaheen nodes, showing where dense runs out of memory
//     (the paper's "missing points") while TLR fits.
type OOCBenchReport struct {
	N          int     `json:"n"`
	NB         int     `json:"nb"`
	Tol        float64 `json:"tol"`
	Nugget     float64 `json:"nugget"`
	Compressor string  `json:"compressor"`
	NumCPU     int     `json:"num_cpu"`
	Workers    int     `json:"workers"`

	// MemBudget is the bounded run's resident-tile ceiling; ShrinkFactor is
	// matrix_bytes / mem_budget — how many times smaller than the unbounded
	// working set the bounded run kept its residency.
	MemBudget    int64   `json:"mem_budget_bytes"`
	ShrinkFactor float64 `json:"shrink_factor"`

	Bounded   OOCRunStat `json:"bounded"`
	Unbounded OOCRunStat `json:"unbounded"`

	// BitwiseIdentical: the bounded LikResult (value, logdet, quadratic
	// form, rank stats) equals the unbounded one to the last bit.
	BitwiseIdentical bool `json:"bitwise_identical"`
	// UnderBudget: the bounded run's resident high-water never exceeded
	// MemBudget plus the pinned in-flight working set (the soft-budget
	// slack, tlr.MinMemBudget).
	UnderBudget bool `json:"under_budget"`

	Resume  OOCResumeResult `json:"fit_resume"`
	Cluster []OOCClusterRow `json:"cluster_replay_2p4m"`

	Pass bool `json:"pass"`
}

// OOCRunStat is one likelihood evaluation's footprint.
type OOCRunStat struct {
	EvalMS      float64 `json:"eval_ms"`
	LogLik      float64 `json:"loglik"`
	LogDet      float64 `json:"logdet"`
	MatrixBytes int64   `json:"matrix_bytes"`
	HighWater   int64   `json:"highwater_bytes"` // 0 for the unbounded run
	SpillBytes  int64   `json:"spill_bytes"`     // 0 for the unbounded run
	VmHWMMB     float64 `json:"vm_hwm_mb"`       // process peak RSS after the run (monotone)
}

// OOCResumeResult is the interrupted-fit equivalence check: truncated
// checkpointed fit, then resume, versus one uninterrupted run.
type OOCResumeResult struct {
	N              int  `json:"n"`
	MaxEvals       int  `json:"max_evals"`
	TruncEvals     int  `json:"truncated_at_evals"`
	RefEvals       int  `json:"reference_evals"`
	ThetaIdentical bool `json:"theta_identical"`
	LogLikSame     bool `json:"loglik_identical"`
	PredIdentical  bool `json:"predictions_identical"`
	Identical      bool `json:"identical"`
}

// OOCClusterRow is one simulated 2.4M-point Cholesky on Shaheen nodes.
type OOCClusterRow struct {
	Nodes     int     `json:"nodes"`
	Variant   string  `json:"variant"`
	Seconds   float64 `json:"seconds"`
	OOM       bool    `json:"oom"`
	MaxNodeGB float64 `json:"max_node_gb"`
}

// vmHWMMB reads the process peak resident set from /proc/self/status
// (Linux); 0 elsewhere. VmHWM is monotone, which is why the bounded run
// executes first — its reading is taken before the unbounded matrix ever
// exists.
func vmHWMMB() float64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

// oocProblem builds the n-point synthetic dataset the bounded and unbounded
// evaluations share. The observations are white noise — the benchmark proves
// memory behavior and bitwise agreement, not statistical recovery — so no
// O(n³) GP sampling is needed at this size.
func oocProblem(o Options, n int) (*core.Problem, error) {
	r := rng.New(o.Seed)
	pts := geom.GeneratePerturbedGrid(n, r)
	z := make([]float64, n)
	for i := range z {
		z[i] = r.Norm()
	}
	return core.NewProblem(pts, z, geom.Euclidean)
}

// OOCBench runs the out-of-core proof at n=100k plus the fit-resume and
// cluster-replay checks.
func OOCBench(o Options) (*OOCBenchReport, error) {
	o = o.withDefaults()
	const (
		n, nb = 100_000, 2000
		tol   = 1e-5
		// At n=100k the unit-square Matern spectrum's floor drops below the
		// 1e-5 truncation error and the late Cholesky panels go indefinite;
		// a measurement-error nugget keeps lambda_min ~1e-2, three orders
		// above the compression perturbation. Off-diagonal ranks (and so
		// speed and storage) are unchanged -- the nugget only shifts
		// diagonal tiles.
		nugget = 1e-2
	)
	rep := &OOCBenchReport{
		N: n, NB: nb, Tol: tol, Nugget: nugget,
		Compressor: "aca",
		NumCPU:     goruntime.NumCPU(),
		Workers:    o.Workers,
	}
	base := core.Config{
		Mode:           core.TLR,
		TileSize:       nb,
		Accuracy:       tol,
		CompressorName: "aca",
		Nugget:         nugget,
		Workers:        o.Workers,
	}
	th := maternRef()

	p, err := oocProblem(o, n)
	if err != nil {
		return nil, err
	}

	// The budget is set from the only footprint known a priori — the dense
	// diagonal (MT·nb²·8 bytes, a strict lower bound on the unbounded
	// resident set) — at a quarter of it, floored at the pinned working set.
	mt := (n + nb - 1) / nb
	budget := int64(mt) * int64(nb) * int64(nb) * 8 / 4
	if floor := tlr.MinMemBudget(nb, o.Workers); budget < floor {
		budget = floor
	}
	rep.MemBudget = budget

	spill, err := os.MkdirTemp("", "oocbench-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(spill)

	// Bounded run first: VmHWM is a process-lifetime peak, so this reading
	// must be taken before the unbounded matrix is ever resident.
	bounded := base
	bounded.MemBudget = budget
	bounded.SpillDir = spill
	bs, err := core.NewSession(p, bounded)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	blik, err := bs.LogLikelihood(th)
	if err != nil {
		return nil, fmt.Errorf("bounded evaluation: %w", err)
	}
	rep.Bounded = OOCRunStat{
		EvalMS:      ms(time.Since(t0).Seconds()),
		LogLik:      blik.Value,
		LogDet:      blik.LogDet,
		MatrixBytes: blik.Bytes,
		VmHWMMB:     vmHWMMB(),
	}
	rep.Bounded.HighWater, rep.Bounded.SpillBytes, _ = bs.StoreStats()
	if err := bs.Close(); err != nil {
		return nil, err
	}
	rep.ShrinkFactor = float64(blik.Bytes) / float64(budget)
	rep.UnderBudget = rep.Bounded.HighWater <= budget+tlr.MinMemBudget(nb, o.Workers)
	fmt.Fprintf(o.Out, "bounded   n=%d nb=%d budget=%dMB: eval %.1fs, highwater %dMB, spilled %dMB, rss %.0fMB\n",
		n, nb, budget>>20, time.Since(t0).Seconds(), rep.Bounded.HighWater>>20, rep.Bounded.SpillBytes>>20, rep.Bounded.VmHWMMB)

	// Unbounded reference: the whole matrix resident.
	us, err := core.NewSession(p, base)
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	ulik, err := us.LogLikelihood(th)
	if err != nil {
		return nil, fmt.Errorf("unbounded evaluation: %w", err)
	}
	rep.Unbounded = OOCRunStat{
		EvalMS:      ms(time.Since(t0).Seconds()),
		LogLik:      ulik.Value,
		LogDet:      ulik.LogDet,
		MatrixBytes: ulik.Bytes,
		VmHWMMB:     vmHWMMB(),
	}
	rep.BitwiseIdentical = blik == ulik
	fmt.Fprintf(o.Out, "unbounded n=%d nb=%d:            eval %.1fs, matrix %dMB, rss %.0fMB, bitwise=%v (shrink %.1fx)\n",
		n, nb, time.Since(t0).Seconds(), ulik.Bytes>>20, rep.Unbounded.VmHWMMB, rep.BitwiseIdentical, rep.ShrinkFactor)

	res, err := oocFitResume(o)
	if err != nil {
		return nil, err
	}
	rep.Resume = *res
	fmt.Fprintf(o.Out, "fit resume n=%d: truncated at %d/%d evals, identical=%v\n",
		res.N, res.TruncEvals, res.RefEvals, res.Identical)

	rep.Cluster = oocClusterReplay()
	for _, row := range rep.Cluster {
		fmt.Fprintf(o.Out, "cluster n=2.4M %-9s %4d nodes: %8.1fs  oom=%-5v  max-node %.0fGB\n",
			row.Variant, row.Nodes, row.Seconds, row.OOM, row.MaxNodeGB)
	}

	rep.Pass = rep.BitwiseIdentical && rep.UnderBudget && rep.ShrinkFactor >= 3 &&
		rep.Bounded.SpillBytes > 0 && rep.Resume.Identical
	return rep, nil
}

// oocFitResume models the kill: a checkpointed fit cut off after TruncEvals
// evaluations leaves exactly the file a SIGKILLed process would (flushes are
// atomic prefix snapshots), and the resumed fit must land bitwise on the
// uninterrupted run — theta, likelihood, and the predictions served from it.
// Both runs execute under a MemBudget so the restart path is exercised
// against the out-of-core store too.
func oocFitResume(o Options) (*OOCResumeResult, error) {
	const (
		n, nb    = 1000, 128
		maxEvals = 40
		trunc    = 12
	)
	p, err := oocProblem(o, n)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Mode:           core.TLR,
		TileSize:       nb,
		Accuracy:       1e-7,
		CompressorName: "rsvd",
		Workers:        o.Workers,
		MemBudget:      tlr.MinMemBudget(nb, o.Workers),
	}
	opts := core.FitOptions{MaxEvals: maxEvals, FixSmoothness: true}
	newPts := geom.GeneratePerturbedGrid(64, rng.New(o.Seed+1))

	run := func(fo core.FitOptions) (core.FitResult, []float64, error) {
		s, err := core.NewSession(p, cfg)
		if err != nil {
			return core.FitResult{}, nil, err
		}
		defer s.Close()
		fit, err := s.Fit(fo)
		if err != nil {
			return core.FitResult{}, nil, err
		}
		pred, err := s.Predict(newPts, fit.Theta)
		return fit, pred, err
	}

	ref, refPred, err := run(opts)
	if err != nil {
		return nil, fmt.Errorf("uninterrupted fit: %w", err)
	}

	dir, err := os.MkdirTemp("", "oocfit-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ck := opts
	ck.Checkpoint = filepath.Join(dir, "fit.ckpt")
	ck.CheckpointEvery = 1

	interrupted := ck
	interrupted.MaxEvals = trunc
	if _, _, err := run(interrupted); err != nil {
		return nil, fmt.Errorf("interrupted fit: %w", err)
	}
	got, gotPred, err := run(ck) // resumes from the truncated log
	if err != nil {
		return nil, fmt.Errorf("resumed fit: %w", err)
	}

	res := &OOCResumeResult{
		N: n, MaxEvals: maxEvals, TruncEvals: trunc, RefEvals: ref.Evals,
		ThetaIdentical: got.Theta == ref.Theta,
		LogLikSame:     got.LogL == ref.LogL,
		PredIdentical:  len(gotPred) == len(refPred),
	}
	for i := range refPred {
		if gotPred[i] != refPred[i] {
			res.PredIdentical = false
			break
		}
	}
	res.Identical = res.ThetaIdentical && res.LogLikSame && res.PredIdentical
	return res, nil
}

// oocClusterReplay simulates the paper's 2.4M-point Mississippi-basin
// Cholesky on Shaheen XC40 nodes: dense tiles against TLR at the paper's
// tile sizes, at node counts bracketing the memory wall.
func oocClusterReplay() []OOCClusterRow {
	const n = 2_400_000
	rm := cluster.CalibrateRankModel(1e-7, maternRef(), 1024, 128)
	var rows []OOCClusterRow
	for _, nodes := range []int{4, 16, 256} {
		m := cluster.NewMachine(cluster.ShaheenNode, nodes)
		den := cluster.SimulateCholesky(m, cluster.Workload{N: n, NB: 560, Variant: cluster.Dense})
		rows = append(rows, OOCClusterRow{
			Nodes: nodes, Variant: "full-tile",
			Seconds: den.Seconds, OOM: den.OOM,
			MaxNodeGB: float64(den.MaxNodeBytes) / (1 << 30),
		})
		tl := cluster.SimulateCholesky(m, cluster.Workload{
			N: n, NB: 1900, Variant: cluster.TLRVariant, Accuracy: 1e-7, Ranks: rm,
		})
		rows = append(rows, OOCClusterRow{
			Nodes: nodes, Variant: "tlr",
			Seconds: tl.Seconds, OOM: tl.OOM,
			MaxNodeGB: float64(tl.MaxNodeBytes) / (1 << 30),
		})
	}
	return rows
}

// WriteOOCBench runs OOCBench and writes the JSON report to path, echoing a
// short summary to o.Out.
func WriteOOCBench(path string, o Options) error {
	o = o.withDefaults()
	rep, err := OOCBench(o)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "ooc bench n=%d nb=%d budget=%dMB shrink=%.1fx bitwise=%v under_budget=%v resume=%v pass=%v -> %s\n",
		rep.N, rep.NB, rep.MemBudget>>20, rep.ShrinkFactor, rep.BitwiseIdentical,
		rep.UnderBudget, rep.Resume.Identical, rep.Pass, path)
	return nil
}
