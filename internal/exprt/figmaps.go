package exprt

import (
	"fmt"

	"repro/internal/cov"
	"repro/internal/datasets"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/tlr"
)

// Fig1 reproduces the paper's Figure 1 concept: the TLR representation of a
// covariance matrix. It builds a real Matérn covariance in TLR format and
// prints the per-tile rank map — dense diagonal, ranks decaying away from
// the diagonal.
func Fig1(o Options) error {
	o = o.withDefaults()
	n, nb := 1024, 128
	acc := 1e-7
	r := rng.New(o.Seed)
	pts := geom.GeneratePerturbedGrid(n, r)
	pts = geom.Sorted(geom.Morton, pts)
	k := cov.NewKernel(maternRef())
	m := tlr.FromKernel(k, pts, geom.Euclidean, n, nb, acc, tlr.SVDCompressor{}, 1e-9, o.Workers)

	fmt.Fprintf(o.Out, "TLR representation of Σ(θ): n=%d, nb=%d, accuracy %.0e\n", n, nb, acc)
	fmt.Fprintf(o.Out, "per-tile ranks (D = dense diagonal tile of %d):\n\n", nb)
	for i := 0; i < m.MT; i++ {
		fmt.Fprint(o.Out, "  ")
		for j := 0; j <= i; j++ {
			if j == i {
				fmt.Fprintf(o.Out, "%4s", "D")
			} else {
				fmt.Fprintf(o.Out, "%4d", m.Off(i, j).Rank())
			}
		}
		fmt.Fprintln(o.Out)
	}
	maxK, meanK := m.RankStats()
	fmt.Fprintf(o.Out, "\nmax rank %d, mean rank %.1f — TLR storage %.2f MB vs dense %.2f MB (%.1fx compression)\n",
		maxK, meanK, float64(m.Bytes())/1e6, float64(m.DenseBytes())/1e6,
		float64(m.DenseBytes())/float64(m.Bytes()))
	return nil
}

// Fig8 renders the two simulated real datasets as ASCII field maps with
// their regional layout (the paper's Figure 8 shows the soil-moisture and
// wind-speed maps with regions R1…R8 / R1…R4).
func Fig8(o Options) error {
	o = o.withDefaults()
	soil, err := datasets.SoilMoisture(regionPoints(o.Scale), o.Seed)
	if err != nil {
		return err
	}
	wind, err := datasets.WindSpeed(regionPoints(o.Scale), o.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(o.Out, "(a) simulated soil-moisture field, 8 regions (4x2 layout)")
	renderField(o, soil, 72, 20)
	fmt.Fprintln(o.Out, "\n(b) simulated wind-speed field, 4 regions (2x2 layout over the Arabian Peninsula)")
	renderField(o, wind, 48, 20)
	fmt.Fprintln(o.Out, "\nshading: field value quantiles (low '.' to high '#'); each region is an")
	fmt.Fprintln(o.Out, "independent Gaussian random field with the paper's Table I/II estimates as truth")
	return nil
}

func renderField(o Options, ds *datasets.Dataset, w, h int) {
	var minX, maxX, minY, maxY float64
	var all []float64
	first := true
	for _, reg := range ds.Regions {
		for i, p := range reg.Points {
			if first {
				minX, maxX, minY, maxY = p.X, p.X, p.Y, p.Y
				first = false
			}
			if p.X < minX {
				minX = p.X
			}
			if p.X > maxX {
				maxX = p.X
			}
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
			all = append(all, reg.Z[i])
		}
	}
	lo, hi := all[0], all[0]
	for _, v := range all {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	shades := []byte(" .:-=+*#")
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = make([]byte, w)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	for _, reg := range ds.Regions {
		for i, p := range reg.Points {
			x := int((p.X - minX) / (maxX - minX + 1e-12) * float64(w-1))
			y := int((p.Y - minY) / (maxY - minY + 1e-12) * float64(h-1))
			level := int((reg.Z[i] - lo) / (hi - lo + 1e-12) * float64(len(shades)-1))
			grid[h-1-y][x] = shades[level]
		}
	}
	for _, row := range grid {
		fmt.Fprintf(o.Out, "  |%s|\n", row)
	}
	names := ""
	for _, reg := range ds.Regions {
		names += reg.Name + " "
	}
	fmt.Fprintf(o.Out, "  regions: %s(θ truths from the paper's full-tile estimates)\n", names)
}
