package exprt

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/serve"
)

// ServeBench is the closed-loop load test of the kriging service
// (`paperbench -serve`, written as BENCH_serve.json): it boots an in-process
// exaserve instance on a real TCP port, ingests one fixed-θ model, then fires
// a storm of concurrent predict requests through the Go client over a bounded
// connection pool. Reported: exact client-side p50/p99 latency, request and
// prediction throughput, and the two correctness anchors of the serving hot
// path — every served mean/variance equals the direct Session computation bit
// for bit, and the whole storm runs zero factorizations (the ingest-time
// factorization is the only one; obs counters are the evidence).

// ServeLatency summarizes exact client-side request latencies.
type ServeLatency struct {
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// ServeAcceptance is the pass/fail summary.
type ServeAcceptance struct {
	// AllServed: every request ended in 200 or a clean 503 shed, nothing else.
	AllServed bool `json:"all_served"`
	// ExactMatch: zero served values differed from the direct computation.
	ExactMatch bool `json:"exact_match"`
	// OneFactorization: the storm ran on the ingest-time factorization alone.
	OneFactorization bool `json:"one_factorization"`
	Pass             bool `json:"pass"`
}

// ServeBenchReport is the JSON payload of BENCH_serve.json.
type ServeBenchReport struct {
	N           int `json:"n"`           // observations in the served model
	Concurrency int `json:"concurrency"` // concurrent client goroutines
	Requests    int `json:"requests"`    // total predict requests issued
	Batch       int `json:"batch"`       // points per request
	// VarianceEvery: every k-th request asks for conditional variance too.
	VarianceEvery int `json:"variance_every"`
	Conns         int `json:"conns"` // client connection-pool size

	OK     int64 `json:"ok"`
	Shed   int64 `json:"shed"`   // 503 load-shed replies (clean, retryable)
	Failed int64 `json:"failed"` // anything else — must be zero

	ElapsedS          float64      `json:"elapsed_s"`
	RequestsPerSec    float64      `json:"requests_per_sec"`
	PredictionsPerSec float64      `json:"predictions_per_sec"`
	Latency           ServeLatency `json:"latency"`

	// Server-side solve-time histogram for the predict endpoint over the
	// storm only (snapshot diff; power-of-two buckets, so ≤2× quantile error).
	ServerPredict ServeLatency `json:"server_predict"`

	// Evidence counters, diffed across the storm.
	FactorRunsStorm int64 `json:"factor_runs_storm"`
	CacheHitsStorm  int64 `json:"cache_hits_storm"`
	FactorRunsTotal int64 `json:"factor_runs_total"` // ingest + storm
	Mismatches      int64 `json:"mismatches"`

	Acceptance ServeAcceptance `json:"acceptance"`
}

// serveBenchSizes picks the load shape: ≥10k concurrent in-flight requests,
// one per goroutine, against a pool-size-bounded transport.
const (
	serveBenchN       = 1000
	serveBenchConc    = 10000
	serveBenchBatch   = 4
	serveBenchPool    = 512 // candidate query points
	serveBenchVarMod  = 8   // every 8th request exercises the variance path
	serveBenchConns   = 256 // client TCP connections (fd budget friendly)
	serveBenchTimeout = 10 * time.Minute
)

// ServeBench runs the load test and returns the report.
func ServeBench(o Options) (*ServeBenchReport, error) {
	o = o.withDefaults()
	th := maternRef()

	// Dataset and the direct-computation oracle.
	r := rng.New(o.Seed)
	pts := geom.GeneratePerturbedGrid(serveBenchN, r)
	k := cov.NewKernel(th)
	z, err := cov.SampleField(k, pts, geom.Euclidean, r.Split(1))
	if err != nil {
		return nil, err
	}
	queries := geom.GeneratePerturbedGrid(serveBenchPool, rng.New(o.Seed+3))

	problem, err := core.NewProblem(pts, z, geom.Euclidean)
	if err != nil {
		return nil, err
	}
	oracle, err := core.NewSession(problem, core.Config{Workers: o.Workers})
	if err != nil {
		return nil, err
	}
	wantMean, err := oracle.Predict(queries, th)
	if err != nil {
		return nil, err
	}
	wantVar, err := oracle.PredictWithVariance(queries, th)
	if err != nil {
		return nil, err
	}

	// Boot the service on a loopback port.
	srv := serve.New(serve.Config{MaxQueue: 2 * serveBenchConns})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		srv.Close()
	}()

	tr := &http.Transport{
		MaxConnsPerHost:     serveBenchConns,
		MaxIdleConnsPerHost: serveBenchConns,
	}
	c := client.NewWithHTTPClient("http://"+ln.Addr().String(), &http.Client{Transport: tr})
	ctx, cancel := context.WithTimeout(context.Background(), serveBenchTimeout)
	defer cancel()

	// Ingest with fixed θ: the only factorization of the whole benchmark.
	wirePts := make([]client.Point, len(pts))
	for i, p := range pts {
		wirePts[i] = client.Point{X: p.X, Y: p.Y}
	}
	theta := client.Theta{Variance: th.Variance, Range: th.Range, Smoothness: th.Smoothness}
	if _, err := c.CreateModel(ctx, client.CreateModelRequest{
		Name: "bench", Points: wirePts, Z: z, Theta: &theta,
		Config: client.ModelConfig{Workers: o.Workers},
	}); err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}

	wireQueries := make([]client.Point, len(queries))
	for i, p := range queries {
		wireQueries[i] = client.Point{X: p.X, Y: p.Y}
	}

	factorRuns := obs.GetCounter("core.factor.runs")
	cacheHits := obs.GetCounter("core.predict.cache.hit")
	runs0, hits0 := factorRuns.Value(), cacheHits.Value()
	pre := obs.Default().Snapshot()

	// The storm: serveBenchConc goroutines, one request each, all in flight
	// together (closed loop — a goroutine holds its request open until the
	// reply lands, so concurrency == outstanding requests).
	var ok, shed, failed, mismatches atomic.Int64
	latencies := make([]time.Duration, serveBenchConc)
	var wg sync.WaitGroup
	t0 := time.Now()
	for g := 0; g < serveBenchConc; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lo := (g * serveBenchBatch) % (serveBenchPool - serveBenchBatch)
			q := wireQueries[lo : lo+serveBenchBatch]
			withVar := g%serveBenchVarMod == 0
			start := time.Now()
			resp, err := c.Predict(ctx, "bench", q, withVar)
			latencies[g] = time.Since(start)
			if err != nil {
				var apiErr *client.APIError
				if errors.As(err, &apiErr) && apiErr.IsOverload() {
					shed.Add(1)
				} else {
					failed.Add(1)
				}
				return
			}
			ok.Add(1)
			// Compare like for like: the variance path computes its mean as
			// W[:,i]ᵀ·(L⁻¹Z) and the plain path as Σ₁₂·(Σ₂₂⁻¹Z) — equal in
			// exact arithmetic, distinct floating-point formulas — so each is
			// checked bitwise against its own direct-Session oracle.
			for i := 0; i < serveBenchBatch; i++ {
				if withVar {
					if resp.Mean[i] != wantVar.Mean[lo+i] || resp.Variance[i] != wantVar.Variance[lo+i] {
						mismatches.Add(1)
					}
				} else if resp.Mean[i] != wantMean[lo+i] {
					mismatches.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	post := obs.Default().Snapshot().Sub(pre)

	rep := &ServeBenchReport{
		N: serveBenchN, Concurrency: serveBenchConc, Requests: serveBenchConc,
		Batch: serveBenchBatch, VarianceEvery: serveBenchVarMod, Conns: serveBenchConns,
		OK: ok.Load(), Shed: shed.Load(), Failed: failed.Load(),
		ElapsedS:          elapsed.Seconds(),
		RequestsPerSec:    float64(ok.Load()) / elapsed.Seconds(),
		PredictionsPerSec: float64(ok.Load()*serveBenchBatch) / elapsed.Seconds(),
		Latency:           exactLatency(latencies),
		FactorRunsStorm:   factorRuns.Value() - runs0,
		CacheHitsStorm:    cacheHits.Value() - hits0,
		FactorRunsTotal:   factorRuns.Value(),
		Mismatches:        mismatches.Load(),
	}
	if h, okh := post.Histograms["serve.http.predict.ns"]; okh {
		rep.ServerPredict = ServeLatency{
			P50MS:  float64(h.Quantile(0.50)) / 1e6,
			P90MS:  float64(h.Quantile(0.90)) / 1e6,
			P99MS:  float64(h.Quantile(0.99)) / 1e6,
			MeanMS: h.Mean() / 1e6,
			MaxMS:  float64(h.Max) / 1e6,
		}
	}
	rep.Acceptance = ServeAcceptance{
		AllServed:        rep.Failed == 0 && rep.OK+rep.Shed == int64(rep.Requests) && rep.OK > 0,
		ExactMatch:       rep.Mismatches == 0,
		OneFactorization: rep.FactorRunsStorm == 0,
	}
	rep.Acceptance.Pass = rep.Acceptance.AllServed && rep.Acceptance.ExactMatch && rep.Acceptance.OneFactorization
	return rep, nil
}

// exactLatency computes exact (unbucketed) quantiles from per-request
// client-side latencies.
func exactLatency(ds []time.Duration) ServeLatency {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i]) / 1e6
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	out := ServeLatency{P50MS: at(0.50), P90MS: at(0.90), P99MS: at(0.99)}
	if n := len(sorted); n > 0 {
		out.MeanMS = float64(sum) / float64(n) / 1e6
		out.MaxMS = float64(sorted[n-1]) / 1e6
	}
	return out
}

// WriteServeBench runs ServeBench and writes the JSON report to path,
// echoing a summary to o.Out.
func WriteServeBench(path string, o Options) error {
	o = o.withDefaults()
	rep, err := ServeBench(o)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "serve bench n=%d concurrency=%d batch=%d conns=%d -> %s\n",
		rep.N, rep.Concurrency, rep.Batch, rep.Conns, path)
	fmt.Fprintf(o.Out, "  %d ok, %d shed, %d failed in %.2fs  (%.0f req/s, %.0f predictions/s)\n",
		rep.OK, rep.Shed, rep.Failed, rep.ElapsedS, rep.RequestsPerSec, rep.PredictionsPerSec)
	fmt.Fprintf(o.Out, "  latency p50 %.2fms p90 %.2fms p99 %.2fms max %.2fms (client, exact)\n",
		rep.Latency.P50MS, rep.Latency.P90MS, rep.Latency.P99MS, rep.Latency.MaxMS)
	fmt.Fprintf(o.Out, "  server predict p50 %.2fms p99 %.2fms (histogram)\n",
		rep.ServerPredict.P50MS, rep.ServerPredict.P99MS)
	fmt.Fprintf(o.Out, "  acceptance: all served %v, exact match %v (%d mismatches), one factorization %v (storm ran %d) -> pass=%v\n",
		rep.Acceptance.AllServed, rep.Acceptance.ExactMatch, rep.Mismatches,
		rep.Acceptance.OneFactorization, rep.FactorRunsStorm, rep.Acceptance.Pass)
	return nil
}
