package exprt

import (
	"encoding/json"
	"fmt"
	"os"
	goruntime "runtime"
	"time"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/rng"
	"repro/internal/tile"
)

// KernelBenchReport is the machine-readable snapshot of the compute-layer
// micro-benchmarks (`paperbench -kernels`), written as BENCH_kernels.json so
// perf regressions across commits diff as data rather than log scrapes.
type KernelBenchReport struct {
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	FMAKernel bool   `json:"fma_kernel"`

	Gemm     []GemmBenchRow     `json:"gemm"`
	Assembly []AssemblyBenchRow `json:"cov_assembly"`
	Cholesky []CholBenchRow     `json:"cholesky"`
}

// GemmBenchRow compares the packed kernel against the retained naive
// reference at one square size (single-threaded).
type GemmBenchRow struct {
	N        int     `json:"n"`
	NaiveMS  float64 `json:"naive_ms"`
	PackedMS float64 `json:"packed_ms"`
	Speedup  float64 `json:"speedup"`
	GFlops   float64 `json:"packed_gflops"`
}

// AssemblyBenchRow compares sequential vs parallel covariance assembly.
type AssemblyBenchRow struct {
	N          int     `json:"n"`
	Workers    int     `json:"workers"`
	SeqMS      float64 `json:"sequential_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
}

// CholBenchRow times one Cholesky factorization per mode/worker setting.
type CholBenchRow struct {
	Mode    string  `json:"mode"`
	N       int     `json:"n"`
	Workers int     `json:"workers"`
	MS      float64 `json:"ms"`
}

// benchMinTime is how long each measurement loop runs; the minimum rep is
// reported to suppress scheduler noise.
const benchMinTime = 200 * time.Millisecond

func minTimeOf(f func()) float64 {
	f() // warm-up (pools, page faults)
	best := -1.0
	var total time.Duration
	for reps := 0; total < benchMinTime || reps < 3; reps++ {
		t0 := time.Now()
		f()
		d := time.Since(t0)
		total += d
		if s := d.Seconds(); best < 0 || s < best {
			best = s
		}
	}
	return best
}

func ms(s float64) float64 { return s * 1e3 }

// KernelBench runs the compute-layer micro-benchmarks and returns the report.
func KernelBench(o Options) *KernelBenchReport {
	o = o.withDefaults()
	rep := &KernelBenchReport{
		GOARCH:    goruntime.GOARCH,
		NumCPU:    goruntime.NumCPU(),
		FMAKernel: la.FMAKernelEnabled(),
	}
	r := rng.New(o.Seed)

	fill := func(m *la.Mat) {
		for i := range m.Data {
			m.Data[i] = r.Float64() - 0.5
		}
	}

	for _, n := range []int{128, 256, 512} {
		a, b := la.NewMat(n, n), la.NewMat(n, n)
		c := la.NewMat(n, n)
		fill(a)
		fill(b)
		naive := minTimeOf(func() { la.RefGemm(1, a, la.NoTrans, b, la.NoTrans, 0, c) })
		packed := minTimeOf(func() { la.Gemm(1, a, la.NoTrans, b, la.NoTrans, 0, c) })
		flops := 2 * float64(n) * float64(n) * float64(n)
		rep.Gemm = append(rep.Gemm, GemmBenchRow{
			N: n, NaiveMS: ms(naive), PackedMS: ms(packed),
			Speedup: naive / packed, GFlops: flops / packed / 1e9,
		})
	}

	th := maternRef()
	k := cov.NewKernel(th)
	for _, n := range []int{1024, 2048} {
		pts := geom.GeneratePerturbedGrid(n, rng.New(o.Seed))
		sigma := la.NewMat(len(pts), len(pts))
		seq := minTimeOf(func() { k.Matrix(sigma, pts, geom.Euclidean) })
		par := minTimeOf(func() { k.MatrixParallel(sigma, pts, geom.Euclidean, o.Workers) })
		rep.Assembly = append(rep.Assembly, AssemblyBenchRow{
			N: len(pts), Workers: o.Workers,
			SeqMS: ms(seq), ParallelMS: ms(par), Speedup: seq / par,
		})
	}

	{
		const n, nb = 1024, 128
		pts := geom.GeneratePerturbedGrid(n, rng.New(o.Seed))
		sigma := la.NewMat(len(pts), len(pts))
		k.Matrix(sigma, pts, geom.Euclidean)
		cov.AddNugget(sigma, 1e-9)
		work := la.NewMat(len(pts), len(pts))
		dense := minTimeOf(func() {
			copy(work.Data, sigma.Data)
			if err := la.Potrf(work); err != nil {
				panic(err)
			}
		})
		rep.Cholesky = append(rep.Cholesky, CholBenchRow{Mode: "full-block", N: len(pts), Workers: 1, MS: ms(dense)})
		for _, w := range []int{1, o.Workers} {
			w := w
			m := tile.NewSym(len(pts), nb)
			spec := &tile.GenSpec{K: k, Pts: pts, Metric: geom.Euclidean, Nugget: 1e-9}
			t := minTimeOf(func() {
				if err := tile.GenCholesky(m, spec, w); err != nil {
					panic(err)
				}
			})
			rep.Cholesky = append(rep.Cholesky, CholBenchRow{Mode: "full-tile", N: len(pts), Workers: w, MS: ms(t)})
			if w == o.Workers {
				break
			}
		}
	}
	return rep
}

// WriteKernelBench runs KernelBench and writes the JSON report to path,
// echoing a short summary to o.Out.
func WriteKernelBench(path string, o Options) error {
	o = o.withDefaults()
	rep := KernelBench(o)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "kernel bench (fma=%v, %d workers) -> %s\n", rep.FMAKernel, o.Workers, path)
	for _, g := range rep.Gemm {
		fmt.Fprintf(o.Out, "  gemm n=%-4d naive %8.2fms  packed %8.2fms  %.2fx  %.2f GF/s\n",
			g.N, g.NaiveMS, g.PackedMS, g.Speedup, g.GFlops)
	}
	for _, a := range rep.Assembly {
		fmt.Fprintf(o.Out, "  dcmg n=%-4d seq %10.2fms  par(%d) %8.2fms  %.2fx\n",
			a.N, a.SeqMS, a.Workers, a.ParallelMS, a.Speedup)
	}
	for _, c := range rep.Cholesky {
		fmt.Fprintf(o.Out, "  chol %-10s n=%-4d workers=%d  %8.2fms\n", c.Mode, c.N, c.Workers, c.MS)
	}
	return nil
}
