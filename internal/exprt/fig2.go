package exprt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/geom"
)

// Fig2 reproduces the paper's Figure 2: 400 points irregularly distributed
// in the unit square, 362 used for maximum likelihood estimation and 38 for
// prediction validation. It prints an ASCII rendering of the layout and the
// generation statistics.
func Fig2(o Options) error {
	o = o.withDefaults()
	const n, nTest = 400, 38
	syn, err := core.GenerateSynthetic(n, nTest, cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5}, o.Seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "generated %d irregular unit-square locations: %d for MLE (o), %d held out (x)\n",
		n, syn.Train.N(), len(syn.TestPoints))
	fmt.Fprintf(o.Out, "min pairwise distance (fit set): %.4f (perturbed grid guarantees separation)\n",
		geom.MinPairDistance(geom.Euclidean, syn.Train.Points))

	// ASCII scatter (32×32 cells).
	const w = 48
	const h = 24
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = make([]byte, w)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	put := func(pts []geom.Point, mark byte) {
		for _, p := range pts {
			x := int(p.X * float64(w-1))
			y := int(p.Y * float64(h-1))
			grid[h-1-y][x] = mark
		}
	}
	put(syn.Train.Points, 'o')
	put(syn.TestPoints, 'x')
	for _, row := range grid {
		fmt.Fprintf(o.Out, "  %s\n", row)
	}
	return nil
}
