// Package exprt is the experiment harness: one function per table/figure of
// the paper's evaluation (§VIII), each printing the same rows/series the
// paper reports. cmd/paperbench and the repository benchmarks drive it.
//
// Two scales are supported. ScaleSmall (the default) runs real computations
// at laptop size and the performance simulations with a coarse tile cap, so
// every experiment finishes in at most a few minutes. ScalePaper uses the
// paper's problem sizes for the simulated performance studies and larger
// (but still single-machine-feasible) sizes for the statistical studies.
package exprt

import (
	"fmt"
	"io"
	"sort"
)

// Scale selects experiment sizing.
type Scale int

// Experiment scales.
const (
	ScaleSmall Scale = iota
	ScalePaper
)

// Options configures a harness run.
type Options struct {
	Scale   Scale
	Out     io.Writer
	Workers int
	Seed    uint64
}

func (o Options) withDefaults() Options {
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Seed == 0 {
		o.Seed = 20180904 // CLUSTER 2018 conference date
	}
	return o
}

// Experiment is a named reproduction unit.
type Experiment struct {
	Name  string
	Title string
	Run   func(Options) error
}

// Experiments lists every table/figure reproduction in paper order.
var Experiments = []Experiment{
	{"fig1", "Fig. 1: TLR representation of a covariance matrix (rank map)", Fig1},
	{"fig2", "Fig. 2: irregular point layout, fit/validation split", Fig2},
	{"fig3", "Fig. 3: one TLR MLE iteration vs full accuracy, shared memory", Fig3},
	{"fig4", "Fig. 4: one TLR MLE iteration on Cray XC40 (256/1024 nodes)", Fig4},
	{"fig5", "Fig. 5: TLR prediction time on Cray XC40 (256 nodes)", Fig5},
	{"fig6", "Fig. 6: Monte-Carlo parameter-estimation boxplots", Fig6},
	{"fig7", "Fig. 7: prediction MSE boxplots on synthetic data", Fig7},
	{"fig8", "Fig. 8: simulated real-dataset field maps with regions", Fig8},
	{"table1", "Table I: Matérn estimates, soil-moisture regions", Table1},
	{"table2", "Table II: Matérn estimates, wind-speed regions", Table2},
	{"fig9", "Fig. 9: prediction MSE boxplots on real-data regions", Fig9},
	{"ablation", "Ablations: ordering, compressor, tile size, scheduling", Ablations},
	{"extensions", "Extensions: prediction variance, profiled likelihood, refinement", Extensions},
}

// ByName returns the named experiment.
func ByName(name string) (Experiment, error) {
	for _, e := range Experiments {
		if e.Name == name {
			return e, nil
		}
	}
	var names []string
	for _, e := range Experiments {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return Experiment{}, fmt.Errorf("exprt: unknown experiment %q (have %v)", name, names)
}

// RunAll executes every experiment in order.
func RunAll(o Options) error {
	o = o.withDefaults()
	for _, e := range Experiments {
		fmt.Fprintf(o.Out, "\n========== %s — %s ==========\n", e.Name, e.Title)
		if err := e.Run(o); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
	}
	return nil
}
