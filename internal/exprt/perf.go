package exprt

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/stats"
)

// maternRef is the parameter vector the performance studies use
// (medium correlation, paper §VIII-B).
func maternRef() cov.Params { return cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5} }

// tlrAccs are the TLR accuracy thresholds of Fig. 3.
var tlrAccs = []float64{1e-5, 1e-7, 1e-9, 1e-12}

// simTileCap bounds the simulated tile grid so each DES run finishes in
// seconds; the coarsening is documented in the cluster package.
const simTileCap = 64

// rankModels calibrates one rank model per accuracy (shared across the
// performance experiments; calibration really compresses Matérn tiles).
func rankModels(accs []float64) map[float64]*cluster.RankModel {
	out := make(map[float64]*cluster.RankModel, len(accs))
	for _, a := range accs {
		out[a] = cluster.CalibrateRankModel(a, maternRef(), 1024, 128)
	}
	return out
}

// fmtSecs renders a simulated/measured duration or OOM.
func fmtSecs(s float64, oom bool) string {
	if oom {
		return "OOM"
	}
	switch {
	case s < 1e-3:
		return fmt.Sprintf("%.3gms", s*1e3)
	case s < 1:
		return fmt.Sprintf("%.0fms", s*1e3)
	default:
		return fmt.Sprintf("%.1fs", s)
	}
}

// Fig3 reproduces Figure 3: time of one MLE iteration (generation +
// factorization + solve) versus problem size, comparing full-block,
// full-tile, and TLR at four accuracies.
//
// Part A times the real Go implementation at laptop sizes; part B replays
// the same task DAGs on the paper's four Intel testbed profiles at the
// paper's problem sizes through the machine simulator.
func Fig3(o Options) error {
	o = o.withDefaults()
	th := maternRef()

	// --- Part A: measured wall-clock at laptop scale ------------------
	var sizes []int
	if o.Scale == ScalePaper {
		sizes = []int{400, 900, 1600, 2500, 3600}
	} else {
		sizes = []int{256, 400, 900}
	}
	fmt.Fprintf(o.Out, "[A] measured one-iteration time (this machine, %d workers)\n", o.Workers)
	tb := stats.NewTable("n", "full-block", "full-tile", "tlr(1e-5)", "tlr(1e-7)", "tlr(1e-9)", "tlr(1e-12)")
	var lastSpeedup float64
	for _, n := range sizes {
		syn, err := core.GenerateSynthetic(n, 0, th, o.Seed)
		if err != nil {
			return err
		}
		row := []string{fmt.Sprintf("%d", n)}
		timeOf := func(cfg core.Config) (float64, error) {
			t0 := time.Now()
			_, err := core.LogLikelihood(syn.Train, th, cfg)
			return time.Since(t0).Seconds(), err
		}
		tb1, err := timeOf(core.Config{Mode: core.FullBlock})
		if err != nil {
			return err
		}
		tb2, err := timeOf(core.Config{Mode: core.FullTile, TileSize: 128, Workers: o.Workers})
		if err != nil {
			return err
		}
		row = append(row, fmtSecs(tb1, false), fmtSecs(tb2, false))
		for _, acc := range tlrAccs {
			tt, err := timeOf(core.Config{Mode: core.TLR, TileSize: 128, Accuracy: acc, Workers: o.Workers})
			if err != nil {
				return err
			}
			row = append(row, fmtSecs(tt, false))
			if acc == 1e-5 {
				lastSpeedup = tb2 / tt
			}
		}
		tb.AddRow(row...)
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintf(o.Out, "measured full-tile/TLR(1e-5) speedup at n=%d: %.2fx\n", sizes[len(sizes)-1], lastSpeedup)
	fmt.Fprintln(o.Out, "note: at laptop sizes compression overhead dominates; the paper-scale crossover appears in part B")

	// --- Part B: simulated paper-scale runs on the four testbeds -------
	var simSizes []int
	if o.Scale == ScalePaper {
		simSizes = []int{55225, 63001, 71289, 79524, 87616, 96100, 104329, 112225}
	} else {
		simSizes = []int{55225, 79524, 112225}
	}
	models := rankModels(tlrAccs)
	for _, prof := range []cluster.Profile{cluster.Haswell, cluster.Broadwell, cluster.KNL, cluster.Skylake} {
		m := cluster.NewMachine(prof, 1)
		fmt.Fprintf(o.Out, "\n[B] simulated one-iteration time — %s (%d cores)\n", prof.Name, prof.Cores)
		st := stats.NewTable("n", "full-block", "full-tile", "tlr(1e-12)", "tlr(1e-9)", "tlr(1e-7)", "tlr(1e-5)")
		var maxSpeedup float64
		for _, n := range simSizes {
			blk := cluster.SimulateBlockCholesky(m, n)
			til := cluster.AnalyticCholesky(m, cluster.Workload{N: n, NB: 560, Variant: cluster.Dense})
			row := []string{fmt.Sprintf("%d", n), fmtSecs(blk.Seconds, blk.OOM), fmtSecs(til.Seconds, til.OOM)}
			for _, acc := range []float64{1e-12, 1e-9, 1e-7, 1e-5} {
				r := cluster.AnalyticCholesky(m, cluster.Workload{
					N: n, NB: 1900, Variant: cluster.TLRVariant, Accuracy: acc,
					Ranks: models[acc],
				})
				row = append(row, fmtSecs(r.Seconds, r.OOM))
				if !r.OOM && !til.OOM {
					if s := til.Seconds / r.Seconds; s > maxSpeedup {
						maxSpeedup = s
					}
				}
			}
			st.AddRow(row...)
		}
		fmt.Fprint(o.Out, st.String())
		fmt.Fprintf(o.Out, "max TLR speedup vs full-tile on %s: %.1fx (paper: 5x-13x across testbeds)\n", prof.Name, maxSpeedup)
	}
	return nil
}

// Fig4 reproduces Figure 4: simulated one-iteration time on the Cray XC40
// with 256 and 1024 nodes, full-tile versus TLR at 1e-5/1e-7/1e-9. Missing
// (OOM) points mirror the paper's out-of-memory gaps.
func Fig4(o Options) error {
	o = o.withDefaults()
	accs := []float64{1e-9, 1e-7, 1e-5}
	models := rankModels(accs)
	configs := []struct {
		nodes int
		sizes []int
	}{
		{256, []int{100_000, 200_000, 250_000, 500_000, 750_000, 1_000_000}},
		{1024, []int{250_000, 500_000, 750_000, 1_000_000, 2_000_000}},
	}
	if o.Scale == ScaleSmall {
		configs[0].sizes = []int{100_000, 500_000, 1_000_000}
		configs[1].sizes = []int{250_000, 1_000_000, 2_000_000}
	}
	for _, cfg := range configs {
		m := cluster.NewMachine(cluster.ShaheenNode, cfg.nodes)
		fmt.Fprintf(o.Out, "\nsimulated Cray XC40, %d nodes (%d cores)\n", cfg.nodes, cfg.nodes*cluster.ShaheenNode.Cores)
		tb := stats.NewTable("n", "full-tile", "tlr(1e-9)", "tlr(1e-7)", "tlr(1e-5)")
		var maxSpeedup float64
		for _, n := range cfg.sizes {
			til := cluster.AnalyticCholesky(m, cluster.Workload{N: n, NB: 560, Variant: cluster.Dense})
			row := []string{fmt.Sprintf("%d", n), fmtSecs(til.Seconds, til.OOM)}
			for _, acc := range accs {
				r := cluster.AnalyticCholesky(m, cluster.Workload{
					N: n, NB: 1900, Variant: cluster.TLRVariant, Accuracy: acc,
					Ranks: models[acc],
				})
				row = append(row, fmtSecs(r.Seconds, r.OOM))
				if !r.OOM && !til.OOM {
					if s := til.Seconds / r.Seconds; s > maxSpeedup {
						maxSpeedup = s
					}
				}
			}
			tb.AddRow(row...)
		}
		fmt.Fprint(o.Out, tb.String())
		fmt.Fprintf(o.Out, "max TLR speedup vs full-tile on %d nodes: %.1fx (paper: up to 5x)\n", cfg.nodes, maxSpeedup)
	}
	return nil
}

// Fig5 reproduces Figure 5: simulated time of the TLR prediction operation
// (100 unknown measurements) on 256 Cray nodes. As in the paper, the curves
// track Fig. 4(a) because the Cholesky factorization dominates.
func Fig5(o Options) error {
	o = o.withDefaults()
	accs := []float64{1e-9, 1e-7, 1e-5}
	models := rankModels(accs)
	m := cluster.NewMachine(cluster.ShaheenNode, 256)
	sizes := []int{100_000, 200_000, 250_000, 500_000, 750_000, 1_000_000}
	if o.Scale == ScaleSmall {
		sizes = []int{100_000, 500_000, 1_000_000}
	}
	fmt.Fprintf(o.Out, "simulated prediction of 100 unknowns, Cray XC40, 256 nodes\n")
	tb := stats.NewTable("n", "full-tile", "tlr(1e-9)", "tlr(1e-7)", "tlr(1e-5)")
	for _, n := range sizes {
		til := cluster.AnalyticPrediction(m, cluster.Workload{N: n, NB: 560, Variant: cluster.Dense}, 100)
		row := []string{fmt.Sprintf("%d", n), fmtSecs(til.Seconds, til.OOM)}
		for _, acc := range accs {
			r := cluster.AnalyticPrediction(m, cluster.Workload{
				N: n, NB: 1900, Variant: cluster.TLRVariant, Accuracy: acc,
				Ranks: models[acc],
			}, 100)
			row = append(row, fmtSecs(r.Seconds, r.OOM))
		}
		tb.AddRow(row...)
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "prediction time tracks the MLE iteration of Fig. 4(a): the factorization dominates")
	return nil
}
