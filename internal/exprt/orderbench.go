package exprt

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/tlr"
)

// OrderBench measures the spatial-ordering engine end to end
// (`paperbench -order`, written as BENCH_order.json): for each ordering
// (none / morton / hilbert / kdblock) on each geometry (uniform perturbed
// grid, clustered blobs) it records the off-diagonal rank distribution the
// compressor actually saw (the tlr.compress.rank histogram), TLR storage,
// factorization makespan, likelihood/prediction agreement with the raw
// ordering, and the per-rank traffic of a distributed factorization. This is
// the measured form of the paper's ordering discussion (§V): a space-filling
// curve makes tile interactions low-rank, and everything downstream —
// memory, flops, messages — inherits that.

// OrderRow is one ordering on one geometry.
type OrderRow struct {
	Ordering string `json:"ordering"`

	// Rank structure of the off-diagonal tiles.
	MaxRank  int     `json:"max_rank"`
	MeanRank float64 `json:"mean_rank"`
	// Histogram of compressor-observed ranks over this build only
	// (snapshot diff of tlr.compress.rank).
	RankP50   int64         `json:"rank_p50"`
	RankP95   int64         `json:"rank_p95"`
	RankHist  map[int]int64 `json:"rank_hist_buckets,omitempty"`
	HistTiles int64         `json:"hist_tiles"`

	TLRBytes   int64   `json:"tlr_bytes"`
	DenseBytes int64   `json:"dense_bytes"`
	FactorMS   float64 `json:"factor_ms"`

	// Accuracy vs the "none" row of the same geometry: the likelihood is a
	// property of the dataset, not the row order.
	LogLik            float64 `json:"loglik"`
	RelErrVsRaw       float64 `json:"rel_err_vs_raw"`
	MaxPredDiffVsRaw  float64 `json:"max_pred_diff_vs_raw"`
	WithinSolverTol   bool    `json:"within_solver_tol"`
	PerRankSentBytes  []int64 `json:"per_rank_sent_bytes"`
	TotalCommSentByte int64   `json:"total_comm_sent_bytes"`
}

// OrderGeomResult is the full ordering sweep on one point geometry.
type OrderGeomResult struct {
	Geometry string     `json:"geometry"` // "uniform" or "clustered"
	Rows     []OrderRow `json:"rows"`
}

// OrderAcceptance is the report's pass/fail summary: on the clustered
// geometry a locality-aware ordering must beat the raw order on mean rank,
// and every ordering must agree with raw to solver tolerance.
type OrderAcceptance struct {
	ClusteredHilbertBeatsRaw bool `json:"clustered_hilbert_beats_raw"`
	ClusteredKDBlockBeatsRaw bool `json:"clustered_kdblock_beats_raw"`
	AllWithinSolverTol       bool `json:"all_within_solver_tol"`
	Pass                     bool `json:"pass"`
}

// OrderBenchReport is the JSON payload of BENCH_order.json.
type OrderBenchReport struct {
	N          int               `json:"n"`
	NB         int               `json:"nb"`
	Tol        float64           `json:"tol"`
	Compressor string            `json:"compressor"`
	DistRanks  int               `json:"dist_ranks"`
	Geometries []OrderGeomResult `json:"geometries"`
	Acceptance OrderAcceptance   `json:"acceptance"`
}

// orderBenchPoints builds the two benchmark geometries in caller (raw) order.
func orderBenchPoints(n int, seed uint64) map[string][]geom.Point {
	return map[string][]geom.Point{
		"uniform":   geom.GeneratePerturbedGrid(n, rng.New(seed)),
		"clustered": geom.GenerateClustered(n, 8, 0.02, rng.New(seed+1)),
	}
}

// OrderBench sweeps orderings × geometries at n=1024, nb=128, acc=1e-7.
func OrderBench(o Options) (*OrderBenchReport, error) {
	o = o.withDefaults()
	const (
		n         = 1024
		nb        = 128
		tol       = 1e-7
		distRanks = 4
		solverTol = 1e-5 // likelihood agreement across orderings, rel
	)
	th := maternRef()
	k := cov.NewKernel(th)
	newPts := []geom.Point{{X: 0.31, Y: 0.47}, {X: 0.83, Y: 0.12}, {X: 0.05, Y: 0.95}}

	rep := &OrderBenchReport{N: n, NB: nb, Tol: tol, Compressor: "svd", DistRanks: distRanks}
	geoms := orderBenchPoints(n, o.Seed)
	for _, geomName := range []string{"uniform", "clustered"} {
		pts := geoms[geomName]
		z, err := cov.SampleField(k, pts, geom.Euclidean, rng.New(o.Seed+7).Split(2))
		if err != nil {
			return nil, err
		}
		// One raw-order problem; each session reorders its private copy.
		p, err := core.NewProblemOrdered(pts, z, geom.Euclidean, geom.None)
		if err != nil {
			return nil, err
		}
		res := OrderGeomResult{Geometry: geomName}
		var rawLik float64
		var rawPred []float64
		for _, name := range geom.OrderingNames() {
			ord, err := geom.NewOrdering(name, nb)
			if err != nil {
				return nil, err
			}
			spts := geom.Sorted(ord, pts)

			// Rank structure + compressor histogram, isolated by snapshot diff.
			pre := obs.Default().Snapshot()
			m := tlr.FromKernel(k, spts, geom.Euclidean, n, nb, tol, tlr.SVDCompressor{}, 1e-9, o.Workers)
			hist := obs.Default().Snapshot().Sub(pre).Histograms["tlr.compress.rank"]
			maxK, meanK := m.RankStats()
			t0 := time.Now()
			if err := tlr.Cholesky(m, o.Workers); err != nil {
				return nil, err
			}
			row := OrderRow{
				Ordering: name,
				MaxRank:  maxK, MeanRank: meanK,
				RankP50: hist.Quantile(0.5), RankP95: hist.Quantile(0.95),
				RankHist: hist.Buckets, HistTiles: hist.Count,
				TLRBytes: m.Bytes(), DenseBytes: m.DenseBytes(),
				FactorMS: ms(time.Since(t0).Seconds()),
			}

			// Likelihood + prediction through the public Config knob.
			cfg := core.Config{Mode: core.TLR, TileSize: nb, Accuracy: tol,
				CompressorName: "svd", Workers: o.Workers, Ordering: name}
			s, err := core.NewSession(p, cfg)
			if err != nil {
				return nil, err
			}
			lik, err := s.LogLikelihood(th)
			if err != nil {
				return nil, err
			}
			pred, err := s.Predict(newPts, th)
			if err != nil {
				return nil, err
			}
			row.LogLik = lik.Value
			if name == geom.OrderNone {
				rawLik, rawPred = lik.Value, pred
			}
			row.RelErrVsRaw = math.Abs(lik.Value-rawLik) / math.Abs(rawLik)
			for i := range pred {
				if d := math.Abs(pred[i] - rawPred[i]); d > row.MaxPredDiffVsRaw {
					row.MaxPredDiffVsRaw = d
				}
			}
			row.WithinSolverTol = row.RelErrVsRaw <= solverTol && row.MaxPredDiffVsRaw <= 1e-4

			// Per-rank traffic of the same likelihood on the distributed backend.
			dcfg := cfg
			dcfg.Ranks = distRanks
			ds, err := core.NewSession(p, dcfg)
			if err != nil {
				return nil, err
			}
			if _, err := ds.LogLikelihood(th); err != nil {
				return nil, err
			}
			for _, st := range ds.CommStats() {
				row.PerRankSentBytes = append(row.PerRankSentBytes, st.BytesSent)
				row.TotalCommSentByte += st.BytesSent
			}
			res.Rows = append(res.Rows, row)
		}
		rep.Geometries = append(rep.Geometries, res)
	}

	// Acceptance: locality-aware orderings must pay off where locality is
	// there to exploit, and never change the answer.
	acc := OrderAcceptance{AllWithinSolverTol: true}
	for _, g := range rep.Geometries {
		byName := map[string]OrderRow{}
		for _, r := range g.Rows {
			byName[r.Ordering] = r
			if !r.WithinSolverTol {
				acc.AllWithinSolverTol = false
			}
		}
		if g.Geometry == "clustered" {
			raw := byName[geom.OrderNone]
			acc.ClusteredHilbertBeatsRaw = byName[geom.OrderHilbert].MeanRank < raw.MeanRank
			acc.ClusteredKDBlockBeatsRaw = byName[geom.OrderKDBlock].MeanRank < raw.MeanRank
		}
	}
	acc.Pass = acc.AllWithinSolverTol && (acc.ClusteredHilbertBeatsRaw || acc.ClusteredKDBlockBeatsRaw)
	rep.Acceptance = acc
	return rep, nil
}

// WriteOrderBench runs OrderBench and writes the JSON report to path,
// echoing a summary table to o.Out.
func WriteOrderBench(path string, o Options) error {
	o = o.withDefaults()
	rep, err := OrderBench(o)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "order bench n=%d nb=%d tol=%g %s (dist ranks=%d) -> %s\n",
		rep.N, rep.NB, rep.Tol, rep.Compressor, rep.DistRanks, path)
	for _, g := range rep.Geometries {
		fmt.Fprintf(o.Out, "  %s:\n", g.Geometry)
		for _, r := range g.Rows {
			fmt.Fprintf(o.Out, "    %-8s rank max %3d mean %5.1f p95 %3d  tlr %7.1fKB  factor %7.1fms  comm %7.1fKB  rel err %.1e\n",
				r.Ordering, r.MaxRank, r.MeanRank, r.RankP95,
				float64(r.TLRBytes)/1024, r.FactorMS,
				float64(r.TotalCommSentByte)/1024, r.RelErrVsRaw)
		}
	}
	fmt.Fprintf(o.Out, "  acceptance: hilbert<raw %v, kdblock<raw %v (clustered mean rank), within tol %v -> pass=%v\n",
		rep.Acceptance.ClusteredHilbertBeatsRaw, rep.Acceptance.ClusteredKDBlockBeatsRaw,
		rep.Acceptance.AllWithinSolverTol, rep.Acceptance.Pass)
	return nil
}
