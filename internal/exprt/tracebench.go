package exprt

import (
	"encoding/json"
	"fmt"
	"os"
	goruntime "runtime"
	"strings"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/runtime"
	"repro/internal/tile"
	"repro/internal/tlr"
)

// TraceBenchReport is the machine-readable snapshot of `paperbench -trace`
// (BENCH_trace.json): one traced execution of the dense-tile and TLR
// generate+factorize DAGs at n=2048, with the schedule quantities the
// paper's trace figures argue about — critical path vs makespan vs busy
// time — computed from the recorded events instead of eyeballed from a
// Gantt chart. The companion .trace.json artifact holds both runs in Chrome
// trace-event format, loadable in Perfetto (ui.perfetto.dev).
type TraceBenchReport struct {
	N       int `json:"n"`
	NB      int `json:"nb"`
	NumCPU  int `json:"num_cpu"`
	Workers int `json:"workers"`

	Rows []TraceBenchRow `json:"rows"`
}

// TraceBenchRow summarizes one traced DAG execution. CritPathMS ≤ MakespanMS
// always; MakespanMS / CritPathMS bounds the speedup any schedule could
// still extract, and Utilization reports how busy the workers actually were.
type TraceBenchRow struct {
	Backend     string             `json:"backend"`
	Tasks       int                `json:"tasks"`
	WallMS      float64            `json:"wall_ms"`
	MakespanMS  float64            `json:"makespan_ms"`
	BusyMS      float64            `json:"busy_ms"`
	CritPathMS  float64            `json:"crit_path_ms"`
	Utilization float64            `json:"utilization"`
	GFlops      float64            `json:"achieved_gflops"`
	ByKernelMS  map[string]float64 `json:"by_kernel_ms"`
}

func traceRow(backend string, tr *runtime.Trace) TraceBenchRow {
	row := TraceBenchRow{
		Backend:     backend,
		Tasks:       len(tr.Events),
		WallMS:      ms(tr.Wall.Seconds()),
		MakespanMS:  ms(tr.Makespan().Seconds()),
		BusyMS:      ms(tr.BusyTime().Seconds()),
		CritPathMS:  ms(tr.CritPath.Seconds()),
		Utilization: tr.Utilization(),
		ByKernelMS:  map[string]float64{},
	}
	if w := tr.Wall.Seconds(); w > 0 {
		row.GFlops = tr.TotalFlops() / w / 1e9
	}
	for k, d := range tr.ByKernel() {
		row.ByKernelMS[k] = ms(d.Seconds())
	}
	return row
}

// TraceBench executes the dense-tile and TLR Cholesky pipelines at n=2048
// with tracing and returns the schedule report plus the named traces for the
// Chrome artifact.
func TraceBench(o Options) (*TraceBenchReport, []runtime.NamedTrace, error) {
	o = o.withDefaults()
	const (
		n, nb = 2048, 128
		tol   = 1e-7
	)
	rep := &TraceBenchReport{
		N: n, NB: nb,
		NumCPU:  goruntime.NumCPU(),
		Workers: o.Workers,
	}
	k := cov.NewKernel(maternRef())
	pts := geom.GeneratePerturbedGrid(n, rng.New(o.Seed))
	pts = geom.Sorted(geom.Morton, pts)

	var named []runtime.NamedTrace

	// Dense tiled: combined dcmg + POTRF/TRSM/SYRK/GEMM DAG.
	m := tile.NewSym(n, nb)
	spec := &tile.GenSpec{K: k, Pts: pts, Metric: geom.Euclidean, Nugget: 1e-9}
	g, _ := tile.BuildGenCholeskyGraph(m, spec, true)
	tr, err := g.ExecuteTraced(runtime.ExecOptions{Workers: o.Workers})
	if err != nil {
		return nil, nil, fmt.Errorf("dense trace: %w", err)
	}
	rep.Rows = append(rep.Rows, traceRow("dense-tile", tr))
	named = append(named, runtime.NamedTrace{Name: "dense-tile cholesky", Trace: tr})

	// TLR: fused generate+compress + factorization DAG.
	shell := tlr.NewMatrix(n, nb, tol)
	tspec := &tlr.GenSpec{K: k, Pts: pts, Metric: geom.Euclidean, Nugget: 1e-9, Comp: tlr.RSVDCompressor{}}
	tg := tlr.BuildGenCholeskyGraph(shell, tspec, true)
	ttr, err := tg.ExecuteTraced(runtime.ExecOptions{Workers: o.Workers})
	if err != nil {
		return nil, nil, fmt.Errorf("tlr trace: %w", err)
	}
	rep.Rows = append(rep.Rows, traceRow("tlr", ttr))
	named = append(named, runtime.NamedTrace{Name: "tlr cholesky", Trace: ttr})

	return rep, named, nil
}

// WriteTraceBench runs TraceBench, writes the JSON report to path and the
// combined Chrome trace artifact next to it (path with .json replaced by
// .trace.json), echoing a summary to o.Out.
func WriteTraceBench(path string, o Options) error {
	o = o.withDefaults()
	rep, named, err := TraceBench(o)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	tracePath := strings.TrimSuffix(path, ".json") + ".trace.json"
	tf, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	if err := runtime.WriteChromeTraces(tf, named...); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "trace bench n=%d nb=%d workers=%d (%d cpus) -> %s, %s\n",
		rep.N, rep.NB, rep.Workers, rep.NumCPU, path, tracePath)
	for _, r := range rep.Rows {
		fmt.Fprintf(o.Out, "  %-11s %4d tasks  wall %8.1fms  crit-path %8.1fms  makespan %8.1fms  util %5.1f%%  %6.1f GFLOP/s\n",
			r.Backend, r.Tasks, r.WallMS, r.CritPathMS, r.MakespanMS, 100*r.Utilization, r.GFlops)
	}
	return nil
}
