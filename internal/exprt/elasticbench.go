package exprt

import (
	"encoding/json"
	"fmt"
	"os"
	goruntime "runtime"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
)

// ElasticBenchReport is the machine-readable snapshot of the elastic
// shrink-to-survivors layer (`paperbench -elastic`), written as
// BENCH_elastic.json. It answers two questions: what does arming elastic
// recovery cost when no rank dies (the no-fault overhead, required < 5%),
// and does a run that loses a rank mid-Cholesky complete on the survivors
// with a likelihood bitwise-identical to the unfaulted evaluation.
type ElasticBenchReport struct {
	N      int     `json:"n"`
	NB     int     `json:"nb"`
	Tol    float64 `json:"tol"`
	GridP  int     `json:"grid_p"`
	GridQ  int     `json:"grid_q"`
	Ranks  int     `json:"ranks"`
	NumCPU int     `json:"num_cpu"`
	Reps   int     `json:"reps"`

	// Best-of-reps likelihood-evaluation times on fresh parameter points
	// (no factor-cache hits), elastic recovery off vs armed, no faults.
	BaselineMS     float64 `json:"baseline_eval_ms"`
	ElasticOnMS    float64 `json:"elastic_armed_eval_ms"`
	OverheadPct    float64 `json:"elastic_overhead_pct"`
	OverheadUnder5 bool    `json:"elastic_overhead_under_5pct"`

	Recovery ElasticRunResult `json:"recovery_run"`

	// Pass aggregates the acceptance criteria: overhead under 5%, the
	// faulted run recovered on ranks-1 survivors, and its likelihood is
	// bitwise-identical to the unfaulted one.
	Pass bool `json:"pass"`
}

// ElasticRunResult is the outcome of the fault-injected evaluation: one rank
// killed at the start of a Cholesky panel, survivors shrink and resume.
type ElasticRunResult struct {
	KilledRank       int     `json:"killed_rank"`
	KilledAtPanel    int     `json:"killed_at_panel"`
	EvalMS           float64 `json:"eval_ms"` // faulted evaluation, recovery included
	RecoveryMS       float64 `json:"recovery_ms"`
	ShardRebuiltKB   float64 `json:"shard_rebuilt_kb"`
	RanksLost        int     `json:"ranks_lost"`
	Survivors        int     `json:"survivors"`
	Recovered        bool    `json:"recovered"`
	BitwiseIdentical bool    `json:"bitwise_identical_to_unfaulted"`
}

// ElasticBench measures elastic recovery on a 6-rank (2×3) distributed TLR
// likelihood: rank 3 is killed at the start of Cholesky panel 3.
func ElasticBench(o Options) (*ElasticBenchReport, error) {
	o = o.withDefaults()
	const (
		n, nb  = 800, 64
		tol    = 1e-7
		reps   = 3
		victim = 3 // rank killed in the faulted run
		panel  = 3 // 0-based panel at whose start the kill fires
	)
	grid := [2]int{2, 3}
	ranks := grid[0] * grid[1]
	rep := &ElasticBenchReport{
		N: n, NB: nb, Tol: tol,
		GridP: grid[0], GridQ: grid[1], Ranks: ranks,
		NumCPU: goruntime.NumCPU(),
		Reps:   reps,
	}

	truth := maternRef()
	syn, err := core.GenerateSynthetic(n, 0, truth, o.Seed)
	if err != nil {
		return nil, err
	}
	p := syn.Train
	base := core.Config{Mode: core.TLR, TileSize: nb, Accuracy: tol, Grid: grid}
	armed := base
	armed.ElasticRecovery = true

	sOff, err := core.NewSession(p, base)
	if err != nil {
		return nil, fmt.Errorf("baseline session: %w", err)
	}
	defer sOff.Close()
	sOn, err := core.NewSession(p, armed)
	if err != nil {
		return nil, fmt.Errorf("elastic-armed session: %w", err)
	}
	defer sOn.Close()

	// Warmup (untimed): materializes both sessions' tile shards and pins the
	// unfaulted reference values the recovery run must reproduce bitwise.
	want, err := sOff.LogLikelihood(truth)
	if err != nil {
		return nil, fmt.Errorf("unfaulted evaluation: %w", err)
	}
	if _, err := sOn.LogLikelihood(truth); err != nil {
		return nil, fmt.Errorf("elastic-armed warmup: %w", err)
	}

	// No-fault overhead: each rep evaluates a fresh parameter point (so the
	// factor cache cannot answer) on both sessions. The reps interleave the
	// two configurations so machine drift cancels instead of biasing the
	// ratio; best-of-reps each.
	var off, on float64
	for r := 0; r < reps; r++ {
		th := truth
		th.Range *= 1 + 1e-3*float64(r+1)
		t0 := time.Now()
		if _, err := sOff.LogLikelihood(th); err != nil {
			return nil, fmt.Errorf("baseline evaluation: %w", err)
		}
		tb := time.Since(t0).Seconds()
		t0 = time.Now()
		if _, err := sOn.LogLikelihood(th); err != nil {
			return nil, fmt.Errorf("elastic-armed evaluation: %w", err)
		}
		ta := time.Since(t0).Seconds()
		if r == 0 || tb < off {
			off = tb
		}
		if r == 0 || ta < on {
			on = ta
		}
	}
	rep.BaselineMS = ms(off)
	rep.ElasticOnMS = ms(on)
	rep.OverheadPct = 100 * (on - off) / off
	rep.OverheadUnder5 = rep.OverheadPct < 5

	// Fault-injected run: a fresh session whose injector kills the victim at
	// the start of the target panel. The obs-snapshot difference isolates the
	// recovery latency and the bytes of shard re-materialized on survivors.
	faulted := armed
	faulted.Chaos = &chaos.FaultPlan{KillRank: victim + 1, KillAtPanel: panel + 1}
	sF, err := core.NewSession(p, faulted)
	if err != nil {
		return nil, fmt.Errorf("faulted session: %w", err)
	}
	defer sF.Close()
	pre := obs.Default().Snapshot()
	t0 := time.Now()
	got, ferr := sF.LogLikelihood(truth)
	delta := obs.Default().Snapshot().Sub(pre)
	lost := sF.Metrics().RanksLost
	rep.Recovery = ElasticRunResult{
		KilledRank:     victim,
		KilledAtPanel:  panel,
		EvalMS:         ms(time.Since(t0).Seconds()),
		RecoveryMS:     delta.Histograms["core.recovery.ns"].Mean() / 1e6,
		ShardRebuiltKB: float64(delta.Counters["tlr.shard.rebuilt.bytes"]) / 1024,
		RanksLost:      lost,
		Survivors:      ranks - lost,
		Recovered:      ferr == nil,
	}
	if ferr != nil {
		return nil, fmt.Errorf("fault-injected evaluation did not recover: %w", ferr)
	}
	rep.Recovery.BitwiseIdentical = got.Value == want.Value &&
		got.LogDet == want.LogDet && got.QuadForm == want.QuadForm

	rep.Pass = rep.OverheadUnder5 && rep.Recovery.Recovered &&
		rep.Recovery.BitwiseIdentical && rep.Recovery.Survivors == ranks-1
	return rep, nil
}

// WriteElasticBench runs ElasticBench and writes the JSON report to path,
// echoing a short summary to o.Out.
func WriteElasticBench(path string, o Options) error {
	o = o.withDefaults()
	rep, err := ElasticBench(o)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "elastic bench n=%d nb=%d tol=%g %dx%d grid (%d ranks, %d cpus) -> %s\n",
		rep.N, rep.NB, rep.Tol, rep.GridP, rep.GridQ, rep.Ranks, rep.NumCPU, path)
	fmt.Fprintf(o.Out, "  baseline      %8.1fms\n", rep.BaselineMS)
	fmt.Fprintf(o.Out, "  elastic armed %8.1fms  overhead %+.2f%% (under 5%%: %v)\n",
		rep.ElasticOnMS, rep.OverheadPct, rep.OverheadUnder5)
	r := rep.Recovery
	fmt.Fprintf(o.Out, "  faulted run   %8.1fms  kill rank %d @ panel %d  recovery %.1fms  rebuilt %.1fKB  survivors %d/%d  bitwise=%v\n",
		r.EvalMS, r.KilledRank, r.KilledAtPanel, r.RecoveryMS, r.ShardRebuiltKB, r.Survivors, rep.Ranks, r.BitwiseIdentical)
	fmt.Fprintf(o.Out, "  pass: %v\n", rep.Pass)
	return nil
}
