package exprt

import (
	"encoding/json"
	"fmt"
	"os"
	goruntime "runtime"
	"time"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/runtime"
	"repro/internal/tlr"
)

// TLRBenchReport is the machine-readable snapshot of the parallel TLR
// assemble+compress pipeline (`paperbench -tlr`), written as BENCH_tlr.json.
// Measured rows give wall-clock on this machine; because CI boxes may expose
// a single core, the report also includes list-scheduled makespans of the
// fused generate+compress+factorize DAG, which capture the scaling the paper
// reports on multi-core hardware.
type TLRBenchReport struct {
	N          int     `json:"n"`
	NB         int     `json:"nb"`
	Tol        float64 `json:"tol"`
	Compressor string  `json:"compressor"`
	NumCPU     int     `json:"num_cpu"`

	Measured  []TLRBenchRow `json:"measured"`
	Simulated []TLRSimRow   `json:"simulated"`
}

// TLRBenchRow times assembly (parallel FromKernel) and factorization at one
// worker count and records whether the factored matrix is bitwise-identical
// to the workers=1 reference — the determinism contract of the pipeline.
type TLRBenchRow struct {
	Workers          int     `json:"workers"`
	AssembleMS       float64 `json:"assemble_ms"`
	FactorMS         float64 `json:"factor_ms"`
	AssembleSpeedup  float64 `json:"assemble_speedup"`
	FactorSpeedup    float64 `json:"factor_speedup"`
	BitwiseIdentical bool    `json:"bitwise_identical_to_ref"`
}

// TLRSimRow is the list-scheduled makespan speedup of the fused
// generate+compress+factorize DAG over the 1-worker schedule.
type TLRSimRow struct {
	Workers         int     `json:"workers"`
	MakespanSpeedup float64 `json:"fused_dag_makespan_speedup"`
}

// tlrIdentical reports bitwise equality of two TLR matrices (diagonal tile
// data and every off-diagonal factor pair).
func tlrIdentical(a, b *tlr.Matrix) bool {
	eq := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	for i := 0; i < a.MT; i++ {
		if !eq(a.Diag(i).Data, b.Diag(i).Data) {
			return false
		}
		for j := 0; j < i; j++ {
			ta, tb := a.Off(i, j), b.Off(i, j)
			if ta.Rank() != tb.Rank() || !eq(ta.U.Data, tb.U.Data) || !eq(ta.V.Data, tb.V.Data) {
				return false
			}
		}
	}
	return true
}

// TLRBench benchmarks the parallel TLR pipeline at n=2048, nb=128.
func TLRBench(o Options) *TLRBenchReport {
	o = o.withDefaults()
	const (
		n, nb = 2048, 128
		tol   = 1e-7
	)
	rep := &TLRBenchReport{
		N: n, NB: nb, Tol: tol,
		Compressor: "rsvd",
		NumCPU:     goruntime.NumCPU(),
	}
	k := cov.NewKernel(maternRef())
	pts := geom.GeneratePerturbedGrid(n, rng.New(o.Seed))
	pts = geom.Sorted(geom.Morton, pts)
	comp := tlr.RSVDCompressor{}

	var ref *tlr.Matrix
	for _, w := range []int{1, 2, 4, 8} {
		t0 := time.Now()
		m := tlr.FromKernel(k, pts, geom.Euclidean, n, nb, tol, comp, 1e-9, w)
		assemble := time.Since(t0).Seconds()
		t0 = time.Now()
		if err := tlr.Cholesky(m, w); err != nil {
			panic(err)
		}
		factor := time.Since(t0).Seconds()
		if w == 1 {
			ref = m
		}
		row := TLRBenchRow{
			Workers: w, AssembleMS: ms(assemble), FactorMS: ms(factor),
			BitwiseIdentical: tlrIdentical(ref, m),
		}
		if r0 := rep.Measured; len(r0) > 0 {
			row.AssembleSpeedup = r0[0].AssembleMS / row.AssembleMS
			row.FactorSpeedup = r0[0].FactorMS / row.FactorMS
		} else {
			row.AssembleSpeedup, row.FactorSpeedup = 1, 1
		}
		rep.Measured = append(rep.Measured, row)
	}

	// List-scheduled makespans of the fused DAG under the nominal-rank cost
	// model: the scaling the task flow admits independent of this machine's
	// core count.
	shell := tlr.NewMatrix(n, nb, tol)
	spec := &tlr.GenSpec{K: k, Pts: pts, Metric: geom.Euclidean, Nugget: 1e-9, Comp: comp}
	g := tlr.BuildGenCholeskyGraph(shell, spec, false)
	base, _ := g.Simulate(runtime.SimOptions{Workers: 1})
	for _, w := range []int{1, 2, 4, 8} {
		mk, _ := g.Simulate(runtime.SimOptions{Workers: w})
		rep.Simulated = append(rep.Simulated, TLRSimRow{Workers: w, MakespanSpeedup: base / mk})
	}
	return rep
}

// WriteTLRBench runs TLRBench and writes the JSON report to path, echoing a
// short summary to o.Out.
func WriteTLRBench(path string, o Options) error {
	o = o.withDefaults()
	rep := TLRBench(o)
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(o.Out, "tlr bench n=%d nb=%d %s tol=%g (%d cpus) -> %s\n",
		rep.N, rep.NB, rep.Compressor, rep.Tol, rep.NumCPU, path)
	for _, r := range rep.Measured {
		fmt.Fprintf(o.Out, "  workers=%d  assemble %8.1fms (%.2fx)  factor %8.1fms (%.2fx)  bitwise=%v\n",
			r.Workers, r.AssembleMS, r.AssembleSpeedup, r.FactorMS, r.FactorSpeedup, r.BitwiseIdentical)
	}
	for _, s := range rep.Simulated {
		fmt.Fprintf(o.Out, "  fused DAG makespan workers=%d  %.2fx\n", s.Workers, s.MakespanSpeedup)
	}
	return nil
}
