package exprt

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cluster"
	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/hodlr"
	"repro/internal/la"
	"repro/internal/mpi"
	"repro/internal/rng"
	"repro/internal/runtime"
	"repro/internal/stats"
	"repro/internal/tile"
	"repro/internal/tlr"
)

// Ablations quantifies the design choices DESIGN.md calls out:
//
//  1. Morton ordering vs raw ordering of locations (rank impact);
//  2. compression backend (SVD / RSVD / ACA);
//  3. tile size on the distributed machine (the paper's nb=560 vs nb=1900
//     discussion, §VIII-C);
//  4. out-of-order task flow vs bulk-synchronous scheduling;
//  5. TLR vs HODLR compression format (the §II trade-off);
//  6. really-distributed message-passing Cholesky vs shared memory.
func Ablations(o Options) error {
	o = o.withDefaults()
	if err := ablationOrdering(o); err != nil {
		return err
	}
	if err := ablationCompressor(o); err != nil {
		return err
	}
	ablationTileSize(o)
	ablationScheduling(o)
	if err := ablationFormats(o); err != nil {
		return err
	}
	return ablationDistributed(o)
}

func ablationOrdering(o Options) error {
	n, nb := 1024, 128
	if o.Scale == ScalePaper {
		n, nb = 2048, 128
	}
	th := maternRef()
	k := cov.NewKernel(th)
	r := rng.New(o.Seed)
	pts := geom.GeneratePerturbedGrid(n, r)

	fmt.Fprintf(o.Out, "\n[1] location ordering (n=%d, nb=%d, acc=1e-7; full sweep incl. clustered geometry: paperbench -order)\n", n, nb)
	tb := stats.NewTable("ordering", "max rank", "mean rank", "tlr bytes", "dense bytes", "chol time")
	for _, ord := range []geom.Ordering{geom.None, geom.Morton, geom.Hilbert, geom.KDBlocks(nb)} {
		m := tlr.FromKernel(k, geom.Sorted(ord, pts), geom.Euclidean, n, nb, 1e-7, tlr.SVDCompressor{}, 1e-9, o.Workers)
		maxK, meanK := m.RankStats()
		t0 := time.Now()
		if err := tlr.Cholesky(m, o.Workers); err != nil {
			return err
		}
		tb.AddRow(ord.Name(), fmt.Sprintf("%d", maxK), fmt.Sprintf("%.1f", meanK),
			fmt.Sprintf("%d", m.Bytes()), fmt.Sprintf("%d", m.DenseBytes()),
			fmtSecs(time.Since(t0).Seconds(), false))
	}
	fmt.Fprint(o.Out, tb.String())
	return nil
}

func ablationCompressor(o Options) error {
	nb := 96
	th := maternRef()
	k := cov.NewKernel(th)
	r := rng.New(o.Seed + 1)
	pts := geom.GeneratePerturbedGrid(nb*nb, r)
	pts = geom.Sorted(geom.Morton, pts)

	fmt.Fprintf(o.Out, "\n[2] compression backend (tile %dx%d pairs, acc=1e-7)\n", nb, nb)
	tb := stats.NewTable("backend", "mean rank", "total time", "max rel err")
	for _, name := range []string{"svd", "rsvd", "aca"} {
		comp, err := tlr.CompressorByName(name)
		if err != nil {
			return err
		}
		var ranks []float64
		var worst float64
		t0 := time.Now()
		for trial := 0; trial < 6; trial++ {
			a := tileBetween(k, pts, nb, trial)
			c := comp.Compress(a, 1e-7)
			ranks = append(ranks, float64(c.Rank()))
			d := c.Dense()
			d.Sub(a)
			if rel := d.FrobNorm() / a.FrobNorm(); rel > worst {
				worst = rel
			}
		}
		el := time.Since(t0).Seconds()
		mean, _ := stats.MeanStd(ranks)
		tb.AddRow(name, fmt.Sprintf("%.1f", mean), fmtSecs(el, false), fmt.Sprintf("%.2e", worst))
	}
	fmt.Fprint(o.Out, tb.String())
	return nil
}

// tileBetween builds the covariance block between tile 0 and tile (trial+1)
// of the Morton-ordered point set.
func tileBetween(k *cov.Kernel, pts []geom.Point, nb, trial int) *la.Mat {
	j := trial + 1
	a := la.NewMat(nb, nb)
	k.Block(a, pts[:nb], pts[j*nb:(j+1)*nb], geom.Euclidean)
	return a
}

func ablationTileSize(o Options) {
	fmt.Fprintf(o.Out, "\n[3] tile size on simulated Cray XC40, 256 nodes, n=500K (paper §VIII-C: nb=560 dense / nb=1900 TLR)\n")
	m := cluster.NewMachine(cluster.ShaheenNode, 256)
	model := cluster.CalibrateRankModel(1e-7, maternRef(), 1024, 128)
	tb := stats.NewTable("nb", "full-tile", "tlr(1e-7)")
	for _, nb := range []int{280, 560, 1120, 1900, 3800} {
		den := cluster.AnalyticCholesky(m, cluster.Workload{N: 500_000, NB: nb, Variant: cluster.Dense})
		tl := cluster.AnalyticCholesky(m, cluster.Workload{N: 500_000, NB: nb, Variant: cluster.TLRVariant, Ranks: model})
		tb.AddRow(fmt.Sprintf("%d", nb), fmtSecs(den.Seconds, den.OOM), fmtSecs(tl.Seconds, tl.OOM))
	}
	fmt.Fprint(o.Out, tb.String())
}

func ablationScheduling(o Options) {
	n, nb := 4096, 256
	fmt.Fprintf(o.Out, "\n[4] scheduling: out-of-order task flow vs bulk-synchronous (dense Cholesky DAG, n=%d nb=%d)\n", n, nb)
	sym := tile.NewSym(n, nb)
	g, _ := tile.BuildCholeskyGraph(sym, false)
	cost := func(t *runtime.Task) float64 { return t.Flops }
	tb := stats.NewTable("workers", "async makespan", "barrier makespan", "barrier penalty")
	for _, w := range []int{4, 16, 64} {
		async, _ := g.Simulate(runtime.SimOptions{Workers: w, Cost: cost})
		bsp, _ := g.Simulate(runtime.SimOptions{Workers: w, Cost: cost, Barrier: true})
		tb.AddRow(fmt.Sprintf("%d", w), fmt.Sprintf("%.3g", async), fmt.Sprintf("%.3g", bsp),
			fmt.Sprintf("%.2fx", bsp/async))
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "the asynchronous task flow's advantage grows with worker count — the StarPU rationale (§VI)")
}

func ablationFormats(o Options) error {
	n, leaf := 768, 64
	k := cov.NewKernel(maternRef())
	r := rng.New(o.Seed + 2)
	pts := geom.GeneratePerturbedGrid(n, r)
	pts = geom.Sorted(geom.Morton, pts)
	fmt.Fprintf(o.Out, "\n[5] compression format: flat TLR vs recursive HODLR (n=%d, §II trade-off)\n", n)
	tb := stats.NewTable("accuracy", "dense bytes", "tlr bytes", "hodlr bytes", "tlr max rank", "hodlr max rank")
	for _, acc := range []float64{1e-3, 1e-6, 1e-9} {
		tl := tlr.FromKernel(k, pts, geom.Euclidean, n, leaf, acc, tlr.SVDCompressor{}, 0, o.Workers)
		hd := hodlr.Build(k, pts, geom.Euclidean, leaf, acc, tlr.SVDCompressor{}, 0)
		tlMax, _ := tl.RankStats()
		tb.AddRow(fmt.Sprintf("%.0e", acc),
			fmt.Sprintf("%d", int64(n)*int64(n)*8),
			fmt.Sprintf("%d", tl.Bytes()), fmt.Sprintf("%d", hd.Bytes()),
			fmt.Sprintf("%d", tlMax), fmt.Sprintf("%d", hd.MaxRank()))
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "HODLR compresses the far field harder; TLR's flat layout is what distributes (the paper's §II argument)")
	return nil
}

func ablationDistributed(o Options) error {
	n, nb := 240, 30
	k := cov.NewKernel(maternRef())
	r := rng.New(o.Seed + 3)
	pts := geom.GeneratePerturbedGrid(n, r)
	pts = geom.Sorted(geom.Morton, pts)
	fmt.Fprintf(o.Out, "\n[6] really-distributed (message passing, no shared matrix) Cholesky, n=%d nb=%d\n", n, nb)

	ref := la.NewMat(n, n)
	k.Matrix(ref, pts, geom.Euclidean)
	cov.AddNugget(ref, 1e-10)
	if err := la.Potrf(ref); err != nil {
		return err
	}
	want := la.LogDetFromChol(ref)

	tb := stats.NewTable("grid", "ranks", "logdet", "|Δ logdet|", "wall")
	for _, grid := range []mpi.Grid{{P: 1, Q: 1}, {P: 2, Q: 2}, {P: 2, Q: 4}} {
		var got float64
		t0 := time.Now()
		errs := mpi.RunWorld(grid.P*grid.Q, func(c *mpi.Comm) error {
			m := mpi.NewDistFromKernel(c.Rank(), grid, k, pts, geom.Euclidean, nb, 1e-10)
			if err := m.Cholesky(c); err != nil {
				return err
			}
			ld, err := m.LogDet(c)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				got = ld
			}
			return nil
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		tb.AddRow(fmt.Sprintf("%dx%d", grid.P, grid.Q), fmt.Sprintf("%d", grid.P*grid.Q),
			fmt.Sprintf("%.6f", got), fmt.Sprintf("%.2e", math.Abs(got-want)),
			fmtSecs(time.Since(t0).Seconds(), false))
	}
	fmt.Fprint(o.Out, tb.String())
	fmt.Fprintln(o.Out, "every grid reproduces the dense log-determinant: the block-cyclic broadcasts are correct")
	return nil
}
