// HODLR Cholesky factorization and triangular solves. The recursion on a
// 2×2-partitioned SPD matrix
//
//	A = [A11 A21ᵀ; A21 A22]
//
// is the block algorithm: factor A11 = L11·L11ᵀ (recursively), form the
// panel L21 = A21·L11⁻ᵀ, downdate the Schur complement A22 −= L21·L21ᵀ, and
// factor the downdated A22 recursively. With A21 = U·Vᵀ compressed, the
// panel solve is Ṽ = L11⁻¹·V (the U factor never moves) and the Schur
// update is the rank-k correction U·S·Uᵀ with S = ṼᵀṼ computed once per
// panel. The correction is scattered over the right subtree: dense leaves
// absorb their diagonal block of it exactly; off-diagonal blocks absorb
// theirs through a recompressing low-rank addition (tlr.AddLowRank), which
// is where the format's approximation lives.
//
// After Cholesky the tree holds L in place: leaves carry dense Cholesky
// factors, off blocks carry L21 in compressed (or dense-fallback) form, and
// the solves walk the tree exactly like MatVec does.
package hodlr

import (
	"fmt"

	"repro/internal/la"
	"repro/internal/tlr"
)

// Cholesky factors the assembled matrix in place: A = L·Lᵀ. On a
// non-positive-definite pivot the error wraps la.ErrNotPositiveDefinite and
// the tree is left partially factored — regenerate (Build or a GenSpec
// graph execution) before retrying, e.g. with a larger nugget.
//
// The factorization is deterministic: the operation order is fixed by the
// tree structure, so repeated factorizations of the same matrix are
// bitwise-identical (the property the task-parallel execution in gen.go
// preserves at any worker count).
func (m *Matrix) Cholesky() error {
	return m.root.cholesky(m.Tol)
}

func (n *node) cholesky(tol float64) error {
	if n.dense != nil {
		return n.potrf()
	}
	if err := n.left.cholesky(tol); err != nil {
		return err
	}
	n.factorPanel()
	for _, d := range n.right.nodes(nil) {
		n.applySchur(d, tol)
	}
	return n.right.cholesky(tol)
}

// potrf factors a dense leaf in place.
func (n *node) potrf() error {
	if err := la.Potrf(n.dense); err != nil {
		return fmt.Errorf("hodlr: leaf [%d,%d): %w", n.lo, n.hi, err)
	}
	return nil
}

// factorPanel turns the off block A21 into the panel L21 = A21·L11⁻ᵀ, using
// the already-factored left subtree, and caches S = ṼᵀṼ for the Schur
// updates. For a compressed block only V moves: L21 = U·(L11⁻¹·V)ᵀ. For a
// dense block (compression-miss fallback) the whole panel is solved.
func (n *node) factorPanel() {
	t := n.off
	n.schurS = nil
	switch {
	case t.IsDense():
		// L21ᵀ = L11⁻¹·A21ᵀ
		dt := t.D.T()
		n.left.forwardSolveMat(dt, n.lo)
		t.D = dt.T()
	case t.Rank() > 0:
		n.left.forwardSolveMat(t.V, n.lo)
		k := t.Rank()
		s := la.NewMat(k, k)
		la.Gemm(1, t.V, la.Transpose, t.V, la.NoTrans, 0, s)
		n.schurS = s
	}
}

// applySchur subtracts this panel's block of the Schur correction
// L21·L21ᵀ from descendant d of the right subtree: the diagonal slice for a
// leaf, the (d.right × d.left) slice for an internal node's off block. Each
// target is touched by at most one task per panel, and distinct targets are
// independent — the parallelism the task graph exploits.
func (n *node) applySchur(d *node, tol float64) {
	mid := n.left.hi
	t := n.off
	if t.IsDense() {
		p := t.D // the dense panel L21, rows global [mid, n.hi)
		if d.dense != nil {
			pd := p.View(d.lo-mid, 0, d.hi-d.lo, p.Cols)
			la.Gemm(-1, pd, la.NoTrans, pd, la.Transpose, 1, d.dense)
			return
		}
		dmid := d.left.hi
		x := p.View(dmid-mid, 0, d.hi-dmid, p.Cols)
		y := p.View(d.lo-mid, 0, dmid-d.lo, p.Cols)
		d.off = tlr.AddLowRank(d.off, -1, x, y, tol, 0)
		return
	}
	if t.Rank() == 0 {
		return
	}
	u, s := t.U, n.schurS
	if d.dense != nil {
		ud := u.View(d.lo-mid, 0, d.hi-d.lo, u.Cols)
		us := la.NewMat(ud.Rows, s.Cols)
		la.Gemm(1, ud, la.NoTrans, s, la.NoTrans, 0, us)
		la.Gemm(-1, us, la.NoTrans, ud, la.Transpose, 1, d.dense)
		return
	}
	dmid := d.left.hi
	ur := u.View(dmid-mid, 0, d.hi-dmid, u.Cols)
	ul := u.View(d.lo-mid, 0, dmid-d.lo, u.Cols)
	x := la.NewMat(ur.Rows, s.Cols)
	la.Gemm(1, ur, la.NoTrans, s, la.NoTrans, 0, x)
	d.off = tlr.AddLowRank(d.off, -1, x, ul, tol, 0)
}

// LogDet returns log|A| from the factored tree: 2·Σ log L_ii accumulated
// over the dense leaves. Valid only after Cholesky.
func (m *Matrix) LogDet() float64 { return m.root.logDet() }

func (n *node) logDet() float64 {
	if n.dense != nil {
		return la.LogDetFromChol(n.dense)
	}
	return n.left.logDet() + n.right.logDet()
}

// ForwardSolve overwrites b with L⁻¹·b (forward substitution over the tree).
func (m *Matrix) ForwardSolve(b []float64) {
	if len(b) != m.N {
		panic(fmt.Sprintf("hodlr: solve length %d for n=%d", len(b), m.N))
	}
	m.root.forwardSolve(b)
}

func (n *node) forwardSolve(b []float64) {
	if n.dense != nil {
		la.ForwardSolveVec(n.dense, b[n.lo:n.hi])
		return
	}
	n.left.forwardSolve(b)
	mid := n.left.hi
	// b2 −= L21·x1
	tlr.MatVec(n.off, -1, b[n.lo:mid], b[mid:n.hi])
	n.right.forwardSolve(b)
}

// BackwardSolve overwrites b with L⁻ᵀ·b.
func (m *Matrix) BackwardSolve(b []float64) {
	if len(b) != m.N {
		panic(fmt.Sprintf("hodlr: solve length %d for n=%d", len(b), m.N))
	}
	m.root.backwardSolve(b)
}

func (n *node) backwardSolve(b []float64) {
	if n.dense != nil {
		bm := la.NewMatFrom(n.hi-n.lo, 1, b[n.lo:n.hi])
		la.Trsm(la.Left, la.Lower, la.Transpose, 1, n.dense, bm)
		return
	}
	mid := n.left.hi
	n.right.backwardSolve(b)
	// b1 −= L21ᵀ·x2
	tlr.MatVecT(n.off, -1, b[mid:n.hi], b[n.lo:mid])
	n.left.backwardSolve(b)
}

// Solve overwrites b with A⁻¹·b (forward then backward substitution).
func (m *Matrix) Solve(b []float64) {
	m.ForwardSolve(b)
	m.BackwardSolve(b)
}

// ForwardSolveMat overwrites the N×r block B with L⁻¹·B.
func (m *Matrix) ForwardSolveMat(b *la.Mat) {
	if b.Rows != m.N {
		panic(fmt.Sprintf("hodlr: solve-mat rows %d for n=%d", b.Rows, m.N))
	}
	m.root.forwardSolveMat(b, 0)
}

// forwardSolveMat solves over the subtree; b's row 0 is global index base.
func (n *node) forwardSolveMat(b *la.Mat, base int) {
	if n.dense != nil {
		la.Trsm(la.Left, la.Lower, la.NoTrans, 1, n.dense, b.View(n.lo-base, 0, n.hi-n.lo, b.Cols))
		return
	}
	n.left.forwardSolveMat(b, base)
	mid := n.left.hi
	tlr.MatMul(n.off, -1, b.View(n.lo-base, 0, mid-n.lo, b.Cols), b.View(mid-base, 0, n.hi-mid, b.Cols))
	n.right.forwardSolveMat(b, base)
}

// BackwardSolveMat overwrites the N×r block B with L⁻ᵀ·B.
func (m *Matrix) BackwardSolveMat(b *la.Mat) {
	if b.Rows != m.N {
		panic(fmt.Sprintf("hodlr: solve-mat rows %d for n=%d", b.Rows, m.N))
	}
	m.root.backwardSolveMat(b, 0)
}

func (n *node) backwardSolveMat(b *la.Mat, base int) {
	if n.dense != nil {
		la.Trsm(la.Left, la.Lower, la.Transpose, 1, n.dense, b.View(n.lo-base, 0, n.hi-n.lo, b.Cols))
		return
	}
	mid := n.left.hi
	n.right.backwardSolveMat(b, base)
	tlr.MatMulT(n.off, -1, b.View(mid-base, 0, n.hi-mid, b.Cols), b.View(n.lo-base, 0, mid-n.lo, b.Cols))
	n.left.backwardSolveMat(b, base)
}

// SolveMat overwrites the N×r block B with A⁻¹·B (multi-RHS solve).
func (m *Matrix) SolveMat(b *la.Mat) {
	m.ForwardSolveMat(b)
	m.BackwardSolveMat(b)
}

// RankStats returns the (max, mean) rank over the compressed off-diagonal
// blocks; dense-fallback blocks count at their full minimum dimension.
func (m *Matrix) RankStats() (int, float64) {
	var max, sum, cnt int
	for _, d := range m.root.nodes(nil) {
		if d.left == nil || d.off == nil {
			continue
		}
		r := d.off.Rank()
		if d.off.IsDense() {
			r = min(d.off.Rows(), d.off.Cols())
		}
		if r > max {
			max = r
		}
		sum += r
		cnt++
	}
	if cnt == 0 {
		return 0, 0
	}
	return max, float64(sum) / float64(cnt)
}
