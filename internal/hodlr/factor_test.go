package hodlr

import (
	"errors"
	"math"
	"testing"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/rng"
	"repro/internal/runtime"
	"repro/internal/tlr"
)

// choleskyRef returns the dense Cholesky factor and logdet of dense+nugget·I.
func choleskyRef(t *testing.T, dense *la.Mat, nugget float64) (*la.Mat, float64) {
	t.Helper()
	ref := dense.Clone()
	cov.AddNugget(ref, nugget)
	if err := la.Potrf(ref); err != nil {
		t.Fatal(err)
	}
	return ref, la.LogDetFromChol(ref)
}

func TestCholeskyLogDetMatchesDense(t *testing.T) {
	for _, n := range []int{100, 256, 300} {
		k, pts, dense := testSetup(t, n)
		_, want := choleskyRef(t, dense, 1e-8)
		m := Build(k, pts, geom.Euclidean, 32, 1e-11, tlr.SVDCompressor{}, 1e-8)
		if err := m.Cholesky(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := m.LogDet()
		if math.Abs(got-want) > 1e-6*math.Abs(want) {
			t.Fatalf("n=%d: logdet %g vs dense %g", n, got, want)
		}
	}
}

func TestSolveMatchesDense(t *testing.T) {
	n := 300
	k, pts, dense := testSetup(t, n)
	ref, _ := choleskyRef(t, dense, 1e-8)
	m := Build(k, pts, geom.Euclidean, 32, 1e-11, tlr.SVDCompressor{}, 1e-8)
	if err := m.Cholesky(); err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	b := make([]float64, n)
	r.NormSlice(b)

	// Full solve A⁻¹b.
	got := append([]float64(nil), b...)
	m.Solve(got)
	want := append([]float64(nil), b...)
	la.CholSolveVec(ref, want)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("solve mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}

	// Half solve L⁻¹b — the likelihood's quadratic-form path needs only the
	// norm to agree (the HODLR L differs from the dense L by the block
	// approximation, but ‖L⁻¹b‖² = bᵀA⁻¹b must match).
	gh := append([]float64(nil), b...)
	m.ForwardSolve(gh)
	wh := append([]float64(nil), b...)
	la.ForwardSolveVec(ref, wh)
	if gq, wq := la.Dot(gh, gh), la.Dot(wh, wh); math.Abs(gq-wq) > 1e-6*wq {
		t.Fatalf("quadratic form %g vs dense %g", gq, wq)
	}
}

func TestSolveMatMatchesVectorSolves(t *testing.T) {
	n := 200
	k, pts, _ := testSetup(t, n)
	m := Build(k, pts, geom.Euclidean, 32, 1e-10, tlr.SVDCompressor{}, 1e-8)
	if err := m.Cholesky(); err != nil {
		t.Fatal(err)
	}
	r := rng.New(12)
	b := la.NewMat(n, 3)
	r.NormSlice(b.Data)
	got := b.Clone()
	m.SolveMat(got)
	for j := 0; j < 3; j++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		m.Solve(col)
		for i := 0; i < n; i++ {
			if math.Abs(got.At(i, j)-col[i]) > 1e-9 {
				t.Fatalf("SolveMat col %d row %d: %g vs %g", j, i, got.At(i, j), col[i])
			}
		}
	}
}

// GenCholesky must be bitwise-identical at any worker count and equal to the
// sequential Cholesky on the same tree — for the deterministic SVD
// compressor and the per-block-seeded randomized one alike.
func TestGenCholeskyDeterministicAcrossWorkers(t *testing.T) {
	n := 300
	k, pts, _ := testSetup(t, n)
	for _, comp := range []tlr.Compressor{tlr.SVDCompressor{}, tlr.RSVDCompressor{Seed: 42}} {
		run := func(workers int) (*Matrix, float64) {
			m := NewTree(n, 32, 1e-9)
			spec := &GenSpec{K: k, Pts: pts, Metric: geom.Euclidean, Nugget: 1e-8, Comp: comp}
			if err := GenCholesky(m, spec, workers); err != nil {
				t.Fatalf("%s workers=%d: %v", comp.Name(), workers, err)
			}
			return m, m.LogDet()
		}
		m1, ld1 := run(1)
		m8, ld8 := run(8)
		if ld1 != ld8 {
			t.Fatalf("%s: logdet drifts with workers: %.17g vs %.17g", comp.Name(), ld1, ld8)
		}
		r := rng.New(13)
		b := make([]float64, n)
		r.NormSlice(b)
		b1 := append([]float64(nil), b...)
		b8 := append([]float64(nil), b...)
		m1.Solve(b1)
		m8.Solve(b8)
		for i := range b1 {
			if b1[i] != b8[i] {
				t.Fatalf("%s: solve drifts with workers at %d: %.17g vs %.17g", comp.Name(), i, b1[i], b8[i])
			}
		}
	}
}

// Re-executing the cached assembly+factorization graph with a new θ must
// equal a fresh single-shot factorization bitwise — the graph-reuse contract
// core's evaluator depends on.
func TestGenGraphReuseAcrossTheta(t *testing.T) {
	n := 256
	_, pts, _ := testSetup(t, n)
	thetas := []cov.Params{
		{Variance: 1, Range: 0.1, Smoothness: 0.5},
		{Variance: 2.5, Range: 0.05, Smoothness: 1.5},
		{Variance: 1, Range: 0.1, Smoothness: 0.5}, // revisit the first point
	}
	m := NewTree(n, 32, 1e-9)
	spec := &GenSpec{Pts: pts, Metric: geom.Euclidean, Comp: tlr.RSVDCompressor{Seed: 7}}
	g := BuildGenCholeskyGraph(m, spec, true)
	for _, th := range thetas {
		spec.K = cov.NewKernel(th)
		spec.Nugget = 1e-8
		if err := g.Execute(runtime.ExecOptions{Workers: 4}); err != nil {
			t.Fatalf("reused graph θ=%v: %v", th, err)
		}
		reused := m.LogDet()

		fresh := NewTree(n, 32, 1e-9)
		fspec := &GenSpec{K: spec.K, Pts: pts, Metric: geom.Euclidean, Nugget: 1e-8, Comp: tlr.RSVDCompressor{Seed: 7}}
		if err := GenCholesky(fresh, fspec, 4); err != nil {
			t.Fatal(err)
		}
		if want := fresh.LogDet(); reused != want {
			t.Fatalf("θ=%v: reused graph logdet %.17g vs fresh %.17g", th, reused, want)
		}
	}
}

// A numerically non-SPD assembly must surface la.ErrNotPositiveDefinite
// through the task execution (wrapped), for both the sequential and the
// graph path.
func TestCholeskyBreakdownError(t *testing.T) {
	n := 128
	_, pts, _ := testSetup(t, n)
	// Huge range makes all correlations ≈1 with no nugget: numerically
	// singular.
	k := cov.NewKernel(cov.Params{Variance: 1, Range: 1e8, Smoothness: 0.5})

	m := Build(k, pts, geom.Euclidean, 32, 1e-12, tlr.SVDCompressor{}, 0)
	err := m.Cholesky()
	if err == nil {
		t.Skip("near-singular Σ unexpectedly factored; cannot exercise breakdown")
	}
	if !errors.Is(err, la.ErrNotPositiveDefinite) {
		t.Fatalf("sequential breakdown not ErrNotPositiveDefinite: %v", err)
	}

	mg := NewTree(n, 32, 1e-12)
	spec := &GenSpec{K: k, Pts: pts, Metric: geom.Euclidean, Comp: tlr.SVDCompressor{}}
	gerr := GenCholesky(mg, spec, 4)
	if gerr == nil {
		t.Fatal("graph factorization of near-singular Σ succeeded while sequential failed")
	}
	if !errors.Is(gerr, la.ErrNotPositiveDefinite) {
		t.Fatalf("graph breakdown not ErrNotPositiveDefinite: %v", gerr)
	}
}

func TestRankStatsReportsCompression(t *testing.T) {
	k, pts, _ := testSetup(t, 256)
	m := Build(k, pts, geom.Euclidean, 32, 1e-6, tlr.SVDCompressor{}, 1e-8)
	if err := m.Cholesky(); err != nil {
		t.Fatal(err)
	}
	max, mean := m.RankStats()
	if max < 1 || max > 128 || mean <= 0 || mean > float64(max) {
		t.Fatalf("implausible rank stats: max %d mean %g", max, mean)
	}
}
