// Package hodlr implements a Hierarchically Off-Diagonal Low-Rank matrix —
// the recursive-partition alternative to the flat TLR format the paper's
// related-work section (§II) discusses. It exists as a comparison baseline:
// HODLR reaches better asymptotic compression on smooth kernels but carries
// a recursive tree structure that is harder to schedule on distributed
// machines, which is exactly the trade-off that led the paper to TLR.
//
// The package provides construction from a covariance kernel, storage
// accounting, matrix reconstruction, and fast matrix-vector products — the
// operations the format-comparison ablation needs.
package hodlr

import (
	"fmt"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/tlr"
)

// Matrix is a symmetric HODLR matrix over index range [0, N).
type Matrix struct {
	N        int
	LeafSize int
	Tol      float64
	root     *node
}

// node is one recursion level: either a dense leaf or a 2×2 split with a
// compressed off-diagonal block (symmetric: the (2,1) block is stored, the
// (1,2) block is its transpose).
type node struct {
	lo, hi int // global index range [lo, hi)
	// leaf
	dense *la.Mat
	// internal
	left, right *node
	off         *tlr.CompTile // rows = right range, cols = left range

	// schurS caches S = ṼᵀṼ, computed once by the panel solve of the
	// Cholesky factorization (factor.go) and consumed by every Schur update
	// the panel feeds. Nil before factorization and for dense/rank-0 panels.
	schurS *la.Mat
}

// nodes appends every node of the subtree in pre-order (self, left, right) —
// the deterministic enumeration the factorization uses for Schur-update
// targets and the task graph uses for handle layout.
func (n *node) nodes(out []*node) []*node {
	out = append(out, n)
	if n.left != nil {
		out = n.left.nodes(out)
		out = n.right.nodes(out)
	}
	return out
}

// Build assembles a HODLR representation of Σ(θ) over pts with the given
// accuracy and leaf size, compressing each off-diagonal block with comp.
func Build(k *cov.Kernel, pts []geom.Point, metric geom.Metric, leafSize int, tol float64, comp tlr.Compressor, nugget float64) *Matrix {
	if leafSize < 2 {
		panic("hodlr: leaf size must be at least 2")
	}
	m := &Matrix{N: len(pts), LeafSize: leafSize, Tol: tol}
	m.root = build(k, pts, metric, 0, len(pts), leafSize, tol, comp, nugget)
	return m
}

func build(k *cov.Kernel, pts []geom.Point, metric geom.Metric, lo, hi, leaf int, tol float64, comp tlr.Compressor, nugget float64) *node {
	n := &node{lo: lo, hi: hi}
	size := hi - lo
	if size <= leaf {
		d := la.NewMat(size, size)
		k.Block(d, pts[lo:hi], pts[lo:hi], metric)
		for a := 0; a < size; a++ {
			d.Set(a, a, d.At(a, a)+nugget)
		}
		n.dense = d
		return n
	}
	mid := lo + size/2
	n.left = build(k, pts, metric, lo, mid, leaf, tol, comp, nugget)
	n.right = build(k, pts, metric, mid, hi, leaf, tol, comp, nugget)
	block := la.NewMat(hi-mid, mid-lo)
	k.Block(block, pts[mid:hi], pts[lo:mid], metric)
	n.off = comp.Compress(block, tol)
	return n
}

// Bytes returns the storage footprint.
func (m *Matrix) Bytes() int64 { return m.root.bytes() }

func (n *node) bytes() int64 {
	if n.dense != nil {
		return int64(n.dense.Rows) * int64(n.dense.Cols) * 8
	}
	return n.left.bytes() + n.right.bytes() + n.off.Bytes()
}

// MaxRank returns the largest off-diagonal rank in the tree.
func (m *Matrix) MaxRank() int { return m.root.maxRank() }

func (n *node) maxRank() int {
	if n.dense != nil {
		return 0
	}
	k := n.off.Rank()
	if l := n.left.maxRank(); l > k {
		k = l
	}
	if r := n.right.maxRank(); r > k {
		k = r
	}
	return k
}

// Levels returns the depth of the recursion tree.
func (m *Matrix) Levels() int { return m.root.depth() }

func (n *node) depth() int {
	if n.dense != nil {
		return 1
	}
	l, r := n.left.depth(), n.right.depth()
	if r > l {
		l = r
	}
	return l + 1
}

// Dense reconstructs the full symmetric matrix (testing).
func (m *Matrix) Dense() *la.Mat {
	out := la.NewMat(m.N, m.N)
	m.root.fill(out)
	return out
}

func (n *node) fill(out *la.Mat) {
	if n.dense != nil {
		for a := 0; a < n.dense.Rows; a++ {
			for b := 0; b < n.dense.Cols; b++ {
				out.Set(n.lo+a, n.lo+b, n.dense.At(a, b))
			}
		}
		return
	}
	n.left.fill(out)
	n.right.fill(out)
	blk := n.off.Dense()
	mid := n.left.hi
	for a := 0; a < blk.Rows; a++ {
		for b := 0; b < blk.Cols; b++ {
			out.Set(mid+a, n.lo+b, blk.At(a, b))
			out.Set(n.lo+b, mid+a, blk.At(a, b))
		}
	}
}

// MatVec computes y += alpha·A·x in O(k·n·log n) using the tree.
func (m *Matrix) MatVec(alpha float64, x, y []float64) {
	if len(x) != m.N || len(y) != m.N {
		panic(fmt.Sprintf("hodlr: matvec dims %d/%d for n=%d", len(x), len(y), m.N))
	}
	m.root.matvec(alpha, x, y)
}

func (n *node) matvec(alpha float64, x, y []float64) {
	if n.dense != nil {
		la.Gemv(alpha, n.dense, la.NoTrans, x[n.lo:n.hi], 1, y[n.lo:n.hi])
		return
	}
	mid := n.left.hi
	n.left.matvec(alpha, x, y)
	n.right.matvec(alpha, x, y)
	// off block: rows [mid,hi) × cols [lo,mid), plus its symmetric mirror
	tlr.MatVec(n.off, alpha, x[n.lo:mid], y[mid:n.hi])
	tlr.MatVecT(n.off, alpha, x[mid:n.hi], y[n.lo:mid])
}
