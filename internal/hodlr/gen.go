// HODLR assembly + factorization as runtime tasks. Each tree node owns one
// data handle: a leaf's dense diagonal block, or an internal node's
// compressed off-diagonal block (plus its cached Schur kernel). Assembly
// tasks write every handle; the Cholesky tasks — leaf POTRF, per-panel
// solve, per-descendant Schur update — are inserted in the exact order the
// sequential recursion (factor.go) performs them, so the runtime's
// sequential-consistency dependency inference reproduces the recursion's
// data flow and the factorization is bitwise-identical at any worker count.
package hodlr

import (
	"fmt"
	"sync"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/tile"
	"repro/internal/tlr"
)

var (
	cntDcmgHODLR = obs.GetCounter("hodlr.dcmg.calls")
	cntCompressH = obs.GetCounter("hodlr.compress.calls")
	histRankH    = obs.GetHistogram("hodlr.compress.rank")
)

// snapPool recycles leaf-block snapshot buffers for the retry path.
var snapPool sync.Pool

func snapBuf(n int) []float64 {
	if v := snapPool.Get(); v != nil {
		if b := v.([]float64); cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

func putSnapBuf(b []float64) { snapPool.Put(b) } //nolint:staticcheck // slice header churn is negligible here

// NewTree allocates the HODLR shell for n points: the recursion tree with
// leaf blocks preallocated (zero) and off-diagonal blocks empty. Executing a
// GenSpec graph fills it; re-executing with an updated spec refills it in
// place — the reuse pattern core's likelihood evaluator drives once per
// optimizer iteration.
func NewTree(n, leafSize int, tol float64) *Matrix {
	if leafSize < 2 {
		panic("hodlr: leaf size must be at least 2")
	}
	m := &Matrix{N: n, LeafSize: leafSize, Tol: tol}
	m.root = newTree(0, n, leafSize)
	return m
}

func newTree(lo, hi, leaf int) *node {
	n := &node{lo: lo, hi: hi}
	if hi-lo <= leaf {
		n.dense = la.NewMat(hi-lo, hi-lo)
		return n
	}
	mid := lo + (hi-lo)/2
	n.left = newTree(lo, mid, leaf)
	n.right = newTree(mid, hi, leaf)
	return n
}

// GenSpec carries the inputs of HODLR covariance assembly. As with
// tlr.GenSpec, task closures read the fields when they RUN: callers that
// cache the assembly+factorization graph swap in a new Kernel and Nugget
// between executions and re-run the same graph. Pts, Metric and Comp must
// stay fixed for the graph's lifetime.
type GenSpec struct {
	K      *cov.Kernel
	Pts    []geom.Point
	Metric geom.Metric
	Nugget float64
	// Comp compresses the off-diagonal blocks. Stochastic backends
	// implementing tlr.TileCompressor are re-seeded per block (keyed by the
	// block's index range), keeping results bitwise-identical at any worker
	// count.
	Comp tlr.Compressor
}

// compressorFor resolves the compressor instance for the off block of node
// n: per-block seeded for stochastic backends, spec.Comp otherwise. The
// (lo, hi) range is unique per node, giving every block its own stream.
func (s *GenSpec) compressorFor(n *node) tlr.Compressor {
	if tc, ok := s.Comp.(tlr.TileCompressor); ok {
		return tc.ForTile(n.lo, n.hi)
	}
	return s.Comp
}

// nominalRank is the rank assumed for costing factorization tasks before
// assembly has run (actual ranks are a run-time quantity).
const nominalRank = 16

// flopsCompressH estimates the cost of compressing an r×c block.
func flopsCompressH(r, c int) float64 {
	return 2 * float64(r) * float64(c) * float64(min(r, c))
}

// BuildGenCholeskyGraph builds the combined assembly + factorization DAG
// over m's tree. When bind is true the tasks mutate m in place; a structural
// graph (bind false) carries only costs, for the simulated executors. The
// graph is re-executable: each run regenerates every block from the (possibly
// updated) spec and refactors, leaving m holding the Cholesky factor.
func BuildGenCholeskyGraph(m *Matrix, spec *GenSpec, bind bool) *runtime.Graph {
	g := runtime.NewGraph()
	all := m.root.nodes(nil)
	total := len(all)
	h := make(map[*node]*runtime.Handle, total)

	for idx, n := range all {
		idx, n := idx, n
		if n.dense != nil {
			sz := int64(n.hi - n.lo)
			hd := g.NewHandle(fmt.Sprintf("L[%d,%d)", n.lo, n.hi), sz*sz*8, int64(idx))
			hd.SnapshotFn = func() (restore, release func()) {
				d := n.dense
				cnt := d.Rows * d.Stride
				buf := snapBuf(cnt)
				copy(buf, d.Data[:cnt])
				return func() {
						copy(d.Data[:cnt], buf)
						putSnapBuf(buf)
					}, func() {
						putSnapBuf(buf)
					}
			}
			h[n] = hd
			continue
		}
		var bytes int64
		if n.off != nil {
			bytes = n.off.Bytes()
		}
		ho := g.NewHandle(fmt.Sprintf("B[%d,%d)", n.lo, n.hi), bytes, int64(idx))
		ho.SnapshotFn = func() (restore, release func()) {
			var off *tlr.CompTile
			if n.off != nil {
				off = n.off.Clone()
			}
			var s *la.Mat
			if n.schurS != nil {
				s = n.schurS.Clone()
			}
			return func() { n.off, n.schurS = off, s }, func() {}
		}
		h[n] = ho
	}

	// Assembly: one Write task per handle. Leaves regenerate in place; off
	// blocks materialize densely, compress, and replace the tile wholesale
	// (refreshing the handle's byte count with the new rank's footprint).
	for idx, n := range all {
		idx, n := idx, n
		if n.dense != nil {
			var run func()
			if bind {
				run = func() {
					cntDcmgHODLR.Inc()
					r := spec.Pts[n.lo:n.hi]
					spec.K.Block(n.dense, r, r, spec.Metric)
					if spec.Nugget != 0 {
						for a := 0; a < n.dense.Rows; a++ {
							n.dense.Set(a, a, n.dense.At(a, a)+spec.Nugget)
						}
					}
				}
			}
			g.AddTask(runtime.Task{
				Name:     "hdcmg",
				Flops:    tile.FlopsDCMG(n.hi-n.lo, n.hi-n.lo),
				Priority: 4 * (total - idx),
				Run:      run,
				Accesses: []runtime.Access{{Handle: h[n], Mode: runtime.Write}},
			})
			continue
		}
		mid := n.left.hi
		rows, cols := n.hi-mid, mid-n.lo
		var run func()
		if bind {
			run = func() {
				cntDcmgHODLR.Inc()
				block := la.NewMat(rows, cols)
				spec.K.Block(block, spec.Pts[mid:n.hi], spec.Pts[n.lo:mid], spec.Metric)
				t := spec.compressorFor(n).Compress(block, m.Tol)
				cntCompressH.Inc()
				histRankH.Observe(int64(t.Rank()))
				n.off = t
				n.schurS = nil
				h[n].SetBytes(t.Bytes())
			}
		}
		g.AddTask(runtime.Task{
			Name:     "hdcmg+comp",
			Flops:    tile.FlopsDCMG(rows, cols) + flopsCompressH(rows, cols),
			Priority: 4 * (total - idx),
			Run:      run,
			Accesses: []runtime.Access{{Handle: h[n], Mode: runtime.Write}},
		})
	}

	// Factorization: tasks inserted in the sequential recursion's order, so
	// handle-access inference rebuilds its exact data flow.
	var emit func(n *node)
	emit = func(n *node) {
		if n.dense != nil {
			var run func()
			if bind {
				run = func() {
					if err := n.potrf(); err != nil {
						panic(err)
					}
				}
			}
			g.AddTask(runtime.Task{
				Name:     "hpotrf",
				Flops:    tile.FlopsPOTRF(n.hi - n.lo),
				Priority: 3,
				Run:      run,
				Accesses: []runtime.Access{{Handle: h[n], Mode: runtime.ReadWrite}},
			})
			return
		}
		emit(n.left)
		mid := n.left.hi
		// Panel: Ṽ = L11⁻¹·V reads every block of the factored left subtree.
		acc := []runtime.Access{{Handle: h[n], Mode: runtime.ReadWrite}}
		for _, l := range n.left.nodes(nil) {
			acc = append(acc, runtime.Access{Handle: h[l], Mode: runtime.Read})
		}
		var runP func()
		if bind {
			runP = func() { n.factorPanel() }
		}
		g.AddTask(runtime.Task{
			Name:     "hpanel",
			Flops:    tile.FlopsTRSM(mid-n.lo, nominalRank),
			Priority: 2,
			Run:      runP,
			Accesses: acc,
		})
		// One Schur task per right-subtree node; distinct targets are
		// independent and run concurrently, same-target updates from nested
		// panels serialize in recursion order via the ReadWrite access.
		for _, d := range n.right.nodes(nil) {
			d := d
			var runS func()
			if bind {
				runS = func() { n.applySchur(d, m.Tol) }
			}
			g.AddTask(runtime.Task{
				Name:     "hschur",
				Flops:    2 * float64(d.hi-d.lo) * float64(d.hi-d.lo) * nominalRank,
				Priority: 1,
				Run:      runS,
				Accesses: []runtime.Access{
					{Handle: h[n], Mode: runtime.Read},
					{Handle: h[d], Mode: runtime.ReadWrite},
				},
			})
		}
		emit(n.right)
	}
	emit(m.root)
	return g
}

// GenCholesky assembles Σ(θ) into m and factors it in place in a single
// task-graph execution. It returns la.ErrNotPositiveDefinite (wrapped) if a
// leaf pivot fails; the result is bitwise-identical to the sequential
// m.Cholesky() at any worker count.
func GenCholesky(m *Matrix, spec *GenSpec, workers int) error {
	g := BuildGenCholeskyGraph(m, spec, true)
	return g.Execute(runtime.ExecOptions{Workers: workers})
}
