package hodlr

import (
	"math"
	"testing"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/rng"
	"repro/internal/tlr"
)

func testSetup(t *testing.T, n int) (*cov.Kernel, []geom.Point, *la.Mat) {
	t.Helper()
	r := rng.New(5)
	pts := geom.GeneratePerturbedGrid(n, r)
	pts = geom.ApplyPerm(pts, geom.MortonOrder(pts))
	k := cov.NewKernel(cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5})
	dense := la.NewMat(n, n)
	k.Matrix(dense, pts, geom.Euclidean)
	return k, pts, dense
}

func TestBuildReconstruction(t *testing.T) {
	for _, n := range []int{64, 100, 256} {
		k, pts, dense := testSetup(t, n)
		m := Build(k, pts, geom.Euclidean, 32, 1e-8, tlr.SVDCompressor{}, 0)
		rec := m.Dense()
		diff := rec.Clone()
		diff.Sub(dense)
		if rel := diff.FrobNorm() / dense.FrobNorm(); rel > 1e-6 {
			t.Fatalf("n=%d: reconstruction error %g", n, rel)
		}
	}
}

func TestAccuracyControlsError(t *testing.T) {
	k, pts, dense := testSetup(t, 200)
	prev := math.Inf(1)
	for _, tol := range []float64{1e-2, 1e-5, 1e-9} {
		m := Build(k, pts, geom.Euclidean, 25, tol, tlr.SVDCompressor{}, 0)
		diff := m.Dense()
		diff.Sub(dense)
		rel := diff.FrobNorm() / dense.FrobNorm()
		if rel > prev*1.5 {
			t.Fatalf("error did not improve with accuracy: %g -> %g", prev, rel)
		}
		prev = rel
	}
	if prev > 1e-7 {
		t.Fatalf("tightest accuracy error %g", prev)
	}
}

func TestTreeStructure(t *testing.T) {
	k, pts, _ := testSetup(t, 256)
	m := Build(k, pts, geom.Euclidean, 32, 1e-6, tlr.SVDCompressor{}, 0)
	// 256 → 128 → 64 → 32: 4 levels
	if m.Levels() != 4 {
		t.Fatalf("levels = %d, want 4", m.Levels())
	}
	if m.MaxRank() < 1 || m.MaxRank() > 128 {
		t.Fatalf("max rank %d implausible", m.MaxRank())
	}
}

func TestCompressionBeatsDense(t *testing.T) {
	k, pts, _ := testSetup(t, 400)
	m := Build(k, pts, geom.Euclidean, 50, 1e-5, tlr.SVDCompressor{}, 0)
	denseBytes := int64(400 * 400 * 8)
	if m.Bytes() >= denseBytes {
		t.Fatalf("no compression: %d vs %d", m.Bytes(), denseBytes)
	}
}

func TestMatVecMatchesDense(t *testing.T) {
	k, pts, dense := testSetup(t, 150)
	m := Build(k, pts, geom.Euclidean, 20, 1e-10, tlr.SVDCompressor{}, 0)
	r := rng.New(6)
	x := make([]float64, 150)
	r.NormSlice(x)
	got := make([]float64, 150)
	m.MatVec(1.5, x, got)
	want := make([]float64, 150)
	la.Gemv(1.5, dense, la.NoTrans, x, 0, want)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-7 {
			t.Fatalf("matvec mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestNuggetOnLeaves(t *testing.T) {
	k, pts, dense := testSetup(t, 64)
	m := Build(k, pts, geom.Euclidean, 16, 1e-10, tlr.SVDCompressor{}, 0.5)
	rec := m.Dense()
	for i := 0; i < 64; i++ {
		if math.Abs(rec.At(i, i)-(dense.At(i, i)+0.5)) > 1e-9 {
			t.Fatalf("nugget missing at %d", i)
		}
	}
}

func TestMatVecDimsPanic(t *testing.T) {
	k, pts, _ := testSetup(t, 64)
	m := Build(k, pts, geom.Euclidean, 16, 1e-6, tlr.SVDCompressor{}, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	m.MatVec(1, make([]float64, 10), make([]float64, 64))
}

// The comparison the related-work section motivates: at equal accuracy on a
// smooth kernel, HODLR's top-level blocks exploit more structure, but TLR
// remains competitive — both far below dense storage.
func TestHODLRvsTLRStorage(t *testing.T) {
	k, pts, _ := testSetup(t, 512)
	h := Build(k, pts, geom.Euclidean, 64, 1e-6, tlr.SVDCompressor{}, 0)
	tl := tlr.FromKernel(k, pts, geom.Euclidean, 512, 64, 1e-6, tlr.SVDCompressor{}, 0, 1)
	denseBytes := int64(512 * 512 * 8)
	if h.Bytes() >= denseBytes || tl.Bytes() >= denseBytes {
		t.Fatalf("formats failed to compress: hodlr %d tlr %d dense %d", h.Bytes(), tl.Bytes(), denseBytes)
	}
	t.Logf("storage at 1e-6: dense %d, TLR %d, HODLR %d", denseBytes, tl.Bytes(), h.Bytes())
}
