package cov

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/rng"
)

func TestModelByName(t *testing.T) {
	for _, name := range []string{"matern", "powexp", "gaussian", "spherical"} {
		m, err := ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != name {
			t.Fatalf("round trip failed: %q -> %v", name, m)
		}
	}
	if m, err := ModelByName(""); err != nil || m != Matern {
		t.Fatal("empty name should default to Matérn")
	}
	if _, err := ModelByName("cauchy"); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestModelValidation(t *testing.T) {
	if err := PoweredExponential.ValidateFor(Params{1, 0.1, 2.5}); err == nil {
		t.Fatal("powexp with θ3 > 2 should fail")
	}
	if err := PoweredExponential.ValidateFor(Params{1, 0.1, 1.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewModelKernel(GaussianModel, Params{0, 1, 1}); err == nil {
		t.Fatal("invalid params should fail for any model")
	}
}

func TestPoweredExponentialValues(t *testing.T) {
	k, err := NewModelKernel(PoweredExponential, Params{Variance: 2, Range: 0.5, Smoothness: 1})
	if err != nil {
		t.Fatal(err)
	}
	// θ3 = 1 reduces to exponential
	for _, r := range []float64{0.1, 0.5, 2} {
		want := 2 * math.Exp(-r/0.5)
		if math.Abs(k.At(r)-want) > 1e-14 {
			t.Fatalf("powexp(θ3=1) at r=%g: %g want %g", r, k.At(r), want)
		}
	}
	// θ3 = 2 reduces to Gaussian
	k2, _ := NewModelKernel(PoweredExponential, Params{Variance: 1, Range: 0.5, Smoothness: 2})
	kg, _ := NewModelKernel(GaussianModel, Params{Variance: 1, Range: 0.5, Smoothness: 1})
	for _, r := range []float64{0.1, 0.4, 1} {
		if math.Abs(k2.At(r)-kg.At(r)) > 1e-14 {
			t.Fatalf("powexp(2) should equal gaussian at r=%g", r)
		}
	}
}

func TestSphericalCompactSupport(t *testing.T) {
	k, err := NewModelKernel(Spherical, Params{Variance: 1, Range: 0.3, Smoothness: 1})
	if err != nil {
		t.Fatal(err)
	}
	if k.At(0) != 1 {
		t.Fatal("C(0) must equal variance")
	}
	if k.At(0.31) != 0 || k.At(5) != 0 {
		t.Fatal("spherical must vanish beyond the range")
	}
	if k.At(0.15) <= 0 || k.At(0.15) >= 1 {
		t.Fatalf("interior value implausible: %g", k.At(0.15))
	}
	// monotone decreasing on [0, range]
	prev := k.At(0)
	for r := 0.02; r < 0.3; r += 0.02 {
		v := k.At(r)
		if v > prev {
			t.Fatalf("spherical not decreasing at r=%g", r)
		}
		prev = v
	}
}

func TestAllModelsSPD(t *testing.T) {
	r := rng.New(31)
	pts := geom.GeneratePerturbedGrid(49, r)
	for _, model := range []Model{Matern, PoweredExponential, GaussianModel, Spherical} {
		p := Params{Variance: 1, Range: 0.15, Smoothness: 0.8}
		if model == PoweredExponential {
			p.Smoothness = 1.5
		}
		k, err := NewModelKernel(model, p)
		if err != nil {
			t.Fatal(err)
		}
		sigma := la.NewMat(49, 49)
		k.Matrix(sigma, pts, geom.Euclidean)
		AddNugget(sigma, 1e-8)
		if err := la.Potrf(sigma); err != nil {
			t.Errorf("model %v covariance not SPD: %v", model, err)
		}
	}
}

func TestMaternKernelDefaultModel(t *testing.T) {
	k := NewKernel(Params{Variance: 1, Range: 0.1, Smoothness: 0.5})
	if k.Model() != Matern {
		t.Fatal("NewKernel should default to the Matérn family")
	}
	km, err := NewModelKernel(Matern, Params{Variance: 1, Range: 0.1, Smoothness: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []float64{0, 0.05, 0.2, 1} {
		if k.At(r) != km.At(r) {
			t.Fatal("NewModelKernel(Matern) must match NewKernel")
		}
	}
}

func TestChordalMetricSPDSmoothMatern(t *testing.T) {
	// Matérn with ν = 2.5 under the chordal metric stays SPD on the sphere
	// (the motivation for the Chordal option).
	r := rng.New(32)
	pts := make([]geom.Point, 36)
	for i := range pts {
		pts[i] = geom.Point{X: r.Uniform(-180, 180), Y: r.Uniform(-85, 85)}
	}
	k := NewKernel(Params{Variance: 1, Range: 0.4, Smoothness: 2.5})
	sigma := la.NewMat(36, 36)
	k.Matrix(sigma, pts, geom.Chordal)
	AddNugget(sigma, 1e-10)
	if err := la.Potrf(sigma); err != nil {
		t.Fatalf("chordal Matérn(2.5) not SPD: %v", err)
	}
}
