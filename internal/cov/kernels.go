package cov

import (
	"fmt"
	"math"
	"sort"
)

// Model identifies a parametric covariance family. The Matérn family is the
// paper's model; the others are the classical geostatistics alternatives the
// ExaGeoStat framework also ships, provided here for model comparison.
type Model int

// Covariance families.
const (
	// Matern is C(r) = θ₁·2^{1−θ₃}/Γ(θ₃)·(r/θ₂)^{θ₃}·K_{θ₃}(r/θ₂).
	Matern Model = iota
	// PoweredExponential is C(r) = θ₁·exp(−(r/θ₂)^{θ₃}), θ₃ ∈ (0, 2].
	PoweredExponential
	// GaussianModel is C(r) = θ₁·exp(−(r/θ₂)²) (the θ₃ → ∞ Matérn limit;
	// θ₃ is ignored).
	GaussianModel
	// Spherical is compactly supported:
	// C(r) = θ₁·(1 − 1.5·(r/θ₂) + 0.5·(r/θ₂)³) for r < θ₂, else 0
	// (θ₃ ignored). Compact support yields exactly sparse far tiles.
	Spherical
)

var modelNames = map[string]Model{
	"matern":    Matern,
	"powexp":    PoweredExponential,
	"gaussian":  GaussianModel,
	"spherical": Spherical,
}

// ModelByName resolves a model name ("matern", "powexp", "gaussian",
// "spherical").
func ModelByName(name string) (Model, error) {
	if name == "" {
		return Matern, nil
	}
	if m, ok := modelNames[name]; ok {
		return m, nil
	}
	var names []string
	for n := range modelNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return 0, fmt.Errorf("cov: unknown model %q (have %v)", name, names)
}

func (m Model) String() string {
	for n, v := range modelNames {
		if v == m {
			return n
		}
	}
	return fmt.Sprintf("model(%d)", int(m))
}

// ValidateFor checks p against the constraints of the model.
func (m Model) ValidateFor(p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if m == PoweredExponential && p.Smoothness > 2 {
		return fmt.Errorf("cov: powered exponential requires θ₃ ≤ 2, got %g", p.Smoothness)
	}
	return nil
}

// NewModelKernel builds a kernel for any supported family. Matérn uses the
// optimized Kernel path; the others share the same At/Block/Matrix surface.
func NewModelKernel(m Model, p Params) (*Kernel, error) {
	if err := m.ValidateFor(p); err != nil {
		return nil, err
	}
	k := NewKernel(p)
	k.model = m
	return k, nil
}

// modelAt dispatches the non-Matérn families.
func (k *Kernel) modelAt(r float64) float64 {
	if r <= 0 {
		return k.P.Variance
	}
	s := r / k.P.Range
	switch k.model {
	case PoweredExponential:
		return k.P.Variance * math.Exp(-math.Pow(s, k.P.Smoothness))
	case GaussianModel:
		return k.P.Variance * math.Exp(-s*s)
	case Spherical:
		if s >= 1 {
			return 0
		}
		return k.P.Variance * (1 - 1.5*s + 0.5*s*s*s)
	default:
		panic(fmt.Sprintf("cov: unhandled model %v", k.model))
	}
}
