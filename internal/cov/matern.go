// Package cov implements the Matérn covariance family (paper §IV) and the
// construction of covariance matrices, tiles, and cross-covariance blocks
// from spatial locations. It also samples zero-mean Gaussian random fields
// with a given Matérn covariance, which is how synthetic truth data are
// produced (paper §VIII-D1).
package cov

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/bessel"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/rng"
)

// Params is the Matérn parameter vector θ = (θ₁, θ₂, θ₃):
// variance, spatial range, and smoothness (paper eq. 5).
type Params struct {
	Variance   float64 // θ₁ > 0
	Range      float64 // θ₂ > 0
	Smoothness float64 // θ₃ > 0
}

// Validate returns an error unless all three parameters are positive and
// finite.
func (p Params) Validate() error {
	for _, v := range []float64{p.Variance, p.Range, p.Smoothness} {
		if !(v > 0) || math.IsInf(v, 0) || math.IsNaN(v) {
			return fmt.Errorf("cov: invalid Matérn parameters %+v: %w", p, errNonPositive)
		}
	}
	return nil
}

var errNonPositive = errors.New("all parameters must be positive and finite")

func (p Params) String() string {
	return fmt.Sprintf("(θ1=%.4g, θ2=%.4g, θ3=%.4g)", p.Variance, p.Range, p.Smoothness)
}

// Kernel evaluates the Matérn covariance C(r; θ) at distance r ≥ 0:
//
//	C(r) = θ₁ · 2^{1−θ₃}/Γ(θ₃) · (r/θ₂)^{θ₃} · K_{θ₃}(r/θ₂),  C(0) = θ₁.
//
// The half-integer smoothness values that dominate geostatistical practice
// use their closed forms (exponential for ν = ½, ν = 3∕2, ν = 5∕2, Whittle
// ν = 1 via Bessel); other orders go through the general Bessel-K path.
type Kernel struct {
	P Params
	// precomputed 2^{1-nu}/Gamma(nu)
	norm float64
	// model selects the covariance family (Matern by default; see
	// NewModelKernel for the alternatives).
	model Model
}

// NewKernel builds a Matérn kernel, precomputing the Γ normalization.
func NewKernel(p Params) *Kernel {
	nu := p.Smoothness
	return &Kernel{P: p, norm: math.Exp((1-nu)*math.Ln2 - bessel.LogGamma(nu))}
}

// Model reports the kernel's covariance family.
func (k *Kernel) Model() Model { return k.model }

// At returns C(r; θ).
func (k *Kernel) At(r float64) float64 {
	if k.model != Matern {
		return k.modelAt(r)
	}
	if r <= 0 {
		return k.P.Variance
	}
	s := r / k.P.Range
	nu := k.P.Smoothness
	switch nu {
	case 0.5:
		// exponential model: θ1 exp(−r/θ2)
		return k.P.Variance * math.Exp(-s)
	case 1.5:
		return k.P.Variance * (1 + s) * math.Exp(-s)
	case 2.5:
		return k.P.Variance * (1 + s + s*s/3) * math.Exp(-s)
	}
	// General case. For large s the product underflows to 0, which is the
	// correct limit. Use the scaled Bessel to avoid premature underflow.
	if s > 600 {
		return 0
	}
	v := k.P.Variance * k.norm * math.Pow(s, nu) * math.Exp(-s) * bessel.KScaled(nu, s)
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// Correlation returns C(r)/θ₁ ∈ (0, 1].
func (k *Kernel) Correlation(r float64) float64 { return k.At(r) / k.P.Variance }

// Matrix fills dst (n×n) with Σ_ij = C(d(p_i, p_j); θ) for the locations pts
// under metric m. dst must be n×n with n = len(pts). Only full symmetric
// assembly is provided; the tile generators below cover submatrix assembly.
func (k *Kernel) Matrix(dst *la.Mat, pts []geom.Point, m geom.Metric) {
	n := len(pts)
	if dst.Rows != n || dst.Cols != n {
		panic(fmt.Sprintf("cov: matrix dims %dx%d for %d points", dst.Rows, dst.Cols, n))
	}
	for i := 0; i < n; i++ {
		dst.Set(i, i, k.P.Variance)
		for j := 0; j < i; j++ {
			v := k.At(geom.Distance(m, pts[i], pts[j]))
			dst.Set(i, j, v)
			dst.Set(j, i, v)
		}
	}
}

// MatrixParallel fills dst exactly like Matrix but splits the lower-triangle
// rows across worker goroutines — the FullBlock analogue of the per-tile
// dcmg generation tasks (paper's "parallel for" matrix generation). Rows are
// handed out in small chunks through an atomic cursor so the triangular cost
// profile (row i costs ~i kernel evaluations) load-balances dynamically.
// Each element (and its mirror) is written by exactly one goroutine, so the
// workers never contend. workers < 2 or small n falls back to the
// sequential path.
func (k *Kernel) MatrixParallel(dst *la.Mat, pts []geom.Point, m geom.Metric, workers int) {
	n := len(pts)
	if dst.Rows != n || dst.Cols != n {
		panic(fmt.Sprintf("cov: matrix dims %dx%d for %d points", dst.Rows, dst.Cols, n))
	}
	const chunk = 16
	if workers < 2 || n < 4*chunk {
		k.Matrix(dst, pts, m)
		return
	}
	var (
		next int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := atomic.AddInt64(&next, 1) - 1
				lo := int(c) * chunk
				if lo >= n {
					return
				}
				hi := min(lo+chunk, n)
				for i := lo; i < hi; i++ {
					dst.Set(i, i, k.P.Variance)
					row := dst.Row(i)
					pi := pts[i]
					for j := 0; j < i; j++ {
						v := k.At(geom.Distance(m, pi, pts[j]))
						row[j] = v
						dst.Set(j, i, v)
					}
				}
			}
		}()
	}
	wg.Wait()
}

// Block fills dst (len(rows)×len(cols)) with the cross-covariance between
// two location subsets: dst[a][b] = C(d(rowPts[a], colPts[b])). This is the
// tile/cross-block generation kernel (the "matrix generation" task of
// ExaGeoStat) used by both the tiled dense and the TLR paths.
func (k *Kernel) Block(dst *la.Mat, rowPts, colPts []geom.Point, m geom.Metric) {
	if dst.Rows != len(rowPts) || dst.Cols != len(colPts) {
		panic("cov: block dims mismatch")
	}
	for i, pi := range rowPts {
		row := dst.Row(i)
		for j, pj := range colPts {
			row[j] = k.At(geom.Distance(m, pi, pj))
		}
	}
}

// AddNugget adds a small positive value to the diagonal of an assembled
// covariance matrix. The paper works at machine precision with exact SPD
// kernels; a tiny nugget (e.g. 1e-10) keeps borderline matrices factorizable
// when locations nearly coincide.
func AddNugget(a *la.Mat, nugget float64) {
	n := a.Rows
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+nugget)
	}
}

// SampleField draws one realization Z ~ N(0, Σ(θ)) at the given locations by
// assembling Σ, factoring it (dense Cholesky at machine precision, as the
// paper does for data generation), and returning L·e with e ~ N(0, I).
// It returns an error if Σ is not numerically SPD.
func SampleField(k *Kernel, pts []geom.Point, m geom.Metric, r *rng.Rand) ([]float64, error) {
	l, err := FieldFactor(k, pts, m)
	if err != nil {
		return nil, err
	}
	return SampleFromFactor(l, r), nil
}

// FieldFactor assembles Σ(θ) for pts and returns its lower Cholesky factor.
// Callers drawing many replicates at fixed locations (Monte Carlo, paper
// §VIII-D1) factor once and call SampleFromFactor per replicate.
func FieldFactor(k *Kernel, pts []geom.Point, m geom.Metric) (*la.Mat, error) {
	n := len(pts)
	sigma := la.NewMat(n, n)
	k.Matrix(sigma, pts, m)
	AddNugget(sigma, 1e-12*k.P.Variance*float64(n))
	if err := la.Potrf(sigma); err != nil {
		return nil, fmt.Errorf("cov: covariance not SPD for θ=%v: %w", k.P, err)
	}
	return sigma, nil
}

// SampleFromFactor returns L·e with e ~ N(0, I) for a lower Cholesky factor.
func SampleFromFactor(l *la.Mat, r *rng.Rand) []float64 {
	n := l.Rows
	e := make([]float64, n)
	r.NormSlice(e)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		row := l.Row(i)
		var s float64
		for j := 0; j <= i && j < len(row); j++ {
			s += row[j] * e[j]
		}
		z[i] = s
	}
	return z
}
