package cov

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/rng"
)

func TestKernelAtZero(t *testing.T) {
	for _, nu := range []float64{0.3, 0.5, 1, 1.5, 2.5} {
		k := NewKernel(Params{Variance: 2.5, Range: 0.1, Smoothness: nu})
		if k.At(0) != 2.5 {
			t.Errorf("nu=%g: C(0) = %g, want variance", nu, k.At(0))
		}
	}
}

func TestKernelExponentialClosedForm(t *testing.T) {
	k := NewKernel(Params{Variance: 1, Range: 0.1, Smoothness: 0.5})
	for _, r := range []float64{0.01, 0.1, 0.5, 2} {
		want := math.Exp(-r / 0.1)
		if math.Abs(k.At(r)-want) > 1e-13 {
			t.Errorf("exponential mismatch at r=%g: %g vs %g", r, k.At(r), want)
		}
	}
}

// The closed forms must agree with the general Bessel path. We compare at a
// smoothness infinitesimally off the closed-form value.
func TestKernelClosedFormsMatchBesselPath(t *testing.T) {
	for _, nu := range []float64{0.5, 1.5, 2.5} {
		closed := NewKernel(Params{Variance: 1.3, Range: 0.2, Smoothness: nu})
		general := NewKernel(Params{Variance: 1.3, Range: 0.2, Smoothness: nu + 1e-9})
		for _, r := range []float64{0.01, 0.1, 0.3, 1, 3} {
			a, b := closed.At(r), general.At(r)
			if math.Abs(a-b) > 1e-6*math.Abs(a)+1e-12 {
				t.Errorf("nu=%g r=%g: closed %g vs general %g", nu, r, a, b)
			}
		}
	}
}

func TestKernelWhittleNu1(t *testing.T) {
	// Whittle: C(r) = θ1 (r/θ2) K_1(r/θ2). Spot value: s·K_1(s) at s=1
	// equals 0.6019072301972346.
	k := NewKernel(Params{Variance: 1, Range: 1, Smoothness: 1})
	want := 0.6019072301972346
	if math.Abs(k.At(1)-want) > 1e-12 {
		t.Errorf("Whittle at r=1: %g want %g", k.At(1), want)
	}
}

func TestKernelMonotoneDecay(t *testing.T) {
	for _, nu := range []float64{0.5, 1, 1.7} {
		k := NewKernel(Params{Variance: 1, Range: 0.1, Smoothness: nu})
		prev := k.At(0)
		for r := 0.001; r < 2; r *= 1.5 {
			v := k.At(r)
			if v > prev {
				t.Fatalf("nu=%g: kernel increased at r=%g", nu, r)
			}
			if v < 0 {
				t.Fatalf("nu=%g: kernel negative at r=%g", nu, r)
			}
			prev = v
		}
	}
}

func TestKernelRangeControlsDecay(t *testing.T) {
	// Larger range = stronger correlation at the same distance.
	weak := NewKernel(Params{Variance: 1, Range: 0.03, Smoothness: 0.5})
	strong := NewKernel(Params{Variance: 1, Range: 0.3, Smoothness: 0.5})
	if weak.Correlation(0.1) >= strong.Correlation(0.1) {
		t.Fatal("range parameter does not control correlation strength")
	}
}

func TestKernelLargeDistanceUnderflow(t *testing.T) {
	k := NewKernel(Params{Variance: 1, Range: 0.01, Smoothness: 0.8})
	v := k.At(100) // s = 10000
	if v != 0 && (v < 0 || v > 1e-300 || math.IsNaN(v)) {
		t.Fatalf("large distance should underflow cleanly, got %g", v)
	}
}

func TestValidate(t *testing.T) {
	good := Params{1, 0.1, 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{0, 0.1, 0.5},
		{1, -0.1, 0.5},
		{1, 0.1, 0},
		{math.NaN(), 0.1, 0.5},
		{1, math.Inf(1), 0.5},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v should be invalid", p)
		}
	}
}

func TestMatrixSymmetricSPD(t *testing.T) {
	r := rng.New(1)
	pts := geom.GeneratePerturbedGrid(64, r)
	k := NewKernel(Params{Variance: 1, Range: 0.1, Smoothness: 0.5})
	sigma := la.NewMat(64, 64)
	k.Matrix(sigma, pts, geom.Euclidean)
	for i := 0; i < 64; i++ {
		if sigma.At(i, i) != 1 {
			t.Fatal("diagonal must equal variance")
		}
		for j := 0; j < i; j++ {
			if sigma.At(i, j) != sigma.At(j, i) {
				t.Fatal("matrix not symmetric")
			}
		}
	}
	if err := la.Potrf(sigma.Clone()); err != nil {
		t.Fatalf("Matérn covariance not SPD: %v", err)
	}
}

func TestBlockMatchesMatrix(t *testing.T) {
	r := rng.New(2)
	pts := geom.GeneratePerturbedGrid(30, r)
	k := NewKernel(Params{Variance: 1.2, Range: 0.15, Smoothness: 1})
	full := la.NewMat(30, 30)
	k.Matrix(full, pts, geom.Euclidean)
	blk := la.NewMat(10, 20)
	k.Block(blk, pts[:10], pts[10:], geom.Euclidean)
	for i := 0; i < 10; i++ {
		for j := 0; j < 20; j++ {
			if math.Abs(blk.At(i, j)-full.At(i, 10+j)) > 1e-15 {
				t.Fatalf("block mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestBlockGreatCircle(t *testing.T) {
	// Points specified in degrees; kernel over haversine distances.
	pts := []geom.Point{{X: 40, Y: 20}, {X: 41, Y: 20}, {X: 45, Y: 25}}
	k := NewKernel(Params{Variance: 1, Range: 0.1, Smoothness: 0.5})
	m := la.NewMat(3, 3)
	k.Matrix(m, pts, geom.GreatCircle)
	if m.At(0, 1) <= m.At(0, 2) {
		t.Fatal("closer point should have higher covariance")
	}
}

func TestSampleFieldReproducible(t *testing.T) {
	pts := geom.GeneratePerturbedGrid(49, rng.New(3))
	k := NewKernel(Params{Variance: 1, Range: 0.1, Smoothness: 0.5})
	z1, err := SampleField(k, pts, geom.Euclidean, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	z2, err := SampleField(k, pts, geom.Euclidean, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range z1 {
		if z1[i] != z2[i] {
			t.Fatal("sampling not reproducible")
		}
	}
}

func TestSampleFieldVariance(t *testing.T) {
	// Empirical variance across replicates should approach θ1.
	pts := geom.GeneratePerturbedGrid(25, rng.New(4))
	k := NewKernel(Params{Variance: 2, Range: 0.05, Smoothness: 0.5})
	l, err := FieldFactor(k, pts, geom.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	var sum2 float64
	reps := 400
	for rep := 0; rep < reps; rep++ {
		z := SampleFromFactor(l, r)
		for _, v := range z {
			sum2 += v * v
		}
	}
	emp := sum2 / float64(reps*25)
	if math.Abs(emp-2) > 0.15 {
		t.Fatalf("empirical variance %g far from 2", emp)
	}
}

func TestSampleFieldSpatialCorrelation(t *testing.T) {
	// Strongly correlated field: neighboring values nearly equal; weakly
	// correlated: nearly independent.
	pts := geom.GenerateGrid(8)
	strong := NewKernel(Params{Variance: 1, Range: 0.9, Smoothness: 0.5})
	weak := NewKernel(Params{Variance: 1, Range: 0.001, Smoothness: 0.5})
	corr := func(k *Kernel, seed uint64) float64 {
		l, err := FieldFactor(k, pts, geom.Euclidean)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(seed)
		var num, den float64
		for rep := 0; rep < 200; rep++ {
			z := SampleFromFactor(l, r)
			for i := 1; i < len(z); i++ {
				num += z[i] * z[i-1]
				den += z[i] * z[i]
			}
		}
		return num / den
	}
	cs := corr(strong, 11)
	cw := corr(weak, 12)
	if cs < 0.5 {
		t.Errorf("strong field neighbor correlation too low: %g", cs)
	}
	if math.Abs(cw) > 0.15 {
		t.Errorf("weak field neighbor correlation too high: %g", cw)
	}
}

// Property: any kernel evaluation lies in [0, θ1].
func TestQuickKernelBounds(t *testing.T) {
	f := func(rawVar, rawRange, rawNu, rawR float64) bool {
		p := Params{
			Variance:   0.1 + math.Abs(rawVar),
			Range:      0.01 + math.Mod(math.Abs(rawRange), 10),
			Smoothness: 0.1 + math.Mod(math.Abs(rawNu), 3),
		}
		k := NewKernel(p)
		r := math.Abs(rawR)
		v := k.At(r)
		return v >= 0 && v <= p.Variance*(1+1e-9) && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMatrixParallelMatchesSequential: the row-band parallel assembly must
// produce bit-identical matrices for any worker count (each element is
// computed by exactly one goroutine with the same expression).
func TestMatrixParallelMatchesSequential(t *testing.T) {
	r := rng.New(3)
	const n = 173
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64(), Y: r.Float64()}
	}
	k := NewKernel(Params{Variance: 1.3, Range: 0.12, Smoothness: 1.5})
	want := la.NewMat(n, n)
	k.Matrix(want, pts, geom.Euclidean)
	for _, workers := range []int{1, 2, 3, 8} {
		got := la.NewMat(n, n)
		k.MatrixParallel(got, pts, geom.Euclidean, workers)
		if !got.Equalish(want, 0) {
			t.Fatalf("workers=%d: parallel assembly differs", workers)
		}
	}
}
