package la

import (
	"fmt"
	"math"
)

// Side selects whether the triangular operand applies from the left or right.
type Side int

// Uplo selects the triangle referenced by a triangular or symmetric routine.
type Uplo int

// Trans selects whether an operand is transposed.
type Trans int

// Enumerations mirroring the BLAS conventions.
const (
	Left Side = iota
	Right
)
const (
	Lower Uplo = iota
	Upper
)
const (
	NoTrans Trans = iota
	Transpose
)

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("la: dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("la: axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Nrm2 returns the Euclidean norm of x using the LAPACK dnrm2 scaled
// accumulation, so vectors with entries near math.MaxFloat64 do not overflow
// the intermediate sum of squares and denormal entries do not underflow it.
func Nrm2(x []float64) float64 {
	var scale float64
	ssq := 1.0
	for _, v := range x {
		if v != v { // NaN propagates
			return math.NaN()
		}
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Gemv computes y = alpha*op(A)*x + beta*y.
func Gemv(alpha float64, a *Mat, ta Trans, x []float64, beta float64, y []float64) {
	cntGemv.Inc()
	ar, ac := opDims(a, ta)
	if len(x) != ac || len(y) != ar {
		panic(fmt.Sprintf("la: gemv shape mismatch op(A)=%dx%d x=%d y=%d", ar, ac, len(x), len(y)))
	}
	if beta != 1 {
		for i := range y {
			y[i] *= beta
		}
	}
	if ta == NoTrans {
		for i := 0; i < a.Rows; i++ {
			row := a.Row(i)
			var s float64
			for j, v := range row {
				s += v * x[j]
			}
			y[i] += alpha * s
		}
		return
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		ax := alpha * x[i]
		if ax == 0 {
			continue
		}
		for j, v := range row {
			y[j] += ax * v
		}
	}
}

func opDims(a *Mat, t Trans) (r, c int) {
	if t == NoTrans {
		return a.Rows, a.Cols
	}
	return a.Cols, a.Rows
}

// Gemm computes C = alpha*op(A)*op(B) + beta*C.
//
// Large products go through the packed, register-tiled micro-kernel in
// pack.go; small or skinny ones fall back to the naive loops (RefGemm's
// kernel), where packing overhead would dominate.
func Gemm(alpha float64, a *Mat, ta Trans, b *Mat, tb Trans, beta float64, c *Mat) {
	cntGemm.Inc()
	ar, ac := opDims(a, ta)
	br, bc := opDims(b, tb)
	if ac != br || c.Rows != ar || c.Cols != bc {
		panic(fmt.Sprintf("la: gemm shape mismatch op(A)=%dx%d op(B)=%dx%d C=%dx%d", ar, ac, br, bc, c.Rows, c.Cols))
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			c.Scale(beta)
		}
	}
	if alpha == 0 {
		return
	}
	gemmAcc(alpha, a, ta, b, tb, c)
}

// Syrk computes the symmetric rank-k update C = alpha*op(A)*op(A)ᵀ + beta*C,
// referencing and updating only the uplo triangle of C (the other triangle is
// left untouched). With t == NoTrans the update is A*Aᵀ; with Transpose it is
// Aᵀ*A.
//
// The update is a triangle-restricted GEMM, so it reuses the packed kernel:
// the triangle is processed in column panels of width syrkBlock whose
// strictly-off-diagonal part is a plain rectangular gemmAcc and whose
// diagonal (triangle-crossing) block is computed into pooled scratch and
// merged element-wise.
func Syrk(uplo Uplo, alpha float64, a *Mat, t Trans, beta float64, c *Mat) {
	cntSyrk.Inc()
	n, k := opDims(a, t)
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("la: syrk shape mismatch op(A)=%dx%d C=%dx%d", n, k, c.Rows, c.Cols))
	}
	if n < gemmMR || n*n*k < smallGemmFlops {
		RefSyrk(uplo, alpha, a, t, beta, c)
		return
	}
	// Apply beta to the referenced triangle only.
	if beta != 1 {
		for i := 0; i < n; i++ {
			lo, hi := 0, i+1
			if uplo == Upper {
				lo, hi = i, n
			}
			ci := c.Row(i)[lo:hi]
			if beta == 0 {
				for j := range ci {
					ci[j] = 0
				}
			} else {
				for j := range ci {
					ci[j] *= beta
				}
			}
		}
	}
	if alpha == 0 {
		return
	}
	// opView(r0, w) is the w-row slab op(A)[r0:r0+w, :].
	opView := func(r0, w int) (*Mat, Trans) {
		if t == NoTrans {
			return a.View(r0, 0, w, k), NoTrans
		}
		return a.View(0, r0, k, w), Transpose
	}
	scratch := syrkScratchPool.Get().(*Mat)
	defer syrkScratchPool.Put(scratch)
	for j0 := 0; j0 < n; j0 += syrkBlock {
		j1 := min(j0+syrkBlock, n)
		w := j1 - j0
		aj, taj := opView(j0, w)
		// Diagonal block: full w×w product into scratch, merge the triangle.
		s := scratch.View(0, 0, w, w)
		s.Zero()
		gemmAcc(alpha, aj, taj, aj, other(taj), s)
		for i := 0; i < w; i++ {
			lo, hi := 0, i+1
			if uplo == Upper {
				lo, hi = i, w
			}
			ci := c.Row(j0 + i)[j0+lo : j0+hi]
			si := s.Row(i)[lo:hi]
			for j := range ci {
				ci[j] += si[j]
			}
		}
		if j1 == n {
			continue
		}
		// Off-diagonal panel below (Lower) or right of (Upper) the block.
		rest, trest := opView(j1, n-j1)
		if uplo == Lower {
			gemmAcc(alpha, rest, trest, aj, other(taj), c.View(j1, j0, n-j1, w))
		} else {
			gemmAcc(alpha, aj, taj, rest, other(trest), c.View(j0, j1, w, n-j1))
		}
	}
}

// other flips a transpose flag.
func other(t Trans) Trans {
	if t == NoTrans {
		return Transpose
	}
	return NoTrans
}

// Trsm solves the triangular system in place:
//
//	side == Left:  op(T) * X = alpha * B   (B overwritten with X)
//	side == Right: X * op(T) = alpha * B
//
// T references only its uplo triangle and must be non-singular.
//
// The Right-side paths are organized so the innermost loop always walks a
// contiguous stored row of T (right-looking elimination when op(T)'s column
// is a stored row, dot-product substitution otherwise) instead of calling a
// per-element triangle accessor.
func Trsm(side Side, uplo Uplo, t Trans, alpha float64, tri *Mat, b *Mat) {
	cntTrsm.Inc()
	if tri.Rows != tri.Cols {
		panic("la: trsm with non-square triangular factor")
	}
	n := tri.Rows
	if side == Left && b.Rows != n || side == Right && b.Cols != n {
		panic(fmt.Sprintf("la: trsm shape mismatch T=%dx%d B=%dx%d side=%d", tri.Rows, tri.Cols, b.Rows, b.Cols, side))
	}
	if alpha != 1 {
		b.Scale(alpha)
	}
	lowerEff := (uplo == Lower) != (t == Transpose) // effective "forward" orientation
	switch side {
	case Left:
		if lowerEff {
			// forward substitution over rows of B
			for i := 0; i < n; i++ {
				for k := 0; k < i; k++ {
					lik := triAt(tri, uplo, t, i, k)
					if lik != 0 {
						Axpy(-lik, b.Row(k), b.Row(i))
					}
				}
				d := triAt(tri, uplo, t, i, i)
				inv := 1 / d
				bi := b.Row(i)
				for j := range bi {
					bi[j] *= inv
				}
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				for k := i + 1; k < n; k++ {
					uik := triAt(tri, uplo, t, i, k)
					if uik != 0 {
						Axpy(-uik, b.Row(k), b.Row(i))
					}
				}
				inv := 1 / triAt(tri, uplo, t, i, i)
				bi := b.Row(i)
				for j := range bi {
					bi[j] *= inv
				}
			}
		}
	case Right:
		switch {
		case uplo == Lower && t == NoTrans:
			// X·L = B: right-looking, descending k. Once x[k] is known,
			// its contribution x[k]·L[k][0:k] (a stored row) leaves B.
			for r := 0; r < b.Rows; r++ {
				x := b.Row(r)
				for k := n - 1; k >= 0; k-- {
					tk := tri.Row(k)
					xk := x[k] / tk[k]
					x[k] = xk
					if xk != 0 {
						for j, v := range tk[:k] {
							x[j] -= xk * v
						}
					}
				}
			}
		case uplo == Lower && t == Transpose:
			// X·Lᵀ = B: x[j] needs Σ_{k<j} x[k]·L[j][k] — a dot with the
			// stored row L[j][0:j].
			for r := 0; r < b.Rows; r++ {
				x := b.Row(r)
				for j := 0; j < n; j++ {
					tj := tri.Row(j)
					s := x[j]
					for k, v := range tj[:j] {
						s -= x[k] * v
					}
					x[j] = s / tj[j]
				}
			}
		case uplo == Upper && t == NoTrans:
			// X·U = B: right-looking, ascending k, eliminating with the
			// stored row U[k][k+1:n].
			for r := 0; r < b.Rows; r++ {
				x := b.Row(r)
				for k := 0; k < n; k++ {
					tk := tri.Row(k)
					xk := x[k] / tk[k]
					x[k] = xk
					if xk != 0 {
						for j := k + 1; j < n; j++ {
							x[j] -= xk * tk[j]
						}
					}
				}
			}
		default: // Upper, Transpose
			// X·Uᵀ = B: x[j] needs Σ_{k>j} x[k]·U[j][k] — a dot with the
			// stored row U[j][j+1:n].
			for r := 0; r < b.Rows; r++ {
				x := b.Row(r)
				for j := n - 1; j >= 0; j-- {
					tj := tri.Row(j)
					s := x[j]
					for k := j + 1; k < n; k++ {
						s -= x[k] * tj[k]
					}
					x[j] = s / tj[j]
				}
			}
		}
	}
}

// Trmm computes B = alpha * op(T) * B (side Left) or B = alpha * B * op(T)
// (side Right) where T is triangular.
//
// Like Trsm, the Right-side paths walk contiguous stored rows of T: the
// transposed orientations are in-place dot products, the non-transposed ones
// accumulate row contributions of T into a scratch row (reused across rows
// of B) before copying back.
func Trmm(side Side, uplo Uplo, t Trans, alpha float64, tri *Mat, b *Mat) {
	cntTrmm.Inc()
	if tri.Rows != tri.Cols {
		panic("la: trmm with non-square triangular factor")
	}
	n := tri.Rows
	if side == Left && b.Rows != n || side == Right && b.Cols != n {
		panic("la: trmm shape mismatch")
	}
	lowerEff := (uplo == Lower) != (t == Transpose)
	switch side {
	case Left:
		if lowerEff {
			for i := n - 1; i >= 0; i-- {
				bi := b.Row(i)
				d := triAt(tri, uplo, t, i, i)
				for j := range bi {
					bi[j] *= d
				}
				for k := 0; k < i; k++ {
					lik := triAt(tri, uplo, t, i, k)
					if lik != 0 {
						Axpy(lik, b.Row(k), bi)
					}
				}
			}
		} else {
			for i := 0; i < n; i++ {
				bi := b.Row(i)
				d := triAt(tri, uplo, t, i, i)
				for j := range bi {
					bi[j] *= d
				}
				for k := i + 1; k < n; k++ {
					uik := triAt(tri, uplo, t, i, k)
					if uik != 0 {
						Axpy(uik, b.Row(k), bi)
					}
				}
			}
		}
	case Right:
		switch {
		case uplo == Lower && t == NoTrans:
			// y[j] = Σ_{k≥j} x[k]·L[k][j]: accumulate row k of L scaled by
			// x[k] into scratch.
			y := make([]float64, n)
			for r := 0; r < b.Rows; r++ {
				x := b.Row(r)
				for j := range y {
					y[j] = 0
				}
				for k := 0; k < n; k++ {
					xk := x[k]
					if xk == 0 {
						continue
					}
					for j, v := range tri.Row(k)[:k+1] {
						y[j] += xk * v
					}
				}
				copy(x, y)
			}
		case uplo == Lower && t == Transpose:
			// y[j] = Σ_{k≤j} x[k]·L[j][k]: in-place dot, descending j.
			for r := 0; r < b.Rows; r++ {
				x := b.Row(r)
				for j := n - 1; j >= 0; j-- {
					tj := tri.Row(j)
					var s float64
					for k, v := range tj[:j+1] {
						s += x[k] * v
					}
					x[j] = s
				}
			}
		case uplo == Upper && t == NoTrans:
			// y[j] = Σ_{k≤j} x[k]·U[k][j]: accumulate row k of U into
			// scratch.
			y := make([]float64, n)
			for r := 0; r < b.Rows; r++ {
				x := b.Row(r)
				for j := range y {
					y[j] = 0
				}
				for k := 0; k < n; k++ {
					xk := x[k]
					if xk == 0 {
						continue
					}
					tk := tri.Row(k)
					for j := k; j < n; j++ {
						y[j] += xk * tk[j]
					}
				}
				copy(x, y)
			}
		default: // Upper, Transpose
			// y[j] = Σ_{k≥j} x[k]·U[j][k]: in-place dot, ascending j.
			for r := 0; r < b.Rows; r++ {
				x := b.Row(r)
				for j := 0; j < n; j++ {
					tj := tri.Row(j)
					var s float64
					for k := j; k < n; k++ {
						s += x[k] * tj[k]
					}
					x[j] = s
				}
			}
		}
	}
	if alpha != 1 {
		b.Scale(alpha)
	}
}
