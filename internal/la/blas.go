package la

import (
	"fmt"
	"math"
)

// Side selects whether the triangular operand applies from the left or right.
type Side int

// Uplo selects the triangle referenced by a triangular or symmetric routine.
type Uplo int

// Trans selects whether an operand is transposed.
type Trans int

// Enumerations mirroring the BLAS conventions.
const (
	Left Side = iota
	Right
)
const (
	Lower Uplo = iota
	Upper
)
const (
	NoTrans Trans = iota
	Transpose
)

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("la: dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("la: axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Nrm2 returns the Euclidean norm of x.
func Nrm2(x []float64) float64 {
	var sum float64
	for _, v := range x {
		sum += v * v
	}
	return math.Sqrt(sum)
}

// Gemv computes y = alpha*op(A)*x + beta*y.
func Gemv(alpha float64, a *Mat, ta Trans, x []float64, beta float64, y []float64) {
	ar, ac := opDims(a, ta)
	if len(x) != ac || len(y) != ar {
		panic(fmt.Sprintf("la: gemv shape mismatch op(A)=%dx%d x=%d y=%d", ar, ac, len(x), len(y)))
	}
	if beta != 1 {
		for i := range y {
			y[i] *= beta
		}
	}
	if ta == NoTrans {
		for i := 0; i < a.Rows; i++ {
			row := a.Row(i)
			var s float64
			for j, v := range row {
				s += v * x[j]
			}
			y[i] += alpha * s
		}
		return
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		ax := alpha * x[i]
		if ax == 0 {
			continue
		}
		for j, v := range row {
			y[j] += ax * v
		}
	}
}

func opDims(a *Mat, t Trans) (r, c int) {
	if t == NoTrans {
		return a.Rows, a.Cols
	}
	return a.Cols, a.Rows
}

// Gemm computes C = alpha*op(A)*op(B) + beta*C.
//
// The kernel is written as an ikj loop over rows of C with the innermost loop
// running over contiguous memory in both B and C, which is the standard
// cache-friendly form for row-major storage.
func Gemm(alpha float64, a *Mat, ta Trans, b *Mat, tb Trans, beta float64, c *Mat) {
	ar, ac := opDims(a, ta)
	br, bc := opDims(b, tb)
	if ac != br || c.Rows != ar || c.Cols != bc {
		panic(fmt.Sprintf("la: gemm shape mismatch op(A)=%dx%d op(B)=%dx%d C=%dx%d", ar, ac, br, bc, c.Rows, c.Cols))
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			c.Scale(beta)
		}
	}
	if alpha == 0 {
		return
	}
	switch {
	case ta == NoTrans && tb == NoTrans:
		for i := 0; i < ar; i++ {
			ci := c.Row(i)
			ai := a.Row(i)
			for k := 0; k < ac; k++ {
				aik := alpha * ai[k]
				if aik == 0 {
					continue
				}
				bk := b.Row(k)
				for j, v := range bk {
					ci[j] += aik * v
				}
			}
		}
	case ta == Transpose && tb == NoTrans:
		for i := 0; i < ar; i++ {
			ci := c.Row(i)
			for k := 0; k < ac; k++ {
				aik := alpha * a.At(k, i)
				if aik == 0 {
					continue
				}
				bk := b.Row(k)
				for j, v := range bk {
					ci[j] += aik * v
				}
			}
		}
	case ta == NoTrans && tb == Transpose:
		for i := 0; i < ar; i++ {
			ci := c.Row(i)
			ai := a.Row(i)
			for j := 0; j < bc; j++ {
				bj := b.Row(j)
				var s float64
				for k, v := range ai {
					s += v * bj[k]
				}
				ci[j] += alpha * s
			}
		}
	default: // Transpose, Transpose
		for i := 0; i < ar; i++ {
			ci := c.Row(i)
			for j := 0; j < bc; j++ {
				var s float64
				for k := 0; k < ac; k++ {
					s += a.At(k, i) * b.At(j, k)
				}
				ci[j] += alpha * s
			}
		}
	}
}

// Syrk computes the symmetric rank-k update C = alpha*op(A)*op(A)ᵀ + beta*C,
// referencing and updating only the uplo triangle of C (the other triangle is
// left untouched). With t == NoTrans the update is A*Aᵀ; with Transpose it is
// Aᵀ*A.
func Syrk(uplo Uplo, alpha float64, a *Mat, t Trans, beta float64, c *Mat) {
	n, k := opDims(a, t)
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("la: syrk shape mismatch op(A)=%dx%d C=%dx%d", n, k, c.Rows, c.Cols))
	}
	for i := 0; i < n; i++ {
		lo, hi := 0, i+1
		if uplo == Upper {
			lo, hi = i, n
		}
		ci := c.Row(i)
		for j := lo; j < hi; j++ {
			var s float64
			if t == NoTrans {
				ai, aj := a.Row(i), a.Row(j)
				for p, v := range ai {
					s += v * aj[p]
				}
			} else {
				for p := 0; p < k; p++ {
					s += a.At(p, i) * a.At(p, j)
				}
			}
			ci[j] = alpha*s + beta*ci[j]
		}
	}
}

// Trsm solves the triangular system in place:
//
//	side == Left:  op(T) * X = alpha * B   (B overwritten with X)
//	side == Right: X * op(T) = alpha * B
//
// T references only its uplo triangle and must be non-singular.
func Trsm(side Side, uplo Uplo, t Trans, alpha float64, tri *Mat, b *Mat) {
	if tri.Rows != tri.Cols {
		panic("la: trsm with non-square triangular factor")
	}
	n := tri.Rows
	if side == Left && b.Rows != n || side == Right && b.Cols != n {
		panic(fmt.Sprintf("la: trsm shape mismatch T=%dx%d B=%dx%d side=%d", tri.Rows, tri.Cols, b.Rows, b.Cols, side))
	}
	if alpha != 1 {
		b.Scale(alpha)
	}
	lowerEff := (uplo == Lower) != (t == Transpose) // effective "forward" orientation
	switch side {
	case Left:
		if lowerEff {
			// forward substitution over rows of B
			for i := 0; i < n; i++ {
				for k := 0; k < i; k++ {
					lik := triAt(tri, uplo, t, i, k)
					if lik != 0 {
						Axpy(-lik, b.Row(k), b.Row(i))
					}
				}
				d := triAt(tri, uplo, t, i, i)
				inv := 1 / d
				bi := b.Row(i)
				for j := range bi {
					bi[j] *= inv
				}
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				for k := i + 1; k < n; k++ {
					uik := triAt(tri, uplo, t, i, k)
					if uik != 0 {
						Axpy(-uik, b.Row(k), b.Row(i))
					}
				}
				inv := 1 / triAt(tri, uplo, t, i, i)
				bi := b.Row(i)
				for j := range bi {
					bi[j] *= inv
				}
			}
		}
	case Right:
		// Solve X*op(T) = B row by row: each row x satisfies op(T)ᵀ xᵀ = bᵀ.
		for r := 0; r < b.Rows; r++ {
			x := b.Row(r)
			if lowerEff {
				// op(T) lower => op(T)ᵀ upper => backward substitution
				for j := n - 1; j >= 0; j-- {
					s := x[j]
					for k := j + 1; k < n; k++ {
						s -= triAt(tri, uplo, t, k, j) * x[k]
					}
					x[j] = s / triAt(tri, uplo, t, j, j)
				}
			} else {
				for j := 0; j < n; j++ {
					s := x[j]
					for k := 0; k < j; k++ {
						s -= triAt(tri, uplo, t, k, j) * x[k]
					}
					x[j] = s / triAt(tri, uplo, t, j, j)
				}
			}
		}
	}
}

// triAt reads the (i, j) element of op(T) where T is triangular with the
// given uplo; elements outside the stored triangle read as zero.
func triAt(tri *Mat, uplo Uplo, t Trans, i, j int) float64 {
	if t == Transpose {
		i, j = j, i
	}
	if uplo == Lower && j > i || uplo == Upper && j < i {
		return 0
	}
	return tri.At(i, j)
}

// Trmm computes B = alpha * op(T) * B (side Left) or B = alpha * B * op(T)
// (side Right) where T is triangular.
func Trmm(side Side, uplo Uplo, t Trans, alpha float64, tri *Mat, b *Mat) {
	if tri.Rows != tri.Cols {
		panic("la: trmm with non-square triangular factor")
	}
	n := tri.Rows
	if side == Left && b.Rows != n || side == Right && b.Cols != n {
		panic("la: trmm shape mismatch")
	}
	lowerEff := (uplo == Lower) != (t == Transpose)
	switch side {
	case Left:
		if lowerEff {
			for i := n - 1; i >= 0; i-- {
				bi := b.Row(i)
				d := triAt(tri, uplo, t, i, i)
				for j := range bi {
					bi[j] *= d
				}
				for k := 0; k < i; k++ {
					lik := triAt(tri, uplo, t, i, k)
					if lik != 0 {
						Axpy(lik, b.Row(k), bi)
					}
				}
			}
		} else {
			for i := 0; i < n; i++ {
				bi := b.Row(i)
				d := triAt(tri, uplo, t, i, i)
				for j := range bi {
					bi[j] *= d
				}
				for k := i + 1; k < n; k++ {
					uik := triAt(tri, uplo, t, i, k)
					if uik != 0 {
						Axpy(uik, b.Row(k), bi)
					}
				}
			}
		}
	case Right:
		for r := 0; r < b.Rows; r++ {
			x := b.Row(r)
			if lowerEff {
				for j := 0; j < n; j++ {
					s := x[j] * triAt(tri, uplo, t, j, j)
					for k := j + 1; k < n; k++ {
						s += x[k] * triAt(tri, uplo, t, k, j)
					}
					x[j] = s
				}
			} else {
				for j := n - 1; j >= 0; j-- {
					s := x[j] * triAt(tri, uplo, t, j, j)
					for k := 0; k < j; k++ {
						s += x[k] * triAt(tri, uplo, t, k, j)
					}
					x[j] = s
				}
			}
		}
	}
	if alpha != 1 {
		b.Scale(alpha)
	}
}
