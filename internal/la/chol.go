package la

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization encounters
// a non-positive pivot, indicating the input is not (numerically) SPD.
var ErrNotPositiveDefinite = errors.New("la: matrix is not positive definite")

// PotrfUnblocked computes the lower Cholesky factor of the symmetric positive
// definite matrix a in place: on return the lower triangle of a holds L with
// A = L·Lᵀ. Only the lower triangle of a is referenced; the strict upper
// triangle is left untouched.
func PotrfUnblocked(a *Mat) error {
	if a.Rows != a.Cols {
		panic("la: potrf on non-square matrix")
	}
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		jr := a.Row(j)
		for k := 0; k < j; k++ {
			d -= jr[k] * jr[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w (pivot %d = %g)", ErrNotPositiveDefinite, j, d)
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			ir := a.Row(i)
			s := ir[j]
			for k := 0; k < j; k++ {
				s -= ir[k] * jr[k]
			}
			ir[j] = s * inv
		}
	}
	return nil
}

// potrfBlockSize is the panel width of the blocked Cholesky. 64 balances
// BLAS3 locality against panel overhead for the tile sizes used here.
const potrfBlockSize = 64

// Potrf computes the lower Cholesky factor of a in place using a
// right-looking blocked algorithm (the LAPACK dpotrf structure). This is the
// "full-block" MLE baseline of the paper (MKL LAPACK path).
func Potrf(a *Mat) error {
	cntPotrf.Inc()
	if a.Rows != a.Cols {
		panic("la: potrf on non-square matrix")
	}
	n := a.Rows
	nb := potrfBlockSize
	if n <= nb {
		return PotrfUnblocked(a)
	}
	for k := 0; k < n; k += nb {
		b := min(nb, n-k)
		akk := a.View(k, k, b, b)
		if err := PotrfUnblocked(akk); err != nil {
			return err
		}
		if k+b < n {
			rest := n - k - b
			aik := a.View(k+b, k, rest, b)
			// A[i][k] = A[i][k] * L[k][k]^{-T}
			Trsm(Right, Lower, Transpose, 1, akk, aik)
			// trailing update: A[i][j] -= A[i][k] * A[j][k]ᵀ (lower only)
			trail := a.View(k+b, k+b, rest, rest)
			Syrk(Lower, -1, aik, NoTrans, 1, trail)
		}
	}
	return nil
}

// LogDetFromChol returns log|A| given the lower Cholesky factor L of A,
// namely 2·Σ log L_ii.
func LogDetFromChol(l *Mat) float64 {
	var s float64
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}

// CholSolveVec solves A·x = b in place given the lower Cholesky factor L of
// A: a forward solve with L followed by a backward solve with Lᵀ.
func CholSolveVec(l *Mat, b []float64) {
	n := l.Rows
	if len(b) != n {
		panic("la: cholsolve length mismatch")
	}
	bm := NewMatFrom(n, 1, b)
	Trsm(Left, Lower, NoTrans, 1, l, bm)
	Trsm(Left, Lower, Transpose, 1, l, bm)
}

// ForwardSolveVec solves L·x = b in place for lower-triangular L.
func ForwardSolveVec(l *Mat, b []float64) {
	bm := NewMatFrom(l.Rows, 1, b)
	Trsm(Left, Lower, NoTrans, 1, l, bm)
}
