package la

import "fmt"

// Reference (naive) BLAS3 kernels.
//
// These are the seed's original triple-loop implementations, retained
// verbatim as the correctness oracle for the packed, register-tiled kernels
// that now back Gemm/Syrk/Trsm/Trmm. The golden cross-check tests and the
// kernel benchmarks compare against them; they must stay simple enough to be
// obviously correct, so do not optimize them.

// RefGemm computes C = alpha*op(A)*op(B) + beta*C with the naive ikj loop.
func RefGemm(alpha float64, a *Mat, ta Trans, b *Mat, tb Trans, beta float64, c *Mat) {
	ar, ac := opDims(a, ta)
	br, bc := opDims(b, tb)
	if ac != br || c.Rows != ar || c.Cols != bc {
		panic(fmt.Sprintf("la: gemm shape mismatch op(A)=%dx%d op(B)=%dx%d C=%dx%d", ar, ac, br, bc, c.Rows, c.Cols))
	}
	if beta != 1 {
		if beta == 0 {
			c.Zero()
		} else {
			c.Scale(beta)
		}
	}
	if alpha == 0 {
		return
	}
	refGemmAcc(alpha, a, ta, b, tb, c)
}

// refGemmAcc accumulates C += alpha*op(A)*op(B) (beta already applied).
func refGemmAcc(alpha float64, a *Mat, ta Trans, b *Mat, tb Trans, c *Mat) {
	ar, ac := opDims(a, ta)
	_, bc := opDims(b, tb)
	switch {
	case ta == NoTrans && tb == NoTrans:
		for i := 0; i < ar; i++ {
			ci := c.Row(i)
			ai := a.Row(i)
			for k := 0; k < ac; k++ {
				aik := alpha * ai[k]
				if aik == 0 {
					continue
				}
				bk := b.Row(k)
				for j, v := range bk {
					ci[j] += aik * v
				}
			}
		}
	case ta == Transpose && tb == NoTrans:
		for i := 0; i < ar; i++ {
			ci := c.Row(i)
			for k := 0; k < ac; k++ {
				aik := alpha * a.At(k, i)
				if aik == 0 {
					continue
				}
				bk := b.Row(k)
				for j, v := range bk {
					ci[j] += aik * v
				}
			}
		}
	case ta == NoTrans && tb == Transpose:
		for i := 0; i < ar; i++ {
			ci := c.Row(i)
			ai := a.Row(i)
			for j := 0; j < bc; j++ {
				bj := b.Row(j)
				var s float64
				for k, v := range ai {
					s += v * bj[k]
				}
				ci[j] += alpha * s
			}
		}
	default: // Transpose, Transpose
		for i := 0; i < ar; i++ {
			ci := c.Row(i)
			for j := 0; j < bc; j++ {
				var s float64
				for k := 0; k < ac; k++ {
					s += a.At(k, i) * b.At(j, k)
				}
				ci[j] += alpha * s
			}
		}
	}
}

// RefSyrk computes C = alpha*op(A)*op(A)ᵀ + beta*C on the uplo triangle with
// the naive dot-product loop.
func RefSyrk(uplo Uplo, alpha float64, a *Mat, t Trans, beta float64, c *Mat) {
	n, k := opDims(a, t)
	if c.Rows != n || c.Cols != n {
		panic(fmt.Sprintf("la: syrk shape mismatch op(A)=%dx%d C=%dx%d", n, k, c.Rows, c.Cols))
	}
	for i := 0; i < n; i++ {
		lo, hi := 0, i+1
		if uplo == Upper {
			lo, hi = i, n
		}
		ci := c.Row(i)
		for j := lo; j < hi; j++ {
			var s float64
			if t == NoTrans {
				ai, aj := a.Row(i), a.Row(j)
				for p, v := range ai {
					s += v * aj[p]
				}
			} else {
				for p := 0; p < k; p++ {
					s += a.At(p, i) * a.At(p, j)
				}
			}
			ci[j] = alpha*s + beta*ci[j]
		}
	}
}

// RefTrsm solves op(T)*X = alpha*B (Left) or X*op(T) = alpha*B (Right) in
// place using per-element triAt access.
func RefTrsm(side Side, uplo Uplo, t Trans, alpha float64, tri *Mat, b *Mat) {
	if tri.Rows != tri.Cols {
		panic("la: trsm with non-square triangular factor")
	}
	n := tri.Rows
	if side == Left && b.Rows != n || side == Right && b.Cols != n {
		panic(fmt.Sprintf("la: trsm shape mismatch T=%dx%d B=%dx%d side=%d", tri.Rows, tri.Cols, b.Rows, b.Cols, side))
	}
	if alpha != 1 {
		b.Scale(alpha)
	}
	lowerEff := (uplo == Lower) != (t == Transpose) // effective "forward" orientation
	switch side {
	case Left:
		if lowerEff {
			// forward substitution over rows of B
			for i := 0; i < n; i++ {
				for k := 0; k < i; k++ {
					lik := triAt(tri, uplo, t, i, k)
					if lik != 0 {
						Axpy(-lik, b.Row(k), b.Row(i))
					}
				}
				d := triAt(tri, uplo, t, i, i)
				inv := 1 / d
				bi := b.Row(i)
				for j := range bi {
					bi[j] *= inv
				}
			}
		} else {
			for i := n - 1; i >= 0; i-- {
				for k := i + 1; k < n; k++ {
					uik := triAt(tri, uplo, t, i, k)
					if uik != 0 {
						Axpy(-uik, b.Row(k), b.Row(i))
					}
				}
				inv := 1 / triAt(tri, uplo, t, i, i)
				bi := b.Row(i)
				for j := range bi {
					bi[j] *= inv
				}
			}
		}
	case Right:
		// Solve X*op(T) = B row by row: each row x satisfies op(T)ᵀ xᵀ = bᵀ.
		for r := 0; r < b.Rows; r++ {
			x := b.Row(r)
			if lowerEff {
				// op(T) lower => op(T)ᵀ upper => backward substitution
				for j := n - 1; j >= 0; j-- {
					s := x[j]
					for k := j + 1; k < n; k++ {
						s -= triAt(tri, uplo, t, k, j) * x[k]
					}
					x[j] = s / triAt(tri, uplo, t, j, j)
				}
			} else {
				for j := 0; j < n; j++ {
					s := x[j]
					for k := 0; k < j; k++ {
						s -= triAt(tri, uplo, t, k, j) * x[k]
					}
					x[j] = s / triAt(tri, uplo, t, j, j)
				}
			}
		}
	}
}

// RefTrmm computes B = alpha*op(T)*B (Left) or B = alpha*B*op(T) (Right).
func RefTrmm(side Side, uplo Uplo, t Trans, alpha float64, tri *Mat, b *Mat) {
	if tri.Rows != tri.Cols {
		panic("la: trmm with non-square triangular factor")
	}
	n := tri.Rows
	if side == Left && b.Rows != n || side == Right && b.Cols != n {
		panic("la: trmm shape mismatch")
	}
	lowerEff := (uplo == Lower) != (t == Transpose)
	switch side {
	case Left:
		if lowerEff {
			for i := n - 1; i >= 0; i-- {
				bi := b.Row(i)
				d := triAt(tri, uplo, t, i, i)
				for j := range bi {
					bi[j] *= d
				}
				for k := 0; k < i; k++ {
					lik := triAt(tri, uplo, t, i, k)
					if lik != 0 {
						Axpy(lik, b.Row(k), bi)
					}
				}
			}
		} else {
			for i := 0; i < n; i++ {
				bi := b.Row(i)
				d := triAt(tri, uplo, t, i, i)
				for j := range bi {
					bi[j] *= d
				}
				for k := i + 1; k < n; k++ {
					uik := triAt(tri, uplo, t, i, k)
					if uik != 0 {
						Axpy(uik, b.Row(k), bi)
					}
				}
			}
		}
	case Right:
		for r := 0; r < b.Rows; r++ {
			x := b.Row(r)
			if lowerEff {
				for j := 0; j < n; j++ {
					s := x[j] * triAt(tri, uplo, t, j, j)
					for k := j + 1; k < n; k++ {
						s += x[k] * triAt(tri, uplo, t, k, j)
					}
					x[j] = s
				}
			} else {
				for j := n - 1; j >= 0; j-- {
					s := x[j] * triAt(tri, uplo, t, j, j)
					for k := 0; k < j; k++ {
						s += x[k] * triAt(tri, uplo, t, k, j)
					}
					x[j] = s
				}
			}
		}
	}
	if alpha != 1 {
		b.Scale(alpha)
	}
}

// triAt reads the (i, j) element of op(T) where T is triangular with the
// given uplo; elements outside the stored triangle read as zero.
func triAt(tri *Mat, uplo Uplo, t Trans, i, j int) float64 {
	if t == Transpose {
		i, j = j, i
	}
	if uplo == Lower && j > i || uplo == Upper && j < i {
		return 0
	}
	return tri.At(i, j)
}
