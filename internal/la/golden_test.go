package la

import (
	"math"
	"math/rand"
	"testing"
)

// Golden cross-checks: the packed/blocked production kernels must agree with
// the retained naive references across every transpose/side/uplo combination,
// odd shapes (vectors, prime dims, non-multiples of the register and cache
// block sizes), and alpha/beta edge cases. randMat lives in mat_test.go.

// randTri returns a well-conditioned n×n matrix whose uplo triangle is used
// as a triangular factor (diagonally dominant so solves stay stable).
func randTri(rng *rand.Rand, n int) *Mat {
	m := randMat(rng, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 4+math.Abs(m.At(i, i)))
	}
	return m
}

func maxRelDiff(got, want *Mat) float64 {
	var worst float64
	for i := 0; i < got.Rows; i++ {
		gr, wr := got.Row(i), want.Row(i)
		for j := range gr {
			d := math.Abs(gr[j] - wr[j])
			scale := math.Max(1, math.Abs(wr[j]))
			if d/scale > worst {
				worst = d / scale
			}
		}
	}
	return worst
}

var goldenDims = []int{1, 2, 3, 5, 7, 16, 31, 64, 65, 100, 127, 130}

func TestGemmGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][3]int{}
	for _, n := range goldenDims {
		shapes = append(shapes, [3]int{n, n, n})
	}
	// skinny / degenerate shapes: 1×k, k×1, prime rectangles, deep-k
	shapes = append(shapes,
		[3]int{1, 64, 64}, [3]int{64, 64, 1}, [3]int{64, 1, 64},
		[3]int{3, 257, 5}, [3]int{129, 7, 131}, [3]int{37, 300, 4},
		[3]int{200, 520, 9}, [3]int{5, 1000, 5},
	)
	alphaBeta := [][2]float64{{1, 0}, {1, 1}, {-1, 0.5}, {2, -1}, {0, 0.5}, {0.3, 0}}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		for _, ta := range []Trans{NoTrans, Transpose} {
			for _, tb := range []Trans{NoTrans, Transpose} {
				for _, ab := range alphaBeta {
					a := randMat(rng, m, k)
					if ta == Transpose {
						a = randMat(rng, k, m)
					}
					b := randMat(rng, k, n)
					if tb == Transpose {
						b = randMat(rng, n, k)
					}
					c0 := randMat(rng, m, n)
					got, want := c0.Clone(), c0.Clone()
					Gemm(ab[0], a, ta, b, tb, ab[1], got)
					RefGemm(ab[0], a, ta, b, tb, ab[1], want)
					if d := maxRelDiff(got, want); d > 1e-12 {
						t.Fatalf("gemm %dx%dx%d ta=%d tb=%d alpha=%g beta=%g: rel diff %g", m, k, n, ta, tb, ab[0], ab[1], d)
					}
				}
			}
		}
	}
}

func TestSyrkGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ks := []int{1, 3, 17, 64, 129, 300}
	alphaBeta := [][2]float64{{1, 0}, {1, 1}, {-1, 1}, {0.5, -2}, {0, 0.7}}
	for _, n := range goldenDims {
		for _, k := range ks {
			for _, tr := range []Trans{NoTrans, Transpose} {
				for _, uplo := range []Uplo{Lower, Upper} {
					for _, ab := range alphaBeta {
						a := randMat(rng, n, k)
						if tr == Transpose {
							a = randMat(rng, k, n)
						}
						c0 := randMat(rng, n, n)
						got, want := c0.Clone(), c0.Clone()
						Syrk(uplo, ab[0], a, tr, ab[1], got)
						RefSyrk(uplo, ab[0], a, tr, ab[1], want)
						if d := maxRelDiff(got, want); d > 1e-12 {
							t.Fatalf("syrk n=%d k=%d t=%d uplo=%d alpha=%g beta=%g: rel diff %g", n, k, tr, uplo, ab[0], ab[1], d)
						}
					}
				}
			}
		}
	}
}

func TestSyrkLeavesOtherTriangleUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, uplo := range []Uplo{Lower, Upper} {
		n := 130
		a := randMat(rng, n, 40)
		c := randMat(rng, n, n)
		before := c.Clone()
		Syrk(uplo, 1.5, a, NoTrans, 0.25, c)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				inTri := j <= i
				if uplo == Upper {
					inTri = j >= i
				}
				if !inTri && c.At(i, j) != before.At(i, j) {
					t.Fatalf("uplo=%d: untouched triangle modified at (%d,%d)", uplo, i, j)
				}
			}
		}
	}
}

func TestTrsmGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	dims := []int{1, 2, 5, 16, 31, 64, 65, 127}
	for _, n := range dims {
		for _, m := range []int{1, 3, 17, 64} {
			for _, side := range []Side{Left, Right} {
				for _, uplo := range []Uplo{Lower, Upper} {
					for _, tr := range []Trans{NoTrans, Transpose} {
						for _, alpha := range []float64{1, -0.5} {
							tri := randTri(rng, n)
							var b0 *Mat
							if side == Left {
								b0 = randMat(rng, n, m)
							} else {
								b0 = randMat(rng, m, n)
							}
							got, want := b0.Clone(), b0.Clone()
							Trsm(side, uplo, tr, alpha, tri, got)
							RefTrsm(side, uplo, tr, alpha, tri, want)
							if d := maxRelDiff(got, want); d > 1e-10 {
								t.Fatalf("trsm n=%d m=%d side=%d uplo=%d t=%d alpha=%g: rel diff %g", n, m, side, uplo, tr, alpha, d)
							}
						}
					}
				}
			}
		}
	}
}

func TestTrmmGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dims := []int{1, 2, 5, 16, 31, 64, 65, 127}
	for _, n := range dims {
		for _, m := range []int{1, 3, 17, 64} {
			for _, side := range []Side{Left, Right} {
				for _, uplo := range []Uplo{Lower, Upper} {
					for _, tr := range []Trans{NoTrans, Transpose} {
						for _, alpha := range []float64{1, 2} {
							tri := randTri(rng, n)
							var b0 *Mat
							if side == Left {
								b0 = randMat(rng, n, m)
							} else {
								b0 = randMat(rng, m, n)
							}
							got, want := b0.Clone(), b0.Clone()
							Trmm(side, uplo, tr, alpha, tri, got)
							RefTrmm(side, uplo, tr, alpha, tri, want)
							if d := maxRelDiff(got, want); d > 1e-11 {
								t.Fatalf("trmm n=%d m=%d side=%d uplo=%d t=%d alpha=%g: rel diff %g", n, m, side, uplo, tr, alpha, d)
							}
						}
					}
				}
			}
		}
	}
}

// TestTrsmTrmmRoundTrip checks X = Trsm(Trmm(X)) across all orientations,
// an independent consistency check that does not rely on the references.
func TestTrsmTrmmRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, m := 67, 23
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, tr := range []Trans{NoTrans, Transpose} {
				tri := randTri(rng, n)
				var x0 *Mat
				if side == Left {
					x0 = randMat(rng, n, m)
				} else {
					x0 = randMat(rng, m, n)
				}
				x := x0.Clone()
				Trmm(side, uplo, tr, 1, tri, x)
				Trsm(side, uplo, tr, 1, tri, x)
				if d := maxRelDiff(x, x0); d > 1e-10 {
					t.Fatalf("round trip side=%d uplo=%d t=%d: rel diff %g", side, uplo, tr, d)
				}
			}
		}
	}
}

func TestNrm2Scaled(t *testing.T) {
	big := math.MaxFloat64 / 2
	cases := []struct {
		name string
		x    []float64
		want float64
	}{
		{"empty", nil, 0},
		{"zeros", []float64{0, 0, 0}, 0},
		{"plain", []float64{3, 4}, 5},
		{"huge", []float64{big, big}, big * math.Sqrt2},
		{"hugeNeg", []float64{-big, big, 0}, big * math.Sqrt2},
		{"denormal", []float64{5e-324, 0}, 5e-324},
		{"denormalPair", []float64{3e-310, 4e-310}, 5e-310},
		{"mixedScale", []float64{1e-300, 1e300}, 1e300},
		{"inf", []float64{1, math.Inf(1)}, math.Inf(1)},
	}
	for _, c := range cases {
		got := Nrm2(c.x)
		if math.IsInf(c.want, 1) {
			if !math.IsInf(got, 1) {
				t.Errorf("%s: got %g want +Inf", c.name, got)
			}
			continue
		}
		if c.want == 0 {
			if got != 0 {
				t.Errorf("%s: got %g want 0", c.name, got)
			}
			continue
		}
		if math.Abs(got-c.want)/c.want > 1e-14 {
			t.Errorf("%s: got %g want %g", c.name, got, c.want)
		}
	}
	if !math.IsNaN(Nrm2([]float64{1, math.NaN(), 2})) {
		t.Errorf("NaN input must produce NaN")
	}
	// naive accumulation of big*sqrt(2) would overflow to +Inf
	if v := Nrm2([]float64{big, big}); math.IsInf(v, 1) {
		t.Fatalf("Nrm2 overflowed: %g", v)
	}
}
