package la

import "math"

// QRThin computes a thin QR factorization of the m×n matrix a (m ≥ n is not
// required; k = min(m, n) columns of Q are produced): a = Q·R with Q m×k
// having orthonormal columns and R k×n upper triangular.
//
// The implementation uses Householder reflections accumulated explicitly,
// which is ample for the tall-skinny recompression panels (tile-size × rank)
// that dominate TLR arithmetic.
func QRThin(a *Mat) (q, r *Mat) {
	cntQr.Inc()
	m, n := a.Rows, a.Cols
	k := min(m, n)
	work := a.Clone()
	// vs stores the Householder vectors; taus the scalar factors.
	vs := NewMat(m, k)
	taus := make([]float64, k)

	for j := 0; j < k; j++ {
		// Build the Householder reflector for column j below the diagonal.
		var normx float64
		for i := j; i < m; i++ {
			v := work.At(i, j)
			normx += v * v
		}
		normx = math.Sqrt(normx)
		x0 := work.At(j, j)
		if normx == 0 {
			taus[j] = 0
			continue
		}
		alpha := -math.Copysign(normx, x0)
		v0 := x0 - alpha
		// v = [v0, x_{j+1..m}] normalized so v[0] = 1
		vs.Set(j, j, 1)
		var vnorm2 float64 = 1
		for i := j + 1; i < m; i++ {
			vi := work.At(i, j) / v0
			vs.Set(i, j, vi)
			vnorm2 += vi * vi
		}
		taus[j] = 2 / vnorm2
		// Apply H = I - tau v vᵀ to the trailing columns of work.
		for c := j; c < n; c++ {
			var dot float64
			for i := j; i < m; i++ {
				dot += vs.At(i, j) * work.At(i, c)
			}
			dot *= taus[j]
			for i := j; i < m; i++ {
				work.Set(i, c, work.At(i, c)-dot*vs.At(i, j))
			}
		}
	}

	r = NewMat(k, n)
	for i := 0; i < k; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, work.At(i, j))
		}
	}

	// Form the thin Q by applying the reflectors to the first k columns of I.
	q = NewMat(m, k)
	for j := 0; j < k; j++ {
		q.Set(j, j, 1)
	}
	for j := k - 1; j >= 0; j-- {
		if taus[j] == 0 {
			continue
		}
		for c := 0; c < k; c++ {
			var dot float64
			for i := j; i < m; i++ {
				dot += vs.At(i, j) * q.At(i, c)
			}
			dot *= taus[j]
			for i := j; i < m; i++ {
				q.Set(i, c, q.At(i, c)-dot*vs.At(i, j))
			}
		}
	}
	return q, r
}
