package la

import (
	"math"
	"sort"
)

// SVDThin computes a thin singular value decomposition a = U·diag(s)·Vᵀ where
// U is m×k, V is n×k, k = min(m, n), and s is returned in descending order.
//
// The algorithm is one-sided Jacobi applied to the rows of the (possibly
// transposed) input so the rotation sweeps always run over contiguous
// memory and over the smaller dimension. Jacobi is slower than
// bidiagonalization-based SVD but is simple, numerically robust, and fast
// enough for the tile-sized (≤ a few hundred) matrices TLR compression
// feeds it.
func SVDThin(a *Mat) (u *Mat, s []float64, v *Mat) {
	cntSvd.Inc()
	if a.Rows >= a.Cols {
		return svdTall(a)
	}
	// a = U S Vᵀ  ⇔  aᵀ = V S Uᵀ
	v2, s2, u2 := svdTall(a.T())
	return u2, s2, v2
}

// svdTall computes the thin SVD of a (m ≥ n) without modifying it.
//
// Internally it runs one-sided Jacobi on W = aᵀ (n rows of length m): a
// rotation of rows (p, q) of W is a rotation of columns (p, q) of a, and row
// operations are contiguous in the row-major layout.
func svdTall(a *Mat) (u *Mat, s []float64, v *Mat) {
	m, n := a.Rows, a.Cols
	w := a.T() // n×m; row i of w is column i of a
	vm := Eye(n)
	const maxSweeps = 60
	// Convergence threshold on the normalized off-diagonal Gram entries.
	const eps = 1e-15

	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := 0
		for p := 0; p < n-1; p++ {
			wp := w.Row(p)
			for q := p + 1; q < n; q++ {
				wq := w.Row(q)
				var app, aqq, apq float64
				for i, vp := range wp {
					vq := wq[i]
					app += vp * vp
					aqq += vq * vq
					apq += vp * vq
				}
				if apq == 0 || math.Abs(apq) <= eps*math.Sqrt(app*aqq) {
					continue
				}
				rotated++
				// Jacobi rotation zeroing the (p, q) Gram entry.
				zeta := (aqq - app) / (2 * apq)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				for i, vp := range wp {
					vq := wq[i]
					wp[i] = c*vp - sn*vq
					wq[i] = sn*vp + c*vq
				}
				vp := vm.Row(p)
				vq := vm.Row(q)
				for i, x := range vp {
					y := vq[i]
					vp[i] = c*x - sn*y
					vq[i] = sn*x + c*y
				}
			}
		}
		if rotated == 0 {
			break
		}
	}

	// Row norms of w are the singular values; normalized rows are the
	// columns of U. vm's rows are the columns of V (it accumulated the same
	// row rotations starting from I).
	s = make([]float64, n)
	for j := 0; j < n; j++ {
		s[j] = Nrm2(w.Row(j))
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return s[idx[i]] > s[idx[j]] })

	u = NewMat(m, n)
	v = NewMat(n, n)
	sorted := make([]float64, n)
	for jj, j := range idx {
		sorted[jj] = s[j]
		inv := 0.0
		if s[j] > 0 {
			inv = 1 / s[j]
		}
		wj := w.Row(j)
		for i := 0; i < m; i++ {
			u.Set(i, jj, wj[i]*inv)
		}
		vj := vm.Row(j)
		for i := 0; i < n; i++ {
			v.Set(i, jj, vj[i])
		}
	}
	return u, sorted, v
}

// TruncatedRank returns the smallest k such that the spectral tail below
// index k is within tol in the operator-norm sense used by HiCMA: it keeps
// singular values s[i] > tol·s[0] when relative is true, or s[i] > tol when
// relative is false. The result is at least 1 when s is non-empty and the
// leading value is nonzero.
func TruncatedRank(s []float64, tol float64, relative bool) int {
	if len(s) == 0 {
		return 0
	}
	cut := tol
	if relative {
		cut = tol * s[0]
	}
	k := 0
	for _, v := range s {
		if v > cut {
			k++
		} else {
			break
		}
	}
	if k == 0 && s[0] > 0 {
		k = 1
	}
	return k
}
