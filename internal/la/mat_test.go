package la

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) *Mat {
	m := NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randSPD builds a well-conditioned SPD matrix A = B·Bᵀ + n·I.
func randSPD(rng *rand.Rand, n int) *Mat {
	b := randMat(rng, n, n)
	a := NewMat(n, n)
	Gemm(1, b, NoTrans, b, Transpose, 0, a)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestMatViewAliases(t *testing.T) {
	m := NewMat(4, 4)
	v := m.View(1, 1, 2, 2)
	v.Set(0, 0, 7)
	if m.At(1, 1) != 7 {
		t.Fatalf("view did not alias parent: got %g", m.At(1, 1))
	}
	if v.At(1, 1) != m.At(2, 2) {
		t.Fatalf("view offset wrong")
	}
}

func TestMatViewBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds view")
		}
	}()
	NewMat(3, 3).View(2, 2, 2, 2)
}

func TestMatCloneIndependent(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 5)
	c := m.Clone()
	c.Set(1, 2, 9)
	if m.At(1, 2) != 5 {
		t.Fatal("clone shares storage with original")
	}
}

func TestMatTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMat(rng, 3, 5)
	mt := m.T()
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !m.T().T().Equalish(m, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestMatAddSubScale(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 4, 4)
	b := randMat(rng, 4, 4)
	c := a.Clone()
	c.Add(b)
	c.Sub(b)
	if !c.Equalish(a, 1e-14) {
		t.Fatal("add then sub did not round-trip")
	}
	c.Scale(2)
	c.Sub(a)
	if !c.Equalish(a, 1e-12) {
		t.Fatal("scale by 2 minus original should equal original")
	}
}

func TestSymmetrize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMat(rng, 5, 5)
	m.Symmetrize()
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != m.At(j, i) {
				t.Fatalf("not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestGemmAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, ta := range []Trans{NoTrans, Transpose} {
		for _, tb := range []Trans{NoTrans, Transpose} {
			m, k, n := 7, 5, 6
			var a, b *Mat
			if ta == NoTrans {
				a = randMat(rng, m, k)
			} else {
				a = randMat(rng, k, m)
			}
			if tb == NoTrans {
				b = randMat(rng, k, n)
			} else {
				b = randMat(rng, n, k)
			}
			c := randMat(rng, m, n)
			want := NewMat(m, n)
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					var s float64
					for p := 0; p < k; p++ {
						var av, bv float64
						if ta == Transpose {
							av = a.At(p, i)
						} else {
							av = a.At(i, p)
						}
						if tb == Transpose {
							bv = b.At(j, p)
						} else {
							bv = b.At(p, j)
						}
						s += av * bv
					}
					want.Set(i, j, 1.5*s+0.5*c.At(i, j))
				}
			}
			Gemm(1.5, a, ta, b, tb, 0.5, c)
			if !c.Equalish(want, 1e-12) {
				t.Fatalf("gemm mismatch for ta=%v tb=%v", ta, tb)
			}
		}
	}
}

func TestGemvMatchesGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 6, 4)
	x := make([]float64, 4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, 6)
	Gemv(2, a, NoTrans, x, 0, y)
	want := NewMat(6, 1)
	Gemm(2, a, NoTrans, NewMatFrom(4, 1, x), NoTrans, 0, want)
	for i := range y {
		if math.Abs(y[i]-want.At(i, 0)) > 1e-13 {
			t.Fatalf("gemv mismatch at %d", i)
		}
	}
	// transposed
	yt := make([]float64, 4)
	xt := make([]float64, 6)
	for i := range xt {
		xt[i] = rng.NormFloat64()
	}
	Gemv(1, a, Transpose, xt, 0, yt)
	wantT := NewMat(4, 1)
	Gemm(1, a.T(), NoTrans, NewMatFrom(6, 1, xt), NoTrans, 0, wantT)
	for i := range yt {
		if math.Abs(yt[i]-wantT.At(i, 0)) > 1e-13 {
			t.Fatalf("gemv^T mismatch at %d", i)
		}
	}
}

func TestSyrkMatchesGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMat(rng, 5, 3)
	c := randSPD(rng, 5)
	before := c.Clone()
	cRef := c.Clone()
	Syrk(Lower, -1, a, NoTrans, 1, c)
	Gemm(-1, a, NoTrans, a, Transpose, 1, cRef)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(c.At(i, j)-cRef.At(i, j)) > 1e-12 {
				t.Fatalf("syrk lower mismatch at (%d,%d)", i, j)
			}
		}
		for j := i + 1; j < 5; j++ {
			if c.At(i, j) != before.At(i, j) {
				t.Fatalf("syrk modified upper triangle at (%d,%d)", i, j)
			}
		}
	}
}

func TestSyrkTransposed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randMat(rng, 3, 5) // op(A) = AᵀA is 5x5
	c := NewMat(5, 5)
	Syrk(Lower, 1, a, Transpose, 0, c)
	want := NewMat(5, 5)
	Gemm(1, a, Transpose, a, NoTrans, 0, want)
	for i := 0; i < 5; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(c.At(i, j)-want.At(i, j)) > 1e-12 {
				t.Fatalf("syrk^T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSyrkUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randMat(rng, 4, 2)
	c := NewMat(4, 4)
	Syrk(Upper, 1, a, NoTrans, 0, c)
	want := NewMat(4, 4)
	Gemm(1, a, NoTrans, a, Transpose, 0, want)
	for i := 0; i < 4; i++ {
		for j := i; j < 4; j++ {
			if math.Abs(c.At(i, j)-want.At(i, j)) > 1e-12 {
				t.Fatalf("syrk upper mismatch at (%d,%d)", i, j)
			}
		}
		for j := 0; j < i; j++ {
			if c.At(i, j) != 0 {
				t.Fatalf("syrk upper touched lower triangle at (%d,%d)", i, j)
			}
		}
	}
}

func lowerFrom(rng *rand.Rand, n int) *Mat {
	l := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, rng.NormFloat64())
		}
		l.Set(i, i, 1+rng.Float64()) // well away from zero
	}
	return l
}

func TestTrsmAllVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 6
	for _, side := range []Side{Left, Right} {
		for _, uplo := range []Uplo{Lower, Upper} {
			for _, tr := range []Trans{NoTrans, Transpose} {
				var tri *Mat
				if uplo == Lower {
					tri = lowerFrom(rng, n)
				} else {
					tri = lowerFrom(rng, n).T()
				}
				var b *Mat
				if side == Left {
					b = randMat(rng, n, 4)
				} else {
					b = randMat(rng, 4, n)
				}
				x := b.Clone()
				Trsm(side, uplo, tr, 1, tri, x)
				// verify op(T)X = B or X op(T) = B
				check := x.Clone()
				Trmm(side, uplo, tr, 1, tri, check)
				if !check.Equalish(b, 1e-10) {
					t.Fatalf("trsm/trmm round trip failed side=%v uplo=%v trans=%v", side, uplo, tr)
				}
			}
		}
	}
}

func TestTrsmAlpha(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tri := lowerFrom(rng, 5)
	b := randMat(rng, 5, 3)
	x1 := b.Clone()
	Trsm(Left, Lower, NoTrans, 2, tri, x1)
	x2 := b.Clone()
	x2.Scale(2)
	Trsm(Left, Lower, NoTrans, 1, tri, x2)
	if !x1.Equalish(x2, 1e-12) {
		t.Fatal("alpha scaling in trsm incorrect")
	}
}

func TestPotrfReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 5, 17, 64, 65, 130} {
		a := randSPD(rng, n)
		l := a.Clone()
		if err := Potrf(l); err != nil {
			t.Fatalf("potrf failed for n=%d: %v", n, err)
		}
		// zero strict upper of l
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				l.Set(i, j, 0)
			}
		}
		rec := NewMat(n, n)
		Gemm(1, l, NoTrans, l, Transpose, 0, rec)
		diff := rec.Clone()
		diff.Sub(a)
		if diff.MaxAbs() > 1e-9*a.MaxAbs() {
			t.Fatalf("n=%d: ||LL^T - A|| = %g too large", n, diff.MaxAbs())
		}
	}
}

func TestPotrfMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randSPD(rng, 97)
	l1 := a.Clone()
	l2 := a.Clone()
	if err := Potrf(l1); err != nil {
		t.Fatal(err)
	}
	if err := PotrfUnblocked(l2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 97; i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(l1.At(i, j)-l2.At(i, j)) > 1e-9 {
				t.Fatalf("blocked vs unblocked mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestPotrfRejectsIndefinite(t *testing.T) {
	a := NewMatFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if err := Potrf(a); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
}

func TestCholSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 40
	a := randSPD(rng, n)
	l := a.Clone()
	if err := Potrf(l); err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	Gemv(1, a, NoTrans, xTrue, 0, b)
	CholSolveVec(l, b)
	for i := range b {
		if math.Abs(b[i]-xTrue[i]) > 1e-8 {
			t.Fatalf("cholsolve error at %d: %g vs %g", i, b[i], xTrue[i])
		}
	}
}

func TestLogDetFromChol(t *testing.T) {
	// diag(4, 9): |A| = 36, log = log 36; L = diag(2, 3)
	l := NewMatFrom(2, 2, []float64{2, 0, 0, 3})
	got := LogDetFromChol(l)
	want := math.Log(36)
	if math.Abs(got-want) > 1e-14 {
		t.Fatalf("logdet: got %g want %g", got, want)
	}
}

func TestQRThinReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, dims := range [][2]int{{8, 3}, {5, 5}, {20, 7}, {3, 8}, {64, 16}} {
		m, n := dims[0], dims[1]
		a := randMat(rng, m, n)
		q, r := QRThin(a)
		k := min(m, n)
		if q.Rows != m || q.Cols != k || r.Rows != k || r.Cols != n {
			t.Fatalf("QR dims wrong for %dx%d", m, n)
		}
		rec := NewMat(m, n)
		Gemm(1, q, NoTrans, r, NoTrans, 0, rec)
		diff := rec.Clone()
		diff.Sub(a)
		if diff.MaxAbs() > 1e-10 {
			t.Fatalf("%dx%d: ||QR - A|| = %g", m, n, diff.MaxAbs())
		}
		// orthonormality of Q
		qtq := NewMat(k, k)
		Gemm(1, q, Transpose, q, NoTrans, 0, qtq)
		idn := Eye(k)
		qtq.Sub(idn)
		if qtq.MaxAbs() > 1e-10 {
			t.Fatalf("%dx%d: Q columns not orthonormal (%g)", m, n, qtq.MaxAbs())
		}
	}
}

func TestSVDThinReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, dims := range [][2]int{{6, 4}, {4, 6}, {10, 10}, {32, 8}, {1, 5}, {5, 1}} {
		m, n := dims[0], dims[1]
		a := randMat(rng, m, n)
		u, s, v := SVDThin(a)
		k := min(m, n)
		if u.Rows != m || u.Cols != k || v.Rows != n || v.Cols != k || len(s) != k {
			t.Fatalf("SVD dims wrong for %dx%d: U %dx%d V %dx%d s %d", m, n, u.Rows, u.Cols, v.Rows, v.Cols, len(s))
		}
		// descending singular values
		for i := 1; i < k; i++ {
			if s[i] > s[i-1]+1e-12 {
				t.Fatalf("singular values not descending: %v", s)
			}
		}
		// reconstruction
		us := NewMat(m, k)
		for i := 0; i < m; i++ {
			for j := 0; j < k; j++ {
				us.Set(i, j, u.At(i, j)*s[j])
			}
		}
		rec := NewMat(m, n)
		Gemm(1, us, NoTrans, v, Transpose, 0, rec)
		rec.Sub(a)
		if rec.MaxAbs() > 1e-9 {
			t.Fatalf("%dx%d: ||USV^T - A|| = %g", m, n, rec.MaxAbs())
		}
	}
}

func TestSVDLowRankExact(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	// Build an exactly rank-3 12x10 matrix; SVD must see s[3..] ≈ 0.
	x := randMat(rng, 12, 3)
	y := randMat(rng, 10, 3)
	a := NewMat(12, 10)
	Gemm(1, x, NoTrans, y, Transpose, 0, a)
	_, s, _ := SVDThin(a)
	if s[2] < 1e-10 {
		t.Fatalf("rank-3 matrix lost rank: %v", s[:4])
	}
	for i := 3; i < len(s); i++ {
		if s[i] > 1e-9*s[0] {
			t.Fatalf("tail singular value %d = %g not negligible", i, s[i])
		}
	}
	if k := TruncatedRank(s, 1e-8, true); k != 3 {
		t.Fatalf("TruncatedRank = %d, want 3", k)
	}
}

func TestTruncatedRankEdges(t *testing.T) {
	if k := TruncatedRank(nil, 1e-9, true); k != 0 {
		t.Fatalf("empty: got %d", k)
	}
	if k := TruncatedRank([]float64{5, 4, 3}, 1e-9, true); k != 3 {
		t.Fatalf("full rank: got %d", k)
	}
	// all below absolute threshold but leading nonzero → rank 1 floor
	if k := TruncatedRank([]float64{1e-12}, 1e-9, false); k != 1 {
		t.Fatalf("floor: got %d", k)
	}
	if k := TruncatedRank([]float64{10, 1e-12}, 1e-9, true); k != 1 {
		t.Fatalf("relative cut: got %d", k)
	}
}

// Property: for random SPD matrices, solving against the Cholesky factor
// reproduces the right-hand side.
func TestQuickCholeskyInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(math.Abs(float64(seed)))%20
		a := randSPD(r, n)
		l := a.Clone()
		if err := Potrf(l); err != nil {
			return false
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := make([]float64, n)
		Gemv(1, a, NoTrans, x, 0, b)
		CholSolveVec(l, b)
		for i := range b {
			if math.Abs(b[i]-x[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: Frobenius norm is invariant under transpose, and sub-multiplicative
// under Gemm within a generous constant.
func TestQuickNormProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randMat(r, 5, 7)
		if math.Abs(a.FrobNorm()-a.T().FrobNorm()) > 1e-12 {
			return false
		}
		b := randMat(r, 7, 4)
		c := NewMat(5, 4)
		Gemm(1, a, NoTrans, b, NoTrans, 0, c)
		return c.FrobNorm() <= a.FrobNorm()*b.FrobNorm()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
