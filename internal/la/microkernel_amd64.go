//go:build amd64

package la

// AVX2+FMA micro-kernel wiring for amd64. The kernel itself lives in
// microkernel_amd64.s; availability is established once at init via CPUID
// (FMA + AVX2 + OS support for YMM state through XGETBV), so binaries built
// with the default GOAMD64=v1 still run on older machines through the
// scalar fallback.

// microKernelFMA computes the packed 4×8 register tile
// acc = Σ_p a(:,p)·b(p,:) with eight YMM FMA accumulators. kc must be ≥ 1;
// ap and bp point at panels of kc*gemmMR and kc*gemmNR float64s.
//
//go:noescape
func microKernelFMA(kc int, ap, bp *float64, acc *[gemmMR * gemmNR]float64)

// cpuidex executes CPUID with the given leaf/subleaf.
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
func xgetbv() (eax, edx uint32)

// useFMAKernel reports whether the AVX2+FMA micro-kernel is safe to call.
var useFMAKernel = func() bool {
	_, _, c, _ := cpuidex(1, 0)
	const fmaBit, osxsaveBit = 1 << 12, 1 << 27
	if c&fmaBit == 0 || c&osxsaveBit == 0 {
		return false
	}
	// OS must preserve XMM (bit 1) and YMM (bit 2) state across context
	// switches.
	lo, _ := xgetbv()
	if lo&6 != 6 {
		return false
	}
	_, b, _, _ := cpuidex(7, 0)
	const avx2Bit = 1 << 5
	return b&avx2Bit != 0
}()
