package la

import "repro/internal/obs"

// Kernel invocation counters. One atomic add per call — negligible next to
// any O(n^2) kernel body — resolved once at package init per the obs idiom.
// They answer "which BLAS path did this run actually take, and how often"
// without a profiler: e.g. a TLR factorization shows up as many small gemm
// calls plus svd calls from compression, while the dense path is dominated
// by syrk.
var (
	cntGemm  = obs.GetCounter("la.gemm.calls")
	cntGemv  = obs.GetCounter("la.gemv.calls")
	cntSyrk  = obs.GetCounter("la.syrk.calls")
	cntTrsm  = obs.GetCounter("la.trsm.calls")
	cntTrmm  = obs.GetCounter("la.trmm.calls")
	cntPotrf = obs.GetCounter("la.potrf.calls")
	cntSvd   = obs.GetCounter("la.svd.calls")
	cntQr    = obs.GetCounter("la.qr.calls")
)
