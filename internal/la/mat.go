// Package la provides the dense linear algebra substrate used throughout the
// repository: a row-major matrix type, BLAS-like level-1/2/3 kernels, and
// LAPACK-like factorizations (blocked Cholesky, Householder QR, one-sided
// Jacobi SVD).
//
// The package plays the role of Intel MKL / reference LAPACK in the original
// ExaGeoStat stack. All routines operate on float64 and are deterministic.
//
// Dimension mismatches are programming errors, not runtime conditions, so the
// kernels panic on malformed inputs (the same contract as gonum and the BLAS
// reference implementation). Higher layers validate user input and return
// errors before reaching this package.
package la

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix. Element (i, j) lives at Data[i*Stride+j].
// A Mat may be a view into a larger matrix, in which case Stride > Cols.
type Mat struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// NewMat allocates a zeroed r×c matrix.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("la: negative dimension %dx%d", r, c))
	}
	return &Mat{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// NewMatFrom wraps data (row-major, length r*c) without copying.
func NewMatFrom(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("la: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Mat{Rows: r, Cols: c, Stride: c, Data: data}
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Row returns a slice aliasing row i (length Cols).
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

// View returns an r×c view starting at (i, j). The view aliases m's storage.
func (m *Mat) View(i, j, r, c int) *Mat {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("la: view (%d,%d,%d,%d) out of bounds of %dx%d", i, j, r, c, m.Rows, m.Cols))
	}
	return &Mat{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[i*m.Stride+j:]}
}

// Clone returns a compact deep copy of m.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	out.CopyFrom(m)
	return out
}

// CopyFrom copies src into m; dimensions must match.
func (m *Mat) CopyFrom(src *Mat) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("la: copy dimension mismatch %dx%d <- %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero sets every element of m to zero.
func (m *Mat) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// Eye returns the n×n identity.
func Eye(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// T returns a newly allocated transpose of m.
func (m *Mat) T() *Mat {
	out := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*out.Stride+i] = v
		}
	}
	return out
}

// Scale multiplies every element of m by s.
func (m *Mat) Scale(s float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= s
		}
	}
}

// Add accumulates a into m element-wise (m += a).
func (m *Mat) Add(a *Mat) {
	if m.Rows != a.Rows || m.Cols != a.Cols {
		panic("la: add dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		mr, ar := m.Row(i), a.Row(i)
		for j := range mr {
			mr[j] += ar[j]
		}
	}
}

// Sub subtracts a from m element-wise (m -= a).
func (m *Mat) Sub(a *Mat) {
	if m.Rows != a.Rows || m.Cols != a.Cols {
		panic("la: sub dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		mr, ar := m.Row(i), a.Row(i)
		for j := range mr {
			mr[j] -= ar[j]
		}
	}
}

// FrobNorm returns the Frobenius norm of m.
func (m *Mat) FrobNorm() float64 {
	var sum float64
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for _, v := range row {
			sum += v * v
		}
	}
	return math.Sqrt(sum)
}

// MaxAbs returns the largest absolute element of m (0 for an empty matrix).
func (m *Mat) MaxAbs() float64 {
	var mx float64
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for _, v := range row {
			if a := math.Abs(v); a > mx {
				mx = a
			}
		}
	}
	return mx
}

// Equalish reports whether m and a agree element-wise within tol.
func (m *Mat) Equalish(a *Mat, tol float64) bool {
	if m.Rows != a.Rows || m.Cols != a.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		mr, ar := m.Row(i), a.Row(i)
		for j := range mr {
			if math.Abs(mr[j]-ar[j]) > tol {
				return false
			}
		}
	}
	return true
}

// Symmetrize overwrites the strict upper triangle with the transpose of the
// strict lower triangle, making m exactly symmetric. m must be square.
func (m *Mat) Symmetrize() {
	if m.Rows != m.Cols {
		panic("la: symmetrize on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			m.Set(i, j, m.At(j, i))
		}
	}
}

// String renders small matrices for debugging.
func (m *Mat) String() string {
	if m.Rows*m.Cols > 400 {
		return fmt.Sprintf("Mat{%dx%d}", m.Rows, m.Cols)
	}
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			s += fmt.Sprintf("% .4e ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}
