//go:build amd64

#include "textflag.h"

// func microKernelFMA(kc int, ap, bp *float64, acc *[32]float64)
//
// Computes the 4×8 register tile acc[r][c] = Σ_p ap[p*4+r] * bp[p*8+c]
// using eight YMM accumulators:
//
//	Y0..Y7 — acc rows 0..3, columns [0:4] and [4:8]
//	Y8, Y9 — the two 4-wide vectors of row p of the packed B panel
//	Y10    — broadcast of one packed A element
//
// Per p-step: 2 vector loads + 4 broadcasts + 8 FMAs = 64 flops.
TEXT ·microKernelFMA(SB), NOSPLIT, $0-32
	MOVQ kc+0(FP), CX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), DI
	MOVQ acc+24(FP), DX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	TESTQ CX, CX
	JZ    done

loop:
	VMOVUPD (DI), Y8
	VMOVUPD 32(DI), Y9

	VBROADCASTSD (SI), Y10
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1

	VBROADCASTSD 8(SI), Y10
	VFMADD231PD  Y8, Y10, Y2
	VFMADD231PD  Y9, Y10, Y3

	VBROADCASTSD 16(SI), Y10
	VFMADD231PD  Y8, Y10, Y4
	VFMADD231PD  Y9, Y10, Y5

	VBROADCASTSD 24(SI), Y10
	VFMADD231PD  Y8, Y10, Y6
	VFMADD231PD  Y9, Y10, Y7

	ADDQ $32, SI
	ADDQ $64, DI
	DECQ CX
	JNZ  loop

done:
	VMOVUPD Y0, (DX)
	VMOVUPD Y1, 32(DX)
	VMOVUPD Y2, 64(DX)
	VMOVUPD Y3, 96(DX)
	VMOVUPD Y4, 128(DX)
	VMOVUPD Y5, 160(DX)
	VMOVUPD Y6, 192(DX)
	VMOVUPD Y7, 224(DX)
	VZEROUPPER
	RET

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
