//go:build !amd64

package la

// Non-amd64 targets always use the portable scalar micro-kernel.
const useFMAKernel = false

// microKernelFMA is never called when useFMAKernel is false; this stub
// satisfies the compiler on targets without the assembly implementation.
func microKernelFMA(kc int, ap, bp *float64, acc *[gemmMR * gemmNR]float64) {
	panic("la: FMA micro-kernel unavailable on this architecture")
}
