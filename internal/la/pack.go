package la

import "sync"

// Packed, cache-blocked GEMM (the BLIS/GotoBLAS structure).
//
// op(A) is partitioned into MC×KC blocks and op(B) into KC×NC blocks; each
// block is packed into a contiguous scratch buffer laid out as micro-panels
// so the innermost kernel streams both operands with unit stride regardless
// of the original transpose/stride. The micro-kernel computes a 4×8 tile of
// C: on amd64 with AVX2+FMA it runs as eight YMM accumulators (see
// microkernel_amd64.s, runtime CPUID-gated); elsewhere a scalar 32-accumulator
// Go loop is used.
//
//	KC×NC panel of B — packed once, reused by every MC block   (L3-sized)
//	MC×KC panel of A — packed per block                        (L2-sized)
//	 4×8  C tile     — register accumulators                   (registers)
//
// Scratch buffers are recycled through a sync.Pool so steady-state likelihood
// iterations allocate nothing.
const (
	gemmMR = 4   // micro-kernel rows (register tile)
	gemmNR = 8   // micro-kernel cols (register tile; two YMM vectors)
	gemmMC = 128 // A-block rows; gemmMC×gemmKC ≈ 256 KiB, L2-resident
	gemmKC = 256 // shared panel depth
	gemmNC = 512 // B-block cols; gemmKC×gemmNC ≈ 1 MiB, L3-resident
)

// smallGemmFlops is the m·n·k product below which packing overhead outweighs
// the micro-kernel's gains and the naive loops win.
const smallGemmFlops = 32 * 32 * 32

// FMAKernelEnabled reports whether the AVX2+FMA assembly micro-kernel is in
// use on this machine (false on non-amd64 or when the CPU/OS lacks AVX2+FMA
// support). Benchmark reports record it so numbers are comparable.
func FMAKernelEnabled() bool { return useFMAKernel }

type gemmBufs struct {
	a []float64 // packed MC×KC block, micro-panels of gemmMR rows
	b []float64 // packed KC×NC block, micro-panels of gemmNR cols
}

var gemmPool = sync.Pool{New: func() any {
	return &gemmBufs{
		a: make([]float64, gemmMC*gemmKC),
		b: make([]float64, gemmKC*gemmNC),
	}
}}

// gemmAcc accumulates C += alpha*op(A)*op(B) (alpha ≠ 0, beta already
// applied by the caller), routing between the naive loops and the packed
// kernel on problem size.
func gemmAcc(alpha float64, a *Mat, ta Trans, b *Mat, tb Trans, c *Mat) {
	m, k := opDims(a, ta)
	_, n := opDims(b, tb)
	if m < gemmMR || n < gemmNR || m*n*k < smallGemmFlops {
		refGemmAcc(alpha, a, ta, b, tb, c)
		return
	}
	bufs := gemmPool.Get().(*gemmBufs)
	defer gemmPool.Put(bufs)
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			packB(bufs.b, b, tb, pc, jc, kc, nc)
			for ic := 0; ic < m; ic += gemmMC {
				mc := min(gemmMC, m-ic)
				packA(bufs.a, a, ta, ic, pc, mc, kc)
				macroKernel(alpha, bufs.a, bufs.b, c, ic, jc, mc, nc, kc)
			}
		}
	}
}

// packA packs op(A)[ic:ic+mc, pc:pc+kc] into micro-panels of gemmMR rows:
// buf[panel*kc*MR + p*MR + r] = op(A)[ic+panel*MR+r, pc+p], zero-padding the
// last panel's missing rows so the micro-kernel never branches.
func packA(buf []float64, a *Mat, ta Trans, ic, pc, mc, kc int) {
	idx := 0
	for i0 := 0; i0 < mc; i0 += gemmMR {
		rows := min(gemmMR, mc-i0)
		panel := buf[idx : idx+kc*gemmMR]
		if rows < gemmMR {
			for i := range panel {
				panel[i] = 0
			}
		}
		if ta == NoTrans {
			for r := 0; r < rows; r++ {
				src := a.Row(ic + i0 + r)[pc : pc+kc]
				for p, v := range src {
					panel[p*gemmMR+r] = v
				}
			}
		} else {
			// op(A)[i, p] = a[pc+p, ic+i]: read contiguous row segments of a.
			for p := 0; p < kc; p++ {
				src := a.Row(pc + p)[ic+i0 : ic+i0+rows]
				copy(panel[p*gemmMR:p*gemmMR+rows], src)
			}
		}
		idx += kc * gemmMR
	}
}

// packB packs op(B)[pc:pc+kc, jc:jc+nc] into micro-panels of gemmNR columns:
// buf[panel*kc*NR + p*NR + c] = op(B)[pc+p, jc+panel*NR+c], zero-padded like
// packA.
func packB(buf []float64, b *Mat, tb Trans, pc, jc, kc, nc int) {
	idx := 0
	for j0 := 0; j0 < nc; j0 += gemmNR {
		cols := min(gemmNR, nc-j0)
		panel := buf[idx : idx+kc*gemmNR]
		if cols < gemmNR {
			for i := range panel {
				panel[i] = 0
			}
		}
		if tb == NoTrans {
			for p := 0; p < kc; p++ {
				src := b.Row(pc + p)[jc+j0 : jc+j0+cols]
				copy(panel[p*gemmNR:p*gemmNR+cols], src)
			}
		} else {
			// op(B)[p, j] = b[jc+j, pc+p]: read contiguous row segments of b.
			for c := 0; c < cols; c++ {
				src := b.Row(jc + j0 + c)[pc : pc+kc]
				for p, v := range src {
					panel[p*gemmNR+c] = v
				}
			}
		}
		idx += kc * gemmNR
	}
}

// macroKernel runs the 4×8 micro-kernel over every register tile of the
// packed mc×nc block and scatters alpha-scaled results into C at (ic, jc).
func macroKernel(alpha float64, pa, pb []float64, c *Mat, ic, jc, mc, nc, kc int) {
	var acc [gemmMR * gemmNR]float64
	for jr := 0; jr < nc; jr += gemmNR {
		bp := pb[(jr/gemmNR)*kc*gemmNR:]
		cols := min(gemmNR, nc-jr)
		for ir := 0; ir < mc; ir += gemmMR {
			ap := pa[(ir/gemmMR)*kc*gemmMR:]
			if useFMAKernel && kc > 0 {
				microKernelFMA(kc, &ap[0], &bp[0], &acc)
			} else {
				microKernelGeneric(kc, ap, bp, &acc)
			}
			rows := min(gemmMR, mc-ir)
			for r := 0; r < rows; r++ {
				dst := c.Row(ic + ir + r)[jc+jr : jc+jr+cols]
				src := acc[r*gemmNR:]
				for cc := range dst {
					dst[cc] += alpha * src[cc]
				}
			}
		}
	}
}

// microKernelGeneric computes acc = Σ_p a(:,p)·b(p,:) over the packed
// panels — the portable scalar fallback for the assembly micro-kernel. The
// 4×8 tile is processed as two 4×4 halves to limit register pressure.
func microKernelGeneric(kc int, ap, bp []float64, acc *[gemmMR * gemmNR]float64) {
	var (
		c00, c01, c02, c03 float64
		c10, c11, c12, c13 float64
		c20, c21, c22, c23 float64
		c30, c31, c32, c33 float64
	)
	for p, ia, ib := 0, 0, 0; p < kc; p, ia, ib = p+1, ia+gemmMR, ib+gemmNR {
		a0, a1, a2, a3 := ap[ia], ap[ia+1], ap[ia+2], ap[ia+3]
		b0, b1, b2, b3 := bp[ib], bp[ib+1], bp[ib+2], bp[ib+3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[8], acc[9], acc[10], acc[11] = c10, c11, c12, c13
	acc[16], acc[17], acc[18], acc[19] = c20, c21, c22, c23
	acc[24], acc[25], acc[26], acc[27] = c30, c31, c32, c33
	c00, c01, c02, c03 = 0, 0, 0, 0
	c10, c11, c12, c13 = 0, 0, 0, 0
	c20, c21, c22, c23 = 0, 0, 0, 0
	c30, c31, c32, c33 = 0, 0, 0, 0
	for p, ia, ib := 0, 0, 0; p < kc; p, ia, ib = p+1, ia+gemmMR, ib+gemmNR {
		a0, a1, a2, a3 := ap[ia], ap[ia+1], ap[ia+2], ap[ia+3]
		b0, b1, b2, b3 := bp[ib+4], bp[ib+5], bp[ib+6], bp[ib+7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}
	acc[4], acc[5], acc[6], acc[7] = c00, c01, c02, c03
	acc[12], acc[13], acc[14], acc[15] = c10, c11, c12, c13
	acc[20], acc[21], acc[22], acc[23] = c20, c21, c22, c23
	acc[28], acc[29], acc[30], acc[31] = c30, c31, c32, c33
}

// syrkScratchPool recycles the diagonal-block scratch used by Syrk.
var syrkScratchPool = sync.Pool{New: func() any {
	return NewMat(syrkBlock, syrkBlock)
}}

// syrkBlock is the column-panel width Syrk processes per step; the diagonal
// (triangle-crossing) block of each panel is at most syrkBlock² and is
// computed into pooled scratch before the triangle is merged.
const syrkBlock = 128
