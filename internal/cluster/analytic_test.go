package cluster

import (
	"testing"
)

func TestAnalyticDenseMatchesDESOrder(t *testing.T) {
	// At small tile counts (where the DES runs at true granularity) the
	// analytic model and the DES should agree within a small factor for the
	// compute-bound dense variant.
	m := NewMachine(ShaheenNode, 4)
	w := Workload{N: 60_000, NB: 1000, Variant: Dense} // mt = 60, under cap
	des := SimulateCholesky(m, w)
	ana := AnalyticCholesky(m, w)
	if des.OOM || ana.OOM {
		t.Fatal("unexpected OOM")
	}
	ratio := ana.Seconds / des.Seconds
	if ratio < 0.3 || ratio > 3 {
		t.Fatalf("analytic (%gs) and DES (%gs) disagree by %gx", ana.Seconds, des.Seconds, ratio)
	}
}

func TestAnalyticFlopsMatchClosedForm(t *testing.T) {
	m := NewMachine(ShaheenNode, 16)
	n := 500_000
	r := AnalyticCholesky(m, Workload{N: n, NB: 500, Variant: Dense})
	want := float64(n) * float64(n) * float64(n) / 3
	if r.TotalFlops < 0.95*want || r.TotalFlops > 1.1*want {
		t.Fatalf("analytic dense flops %g vs n^3/3 %g", r.TotalFlops, want)
	}
}

func TestAnalyticPaperShape(t *testing.T) {
	// The headline claims of Figs. 3-4, at true granularity:
	//  1. TLR beats full-tile at 1M on 256 nodes by a single-to-low-double
	//     digit factor;
	//  2. looser accuracy is faster;
	//  3. at small n dense wins (crossover exists);
	//  4. dense runs out of memory at 2M on 256 nodes, TLR does not.
	m := NewMachine(ShaheenNode, 256)
	loose := CalibrateRankModel(1e-5, testTheta(), 1024, 128)
	tight := CalibrateRankModel(1e-9, testTheta(), 1024, 128)

	dense1M := AnalyticCholesky(m, Workload{N: 1_000_000, NB: 560, Variant: Dense})
	tlr1M := AnalyticCholesky(m, Workload{N: 1_000_000, NB: 1900, Variant: TLRVariant, Ranks: loose})
	tlr1Mtight := AnalyticCholesky(m, Workload{N: 1_000_000, NB: 1900, Variant: TLRVariant, Ranks: tight})
	if dense1M.OOM || tlr1M.OOM {
		t.Fatal("unexpected OOM at 1M")
	}
	speedup := dense1M.Seconds / tlr1M.Seconds
	if speedup < 2 || speedup > 40 {
		t.Fatalf("1M speedup %g outside plausible band (paper: up to 5x)", speedup)
	}
	if tlr1M.Seconds > tlr1Mtight.Seconds {
		t.Fatalf("looser accuracy slower: %g vs %g", tlr1M.Seconds, tlr1Mtight.Seconds)
	}

	denseSmall := AnalyticCholesky(m, Workload{N: 100_000, NB: 560, Variant: Dense})
	tlrSmall := AnalyticCholesky(m, Workload{N: 100_000, NB: 1900, Variant: TLRVariant, Ranks: tight})
	if tlrSmall.Seconds < denseSmall.Seconds {
		t.Log("note: no crossover at 100K — TLR already wins (acceptable, paper curves are close there)")
	}

	dense2M := AnalyticCholesky(m, Workload{N: 2_000_000, NB: 560, Variant: Dense})
	tlr2M := AnalyticCholesky(m, Workload{N: 2_000_000, NB: 1900, Variant: TLRVariant, Ranks: tight})
	if !dense2M.OOM {
		t.Fatalf("dense at 2M/256 nodes should OOM (max node bytes %d)", dense2M.MaxNodeBytes)
	}
	if tlr2M.OOM {
		t.Fatalf("TLR at 2M/256 nodes should fit (max node bytes %d)", tlr2M.MaxNodeBytes)
	}
}

func TestAnalyticSharedMemorySpeedupBand(t *testing.T) {
	// Fig. 3 headline: TLR(1e-5) vs full-tile speedup between ~4x and ~20x
	// on the shared-memory testbeds at n = 112,225 (paper: 5x-13x).
	model := CalibrateRankModel(1e-5, testTheta(), 1024, 128)
	for _, prof := range []Profile{Haswell, Broadwell, KNL, Skylake} {
		m := NewMachine(prof, 1)
		den := AnalyticCholesky(m, Workload{N: 112225, NB: 560, Variant: Dense})
		tl := AnalyticCholesky(m, Workload{N: 112225, NB: 1900, Variant: TLRVariant, Ranks: model})
		s := den.Seconds / tl.Seconds
		if s < 3 || s > 25 {
			t.Errorf("%s: speedup %.1fx outside the reproduction band", prof.Name, s)
		}
	}
}

func TestAnalyticScalesWithNodes(t *testing.T) {
	w := Workload{N: 500_000, NB: 560, Variant: Dense}
	t256 := AnalyticCholesky(NewMachine(ShaheenNode, 256), w).Seconds
	t1024 := AnalyticCholesky(NewMachine(ShaheenNode, 1024), w).Seconds
	if t1024 >= t256 {
		t.Fatalf("no scaling: 256 nodes %gs vs 1024 nodes %gs", t256, t1024)
	}
}

func TestAnalyticPredictionAddsSolve(t *testing.T) {
	m := NewMachine(ShaheenNode, 256)
	model := CalibrateRankModel(1e-7, testTheta(), 1024, 128)
	w := Workload{N: 500_000, NB: 1900, Variant: TLRVariant, Ranks: model}
	chol := AnalyticCholesky(m, w)
	pred := AnalyticPrediction(m, w, 100)
	if pred.Seconds <= chol.Seconds {
		t.Fatal("prediction must cost at least the factorization")
	}
	if pred.Seconds > 1.5*chol.Seconds {
		t.Fatalf("solve should be a small fraction: %g vs %g", pred.Seconds, chol.Seconds)
	}
}
