package cluster

import (
	"testing"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/mpi"
	"repro/internal/rng"
	"repro/internal/tlr"
)

func distCommPoints(n int) []geom.Point {
	r := rng.New(0xd15c)
	pts := geom.GeneratePerturbedGrid(n, r)
	return geom.Sorted(geom.Morton, pts)
}

// measureCholeskyComm runs a distributed factorization and returns per-rank
// bytes sent during the Cholesky phase only.
func measureCholeskyComm(t *testing.T, grid mpi.Grid, n, nb int, acc float64, dense bool) []float64 {
	t.Helper()
	pts := distCommPoints(n)
	k := cov.NewKernel(cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5})
	size := grid.P * grid.Q
	world := mpi.NewWorld(size)
	before := make([]mpi.CommStats, size)
	sent := make([]float64, size)
	errs := world.Run(func(c *mpi.Comm) error {
		rank := c.Rank()
		if dense {
			d := mpi.NewDistFromKernel(rank, grid, k, pts, geom.Euclidean, nb, 1e-8)
			before[rank] = c.Stats()
			if err := d.Cholesky(c); err != nil {
				return err
			}
		} else {
			d := mpi.NewDistTLR(rank, grid, pts, geom.Euclidean, nb, acc, tlr.SVDCompressor{})
			d.Generate(k, 1e-8)
			before[rank] = c.Stats()
			if err := d.Cholesky(c); err != nil {
				return err
			}
		}
		sent[rank] = float64(c.Stats().Sub(before[rank]).BytesSent)
		return nil
	})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return sent
}

// For dense factorization the message sizes are fully determined by the
// tiling, so the analytic model must match the measured traffic exactly —
// including at a non-divisible n/nb with ragged boundary tiles.
func TestDistCholeskyCommDenseExact(t *testing.T) {
	for _, tc := range []struct {
		grid  mpi.Grid
		n, nb int
	}{
		{mpi.Grid{P: 1, Q: 1}, 96, 16},
		{mpi.Grid{P: 2, Q: 2}, 96, 16},
		{mpi.Grid{P: 2, Q: 3}, 90, 16}, // ragged last tile
	} {
		got := measureCholeskyComm(t, tc.grid, tc.n, tc.nb, 0, true)
		want := DistCholeskyComm(tc.grid, tc.n, tc.nb, nil, true)
		for r := range want {
			if got[r] != want[r] {
				t.Errorf("grid %dx%d rank %d: measured %g bytes, analytic %g",
					tc.grid.P, tc.grid.Q, r, got[r], want[r])
			}
		}
	}
}

// For TLR the analytic model predicts panel-message sizes from the
// calibrated rank model; the acceptance band is a factor of two per rank.
func TestDistCholeskyCommTLRWithinTwoX(t *testing.T) {
	const (
		n   = 512
		nb  = 64
		acc = 1e-7
	)
	rm := CalibrateRankModel(acc, cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5}, 1024, nb)
	grid := mpi.Grid{P: 2, Q: 2}
	got := measureCholeskyComm(t, grid, n, nb, acc, false)
	want := DistCholeskyComm(grid, n, nb, rm, false)
	for r := range want {
		if want[r] == 0 {
			if got[r] != 0 {
				t.Errorf("rank %d: measured %g bytes where model predicts none", r, got[r])
			}
			continue
		}
		if ratio := got[r] / want[r]; ratio > 2 || ratio < 0.5 {
			t.Errorf("rank %d: measured %g bytes vs analytic %g (ratio %.2f)", r, got[r], want[r], ratio)
		}
	}
}

func TestDistCholeskyCommSingleRankSilent(t *testing.T) {
	sent := DistCholeskyComm(mpi.Grid{P: 1, Q: 1}, 256, 64, nil, true)
	if len(sent) != 1 || sent[0] != 0 {
		t.Fatalf("1x1 grid must predict zero traffic, got %v", sent)
	}
}
