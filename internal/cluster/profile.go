// Package cluster simulates the execution of the tiled dense and TLR
// Cholesky task DAGs on parallel machines: the shared-memory Intel servers
// of paper Fig. 3 and the distributed-memory Cray XC40 Shaheen-2 of Figs. 4
// and 5. It is the substitute for hardware this reproduction does not have.
//
// The simulator executes the genuine task DAG (same shape as the runtime
// executes for real at laptop scale) under a machine model:
//
//   - per-node compute: a task occupies one core-slot for
//     max(flops/rate, bytes/memory-bandwidth) seconds — the roofline that
//     makes low-arithmetic-intensity TLR kernels memory-bound, reproducing
//     the paper's tile-size discussion (§VIII-C);
//   - 2D block-cyclic tile ownership across nodes; a task runs on the node
//     owning its output tile and pays latency + size/bandwidth for each
//     remote input;
//   - per-node memory accounting; configurations whose working set exceeds
//     node memory report OOM — the "missing points" of Fig. 4.
//
// At paper scale the true tile grid would generate billions of tasks, so the
// simulator coarsens the tile grid to at most MaxTileRows rows while keeping
// total arithmetic faithful to the algorithm at the coarsened tile size (a
// legitimate configuration of the same algorithm); ranks for TLR costing
// come from a RankModel calibrated by really compressing Matérn tiles.
package cluster

// Profile describes one node type. Rates are effective (not peak) and were
// set to give sensible absolute times; the reproduction targets relative
// behaviour across modes and accuracies.
type Profile struct {
	Name string
	// Cores per node.
	Cores int
	// GFlopsPerCore is the effective double-precision rate of one core on
	// compute-bound BLAS3 (GF/s).
	GFlopsPerCore float64
	// MemBWGBs is the per-node memory bandwidth (GB/s) shared by its cores.
	MemBWGBs float64
	// MemGB is usable node memory (GB).
	MemGB float64
	// NetLatency (s) and NetBWGBs (GB/s) describe the interconnect; zero
	// for shared-memory runs.
	NetLatency float64
	NetBWGBs   float64
}

// Shared-memory testbeds of Fig. 3 and the Shaheen-2 node of Figs. 4-5.
// Core counts match the paper's §VIII-A hardware list; rates are effective
// per-core DGEMM throughputs typical for those parts.
var (
	Haswell = Profile{
		Name: "haswell", Cores: 36, GFlopsPerCore: 30, MemBWGBs: 120, MemGB: 256,
	}
	Broadwell = Profile{
		Name: "broadwell", Cores: 28, GFlopsPerCore: 32, MemBWGBs: 130, MemGB: 256,
	}
	KNL = Profile{
		Name: "knl", Cores: 64, GFlopsPerCore: 28, MemBWGBs: 400, MemGB: 192,
	}
	Skylake = Profile{
		Name: "skylake", Cores: 56, GFlopsPerCore: 45, MemBWGBs: 220, MemGB: 384,
	}
	// ShaheenNode: dual-socket 16-core Haswell, 128 GB, Cray Aries.
	ShaheenNode = Profile{
		Name: "shaheen-node", Cores: 32, GFlopsPerCore: 30, MemBWGBs: 110, MemGB: 128,
		NetLatency: 1.5e-6, NetBWGBs: 8,
	}
)

// Machine is a collection of identical nodes arranged in a process grid.
type Machine struct {
	Profile Profile
	// Nodes is the node count; GridP×GridQ must equal Nodes (NewMachine
	// picks a near-square factorization).
	Nodes        int
	GridP, GridQ int
	// SlotsPerNode bounds the number of simulated execution slots per node;
	// slot speed is scaled so aggregate node throughput is preserved.
	// Defaults to min(Cores, 8).
	SlotsPerNode int
}

// NewMachine builds a machine with a near-square process grid.
func NewMachine(p Profile, nodes int) Machine {
	gp, gq := squarish(nodes)
	slots := p.Cores
	if slots > 8 {
		slots = 8
	}
	return Machine{Profile: p, Nodes: nodes, GridP: gp, GridQ: gq, SlotsPerNode: slots}
}

func squarish(n int) (int, int) {
	best := 1
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			best = d
		}
	}
	return best, n / best
}

// slotRate returns the GF/s of one simulated slot.
func (m Machine) slotRate() float64 {
	return m.Profile.GFlopsPerCore * float64(m.Profile.Cores) / float64(m.slots())
}

// slotMemBW returns the memory bandwidth (bytes/s) available to one slot.
func (m Machine) slotMemBW() float64 {
	return m.Profile.MemBWGBs * 1e9 / float64(m.slots())
}

func (m Machine) slots() int {
	if m.SlotsPerNode > 0 {
		return m.SlotsPerNode
	}
	s := m.Profile.Cores
	if s > 8 {
		s = 8
	}
	return s
}

// Owner maps tile (i, j) to its node under 2D block-cyclic distribution.
func (m Machine) Owner(i, j int) int {
	return (i%m.GridP)*m.GridQ + j%m.GridQ
}
