package cluster

import (
	"container/heap"
	"fmt"

	"repro/internal/runtime"
	"repro/internal/tile"
)

// Variant selects the factorization whose DAG is simulated.
type Variant int

// Simulated computation variants.
const (
	Dense Variant = iota
	TLRVariant
)

func (v Variant) String() string {
	if v == Dense {
		return "full-tile"
	}
	return "tlr"
}

// Workload describes one simulated MLE iteration (generation + Cholesky +
// solve, the Fig. 3/4 unit of measurement).
type Workload struct {
	N  int
	NB int
	// Variant: Dense (full-tile) or TLRVariant.
	Variant Variant
	// Accuracy documents the TLR threshold (informational; costing uses
	// Ranks).
	Accuracy float64
	// Ranks must be set for TLRVariant.
	Ranks *RankModel
	// MaxTileRows caps the simulated tile grid; larger problems are
	// coarsened (default 128).
	MaxTileRows int
}

// Result reports one simulation.
type Result struct {
	// Seconds is the simulated makespan; meaningless when OOM is true.
	Seconds float64
	// OOM reports that the working set exceeded some node's memory — the
	// paper's "missing points".
	OOM bool
	// Tasks, TotalFlops and CommBytes summarize the executed DAG.
	Tasks      int
	TotalFlops float64
	CommBytes  float64
	// MaxNodeBytes is the largest per-node working set.
	MaxNodeBytes int64
	// EffectiveNB and EffectiveMT record the (possibly coarsened) tiling.
	EffectiveNB, EffectiveMT int
}

// effectiveTiling applies the coarsening cap.
func (w Workload) effectiveTiling() (nb, mt int) {
	cap := w.MaxTileRows
	if cap <= 0 {
		cap = 128
	}
	mt = (w.N + w.NB - 1) / w.NB
	nb = w.NB
	if mt > cap {
		mt = cap
		nb = (w.N + mt - 1) / mt
	}
	return nb, mt
}

// buildDAG constructs the structural Cholesky DAG for the workload, with
// per-handle byte sizes reflecting the storage format. It mirrors the task
// insertion of tile.BuildCholeskyGraph / tlr.BuildCholeskyGraph.
func (w Workload) buildDAG() (*runtime.Graph, int, int) {
	nb, mt := w.effectiveTiling()
	g := runtime.NewGraph()
	hs := make([][]*runtime.Handle, mt)
	tileBytes := func(i, j int) int64 {
		if w.Variant == Dense || i == j {
			return int64(nb) * int64(nb) * 8
		}
		k := w.Ranks.Rank(nb, i-j)
		return int64(2*nb*k) * 8
	}
	for i := 0; i < mt; i++ {
		hs[i] = make([]*runtime.Handle, i+1)
		for j := 0; j <= i; j++ {
			hs[i][j] = g.NewHandle(fmt.Sprintf("A[%d,%d]", i, j), tileBytes(i, j), int64(i)<<32|int64(j))
		}
	}
	rank := func(i, j int) int {
		if w.Variant == Dense {
			return nb
		}
		return w.Ranks.Rank(nb, i-j)
	}
	for k := 0; k < mt; k++ {
		g.AddTask(runtime.Task{
			Name:     "potrf",
			Flops:    tile.FlopsPOTRF(nb),
			Priority: 3 * (mt - k),
			Accesses: []runtime.Access{{Handle: hs[k][k], Mode: runtime.ReadWrite}},
		})
		for i := k + 1; i < mt; i++ {
			var fl float64
			if w.Variant == Dense {
				fl = tile.FlopsTRSM(nb, nb)
			} else {
				fl = float64(nb) * float64(nb) * float64(rank(i, k))
			}
			g.AddTask(runtime.Task{
				Name:     "trsm",
				Flops:    fl,
				Priority: 2 * (mt - i),
				Accesses: []runtime.Access{
					{Handle: hs[k][k], Mode: runtime.Read},
					{Handle: hs[i][k], Mode: runtime.ReadWrite},
				},
			})
		}
		for i := k + 1; i < mt; i++ {
			var fl float64
			if w.Variant == Dense {
				fl = tile.FlopsSYRK(nb, nb)
			} else {
				kk := rank(i, k)
				fl = 2*float64(kk)*float64(kk)*float64(nb) + 2*float64(nb)*float64(nb)*float64(kk)
			}
			g.AddTask(runtime.Task{
				Name:  "syrk",
				Flops: fl,
				Accesses: []runtime.Access{
					{Handle: hs[i][k], Mode: runtime.Read},
					{Handle: hs[i][i], Mode: runtime.ReadWrite},
				},
			})
			for j := k + 1; j < i; j++ {
				var fl float64
				if w.Variant == Dense {
					fl = tile.FlopsGEMM(nb, nb, nb)
				} else {
					ks := float64(rank(i, k) + rank(j, k) + rank(i, j))
					fl = 2*float64(nb)*ks*ks + ks*ks*ks
				}
				g.AddTask(runtime.Task{
					Name:  "gemm",
					Flops: fl,
					Accesses: []runtime.Access{
						{Handle: hs[i][k], Mode: runtime.Read},
						{Handle: hs[j][k], Mode: runtime.Read},
						{Handle: hs[i][j], Mode: runtime.ReadWrite},
					},
				})
			}
		}
	}
	return g, nb, mt
}

// kernelEvalSeconds is the modeled cost of one Matérn covariance evaluation
// (distance + Bessel-K + scaling) on one core. Every likelihood iteration
// regenerates the whole covariance matrix (θ changes between optimizer
// steps), so generation is part of the measured iteration in both the paper
// and this simulator. 3e-7 s ≈ 3.3 M evaluations/s/core, typical for a
// general-order Bessel path.
const kernelEvalSeconds = 3e-7

// compressionEfficiency derates the machine's GEMM rate for the QR/SVD-type
// kernels compression runs (lower arithmetic intensity, more memory traffic).
const compressionEfficiency = 0.5

// generationSeconds models the embarrassingly parallel covariance generation
// of one iteration: n²/2 kernel evaluations across all cores.
func generationSeconds(m Machine, n int) float64 {
	evals := float64(n) * float64(n) / 2
	return evals * kernelEvalSeconds / float64(m.Profile.Cores*m.Nodes)
}

// compressionSeconds models the per-iteration TLR compression of all
// off-diagonal tiles (randomized/cross approximation, O(nb²·k) per tile).
func compressionSeconds(m Machine, w Workload, nb, mt int) float64 {
	var flops float64
	for i := 0; i < mt; i++ {
		for j := 0; j < i; j++ {
			k := w.Ranks.Rank(nb, i-j)
			flops += 4 * float64(nb) * float64(nb) * float64(k+10)
		}
	}
	agg := m.Profile.GFlopsPerCore * 1e9 * float64(m.Profile.Cores*m.Nodes)
	return flops / (compressionEfficiency * agg)
}

// SimulateCholesky runs the workload's factorization DAG on the machine and
// returns the simulated result, including the per-iteration matrix
// generation (and, for TLR, compression) that ExaGeoStat performs on every
// likelihood evaluation. Memory is checked before execution: the per-node
// working set is 1.5× the owned-data footprint (runtime buffers and
// communication staging), matching the qualitative OOM behaviour of Fig. 4.
func SimulateCholesky(m Machine, w Workload) Result {
	if w.Variant == TLRVariant && w.Ranks == nil {
		panic("cluster: TLR workload without a rank model")
	}
	g, nb, mt := w.buildDAG()
	res := Result{EffectiveNB: nb, EffectiveMT: mt, Tasks: g.Len(), TotalFlops: g.TotalFlops()}

	owner := func(h *runtime.Handle) int {
		i := int(h.Tag >> 32)
		j := int(h.Tag & 0xffffffff)
		return m.Owner(i, j)
	}
	// memory accounting; the dense path allocates the full square matrix
	// (Chameleon descriptor), so off-diagonal tiles count twice (their
	// mirror lives on the transposed owner).
	nodeBytes := make([]int64, m.Nodes)
	for _, h := range g.Handles() {
		nodeBytes[owner(h)] += h.Bytes
		if w.Variant == Dense {
			i := int(h.Tag >> 32)
			j := int(h.Tag & 0xffffffff)
			if i != j {
				nodeBytes[m.Owner(j, i)] += h.Bytes
			}
		}
	}
	memLimit := int64(m.Profile.MemGB * 1e9)
	for _, b := range nodeBytes {
		wb := b + b/2
		if wb > res.MaxNodeBytes {
			res.MaxNodeBytes = wb
		}
	}
	if res.MaxNodeBytes > memLimit {
		res.OOM = true
		return res
	}

	res.Seconds, res.CommBytes = simulateDAG(m, g, owner)
	res.Seconds += generationSeconds(m, w.N)
	if w.Variant == TLRVariant {
		res.Seconds += compressionSeconds(m, w, nb, mt)
	}
	return res
}

// SimulatePrediction models the Fig. 5 prediction operation: one Cholesky
// factorization plus forward/backward triangular solves with nRHS
// right-hand sides and the cross-covariance application. The solves are
// bandwidth-bound sweeps over the factor; their time is added analytically
// (they are three orders of magnitude cheaper than the factorization, as
// the paper notes).
func SimulatePrediction(m Machine, w Workload, nRHS int) Result {
	res := SimulateCholesky(m, w)
	if res.OOM {
		return res
	}
	// Sweep cost: read every factor byte twice (forward+backward) per RHS
	// wavefront; RHS beyond the first pipeline almost freely, modeled at
	// 10% marginal cost.
	var fb int64
	g, _, _ := w.buildDAG()
	for _, h := range g.Handles() {
		fb += h.Bytes
	}
	factorBytes := float64(fb)
	aggBW := m.Profile.MemBWGBs * 1e9 * float64(m.Nodes)
	sweep := 2 * factorBytes / aggBW
	res.Seconds += sweep * (1 + 0.1*float64(nRHS-1))
	// cross-covariance apply: nRHS × N kernel evaluations + dot products,
	// negligible but accounted.
	res.Seconds += float64(nRHS) * float64(w.N) * 60 / (m.Profile.GFlopsPerCore * 1e9)
	return res
}

// SimulateBlockCholesky models the Fig. 3 "full-block" baseline: a
// LAPACK-style blocked Cholesky with fork-join multithreaded BLAS, which
// achieves a lower parallel efficiency than tile task flow. The 0.45
// efficiency factor reproduces the block-vs-tile gap the paper (and [2])
// reports.
func SimulateBlockCholesky(m Machine, n int) Result {
	flops := float64(n) * float64(n) * float64(n) / 3
	agg := m.Profile.GFlopsPerCore * 1e9 * float64(m.Profile.Cores) * float64(m.Nodes)
	res := Result{
		Seconds:    flops/(0.45*agg) + generationSeconds(m, n),
		Tasks:      1,
		TotalFlops: flops,
	}
	// LAPACK factors in place; working set ≈ 1.2× the matrix.
	bytes := int64(n) * int64(n) * 8 / int64(m.Nodes)
	res.MaxNodeBytes = bytes + bytes/5
	if res.MaxNodeBytes > int64(m.Profile.MemGB*1e9) {
		res.OOM = true
	}
	return res
}

// simulateDAG is the discrete-event engine: list scheduling with per-node
// slot pools and communication delays on remote reads.
func simulateDAG(m Machine, g *runtime.Graph, owner func(*runtime.Handle) int) (makespan, commBytes float64) {
	tasks := g.Tasks()
	n := len(tasks)
	if n == 0 {
		return 0, 0
	}
	slotRate := m.slotRate() * 1e9 // flops/s
	slotBW := m.slotMemBW()        // bytes/s
	lat := m.Profile.NetLatency
	netBW := m.Profile.NetBWGBs * 1e9

	// node and local-byte footprint per task
	taskNode := make([]int, n)
	taskCost := make([]float64, n)
	for i, t := range tasks {
		var node = 0
		var bytes int64
		for _, a := range t.Accesses {
			bytes += a.Handle.Bytes
			if a.Mode != runtime.Read {
				node = owner(a.Handle)
			}
		}
		taskNode[i] = node
		c := t.Flops / slotRate
		if memTime := float64(bytes) / slotBW; memTime > c {
			c = memTime
		}
		taskCost[i] = c
	}

	writeFinish := make(map[int]float64, len(g.Handles())) // handle ID -> producer finish
	depFinish := make([]float64, n)
	indeg := make([]int, n)
	ready := &entryHeap{}
	for i, t := range tasks {
		indeg[i] = len(t.Deps())
		if indeg[i] == 0 {
			heap.Push(ready, entry{id: i, at: commReady(tasks[i], taskNode[i], 0, nil, owner, lat, netBW, &commBytes)})
		}
	}
	slotFree := make([][]float64, m.Nodes)
	for i := range slotFree {
		slotFree[i] = make([]float64, m.slots())
	}
	for ready.Len() > 0 {
		e := heap.Pop(ready).(entry)
		t := tasks[e.id]
		node := taskNode[e.id]
		// earliest-free slot on the owning node
		slots := slotFree[node]
		wi := 0
		for i := 1; i < len(slots); i++ {
			if slots[i] < slots[wi] {
				wi = i
			}
		}
		start := slots[wi]
		if e.at > start {
			start = e.at
		}
		finish := start + taskCost[e.id]
		slots[wi] = finish
		if finish > makespan {
			makespan = finish
		}
		for _, a := range t.Accesses {
			if a.Mode != runtime.Read {
				writeFinish[a.Handle.ID] = finish
			}
		}
		for _, s := range t.Successors() {
			if finish > depFinish[s] {
				depFinish[s] = finish
			}
			indeg[s]--
			if indeg[s] == 0 {
				at := commReady(tasks[s], taskNode[s], depFinish[s], writeFinish, owner, lat, netBW, &commBytes)
				heap.Push(ready, entry{id: s, at: at})
			}
		}
	}
	return makespan, commBytes
}

// commReady returns the time the task's inputs are available on its node,
// accounting one latency + transfer per remote read (transfers overlap).
func commReady(t *runtime.Task, node int, depDone float64, writeFinish map[int]float64, owner func(*runtime.Handle) int, lat, bw float64, commBytes *float64) float64 {
	ready := depDone
	for _, a := range t.Accesses {
		if a.Mode != runtime.Read {
			continue
		}
		if owner(a.Handle) == node {
			continue
		}
		src := 0.0
		if writeFinish != nil {
			src = writeFinish[a.Handle.ID]
		}
		*commBytes += float64(a.Handle.Bytes)
		arr := src + lat
		if bw > 0 {
			arr += float64(a.Handle.Bytes) / bw
		}
		if arr > ready {
			ready = arr
		}
	}
	return ready
}

type entry struct {
	id int
	at float64
}

type entryHeap []entry

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h entryHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *entryHeap) Push(x any)        { *h = append(*h, x.(entry)) }
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
