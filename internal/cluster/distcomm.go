package cluster

import "repro/internal/mpi"

// DistCholeskyComm predicts the bytes each rank sends during one distributed
// Cholesky factorization on the given process grid, mirroring the message
// pattern of mpi.DistTLR.Cholesky (TLR) or mpi.DistMatrix.Cholesky (dense)
// step by step:
//
//   - the owner of the diagonal tile (k,k) broadcasts the dk×dk factor to
//     every rank in Grid.DiagRecipients(k, mt);
//   - every rank participates in the per-panel SPD agreement, an
//     AllreduceSum in which each non-root rank sends one float64 to rank 0
//     and rank 0 replies with one float64 to each non-root rank;
//   - the owner of each panel tile (i,k) sends it to every rank in
//     Grid.PanelRecipients(i, k, mt) — di·dk doubles when dense, a
//     [rows, cols, rank, U, V] payload of 3+(di+dk)·r doubles when
//     compressed, with r predicted by the calibrated RankModel at index
//     distance i−k.
//
// The TLR prediction is approximate only through the rank model: by the time
// tile (i,k) is sent its rank has drifted from the fresh-compression value
// under the accumulated low-rank updates. The returned slice has one entry
// per rank, indexable by mpi rank id.
func DistCholeskyComm(grid mpi.Grid, n, nb int, ranks *RankModel, dense bool) []float64 {
	size := grid.P * grid.Q
	sent := make([]float64, size)
	if n <= 0 || nb <= 0 {
		return sent
	}
	mt := (n + nb - 1) / nb
	tileDim := func(i int) int {
		if d := n - i*nb; d < nb {
			return d
		}
		return nb
	}
	for k := 0; k < mt; k++ {
		dk := tileDim(k)
		diagOwner := grid.Owner(k, k)
		sent[diagOwner] += float64(len(grid.DiagRecipients(k, mt)) * dk * dk * 8)
		if size > 1 {
			// SPD-agreement AllreduceSum: one float64 up, one down.
			sent[0] += float64((size - 1) * 8)
			for r := 1; r < size; r++ {
				sent[r] += 8
			}
		}
		for i := k + 1; i < mt; i++ {
			di := tileDim(i)
			doubles := di * dk
			if !dense {
				r := ranks.Rank(nb, i-k)
				doubles = 3 + (di+dk)*r
			}
			sent[grid.Owner(i, k)] += float64(len(grid.PanelRecipients(i, k, mt)) * doubles * 8)
		}
	}
	return sent
}
