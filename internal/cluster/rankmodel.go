package cluster

import (
	"math"
	"sort"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/rng"
	"repro/internal/tlr"
)

// RankModel predicts the post-compression rank of an off-diagonal Matérn
// covariance tile as a function of the tile-index distance |i−j| (tiles of
// Morton-ordered locations at index distance d cover location clusters
// roughly d tile-diameters apart) and the tile size.
//
// The model is calibrated empirically: real Matérn tiles are generated at a
// calibration tile size and compressed with the SVD backend, the measured
// mean rank is tabulated per index distance, and other tile sizes scale the
// table logarithmically — the growth H-matrix theory predicts for 2D kernel
// interactions.
type RankModel struct {
	Accuracy float64
	CalNB    int
	// byDist[d] is the calibrated mean rank at index distance ~d (geometric
	// distance buckets).
	dists []int
	ranks []float64
}

// CalibrateRankModel measures ranks on a synthetic perturbed-grid Matérn
// field with the given parameters. calN controls the calibration problem
// size (default 2048 when ≤ 0); nbCal the calibration tile size (default
// 256 when ≤ 0).
func CalibrateRankModel(acc float64, theta cov.Params, calN, nbCal int) *RankModel {
	if calN <= 0 {
		calN = 2048
	}
	if nbCal <= 0 {
		nbCal = 256
	}
	r := rng.New(0xca11b)
	pts := geom.GeneratePerturbedGrid(calN, r)
	pts = geom.Sorted(geom.Morton, pts)
	k := cov.NewKernel(theta)
	mt := calN / nbCal
	comp := tlr.SVDCompressor{}

	sums := make(map[int]float64)
	counts := make(map[int]int)
	buf := la.NewMat(nbCal, nbCal)
	for i := 0; i < mt; i++ {
		for j := 0; j < i; j++ {
			k.Block(buf, pts[i*nbCal:(i+1)*nbCal], pts[j*nbCal:(j+1)*nbCal], geom.Euclidean)
			d := i - j
			sums[d] += float64(comp.Compress(buf, acc).Rank())
			counts[d]++
		}
	}
	m := &RankModel{Accuracy: acc, CalNB: nbCal}
	for d := range sums {
		m.dists = append(m.dists, d)
	}
	sort.Ints(m.dists)
	for _, d := range m.dists {
		m.ranks = append(m.ranks, sums[d]/float64(counts[d]))
	}
	return m
}

// Rank predicts the rank of tile (i, j) (index distance d = |i−j| ≥ 1) at
// tile size nb. Predictions are clamped to [1, nb].
func (m *RankModel) Rank(nb, d int) int {
	if d < 1 {
		d = 1
	}
	base := m.lookup(d)
	// Logarithmic tile-size scaling relative to the calibration size.
	scale := 1.0
	if nb != m.CalNB && nb > 1 && m.CalNB > 1 {
		scale = math.Log2(float64(nb)) / math.Log2(float64(m.CalNB))
		if scale < 0.25 {
			scale = 0.25
		}
	}
	k := int(math.Ceil(base * scale))
	if k < 1 {
		k = 1
	}
	if k > nb {
		k = nb
	}
	return k
}

// lookup interpolates the calibration table, extrapolating flat beyond its
// ends (ranks saturate at long distance).
func (m *RankModel) lookup(d int) float64 {
	if len(m.dists) == 0 {
		return 8 // uncalibrated fallback
	}
	if d <= m.dists[0] {
		return m.ranks[0]
	}
	last := len(m.dists) - 1
	if d >= m.dists[last] {
		return m.ranks[last]
	}
	i := sort.SearchInts(m.dists, d)
	// dists[i-1] < d < dists[i]
	x0, x1 := float64(m.dists[i-1]), float64(m.dists[i])
	y0, y1 := m.ranks[i-1], m.ranks[i]
	return y0 + (y1-y0)*(float64(d)-x0)/(x1-x0)
}
