package cluster

import (
	"math"
	"testing"

	"repro/internal/cov"
)

func testTheta() cov.Params { return cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5} }

// small calibration shared across tests (real SVD compressions, so keep it
// modest).
var testModel = CalibrateRankModel(1e-7, testTheta(), 1024, 128)

func TestSquarishGrid(t *testing.T) {
	cases := map[int][2]int{
		1:    {1, 1},
		4:    {2, 2},
		6:    {2, 3},
		256:  {16, 16},
		1024: {32, 32},
		7:    {1, 7},
	}
	for n, want := range cases {
		p, q := squarish(n)
		if p != want[0] || q != want[1] {
			t.Errorf("squarish(%d) = %d,%d want %v", n, p, q, want)
		}
		if p*q != n {
			t.Errorf("squarish(%d) does not factor", n)
		}
	}
}

func TestOwnerBlockCyclic(t *testing.T) {
	m := NewMachine(ShaheenNode, 6) // 2x3 grid
	seen := make(map[int]bool)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			o := m.Owner(i, j)
			if o < 0 || o >= 6 {
				t.Fatalf("owner out of range: %d", o)
			}
			seen[o] = true
		}
	}
	if len(seen) != 6 {
		t.Fatalf("block-cyclic did not use all nodes: %v", seen)
	}
	if m.Owner(0, 0) != m.Owner(2, 3) {
		t.Fatal("cyclic periodicity broken")
	}
}

func TestRankModelBasics(t *testing.T) {
	// Ranks decrease (weakly) with tile distance and are within [1, nb].
	prev := math.MaxInt
	for _, d := range []int{1, 2, 4, 7} {
		k := testModel.Rank(128, d)
		if k < 1 || k > 128 {
			t.Fatalf("rank out of bounds: %d", k)
		}
		if k > prev {
			t.Fatalf("rank grew with distance: d=%d k=%d prev=%d", d, k, prev)
		}
		prev = k
	}
}

func TestRankModelAccuracyOrdering(t *testing.T) {
	loose := CalibrateRankModel(1e-3, testTheta(), 512, 128)
	tight := CalibrateRankModel(1e-9, testTheta(), 512, 128)
	if loose.Rank(128, 1) > tight.Rank(128, 1) {
		t.Fatalf("looser accuracy should not need larger ranks: %d vs %d",
			loose.Rank(128, 1), tight.Rank(128, 1))
	}
	if tight.Rank(128, 1) <= 2 {
		t.Fatalf("tight-accuracy near-diagonal rank suspiciously small: %d", tight.Rank(128, 1))
	}
}

func TestRankModelTileSizeScaling(t *testing.T) {
	k1 := testModel.Rank(128, 2)
	k2 := testModel.Rank(1024, 2)
	if k2 < k1 {
		t.Fatalf("rank should grow (logarithmically) with tile size: %d -> %d", k1, k2)
	}
	if k2 > 4*k1 {
		t.Fatalf("rank growth with tile size too fast: %d -> %d", k1, k2)
	}
}

func TestDenseSimFlopsMatchClosedForm(t *testing.T) {
	m := NewMachine(ShaheenNode, 4)
	w := Workload{N: 1 << 15, NB: 512, Variant: Dense}
	r := SimulateCholesky(m, w)
	want := float64(w.N) * float64(w.N) * float64(w.N) / 3
	if math.Abs(r.TotalFlops-want)/want > 0.05 {
		t.Fatalf("dense sim flops %g vs n^3/3 = %g", r.TotalFlops, want)
	}
	if r.OOM || r.Seconds <= 0 {
		t.Fatalf("unexpected result: %+v", r)
	}
}

func TestSimScalesWithNodes(t *testing.T) {
	w := Workload{N: 100_000, NB: 560, Variant: Dense}
	t4 := SimulateCholesky(NewMachine(ShaheenNode, 4), w).Seconds
	t16 := SimulateCholesky(NewMachine(ShaheenNode, 16), w).Seconds
	if t16 >= t4 {
		t.Fatalf("no strong scaling: 4 nodes %gs, 16 nodes %gs", t4, t16)
	}
	if t16 < t4/8 {
		t.Fatalf("unrealistically superlinear scaling: %g -> %g", t4, t16)
	}
}

func TestTLRFasterThanDenseAtScale(t *testing.T) {
	m := NewMachine(ShaheenNode, 16)
	n := 250_000
	dense := SimulateCholesky(m, Workload{N: n, NB: 560, Variant: Dense})
	tlr := SimulateCholesky(m, Workload{N: n, NB: 1900, Variant: TLRVariant, Accuracy: 1e-7, Ranks: testModel})
	if dense.OOM || tlr.OOM {
		t.Fatalf("unexpected OOM: dense=%v tlr=%v", dense.OOM, tlr.OOM)
	}
	if tlr.Seconds >= dense.Seconds {
		t.Fatalf("TLR (%gs) not faster than dense (%gs) at n=%d", tlr.Seconds, dense.Seconds, n)
	}
	speedup := dense.Seconds / tlr.Seconds
	if speedup > 100 {
		t.Fatalf("speedup %g implausibly large — cost model broken", speedup)
	}
}

func TestLooserAccuracyIsFaster(t *testing.T) {
	m := NewMachine(ShaheenNode, 16)
	n := 250_000
	loose := CalibrateRankModel(1e-5, testTheta(), 1024, 128)
	tight := CalibrateRankModel(1e-9, testTheta(), 1024, 128)
	tl := SimulateCholesky(m, Workload{N: n, NB: 1900, Variant: TLRVariant, Ranks: loose}).Seconds
	tt := SimulateCholesky(m, Workload{N: n, NB: 1900, Variant: TLRVariant, Ranks: tight}).Seconds
	if tl > tt {
		t.Fatalf("looser accuracy slower: 1e-5 %gs vs 1e-9 %gs", tl, tt)
	}
}

func TestDenseOOMAtScale(t *testing.T) {
	// 2M locations on 256 Shaheen nodes: dense working set (2×) exceeds
	// 128 GB/node — the missing full-tile points of Fig. 4.
	m := NewMachine(ShaheenNode, 256)
	r := SimulateCholesky(m, Workload{N: 2_000_000, NB: 560, Variant: Dense})
	if !r.OOM {
		t.Fatalf("expected OOM for dense 2M on 256 nodes (max node bytes %d)", r.MaxNodeBytes)
	}
	// TLR at the same size fits.
	rt := SimulateCholesky(m, Workload{N: 2_000_000, NB: 1900, Variant: TLRVariant, Ranks: testModel})
	if rt.OOM {
		t.Fatalf("TLR should fit at 2M/256 nodes (max node bytes %d)", rt.MaxNodeBytes)
	}
}

func TestCoarseningCap(t *testing.T) {
	w := Workload{N: 2_000_000, NB: 560, Variant: Dense}
	nb, mt := w.effectiveTiling()
	if mt > 128 {
		t.Fatalf("coarsening cap not applied: mt=%d", mt)
	}
	if nb*mt < w.N {
		t.Fatalf("coarsened tiling does not cover the matrix: %d*%d < %d", nb, mt, w.N)
	}
	w.MaxTileRows = 64
	_, mt2 := w.effectiveTiling()
	if mt2 != 64 {
		t.Fatalf("explicit cap ignored: %d", mt2)
	}
}

func TestSimulateBlockSlowerThanTile(t *testing.T) {
	m := NewMachine(Haswell, 1)
	n := 60_000
	blk := SimulateBlockCholesky(m, n)
	til := SimulateCholesky(m, Workload{N: n, NB: 560, Variant: Dense})
	if blk.Seconds <= til.Seconds {
		t.Fatalf("full-block (%gs) should be slower than full-tile (%gs)", blk.Seconds, til.Seconds)
	}
}

func TestSimulatePredictionDominatedByCholesky(t *testing.T) {
	m := NewMachine(ShaheenNode, 16)
	w := Workload{N: 200_000, NB: 1900, Variant: TLRVariant, Ranks: testModel}
	chol := SimulateCholesky(m, w)
	pred := SimulatePrediction(m, w, 100)
	if pred.Seconds < chol.Seconds {
		t.Fatal("prediction cannot be faster than its factorization")
	}
	if pred.Seconds > 2*chol.Seconds {
		t.Fatalf("solve phase should be small: chol %gs pred %gs", chol.Seconds, pred.Seconds)
	}
}

func TestCommBytesNonzeroMultiNode(t *testing.T) {
	w := Workload{N: 100_000, NB: 1000, Variant: Dense}
	single := SimulateCholesky(NewMachine(ShaheenNode, 1), w)
	multi := SimulateCholesky(NewMachine(ShaheenNode, 16), w)
	if single.CommBytes != 0 {
		t.Fatalf("single node should not communicate: %g", single.CommBytes)
	}
	if multi.CommBytes <= 0 {
		t.Fatal("multi-node run reported zero communication")
	}
}

func TestTLRWithoutRanksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for TLR workload without rank model")
		}
	}()
	SimulateCholesky(NewMachine(ShaheenNode, 4), Workload{N: 10000, NB: 500, Variant: TLRVariant})
}
