package cluster

import "math"

// tlrKernelEfficiency derates the machine's effective rate for TLR tasks:
// the QR/SVD recompression and small-rank GEMMs inside a TLR update run far
// below DGEMM efficiency. The dense tile kernels use denseEfficiency.
const (
	tlrKernelEfficiency = 0.08
	denseEfficiency     = 0.90
	// msgOverheadSeconds is the per-message software cost (MPI + runtime)
	// on top of wire latency.
	msgOverheadSeconds = 50e-6
	// tlrDistributedImbalance inflates multi-node TLR makespans: tile ranks
	// vary across the matrix, so static 2D block-cyclic ownership leaves
	// nodes with unequal work — an effect the roofline max cannot see.
	// Shared-memory runs are exempt (the work-stealing runtime rebalances).
	tlrDistributedImbalance = 1.5
)

// AnalyticCholesky models one MLE iteration (generation [+ compression] +
// factorization) at the TRUE tile granularity of the workload using roofline
// bounds instead of task-by-task discrete events:
//
//	makespan = max(flop bound, memory-traffic bound, critical path,
//	               communication bound) + generation [+ compression].
//
// At paper scale the true DAG has 10⁸–10⁹ tasks, far beyond event-driven
// simulation; the analytic bounds keep per-task costs exact (including
// distance-dependent TLR ranks) while aggregating scheduling. The DES
// (SimulateCholesky) and this model agree at small tile counts (see tests).
func AnalyticCholesky(m Machine, w Workload) Result {
	if w.Variant == TLRVariant && w.Ranks == nil {
		panic("cluster: TLR workload without a rank model")
	}
	nb := w.NB
	mt := (w.N + nb - 1) / nb
	res := Result{EffectiveNB: nb, EffectiveMT: mt}

	rank := func(d int) int {
		if w.Variant == Dense {
			return nb
		}
		return w.Ranks.Rank(nb, d)
	}
	tileBytes := func(d int) float64 {
		if w.Variant == Dense || d == 0 {
			return float64(nb) * float64(nb) * 8
		}
		return float64(2*nb*rank(d)) * 8
	}

	fnb := float64(nb)
	// --- totals -------------------------------------------------------
	var flops, bytes, storage float64
	// potrf (diagonal, always dense)
	flops += float64(mt) * fnb * fnb * fnb / 3
	bytes += float64(mt) * tileBytes(0)
	storage += float64(mt) * tileBytes(0)
	// trsm and syrk: tile (i,k) at distance d = i−k occurs (mt−d) times.
	for d := 1; d < mt; d++ {
		cnt := float64(mt - d)
		k := float64(rank(d))
		storage += cnt * tileBytes(d)
		var trsmF, syrkF float64
		if w.Variant == Dense {
			trsmF = fnb * fnb * fnb
			syrkF = fnb * fnb * fnb
		} else {
			trsmF = fnb * fnb * k
			syrkF = 2*k*k*fnb + 2*fnb*fnb*k
		}
		flops += cnt * (trsmF + syrkF)
		bytes += cnt * (2*tileBytes(d) + 2*tileBytes(0))
	}
	// gemm: for panel k, pair (i, j) with s = i−k, t = j−k (s > t ≥ 1)
	// occurs for (mt − s) panel indices; cost depends only on (s, t).
	var gemmFlops, gemmBytes, gemmTasks float64
	for s := 2; s < mt; s++ {
		cnt := float64(mt - s)
		for t := 1; t < s; t++ {
			var f float64
			if w.Variant == Dense {
				f = 2 * fnb * fnb * fnb
			} else {
				ks := float64(rank(s) + rank(t) + rank(s-t))
				f = 2*fnb*ks*ks + ks*ks*ks
			}
			gemmFlops += cnt * f
			gemmBytes += cnt * (tileBytes(s) + tileBytes(t) + 2*tileBytes(s-t))
			gemmTasks += cnt
		}
	}
	flops += gemmFlops
	bytes += gemmBytes
	res.TotalFlops = flops
	res.Tasks = mt + (mt-1)*mt + int(gemmTasks)

	// --- memory check -------------------------------------------------
	// The dense path (Chameleon descriptors) allocates the full square
	// matrix; TLR (HiCMA) stores diagonal + compressed lower triangle only.
	if w.Variant == Dense {
		storage = float64(w.N) * float64(w.N) * 8
	}
	perNode := storage / float64(m.Nodes)
	res.MaxNodeBytes = int64(1.5 * perNode)
	if res.MaxNodeBytes > int64(m.Profile.MemGB*1e9) {
		res.OOM = true
		return res
	}

	// --- roofline terms -------------------------------------------------
	eff := denseEfficiency
	if w.Variant == TLRVariant {
		eff = tlrKernelEfficiency
	}
	aggFlops := m.Profile.GFlopsPerCore * 1e9 * float64(m.Profile.Cores*m.Nodes)
	flopTime := flops / (eff * aggFlops)
	memTime := bytes / (m.Profile.MemBWGBs * 1e9 * float64(m.Nodes))

	// critical path: the panel chain potrf→trsm→(syrk|gemm) per step, run
	// at single-core speed. The diagonal POTRF is a dense kernel in both
	// variants and runs at dense efficiency; only the low-rank updates are
	// derated.
	coreDense := m.Profile.GFlopsPerCore * 1e9 * denseEfficiency
	coreEff := m.Profile.GFlopsPerCore * 1e9 * eff
	cpStep := fnb * fnb * fnb / 3 / coreDense
	if w.Variant == Dense {
		cpStep += (fnb*fnb*fnb + 2*fnb*fnb*fnb) / coreEff
	} else {
		k1 := float64(rank(1))
		ks := float64(rank(2) + rank(1) + rank(1))
		cpStep += (fnb*fnb*k1 + 2*fnb*ks*ks + ks*ks*ks) / coreEff
	}
	cpTime := float64(mt) * cpStep

	// communication: panel tiles broadcast along process-grid rows and
	// columns (the 2D block-cyclic pattern); each stored tile travels to at
	// most GridP+GridQ−2 other nodes.
	var commTime float64
	if m.Nodes > 1 && m.Profile.NetBWGBs > 0 {
		bcast := float64(m.GridP + m.GridQ - 2)
		if nn := float64(m.Nodes - 1); bcast > nn {
			bcast = nn
		}
		var vol, msgs float64
		for d := 0; d < mt; d++ {
			cnt := float64(mt - d)
			vol += cnt * tileBytes(d) * bcast
			msgs += cnt * bcast
		}
		res.CommBytes = vol
		perNodeVol := vol / float64(m.Nodes)
		perNodeMsgs := msgs / float64(m.Nodes)
		commTime = perNodeVol/(m.Profile.NetBWGBs*1e9) +
			perNodeMsgs*(m.Profile.NetLatency+msgOverheadSeconds)
	}

	res.Seconds = math.Max(math.Max(flopTime, memTime), math.Max(cpTime, commTime))
	if w.Variant == TLRVariant && m.Nodes > 1 {
		res.Seconds *= tlrDistributedImbalance
	}
	res.Seconds += generationSeconds(m, w.N)
	if w.Variant == TLRVariant {
		res.Seconds += analyticCompression(m, w, nb, mt)
	}
	return res
}

// analyticCompression is compressionSeconds at true granularity using the
// distance-counted tile population.
func analyticCompression(m Machine, w Workload, nb, mt int) float64 {
	var flops float64
	for d := 1; d < mt; d++ {
		k := w.Ranks.Rank(nb, d)
		flops += float64(mt-d) * 4 * float64(nb) * float64(nb) * float64(k+10)
	}
	agg := m.Profile.GFlopsPerCore * 1e9 * float64(m.Profile.Cores*m.Nodes)
	return flops / (compressionEfficiency * agg)
}

// AnalyticPrediction models the Fig. 5 prediction operation on top of
// AnalyticCholesky, mirroring SimulatePrediction's solve model.
func AnalyticPrediction(m Machine, w Workload, nRHS int) Result {
	res := AnalyticCholesky(m, w)
	if res.OOM {
		return res
	}
	nb := w.NB
	mt := (w.N + nb - 1) / nb
	var factorBytes float64
	factorBytes += float64(mt) * float64(nb) * float64(nb) * 8
	for d := 1; d < mt; d++ {
		if w.Variant == Dense {
			factorBytes += float64(mt-d) * float64(nb) * float64(nb) * 8
		} else {
			factorBytes += float64(mt-d) * float64(2*nb*w.Ranks.Rank(nb, d)) * 8
		}
	}
	aggBW := m.Profile.MemBWGBs * 1e9 * float64(m.Nodes)
	sweep := 2 * factorBytes / aggBW
	res.Seconds += sweep * (1 + 0.1*float64(nRHS-1))
	res.Seconds += float64(nRHS) * float64(w.N) * 60 / (m.Profile.GFlopsPerCore * 1e9)
	return res
}
