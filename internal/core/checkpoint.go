// Fit checkpoint/restart: a bit-exact log of the optimizer's likelihood
// evaluations, flushed atomically on a cadence so a run killed mid-fit can
// resume. The optimizer (Nelder–Mead) is deterministic — same start, same
// bounds, same objective values → same trajectory — so resuming means
// replaying the recorded (x, ℓ) pairs instead of recomputing them; the
// resumed run reaches bitwise-identical results at a cost of zero
// factorizations for the replayed prefix.
//
// The log is guarded by a digest over the dataset and every result-affecting
// option, so a checkpoint can never silently replay a foreign run. MaxEvals
// is deliberately excluded: extending a truncated fit is the whole point of
// resuming.
package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"strconv"

	"repro/internal/dataio"
	"repro/internal/obs"
)

// Checkpoint replay counters: evaluations answered from the log (hit) vs
// computed and appended (miss).
var (
	cntCkptReplay = obs.GetCounter("core.checkpoint.replay")
	cntCkptEval   = obs.GetCounter("core.checkpoint.eval")
)

// fitDigest fingerprints everything that determines the optimizer's
// trajectory: the session's dataset (post-ordering, so the bytes the backend
// actually sees), the result-affecting config knobs, and the fit options.
// MaxEvals is excluded (truncation point, not trajectory); MemBudget,
// SpillDir and Workers are excluded because out-of-core execution and worker
// count are bitwise-invariant (the OOC test suite holds that line).
func (s *Session) fitDigest(o FitOptions) uint64 {
	h := fnv.New64a()
	var b [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	wf := func(f float64) { w(math.Float64bits(f)) }
	ws := func(s string) { h.Write([]byte(s)); h.Write([]byte{0}) }

	for _, p := range s.p.Points {
		wf(p.X)
		wf(p.Y)
	}
	for _, z := range s.p.Z {
		wf(z)
	}
	w(uint64(s.p.Metric))

	c := s.cfg
	w(uint64(c.Mode))
	w(uint64(c.TileSize))
	wf(c.Accuracy)
	ws(c.CompressorName)
	wf(c.Nugget)
	wf(c.NuggetEscalation)
	w(uint64(c.Ranks))

	for _, t := range []float64{
		o.Start.Variance, o.Start.Range, o.Start.Smoothness,
		o.Lower.Variance, o.Lower.Range, o.Lower.Smoothness,
		o.Upper.Variance, o.Upper.Range, o.Upper.Smoothness,
		o.TolX,
	} {
		wf(t)
	}
	flags := uint64(0)
	if o.FixSmoothness {
		flags |= 1
	}
	if o.Profiled {
		flags |= 2
	}
	w(flags)
	return h.Sum64()
}

// fitCheckpoint is the on-disk format. Every float64 travels as the hex of
// its IEEE bits, so a JSON round trip is lossless and the replayed objective
// values are the recorded ones to the last bit.
type fitCheckpoint struct {
	Digest string     `json:"digest"`
	Evals  [][]string `json:"evals"` // each entry: x₀ … x_{d-1}, f
}

// ckptLog is the in-memory side: the recorded prefix being replayed plus the
// evaluations appended live, flushed atomically every `every` appends.
type ckptLog struct {
	path     string
	every    int
	digest   uint64
	evals    [][]string
	recorded int // evals[:recorded] came from disk and are replayable
	replay   int // next replay index into the recorded prefix
	dirty    int // appends since the last flush
}

// openCheckpoint loads (or initializes) the fit checkpoint o selects.
// Returns (nil, nil) when checkpointing is off. A file whose digest does not
// match is an error: replaying a log recorded for different data or options
// would produce silently wrong results.
func openCheckpoint(o FitOptions, digest uint64) (*ckptLog, error) {
	if o.Checkpoint == "" {
		return nil, nil
	}
	c := &ckptLog{path: o.Checkpoint, every: o.CheckpointEvery, digest: digest}
	raw, err := os.ReadFile(o.Checkpoint)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	var f fitCheckpoint
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("core: checkpoint %s: %w", o.Checkpoint, err)
	}
	if f.Digest != fmt.Sprintf("%016x", digest) {
		return nil, fmt.Errorf("core: checkpoint %s was recorded for a different problem or options (digest %s, want %016x)",
			o.Checkpoint, f.Digest, digest)
	}
	for i, e := range f.Evals {
		if len(e) < 2 {
			return nil, fmt.Errorf("core: checkpoint %s: malformed eval %d", o.Checkpoint, i)
		}
	}
	c.evals = f.Evals
	c.recorded = len(f.Evals)
	return c, nil
}

// wrap interposes the log on the optimizer's objective: recorded
// evaluations replay from the log, fresh ones are computed and appended.
func (c *ckptLog) wrap(obj func([]float64) float64) func([]float64) float64 {
	return func(x []float64) float64 {
		if f, ok := c.lookup(x); ok {
			cntCkptReplay.Inc()
			return f
		}
		cntCkptEval.Inc()
		f := obj(x)
		c.append(x, f)
		return f
	}
}

// lookup replays the next recorded evaluation when its x matches bitwise.
// The first divergence ends replay for good and truncates the stale tail —
// the trajectory from here on is a different run's.
func (c *ckptLog) lookup(x []float64) (float64, bool) {
	if c.replay >= c.recorded {
		return 0, false
	}
	rec := c.evals[c.replay]
	if len(rec) != len(x)+1 {
		c.divergeAt(c.replay)
		return 0, false
	}
	for i, xi := range x {
		if v, err := unhexFloat(rec[i]); err != nil || v != xi {
			c.divergeAt(c.replay)
			return 0, false
		}
	}
	f, err := unhexFloat(rec[len(x)])
	if err != nil {
		c.divergeAt(c.replay)
		return 0, false
	}
	c.replay++
	return f, true
}

func (c *ckptLog) divergeAt(i int) {
	c.evals = c.evals[:i]
	c.recorded = i
	c.replay = i
	c.dirty++ // the truncation must reach disk
}

func (c *ckptLog) append(x []float64, f float64) {
	e := make([]string, 0, len(x)+1)
	for _, xi := range x {
		e = append(e, hexFloat(xi))
	}
	e = append(e, hexFloat(f))
	c.evals = append(c.evals, e)
	c.dirty++
	if c.dirty >= c.every {
		// Flush errors surface on the final flush; a failed periodic write
		// only costs resume granularity, not correctness.
		_ = c.flush()
	}
}

// flush writes the whole log atomically (temp + sync + rename). Safe on a
// nil receiver so call sites need no checkpointing-enabled branch.
func (c *ckptLog) flush() error {
	if c == nil || (c.dirty == 0 && c.fileExists()) {
		return nil
	}
	f := fitCheckpoint{Digest: fmt.Sprintf("%016x", c.digest), Evals: c.evals}
	err := dataio.AtomicWriteFile(c.path, func(w io.Writer) error {
		return json.NewEncoder(w).Encode(&f)
	})
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	c.dirty = 0
	return nil
}

func (c *ckptLog) fileExists() bool {
	_, err := os.Stat(c.path)
	return err == nil
}

func hexFloat(f float64) string {
	return strconv.FormatUint(math.Float64bits(f), 16)
}

func unhexFloat(s string) (float64, error) {
	u, err := strconv.ParseUint(s, 16, 64)
	return math.Float64frombits(u), err
}
