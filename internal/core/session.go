package core

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/optimize"
)

// ErrSessionBusy is returned when two goroutines enter a Session at once.
// A Session is not safe for concurrent use — its evaluations share cached
// buffers — and instead of silently corrupting them the entry points detect
// the overlap and fail. Callers that need concurrency put a serializing
// worker in front of the session (internal/serve does exactly that and
// relies on this guard to prove its serialization holds).
var ErrSessionBusy = errors.New("core: Session is not safe for concurrent use; serialize calls")

// Predict solve-cache counters: each Predict/PredictWithVariance either
// reuses the session's cached kriging solve state for its (θ, nugget) key
// (hit) or factors and solves anew (miss). A fit-once/predict-many workload
// should show misses only on the first prediction per θ.
var (
	cntPredictCacheHit  = obs.GetCounter("core.predict.cache.hit")
	cntPredictCacheMiss = obs.GetCounter("core.predict.cache.miss")
)

// Session owns the cached per-problem state that repeated likelihood
// evaluations, fits and predictions on one dataset share: the Σ buffer
// (FullBlock), the tile descriptors and generation+factorization DAG
// (FullTile), the TLR shell and fused DAG (TLR), or the distributed World
// and per-rank shards (TLR with Config.Ranks > 1). The free functions
// (LogLikelihood, Fit, Predict, ...) are thin wrappers that build a
// throwaway Session per call; hold a Session explicitly when making many
// calls on one problem so the reuse is part of the API contract rather than
// hidden package state.
//
// A Session is NOT safe for concurrent use: evaluations share cached
// buffers, and results of one call may be invalidated by the next.
// Concurrent entry is detected by an atomic in-use guard and fails with
// ErrSessionBusy instead of corrupting state.
type Session struct {
	p   *Problem
	cfg Config // validated and normalized

	inj *chaos.Injector // nil unless cfg.Chaos is set

	// be is the evaluator backend the registry built for cfg.Mode/Ranks.
	// All likelihood and kriging work routes through it; Session adds the
	// busy guard and the (θ, nugget)-keyed predict cache on top.
	be Backend

	// inUse is the concurrent-entry guard: 0 idle, 1 inside a public
	// evaluation method.
	inUse atomic.Int32

	// pred caches the kriging solve state across Predict /
	// PredictWithVariance calls at an unchanged (θ, nugget) — the
	// fit-once/predict-many serving workload pays one factorization for the
	// first prediction and O(m·n) for every one after.
	pred predictCache
}

// predictCache is the solve state Predict and PredictWithVariance share,
// keyed by the (θ, nugget) pair it was computed for. yFull and yHalf are
// private copies and stay valid indefinitely; factor aliases the backend's
// cached buffers and is only reusable while the backend's factorization
// generation is unchanged (any interleaved evaluation at another θ
// invalidates it — the generation comparison catches that).
type predictCache struct {
	valid  bool
	theta  cov.Params
	nugget float64

	yFull []float64 // Σ₂₂⁻¹·Z₂ (Predict's weights)
	yHalf []float64 // L⁻¹·Z₂ (PredictWithVariance's half-solved rhs)

	factor Factor // FactorBackend modes only; nil on the distributed backend
	gen    uint64 // backend generation factor was produced at
}

// NewSession validates cfg, normalizes its zero fields to the documented
// defaults, and builds the backend the configuration selects. The returned
// Session is ready for repeated Fit/LogLikelihood/Predict calls.
func NewSession(p *Problem, cfg Config) (*Session, error) {
	if p == nil || p.N() == 0 {
		return nil, fmt.Errorf("core: nil or empty problem")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	if cfg.Ordering != "" && cfg.Ordering != p.Ordering {
		// The configured ordering differs from the Problem's: evaluate on a
		// session-private reordered copy. The caller's Problem is untouched,
		// and the copy's Perm still maps back to caller order.
		ord, err := geom.NewOrdering(cfg.Ordering, cfg.TileSize)
		if err != nil {
			return nil, err // unreachable after Validate; kept for safety
		}
		p = p.Reordered(ord)
	}
	s := &Session{p: p, cfg: cfg}
	if cfg.Chaos != nil {
		s.inj = chaos.NewInjector(cfg.Chaos)
	}
	be, err := newBackend(p, cfg, s.inj)
	if err != nil {
		return nil, err
	}
	s.be = be
	return s, nil
}

// Close releases resources the session's backend holds outside the Go heap
// — today that is the TLR out-of-core spill file (Config.MemBudget > 0).
// Safe to call on every mode (a no-op without external resources) and
// idempotent; the session must not be used afterwards.
func (s *Session) Close() error {
	if c, ok := s.be.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// StoreStats reports the out-of-core tile store's peak resident bytes and
// current spill-file size. ok is false when the session runs in memory
// (MemBudget == 0) or no factorization has happened yet.
func (s *Session) StoreStats() (highWater, spilled int64, ok bool) {
	if ss, hasStore := s.be.(interface {
		storeStats() (int64, int64, bool)
	}); hasStore {
		return ss.storeStats()
	}
	return 0, 0, false
}

// Backend returns the evaluator backend the session routes through — the
// registry-built object for the configured Mode. Useful for capability
// checks (FactorBackend, CommBackend); the returned backend shares the
// session's cached state and must not be used concurrently with it.
func (s *Session) Backend() Backend { return s.be }

// ChaosStats reports the faults the session's injector has raised so far
// (the zero Stats when Config.Chaos is nil).
func (s *Session) ChaosStats() chaos.Stats {
	if s.inj == nil {
		return chaos.Stats{}
	}
	return s.inj.Stats()
}

// Config returns the session's normalized configuration (defaults resolved).
func (s *Session) Config() Config { return s.cfg }

// Problem returns the dataset the session operates on. When Config.Ordering
// differs from the ordering the Problem was built with, this is the
// session-private reordered copy (its Perm maps back to caller order), not
// the Problem passed to NewSession.
func (s *Session) Problem() *Problem { return s.p }

// acquire takes the session's in-use guard or reports concurrent entry.
func (s *Session) acquire(op string) error {
	if !s.inUse.CompareAndSwap(0, 1) {
		return fmt.Errorf("core: %s: %w", op, ErrSessionBusy)
	}
	return nil
}

// release returns the session to idle.
func (s *Session) release() { s.inUse.Store(0) }

// LogLikelihood evaluates ℓ(θ) (paper eq. 1), reusing the session's cached
// state across calls.
func (s *Session) LogLikelihood(theta cov.Params) (LikResult, error) {
	if err := s.acquire("LogLikelihood"); err != nil {
		return LikResult{}, err
	}
	defer s.release()
	return s.logLikelihood(theta)
}

func (s *Session) logLikelihood(theta cov.Params) (LikResult, error) {
	return s.be.LogLikelihood(theta)
}

// ProfiledLogLikelihood evaluates the concentrated likelihood ℓ_p(θ₂, θ₃)
// (see the package-level ProfiledLogLikelihood for the formulation).
func (s *Session) ProfiledLogLikelihood(rangeP, smoothness float64) (logL, varianceHat float64, err error) {
	if err := s.acquire("ProfiledLogLikelihood"); err != nil {
		return 0, 0, err
	}
	defer s.release()
	return s.profiledLogLikelihood(rangeP, smoothness)
}

func (s *Session) profiledLogLikelihood(rangeP, smoothness float64) (logL, varianceHat float64, err error) {
	return s.be.ProfiledLogLikelihood(rangeP, smoothness)
}

// Fit estimates θ̂ by maximizing the log-likelihood with the derivative-free
// optimizer. The search runs over log-transformed variance and range (their
// scales span decades) and linear smoothness. Every objective call reuses
// the session's cached factorization state. With FitOptions.Profiled set the
// variance is concentrated out analytically and the optimizer searches only
// (θ₂, θ₃).
func (s *Session) Fit(opts FitOptions) (FitResult, error) {
	if err := s.acquire("Fit"); err != nil {
		return FitResult{}, err
	}
	defer s.release()
	o := opts.withDefaults(s.p)
	if o.Profiled {
		return s.profiledFit(o)
	}

	dim := 3
	if o.FixSmoothness {
		dim = 2
	}
	toTheta := func(x []float64) cov.Params {
		t := cov.Params{
			Variance: math.Exp(x[0]),
			Range:    math.Exp(x[1]),
		}
		if o.FixSmoothness {
			t.Smoothness = o.Start.Smoothness
		} else {
			t.Smoothness = x[2]
		}
		return t
	}
	lower := []float64{math.Log(o.Lower.Variance), math.Log(o.Lower.Range), o.Lower.Smoothness}[:dim]
	upper := []float64{math.Log(o.Upper.Variance), math.Log(o.Upper.Range), o.Upper.Smoothness}[:dim]
	start := []float64{math.Log(o.Start.Variance), math.Log(o.Start.Range), o.Start.Smoothness}[:dim]

	var lastErr error
	obj := func(x []float64) float64 {
		lik, err := s.logLikelihood(toTheta(x))
		if err != nil {
			lastErr = err
			return math.Inf(1)
		}
		return -lik.Value
	}
	ck, err := openCheckpoint(o, s.fitDigest(o))
	if err != nil {
		return FitResult{}, err
	}
	if ck != nil {
		obj = ck.wrap(obj)
	}
	res, err := optimize.NelderMead(
		optimize.Problem{Objective: obj, Lower: lower, Upper: upper},
		start,
		optimize.Options{MaxEvals: o.MaxEvals, TolX: o.TolX},
	)
	if err != nil {
		return FitResult{}, err
	}
	if err := ck.flush(); err != nil {
		return FitResult{}, err
	}
	if math.IsInf(res.F, 1) {
		return FitResult{}, fmt.Errorf("core: every likelihood evaluation failed: %w", lastErr)
	}
	return FitResult{
		Theta:     toTheta(res.X),
		LogL:      -res.F,
		Evals:     res.Evals,
		Converged: res.Converged,
	}, nil
}

// ProfiledFit estimates θ̂ via the concentrated likelihood over (θ₂, θ₃),
// recovering θ̂₁ in closed form.
//
// Deprecated: set FitOptions.Profiled and call Fit instead — ProfiledFit is
// a thin wrapper kept for compatibility.
func (s *Session) ProfiledFit(opts FitOptions) (FitResult, error) {
	opts.Profiled = true
	return s.Fit(opts)
}

// profiledFit is Fit's concentrated-likelihood branch. The caller holds the
// busy guard and has already applied the option defaults.
func (s *Session) profiledFit(o FitOptions) (FitResult, error) {
	dim := 2
	if o.FixSmoothness {
		dim = 1
	}
	lower := []float64{math.Log(o.Lower.Range), o.Lower.Smoothness}[:dim]
	upper := []float64{math.Log(o.Upper.Range), o.Upper.Smoothness}[:dim]
	start := []float64{math.Log(o.Start.Range), o.Start.Smoothness}[:dim]

	smoothOf := func(x []float64) float64 {
		if o.FixSmoothness {
			return o.Start.Smoothness
		}
		return x[1]
	}
	var lastErr error
	obj := func(x []float64) float64 {
		ll, _, err := s.profiledLogLikelihood(math.Exp(x[0]), smoothOf(x))
		if err != nil {
			lastErr = err
			return math.Inf(1)
		}
		return -ll
	}
	ck, err := openCheckpoint(o, s.fitDigest(o))
	if err != nil {
		return FitResult{}, err
	}
	if ck != nil {
		obj = ck.wrap(obj)
	}
	res, err := optimize.NelderMead(
		optimize.Problem{Objective: obj, Lower: lower, Upper: upper},
		start,
		optimize.Options{MaxEvals: o.MaxEvals, TolX: o.TolX},
	)
	if err != nil {
		return FitResult{}, err
	}
	if err := ck.flush(); err != nil {
		return FitResult{}, err
	}
	if math.IsInf(res.F, 1) {
		return FitResult{}, fmt.Errorf("core: every profiled evaluation failed: %w", lastErr)
	}
	rangeHat := math.Exp(res.X[0])
	smoothHat := smoothOf(res.X)
	ll, varHat, err := s.profiledLogLikelihood(rangeHat, smoothHat)
	if err != nil {
		return FitResult{}, err
	}
	return FitResult{
		Theta:     cov.Params{Variance: varHat, Range: rangeHat, Smoothness: smoothHat},
		LogL:      ll,
		Evals:     res.Evals + 1,
		Converged: res.Converged,
	}, nil
}

// Predict imputes measurements at newPts from the fitted model (paper
// eq. 4): Ẑ₁ = Σ₁₂ Σ₂₂⁻¹ Z₂. The solve vector y = Σ₂₂⁻¹ Z₂ depends only on
// (θ, nugget), not on newPts, so it is cached on the session: after the
// first prediction at a θ, every further Predict at that θ is O(m·n) —
// cross-covariance assembly and dot products, no factorization.
func (s *Session) Predict(newPts []geom.Point, theta cov.Params) ([]float64, error) {
	if err := s.acquire("Predict"); err != nil {
		return nil, err
	}
	defer s.release()
	if err := theta.Validate(); err != nil {
		return nil, err
	}
	if len(newPts) == 0 {
		return nil, nil
	}
	p := s.p
	k := cov.NewKernel(theta)
	y, err := s.solveVector(k, theta, s.cfg.nugget(theta.Variance))
	if err != nil {
		return nil, err
	}

	// Ẑ1 = Σ12 · y, assembled one row at a time to bound memory.
	n := p.N()
	out := make([]float64, len(newPts))
	cross := la.NewMat(1, n)
	for i := range newPts {
		k.Block(cross, newPts[i:i+1], p.Points, p.Metric)
		out[i] = la.Dot(cross.Row(0), y)
	}
	return out, nil
}

// solveVector returns the kriging weights y = Σ₂₂⁻¹·Z₂ for (θ, nugget),
// reusing the session cache when the key matches. The returned slice is
// owned by the cache; callers must not modify it.
func (s *Session) solveVector(k *cov.Kernel, theta cov.Params, nugget float64) ([]float64, error) {
	if s.pred.valid && s.pred.theta == theta && s.pred.nugget == nugget && s.pred.yFull != nil {
		cntPredictCacheHit.Inc()
		return s.pred.yFull, nil
	}
	// An unexpired factor from PredictWithVariance at the same key still
	// saves the factorization: run just the solve against it.
	if f, _, ok := s.cachedFactor(theta, nugget); ok {
		cntPredictCacheHit.Inc()
		y := append([]float64(nil), s.p.Z...)
		f.Solve(y)
		s.pred.yFull = y
		return y, nil
	}
	cntPredictCacheMiss.Inc()
	y := append([]float64(nil), s.p.Z...)
	fb, ok := s.be.(FactorBackend)
	if !ok {
		// No shareable factor (distributed backend): solve through the
		// backend and cache only the weights.
		if err := s.be.SolveVec(k, nugget, y); err != nil {
			return nil, err
		}
		s.pred = predictCache{valid: true, theta: theta, nugget: nugget, yFull: y}
		return y, nil
	}
	f, err := fb.Factorize(k, nugget)
	if err != nil {
		return nil, err
	}
	f.Solve(y)
	s.pred = predictCache{valid: true, theta: theta, nugget: nugget, yFull: y, factor: f, gen: fb.Generation()}
	return y, nil
}

// cachedFactor returns the cached factorization for (θ, nugget) when it is
// still alive: the key matches and no factorization has run since it was
// produced (FactorBackend modes only — distributed factors live sharded on
// the ranks and are not cached).
func (s *Session) cachedFactor(theta cov.Params, nugget float64) (Factor, []float64, bool) {
	if !s.pred.valid || s.pred.factor == nil {
		return nil, nil, false
	}
	fb, ok := s.be.(FactorBackend)
	if !ok {
		return nil, nil, false
	}
	if s.pred.theta != theta || s.pred.nugget != nugget || s.pred.gen != fb.Generation() {
		return nil, nil, false
	}
	return s.pred.factor, s.pred.yHalf, true
}

// PredictWithVariance computes the conditional mean AND variance at newPts
// (paper eq. 3):
//
//	W = L⁻¹·Σ₂₁,  y = L⁻¹·Z₂,
//	mean_i = W[:,i]ᵀ·y,   var_i = C(0) − ‖W[:,i]‖².
//
// W is never materialized whole: newPts is processed in TileSize-wide column
// blocks, so the scratch footprint is n×TileSize however many points are
// requested — the column-block counterpart of the row-at-a-time discipline
// Predict uses. The per-column arithmetic is identical to the one-shot n×m
// solve (forward substitution treats columns independently), so the results
// are bitwise-equal to the unchunked computation. Like Predict, the
// factorization is cached by (θ, nugget) on the shared-memory backend.
func (s *Session) PredictWithVariance(newPts []geom.Point, theta cov.Params) (Prediction, error) {
	if err := s.acquire("PredictWithVariance"); err != nil {
		return Prediction{}, err
	}
	defer s.release()
	if err := theta.Validate(); err != nil {
		return Prediction{}, err
	}
	if len(newPts) == 0 {
		return Prediction{}, nil
	}
	m := len(newPts)
	k := cov.NewKernel(theta)
	nugget := s.cfg.nugget(theta.Variance)
	chunk := s.cfg.TileSize

	pr := Prediction{Mean: make([]float64, m), Variance: make([]float64, m)}
	c0 := k.At(0)
	// accumulate consumes one solved column block starting at column col.
	accumulate := func(col int, w *la.Mat, y []float64) {
		n := w.Rows
		for j := 0; j < w.Cols; j++ {
			var mean, norm2 float64
			for r := 0; r < n; r++ {
				wi := w.At(r, j)
				mean += wi * y[r]
				norm2 += wi * wi
			}
			pr.Mean[col+j] = mean
			v := c0 - norm2
			if v < 0 {
				// clamp tiny negative values from approximation error
				v = 0
			}
			pr.Variance[col+j] = v
		}
	}

	if _, ok := s.be.(FactorBackend); !ok {
		// No shareable factor (distributed backend): stream the column
		// blocks through the backend's own chunked half-solve.
		if err := s.be.HalfSolveChunked(k, nugget, newPts, chunk, s.p.Z, accumulate); err != nil {
			return Prediction{}, err
		}
		return pr, nil
	}

	f, yHalf, err := s.halfState(k, theta, nugget)
	if err != nil {
		return Prediction{}, err
	}
	n := s.p.N()
	for lo := 0; lo < m; lo += chunk {
		hi := min(lo+chunk, m)
		w := la.NewMat(n, hi-lo)
		k.Block(w, s.p.Points, newPts[lo:hi], s.p.Metric)
		f.HalfSolveMat(w)
		accumulate(lo, w, yHalf)
	}
	return pr, nil
}

// halfState returns the factorization and half-solved rhs y = L⁻¹·Z₂ for
// (θ, nugget) on a FactorBackend mode, reusing the cache when alive.
func (s *Session) halfState(k *cov.Kernel, theta cov.Params, nugget float64) (Factor, []float64, error) {
	if f, yHalf, ok := s.cachedFactor(theta, nugget); ok {
		cntPredictCacheHit.Inc()
		if yHalf == nil {
			yHalf = append([]float64(nil), s.p.Z...)
			f.HalfSolve(yHalf)
			s.pred.yHalf = yHalf
		}
		return f, yHalf, nil
	}
	cntPredictCacheMiss.Inc()
	fb := s.be.(FactorBackend) // caller checked the capability
	f, err := fb.Factorize(k, nugget)
	if err != nil {
		return nil, nil, err
	}
	yHalf := append([]float64(nil), s.p.Z...)
	f.HalfSolve(yHalf)
	s.pred = predictCache{valid: true, theta: theta, nugget: nugget, yHalf: yHalf, factor: f, gen: fb.Generation()}
	return f, yHalf, nil
}
