package core

import (
	"fmt"
	"math"

	"repro/internal/chaos"
	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/optimize"
)

// Session owns the cached per-problem state that repeated likelihood
// evaluations, fits and predictions on one dataset share: the Σ buffer
// (FullBlock), the tile descriptors and generation+factorization DAG
// (FullTile), the TLR shell and fused DAG (TLR), or the distributed World
// and per-rank shards (TLR with Config.Ranks > 1). The free functions
// (LogLikelihood, Fit, Predict, ...) are thin wrappers that build a
// throwaway Session per call; hold a Session explicitly when making many
// calls on one problem so the reuse is part of the API contract rather than
// hidden package state.
//
// A Session is NOT safe for concurrent use: evaluations share cached
// buffers, and results of one call may be invalidated by the next.
type Session struct {
	p   *Problem
	cfg Config // validated and normalized

	inj *chaos.Injector // nil unless cfg.Chaos is set

	ev  *evaluator     // shared-memory backend (Ranks == 1)
	dev *distEvaluator // distributed backend (Ranks > 1)
}

// NewSession validates cfg, normalizes its zero fields to the documented
// defaults, and builds the backend the configuration selects. The returned
// Session is ready for repeated Fit/LogLikelihood/Predict calls.
func NewSession(p *Problem, cfg Config) (*Session, error) {
	if p == nil || p.N() == 0 {
		return nil, fmt.Errorf("core: nil or empty problem")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	if cfg.Ordering != "" && cfg.Ordering != p.Ordering {
		// The configured ordering differs from the Problem's: evaluate on a
		// session-private reordered copy. The caller's Problem is untouched,
		// and the copy's Perm still maps back to caller order.
		ord, err := geom.NewOrdering(cfg.Ordering, cfg.TileSize)
		if err != nil {
			return nil, err // unreachable after Validate; kept for safety
		}
		p = p.Reordered(ord)
	}
	s := &Session{p: p, cfg: cfg}
	if cfg.Chaos != nil {
		s.inj = chaos.NewInjector(cfg.Chaos)
	}
	if cfg.Ranks > 1 {
		dev, err := newDistEvaluator(p, cfg, s.inj)
		if err != nil {
			return nil, err
		}
		s.dev = dev
	} else {
		s.ev = newEvaluator(p, cfg, s.inj)
	}
	return s, nil
}

// ChaosStats reports the faults the session's injector has raised so far
// (the zero Stats when Config.Chaos is nil).
func (s *Session) ChaosStats() chaos.Stats {
	if s.inj == nil {
		return chaos.Stats{}
	}
	return s.inj.Stats()
}

// Config returns the session's normalized configuration (defaults resolved).
func (s *Session) Config() Config { return s.cfg }

// Problem returns the dataset the session operates on. When Config.Ordering
// differs from the ordering the Problem was built with, this is the
// session-private reordered copy (its Perm maps back to caller order), not
// the Problem passed to NewSession.
func (s *Session) Problem() *Problem { return s.p }

// LogLikelihood evaluates ℓ(θ) (paper eq. 1), reusing the session's cached
// state across calls.
func (s *Session) LogLikelihood(theta cov.Params) (LikResult, error) {
	if s.dev != nil {
		return s.dev.logLikelihood(theta)
	}
	return s.ev.logLikelihood(theta)
}

// ProfiledLogLikelihood evaluates the concentrated likelihood ℓ_p(θ₂, θ₃)
// (see the package-level ProfiledLogLikelihood for the formulation).
func (s *Session) ProfiledLogLikelihood(rangeP, smoothness float64) (logL, varianceHat float64, err error) {
	if s.dev != nil {
		return s.dev.profiledLogLikelihood(rangeP, smoothness)
	}
	return s.ev.profiledLogLikelihood(rangeP, smoothness)
}

// Fit estimates θ̂ by maximizing the log-likelihood with the derivative-free
// optimizer. The search runs over log-transformed variance and range (their
// scales span decades) and linear smoothness. Every objective call reuses
// the session's cached factorization state.
func (s *Session) Fit(opts FitOptions) (FitResult, error) {
	o := opts.withDefaults(s.p)

	dim := 3
	if o.FixSmoothness {
		dim = 2
	}
	toTheta := func(x []float64) cov.Params {
		t := cov.Params{
			Variance: math.Exp(x[0]),
			Range:    math.Exp(x[1]),
		}
		if o.FixSmoothness {
			t.Smoothness = o.Start.Smoothness
		} else {
			t.Smoothness = x[2]
		}
		return t
	}
	lower := []float64{math.Log(o.Lower.Variance), math.Log(o.Lower.Range), o.Lower.Smoothness}[:dim]
	upper := []float64{math.Log(o.Upper.Variance), math.Log(o.Upper.Range), o.Upper.Smoothness}[:dim]
	start := []float64{math.Log(o.Start.Variance), math.Log(o.Start.Range), o.Start.Smoothness}[:dim]

	var lastErr error
	obj := func(x []float64) float64 {
		lik, err := s.LogLikelihood(toTheta(x))
		if err != nil {
			lastErr = err
			return math.Inf(1)
		}
		return -lik.Value
	}
	res, err := optimize.NelderMead(
		optimize.Problem{Objective: obj, Lower: lower, Upper: upper},
		start,
		optimize.Options{MaxEvals: o.MaxEvals, TolX: o.TolX},
	)
	if err != nil {
		return FitResult{}, err
	}
	if math.IsInf(res.F, 1) {
		return FitResult{}, fmt.Errorf("core: every likelihood evaluation failed: %w", lastErr)
	}
	return FitResult{
		Theta:     toTheta(res.X),
		LogL:      -res.F,
		Evals:     res.Evals,
		Converged: res.Converged,
	}, nil
}

// ProfiledFit estimates θ̂ via the concentrated likelihood over (θ₂, θ₃),
// recovering θ̂₁ in closed form (see the package-level ProfiledFit).
func (s *Session) ProfiledFit(opts FitOptions) (FitResult, error) {
	o := opts.withDefaults(s.p)

	dim := 2
	if o.FixSmoothness {
		dim = 1
	}
	lower := []float64{math.Log(o.Lower.Range), o.Lower.Smoothness}[:dim]
	upper := []float64{math.Log(o.Upper.Range), o.Upper.Smoothness}[:dim]
	start := []float64{math.Log(o.Start.Range), o.Start.Smoothness}[:dim]

	smoothOf := func(x []float64) float64 {
		if o.FixSmoothness {
			return o.Start.Smoothness
		}
		return x[1]
	}
	var lastErr error
	obj := func(x []float64) float64 {
		ll, _, err := s.ProfiledLogLikelihood(math.Exp(x[0]), smoothOf(x))
		if err != nil {
			lastErr = err
			return math.Inf(1)
		}
		return -ll
	}
	res, err := optimize.NelderMead(
		optimize.Problem{Objective: obj, Lower: lower, Upper: upper},
		start,
		optimize.Options{MaxEvals: o.MaxEvals, TolX: o.TolX},
	)
	if err != nil {
		return FitResult{}, err
	}
	if math.IsInf(res.F, 1) {
		return FitResult{}, fmt.Errorf("core: every profiled evaluation failed: %w", lastErr)
	}
	rangeHat := math.Exp(res.X[0])
	smoothHat := smoothOf(res.X)
	ll, varHat, err := s.ProfiledLogLikelihood(rangeHat, smoothHat)
	if err != nil {
		return FitResult{}, err
	}
	return FitResult{
		Theta:     cov.Params{Variance: varHat, Range: rangeHat, Smoothness: smoothHat},
		LogL:      ll,
		Evals:     res.Evals + 1,
		Converged: res.Converged,
	}, nil
}

// Predict imputes measurements at newPts from the fitted model (paper
// eq. 4): Ẑ₁ = Σ₁₂ Σ₂₂⁻¹ Z₂.
func (s *Session) Predict(newPts []geom.Point, theta cov.Params) ([]float64, error) {
	if err := theta.Validate(); err != nil {
		return nil, err
	}
	if len(newPts) == 0 {
		return nil, nil
	}
	p := s.p
	k := cov.NewKernel(theta)
	nugget := s.cfg.nugget(theta.Variance)

	// y = Σ22⁻¹ Z2
	y := append([]float64(nil), p.Z...)
	if s.dev != nil {
		if err := s.dev.solve(k, nugget, y); err != nil {
			return nil, err
		}
	} else {
		f, err := s.ev.factorize(k, nugget)
		if err != nil {
			return nil, err
		}
		f.Solve(y)
	}

	// Ẑ1 = Σ12 · y, assembled one row at a time to bound memory.
	n := p.N()
	out := make([]float64, len(newPts))
	cross := la.NewMat(1, n)
	for i := range newPts {
		k.Block(cross, newPts[i:i+1], p.Points, p.Metric)
		out[i] = la.Dot(cross.Row(0), y)
	}
	return out, nil
}

// PredictWithVariance computes the conditional mean AND variance at newPts
// (paper eq. 3):
//
//	W = L⁻¹·Σ₂₁  (n×m),  y = L⁻¹·Z₂,
//	mean_i = W[:,i]ᵀ·y,   var_i = C(0) − ‖W[:,i]‖².
func (s *Session) PredictWithVariance(newPts []geom.Point, theta cov.Params) (Prediction, error) {
	if err := theta.Validate(); err != nil {
		return Prediction{}, err
	}
	if len(newPts) == 0 {
		return Prediction{}, nil
	}
	p := s.p
	n := p.N()
	m := len(newPts)
	k := cov.NewKernel(theta)
	nugget := s.cfg.nugget(theta.Variance)

	w := la.NewMat(n, m)
	k.Block(w, p.Points, newPts, p.Metric)
	y := append([]float64(nil), p.Z...)
	if s.dev != nil {
		if err := s.dev.halfSolve(k, nugget, w, y); err != nil {
			return Prediction{}, err
		}
	} else {
		f, err := s.ev.factorize(k, nugget)
		if err != nil {
			return Prediction{}, err
		}
		f.HalfSolveMat(w)
		f.HalfSolve(y)
	}

	pr := Prediction{Mean: make([]float64, m), Variance: make([]float64, m)}
	c0 := k.At(0)
	for i := 0; i < m; i++ {
		var mean, norm2 float64
		for r := 0; r < n; r++ {
			wi := w.At(r, i)
			mean += wi * y[r]
			norm2 += wi * wi
		}
		pr.Mean[i] = mean
		v := c0 - norm2
		if v < 0 {
			// clamp tiny negative values from approximation error
			v = 0
		}
		pr.Variance[i] = v
	}
	return pr, nil
}
