package core

import (
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestFitKillAndResume is the real-kill smoke: a child process runs a
// checkpointed fit and is SIGKILLed as soon as a few evaluations have been
// flushed — no deferred cleanup, no graceful shutdown, exactly the failure
// the checkpoint exists for. The parent then resumes from whatever file the
// corpse left behind and must land bitwise on an uninterrupted run's theta,
// likelihood, and predictions. Atomic checkpoint writes are what makes the
// leftover file loadable no matter where the kill landed.
func TestFitKillAndResume(t *testing.T) {
	const (
		n    = 500
		seed = 11
	)
	cfg := Config{Mode: FullBlock}
	opts := FitOptions{MaxEvals: 50, FixSmoothness: true, CheckpointEvery: 1}

	if ck := os.Getenv("FIT_KILL_CHILD_CKPT"); ck != "" {
		// Child mode: run the checkpointed fit until killed.
		o := opts
		o.Checkpoint = ck
		s, err := NewSession(smallProblem(t, n, seed), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Fit(o); err != nil {
			t.Fatal(err)
		}
		return
	}
	if testing.Short() {
		t.Skip("subprocess kill smoke skipped in -short")
	}

	ck := filepath.Join(t.TempDir(), "fit.ckpt")
	child := exec.Command(os.Args[0], "-test.run", "^TestFitKillAndResume$")
	child.Env = append(os.Environ(), "FIT_KILL_CHILD_CKPT="+ck)
	child.Stdout, child.Stderr = io.Discard, io.Discard
	if err := child.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill as soon as at least three evaluations reached disk.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if raw, err := os.ReadFile(ck); err == nil {
			var f fitCheckpoint
			if json.Unmarshal(raw, &f) == nil && len(f.Evals) >= 3 {
				break
			}
		}
		if time.Now().After(deadline) {
			child.Process.Kill()
			t.Fatal("child never flushed a checkpoint")
		}
		time.Sleep(2 * time.Millisecond)
	}
	child.Process.Kill()
	child.Wait() // exit status of a killed child is expected noise

	p := smallProblem(t, n, seed)
	ref := fitTriple(t, p, cfg, opts)

	resumed := opts
	resumed.Checkpoint = ck
	rs, err := NewSession(smallProblem(t, n, seed), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rs.Fit(resumed)
	if err != nil {
		t.Fatalf("resume from killed run: %v", err)
	}
	if got != ref {
		t.Fatalf("resumed fit %+v differs from uninterrupted %+v", got, ref)
	}
	newPts := p.Points[:9]
	refPred, err := NewSessionMust(t, p, cfg).Predict(newPts, ref.Theta)
	if err != nil {
		t.Fatal(err)
	}
	gotPred, err := rs.Predict(newPts, got.Theta)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refPred {
		if refPred[i] != gotPred[i] {
			t.Fatalf("prediction %d differs after resume: %v != %v", i, refPred[i], gotPred[i])
		}
	}
}

// NewSessionMust is a test helper wrapping NewSession with t.Fatal.
func NewSessionMust(t *testing.T, p *Problem, cfg Config) *Session {
	t.Helper()
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
