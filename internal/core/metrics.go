package core

import (
	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// Metrics bundles a session's observability outputs: the process-wide
// instrument snapshot (kernel invocation counts, compression-rank histogram,
// cache hit/miss counters), the most recent execution trace, and per-rank
// communication statistics for distributed sessions.
type Metrics struct {
	// Obs is a snapshot of the default instrument registry. Differencing
	// two snapshots (obs.Snapshot.Sub) isolates one phase; counters of
	// interest include la.*.calls, tile.dcmg.calls, tlr.compress.calls,
	// core.cache.*.{hit,miss}, runtime.tasks.*, mpi.{msgs,bytes}.sent, and
	// the histogram tlr.compress.rank.
	Obs obs.Snapshot
	// Trace is the most recent task-graph execution trace (nil until
	// EnableTracing is called and a graph-backed evaluation runs; always nil
	// for FullBlock, which has no task graph). For distributed sessions it
	// is the communication timeline instead — one worker lane per rank,
	// every cross-rank message an instant event.
	Trace *runtime.Trace
	// Comm is the per-rank cumulative traffic (nil for shared-memory
	// sessions).
	Comm []mpi.CommStats
	// FactorFailures counts this session's failed factorization attempts;
	// NuggetEscalations counts how many were answered by growing the nugget
	// (see Config.NuggetEscalation). LastFactorFailure is the most recent
	// failure's message, empty if none — together they say whether a fit
	// degraded gracefully and why.
	FactorFailures    int64
	NuggetEscalations int64
	LastFactorFailure string
	// RanksLost counts the rank deaths this session absorbed via elastic
	// recovery (Config.ElasticRecovery); 0 for shared-memory sessions.
	RanksLost int
}

// EnableTracing switches the session's graph executions to traced mode.
// Shared-memory sessions record per-task timings of every subsequent
// factorization (retrievable via Metrics().Trace, which keeps the most
// recent one); distributed sessions start a timestamped communication
// timeline. Call it before the evaluations of interest; tracing adds two
// time.Now() calls per task and is safe to leave on.
func (s *Session) EnableTracing() {
	s.be.EnableTracing()
}

// Metrics returns the session's current observability state. The Obs
// snapshot is process-wide (all sessions share the default registry); Trace
// and Comm are per-session, supplied uniformly by the backend.
func (s *Session) Metrics() Metrics {
	m := Metrics{Obs: obs.Default().Snapshot()}
	d := s.be.Diagnostics()
	m.FactorFailures = d.FactorFailures
	m.NuggetEscalations = d.NuggetEscalations
	m.LastFactorFailure = d.LastFailure
	m.RanksLost = d.RanksLost
	m.Trace = s.be.Trace()
	m.Comm = s.CommStats()
	return m
}
