package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/rng"
)

// TestHODLRMatchesDenseGolden is the acceptance pin for the fourth backend:
// at n=1600 under every spatial ordering the repo ships, the HODLR session
// must reproduce the exact dense likelihood to ≤1e-6 relative and agree on
// kriging means and variances end-to-end through Session.
func TestHODLRMatchesDenseGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("n=1600 golden comparison skipped in -short mode")
	}
	const n = 1600
	r := rng.New(97)
	pts := geom.GeneratePerturbedGrid(n, r)
	k := cov.NewKernel(theta())
	z, err := cov.SampleField(k, pts, geom.Euclidean, r.Split(1))
	if err != nil {
		t.Fatal(err)
	}
	newPts := geom.GeneratePerturbedGrid(16, rng.New(98))
	th := theta()

	for _, ord := range []geom.Ordering{geom.None, geom.Morton, geom.Hilbert, geom.KDBlocks(128)} {
		p, err := NewProblemOrdered(pts, z, geom.Euclidean, ord)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := NewSession(p, Config{Mode: FullBlock, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		// rsvd keeps the top-level 800×800 block compressions tractable; the
		// tolerance still pins the result to the dense answer at ≤1e-6.
		hs, err := NewSession(p, Config{Mode: HODLR, TileSize: 128, Accuracy: 1e-10, Workers: 4, CompressorName: "rsvd"})
		if err != nil {
			t.Fatal(err)
		}

		want, err := ds.LogLikelihood(th)
		if err != nil {
			t.Fatal(err)
		}
		got, err := hs.LogLikelihood(th)
		if err != nil {
			t.Fatalf("%s: HODLR likelihood: %v", ord.Name(), err)
		}
		if rel := math.Abs(got.Value-want.Value) / math.Abs(want.Value); rel > 1e-6 {
			t.Fatalf("%s: HODLR loglik %.10g vs dense %.10g (rel %g)", ord.Name(), got.Value, want.Value, rel)
		}
		if got.Bytes >= want.Bytes {
			t.Fatalf("%s: HODLR stores %d bytes, dense %d — no compression", ord.Name(), got.Bytes, want.Bytes)
		}

		wantPred, err := ds.PredictWithVariance(newPts, th)
		if err != nil {
			t.Fatal(err)
		}
		gotPred, err := hs.PredictWithVariance(newPts, th)
		if err != nil {
			t.Fatalf("%s: HODLR predict: %v", ord.Name(), err)
		}
		for i := range wantPred.Mean {
			if math.Abs(gotPred.Mean[i]-wantPred.Mean[i]) > 1e-6 {
				t.Fatalf("%s: kriging mean %d: %g vs %g", ord.Name(), i, gotPred.Mean[i], wantPred.Mean[i])
			}
			if math.Abs(gotPred.Variance[i]-wantPred.Variance[i]) > 1e-6 {
				t.Fatalf("%s: kriging variance %d: %g vs %g", ord.Name(), i, gotPred.Variance[i], wantPred.Variance[i])
			}
		}
	}
}

// TestRegistryRejectsUnknownMode: Config validation is registry-driven — an
// unregistered Mode value errors and the message names the registered modes.
func TestRegistryRejectsUnknownMode(t *testing.T) {
	p := smallProblem(t, 60, 9)
	for _, mode := range []Mode{Mode(42), Mode(99), Mode(-1)} {
		_, err := NewSession(p, Config{Mode: mode})
		if err == nil {
			t.Fatalf("mode %d accepted", int(mode))
		}
		if !strings.Contains(err.Error(), "unknown mode") {
			t.Fatalf("mode %d error %q does not say unknown mode", int(mode), err)
		}
		for _, name := range ModeNames() {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("unknown-mode error %q omits registered mode %q", err, name)
			}
		}
	}
}

// TestRegistryRejectsIncompatibleRanks: only modes registered with a
// distributed constructor accept Ranks>1, and the error names them.
func TestRegistryRejectsIncompatibleRanks(t *testing.T) {
	p := smallProblem(t, 60, 9)
	for _, cfg := range []Config{
		{Mode: FullBlock, Ranks: 2},
		{Mode: FullTile, Ranks: 4, TileSize: 16},
		{Mode: HODLR, Ranks: 2, TileSize: 16},
	} {
		_, err := NewSession(p, cfg)
		if err == nil {
			t.Fatalf("%v with Ranks=%d accepted", cfg.Mode, cfg.Ranks)
		}
		if !strings.Contains(err.Error(), "requires Mode=TLR") {
			t.Fatalf("%v error %q does not name the distributed-capable mode", cfg.Mode, err)
		}
	}
	// The one registered distributed mode still works.
	if _, err := NewSession(p, Config{Mode: TLR, Ranks: 2, TileSize: 16}); err != nil {
		t.Fatalf("TLR with Ranks=2 rejected: %v", err)
	}
}

// TestModeByNameRoundTrips: every registered name and alias resolves, the
// canonical names round-trip through Mode.String, and lookup is
// case-insensitive.
func TestModeByNameRoundTrips(t *testing.T) {
	names := ModeNames()
	if len(names) != 4 {
		t.Fatalf("expected 4 registered backends, have %v", names)
	}
	for _, name := range names {
		m, err := ModeByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != name {
			t.Fatalf("ModeByName(%q) = %v (String %q)", name, m, m.String())
		}
		upper, err := ModeByName("  " + strings.ToUpper(name) + " ")
		if err != nil || upper != m {
			t.Fatalf("case/space-insensitive lookup of %q failed: %v %v", name, upper, err)
		}
	}
	for alias, want := range map[string]Mode{
		"dense": FullBlock, "exact": FullBlock, "fullblock": FullBlock,
		"tile": FullTile, "fulltile": FullTile,
	} {
		m, err := ModeByName(alias)
		if err != nil || m != want {
			t.Fatalf("alias %q → %v, %v; want %v", alias, m, err, want)
		}
	}
	if _, err := ModeByName("hierarchical-nonsense"); err == nil {
		t.Fatal("unknown name accepted")
	} else if !strings.Contains(err.Error(), "hodlr") {
		t.Fatalf("unknown-name error %q should list registered modes", err)
	}
}

// TestSessionDiagnosticsUniform: the nugget-escalation ladder reports
// through Backend.Diagnostics identically for every shared-memory backend.
func TestSessionDiagnosticsUniform(t *testing.T) {
	p := smallProblem(t, 80, 3)
	for _, cfg := range []Config{
		{Mode: FullBlock},
		{Mode: FullTile, TileSize: 32},
		{Mode: TLR, TileSize: 32, Accuracy: 1e-8},
		{Mode: HODLR, TileSize: 32, Accuracy: 1e-8},
	} {
		s, err := NewSession(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.LogLikelihood(theta()); err != nil {
			t.Fatalf("%v: %v", cfg.Mode, err)
		}
		d := s.Backend().Diagnostics()
		if d.LastNugget <= 0 {
			t.Fatalf("%v: diagnostics not populated: %+v", cfg.Mode, d)
		}
		if d.FactorFailures != s.Metrics().FactorFailures {
			t.Fatalf("%v: Metrics and Diagnostics disagree", cfg.Mode)
		}
	}
}
