package core

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/cov"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/tile"
)

// Graph-reuse counters for the FullTile mode: the combined dcmg+Cholesky DAG
// is built once per backend and re-executed per θ (the graph-reuse contract
// documented in tile.GenSpec).
var (
	cntCacheTileHit  = obs.GetCounter("core.cache.tilegraph.hit")
	cntCacheTileMiss = obs.GetCounter("core.cache.tilegraph.miss")
)

func init() {
	RegisterBackend(FullTile, BackendSpec{
		Name:    "full-tile",
		Aliases: []string{"tile", "fulltile"},
		New: func(p *Problem, cfg Config, inj *chaos.Injector) (Backend, error) {
			return newLocalBackend(p, cfg, inj, &tileState{}), nil
		},
	})
}

// tileState is the FullTile mode's cached state: the tile descriptors AND
// the combined dcmg+Cholesky task graph — the DAG's shape depends only on n
// and TileSize, which are fixed per problem, so only the GenSpec's
// kernel/nugget change between executions.
type tileState struct {
	m    *tile.SymMatrix // tiles
	spec *tile.GenSpec   // mutable kernel/nugget slot read by dcmg tasks
	g    *runtime.Graph  // combined generation + factorization DAG
}

func (st *tileState) factorizeOnce(e *localBackend, k *cov.Kernel, nugget float64) (Factor, error) {
	if st.g == nil {
		st.m = tile.NewSym(e.p.N(), e.cfg.TileSize)
		st.spec = &tile.GenSpec{Pts: e.p.Points, Metric: e.p.Metric}
		st.g, _ = tile.BuildGenCholeskyGraph(st.m, st.spec, true)
		cntCacheTileMiss.Inc()
	} else {
		cntCacheTileHit.Inc()
	}
	st.spec.K = k
	st.spec.Nugget = nugget
	if err := e.run(st.g); err != nil {
		return nil, fmt.Errorf("core: %s factorization: %w", e.cfg.Mode, err)
	}
	return tileFactor{m: st.m, workers: e.cfg.Workers}, nil
}

// tileFactor wraps a tiled dense factorization.
type tileFactor struct {
	m       *tile.SymMatrix
	workers int
}

func (f tileFactor) HalfSolve(b []float64) {
	if err := tile.ForwardSolve(f.m, b, f.workers); err != nil {
		// the forward-solve DAG cannot fail numerically; a failure is a
		// programming error
		panic(err)
	}
}
func (f tileFactor) Solve(b []float64) {
	f.HalfSolve(b)
	tile.BackwardSolve(f.m, b)
}
func (f tileFactor) HalfSolveMat(b *la.Mat) { f.m.ForwardSolveMat(b) }
func (f tileFactor) SolveMat(b *la.Mat) {
	f.m.ForwardSolveMat(b)
	f.m.BackwardSolveMat(b)
}
func (f tileFactor) LogDet() float64           { return f.m.LogDet() }
func (f tileFactor) Bytes() int64              { return f.m.Bytes() }
func (f tileFactor) RankStats() (int, float64) { return 0, 0 }
