package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/chaos"
	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/mpi"
	"repro/internal/runtime"
)

// Backend is the evaluator contract every computation mode implements: one
// object per (Problem, Config) pair that owns whatever cached state repeated
// likelihood evaluations need — a Σ buffer, tile descriptors, a fused task
// DAG, or a distributed World — and exposes the operations Session's MLE and
// kriging pipelines are built from. Adding a computation mode means
// implementing this interface and registering a constructor with
// RegisterBackend; nothing in session.go, predict, metrics or the serving
// layer dispatches on Mode.
//
// Backends are NOT safe for concurrent use (Session's busy guard enforces
// serialization) and results of one call may alias state invalidated by the
// next.
type Backend interface {
	// Mode identifies the registration the backend was built from.
	Mode() Mode
	// LogLikelihood evaluates ℓ(θ) (paper eq. 1) with full diagnostics.
	LogLikelihood(theta cov.Params) (LikResult, error)
	// ProfiledLogLikelihood evaluates the concentrated likelihood ℓ_p(θ₂, θ₃)
	// with the variance profiled out (see the package-level
	// ProfiledLogLikelihood for the formulation).
	ProfiledLogLikelihood(rangeP, smoothness float64) (logL, varianceHat float64, err error)
	// SolveVec overwrites b with Σ⁻¹·b for the given kernel and nugget,
	// factoring (or re-factoring) as needed.
	SolveVec(k *cov.Kernel, nugget float64, b []float64) error
	// HalfSolveChunked is the bounded-memory kriging-variance primitive: it
	// factors once, half-solves y (overwritten with L⁻¹·y on a private copy
	// passed to visit), then assembles and half-solves the cross-covariance
	// Σ₂₁ one chunk-wide column block at a time, handing each solved block to
	// visit with its starting column.
	HalfSolveChunked(k *cov.Kernel, nugget float64, newPts []geom.Point, chunk int, y []float64, visit func(col int, w *la.Mat, y []float64)) error
	// Diagnostics reports the degradation bookkeeping Session.Metrics
	// surfaces (failed factorizations, nugget escalations, last failure).
	Diagnostics() Diagnostics
	// EnableTracing switches subsequent executions to traced mode.
	EnableTracing()
	// Trace returns the most recent execution trace, nil if tracing is off or
	// nothing traced ran yet.
	Trace() *runtime.Trace
}

// FactorBackend is the optional capability shared-memory backends implement:
// a factorization that lives in this address space and can be handed out as a
// Factor. Session's (θ, nugget)-keyed predict cache requires it — factors
// alias the backend's cached buffers, so Generation stamps each one and the
// cache compares stamps before reuse. Distributed backends keep their factor
// sharded across ranks and do not implement this; Session falls back to the
// Backend-level solve primitives for them.
type FactorBackend interface {
	Backend
	// Factorize assembles Σ for (k, nugget) and factors it, running the
	// nugget-escalation ladder on breakdown.
	Factorize(k *cov.Kernel, nugget float64) (Factor, error)
	// Generation counts factorization executions; a Factor is valid only
	// while the generation it was produced at is current.
	Generation() uint64
}

// CommBackend is the optional capability distributed backends implement:
// per-rank communication statistics (the measured counterpart of
// cluster.DistCholeskyComm).
type CommBackend interface {
	Backend
	CommStats() []mpi.CommStats
}

// Diagnostics is the graceful-degradation bookkeeping every backend keeps:
// how the most recent successful factorization was obtained and how often the
// session has had to degrade to get one.
type Diagnostics struct {
	// LastNugget is the diagonal nugget the most recent successful
	// factorization ran with; LastRetries counts the escalations it took.
	LastNugget  float64
	LastRetries int
	// FactorFailures counts failed factorization attempts;
	// NuggetEscalations how many were answered by growing the nugget.
	// LastFailure is the most recent failure's message, empty if none.
	FactorFailures    int64
	NuggetEscalations int64
	LastFailure       string
	// RanksLost counts the rank deaths this session absorbed via elastic
	// recovery (always 0 on shared-memory backends and with
	// ElasticRecovery off).
	RanksLost int
}

// BackendSpec describes one registered computation mode: its canonical name
// (what Mode.String, Config.Ordering-style flags and the serving wire format
// use), optional accepted aliases, and the constructors. New builds the
// shared-memory backend; NewDist, when non-nil, marks the mode
// distributed-capable and builds the Ranks>1 backend. Constructors receive a
// validated, normalized Config and a Problem already in its final spatial
// ordering.
type BackendSpec struct {
	Name    string
	Aliases []string
	New     func(p *Problem, cfg Config, inj *chaos.Injector) (Backend, error)
	NewDist func(p *Problem, cfg Config, inj *chaos.Injector) (Backend, error)
}

// backends is the mode registry. Populated by RegisterBackend from init
// functions; read-only afterwards, so no locking.
var backends = map[Mode]BackendSpec{}

// RegisterBackend adds a computation mode to the registry. It must be called
// during package initialization (the built-in modes register themselves from
// init functions); duplicate modes or names panic — they are programming
// errors, not runtime conditions.
func RegisterBackend(m Mode, spec BackendSpec) {
	if spec.Name == "" || spec.New == nil {
		panic(fmt.Sprintf("core: RegisterBackend(%d): Name and New are required", int(m)))
	}
	if _, dup := backends[m]; dup {
		panic(fmt.Sprintf("core: duplicate backend registration for mode %d", int(m)))
	}
	for other, o := range backends {
		if o.Name == spec.Name {
			panic(fmt.Sprintf("core: backend name %q already registered for mode %d", spec.Name, int(other)))
		}
	}
	backends[m] = spec
}

// lookupBackend returns the registration for m.
func lookupBackend(m Mode) (BackendSpec, bool) {
	spec, ok := backends[m]
	return spec, ok
}

// ModeNames returns the canonical names of every registered mode, sorted.
func ModeNames() []string {
	names := make([]string, 0, len(backends))
	for _, spec := range backends {
		names = append(names, spec.Name)
	}
	sort.Strings(names)
	return names
}

// ModeByName resolves a mode name (canonical or alias, case-insensitive) to
// its Mode. Unknown names are an error listing what is registered.
func ModeByName(name string) (Mode, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	for m, spec := range backends {
		if spec.Name == want {
			return m, nil
		}
		for _, a := range spec.Aliases {
			if a == want {
				return m, nil
			}
		}
	}
	return 0, fmt.Errorf("core: unknown mode %q (have %s)", name, strings.Join(ModeNames(), ", "))
}

// distModeNames returns the canonical names of the distributed-capable modes,
// sorted and uppercased for error messages ("TLR").
func distModeNames() []string {
	var names []string
	for _, spec := range backends {
		if spec.NewDist != nil {
			names = append(names, strings.ToUpper(spec.Name))
		}
	}
	sort.Strings(names)
	return names
}

// newBackend builds the backend cfg selects: the distributed constructor when
// Ranks > 1, the shared-memory one otherwise. cfg must be validated and
// normalized.
func newBackend(p *Problem, cfg Config, inj *chaos.Injector) (Backend, error) {
	spec, ok := lookupBackend(cfg.Mode)
	if !ok {
		return nil, fmt.Errorf("core: unknown mode %v", cfg.Mode)
	}
	if cfg.Ranks > 1 {
		if spec.NewDist == nil {
			return nil, fmt.Errorf("core: distributed execution (Ranks=%d) requires Mode=%s, got %v",
				cfg.Ranks, strings.Join(distModeNames(), "|"), cfg.Mode)
		}
		return spec.NewDist(p, cfg, inj)
	}
	return spec.New(p, cfg, inj)
}
