package core

import (
	"fmt"

	"repro/internal/cov"
	"repro/internal/la"
	"repro/internal/tlr"
)

// RefineOptions tunes the iterative-refinement solver.
type RefineOptions struct {
	// Tol is the target relative residual (default 1e-10).
	Tol float64
	// MaxIter caps PCG iterations (default 50).
	MaxIter int
	// BlockRows controls the row blocking of the matrix-free exact matvec
	// (default 256).
	BlockRows int
}

// SolveRefined solves Σ(θ)·x = b to near machine precision by combining a
// loose TLR factorization (cfg.Accuracy, used as a preconditioner) with
// matrix-free exact operator applications assembled from the kernel — the
// accuracy-refinement extension the paper's conclusion points toward. It
// returns the solution and the iteration statistics.
func SolveRefined(p *Problem, theta cov.Params, cfg Config, b []float64, opts RefineOptions) ([]float64, tlr.RefineResult, error) {
	if err := theta.Validate(); err != nil {
		return nil, tlr.RefineResult{}, err
	}
	if len(b) != p.N() {
		return nil, tlr.RefineResult{}, fmt.Errorf("core: rhs length %d for n=%d", len(b), p.N())
	}
	cfg.Mode = TLR
	if err := cfg.Validate(); err != nil {
		return nil, tlr.RefineResult{}, err
	}
	cfg = cfg.normalized()
	if cfg.Ranks > 1 {
		return nil, tlr.RefineResult{}, fmt.Errorf("core: SolveRefined is shared-memory only (Ranks=%d)", cfg.Ranks)
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	if opts.BlockRows <= 0 {
		opts.BlockRows = 256
	}
	k := cov.NewKernel(theta)
	nug := cfg.nugget(theta.Variance)

	comp, err := tlr.CompressorByName(cfg.CompressorName)
	if err != nil {
		return nil, tlr.RefineResult{}, err
	}
	pre := tlr.NewMatrix(p.N(), cfg.TileSize, cfg.Accuracy)
	spec := &tlr.GenSpec{K: k, Pts: p.Points, Metric: p.Metric, Nugget: nug, Comp: comp}
	if err := tlr.GenCholesky(pre, spec, cfg.Workers); err != nil {
		return nil, tlr.RefineResult{}, fmt.Errorf("core: preconditioner factorization: %w", err)
	}

	matvec := exactMatVec(p, k, nug, opts.BlockRows)
	x, res, err := tlr.RefineSolve(pre, matvec, b, opts.Tol, opts.MaxIter)
	if err != nil {
		return x, res, fmt.Errorf("core: refined solve: %w", err)
	}
	return x, res, nil
}

// exactMatVec returns y += Σ(θ)·x applied matrix-free: covariance rows are
// assembled in blocks and immediately consumed, so the full n×n matrix is
// never stored.
func exactMatVec(p *Problem, k *cov.Kernel, nugget float64, blockRows int) func(x, y []float64) {
	n := p.N()
	return func(x, y []float64) {
		block := la.NewMat(min(blockRows, n), n)
		for r0 := 0; r0 < n; r0 += blockRows {
			rows := min(blockRows, n-r0)
			blk := block.View(0, 0, rows, n)
			k.Block(blk, p.Points[r0:r0+rows], p.Points, p.Metric)
			for i := 0; i < rows; i++ {
				row := blk.Row(i)
				s := nugget * x[r0+i]
				for j, v := range row {
					s += v * x[j]
				}
				y[r0+i] += s
			}
		}
	}
}
