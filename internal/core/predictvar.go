package core

import (
	"fmt"
	"math"

	"repro/internal/cov"
	"repro/internal/geom"
)

// Prediction carries point predictions with their conditional uncertainty
// (paper eq. 3: Z₁|Z₂ ~ N(Σ₁₂Σ₂₂⁻¹Z₂, Σ₁₁ − Σ₁₂Σ₂₂⁻¹Σ₂₁)).
type Prediction struct {
	// Mean is the kriging predictor Σ₁₂Σ₂₂⁻¹Z₂ per new location.
	Mean []float64
	// Variance is the conditional variance diag(Σ₁₁ − Σ₁₂Σ₂₂⁻¹Σ₂₁).
	Variance []float64
}

// CI95 returns the half-width of the pointwise 95% prediction interval for
// location i (1.96·σ).
func (p Prediction) CI95(i int) float64 { return 1.96 * math.Sqrt(p.Variance[i]) }

// PredictWithVariance computes the conditional mean AND variance at newPts
// (paper eq. 3). It needs one factorization and one multi-right-hand-side
// forward solve:
//
//	W = L⁻¹·Σ₂₁  (n×m),  y = L⁻¹·Z₂,
//	mean_i = W[:,i]ᵀ·y,   var_i = C(0) − ‖W[:,i]‖².
//
// Convenience path wrapping Session.PredictWithVariance on a fresh Session.
func PredictWithVariance(p *Problem, newPts []geom.Point, theta cov.Params, cfg Config) (Prediction, error) {
	s, err := NewSession(p, cfg)
	if err != nil {
		return Prediction{}, err
	}
	return s.PredictWithVariance(newPts, theta)
}

// CoverageCheck counts how many truths fall inside the pointwise 95%
// prediction intervals — the calibration diagnostic for the conditional
// variance. It returns the empirical coverage fraction.
func CoverageCheck(pr Prediction, truth []float64) (float64, error) {
	if len(truth) != len(pr.Mean) {
		return 0, fmt.Errorf("core: coverage check length mismatch %d vs %d", len(truth), len(pr.Mean))
	}
	if len(truth) == 0 {
		return 0, nil
	}
	inside := 0
	for i, tv := range truth {
		if math.Abs(tv-pr.Mean[i]) <= pr.CI95(i) {
			inside++
		}
	}
	return float64(inside) / float64(len(truth)), nil
}
