package core

import (
	"fmt"
	"math"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
)

// Prediction carries point predictions with their conditional uncertainty
// (paper eq. 3: Z₁|Z₂ ~ N(Σ₁₂Σ₂₂⁻¹Z₂, Σ₁₁ − Σ₁₂Σ₂₂⁻¹Σ₂₁)).
type Prediction struct {
	// Mean is the kriging predictor Σ₁₂Σ₂₂⁻¹Z₂ per new location.
	Mean []float64
	// Variance is the conditional variance diag(Σ₁₁ − Σ₁₂Σ₂₂⁻¹Σ₂₁).
	Variance []float64
}

// CI95 returns the half-width of the pointwise 95% prediction interval for
// location i (1.96·σ).
func (p Prediction) CI95(i int) float64 { return 1.96 * math.Sqrt(p.Variance[i]) }

// PredictWithVariance computes the conditional mean AND variance at newPts
// (paper eq. 3). It needs one factorization and one multi-right-hand-side
// forward solve:
//
//	W = L⁻¹·Σ₂₁  (n×m),  y = L⁻¹·Z₂,
//	mean_i = W[:,i]ᵀ·y,   var_i = C(0) − ‖W[:,i]‖².
func PredictWithVariance(p *Problem, newPts []geom.Point, theta cov.Params, cfg Config) (Prediction, error) {
	if err := theta.Validate(); err != nil {
		return Prediction{}, err
	}
	if len(newPts) == 0 {
		return Prediction{}, nil
	}
	cfg = cfg.withDefaults()
	n := p.N()
	m := len(newPts)
	k := cov.NewKernel(theta)

	f, err := Factorize(p, theta, cfg)
	if err != nil {
		return Prediction{}, err
	}

	// W = L⁻¹ Σ21 (n×m) and y = L⁻¹ Z in one half-solve each.
	w := la.NewMat(n, m)
	k.Block(w, p.Points, newPts, p.Metric)
	f.HalfSolveMat(w)
	y := append([]float64(nil), p.Z...)
	f.HalfSolve(y)

	pr := Prediction{Mean: make([]float64, m), Variance: make([]float64, m)}
	c0 := k.At(0)
	for i := 0; i < m; i++ {
		var mean, norm2 float64
		for r := 0; r < n; r++ {
			wi := w.At(r, i)
			mean += wi * y[r]
			norm2 += wi * wi
		}
		pr.Mean[i] = mean
		v := c0 - norm2
		if v < 0 {
			// clamp tiny negative values from approximation error
			v = 0
		}
		pr.Variance[i] = v
	}
	return pr, nil
}

// CoverageCheck counts how many truths fall inside the pointwise 95%
// prediction intervals — the calibration diagnostic for the conditional
// variance. It returns the empirical coverage fraction.
func CoverageCheck(pr Prediction, truth []float64) (float64, error) {
	if len(truth) != len(pr.Mean) {
		return 0, fmt.Errorf("core: coverage check length mismatch %d vs %d", len(truth), len(pr.Mean))
	}
	if len(truth) == 0 {
		return 0, nil
	}
	inside := 0
	for i, tv := range truth {
		if math.Abs(tv-pr.Mean[i]) <= pr.CI95(i) {
			inside++
		}
	}
	return float64(inside) / float64(len(truth)), nil
}
