package core

import (
	"math"
	"testing"

	"repro/internal/cov"
	"repro/internal/geom"
)

func TestPredictWithVarianceMeanMatchesPredict(t *testing.T) {
	syn, err := GenerateSynthetic(256, 20, theta(), 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Mode: FullBlock},
		{Mode: FullTile, TileSize: 64, Workers: 2},
		{Mode: TLR, TileSize: 64, Accuracy: 1e-10},
	} {
		mean, err := Predict(syn.Train, syn.TestPoints, theta(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := PredictWithVariance(syn.Train, syn.TestPoints, theta(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range mean {
			if math.Abs(mean[i]-pr.Mean[i]) > 1e-6 {
				t.Fatalf("%v: mean mismatch at %d: %g vs %g", cfg.Mode, i, mean[i], pr.Mean[i])
			}
		}
	}
}

func TestPredictVariancePositiveAndBounded(t *testing.T) {
	syn, err := GenerateSynthetic(256, 25, theta(), 22)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := PredictWithVariance(syn.Train, syn.TestPoints, theta(), Config{Mode: FullBlock})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range pr.Variance {
		if v < 0 || v > theta().Variance*1.001 {
			t.Fatalf("variance %d = %g outside [0, θ1]", i, v)
		}
		if pr.CI95(i) < 0 {
			t.Fatal("negative CI width")
		}
	}
}

func TestPredictVarianceShrinksNearData(t *testing.T) {
	// A new point essentially on top of an observation has near-zero
	// conditional variance; a far-away point approaches the prior variance.
	syn, err := GenerateSynthetic(200, 0, cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5}, 23)
	if err != nil {
		t.Fatal(err)
	}
	near := syn.Train.Points[0]
	near.X += 1e-4
	far := near
	far.X = near.X + 50 // far outside the unit square
	pr, err := PredictWithVariance(syn.Train, []geom.Point{near, far}, theta(), Config{Mode: FullBlock})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Variance[0] > 0.05 {
		t.Fatalf("variance near an observation should be small: %g", pr.Variance[0])
	}
	if pr.Variance[1] < 0.9 {
		t.Fatalf("variance far from data should approach θ1: %g", pr.Variance[1])
	}
}

func TestPredictionCoverageCalibrated(t *testing.T) {
	// Pooled across replicates, the 95% intervals should cover ~95% of
	// held-out truths (within Monte-Carlo slack).
	var pooledIn, pooledTot int
	for rep := 0; rep < 6; rep++ {
		syn, err := GenerateSynthetic(250, 25, cov.Params{Variance: 1, Range: 0.2, Smoothness: 0.5}, 100+uint64(rep))
		if err != nil {
			t.Fatal(err)
		}
		pr, err := PredictWithVariance(syn.Train, syn.TestPoints, syn.Truth, Config{Mode: FullBlock})
		if err != nil {
			t.Fatal(err)
		}
		cov95, err := CoverageCheck(pr, syn.TestZ)
		if err != nil {
			t.Fatal(err)
		}
		pooledIn += int(cov95*float64(len(syn.TestZ)) + 0.5)
		pooledTot += len(syn.TestZ)
	}
	coverage := float64(pooledIn) / float64(pooledTot)
	if coverage < 0.85 || coverage > 1.0 {
		t.Fatalf("95%% interval empirical coverage %g badly calibrated", coverage)
	}
}

func TestPredictWithVarianceTLRMatchesDense(t *testing.T) {
	syn, err := GenerateSynthetic(256, 20, theta(), 24)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := PredictWithVariance(syn.Train, syn.TestPoints, theta(), Config{Mode: FullBlock})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := PredictWithVariance(syn.Train, syn.TestPoints, theta(), Config{Mode: TLR, TileSize: 64, Accuracy: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact.Variance {
		if math.Abs(exact.Variance[i]-approx.Variance[i]) > 1e-4 {
			t.Fatalf("TLR variance diverges at %d: %g vs %g", i, approx.Variance[i], exact.Variance[i])
		}
	}
}

func TestPredictWithVarianceEdgeCases(t *testing.T) {
	p := smallProblem(t, 25, 25)
	pr, err := PredictWithVariance(p, nil, theta(), Config{})
	if err != nil || pr.Mean != nil {
		t.Fatal("empty prediction should be a no-op")
	}
	if _, err := PredictWithVariance(p, []geom.Point{{X: 0.5, Y: 0.5}}, cov.Params{}, Config{}); err == nil {
		t.Fatal("invalid theta must error")
	}
	if _, err := CoverageCheck(Prediction{Mean: []float64{1}}, nil); err == nil {
		t.Fatal("coverage length mismatch must error")
	}
	frac, err := CoverageCheck(Prediction{}, nil)
	if err != nil || frac != 0 {
		t.Fatal("empty coverage should be 0, nil")
	}
}

func TestCI95ZeroVariance(t *testing.T) {
	pr := Prediction{Mean: []float64{2, 3}, Variance: []float64{0, 0.25}}
	if w := pr.CI95(0); w != 0 {
		t.Fatalf("zero variance must give a zero-width interval, got %g", w)
	}
	if w := pr.CI95(1); math.Abs(w-1.96*0.5) > 1e-15 {
		t.Fatalf("CI95 half-width %g, want %g", w, 1.96*0.5)
	}
	// A zero-variance interval covers exactly the truths equal to the mean.
	frac, err := CoverageCheck(pr, []float64{2, 3})
	if err != nil || frac != 1 {
		t.Fatalf("exact truths must be covered: frac=%g err=%v", frac, err)
	}
	frac, err = CoverageCheck(pr, []float64{2.0001, 3})
	if err != nil || frac != 0.5 {
		t.Fatalf("zero-variance interval must miss a perturbed truth: frac=%g err=%v", frac, err)
	}
}

func TestCoverageCheckLengthMismatch(t *testing.T) {
	pr := Prediction{Mean: []float64{1, 2}, Variance: []float64{1, 1}}
	if _, err := CoverageCheck(pr, []float64{1}); err == nil {
		t.Fatal("shorter truth must error")
	}
	if _, err := CoverageCheck(pr, []float64{1, 2, 3}); err == nil {
		t.Fatal("longer truth must error")
	}
}

func TestProfiledLikelihoodMatchesFull(t *testing.T) {
	// ℓ_p(θ2, θ3) must equal ℓ(θ̂1, θ2, θ3) at the concentrated variance.
	p := smallProblem(t, 144, 26)
	ll, varHat, err := ProfiledLogLikelihood(p, 0.1, 0.5, Config{Mode: FullBlock})
	if err != nil {
		t.Fatal(err)
	}
	full, err := LogLikelihood(p, cov.Params{Variance: varHat, Range: 0.1, Smoothness: 0.5}, Config{Mode: FullBlock, Nugget: 1e-9 * varHat})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ll-full.Value) > 1e-5*math.Abs(full.Value) {
		t.Fatalf("profile %g vs full at concentrated variance %g", ll, full.Value)
	}
	// And θ̂1 must be the maximizer over variance: perturbing it lowers ℓ.
	for _, fac := range []float64{0.8, 1.25} {
		worse, err := LogLikelihood(p, cov.Params{Variance: varHat * fac, Range: 0.1, Smoothness: 0.5}, Config{Mode: FullBlock, Nugget: 1e-9 * varHat})
		if err != nil {
			t.Fatal(err)
		}
		if worse.Value > full.Value {
			t.Fatalf("variance %g·θ̂1 beats the concentrated value", fac)
		}
	}
}

func TestProfiledFitAgreesWithFullFit(t *testing.T) {
	syn, err := GenerateSynthetic(256, 0, theta(), 27)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Fit(syn.Train, Config{Mode: FullBlock}, FitOptions{MaxEvals: 150})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfiledFit(syn.Train, Config{Mode: FullBlock}, FitOptions{MaxEvals: 150})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(prof.Theta.Variance-full.Theta.Variance) > 0.3*full.Theta.Variance {
		t.Errorf("profiled variance %g vs full %g", prof.Theta.Variance, full.Theta.Variance)
	}
	if math.Abs(prof.Theta.Range-full.Theta.Range) > 0.4*full.Theta.Range {
		t.Errorf("profiled range %g vs full %g", prof.Theta.Range, full.Theta.Range)
	}
	if prof.LogL < full.LogL-1.0 {
		t.Errorf("profiled fit found a clearly worse optimum: %g vs %g", prof.LogL, full.LogL)
	}
}

func TestProfiledFitFixedSmoothness(t *testing.T) {
	syn, err := GenerateSynthetic(196, 0, theta(), 28)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ProfiledFit(syn.Train, Config{Mode: TLR, TileSize: 64, Accuracy: 1e-8},
		FitOptions{MaxEvals: 60, FixSmoothness: true, Start: theta()})
	if err != nil {
		t.Fatal(err)
	}
	if prof.Theta.Smoothness != 0.5 {
		t.Fatalf("smoothness should stay fixed: %g", prof.Theta.Smoothness)
	}
	if prof.Theta.Range < 0.01 || prof.Theta.Range > 1 {
		t.Fatalf("range estimate %g implausible", prof.Theta.Range)
	}
}
