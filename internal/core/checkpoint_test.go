package core

import (
	"path/filepath"
	"strings"
	"testing"
)

// fitTriple runs Fit on a fresh session so no cached state leaks between the
// reference, truncated, and resumed runs.
func fitTriple(t *testing.T, p *Problem, cfg Config, opts FitOptions) FitResult {
	t.Helper()
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	res, err := s.Fit(opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// A fit killed mid-run (modeled as MaxEvals truncation — the checkpoint file
// an interrupted process leaves behind is exactly a truncated log) must
// resume to the bitwise-identical result of an uninterrupted run.
func TestFitCheckpointResume(t *testing.T) {
	for _, profiled := range []bool{false, true} {
		p := smallProblem(t, 80, 5)
		cfg := Config{Mode: TLR, TileSize: 32, Accuracy: 1e-8}
		base := FitOptions{MaxEvals: 40, FixSmoothness: true, Profiled: profiled}

		ref := fitTriple(t, p, cfg, base)
		if ref.Evals <= 15 {
			t.Fatalf("profiled=%v: reference converged in %d evals; truncation at 15 would not interrupt anything", profiled, ref.Evals)
		}

		ck := filepath.Join(t.TempDir(), "fit.ckpt")
		trunc := base
		trunc.Checkpoint = ck
		trunc.CheckpointEvery = 3
		trunc.MaxEvals = 15
		fitTriple(t, p, cfg, trunc) // interrupted run; leaves the log behind

		resumed := trunc
		resumed.MaxEvals = base.MaxEvals
		got := fitTriple(t, p, cfg, resumed)
		if got != ref {
			t.Fatalf("profiled=%v: resumed fit %+v differs from uninterrupted %+v", profiled, got, ref)
		}

		// A third run replays the entire finished log: same result again.
		again := fitTriple(t, p, cfg, resumed)
		if again != ref {
			t.Fatalf("profiled=%v: full replay %+v differs from %+v", profiled, again, ref)
		}
	}
}

// A checkpoint recorded for different data or options must be refused, not
// silently replayed.
func TestFitCheckpointDigestMismatch(t *testing.T) {
	cfg := Config{Mode: FullBlock}
	ck := filepath.Join(t.TempDir(), "fit.ckpt")
	opts := FitOptions{MaxEvals: 10, FixSmoothness: true, Checkpoint: ck}
	fitTriple(t, smallProblem(t, 60, 7), cfg, opts)

	other := smallProblem(t, 60, 8) // same shape, different data
	s, err := NewSession(other, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fit(opts); err == nil || !strings.Contains(err.Error(), "different problem") {
		t.Fatalf("digest mismatch not detected: %v", err)
	}

	// Changed result-affecting option on the same data: also refused.
	s2, err := NewSession(smallProblem(t, 60, 7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	bad := opts
	bad.TolX = 1e-6
	if _, err := s2.Fit(bad); err == nil || !strings.Contains(err.Error(), "different problem") {
		t.Fatalf("option mismatch not detected: %v", err)
	}
}
