package core

import (
	"math"
	"testing"
)

// TestDistributedLogLikMatchesShared is the acceptance criterion for the
// distributed backend: at n=1600, nb=128, acc=1e-7 the distributed TLR
// log-likelihood matches the shared-memory TLR value to 1e-8 relative on
// the 1×1, 2×2 and 2×3 grids. The tile contents are bitwise-identical
// (per-tile compressor seeding) and the distributed update order matches
// the shared DAG's serialization, so the agreement is in fact much tighter.
func TestDistributedLogLikMatchesShared(t *testing.T) {
	if raceEnabled {
		t.Skip("heavy n=1600 run; the plain suite covers it, smaller distributed tests keep race coverage")
	}
	p := smallProblem(t, 1600, 7)
	base := Config{Mode: TLR, TileSize: 128, Accuracy: 1e-7, CompressorName: "rsvd", Workers: 2}
	th := theta()
	want, err := LogLikelihood(p, th, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, grid := range [][2]int{{1, 1}, {2, 2}, {2, 3}} {
		cfg := base
		cfg.Grid = grid
		got, err := LogLikelihood(p, th, cfg)
		if err != nil {
			t.Fatalf("grid %v: %v", grid, err)
		}
		if rel := math.Abs(got.Value-want.Value) / math.Abs(want.Value); rel > 1e-8 {
			t.Errorf("grid %v: loglik %.10f vs shared %.10f (rel %.2e)", grid, got.Value, want.Value, rel)
		}
		if rel := math.Abs(got.LogDet-want.LogDet) / math.Abs(want.LogDet); rel > 1e-8 {
			t.Errorf("grid %v: logdet %.10f vs shared %.10f (rel %.2e)", grid, got.LogDet, want.LogDet, rel)
		}
		if rel := math.Abs(got.QuadForm-want.QuadForm) / want.QuadForm; rel > 1e-8 {
			t.Errorf("grid %v: quadform %.10f vs shared %.10f (rel %.2e)", grid, got.QuadForm, want.QuadForm, rel)
		}
		if got.MaxRank != want.MaxRank {
			t.Errorf("grid %v: max rank %d vs shared %d", grid, got.MaxRank, want.MaxRank)
		}
		if math.Abs(got.MeanRank-want.MeanRank) > 1e-9 {
			t.Errorf("grid %v: mean rank %g vs shared %g", grid, got.MeanRank, want.MeanRank)
		}
		if got.Bytes != want.Bytes {
			t.Errorf("grid %v: bytes %d vs shared %d", grid, got.Bytes, want.Bytes)
		}
	}
}

// TestDistributedFitMatchesShared: the acceptance criterion that Fit with
// Ranks=4 recovers the same θ̂ as the shared-memory run. Likelihood values
// agree to rounding noise, so the deterministic Nelder-Mead search follows
// the same iterate sequence.
func TestDistributedFitMatchesShared(t *testing.T) {
	if raceEnabled {
		t.Skip("two full Nelder-Mead runs; the plain suite covers it")
	}
	p := smallProblem(t, 400, 8)
	base := Config{Mode: TLR, TileSize: 64, Accuracy: 1e-7, Workers: 2}
	opts := FitOptions{FixSmoothness: true, Start: theta(), MaxEvals: 60}
	want, err := Fit(p, base, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Ranks = 4
	got, err := Fit(p, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Evals != want.Evals {
		t.Errorf("distributed fit took %d evals, shared %d", got.Evals, want.Evals)
	}
	relDiff := func(a, b float64) float64 { return math.Abs(a-b) / math.Max(math.Abs(b), 1e-12) }
	if relDiff(got.Theta.Variance, want.Theta.Variance) > 1e-6 ||
		relDiff(got.Theta.Range, want.Theta.Range) > 1e-6 {
		t.Errorf("distributed θ̂ %+v, shared θ̂ %+v", got.Theta, want.Theta)
	}
	if relDiff(got.LogL, want.LogL) > 1e-8 {
		t.Errorf("distributed logL %.10f, shared %.10f", got.LogL, want.LogL)
	}
}

// TestDistributedPredictMatchesShared checks the prediction pipelines
// (solve and half-solve paths) on the distributed backend.
func TestDistributedPredictMatchesShared(t *testing.T) {
	syn, err := GenerateSynthetic(420, 20, theta(), 9)
	if err != nil {
		t.Fatal(err)
	}
	p := syn.Train
	base := Config{Mode: TLR, TileSize: 64, Accuracy: 1e-7}
	th := theta()
	wantPred, err := Predict(p, syn.TestPoints, th, base)
	if err != nil {
		t.Fatal(err)
	}
	wantPV, err := PredictWithVariance(p, syn.TestPoints, th, base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Grid = [2]int{2, 2}
	gotPred, err := Predict(p, syn.TestPoints, th, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotPV, err := PredictWithVariance(p, syn.TestPoints, th, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantPred {
		if math.Abs(gotPred[i]-wantPred[i]) > 1e-8 {
			t.Fatalf("prediction %d: distributed %g shared %g", i, gotPred[i], wantPred[i])
		}
		if math.Abs(gotPV.Mean[i]-wantPV.Mean[i]) > 1e-8 {
			t.Fatalf("mean %d: distributed %g shared %g", i, gotPV.Mean[i], wantPV.Mean[i])
		}
		if math.Abs(gotPV.Variance[i]-wantPV.Variance[i]) > 1e-8 {
			t.Fatalf("variance %d: distributed %g shared %g", i, gotPV.Variance[i], wantPV.Variance[i])
		}
	}
}

// TestDistributedProfiledMatchesShared covers the concentrated-likelihood
// path on the distributed backend.
func TestDistributedProfiledMatchesShared(t *testing.T) {
	p := smallProblem(t, 400, 10)
	base := Config{Mode: TLR, TileSize: 64, Accuracy: 1e-7}
	wantL, wantVar, err := ProfiledLogLikelihood(p, 0.1, 0.5, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Ranks = 4
	gotL, gotVar, err := ProfiledLogLikelihood(p, 0.1, 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gotL-wantL)/math.Abs(wantL) > 1e-8 {
		t.Errorf("profiled logL %.10f vs %.10f", gotL, wantL)
	}
	if math.Abs(gotVar-wantVar)/wantVar > 1e-8 {
		t.Errorf("profiled variance %.10g vs %.10g", gotVar, wantVar)
	}
}

// TestDistributedSessionReuse runs several evaluations through one
// distributed Session — the World and shards must be reused without
// cross-evaluation corruption, and CommStats must accumulate.
func TestDistributedSessionReuse(t *testing.T) {
	p := smallProblem(t, 400, 11)
	cfg := Config{Mode: TLR, TileSize: 64, Accuracy: 1e-7, Grid: [2]int{2, 3}}
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewSession(p, Config{Mode: TLR, TileSize: 64, Accuracy: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	thetas := []struct{ v, r float64 }{{1, 0.1}, {1.4, 0.2}, {1, 0.1}}
	var prevSent int64 = -1
	for i, tv := range thetas {
		th := theta()
		th.Variance, th.Range = tv.v, tv.r
		got, err := s.LogLikelihood(th)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.LogLikelihood(th)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(got.Value-want.Value) / math.Abs(want.Value); rel > 1e-8 {
			t.Fatalf("eval %d: distributed %.10f shared %.10f (rel %.2e)", i, got.Value, want.Value, rel)
		}
		stats := s.CommStats()
		if len(stats) != 6 {
			t.Fatalf("CommStats returned %d ranks, want 6", len(stats))
		}
		var sent int64
		for _, st := range stats {
			sent += st.BytesSent
		}
		if sent <= prevSent {
			t.Fatalf("eval %d: traffic did not accumulate (%d after %d)", i, sent, prevSent)
		}
		prevSent = sent
	}
	if ref.CommStats() != nil {
		t.Fatal("shared-memory session must report nil CommStats")
	}
}
