package core

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/rng"
)

// TestPredictCacheSingleFactorization is the serving-hot-path regression:
// repeated predicts at one θ must factor exactly once, with every further
// call answered from the session's solve-vector cache.
func TestPredictCacheSingleFactorization(t *testing.T) {
	for _, mode := range []Mode{FullBlock, FullTile, TLR} {
		t.Run(mode.String(), func(t *testing.T) {
			syn, err := GenerateSynthetic(300, 20, theta(), 5)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewSession(syn.Train, Config{Mode: mode, TileSize: 64, Accuracy: 1e-9})
			if err != nil {
				t.Fatal(err)
			}
			want, err := Predict(syn.Train, syn.TestPoints, theta(), Config{Mode: mode, TileSize: 64, Accuracy: 1e-9})
			if err != nil {
				t.Fatal(err)
			}

			runs0 := cntFactorRuns.Value()
			hits0 := cntPredictCacheHit.Value()
			const repeats = 5
			for rep := 0; rep < repeats; rep++ {
				got, err := s.Predict(syn.TestPoints, theta())
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("repeat %d: prediction %d = %g, want %g", rep, i, got[i], want[i])
					}
				}
			}
			if runs := cntFactorRuns.Value() - runs0; runs != 1 {
				t.Fatalf("%d factorizations across %d predicts at one θ, want exactly 1", runs, repeats)
			}
			if hits := cntPredictCacheHit.Value() - hits0; hits != repeats-1 {
				t.Fatalf("%d cache hits, want %d", hits, repeats-1)
			}
		})
	}
}

// TestPredictCacheKeyedByTheta checks the cache misses when θ or the nugget
// changes and the new key's predictions are correct (no stale reuse).
func TestPredictCacheKeyedByTheta(t *testing.T) {
	syn, err := GenerateSynthetic(240, 15, theta(), 6)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: FullBlock}
	s, err := NewSession(syn.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	th1 := theta()
	th2 := cov.Params{Variance: th1.Variance * 2, Range: th1.Range, Smoothness: th1.Smoothness}

	runs0 := cntFactorRuns.Value()
	got1, err := s.Predict(syn.TestPoints, th1)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := s.Predict(syn.TestPoints, th2)
	if err != nil {
		t.Fatal(err)
	}
	if runs := cntFactorRuns.Value() - runs0; runs != 2 {
		t.Fatalf("%d factorizations for two distinct θ, want 2", runs)
	}
	want1, err := Predict(syn.Train, syn.TestPoints, th1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want2, err := Predict(syn.Train, syn.TestPoints, th2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want1 {
		if got1[i] != want1[i] || got2[i] != want2[i] {
			t.Fatalf("prediction %d stale after θ switch: got (%g, %g) want (%g, %g)",
				i, got1[i], got2[i], want1[i], want2[i])
		}
	}
}

// TestPredictCacheSurvivesInterleavedEval checks the solve-vector reuse is
// not fooled by an interleaved likelihood evaluation at another θ: the
// cached vector (a private copy) stays valid, while the cached factor
// (which aliases evaluator buffers the evaluation overwrote) is discarded.
func TestPredictCacheSurvivesInterleavedEval(t *testing.T) {
	syn, err := GenerateSynthetic(240, 15, theta(), 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(syn.Train, Config{Mode: FullBlock})
	if err != nil {
		t.Fatal(err)
	}
	th := theta()
	other := cov.Params{Variance: 3, Range: 0.2, Smoothness: 1}

	first, err := s.Predict(syn.TestPoints, th)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LogLikelihood(other); err != nil {
		t.Fatal(err)
	}
	runs0 := cntFactorRuns.Value()
	again, err := s.Predict(syn.TestPoints, th)
	if err != nil {
		t.Fatal(err)
	}
	if runs := cntFactorRuns.Value() - runs0; runs != 0 {
		t.Fatalf("cached solve vector not reused after interleaved evaluation (%d factorizations)", runs)
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("prediction %d changed across interleaved evaluation: %g vs %g", i, first[i], again[i])
		}
	}

	// The variance path needs the factor, which the interleaved evaluation
	// invalidated — it must refactorize rather than reuse stale buffers.
	pv, err := s.PredictWithVariance(syn.TestPoints, th)
	if err != nil {
		t.Fatal(err)
	}
	want, err := PredictWithVariance(syn.Train, syn.TestPoints, th, Config{Mode: FullBlock})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Mean {
		if pv.Mean[i] != want.Mean[i] || pv.Variance[i] != want.Variance[i] {
			t.Fatalf("variance path %d stale after invalidation", i)
		}
	}
}

// TestPredictThenVarianceSharesFactorization checks the two predict flavors
// share one factorization at a fixed θ in either order.
func TestPredictThenVarianceSharesFactorization(t *testing.T) {
	syn, err := GenerateSynthetic(240, 15, theta(), 8)
	if err != nil {
		t.Fatal(err)
	}
	th := theta()
	for _, firstMean := range []bool{true, false} {
		s, err := NewSession(syn.Train, Config{Mode: FullBlock})
		if err != nil {
			t.Fatal(err)
		}
		runs0 := cntFactorRuns.Value()
		if firstMean {
			if _, err := s.Predict(syn.TestPoints, th); err != nil {
				t.Fatal(err)
			}
			if _, err := s.PredictWithVariance(syn.TestPoints, th); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := s.PredictWithVariance(syn.TestPoints, th); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Predict(syn.TestPoints, th); err != nil {
				t.Fatal(err)
			}
		}
		if runs := cntFactorRuns.Value() - runs0; runs != 1 {
			t.Fatalf("mean+variance predicts at one θ (mean first: %v) took %d factorizations, want 1", firstMean, runs)
		}
	}
}

// unchunkedPredictWithVariance is the pre-chunking reference implementation:
// one dense n×m W solved in a single HalfSolveMat.
func unchunkedPredictWithVariance(t *testing.T, p *Problem, newPts []geom.Point, th cov.Params, cfg Config) Prediction {
	t.Helper()
	f, err := Factorize(p, th, cfg)
	if err != nil {
		t.Fatal(err)
	}
	k := cov.NewKernel(th)
	n, m := p.N(), len(newPts)
	w := la.NewMat(n, m)
	k.Block(w, p.Points, newPts, p.Metric)
	f.HalfSolveMat(w)
	y := append([]float64(nil), p.Z...)
	f.HalfSolve(y)
	pr := Prediction{Mean: make([]float64, m), Variance: make([]float64, m)}
	c0 := k.At(0)
	for i := 0; i < m; i++ {
		var mean, norm2 float64
		for r := 0; r < n; r++ {
			wi := w.At(r, i)
			mean += wi * y[r]
			norm2 += wi * wi
		}
		pr.Mean[i] = mean
		v := c0 - norm2
		if v < 0 {
			v = 0
		}
		pr.Variance[i] = v
	}
	return pr
}

// TestPredictWithVarianceChunkedBitwise checks the column-block variance
// path reproduces the one-shot n×m computation bit for bit in every mode,
// with the request spanning several partial and full chunks.
func TestPredictWithVarianceChunkedBitwise(t *testing.T) {
	syn, err := GenerateSynthetic(300, 0, theta(), 11)
	if err != nil {
		t.Fatal(err)
	}
	// 75 query points against TileSize 32: two full chunks plus a remainder.
	qpts := geom.GeneratePerturbedGrid(75, rng.New(12))
	th := theta()
	for _, mode := range []Mode{FullBlock, FullTile, TLR} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := Config{Mode: mode, TileSize: 32, Accuracy: 1e-9}
			want := unchunkedPredictWithVariance(t, syn.Train, qpts, th, cfg)
			got, err := PredictWithVariance(syn.Train, qpts, th, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Mean {
				if got.Mean[i] != want.Mean[i] {
					t.Fatalf("mean %d: chunked %v unchunked %v (diff %g)", i, got.Mean[i], want.Mean[i], got.Mean[i]-want.Mean[i])
				}
				if got.Variance[i] != want.Variance[i] {
					t.Fatalf("variance %d: chunked %v unchunked %v", i, got.Variance[i], want.Variance[i])
				}
			}
		})
	}
}

// TestPredictWithVarianceChunkedDistributed checks the bounded-memory
// distributed variance path (factor once, solve per column block) against
// the shared-memory result across multiple chunks.
func TestPredictWithVarianceChunkedDistributed(t *testing.T) {
	syn, err := GenerateSynthetic(256, 0, theta(), 13)
	if err != nil {
		t.Fatal(err)
	}
	qpts := geom.GeneratePerturbedGrid(150, rng.New(14))
	th := theta()
	base := Config{Mode: TLR, TileSize: 64, Accuracy: 1e-7}
	want, err := PredictWithVariance(syn.Train, qpts, th, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Ranks = 4
	got, err := PredictWithVariance(syn.Train, qpts, th, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Mean {
		if math.Abs(got.Mean[i]-want.Mean[i]) > 1e-8 {
			t.Fatalf("mean %d: distributed %g shared %g", i, got.Mean[i], want.Mean[i])
		}
		if math.Abs(got.Variance[i]-want.Variance[i]) > 1e-8 {
			t.Fatalf("variance %d: distributed %g shared %g", i, got.Variance[i], want.Variance[i])
		}
	}
}

// TestSessionConcurrentEntryFails pins the in-use guard contract: a second
// goroutine entering a busy session gets ErrSessionBusy, never corruption.
func TestSessionConcurrentEntryFails(t *testing.T) {
	syn, err := GenerateSynthetic(200, 10, theta(), 15)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(syn.Train, Config{Mode: FullBlock})
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic: hold the guard and watch every entry point refuse.
	if !s.inUse.CompareAndSwap(0, 1) {
		t.Fatal("fresh session not idle")
	}
	if _, err := s.Predict(syn.TestPoints, theta()); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("Predict on busy session: %v, want ErrSessionBusy", err)
	}
	if _, err := s.PredictWithVariance(syn.TestPoints, theta()); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("PredictWithVariance on busy session: %v, want ErrSessionBusy", err)
	}
	if _, err := s.LogLikelihood(theta()); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("LogLikelihood on busy session: %v, want ErrSessionBusy", err)
	}
	if _, _, err := s.ProfiledLogLikelihood(0.1, 0.5); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("ProfiledLogLikelihood on busy session: %v, want ErrSessionBusy", err)
	}
	if _, err := s.Fit(FitOptions{}); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("Fit on busy session: %v, want ErrSessionBusy", err)
	}
	if _, err := s.ProfiledFit(FitOptions{}); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("ProfiledFit on busy session: %v, want ErrSessionBusy", err)
	}
	s.release()

	// The session works again once the guard is released.
	if _, err := s.Predict(syn.TestPoints, theta()); err != nil {
		t.Fatalf("Predict after release: %v", err)
	}
}

// TestSessionConcurrentPredictRace hammers one session from many goroutines
// under the race detector: every call must either succeed with correct
// results or fail with ErrSessionBusy — no third outcome, no data race.
func TestSessionConcurrentPredictRace(t *testing.T) {
	syn, err := GenerateSynthetic(200, 10, theta(), 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Mode: FullBlock}
	s, err := NewSession(syn.Train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Predict(syn.Train, syn.TestPoints, theta(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	var successes, busies atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 8; iter++ {
				got, err := s.Predict(syn.TestPoints, theta())
				switch {
				case err == nil:
					successes.Add(1)
					for i := range want {
						if got[i] != want[i] {
							t.Errorf("concurrent prediction %d corrupted: %g want %g", i, got[i], want[i])
							return
						}
					}
				case errors.Is(err, ErrSessionBusy):
					busies.Add(1)
				default:
					t.Errorf("unexpected error under concurrency: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if successes.Load() == 0 {
		t.Fatal("no concurrent predict ever succeeded")
	}
	t.Logf("concurrent predicts: %d succeeded, %d refused busy", successes.Load(), busies.Load())
}
