package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/chaos"
	"repro/internal/cov"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/tile"
	"repro/internal/tlr"
)

// Cache-reuse counters: each factorize call either reuses the session's
// cached Σ buffer / task graph (hit) or builds it (miss). Across a Fit the
// hit:miss ratio should be (evals−1):1 per mode — anything else means the
// optimizer is silently rebuilding per-problem state every iteration.
var (
	cntCacheSigmaHit  = obs.GetCounter("core.cache.sigma.hit")
	cntCacheSigmaMiss = obs.GetCounter("core.cache.sigma.miss")
	cntCacheTileHit   = obs.GetCounter("core.cache.tilegraph.hit")
	cntCacheTileMiss  = obs.GetCounter("core.cache.tilegraph.miss")
	cntCacheTLRHit    = obs.GetCounter("core.cache.tlrgraph.hit")
	cntCacheTLRMiss   = obs.GetCounter("core.cache.tlrgraph.miss")
)

// Degradation counters: factorization attempts that failed, and how many of
// those were answered by escalating the nugget rather than giving up.
var (
	cntFactorFail      = obs.GetCounter("core.factor.fail")
	cntNuggetEscalated = obs.GetCounter("core.nugget.escalated")
)

// cntFactorRuns counts actual factorization executions (assembly + Cholesky)
// across both backends. The serving regression "predict-many after fit-once
// factors exactly once" is asserted against this counter.
var cntFactorRuns = obs.GetCounter("core.factor.runs")

// maxNuggetEscalations bounds the diagonal-regularization ladder: after this
// many ×NuggetEscalation steps a breakdown is reported, not papered over.
const maxNuggetEscalations = 3

// retryableError is the RetryPolicy filter shared by both backends: a
// non-positive-definite pivot is a property of θ, not of the execution, so
// replaying the task cannot help — everything else (injected panics, real
// transients) is worth a restore-and-retry.
func retryableError(err error) bool {
	return !errors.Is(err, la.ErrNotPositiveDefinite)
}

// evaluator caches the per-problem state one likelihood evaluation needs so
// the optimizer's dozens of evaluations inside Fit / ProfiledFit reuse it
// instead of reallocating per iteration:
//
//   - FullBlock: the dense n×n Σ buffer;
//   - FullTile: the tile descriptors AND the combined dcmg+Cholesky task
//     graph — the DAG's shape depends only on n and TileSize, which are
//     fixed per problem, so only the GenSpec's kernel/nugget change between
//     executions (the graph-reuse contract documented in tile.GenSpec);
//   - TLR: the tile shell (diagonal buffers + compressed-tile slots), the
//     handle layout, the generation scratch pool, and the fused
//     generate+compress+Cholesky DAG — only ranks and tile contents are
//     rebuilt per θ (the graph-reuse contract documented in tlr.GenSpec);
//   - all modes: the right-hand-side scratch vector.
//
// An evaluator is NOT safe for concurrent use; the factor returned by one
// evaluation aliases cached buffers and is invalidated by the next one.
type evaluator struct {
	p   *Problem
	cfg Config
	inj *chaos.Injector // nil unless Config.Chaos is set

	// Graceful-degradation bookkeeping (read by Session.Metrics and copied
	// into LikResult diagnostics).
	lastNugget        float64
	lastRetries       int
	factorFails       int64
	nuggetEscalations int64
	lastFailure       string

	sigma *la.Mat // FullBlock Σ / L buffer

	m    *tile.SymMatrix // FullTile tiles
	spec *tile.GenSpec   // mutable kernel/nugget slot read by dcmg tasks
	g    *runtime.Graph  // combined generation + factorization DAG

	tm    *tlr.Matrix    // TLR tile shell
	tspec *tlr.GenSpec   // mutable kernel/nugget slot read by the gen tasks
	tg    *runtime.Graph // fused generate+compress + factorization DAG

	y []float64 // rhs scratch

	// gen counts factorization executions. Factors returned by factorize
	// alias the cached buffers above, so a factor is valid only while gen is
	// unchanged — Session's predict cache compares generations before
	// reusing one across calls.
	gen uint64

	// trace switches graph executions to ExecuteTraced; lastTrace keeps the
	// most recent execution's trace for Session.Metrics. FullBlock has no
	// task graph, so lastTrace stays nil in that mode.
	trace     bool
	lastTrace *runtime.Trace
}

// run executes a cached task graph, recording a trace when enabled. The
// options carry the session's retry policy and (when chaos is armed) the
// fault-injection hook.
func (e *evaluator) run(g *runtime.Graph) error {
	opt := runtime.ExecOptions{
		Workers: e.cfg.Workers,
		Retry: runtime.RetryPolicy{
			Attempts:  e.cfg.MaxRetries,
			Retryable: retryableError,
		},
	}
	if e.inj != nil {
		opt.Inject = e.inj.TaskHook
	}
	if !e.trace {
		return g.Execute(opt)
	}
	tr, err := g.ExecuteTraced(opt)
	e.lastTrace = tr
	return err
}

func newEvaluator(p *Problem, cfg Config, inj *chaos.Injector) *evaluator {
	return &evaluator{p: p, cfg: cfg.withDefaults(), inj: inj}
}

// factorize assembles and factors Σ, escalating the nugget geometrically on
// Cholesky breakdowns: a non-positive-definite pivot retries with the
// diagonal regularization multiplied by Config.NuggetEscalation, up to
// maxNuggetEscalations times, before the failure is surfaced. The nugget
// actually used and the retry count land in the evaluator's diagnostics.
func (e *evaluator) factorize(k *cov.Kernel, nugget float64) (Factor, error) {
	cur := nugget
	for attempt := 0; ; attempt++ {
		f, err := e.factorizeOnce(k, cur)
		if err == nil {
			e.lastNugget, e.lastRetries = cur, attempt
			return f, nil
		}
		cntFactorFail.Inc()
		e.factorFails++
		e.lastFailure = err.Error()
		if !errors.Is(err, la.ErrNotPositiveDefinite) || attempt >= maxNuggetEscalations {
			return nil, err
		}
		cur *= e.cfg.NuggetEscalation
		cntNuggetEscalated.Inc()
		e.nuggetEscalations++
	}
}

// factorizeOnce assembles and factors Σ for the given kernel and nugget,
// reusing cached state where the mode allows it.
func (e *evaluator) factorizeOnce(k *cov.Kernel, nugget float64) (Factor, error) {
	e.gen++
	cntFactorRuns.Inc()
	n := e.p.N()
	switch e.cfg.Mode {
	case FullBlock:
		if e.sigma == nil {
			e.sigma = la.NewMat(n, n)
			cntCacheSigmaMiss.Inc()
		} else {
			cntCacheSigmaHit.Inc()
		}
		k.MatrixParallel(e.sigma, e.p.Points, e.p.Metric, e.cfg.Workers)
		cov.AddNugget(e.sigma, nugget)
		if err := la.Potrf(e.sigma); err != nil {
			return nil, fmt.Errorf("core: %s factorization: %w", e.cfg.Mode, err)
		}
		return denseFactor{l: e.sigma}, nil
	case FullTile:
		if e.g == nil {
			e.m = tile.NewSym(n, e.cfg.TileSize)
			e.spec = &tile.GenSpec{Pts: e.p.Points, Metric: e.p.Metric}
			e.g, _ = tile.BuildGenCholeskyGraph(e.m, e.spec, true)
			cntCacheTileMiss.Inc()
		} else {
			cntCacheTileHit.Inc()
		}
		e.spec.K = k
		e.spec.Nugget = nugget
		if err := e.run(e.g); err != nil {
			return nil, fmt.Errorf("core: %s factorization: %w", e.cfg.Mode, err)
		}
		return tileFactor{m: e.m, workers: e.cfg.Workers}, nil
	case TLR:
		if e.tg == nil {
			comp, err := tlr.CompressorByName(e.cfg.CompressorName)
			if err != nil {
				return nil, err
			}
			e.tm = tlr.NewMatrix(n, e.cfg.TileSize, e.cfg.Accuracy)
			e.tspec = &tlr.GenSpec{Pts: e.p.Points, Metric: e.p.Metric, Comp: comp}
			if e.inj != nil {
				e.tspec.ForceMiss = e.inj.CompressMiss
			}
			e.tg = tlr.BuildGenCholeskyGraph(e.tm, e.tspec, true)
			cntCacheTLRMiss.Inc()
		} else {
			cntCacheTLRHit.Inc()
		}
		e.tspec.K = k
		e.tspec.Nugget = nugget
		if err := e.run(e.tg); err != nil {
			return nil, fmt.Errorf("core: %s factorization: %w", e.cfg.Mode, err)
		}
		return tlrFactor{m: e.tm}, nil
	default:
		return factorizeKernel(e.p, k, e.cfg, nugget)
	}
}

// halfSolved factors Σ and returns the factor plus L⁻¹Z in the cached
// scratch vector.
func (e *evaluator) halfSolved(k *cov.Kernel, nugget float64) (Factor, []float64, error) {
	f, err := e.factorize(k, nugget)
	if err != nil {
		return nil, nil, err
	}
	if e.y == nil {
		e.y = make([]float64, e.p.N())
	}
	copy(e.y, e.p.Z)
	f.HalfSolve(e.y)
	return f, e.y, nil
}

// logLikelihood evaluates ℓ(θ) (paper eq. 1) reusing cached buffers.
func (e *evaluator) logLikelihood(theta cov.Params) (LikResult, error) {
	if err := theta.Validate(); err != nil {
		return LikResult{}, err
	}
	f, y, err := e.halfSolved(cov.NewKernel(theta), e.cfg.nugget(theta.Variance))
	if err != nil {
		return LikResult{}, err
	}
	var res LikResult
	res.Bytes = f.Bytes()
	res.MaxRank, res.MeanRank = f.RankStats()
	res.NuggetUsed, res.NuggetRetries = e.lastNugget, e.lastRetries
	res.LogDet = f.LogDet()
	res.QuadForm = la.Dot(y, y)
	n := float64(e.p.N())
	res.Value = -0.5*n*math.Log(2*math.Pi) - 0.5*res.LogDet - 0.5*res.QuadForm
	return res, nil
}

// profiledLogLikelihood evaluates the concentrated likelihood ℓ_p(θ₂, θ₃)
// (see ProfiledLogLikelihood) reusing cached buffers.
func (e *evaluator) profiledLogLikelihood(rangeP, smoothness float64) (logL, varianceHat float64, err error) {
	theta := cov.Params{Variance: 1, Range: rangeP, Smoothness: smoothness}
	if err := theta.Validate(); err != nil {
		return 0, 0, err
	}
	f, y, err := e.halfSolved(cov.NewKernel(theta), e.cfg.nugget(1))
	if err != nil {
		return 0, 0, err
	}
	n := float64(e.p.N())
	varianceHat = la.Dot(y, y) / n
	if varianceHat <= 0 {
		return 0, 0, fmt.Errorf("core: degenerate profiled variance %g", varianceHat)
	}
	logL = -0.5*n*(math.Log(2*math.Pi)+1+math.Log(varianceHat)) - 0.5*f.LogDet()
	return logL, varianceHat, nil
}
