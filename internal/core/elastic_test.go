package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/chaos"
)

// TestElasticConfigValidation: the ElasticRecovery/MaxRankFailures knobs are
// validated against the resolved rank count and each other.
func TestElasticConfigValidation(t *testing.T) {
	base := Config{Mode: TLR, TileSize: 32, Accuracy: 1e-7}
	for _, tc := range []struct {
		name string
		mut  func(c *Config)
		want string
	}{
		{"shared-memory", func(c *Config) { c.ElasticRecovery = true }, "Ranks > 1"},
		{"negative", func(c *Config) { c.Ranks = 4; c.ElasticRecovery = true; c.MaxRankFailures = -1 }, "MaxRankFailures"},
		{"without-elastic", func(c *Config) { c.Ranks = 4; c.MaxRankFailures = 1 }, "without ElasticRecovery"},
		{"no-survivor", func(c *Config) { c.Ranks = 4; c.ElasticRecovery = true; c.MaxRankFailures = 4 }, "no survivor"},
	} {
		cfg := base
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	ok := base
	ok.Ranks = 6
	ok.ElasticRecovery = true
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid elastic config rejected: %v", err)
	}
	if got := ok.normalized().MaxRankFailures; got != 1 {
		t.Fatalf("normalized MaxRankFailures = %d, want default 1", got)
	}
}

// elasticCfg is the 6-rank distributed configuration the recovery tests
// drill: one injected kill at the start of Cholesky panel 3 of the victim.
func elasticCfg(victim, panel int) Config {
	return Config{
		Mode: TLR, TileSize: 32, Accuracy: 1e-7, Grid: [2]int{2, 3},
		ElasticRecovery: true,
		Chaos:           &chaos.FaultPlan{KillRank: victim + 1, KillAtPanel: panel + 1},
	}
}

// TestElasticRecoveryLogLikBitwise: a 6-rank likelihood evaluation that
// loses one rank mid-Cholesky completes on the 5 survivors with a value
// bitwise-identical to the unfaulted run, and the session reports the
// absorbed death. Small enough to stay in the -race suite.
func TestElasticRecoveryLogLikBitwise(t *testing.T) {
	p := smallProblem(t, 240, 13)
	th := theta()
	clean := Config{Mode: TLR, TileSize: 32, Accuracy: 1e-7, Grid: [2]int{2, 3}}
	want, err := LogLikelihood(p, th, clean)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		victim int
		panel  int
	}{
		{"mid-panel", 4, 3},
		{"root-death", 0, 3},
		{"run-entry", 2, -1}, // KillAtPanel=0: the legacy run-entry kill site
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSession(p, elasticCfg(tc.victim, tc.panel))
			if err != nil {
				t.Fatal(err)
			}
			got, err := s.LogLikelihood(th)
			if err != nil {
				t.Fatalf("faulted evaluation did not recover: %v", err)
			}
			if got.Value != want.Value || got.LogDet != want.LogDet || got.QuadForm != want.QuadForm {
				t.Errorf("recovered loglik (%.17g, %.17g, %.17g) != unfaulted (%.17g, %.17g, %.17g)",
					got.Value, got.LogDet, got.QuadForm, want.Value, want.LogDet, want.QuadForm)
			}
			if m := s.Metrics(); m.RanksLost != 1 {
				t.Errorf("Metrics.RanksLost = %d, want 1", m.RanksLost)
			}
			// the shrunken world must keep serving: a second evaluation on
			// the survivors still matches bitwise
			again, err := s.LogLikelihood(th)
			if err != nil {
				t.Fatalf("post-recovery evaluation failed: %v", err)
			}
			if again.Value != want.Value {
				t.Errorf("post-recovery loglik %.17g != unfaulted %.17g", again.Value, want.Value)
			}
		})
	}
}

// TestElasticRecoveryDisabledStillFails: without ElasticRecovery the same
// injected kill is fatal — the session reports the injected fault instead of
// silently shrinking.
func TestElasticRecoveryDisabledStillFails(t *testing.T) {
	p := smallProblem(t, 240, 13)
	cfg := elasticCfg(4, 3)
	cfg.ElasticRecovery = false
	cfg.MaxRankFailures = 0
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LogLikelihood(theta()); err == nil {
		t.Fatal("kill without ElasticRecovery must fail the evaluation")
	} else if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("error %v does not wrap the injected fault", err)
	}
}

// TestElasticRecoveryFailureBudget: a second death past MaxRankFailures
// (default 1) is fatal even with recovery on, and the absorbed-death count
// stays at the budget.
func TestElasticRecoveryFailureBudget(t *testing.T) {
	p := smallProblem(t, 240, 13)
	cfg := elasticCfg(4, 3)
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.LogLikelihood(theta()); err != nil {
		t.Fatalf("first death must be absorbed: %v", err)
	}
	db := s.Backend().(*distBackend)
	var fired atomic.Bool
	db.shards[1].PanelHook = func(rank, panel int) {
		if rank == 1 && panel == 2 && !fired.Swap(true) {
			panic(errors.New("second injected death"))
		}
	}
	if _, err := s.LogLikelihood(theta()); err == nil {
		t.Fatal("second death past MaxRankFailures must fail the evaluation")
	}
	if got := s.Backend().Diagnostics().RanksLost; got != 1 {
		t.Fatalf("RanksLost = %d, want the budget 1", got)
	}
}

// TestElasticFitAndPredictMatchUnfaulted is the tentpole acceptance test: a
// 6-rank Fit that loses a rank mid-Cholesky completes on 5 survivors with
// θ̂, log-likelihood, and predictions bitwise-identical to the unfaulted
// 6-rank fit, without restarting the process.
func TestElasticFitAndPredictMatchUnfaulted(t *testing.T) {
	if raceEnabled {
		t.Skip("two full Nelder-Mead runs; TestElasticRecoveryLogLikBitwise keeps race coverage")
	}
	syn, err := GenerateSynthetic(400, 40, theta(), 17)
	if err != nil {
		t.Fatal(err)
	}
	p := syn.Train
	opts := FitOptions{FixSmoothness: true, Start: theta(), MaxEvals: 60}
	clean := Config{Mode: TLR, TileSize: 64, Accuracy: 1e-7, Grid: [2]int{2, 3}}
	want, err := Fit(p, clean, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantPred, err := Predict(p, syn.TestPoints, want.Theta, clean)
	if err != nil {
		t.Fatal(err)
	}

	cfg := elasticCfg(3, 3)
	cfg.TileSize = 64
	got, err := Fit(p, cfg, opts)
	if err != nil {
		t.Fatalf("faulted fit did not recover: %v", err)
	}
	if got.Theta != want.Theta {
		t.Errorf("recovered θ̂ %+v != unfaulted %+v", got.Theta, want.Theta)
	}
	if got.LogL != want.LogL {
		t.Errorf("recovered logL %.17g != unfaulted %.17g", got.LogL, want.LogL)
	}
	if got.Evals != want.Evals {
		t.Errorf("recovered fit took %d evals, unfaulted %d", got.Evals, want.Evals)
	}
	gotPred, err := Predict(p, syn.TestPoints, got.Theta, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range gotPred {
		if gotPred[i] != wantPred[i] {
			t.Fatalf("prediction %d: recovered %.17g != unfaulted %.17g", i, gotPred[i], wantPred[i])
		}
	}
}
