// Package core implements the paper's contribution: Gaussian maximum
// likelihood estimation and prediction for large spatial datasets in four
// computation modes, each a pluggable Backend registration —
//
//   - FullBlock: one dense matrix, LAPACK-style blocked Cholesky (the MKL
//     baseline of Fig. 3);
//   - FullTile: tile algorithms over the task runtime (the Chameleon path);
//   - TLR: tile low-rank compression at a user accuracy (the HiCMA path);
//   - HODLR: hierarchically off-diagonal low-rank — the recursive format
//     the paper's §II positions TLR against, factored by a task-parallel
//     hierarchical Cholesky (internal/hodlr).
//
// The log-likelihood (paper eq. 1) is
//
//	ℓ(θ) = −n/2·log 2π − 1/2·log|Σ(θ)| − 1/2·Zᵀ Σ(θ)⁻¹ Z,
//
// evaluated via a Cholesky factorization: log|Σ| = 2Σ log L_ii and
// ZᵀΣ⁻¹Z = ‖L⁻¹Z‖². Prediction (paper eq. 4) solves Z₁ = Σ₁₂ Σ₂₂⁻¹ Z₂.
package core

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/tlr"
)

// Mode selects the computation technique. Each mode is a Backend
// registration (see RegisterBackend); the constants below are the built-in
// registrations.
type Mode int

// Computation modes (paper §VIII terminology, plus the hierarchical HODLR
// format the paper's §II positions TLR against).
const (
	FullBlock Mode = iota
	FullTile
	TLR
	HODLR
)

func (m Mode) String() string {
	if spec, ok := lookupBackend(m); ok {
		return spec.Name
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config selects and tunes a computation mode. The zero value is valid and
// means "dense full-block, library defaults"; DefaultConfig documents every
// default in one place. Invalid settings (negative sizes, unknown
// compressor, inconsistent Ranks/Grid) are rejected by Validate, which every
// public entry point calls — they are never silently coerced.
type Config struct {
	Mode Mode
	// TileSize is the tile edge nb for FullTile and TLR, and the dense leaf
	// size of the HODLR tree (0 = default 128).
	TileSize int
	// Accuracy is the low-rank compression threshold for TLR and HODLR
	// (0 = default 1e-9); ignored by the dense modes.
	Accuracy float64
	// CompressorName selects the low-rank compression backend ("svd"
	// default, "rsvd", "aca") for TLR and HODLR.
	CompressorName string
	// Workers is the shared-memory runtime worker count (0 = default 1).
	Workers int
	// Nugget is added to the covariance diagonal for numerical stability
	// (0 = default 1e-9·θ₁).
	Nugget float64
	// Ranks selects the distributed-memory backend when > 1: the TLR matrix
	// is sharded 2D block-cyclically over that many ranks and factored with
	// the distributed TLR Cholesky (internal/mpi). 0 or 1 means the
	// shared-memory path. Requires Mode == TLR.
	Ranks int
	// Grid optionally fixes the process-grid shape {P, Q} of the distributed
	// backend; P·Q must equal Ranks. Leave zero for the most square grid.
	Grid [2]int
	// MaxRetries is the number of times a failed task execution is replayed
	// after its inputs are restored from snapshots (0 = no retry). Failures
	// that are deterministic — a non-positive-definite pivot — are never
	// retried; those go through the nugget-escalation path instead.
	MaxRetries int
	// NuggetEscalation is the factor the nugget is multiplied by after a
	// Cholesky breakdown before the factorization is retried (0 = default 10;
	// values in (0, 1] are rejected — escalation must grow the nugget).
	NuggetEscalation float64
	// RecvTimeout bounds how long a distributed rank blocks waiting for one
	// message (0 = wait forever). With fault injection enabled a timeout
	// turns a lost message into a diagnosed error instead of a hang.
	RecvTimeout time.Duration
	// Ordering selects the spatial ordering of the problem's locations —
	// the permutation applied before tiling, which controls off-diagonal
	// tile ranks and with them TLR compression flops, memory, and the
	// distributed backend's wire bytes. "" (the zero value) keeps whatever
	// ordering the Problem was built with (NewProblem defaults to Morton);
	// "none" forces caller order, "morton" the Z-order curve, "hilbert" the
	// Hilbert curve, and "kdblock" KD-tree recursive bisection into
	// TileSize-aligned blocks. Sessions never mutate the caller's Problem: a
	// differing Ordering reorders a session-private copy, and Problem.Perm
	// maps results back to caller order.
	Ordering string
	// Chaos, when non-nil, injects the plan's deterministic faults into the
	// session's executions — task panics/stragglers, message drops/delays,
	// forced compression misses, rank kills. Nil (the default) injects
	// nothing and pays a single nil check per hook site.
	Chaos *chaos.FaultPlan
	// MemBudget, when > 0, bounds the resident tile bytes of the TLR
	// backend: tiles beyond the budget are evicted to a disk spill file and
	// reloaded on demand (out-of-core execution). Results are bitwise
	// identical to the in-memory run. The budget is soft — the in-flight
	// working set (tiles pinned by executing tasks and solves) is never
	// evicted — so it must be at least tlr.MinMemBudget(TileSize, Workers).
	// 0 (the default) keeps every tile resident. Requires Mode == TLR on
	// the shared-memory path (Ranks ≤ 1).
	MemBudget int64
	// SpillDir is the directory the out-of-core spill file is created in
	// ("" = the OS temp dir). The file is unlinked at creation, so it can
	// never outlive the process, crash or no crash. Ignored unless
	// MemBudget > 0.
	SpillDir string
	// ElasticRecovery, when true, lets the distributed backend survive rank
	// failures: when a rank dies (panic, injected kill, or a receive timeout
	// diagnosing a silent peer) the survivors agree on the failure, shrink
	// the world, deterministically re-materialize the dead rank's tiles, and
	// resume the factorization and the enclosing fit without restarting the
	// process. Results are bitwise-identical to an unfaulted run. Requires
	// the distributed backend (Ranks > 1).
	ElasticRecovery bool
	// MaxRankFailures caps how many rank deaths one Session absorbs before
	// giving up and returning the failure (0 = default 1 when
	// ElasticRecovery is set). At least one rank must survive. Ignored
	// unless ElasticRecovery is set.
	MaxRankFailures int
}

// DefaultConfig returns the library defaults spelled out: dense full-block
// mode, 128-point tiles, 1e-9 TLR accuracy with the deterministic SVD
// compressor, one worker, data-scaled nugget (1e-9·θ₁, encoded as Nugget=0),
// Morton spatial ordering, shared-memory execution. A zero Config behaves
// identically (its empty Ordering keeps the Problem's own ordering, which
// NewProblem also defaults to Morton); this function exists so the defaults
// are documented and greppable in one place.
func DefaultConfig() Config {
	return Config{
		Mode:           FullBlock,
		TileSize:       128,
		Accuracy:       1e-9,
		CompressorName: "svd",
		Workers:        1,
		Nugget:         0,
		Ranks:          1,
		Ordering:       geom.OrderMorton,

		MaxRetries:       0,
		NuggetEscalation: 10,
	}
}

// Validate checks the configuration and returns a descriptive error instead
// of coercing bad values. Zero fields mean "use the default" and are always
// valid; negative or inconsistent fields are not.
func (c Config) Validate() error {
	spec, known := lookupBackend(c.Mode)
	if !known {
		return fmt.Errorf("core: unknown mode %v (have %s)", c.Mode, strings.Join(ModeNames(), ", "))
	}
	if c.TileSize < 0 {
		return fmt.Errorf("core: negative TileSize %d", c.TileSize)
	}
	if c.Accuracy < 0 {
		return fmt.Errorf("core: negative Accuracy %g", c.Accuracy)
	}
	if c.Workers < 0 {
		return fmt.Errorf("core: negative Workers %d", c.Workers)
	}
	if c.Nugget < 0 {
		return fmt.Errorf("core: negative Nugget %g", c.Nugget)
	}
	if _, err := tlr.CompressorByName(c.CompressorName); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Ordering != "" {
		if _, err := geom.NewOrdering(c.Ordering, c.TileSize); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	if c.Ranks < 0 {
		return fmt.Errorf("core: negative Ranks %d", c.Ranks)
	}
	if c.Grid[0] < 0 || c.Grid[1] < 0 {
		return fmt.Errorf("core: negative Grid dimension %v", c.Grid)
	}
	if (c.Grid[0] == 0) != (c.Grid[1] == 0) {
		return fmt.Errorf("core: Grid %v must set both dimensions or neither", c.Grid)
	}
	if c.Grid[0] > 0 && c.Ranks > 0 && c.Grid[0]*c.Grid[1] != c.Ranks {
		return fmt.Errorf("core: Grid %v does not tile Ranks=%d", c.Grid, c.Ranks)
	}
	ranks := c.Ranks
	if ranks == 0 && c.Grid[0] > 0 {
		ranks = c.Grid[0] * c.Grid[1]
	}
	if ranks > 1 && spec.NewDist == nil {
		return fmt.Errorf("core: distributed execution (Ranks=%d) requires Mode=%s, got %v",
			ranks, strings.Join(distModeNames(), "|"), c.Mode)
	}
	if c.MemBudget < 0 {
		return fmt.Errorf("core: negative MemBudget %d", c.MemBudget)
	}
	if c.MemBudget > 0 {
		if c.Mode != TLR {
			return fmt.Errorf("core: MemBudget requires Mode=TLR, got %v", c.Mode)
		}
		if ranks > 1 {
			return fmt.Errorf("core: MemBudget bounds the shared-memory tile store; unsupported with Ranks=%d", ranks)
		}
		nb, w := c.TileSize, c.Workers
		if nb == 0 {
			nb = 128
		}
		if w == 0 {
			w = 1
		}
		if floor := tlr.MinMemBudget(nb, w); c.MemBudget < floor {
			return fmt.Errorf("core: MemBudget %d below the in-flight working set %d for TileSize=%d, Workers=%d (pinned tiles are never evicted)",
				c.MemBudget, floor, nb, w)
		}
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("core: negative MaxRetries %d", c.MaxRetries)
	}
	if c.NuggetEscalation < 0 {
		return fmt.Errorf("core: negative NuggetEscalation %g", c.NuggetEscalation)
	}
	if c.NuggetEscalation > 0 && c.NuggetEscalation <= 1 {
		return fmt.Errorf("core: NuggetEscalation %g must exceed 1", c.NuggetEscalation)
	}
	if c.RecvTimeout < 0 {
		return fmt.Errorf("core: negative RecvTimeout %v", c.RecvTimeout)
	}
	if c.MaxRankFailures < 0 {
		return fmt.Errorf("core: negative MaxRankFailures %d", c.MaxRankFailures)
	}
	if c.ElasticRecovery && ranks <= 1 {
		return fmt.Errorf("core: ElasticRecovery requires the distributed backend (Ranks > 1), got Ranks=%d", ranks)
	}
	if c.MaxRankFailures > 0 && !c.ElasticRecovery {
		return fmt.Errorf("core: MaxRankFailures=%d without ElasticRecovery", c.MaxRankFailures)
	}
	if c.ElasticRecovery && ranks > 1 && c.MaxRankFailures >= ranks {
		return fmt.Errorf("core: MaxRankFailures=%d leaves no survivor of %d ranks", c.MaxRankFailures, ranks)
	}
	if c.Chaos != nil {
		if err := c.Chaos.Validate(); err != nil {
			return fmt.Errorf("core: Chaos: %w", err)
		}
	}
	return nil
}

// normalized fills the zero fields with the DefaultConfig values and
// resolves the Ranks/Grid pair (Grid implies Ranks; Ranks > 1 without a Grid
// gets the most square factorization). Callers must Validate first.
func (c Config) normalized() Config {
	if c.TileSize == 0 {
		c.TileSize = 128
	}
	if c.Accuracy == 0 {
		c.Accuracy = 1e-9
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.CompressorName == "" {
		c.CompressorName = "svd"
	}
	if c.Ranks == 0 {
		if c.Grid[0] > 0 {
			c.Ranks = c.Grid[0] * c.Grid[1]
		} else {
			c.Ranks = 1
		}
	}
	if c.Grid[0] == 0 {
		p := 1
		for f := 1; f*f <= c.Ranks; f++ {
			if c.Ranks%f == 0 {
				p = f
			}
		}
		c.Grid = [2]int{p, c.Ranks / p}
	}
	if c.NuggetEscalation == 0 {
		c.NuggetEscalation = 10
	}
	if c.ElasticRecovery && c.MaxRankFailures == 0 {
		c.MaxRankFailures = 1
	}
	return c
}

// withDefaults is the legacy normalization used by internal call sites that
// have already validated (or constructed) their Config.
func (c Config) withDefaults() Config { return c.normalized() }

func (c Config) nugget(variance float64) float64 {
	if c.Nugget > 0 {
		return c.Nugget
	}
	return 1e-9 * variance
}

// Problem is a spatial dataset: locations, one measurement per location, and
// the distance metric the covariance operates under. Points and Z are stored
// in the spatial ordering applied at construction; Perm records how to get
// back to the caller's order, so nothing the caller handed in is ever lost.
type Problem struct {
	Points []geom.Point
	Z      []float64
	Metric geom.Metric
	// Perm maps stored order to caller order: Points[i] is the caller's
	// pts[Perm[i]]. A nil Perm means identity (hand-constructed Problems).
	Perm []int
	// Ordering names the scheme that produced Perm ("morton", "hilbert",
	// ...); empty for hand-constructed Problems.
	Ordering string
}

// NewProblem bundles and validates a dataset, reordering locations and
// measurements along the Morton curve (the default ordering TLR compression
// needs; it is harmless for the dense modes). The applied permutation is kept
// on Problem.Perm; use NewProblemOrdered to choose a different scheme, or
// Config.Ordering to override per session.
func NewProblem(pts []geom.Point, z []float64, metric geom.Metric) (*Problem, error) {
	return NewProblemOrdered(pts, z, metric, geom.Morton)
}

// NewProblemOrdered bundles and validates a dataset under an explicit spatial
// ordering (geom.None, geom.Morton, geom.Hilbert, geom.KDBlocks(nb), or any
// custom geom.Ordering). The permutation is recorded on Problem.Perm.
func NewProblemOrdered(pts []geom.Point, z []float64, metric geom.Metric, ord geom.Ordering) (*Problem, error) {
	if len(pts) == 0 {
		return nil, errors.New("core: empty dataset")
	}
	if len(pts) != len(z) {
		return nil, fmt.Errorf("core: %d locations but %d measurements", len(pts), len(z))
	}
	if ord == nil {
		ord = geom.None
	}
	perm := ord.Permutation(pts)
	return &Problem{
		Points:   geom.ApplyPerm(pts, perm),
		Z:        geom.ApplyPermFloat(z, perm),
		Metric:   metric,
		Perm:     perm,
		Ordering: ord.Name(),
	}, nil
}

// N returns the number of observations.
func (p *Problem) N() int { return len(p.Points) }

// InversePerm returns the permutation mapping caller order to stored order
// (the inverse of Problem.Perm; identity when Perm is nil).
func (p *Problem) InversePerm() []int {
	if p.Perm == nil {
		return geom.IdentityPerm(p.N())
	}
	return geom.InversePerm(p.Perm)
}

// RestoreOrder maps a per-observation vector aligned with the stored order
// (p.Z, residuals, kriging weights) back to the caller's original order:
// out[Perm[i]] = v[i].
func (p *Problem) RestoreOrder(v []float64) []float64 {
	if len(v) != p.N() {
		panic(fmt.Sprintf("core: RestoreOrder length %d, problem has %d observations", len(v), p.N()))
	}
	return geom.ApplyPermFloat(v, p.InversePerm())
}

// RestorePoints is RestoreOrder for location slices.
func (p *Problem) RestorePoints(pts []geom.Point) []geom.Point {
	if len(pts) != p.N() {
		panic(fmt.Sprintf("core: RestorePoints length %d, problem has %d observations", len(pts), p.N()))
	}
	return geom.ApplyPerm(pts, p.InversePerm())
}

// Reordered returns a copy of p under ord. The permutations compose: the
// copy's Perm still maps straight back to the original caller order, however
// many reorderings happened in between. The receiver is not modified.
func (p *Problem) Reordered(ord geom.Ordering) *Problem {
	inv := p.InversePerm()
	// Recover the caller-order dataset, then apply the new scheme to it so
	// Perm addresses caller indices directly.
	origPts := geom.ApplyPerm(p.Points, inv)
	origZ := geom.ApplyPermFloat(p.Z, inv)
	perm := ord.Permutation(origPts)
	return &Problem{
		Points:   geom.ApplyPerm(origPts, perm),
		Z:        geom.ApplyPermFloat(origZ, perm),
		Metric:   p.Metric,
		Perm:     perm,
		Ordering: ord.Name(),
	}
}

// LikResult carries one likelihood evaluation with its diagnostics.
type LikResult struct {
	Value    float64 // ℓ(θ)
	LogDet   float64
	QuadForm float64 // Zᵀ Σ⁻¹ Z
	// Bytes is the covariance storage the evaluation needed.
	Bytes int64
	// MaxRank/MeanRank describe the TLR compression (zero for dense modes).
	MaxRank  int
	MeanRank float64
	// NuggetUsed is the diagonal nugget the successful factorization ran
	// with; NuggetRetries counts how many escalations it took to get there
	// (0 = the configured nugget worked first try).
	NuggetUsed    float64
	NuggetRetries int
}

// LogLikelihood evaluates ℓ(θ) for the problem under cfg — the convenience
// path for one-off evaluations. Callers that evaluate many θ on one problem
// should hold a Session instead, which owns the cached buffers and task
// graph explicitly and reuses them across calls.
func LogLikelihood(p *Problem, theta cov.Params, cfg Config) (LikResult, error) {
	s, err := NewSession(p, cfg)
	if err != nil {
		return LikResult{}, err
	}
	return s.LogLikelihood(theta)
}

// FitOptions controls the MLE search.
type FitOptions struct {
	// Start is the initial θ; zero fields are replaced by data-driven
	// defaults (empirical variance, 0.1 range, 0.5 smoothness).
	Start cov.Params
	// Lower/Upper bound the search box; zero fields get broad defaults.
	Lower, Upper cov.Params
	// MaxEvals caps likelihood evaluations (default 300).
	MaxEvals int
	// TolX is the optimizer's parameter tolerance (default 1e-4).
	TolX float64
	// FixSmoothness pins θ₃ to Start.Smoothness instead of estimating it —
	// common practice when the smoothness is known a priori.
	FixSmoothness bool
	// Profiled switches Fit to the concentrated likelihood: the variance θ₁
	// is profiled out analytically (θ̂₁ = ZᵀR⁻¹Z/n) and the optimizer
	// searches only (θ₂, θ₃) — typically far fewer likelihood evaluations
	// for the same accuracy. Works uniformly across all backends.
	Profiled bool
	// Checkpoint, when non-empty, makes the fit restartable: the bit-exact
	// (x, ℓ) evaluation log is written atomically to this path every
	// CheckpointEvery evaluations, stamped with a digest of the dataset and
	// the result-affecting options. A Fit started against an existing,
	// matching checkpoint replays the recorded evaluations instead of
	// recomputing them — the optimizer is deterministic, so a run killed
	// mid-fit resumes to bitwise-identical results. A digest mismatch
	// (different data, config, or options) is an error, never a silent
	// restart. MaxEvals is excluded from the digest so a resumed run may
	// extend a truncated one.
	Checkpoint string
	// CheckpointEvery is the checkpoint flush cadence in likelihood
	// evaluations (default 10). Ignored when Checkpoint is empty.
	CheckpointEvery int
}

// FitResult is the outcome of a maximum likelihood fit.
type FitResult struct {
	Theta cov.Params
	LogL  float64
	Evals int
	// Converged reports the optimizer's convergence flag.
	Converged bool
}

func (o FitOptions) withDefaults(p *Problem) FitOptions {
	if o.MaxEvals <= 0 {
		o.MaxEvals = 300
	}
	if o.TolX <= 0 {
		o.TolX = 1e-4
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 10
	}
	if o.Start.Variance <= 0 {
		var s, s2 float64
		for _, v := range p.Z {
			s += v
			s2 += v * v
		}
		n := float64(p.N())
		o.Start.Variance = math.Max(s2/n-(s/n)*(s/n), 1e-3)
	}
	if o.Start.Range <= 0 {
		o.Start.Range = 0.1
	}
	if o.Start.Smoothness <= 0 {
		o.Start.Smoothness = 0.5
	}
	if o.Lower.Variance <= 0 {
		o.Lower.Variance = 1e-3
	}
	if o.Lower.Range <= 0 {
		o.Lower.Range = 1e-3
	}
	if o.Lower.Smoothness <= 0 {
		o.Lower.Smoothness = 0.1
	}
	if o.Upper.Variance <= 0 {
		o.Upper.Variance = 100 * o.Start.Variance
	}
	if o.Upper.Range <= 0 {
		o.Upper.Range = 10
	}
	if o.Upper.Smoothness <= 0 {
		o.Upper.Smoothness = 3
	}
	return o
}

// Fit estimates θ̂ by maximizing the log-likelihood with the derivative-free
// optimizer — the convenience path wrapping Session.Fit on a fresh Session.
// The search runs over log-transformed variance and range (their scales span
// decades) and linear smoothness.
func Fit(p *Problem, cfg Config, opts FitOptions) (FitResult, error) {
	s, err := NewSession(p, cfg)
	if err != nil {
		return FitResult{}, err
	}
	return s.Fit(opts)
}

// Predict imputes measurements at newPts from the fitted model (paper eq. 4):
// Ẑ₁ = Σ₁₂ Σ₂₂⁻¹ Z₂, with Σ₂₂ factored in the configured mode and the
// (small) cross-covariance Σ₁₂ applied densely row by row. Convenience path
// wrapping Session.Predict on a fresh Session.
func Predict(p *Problem, newPts []geom.Point, theta cov.Params, cfg Config) ([]float64, error) {
	s, err := NewSession(p, cfg)
	if err != nil {
		return nil, err
	}
	return s.Predict(newPts, theta)
}

// MSE returns the mean squared error between predictions and truth
// (paper eq. 7).
func MSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("core: MSE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return s / float64(len(pred))
}
