// Package core implements the paper's contribution: Gaussian maximum
// likelihood estimation and prediction for large spatial datasets in three
// computation modes —
//
//   - FullBlock: one dense matrix, LAPACK-style blocked Cholesky (the MKL
//     baseline of Fig. 3);
//   - FullTile: tile algorithms over the task runtime (the Chameleon path);
//   - TLR: tile low-rank compression at a user accuracy (the HiCMA path).
//
// The log-likelihood (paper eq. 1) is
//
//	ℓ(θ) = −n/2·log 2π − 1/2·log|Σ(θ)| − 1/2·Zᵀ Σ(θ)⁻¹ Z,
//
// evaluated via a Cholesky factorization: log|Σ| = 2Σ log L_ii and
// ZᵀΣ⁻¹Z = ‖L⁻¹Z‖². Prediction (paper eq. 4) solves Z₁ = Σ₁₂ Σ₂₂⁻¹ Z₂.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/la"
	"repro/internal/optimize"
)

// Mode selects the computation technique.
type Mode int

// Computation modes (paper §VIII terminology).
const (
	FullBlock Mode = iota
	FullTile
	TLR
)

func (m Mode) String() string {
	switch m {
	case FullBlock:
		return "full-block"
	case FullTile:
		return "full-tile"
	case TLR:
		return "tlr"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Config selects and tunes a computation mode.
type Config struct {
	Mode Mode
	// TileSize is the tile edge nb for FullTile and TLR (default 128).
	TileSize int
	// Accuracy is the TLR compression threshold (default 1e-9); ignored by
	// the dense modes.
	Accuracy float64
	// CompressorName selects the TLR compression backend ("svd" default,
	// "rsvd", "aca").
	CompressorName string
	// Workers is the runtime worker count (default 1).
	Workers int
	// Nugget is added to the covariance diagonal for numerical stability
	// (default 1e-9·θ₁).
	Nugget float64
}

func (c Config) withDefaults() Config {
	if c.TileSize <= 0 {
		c.TileSize = 128
	}
	if c.Accuracy <= 0 {
		c.Accuracy = 1e-9
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	return c
}

func (c Config) nugget(variance float64) float64 {
	if c.Nugget > 0 {
		return c.Nugget
	}
	return 1e-9 * variance
}

// Problem is a spatial dataset: locations, one measurement per location, and
// the distance metric the covariance operates under.
type Problem struct {
	Points []geom.Point
	Z      []float64
	Metric geom.Metric
}

// NewProblem bundles and validates a dataset, reordering locations and
// measurements along the Morton curve (the ordering TLR compression needs;
// it is harmless for the dense modes).
func NewProblem(pts []geom.Point, z []float64, metric geom.Metric) (*Problem, error) {
	if len(pts) == 0 {
		return nil, errors.New("core: empty dataset")
	}
	if len(pts) != len(z) {
		return nil, fmt.Errorf("core: %d locations but %d measurements", len(pts), len(z))
	}
	perm := geom.MortonOrder(pts)
	return &Problem{
		Points: geom.ApplyPerm(pts, perm),
		Z:      geom.ApplyPermFloat(z, perm),
		Metric: metric,
	}, nil
}

// N returns the number of observations.
func (p *Problem) N() int { return len(p.Points) }

// LikResult carries one likelihood evaluation with its diagnostics.
type LikResult struct {
	Value    float64 // ℓ(θ)
	LogDet   float64
	QuadForm float64 // Zᵀ Σ⁻¹ Z
	// Bytes is the covariance storage the evaluation needed.
	Bytes int64
	// MaxRank/MeanRank describe the TLR compression (zero for dense modes).
	MaxRank  int
	MeanRank float64
}

// LogLikelihood evaluates ℓ(θ) for the problem under cfg. Callers that
// evaluate many θ on one problem (the optimizers) hold an evaluator instead,
// which reuses buffers and the task graph across evaluations.
func LogLikelihood(p *Problem, theta cov.Params, cfg Config) (LikResult, error) {
	return newEvaluator(p, cfg).logLikelihood(theta)
}

// FitOptions controls the MLE search.
type FitOptions struct {
	// Start is the initial θ; zero fields are replaced by data-driven
	// defaults (empirical variance, 0.1 range, 0.5 smoothness).
	Start cov.Params
	// Lower/Upper bound the search box; zero fields get broad defaults.
	Lower, Upper cov.Params
	// MaxEvals caps likelihood evaluations (default 300).
	MaxEvals int
	// TolX is the optimizer's parameter tolerance (default 1e-4).
	TolX float64
	// FixSmoothness pins θ₃ to Start.Smoothness instead of estimating it —
	// common practice when the smoothness is known a priori.
	FixSmoothness bool
}

// FitResult is the outcome of a maximum likelihood fit.
type FitResult struct {
	Theta cov.Params
	LogL  float64
	Evals int
	// Converged reports the optimizer's convergence flag.
	Converged bool
}

func (o FitOptions) withDefaults(p *Problem) FitOptions {
	if o.MaxEvals <= 0 {
		o.MaxEvals = 300
	}
	if o.TolX <= 0 {
		o.TolX = 1e-4
	}
	if o.Start.Variance <= 0 {
		var s, s2 float64
		for _, v := range p.Z {
			s += v
			s2 += v * v
		}
		n := float64(p.N())
		o.Start.Variance = math.Max(s2/n-(s/n)*(s/n), 1e-3)
	}
	if o.Start.Range <= 0 {
		o.Start.Range = 0.1
	}
	if o.Start.Smoothness <= 0 {
		o.Start.Smoothness = 0.5
	}
	if o.Lower.Variance <= 0 {
		o.Lower.Variance = 1e-3
	}
	if o.Lower.Range <= 0 {
		o.Lower.Range = 1e-3
	}
	if o.Lower.Smoothness <= 0 {
		o.Lower.Smoothness = 0.1
	}
	if o.Upper.Variance <= 0 {
		o.Upper.Variance = 100 * o.Start.Variance
	}
	if o.Upper.Range <= 0 {
		o.Upper.Range = 10
	}
	if o.Upper.Smoothness <= 0 {
		o.Upper.Smoothness = 3
	}
	return o
}

// Fit estimates θ̂ by maximizing the log-likelihood with the derivative-free
// optimizer. The search runs over log-transformed variance and range (their
// scales span decades) and linear smoothness.
func Fit(p *Problem, cfg Config, opts FitOptions) (FitResult, error) {
	cfg = cfg.withDefaults()
	o := opts.withDefaults(p)

	dim := 3
	if o.FixSmoothness {
		dim = 2
	}
	toTheta := func(x []float64) cov.Params {
		t := cov.Params{
			Variance: math.Exp(x[0]),
			Range:    math.Exp(x[1]),
		}
		if o.FixSmoothness {
			t.Smoothness = o.Start.Smoothness
		} else {
			t.Smoothness = x[2]
		}
		return t
	}
	lower := []float64{math.Log(o.Lower.Variance), math.Log(o.Lower.Range), o.Lower.Smoothness}[:dim]
	upper := []float64{math.Log(o.Upper.Variance), math.Log(o.Upper.Range), o.Upper.Smoothness}[:dim]
	start := []float64{math.Log(o.Start.Variance), math.Log(o.Start.Range), o.Start.Smoothness}[:dim]

	// One evaluator serves every objective call: the Σ buffer (FullBlock) or
	// tile descriptors plus the generation+factorization DAG (FullTile) are
	// built once and re-executed per θ instead of reallocated per iteration.
	ev := newEvaluator(p, cfg)
	var lastErr error
	obj := func(x []float64) float64 {
		lik, err := ev.logLikelihood(toTheta(x))
		if err != nil {
			lastErr = err
			return math.Inf(1)
		}
		return -lik.Value
	}
	res, err := optimize.NelderMead(
		optimize.Problem{Objective: obj, Lower: lower, Upper: upper},
		start,
		optimize.Options{MaxEvals: o.MaxEvals, TolX: o.TolX},
	)
	if err != nil {
		return FitResult{}, err
	}
	if math.IsInf(res.F, 1) {
		return FitResult{}, fmt.Errorf("core: every likelihood evaluation failed: %w", lastErr)
	}
	return FitResult{
		Theta:     toTheta(res.X),
		LogL:      -res.F,
		Evals:     res.Evals,
		Converged: res.Converged,
	}, nil
}

// Predict imputes measurements at newPts from the fitted model (paper eq. 4):
// Ẑ₁ = Σ₁₂ Σ₂₂⁻¹ Z₂, with Σ₂₂ factored in the configured mode and the
// (small) cross-covariance Σ₁₂ applied densely row by row.
func Predict(p *Problem, newPts []geom.Point, theta cov.Params, cfg Config) ([]float64, error) {
	if err := theta.Validate(); err != nil {
		return nil, err
	}
	if len(newPts) == 0 {
		return nil, nil
	}
	cfg = cfg.withDefaults()
	n := p.N()
	m := len(newPts)
	k := cov.NewKernel(theta)
	f, err := Factorize(p, theta, cfg)
	if err != nil {
		return nil, err
	}

	// y = Σ22⁻¹ Z2
	y := append([]float64(nil), p.Z...)
	f.Solve(y)

	// Ẑ1 = Σ12 · y, assembled one row at a time to bound memory.
	out := make([]float64, m)
	cross := la.NewMat(1, n)
	for i := 0; i < m; i++ {
		k.Block(cross, newPts[i:i+1], p.Points, p.Metric)
		out[i] = la.Dot(cross.Row(0), y)
	}
	return out, nil
}

// MSE returns the mean squared error between predictions and truth
// (paper eq. 7).
func MSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("core: MSE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return s / float64(len(pred))
}
