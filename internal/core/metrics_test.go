package core

import (
	"testing"
)

// TestSessionMetricsTracedTile: a FullTile session with tracing enabled must
// produce a trace of the combined dcmg+Cholesky DAG, with utilization in
// [0, 1] and critical path ≤ makespan, and the cache counters must show the
// graph being reused across evaluations.
func TestSessionMetricsTracedTile(t *testing.T) {
	p := smallProblem(t, 64, 11)
	s, err := NewSession(p, Config{Mode: FullTile, TileSize: 16, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Before tracing: no trace, whatever evaluations run.
	if _, err := s.LogLikelihood(theta()); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.Trace != nil {
		t.Fatal("trace recorded before EnableTracing")
	}

	s.EnableTracing()
	before := s.Metrics().Obs
	if _, err := s.LogLikelihood(theta()); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Trace == nil {
		t.Fatal("no trace after EnableTracing + evaluation")
	}
	// MT = 4: 10 dcmg + 4 potrf + 6 trsm + 6 syrk + 4 gemm = 30 tasks
	if len(m.Trace.Events) != 30 {
		t.Fatalf("trace has %d events, want 30", len(m.Trace.Events))
	}
	if u := m.Trace.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization %g out of [0,1]", u)
	}
	if m.Trace.CritPath <= 0 || m.Trace.CritPath > m.Trace.Makespan() {
		t.Fatalf("critical path %v vs makespan %v", m.Trace.CritPath, m.Trace.Makespan())
	}
	if m.Comm != nil {
		t.Fatal("shared-memory session must not report comm stats")
	}

	// Phase delta: the traced evaluation was a cache hit (graph reused) and
	// ran the full dcmg sweep again.
	d := m.Obs.Sub(before)
	if d.Counters["core.cache.tilegraph.hit"] != 1 || d.Counters["core.cache.tilegraph.miss"] != 0 {
		t.Fatalf("cache counters wrong: hit=%d miss=%d",
			d.Counters["core.cache.tilegraph.hit"], d.Counters["core.cache.tilegraph.miss"])
	}
	if d.Counters["tile.dcmg.calls"] != 10 {
		t.Fatalf("dcmg calls = %d, want 10", d.Counters["tile.dcmg.calls"])
	}
	// 30 factorization tasks + the triangular-solve graph of HalfSolve
	// (4 trsv + 6 gemv for MT = 4).
	if d.Counters["runtime.tasks.completed"] != 40 {
		t.Fatalf("completed tasks = %d, want 40", d.Counters["runtime.tasks.completed"])
	}
}

// TestSessionMetricsTLRRankHistogram: a traced TLR evaluation must populate
// the compression-rank histogram and the TLR cache counters.
func TestSessionMetricsTLRRankHistogram(t *testing.T) {
	p := smallProblem(t, 64, 12)
	s, err := NewSession(p, Config{Mode: TLR, TileSize: 16, Accuracy: 1e-7, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	before := s.Metrics().Obs
	if _, err := s.LogLikelihood(theta()); err != nil {
		t.Fatal(err)
	}
	d := s.Metrics().Obs.Sub(before)
	// MT = 4 → 6 off-diagonal tiles compressed
	if d.Counters["tlr.compress.calls"] != 6 {
		t.Fatalf("compress calls = %d, want 6", d.Counters["tlr.compress.calls"])
	}
	// Sub differences counts and sums; Min/Max are copied from the cumulative
	// snapshot (extrema don't difference), so bound the delta's MEAN rank —
	// 6 tiles of at most 16 columns each.
	h := d.Histograms["tlr.compress.rank"]
	if h.Count != 6 || h.Sum <= 0 || h.Mean() > 16 {
		t.Fatalf("rank histogram: %+v (mean %g)", h, h.Mean())
	}
	if d.Counters["core.cache.tlrgraph.miss"] != 1 {
		t.Fatalf("tlr graph miss = %d, want 1", d.Counters["core.cache.tlrgraph.miss"])
	}
}

// TestSessionMetricsDistComm: a traced distributed session reports per-rank
// comm stats and a communication-timeline trace with one lane per rank.
func TestSessionMetricsDistComm(t *testing.T) {
	p := smallProblem(t, 64, 13)
	s, err := NewSession(p, Config{Mode: TLR, TileSize: 16, Accuracy: 1e-7, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	s.EnableTracing()
	if _, err := s.LogLikelihood(theta()); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if len(m.Comm) != 4 {
		t.Fatalf("comm stats for %d ranks, want 4", len(m.Comm))
	}
	var sent int64
	for _, c := range m.Comm {
		sent += c.MsgsSent
	}
	if sent == 0 {
		t.Fatal("no cross-rank messages recorded")
	}
	if m.Trace == nil {
		t.Fatal("no communication timeline")
	}
	if len(m.Trace.Events) == 0 || m.Trace.Workers != 4 {
		t.Fatalf("comm timeline: %d events on %d lanes", len(m.Trace.Events), m.Trace.Workers)
	}
	for _, e := range m.Trace.Events {
		if e.Start != e.End {
			t.Fatalf("comm event not instantaneous: %+v", e)
		}
		if e.Start < 0 || e.End > m.Trace.Wall {
			t.Fatalf("comm event outside [0, wall]: %+v", e)
		}
	}
}
