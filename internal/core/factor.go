package core

import (
	"fmt"

	"repro/internal/cov"
	"repro/internal/la"
	"repro/internal/tile"
	"repro/internal/tlr"
)

// Factor is a computed Cholesky factorization of a covariance matrix in one
// of the three computation modes. It exposes exactly the operations the MLE
// and prediction pipelines need.
type Factor interface {
	// HalfSolve overwrites b with L⁻¹·b (forward substitution).
	HalfSolve(b []float64)
	// Solve overwrites b with A⁻¹·b.
	Solve(b []float64)
	// HalfSolveMat overwrites the n×r block B with L⁻¹·B.
	HalfSolveMat(b *la.Mat)
	// LogDet returns log|A|.
	LogDet() float64
	// Bytes returns the factor's storage footprint.
	Bytes() int64
	// RankStats returns (max, mean) compressed-tile rank; zeros for the
	// dense modes.
	RankStats() (int, float64)
}

// Factorize assembles Σ(θ) for the problem and factors it under cfg. The
// returned Factor is a shared-memory object; distributed configurations
// (Ranks > 1) are rejected — use a Session, whose methods keep the factor
// sharded across ranks.
func Factorize(p *Problem, theta cov.Params, cfg Config) (Factor, error) {
	if err := theta.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	if cfg.Ranks > 1 {
		return nil, fmt.Errorf("core: Factorize is shared-memory only (Ranks=%d); use Session", cfg.Ranks)
	}
	k := cov.NewKernel(theta)
	return factorizeKernel(p, k, cfg, cfg.nugget(theta.Variance))
}

// factorizeKernel is the kernel-level entry shared with the profiled path.
func factorizeKernel(p *Problem, k *cov.Kernel, cfg Config, nugget float64) (Factor, error) {
	n := p.N()
	switch cfg.Mode {
	case FullBlock:
		sigma := la.NewMat(n, n)
		k.MatrixParallel(sigma, p.Points, p.Metric, cfg.Workers)
		cov.AddNugget(sigma, nugget)
		if err := la.Potrf(sigma); err != nil {
			return nil, fmt.Errorf("core: %s factorization: %w", cfg.Mode, err)
		}
		return denseFactor{l: sigma}, nil
	case FullTile:
		m := tile.NewSym(n, cfg.TileSize)
		spec := &tile.GenSpec{K: k, Pts: p.Points, Metric: p.Metric, Nugget: nugget}
		if err := tile.GenCholesky(m, spec, cfg.Workers); err != nil {
			return nil, fmt.Errorf("core: %s factorization: %w", cfg.Mode, err)
		}
		return tileFactor{m: m, workers: cfg.Workers}, nil
	case TLR:
		comp, err := tlr.CompressorByName(cfg.CompressorName)
		if err != nil {
			return nil, err
		}
		m := tlr.NewMatrix(n, cfg.TileSize, cfg.Accuracy)
		spec := &tlr.GenSpec{K: k, Pts: p.Points, Metric: p.Metric, Nugget: nugget, Comp: comp}
		if err := tlr.GenCholesky(m, spec, cfg.Workers); err != nil {
			return nil, fmt.Errorf("core: %s factorization: %w", cfg.Mode, err)
		}
		return tlrFactor{m: m}, nil
	default:
		return nil, fmt.Errorf("core: unknown mode %v", cfg.Mode)
	}
}

// denseFactor wraps a dense lower Cholesky factor.
type denseFactor struct{ l *la.Mat }

func (f denseFactor) HalfSolve(b []float64) { la.ForwardSolveVec(f.l, b) }
func (f denseFactor) Solve(b []float64)     { la.CholSolveVec(f.l, b) }
func (f denseFactor) HalfSolveMat(b *la.Mat) {
	la.Trsm(la.Left, la.Lower, la.NoTrans, 1, f.l, b)
}
func (f denseFactor) LogDet() float64 { return la.LogDetFromChol(f.l) }
func (f denseFactor) Bytes() int64 {
	return int64(f.l.Rows) * int64(f.l.Cols) * 8
}
func (f denseFactor) RankStats() (int, float64) { return 0, 0 }

// tileFactor wraps a tiled dense factorization.
type tileFactor struct {
	m       *tile.SymMatrix
	workers int
}

func (f tileFactor) HalfSolve(b []float64) {
	if err := tile.ForwardSolve(f.m, b, f.workers); err != nil {
		// the forward-solve DAG cannot fail numerically; a failure is a
		// programming error
		panic(err)
	}
}
func (f tileFactor) Solve(b []float64) {
	f.HalfSolve(b)
	tile.BackwardSolve(f.m, b)
}
func (f tileFactor) HalfSolveMat(b *la.Mat)    { f.m.ForwardSolveMat(b) }
func (f tileFactor) LogDet() float64           { return f.m.LogDet() }
func (f tileFactor) Bytes() int64              { return f.m.Bytes() }
func (f tileFactor) RankStats() (int, float64) { return 0, 0 }

// tlrFactor wraps a TLR factorization.
type tlrFactor struct{ m *tlr.Matrix }

func (f tlrFactor) HalfSolve(b []float64)     { f.m.ForwardSolve(b) }
func (f tlrFactor) Solve(b []float64)         { f.m.Solve(b) }
func (f tlrFactor) HalfSolveMat(b *la.Mat)    { f.m.ForwardSolveMat(b) }
func (f tlrFactor) LogDet() float64           { return f.m.LogDet() }
func (f tlrFactor) Bytes() int64              { return f.m.Bytes() }
func (f tlrFactor) RankStats() (int, float64) { return f.m.RankStats() }
