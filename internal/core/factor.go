package core

import (
	"fmt"

	"repro/internal/cov"
	"repro/internal/la"
)

// Factor is a computed Cholesky factorization of a covariance matrix in one
// of the shared-memory computation modes. It exposes exactly the operations
// the MLE and prediction pipelines need.
type Factor interface {
	// HalfSolve overwrites b with L⁻¹·b (forward substitution).
	HalfSolve(b []float64)
	// Solve overwrites b with A⁻¹·b.
	Solve(b []float64)
	// HalfSolveMat overwrites the n×r block B with L⁻¹·B.
	HalfSolveMat(b *la.Mat)
	// SolveMat overwrites the n×r block B with A⁻¹·B (multi-RHS solve).
	SolveMat(b *la.Mat)
	// LogDet returns log|A|.
	LogDet() float64
	// Bytes returns the factor's storage footprint.
	Bytes() int64
	// RankStats returns (max, mean) compressed-tile rank; zeros for the
	// dense modes.
	RankStats() (int, float64)
}

// Factorize assembles Σ(θ) for the problem and factors it under cfg. The
// returned Factor is a shared-memory object; distributed configurations
// (Ranks > 1) are rejected — use a Session, whose methods keep the factor
// sharded across ranks. The factorization routes through the registered
// backend for cfg.Mode, so it runs the same nugget-escalation ladder the
// Session paths do.
func Factorize(p *Problem, theta cov.Params, cfg Config) (Factor, error) {
	if err := theta.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.normalized()
	if cfg.Ranks > 1 {
		return nil, fmt.Errorf("core: Factorize is shared-memory only (Ranks=%d); use Session", cfg.Ranks)
	}
	be, err := newBackend(p, cfg, nil)
	if err != nil {
		return nil, err
	}
	fb, ok := be.(FactorBackend)
	if !ok {
		return nil, fmt.Errorf("core: mode %v does not expose a shared-memory factorization", cfg.Mode)
	}
	k := cov.NewKernel(theta)
	return fb.Factorize(k, cfg.nugget(theta.Variance))
}
