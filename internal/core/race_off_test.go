//go:build !race

package core

// raceEnabled reports whether the race detector is compiled in; the heaviest
// distributed tests skip themselves under -race (they are covered by the
// plain run, and smaller distributed tests keep the concurrency coverage).
const raceEnabled = false
