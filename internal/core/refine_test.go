package core

import (
	"math"
	"testing"

	"repro/internal/cov"
	"repro/internal/la"
	"repro/internal/rng"
)

// denseSolveRef computes the reference solution with a full-accuracy dense
// factorization.
func denseSolveRef(t *testing.T, p *Problem, b []float64) []float64 {
	t.Helper()
	f, err := Factorize(p, theta(), Config{Mode: FullBlock})
	if err != nil {
		t.Fatal(err)
	}
	x := append([]float64(nil), b...)
	f.Solve(x)
	return x
}

func TestSolveRefinedReachesTightTolerance(t *testing.T) {
	p := smallProblem(t, 225, 61)
	r := rng.New(62)
	b := make([]float64, p.N())
	r.NormSlice(b)

	// Loose 1e-3 preconditioner, refined to 1e-10.
	x, res, err := SolveRefined(p, theta(), Config{TileSize: 64, Accuracy: 1e-3}, b, RefineOptions{Tol: 1e-10})
	if err != nil {
		t.Fatalf("refinement failed after %d iters (relres %g): %v", res.Iterations, res.RelResidual, err)
	}
	if !res.Converged || res.RelResidual > 1e-10 {
		t.Fatalf("not converged: %+v", res)
	}
	want := denseSolveRef(t, p, b)
	var worst float64
	for i := range x {
		if d := math.Abs(x[i] - want[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Fatalf("refined solution deviates from dense by %g", worst)
	}
}

func TestSolveRefinedBeatsUnrefinedAccuracy(t *testing.T) {
	p := smallProblem(t, 196, 63)
	r := rng.New(64)
	b := make([]float64, p.N())
	r.NormSlice(b)
	want := denseSolveRef(t, p, b)

	// plain loose TLR solve
	f, err := Factorize(p, theta(), Config{Mode: TLR, TileSize: 64, Accuracy: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	plain := append([]float64(nil), b...)
	f.Solve(plain)
	var plainErr float64
	for i := range plain {
		plainErr = math.Max(plainErr, math.Abs(plain[i]-want[i]))
	}

	refined, res, err := SolveRefined(p, theta(), Config{TileSize: 64, Accuracy: 1e-2}, b, RefineOptions{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	var refErr float64
	for i := range refined {
		refErr = math.Max(refErr, math.Abs(refined[i]-want[i]))
	}
	if refErr >= plainErr/10 {
		t.Fatalf("refinement gained too little: plain %g vs refined %g (%d iters)", plainErr, refErr, res.Iterations)
	}
}

func TestSolveRefinedTighterPreconditionerFewerIterations(t *testing.T) {
	p := smallProblem(t, 196, 65)
	r := rng.New(66)
	b := make([]float64, p.N())
	r.NormSlice(b)
	_, loose, err := SolveRefined(p, theta(), Config{TileSize: 64, Accuracy: 1e-1}, b, RefineOptions{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	_, tight, err := SolveRefined(p, theta(), Config{TileSize: 64, Accuracy: 1e-6}, b, RefineOptions{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Iterations > loose.Iterations {
		t.Fatalf("tighter preconditioner needed more iterations: %d vs %d", tight.Iterations, loose.Iterations)
	}
}

func TestSolveRefinedValidation(t *testing.T) {
	p := smallProblem(t, 25, 67)
	if _, _, err := SolveRefined(p, theta(), Config{}, make([]float64, 7), RefineOptions{}); err == nil {
		t.Fatal("rhs length mismatch must error")
	}
	bad := theta()
	bad.Variance = -1
	if _, _, err := SolveRefined(p, bad, Config{}, make([]float64, p.N()), RefineOptions{}); err == nil {
		t.Fatal("invalid theta must error")
	}
}

func TestExactMatVecMatchesDense(t *testing.T) {
	p := smallProblem(t, 100, 68)
	k := kernelFor(t, theta())
	mv := exactMatVec(p, k, 1e-9, 32)
	r := rng.New(69)
	x := make([]float64, 100)
	r.NormSlice(x)
	got := make([]float64, 100)
	mv(x, got)

	sigma := la.NewMat(100, 100)
	k.Matrix(sigma, p.Points, p.Metric)
	for i := 0; i < 100; i++ {
		sigma.Set(i, i, sigma.At(i, i)+1e-9)
	}
	want := make([]float64, 100)
	la.Gemv(1, sigma, la.NoTrans, x, 0, want)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("matrix-free matvec differs at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// kernelFor builds a Matérn kernel for tests.
func kernelFor(t *testing.T, p cov.Params) *cov.Kernel {
	t.Helper()
	return cov.NewKernel(p)
}
