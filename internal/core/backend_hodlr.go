package core

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/cov"
	"repro/internal/hodlr"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/tlr"
)

// Graph-reuse counters for the HODLR mode: the tree shell and the fused
// assembly+Cholesky DAG are built once per backend and re-executed per θ.
var (
	cntCacheHODLRHit  = obs.GetCounter("core.cache.hodlrgraph.hit")
	cntCacheHODLRMiss = obs.GetCounter("core.cache.hodlrgraph.miss")
)

func init() {
	RegisterBackend(HODLR, BackendSpec{
		Name: "hodlr",
		New: func(p *Problem, cfg Config, inj *chaos.Injector) (Backend, error) {
			return newLocalBackend(p, cfg, inj, &hodlrState{}), nil
		},
	})
}

// hodlrState is the HODLR mode's cached state: the recursion-tree shell
// (preallocated leaf blocks, empty off-diagonal slots) and the fused
// assembly + hierarchical-Cholesky DAG. Config.TileSize doubles as the leaf
// size, Config.Accuracy as the per-block compression tolerance.
type hodlrState struct {
	hm    *hodlr.Matrix
	hspec *hodlr.GenSpec // mutable kernel/nugget slot read by the tasks
	hg    *runtime.Graph
}

func (st *hodlrState) factorizeOnce(e *localBackend, k *cov.Kernel, nugget float64) (Factor, error) {
	if st.hg == nil {
		comp, err := tlr.CompressorByName(e.cfg.CompressorName)
		if err != nil {
			return nil, err
		}
		st.hm = hodlr.NewTree(e.p.N(), e.cfg.TileSize, e.cfg.Accuracy)
		st.hspec = &hodlr.GenSpec{Pts: e.p.Points, Metric: e.p.Metric, Comp: comp}
		st.hg = hodlr.BuildGenCholeskyGraph(st.hm, st.hspec, true)
		cntCacheHODLRMiss.Inc()
	} else {
		cntCacheHODLRHit.Inc()
	}
	st.hspec.K = k
	st.hspec.Nugget = nugget
	if err := e.run(st.hg); err != nil {
		return nil, fmt.Errorf("core: %s factorization: %w", e.cfg.Mode, err)
	}
	return hodlrFactor{m: st.hm}, nil
}

// hodlrFactor wraps a factored HODLR tree.
type hodlrFactor struct{ m *hodlr.Matrix }

func (f hodlrFactor) HalfSolve(b []float64)     { f.m.ForwardSolve(b) }
func (f hodlrFactor) Solve(b []float64)         { f.m.Solve(b) }
func (f hodlrFactor) HalfSolveMat(b *la.Mat)    { f.m.ForwardSolveMat(b) }
func (f hodlrFactor) SolveMat(b *la.Mat)        { f.m.SolveMat(b) }
func (f hodlrFactor) LogDet() float64           { return f.m.LogDet() }
func (f hodlrFactor) Bytes() int64              { return f.m.Bytes() }
func (f hodlrFactor) RankStats() (int, float64) { return f.m.RankStats() }
