package core

import (
	"math"
	"testing"

	"repro/internal/cov"
)

// newTestBackend builds the registered backend for cfg directly, bypassing
// Session — the reuse contracts below are properties of the backend itself.
func newTestBackend(t *testing.T, p *Problem, cfg Config) Backend {
	t.Helper()
	be, err := newBackend(p, cfg.withDefaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return be
}

// Likelihoods from one reused evaluator must match fresh single-shot
// evaluations across a sweep of θ — the reused Σ buffer / tile graph may
// leave no trace of the previous parameters.
func TestEvaluatorReuseMatchesFresh(t *testing.T) {
	p := smallProblem(t, 150, 3)
	thetas := []cov.Params{
		{Variance: 1, Range: 0.1, Smoothness: 0.5},
		{Variance: 2.5, Range: 0.05, Smoothness: 1.5},
		{Variance: 0.7, Range: 0.3, Smoothness: 0.5},
		{Variance: 1, Range: 0.1, Smoothness: 0.5}, // revisit the first point
	}
	for _, cfg := range []Config{
		{Mode: FullBlock, Workers: 3},
		{Mode: FullTile, TileSize: 32, Workers: 3},
		{Mode: HODLR, TileSize: 32, Workers: 3},
	} {
		ev := newTestBackend(t, p, cfg)
		for _, th := range thetas {
			got, err := ev.LogLikelihood(th)
			if err != nil {
				t.Fatalf("%v θ=%v: %v", cfg.Mode, th, err)
			}
			want, err := LogLikelihood(p, th, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.Value-want.Value) > 1e-8*math.Abs(want.Value) {
				t.Fatalf("%v θ=%v: reused evaluator %.12g vs fresh %.12g", cfg.Mode, th, got.Value, want.Value)
			}
			if got.LogDet != want.LogDet || got.QuadForm != want.QuadForm {
				t.Fatalf("%v θ=%v: diagnostics drift: logdet %g vs %g, quad %g vs %g",
					cfg.Mode, th, got.LogDet, want.LogDet, got.QuadForm, want.QuadForm)
			}
		}
	}
}

func TestEvaluatorProfiledReuseMatchesFresh(t *testing.T) {
	p := smallProblem(t, 120, 4)
	cfg := Config{Mode: FullTile, TileSize: 32, Workers: 2}
	ev := newTestBackend(t, p, cfg)
	for _, rangeP := range []float64{0.05, 0.2, 0.1} {
		gotL, gotV, err := ev.ProfiledLogLikelihood(rangeP, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		wantL, wantV, err := ProfiledLogLikelihood(p, rangeP, 0.5, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotL-wantL) > 1e-8*math.Abs(wantL) || math.Abs(gotV-wantV) > 1e-8*wantV {
			t.Fatalf("range=%g: reused (%g, %g) vs fresh (%g, %g)", rangeP, gotL, gotV, wantL, wantV)
		}
	}
}

// The TLR evaluator reuses the tile shell and fused generate+compress+factor
// graph across calls; only ranks and contents are rebuilt per θ. Repeated
// evaluations at one θ must therefore be bitwise-identical, and every reused
// evaluation must match a fresh single-shot one exactly.
func TestEvaluatorTLRReuseBitwise(t *testing.T) {
	p := smallProblem(t, 150, 3)
	thetas := []cov.Params{
		{Variance: 1, Range: 0.1, Smoothness: 0.5},
		{Variance: 2.5, Range: 0.05, Smoothness: 1.5},
		{Variance: 1, Range: 0.1, Smoothness: 0.5}, // revisit the first point
	}
	for _, comp := range []string{"svd", "rsvd"} {
		cfg := Config{Mode: TLR, TileSize: 32, Accuracy: 1e-8, Workers: 3, CompressorName: comp}
		ev := newTestBackend(t, p, cfg)
		for _, th := range thetas {
			got, err := ev.LogLikelihood(th)
			if err != nil {
				t.Fatalf("%s θ=%v: %v", comp, th, err)
			}
			again, err := ev.LogLikelihood(th)
			if err != nil {
				t.Fatal(err)
			}
			if got.Value != again.Value || got.LogDet != again.LogDet || got.QuadForm != again.QuadForm {
				t.Fatalf("%s θ=%v: repeated factorize on the reused graph drifted: %.17g vs %.17g",
					comp, th, got.Value, again.Value)
			}
			want, err := LogLikelihood(p, th, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.Value != want.Value || got.LogDet != want.LogDet || got.QuadForm != want.QuadForm {
				t.Fatalf("%s θ=%v: reused evaluator %.17g vs fresh %.17g", comp, th, got.Value, want.Value)
			}
		}
	}
}

// A failed factorization (absurd θ driving Σ numerically non-SPD) must not
// poison the evaluator for subsequent good evaluations.
func TestEvaluatorRecoversAfterFactorizationError(t *testing.T) {
	p := smallProblem(t, 100, 5)
	for _, cfg := range []Config{
		{Mode: FullBlock},
		{Mode: FullTile, TileSize: 32, Workers: 2},
		{Mode: TLR, TileSize: 32, Accuracy: 1e-10, Workers: 2},
		{Mode: HODLR, TileSize: 32, Accuracy: 1e-10, Workers: 2},
	} {
		ev := newTestBackend(t, p, cfg)
		good := cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5}
		before, err := ev.LogLikelihood(good)
		if err != nil {
			t.Fatal(err)
		}
		// Huge range makes all correlations ≈1: numerically singular.
		if _, err := ev.LogLikelihood(cov.Params{Variance: 1, Range: 1e8, Smoothness: 0.5}); err == nil {
			t.Skipf("%v: near-singular Σ unexpectedly factored; cannot exercise recovery", cfg.Mode)
		}
		after, err := ev.LogLikelihood(good)
		if err != nil {
			t.Fatalf("%v: evaluator broken after failed factorization: %v", cfg.Mode, err)
		}
		if math.Abs(after.Value-before.Value) > 1e-8*math.Abs(before.Value) {
			t.Fatalf("%v: likelihood drifted after failure: %g vs %g", cfg.Mode, after.Value, before.Value)
		}
	}
}
