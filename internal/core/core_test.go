package core

import (
	"math"
	"testing"

	"repro/internal/cov"
	"repro/internal/geom"
	"repro/internal/rng"
)

func theta() cov.Params { return cov.Params{Variance: 1, Range: 0.1, Smoothness: 0.5} }

func smallProblem(t *testing.T, n int, seed uint64) *Problem {
	t.Helper()
	syn, err := GenerateSynthetic(n, 0, theta(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return syn.Train
}

func TestNewProblemValidation(t *testing.T) {
	if _, err := NewProblem(nil, nil, geom.Euclidean); err == nil {
		t.Fatal("empty dataset must error")
	}
	pts := geom.GeneratePerturbedGrid(4, rng.New(1))
	if _, err := NewProblem(pts, []float64{1, 2}, geom.Euclidean); err == nil {
		t.Fatal("length mismatch must error")
	}
	p, err := NewProblem(pts, []float64{1, 2, 3, 4}, geom.Euclidean)
	if err != nil || p.N() != 4 {
		t.Fatalf("valid problem rejected: %v", err)
	}
}

func TestLogLikelihoodModesAgree(t *testing.T) {
	p := smallProblem(t, 100, 2)
	th := theta()
	ref, err := LogLikelihood(p, th, Config{Mode: FullBlock})
	if err != nil {
		t.Fatal(err)
	}
	tileRes, err := LogLikelihood(p, th, Config{Mode: FullTile, TileSize: 32, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tileRes.Value-ref.Value) > 1e-6*math.Abs(ref.Value) {
		t.Fatalf("full-tile %g vs full-block %g", tileRes.Value, ref.Value)
	}
	tlrRes, err := LogLikelihood(p, th, Config{Mode: TLR, TileSize: 32, Accuracy: 1e-10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tlrRes.Value-ref.Value) > 1e-4*math.Abs(ref.Value)+1e-3 {
		t.Fatalf("tlr %g vs full-block %g", tlrRes.Value, ref.Value)
	}
	if tlrRes.Bytes >= tileRes.Bytes {
		t.Log("note: no compression gain at this tiny size (expected for small n)")
	}
	if tlrRes.MaxRank <= 0 {
		t.Fatal("TLR result missing rank stats")
	}
}

func TestLogLikelihoodTLRConvergesWithAccuracy(t *testing.T) {
	p := smallProblem(t, 144, 3)
	th := theta()
	ref, err := LogLikelihood(p, th, Config{Mode: FullBlock})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, acc := range []float64{1e-3, 1e-6, 1e-9} {
		r, err := LogLikelihood(p, th, Config{Mode: TLR, TileSize: 24, Accuracy: acc})
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(r.Value - ref.Value)
		if e > prev*2 {
			t.Fatalf("TLR likelihood error grew with tighter accuracy: %g -> %g", prev, e)
		}
		prev = e
	}
	if prev > 1e-3 {
		t.Fatalf("TLR at 1e-9 still off by %g", prev)
	}
}

func TestLogLikelihoodHigherAtTruth(t *testing.T) {
	// ℓ(θ*) should beat clearly wrong parameter guesses on average.
	p := smallProblem(t, 121, 4)
	good, err := LogLikelihood(p, theta(), Config{Mode: FullBlock})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []cov.Params{
		{Variance: 10, Range: 0.1, Smoothness: 0.5},
		{Variance: 1, Range: 1.5, Smoothness: 0.5},
		{Variance: 0.1, Range: 0.01, Smoothness: 2},
	} {
		b, err := LogLikelihood(p, bad, Config{Mode: FullBlock})
		if err != nil {
			t.Fatal(err)
		}
		if b.Value >= good.Value {
			t.Fatalf("likelihood at bad θ %v (%g) ≥ at truth (%g)", bad, b.Value, good.Value)
		}
	}
}

func TestLogLikelihoodRejectsBadParams(t *testing.T) {
	p := smallProblem(t, 25, 5)
	if _, err := LogLikelihood(p, cov.Params{Variance: -1, Range: 0.1, Smoothness: 0.5}, Config{}); err == nil {
		t.Fatal("negative variance must error")
	}
}

func TestFitRecoversParameters(t *testing.T) {
	// Moderate-size exact-mode fit: estimates should land near the truth.
	syn, err := GenerateSynthetic(324, 0, theta(), 7)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := Fit(syn.Train, Config{Mode: FullBlock}, FitOptions{MaxEvals: 160})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Theta.Smoothness-0.5) > 0.15 {
		t.Errorf("smoothness estimate %g far from 0.5", fit.Theta.Smoothness)
	}
	if fit.Theta.Variance < 0.4 || fit.Theta.Variance > 2.5 {
		t.Errorf("variance estimate %g implausible", fit.Theta.Variance)
	}
	if fit.Theta.Range < 0.03 || fit.Theta.Range > 0.4 {
		t.Errorf("range estimate %g implausible", fit.Theta.Range)
	}
}

func TestFitTLRMatchesExactFit(t *testing.T) {
	syn, err := GenerateSynthetic(256, 0, theta(), 8)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Fit(syn.Train, Config{Mode: FullBlock}, FitOptions{MaxEvals: 100, FixSmoothness: true, Start: cov.Params{Smoothness: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	tlrFit, err := Fit(syn.Train, Config{Mode: TLR, TileSize: 64, Accuracy: 1e-9}, FitOptions{MaxEvals: 100, FixSmoothness: true, Start: cov.Params{Smoothness: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tlrFit.Theta.Variance-exact.Theta.Variance) > 0.25*exact.Theta.Variance {
		t.Errorf("TLR variance %g vs exact %g", tlrFit.Theta.Variance, exact.Theta.Variance)
	}
	if math.Abs(tlrFit.Theta.Range-exact.Theta.Range) > 0.3*exact.Theta.Range {
		t.Errorf("TLR range %g vs exact %g", tlrFit.Theta.Range, exact.Theta.Range)
	}
}

func TestPredictModesAgree(t *testing.T) {
	syn, err := GenerateSynthetic(256, 20, theta(), 9)
	if err != nil {
		t.Fatal(err)
	}
	th := theta()
	pb, err := Predict(syn.Train, syn.TestPoints, th, Config{Mode: FullBlock})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Predict(syn.Train, syn.TestPoints, th, Config{Mode: FullTile, TileSize: 64, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Predict(syn.Train, syn.TestPoints, th, Config{Mode: TLR, TileSize: 64, Accuracy: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pb {
		if math.Abs(pt[i]-pb[i]) > 1e-6 {
			t.Fatalf("full-tile prediction differs at %d: %g vs %g", i, pt[i], pb[i])
		}
		if math.Abs(pl[i]-pb[i]) > 1e-3 {
			t.Fatalf("TLR prediction differs at %d: %g vs %g", i, pl[i], pb[i])
		}
	}
}

func TestPredictImputesWell(t *testing.T) {
	// Prediction MSE must be well below the field variance (it exploits
	// spatial correlation) and close between exact and TLR.
	syn, err := GenerateSynthetic(400, 40, cov.Params{Variance: 1, Range: 0.3, Smoothness: 0.5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := Predict(syn.Train, syn.TestPoints, syn.Truth, Config{Mode: FullBlock})
	if err != nil {
		t.Fatal(err)
	}
	mse := MSE(pred, syn.TestZ)
	if mse > 0.25 {
		t.Fatalf("prediction MSE %g too high for strongly correlated field", mse)
	}
}

func TestPredictEmptyAndErrors(t *testing.T) {
	p := smallProblem(t, 25, 11)
	out, err := Predict(p, nil, theta(), Config{})
	if err != nil || out != nil {
		t.Fatal("empty prediction should be a no-op")
	}
	if _, err := Predict(p, []geom.Point{{X: 0.5, Y: 0.5}}, cov.Params{}, Config{}); err == nil {
		t.Fatal("invalid theta must error")
	}
}

func TestMSE(t *testing.T) {
	if MSE([]float64{1, 2}, []float64{1, 4}) != 2 {
		t.Fatal("MSE arithmetic wrong")
	}
	if MSE(nil, nil) != 0 {
		t.Fatal("empty MSE should be 0")
	}
}

func TestGenerateSyntheticSplit(t *testing.T) {
	syn, err := GenerateSynthetic(100, 10, theta(), 12)
	if err != nil {
		t.Fatal(err)
	}
	if syn.Train.N() != 90 || len(syn.TestPoints) != 10 || len(syn.TestZ) != 10 {
		t.Fatalf("split sizes wrong: %d train, %d test", syn.Train.N(), len(syn.TestPoints))
	}
	if _, err := GenerateSynthetic(10, 10, theta(), 1); err == nil {
		t.Fatal("nTest >= n must error")
	}
	if _, err := GenerateSynthetic(10, 2, cov.Params{}, 1); err == nil {
		t.Fatal("invalid theta must error")
	}
}

func TestGenerateSyntheticReplicatesShareLocations(t *testing.T) {
	probs, err := GenerateSyntheticReplicates(64, 3, theta(), 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(probs) != 3 {
		t.Fatal("wrong replicate count")
	}
	for i := 1; i < 3; i++ {
		for j := range probs[0].Points {
			if probs[i].Points[j] != probs[0].Points[j] {
				t.Fatal("replicates should share the location matrix")
			}
		}
	}
	same := 0
	for j := range probs[0].Z {
		if probs[0].Z[j] == probs[1].Z[j] {
			same++
		}
	}
	if same == len(probs[0].Z) {
		t.Fatal("replicates should have different measurements")
	}
}

func TestModeString(t *testing.T) {
	if FullBlock.String() != "full-block" || FullTile.String() != "full-tile" || TLR.String() != "tlr" {
		t.Fatal("mode names wrong")
	}
	if Mode(99).String() == "" {
		t.Fatal("unknown mode should still format")
	}
}
