package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/geom"
)

// fitAndPredict runs a short Fit plus a Predict on a fresh session and
// returns everything a bitwise-determinism comparison needs.
func fitAndPredict(t *testing.T, p *Problem, cfg Config, newPts []geom.Point) (*Session, FitResult, []float64) {
	t.Helper()
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := s.Fit(FitOptions{MaxEvals: 12, FixSmoothness: true, Start: theta()})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := s.Predict(newPts, fit.Theta)
	if err != nil {
		t.Fatal(err)
	}
	return s, fit, pred
}

// TestChaosSharedFitBitwiseIdentical is the headline recovery guarantee:
// a shared-memory TLR fit with injected task panics and stragglers — healed
// by snapshot/replay — produces bitwise the same estimate and predictions as
// the fault-free run.
func TestChaosSharedFitBitwiseIdentical(t *testing.T) {
	p := smallProblem(t, 120, 3)
	newPts := []geom.Point{{X: 0.41, Y: 0.43}, {X: 0.13, Y: 0.77}}
	base := Config{Mode: TLR, TileSize: 24, Accuracy: 1e-7, CompressorName: "rsvd", Workers: 4}

	_, wantFit, wantPred := fitAndPredict(t, p, base, newPts)

	cfg := base
	cfg.MaxRetries = 2
	cfg.Chaos = &chaos.FaultPlan{
		Seed:       1234,
		TaskPanics: 3,
		TaskDelays: 3,
		TaskDelay:  100 * time.Microsecond,
	}
	s, gotFit, gotPred := fitAndPredict(t, p, cfg, newPts)

	st := s.ChaosStats()
	if st.TaskPanics < 1 {
		t.Fatalf("no task panic was injected: %+v", st)
	}
	if gotFit.Theta != wantFit.Theta || gotFit.LogL != wantFit.LogL || gotFit.Evals != wantFit.Evals {
		t.Fatalf("fit under chaos diverged:\n got %+v\nwant %+v", gotFit, wantFit)
	}
	for i := range wantPred {
		if gotPred[i] != wantPred[i] {
			t.Fatalf("prediction %d diverged: %g vs %g", i, gotPred[i], wantPred[i])
		}
	}
	m := s.Metrics()
	if m.FactorFailures != 0 {
		t.Fatalf("recovered faults must not count as factor failures: %+v", m)
	}
}

// TestChaosDistBitwiseIdentical: message drops (retransmitted) and delays
// must not change a distributed evaluation by a single bit.
func TestChaosDistBitwiseIdentical(t *testing.T) {
	p := smallProblem(t, 96, 5)
	newPts := []geom.Point{{X: 0.3, Y: 0.6}}
	base := Config{Mode: TLR, TileSize: 16, Accuracy: 1e-7, CompressorName: "rsvd", Ranks: 4}

	ws, err := NewSession(p, base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ws.LogLikelihood(theta())
	if err != nil {
		t.Fatal(err)
	}
	wantPred, err := ws.Predict(newPts, theta())
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.RecvTimeout = 30 * time.Second // diagnose rather than hang if retransmit breaks
	cfg.Chaos = &chaos.FaultPlan{
		Seed:          99,
		DropMessages:  4,
		DelayMessages: 4,
		MessageDelay:  50 * time.Microsecond,
	}
	cs, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cs.LogLikelihood(theta())
	if err != nil {
		t.Fatal(err)
	}
	gotPred, err := cs.Predict(newPts, theta())
	if err != nil {
		t.Fatal(err)
	}

	st := cs.ChaosStats()
	if st.MessagesDropped < 1 {
		t.Fatalf("no message was dropped: %+v", st)
	}
	if got.Value != want.Value || got.LogDet != want.LogDet || got.QuadForm != want.QuadForm {
		t.Fatalf("distributed evaluation under chaos diverged:\n got %+v\nwant %+v", got, want)
	}
	if gotPred[0] != wantPred[0] {
		t.Fatalf("distributed prediction diverged: %g vs %g", gotPred[0], wantPred[0])
	}
}

// TestChaosRankKillSurfacesAndHeals kills one rank in its own world: the
// evaluation must fail in bounded time naming the rank, and the same session
// must evaluate cleanly afterwards (the kill budget is one).
func TestChaosRankKillSurfacesAndHeals(t *testing.T) {
	p := smallProblem(t, 64, 7)
	cfg := Config{
		Mode: TLR, TileSize: 16, Accuracy: 1e-7, Ranks: 4,
		RecvTimeout: 30 * time.Second,
		Chaos:       &chaos.FaultPlan{KillRank: 2},
	}
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = s.LogLikelihood(theta())
	if err == nil {
		t.Fatal("evaluation with a killed rank must fail")
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("failure should name rank 1: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 60*time.Second {
		t.Fatalf("rank failure took %v to surface", elapsed)
	}
	if st := s.ChaosStats(); st.RanksKilled != 1 {
		t.Fatalf("stats: %+v", st)
	}
	m := s.Metrics()
	if m.FactorFailures < 1 || m.LastFactorFailure == "" {
		t.Fatalf("metrics must record the failure: %+v", m)
	}

	// The injector's kill has fired; the healed world must now work.
	lik, err := s.LogLikelihood(theta())
	if err != nil {
		t.Fatalf("world did not heal after the rank kill: %v", err)
	}
	if math.IsNaN(lik.Value) || math.IsInf(lik.Value, 0) {
		t.Fatalf("degenerate likelihood after heal: %g", lik.Value)
	}
}

// TestChaosCompressMissDegradesGracefully: forced compression misses store
// tiles densely (exact) — the evaluation must survive and stay close to the
// unfaulted value.
func TestChaosCompressMissDegradesGracefully(t *testing.T) {
	p := smallProblem(t, 96, 11)
	base := Config{Mode: TLR, TileSize: 16, Accuracy: 1e-7, CompressorName: "svd"}
	ws, err := NewSession(p, base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ws.LogLikelihood(theta())
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Chaos = &chaos.FaultPlan{Seed: 5, CompressMisses: 3}
	s, err := NewSession(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.LogLikelihood(theta())
	if err != nil {
		t.Fatal(err)
	}
	if s.ChaosStats().CompressMisses < 1 {
		t.Fatal("no compression miss was forced")
	}
	// DE tiles are exact where compression truncates, so the value moves by
	// at most the compression-error scale.
	if rel := math.Abs(got.Value-want.Value) / math.Abs(want.Value); rel > 1e-4 {
		t.Fatalf("forced misses changed the likelihood by %g relative", rel)
	}
	// The storage footprint must reflect the changed representation (a DE
	// tile costs rows·cols·8 instead of the factored 2·nb·rank·8).
	if got.Bytes == want.Bytes {
		t.Fatalf("forced misses left the footprint unchanged at %d bytes", got.Bytes)
	}
}

// TestNuggetEscalationRecoversSingularProblem: duplicated locations make Σ
// numerically singular at a tiny nugget; the escalation ladder must walk the
// regularization up until the factorization succeeds and record the climb.
func TestNuggetEscalationRecoversSingularProblem(t *testing.T) {
	base := smallProblem(t, 32, 13)
	// Three exact copies of every location: rank-deficient covariance.
	var pts []geom.Point
	var z []float64
	for i, pt := range base.Points {
		for c := 0; c < 3; c++ {
			pts = append(pts, pt)
			z = append(z, base.Z[i])
		}
	}
	p, err := NewProblem(pts, z, geom.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{FullBlock, FullTile} {
		cfg := Config{Mode: mode, TileSize: 16, Nugget: 1e-18, NuggetEscalation: 1e6}
		s, err := NewSession(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		lik, err := s.LogLikelihood(theta())
		if err != nil {
			t.Fatalf("%v: escalation failed to recover: %v", mode, err)
		}
		if lik.NuggetRetries < 1 {
			t.Fatalf("%v: factorization succeeded without escalation (retries=%d) — tighten the setup", mode, lik.NuggetRetries)
		}
		if lik.NuggetUsed <= 1e-18 {
			t.Fatalf("%v: NuggetUsed %g did not grow", mode, lik.NuggetUsed)
		}
		m := s.Metrics()
		if m.NuggetEscalations < 1 || m.FactorFailures < 1 || m.LastFactorFailure == "" {
			t.Fatalf("%v: metrics missed the degradation: %+v", mode, m)
		}
	}
}

// TestChaosConfigValidation covers the new Config knobs' error paths.
func TestChaosConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		want string // substring; "" = valid
	}{
		{"retries ok", Config{MaxRetries: 3}, ""},
		{"escalation ok", Config{NuggetEscalation: 2}, ""},
		{"recv timeout ok", Config{RecvTimeout: time.Second}, ""},
		{"chaos ok", Config{Chaos: &chaos.FaultPlan{Seed: 1, TaskPanics: 2}}, ""},
		{"negative retries", Config{MaxRetries: -1}, "MaxRetries"},
		{"negative escalation", Config{NuggetEscalation: -2}, "NuggetEscalation"},
		{"shrinking escalation", Config{NuggetEscalation: 0.5}, "must exceed 1"},
		{"unit escalation", Config{NuggetEscalation: 1}, "must exceed 1"},
		{"negative recv timeout", Config{RecvTimeout: -time.Second}, "RecvTimeout"},
		{"invalid chaos plan", Config{Chaos: &chaos.FaultPlan{TaskPanics: -1}}, "TaskPanics"},
	} {
		err := tc.cfg.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if got := (Config{}).normalized().NuggetEscalation; got != 10 {
		t.Fatalf("default NuggetEscalation = %g, want 10", got)
	}
}
